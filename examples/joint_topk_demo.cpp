// Joint top-k processing demo: computing every user's spatial-textual top-k
// with one shared index traversal (the 2016 extension's §5) vs. issuing an
// independent top-k search per user. Results are bit-identical; the I/O and
// runtime gap is the point.
//
//   $ ./joint_topk_demo [num_users]

#include <cstdio>
#include <cstdlib>

#include "rst/common/stopwatch.h"
#include "rst/data/generators.h"
#include "rst/maxbrst/joint_topk.h"

using namespace rst;

int main(int argc, char** argv) {
  const size_t num_users =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 500;

  FlickrLikeConfig config;
  config.num_objects = 20000;
  Dataset dataset = GenFlickrLike(config, {Weighting::kLanguageModel, 0.1});
  const IurTree index = IurTree::BuildFromDataset(dataset, {});

  UserGenConfig ucfg;
  ucfg.num_users = num_users;
  ucfg.area_extent = 15.0;
  const GeneratedUsers gen = GenUsers(dataset, ucfg);

  TextSimilarity sim(TextMeasure::kSum, &dataset.corpus_max());
  StScorer scorer(&sim, {0.5, dataset.max_dist()});
  JointTopKProcessor proc(&index, &dataset, &scorer);

  const size_t k = 10;
  Stopwatch timer;
  const JointTopKResult baseline = proc.BaselinePerUser(gen.users, k);
  const double baseline_ms = timer.ElapsedMillis();
  timer.Restart();
  const JointTopKResult joint = proc.Process(gen.users, k);
  const double joint_ms = timer.ElapsedMillis();

  // Verify equality (they must agree result-for-result).
  size_t mismatches = 0;
  for (size_t u = 0; u < gen.users.size(); ++u) {
    if (!(joint.per_user[u] == baseline.per_user[u])) ++mismatches;
  }

  std::printf("objects=%zu users=%zu k=%zu\n\n", dataset.size(),
              gen.users.size(), k);
  std::printf("%-22s %12s %14s %12s\n", "method", "runtime_ms", "sim_IOs",
              "IOs/user");
  std::printf("%-22s %12.1f %14llu %12.1f\n", "per-user baseline", baseline_ms,
              static_cast<unsigned long long>(baseline.io.TotalIos()),
              static_cast<double>(baseline.io.TotalIos()) / gen.users.size());
  std::printf("%-22s %12.1f %14llu %12.1f\n", "joint processing", joint_ms,
              static_cast<unsigned long long>(joint.io.TotalIos()),
              static_cast<double>(joint.io.TotalIos()) / gen.users.size());
  std::printf("\nshared candidate pool: |LO|=%zu, |RO|=%zu of %zu objects\n",
              joint.traversal.lo.size(), joint.traversal.ro.size(),
              dataset.size());
  std::printf("result mismatches: %zu (must be 0)\n", mismatches);
  return mismatches == 0 ? 0 : 1;
}
