// Competitive-influence analysis with RSTkNN (the 2011 paper's motivating
// scenario): given a city-scale collection of venues, measure how a new
// venue's location and menu determine its *reverse* reach — the set of
// existing venues that would rank it among their top-k most similar
// competitors. Compares a few placement strategies.
//
//   $ ./restaurant_influence

#include <cstdio>

#include "rst/data/generators.h"
#include "rst/iurtree/cluster.h"
#include "rst/iurtree/iurtree.h"
#include "rst/rstknn/rstknn.h"

using namespace rst;

int main() {
  // A GeoNames-like city: mildly clustered venues with short descriptions.
  GeoNamesLikeConfig config;
  config.num_objects = 8000;
  config.vocab_size = 1200;
  Dataset city = GenGeoNamesLike(config, {Weighting::kTfIdf, 0.1});

  // Cluster the venue vocabulary so the index is a CIUR-tree (tighter text
  // bounds; see DESIGN.md §3.3).
  std::vector<TermVector> docs;
  for (const StObject& o : city.objects()) docs.push_back(o.doc);
  ClusteringOptions copts;
  copts.num_clusters = 10;
  copts.outlier_threshold = 0.15;
  const ClusteringResult clusters = ClusterDocuments(docs, copts);
  const IurTree index = IurTree::BuildFromDataset(city, {}, &clusters.assignment);
  std::printf("city: %zu venues, %u text clusters (%u outliers)\n\n",
              city.size(), clusters.num_clusters, clusters.num_outliers);

  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {/*alpha=*/0.4, city.max_dist()});
  RstknnSearcher searcher(&index, &city, &scorer);

  // Candidate strategies for the new venue: copy a popular venue's text at
  // different locations vs. a niche description.
  const StObject& donor = city.object(42);
  const TermVector niche = donor.doc.TopKByWeight(2);

  struct Strategy {
    const char* label;
    Point loc;
    const TermVector* doc;
  };
  const Point center = city.bounds().Center();
  const Point edge{city.bounds().min_x + 1.0, city.bounds().min_y + 1.0};
  const Strategy strategies[] = {
      {"popular text @ center", center, &donor.doc},
      {"popular text @ edge", edge, &donor.doc},
      {"niche text   @ center", center, &niche},
      {"niche text   @ edge", edge, &niche},
  };

  std::printf("%-24s %10s %10s %12s %10s\n", "strategy", "k=5", "k=20",
              "entries", "sim-I/Os");
  for (const Strategy& s : strategies) {
    const RstknnResult r5 =
        searcher.Search({s.loc, s.doc, 5, IurTree::kNoObject});
    const RstknnResult r20 =
        searcher.Search({s.loc, s.doc, 20, IurTree::kNoObject});
    std::printf("%-24s %10zu %10zu %12llu %10llu\n", s.label,
                r5.answers.size(), r20.answers.size(),
                static_cast<unsigned long long>(r20.stats.entries_created),
                static_cast<unsigned long long>(r20.stats.io.TotalIos()));
  }
  std::printf(
      "\nReading: 'k=5' counts venues that would rank the newcomer among\n"
      "their five most spatial-textually similar competitors.\n");
  return 0;
}
