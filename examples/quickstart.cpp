// Quickstart: build a tiny spatial-textual collection by hand, index it with
// an IUR-tree, and run the two query types of the library — a top-k
// spatial-keyword query and a reverse spatial-textual kNN (RSTkNN) query.
//
//   $ ./quickstart

#include <cstdio>

#include "rst/data/dataset.h"
#include "rst/iurtree/iurtree.h"
#include "rst/rstknn/rstknn.h"
#include "rst/text/vocabulary.h"
#include "rst/topk/topk.h"

using namespace rst;

int main() {
  // --- 1. Build a collection of restaurants (location + menu terms). ---
  Vocabulary vocab;
  Dataset dataset;
  struct Row {
    const char* name;
    double x, y;
    const char* menu;
  };
  const Row rows[] = {
      {"Sakura", 1.0, 1.0, "sushi sashimi seafood"},
      {"Marina", 2.0, 1.5, "seafood grill wine"},
      {"Noodle Bar", 1.5, 2.5, "noodles ramen soup"},
      {"La Pasta", 8.0, 8.0, "pasta pizza wine"},
      {"Golden Wok", 8.5, 7.0, "noodles dumplings soup"},
      {"Ocean Catch", 2.5, 0.5, "seafood sushi oyster"},
      {"Trattoria", 7.0, 8.5, "pizza pasta espresso"},
  };
  for (const Row& r : rows) {
    dataset.Add(Point{r.x, r.y},
                RawDocument::FromTokens(vocab.TokenizeAndAdd(r.menu)));
  }
  dataset.Finalize({Weighting::kTfIdf, 0.1});

  // --- 2. Index it. ---
  const IurTree tree = IurTree::BuildFromDataset(dataset, {});
  std::printf("indexed %zu objects, tree height %zu, %zu nodes, %llu bytes\n\n",
              tree.size(), tree.height(), tree.NodeCount(),
              static_cast<unsigned long long>(tree.IndexBytes()));

  // --- 3. Top-k: the 3 most relevant restaurants for a seafood lover. ---
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {/*alpha=*/0.5, dataset.max_dist()});
  TopKSearcher topk(&tree, &dataset, &scorer);

  const TermVector craving =
      TermVector::FromTerms(vocab.TokenizeAndAdd("seafood sushi"));
  IoStats io;
  const auto best =
      topk.Search({Point{2.0, 1.0}, &craving, 3, IurTree::kNoObject}, &io);
  std::printf("top-3 for 'seafood sushi' near (2,1):\n");
  for (const TopKResult& r : best) {
    std::printf("  %-12s score=%.3f\n", rows[r.id].name, r.score);
  }
  std::printf("  (%llu simulated I/Os)\n\n",
              static_cast<unsigned long long>(io.TotalIos()));

  // --- 4. RSTkNN: who considers "Ocean Catch" one of their 2 most similar
  //         competitors? (the 2011 paper's reverse query) ---
  RstknnSearcher rst(&tree, &dataset, &scorer);
  const ObjectId ocean_catch = 5;
  const StObject& q = dataset.object(ocean_catch);
  const RstknnResult reverse = rst.Search({q.loc, &q.doc, 2, ocean_catch});
  std::printf("RSTkNN(k=2) of %s — rivals that rank it among their top-2:\n",
              rows[ocean_catch].name);
  for (ObjectId id : reverse.answers) {
    std::printf("  %s\n", rows[id].name);
  }
  std::printf(
      "  (%llu entries examined, %llu pruned, %llu reported, %llu I/Os)\n",
      static_cast<unsigned long long>(reverse.stats.entries_created),
      static_cast<unsigned long long>(reverse.stats.pruned_entries),
      static_cast<unsigned long long>(reverse.stats.reported_entries),
      static_cast<unsigned long long>(reverse.stats.io.TotalIos()));
  return 0;
}
