// Social-media advertisement placement with MaxBRSTkNN (the 2016 extension's
// Example 1): each user sees only their k most relevant ads; choose the ad's
// location tag and up to w_s keywords so that it reaches the most users.
//
//   $ ./ad_placement

#include <cstdio>

#include "rst/data/generators.h"
#include "rst/maxbrst/maxbrst.h"

using namespace rst;

int main() {
  // Flickr-like object collection = the competing content.
  FlickrLikeConfig config;
  config.num_objects = 10000;
  Dataset content = GenFlickrLike(config, {Weighting::kLanguageModel, 0.1});
  const IurTree index = IurTree::BuildFromDataset(content, {});

  // An audience of users in one neighbourhood, with their interest keywords;
  // the pool of those keywords is what the ad may be tagged with.
  UserGenConfig ucfg;
  ucfg.num_users = 200;
  ucfg.keywords_per_user = 3;
  ucfg.num_unique_keywords = 16;
  ucfg.area_extent = 8.0;
  const GeneratedUsers audience = GenUsers(content, ucfg);

  TextSimilarity sim(TextMeasure::kSum, &content.corpus_max());
  StScorer scorer(&sim, {/*alpha=*/0.5, content.max_dist()});

  // Phase 1: joint top-k — every user's current k-th relevance threshold.
  JointTopKProcessor processor(&index, &content, &scorer);
  const size_t k = 10;
  const JointTopKResult thresholds = processor.Process(audience.users, k);
  std::printf("audience: %zu users; joint top-%zu used %llu simulated I/Os\n",
              audience.users.size(), k,
              static_cast<unsigned long long>(thresholds.io.TotalIos()));

  // Phase 2: choose the ad placement.
  MaxBrstQuery query;
  query.locations = GenCandidateLocations(audience.area, 30, /*seed=*/5);
  query.keywords = audience.candidate_keywords;
  query.ws = 2;
  query.k = k;

  MaxBrstSolver solver(&content, &scorer);
  const MaxBrstResult greedy = solver.Solve(audience.users, thresholds.rsk,
                                            query, KeywordSelect::kApprox);
  const MaxBrstResult exact = solver.Solve(audience.users, thresholds.rsk,
                                           query, KeywordSelect::kExact);

  auto describe = [&](const char* label, const MaxBrstResult& r) {
    std::printf("\n%s:\n", label);
    if (r.location_index == SIZE_MAX) {
      std::printf("  no placement reaches anyone\n");
      return;
    }
    const Point loc = query.locations[r.location_index];
    std::printf("  location  (%.2f, %.2f)   keywords {", loc.x, loc.y);
    for (size_t i = 0; i < r.keywords.size(); ++i) {
      std::printf("%s#%u", i ? ", " : "", r.keywords[i]);
    }
    std::printf("}\n  reaches %zu of %zu users  (%llu combinations tried)\n",
                r.coverage(), audience.users.size(),
                static_cast<unsigned long long>(r.stats.combinations_evaluated));
  };
  describe("greedy (1-1/e guarantee)", greedy);
  describe("exact (exhaustive over pruned pool)", exact);

  if (exact.coverage() > 0) {
    std::printf("\nempirical approximation ratio: %.3f\n",
                static_cast<double>(greedy.coverage()) /
                    static_cast<double>(exact.coverage()));
  }
  return 0;
}
