#include "rst/common/geometry.h"

#include <gtest/gtest.h>

#include "rst/common/rng.h"

namespace rst {
namespace {

TEST(RectTest, EmptyRectBehaviour) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.Area(), 0.0);
  r.Extend(Point{1.0, 2.0});
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.min_x, 1.0);
  EXPECT_EQ(r.max_y, 2.0);
  EXPECT_EQ(r.Area(), 0.0);
}

TEST(RectTest, ExtendIsUnionIdentityForEmpty) {
  Rect empty;
  Rect r = Rect::FromCorners(0, 0, 2, 3);
  Rect u = Union(empty, r);
  EXPECT_EQ(u, r);
  u = Union(r, empty);
  EXPECT_EQ(u, r);
}

TEST(RectTest, ContainsAndIntersects) {
  const Rect r = Rect::FromCorners(0, 0, 10, 10);
  EXPECT_TRUE(r.Contains(Point{5, 5}));
  EXPECT_TRUE(r.Contains(Point{0, 0}));     // boundary
  EXPECT_FALSE(r.Contains(Point{10.1, 5}));
  EXPECT_TRUE(r.Contains(Rect::FromCorners(1, 1, 9, 9)));
  EXPECT_FALSE(r.Contains(Rect::FromCorners(1, 1, 11, 9)));
  EXPECT_TRUE(r.Intersects(Rect::FromCorners(9, 9, 20, 20)));
  EXPECT_TRUE(r.Intersects(Rect::FromCorners(10, 10, 20, 20)));  // corner touch
  EXPECT_FALSE(r.Intersects(Rect::FromCorners(11, 11, 20, 20)));
}

TEST(RectTest, EnlargementZeroWhenContained) {
  const Rect r = Rect::FromCorners(0, 0, 10, 10);
  EXPECT_EQ(r.Enlargement(Rect::FromCorners(2, 2, 3, 3)), 0.0);
  EXPECT_GT(r.Enlargement(Rect::FromCorners(2, 2, 3, 12)), 0.0);
}

TEST(DistanceTest, PointToRect) {
  const Rect r = Rect::FromCorners(0, 0, 10, 10);
  EXPECT_EQ(MinDistance(Point{5, 5}, r), 0.0);   // inside
  EXPECT_EQ(MinDistance(Point{15, 5}, r), 5.0);  // right side
  EXPECT_DOUBLE_EQ(MinDistance(Point{13, 14}, r), 5.0);  // corner (3-4-5)
  // Max distance from center is to a corner.
  EXPECT_DOUBLE_EQ(MaxDistance(Point{5, 5}, r), std::hypot(5.0, 5.0));
  EXPECT_DOUBLE_EQ(MaxDistance(Point{-1, -1}, r), std::hypot(11.0, 11.0));
}

TEST(DistanceTest, RectToRect) {
  const Rect a = Rect::FromCorners(0, 0, 1, 1);
  const Rect b = Rect::FromCorners(4, 4, 5, 5);
  EXPECT_DOUBLE_EQ(MinDistance(a, b), std::hypot(3.0, 3.0));
  EXPECT_DOUBLE_EQ(MaxDistance(a, b), std::hypot(5.0, 5.0));
  EXPECT_EQ(MinDistance(a, a), 0.0);
  // Overlapping rectangles have zero min distance.
  EXPECT_EQ(MinDistance(a, Rect::FromCorners(0.5, 0.5, 2, 2)), 0.0);
}

// Property: rect-to-rect min/max distances bracket the distance of any pair
// of contained points.
TEST(DistanceTest, RectDistanceBracketsPointDistances) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const Rect a = Rect::FromCorners(rng.Uniform(-10, 10), rng.Uniform(-10, 10),
                                     rng.Uniform(-10, 10), rng.Uniform(-10, 10));
    const Rect b = Rect::FromCorners(rng.Uniform(-10, 10), rng.Uniform(-10, 10),
                                     rng.Uniform(-10, 10), rng.Uniform(-10, 10));
    for (int s = 0; s < 20; ++s) {
      const Point pa{rng.Uniform(a.min_x, a.max_x),
                     rng.Uniform(a.min_y, a.max_y)};
      const Point pb{rng.Uniform(b.min_x, b.max_x),
                     rng.Uniform(b.min_y, b.max_y)};
      const double d = Distance(pa, pb);
      EXPECT_LE(MinDistance(a, b), d + 1e-9);
      EXPECT_GE(MaxDistance(a, b), d - 1e-9);
      // Point-to-rect bounds as well.
      EXPECT_LE(MinDistance(pa, b), d + 1e-9);
      EXPECT_GE(MaxDistance(pa, b), d - 1e-9);
    }
  }
}

TEST(GeometryTest, IntersectionArea) {
  const Rect a = Rect::FromCorners(0, 0, 4, 4);
  EXPECT_EQ(IntersectionArea(a, Rect::FromCorners(2, 2, 6, 6)), 4.0);
  EXPECT_EQ(IntersectionArea(a, Rect::FromCorners(4, 4, 6, 6)), 0.0);
  EXPECT_EQ(IntersectionArea(a, Rect::FromCorners(5, 5, 6, 6)), 0.0);
  EXPECT_EQ(IntersectionArea(a, a), 16.0);
}

}  // namespace
}  // namespace rst
