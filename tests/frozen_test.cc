#include "rst/frozen/frozen.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "rst/common/file_util.h"
#include "rst/data/generators.h"
#include "rst/exec/batch_runner.h"
#include "rst/exec/thread_pool.h"
#include "rst/iurtree/cluster.h"
#include "rst/obs/explain.h"
#include "rst/rstknn/rstknn.h"

namespace rst {
namespace {

struct Fixture {
  Dataset dataset;
  std::vector<uint32_t> cluster_of;
  IurTree tree;
  TextSimilarity sim;
  StScorer scorer;

  explicit Fixture(size_t n, bool clustered = false, uint64_t seed = 7)
      : tree(IurTree::Build({}, {})), sim(TextMeasure::kExtendedJaccard),
        scorer(&sim, {0.5, 1.0}) {
    FlickrLikeConfig config;
    config.num_objects = n;
    config.vocab_size = 200;
    config.seed = seed;
    dataset = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
    if (clustered) {
      std::vector<TermVector> docs;
      for (const StObject& o : dataset.objects()) docs.push_back(o.doc);
      ClusteringOptions copts;
      copts.num_clusters = 6;
      copts.outlier_threshold = 0.1;
      cluster_of = ClusterDocuments(docs, copts).assignment;
    }
    IurTreeOptions topts;
    topts.max_entries = 8;
    topts.min_entries = 4;
    tree = IurTree::BuildFromDataset(dataset, topts,
                                     clustered ? &cluster_of : nullptr);
    scorer = StScorer(&sim, {0.5, dataset.max_dist()});
  }
};

void ExpectStatsEqual(const RstknnStats& a, const RstknnStats& b) {
  EXPECT_EQ(a.io.node_reads, b.io.node_reads);
  EXPECT_EQ(a.io.payload_blocks, b.io.payload_blocks);
  EXPECT_EQ(a.io.payload_bytes, b.io.payload_bytes);
  EXPECT_EQ(a.io.cache_hits, b.io.cache_hits);
  EXPECT_EQ(a.entries_created, b.entries_created);
  EXPECT_EQ(a.expansions, b.expansions);
  EXPECT_EQ(a.pruned_entries, b.pruned_entries);
  EXPECT_EQ(a.reported_entries, b.reported_entries);
  EXPECT_EQ(a.bound_computations, b.bound_computations);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.pq_pops, b.pq_pops);
}

// ---------------------------------------------------------------------------
// Structural equivalence of the frozen layout

TEST(FrozenTreeTest, LayoutMatchesExplainNumbering) {
  const Fixture f(300, /*clustered=*/true);
  const frozen::FrozenTree frozen = frozen::FrozenTree::Freeze(f.tree);
  ASSERT_TRUE(frozen.CheckInvariants().ok())
      << frozen.CheckInvariants().ToString();
  EXPECT_EQ(frozen.size(), f.tree.size());
  EXPECT_TRUE(frozen.clustered());
  EXPECT_EQ(frozen.num_nodes(), f.tree.NodeCount());

  // Every pointer entry's explain id must address the identical frozen
  // entry: the frozen array order IS the explain preorder (id = index + 1).
  const ExplainIndex index(f.tree);
  ASSERT_EQ(index.size(), frozen.num_entries());
  std::vector<const IurTree::Node*> stack{f.tree.root()};
  size_t objects = 0;
  while (!stack.empty()) {
    const IurTree::Node* node = stack.back();
    stack.pop_back();
    for (const IurTree::Entry& entry : node->entries) {
      const ExplainIndex::Info info = index.Lookup(&entry);
      ASSERT_GE(info.id, 1u);
      const uint32_t e = static_cast<uint32_t>(info.id - 1);
      ASSERT_LT(e, frozen.num_entries());
      EXPECT_EQ(frozen.EntryLevel(e), info.level);
      EXPECT_EQ(frozen.EntryRect(e).min_x, entry.rect.min_x);
      EXPECT_EQ(frozen.EntryRect(e).max_y, entry.rect.max_y);
      EXPECT_EQ(frozen.IsObject(e), entry.is_object());
      EXPECT_EQ(frozen.Count(e), entry.count());
      if (entry.is_object()) {
        EXPECT_EQ(frozen.ObjectIdOf(e), entry.id);
        ++objects;
      } else {
        stack.push_back(entry.child);
      }
      // Summaries must be the same term-by-term data (shared span kernels
      // then guarantee bit-identical bounds).
      const SummarySpan ps = AsSpan(entry.summary);
      const SummarySpan fs = frozen.Summary(e);
      ASSERT_EQ(fs.uni.len, ps.uni.len);
      ASSERT_EQ(fs.intr.len, ps.intr.len);
      EXPECT_EQ(fs.uni.norm_squared, ps.uni.norm_squared);
      for (uint32_t t = 0; t < fs.uni.len; ++t) {
        EXPECT_EQ(fs.uni.data[t].term, ps.uni.data[t].term);
        EXPECT_EQ(fs.uni.data[t].weight, ps.uni.data[t].weight);
      }
      ASSERT_EQ(frozen.NumClusters(e), entry.clusters.size());
      for (uint32_t c = 0; c < frozen.NumClusters(e); ++c) {
        EXPECT_EQ(frozen.ClusterId(e, c), entry.clusters[c].first);
        EXPECT_EQ(frozen.ClusterCount(e, c), entry.clusters[c].second.count);
      }
    }
  }
  EXPECT_EQ(objects, f.tree.size());
}

TEST(FrozenTreeTest, PayloadsMatchPointerTreeByteForByte) {
  const Fixture f(250, /*clustered=*/true);
  const frozen::FrozenTree frozen = frozen::FrozenTree::Freeze(f.tree);
  ASSERT_TRUE(frozen.has_payloads());
  // Identical re-encode order ⇒ identical page handles and total bytes, so
  // I/O accounting (simulated and real) agrees between the views.
  EXPECT_EQ(frozen.IndexBytes(), f.tree.IndexBytes());
  const PageHandle root_ptr = f.tree.root()->invfile_handle;
  const PageHandle root_frz = frozen.invfile_handle(frozen.root());
  EXPECT_EQ(root_frz.first_page, root_ptr.first_page);
  EXPECT_EQ(root_frz.num_pages, root_ptr.num_pages);
  EXPECT_EQ(root_frz.bytes, root_ptr.bytes);
}

// ---------------------------------------------------------------------------
// Determinism matrix: {probe, contribution-list} × {IUR, CIUR} × {1, 8}
// threads — answers, stats, and explain JSON byte-identical across views.

struct MatrixCase {
  RstknnAlgorithm algorithm;
  bool clustered;
};

class FrozenMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(FrozenMatrixTest, FrozenViewIsByteIdentical) {
  const MatrixCase param = GetParam();
  const Fixture f(300, param.clustered);
  const frozen::FrozenTree frozen = frozen::FrozenTree::Freeze(f.tree);

  // Serial: answers + stats + explain JSON per query.
  const RstknnSearcher pointer_search(&f.tree, &f.dataset, &f.scorer);
  const RstknnSearcher frozen_search(&frozen, &f.dataset, &f.scorer);
  for (ObjectId qid : {ObjectId{3}, ObjectId{123}, ObjectId{222}}) {
    const StObject& qobj = f.dataset.object(qid);
    const RstknnQuery query{qobj.loc, &qobj.doc, 8, qid};
    RstknnOptions options;
    options.algorithm = param.algorithm;
    options.publish_metrics = false;
    obs::ExplainRecorder pointer_explain;
    obs::ExplainRecorder frozen_explain;
    options.explain = &pointer_explain;
    const RstknnResult from_pointer = pointer_search.Search(query, options);
    options.explain = &frozen_explain;
    const RstknnResult from_frozen = frozen_search.Search(query, options);
    EXPECT_EQ(from_pointer.answers, from_frozen.answers);
    ExpectStatsEqual(from_pointer.stats, from_frozen.stats);
    EXPECT_EQ(pointer_explain.ToJson(), frozen_explain.ToJson());
  }

  // Batched at 1 and 8 threads: the BatchRunner determinism contract must
  // extend across views at every thread count.
  std::vector<RstknnQuery> queries;
  for (ObjectId qid = 0; qid < 40; ++qid) {
    const StObject& qobj = f.dataset.object(qid);
    queries.push_back({qobj.loc, &qobj.doc, 8, qid});
  }
  RstknnOptions options;
  options.algorithm = param.algorithm;
  for (const size_t threads : {size_t{1}, size_t{8}}) {
    exec::ThreadPool pool(threads);
    const exec::BatchRunner pointer_runner(&f.tree, &f.dataset, &f.scorer,
                                           &pool);
    const exec::BatchRunner frozen_runner(&frozen, &f.dataset, &f.scorer,
                                          &pool);
    exec::BatchStats pointer_stats;
    exec::BatchStats frozen_stats;
    const auto from_pointer =
        pointer_runner.RunRstknn(queries, options, &pointer_stats);
    const auto from_frozen =
        frozen_runner.RunRstknn(queries, options, &frozen_stats);
    ASSERT_EQ(from_pointer.size(), from_frozen.size());
    for (size_t i = 0; i < from_pointer.size(); ++i) {
      EXPECT_EQ(from_pointer[i].answers, from_frozen[i].answers)
          << "query " << i << " at " << threads << " threads";
      ExpectStatsEqual(from_pointer[i].stats, from_frozen[i].stats);
    }
    ExpectStatsEqual(pointer_stats.total, frozen_stats.total);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FrozenMatrixTest,
    ::testing::Values(MatrixCase{RstknnAlgorithm::kProbe, false},
                      MatrixCase{RstknnAlgorithm::kProbe, true},
                      MatrixCase{RstknnAlgorithm::kContributionList, false},
                      MatrixCase{RstknnAlgorithm::kContributionList, true}));

TEST(FrozenTreeTest, RealIoThroughBufferPoolMatchesPointerTree) {
  const Fixture f(250, /*clustered=*/false);
  const frozen::FrozenTree frozen = frozen::FrozenTree::Freeze(f.tree);
  const StObject& qobj = f.dataset.object(17);
  const RstknnQuery query{qobj.loc, &qobj.doc, 5, 17};

  BufferPool pointer_pool(&f.tree.page_store(), 64);
  BufferPool frozen_pool(&frozen.page_store(), 64);
  RstknnOptions options;
  options.publish_metrics = false;
  const RstknnSearcher pointer_search(&f.tree, &f.dataset, &f.scorer);
  const RstknnSearcher frozen_search(&frozen, &f.dataset, &f.scorer);
  options.pool = &pointer_pool;
  const RstknnResult from_pointer = pointer_search.Search(query, options);
  options.pool = &frozen_pool;
  const RstknnResult from_frozen = frozen_search.Search(query, options);
  EXPECT_EQ(from_pointer.answers, from_frozen.answers);
  ExpectStatsEqual(from_pointer.stats, from_frozen.stats);
  // Identical page handles ⇒ identical fetch pattern in the pool.
  EXPECT_EQ(pointer_pool.hits(), frozen_pool.hits());
  EXPECT_EQ(pointer_pool.misses(), frozen_pool.misses());
}

// ---------------------------------------------------------------------------
// Persistence

TEST(FrozenSerializationTest, RoundTripIsExact) {
  const Fixture f(200, /*clustered=*/true);
  const frozen::FrozenTree frozen = frozen::FrozenTree::Freeze(f.tree);
  const std::string bytes = frozen.SerializeToString();

  Result<frozen::FrozenTree> loaded = frozen::FrozenTree::Deserialize(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const frozen::FrozenTree& copy = loaded.value();
  EXPECT_TRUE(copy.CheckInvariants().ok());
  EXPECT_EQ(copy.num_nodes(), frozen.num_nodes());
  EXPECT_EQ(copy.num_entries(), frozen.num_entries());
  EXPECT_EQ(copy.size(), frozen.size());
  EXPECT_EQ(copy.clustered(), frozen.clustered());
  EXPECT_EQ(copy.has_payloads(), frozen.has_payloads());
  // Payload rebuild and norm recomputation are deterministic, so a second
  // serialization is byte-identical and the rebuilt page store matches.
  EXPECT_EQ(copy.SerializeToString(), bytes);
  EXPECT_EQ(copy.IndexBytes(), frozen.IndexBytes());

  // The reloaded snapshot answers queries identically to the pointer tree.
  const RstknnSearcher pointer_search(&f.tree, &f.dataset, &f.scorer);
  const RstknnSearcher loaded_search(&copy, &f.dataset, &f.scorer);
  const StObject& qobj = f.dataset.object(42);
  const RstknnQuery query{qobj.loc, &qobj.doc, 6, 42};
  RstknnOptions options;
  options.publish_metrics = false;
  const RstknnResult a = pointer_search.Search(query, options);
  const RstknnResult b = loaded_search.Search(query, options);
  EXPECT_EQ(a.answers, b.answers);
  ExpectStatsEqual(a.stats, b.stats);
}

TEST(FrozenSerializationTest, SaveLoadRoundTrip) {
  const Fixture f(120);
  const frozen::FrozenTree frozen = frozen::FrozenTree::Freeze(f.tree);
  const std::string path =
      ::testing::TempDir() + "/frozen_save_load_test.rstf";
  ASSERT_TRUE(frozen.Save(path).ok());
  Result<frozen::FrozenTree> loaded = frozen::FrozenTree::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().SerializeToString(), frozen.SerializeToString());
  std::remove(path.c_str());
}

TEST(FrozenSerializationTest, CorruptInputsReturnStatusNeverCrash) {
  const Fixture f(150, /*clustered=*/true);
  const frozen::FrozenTree frozen = frozen::FrozenTree::Freeze(f.tree);
  const std::string bytes = frozen.SerializeToString();

  // Truncation at every interesting prefix length: must error, not crash.
  for (const size_t len :
       {size_t{0}, size_t{3}, size_t{4}, size_t{11}, size_t{12}, size_t{40},
        bytes.size() / 2, bytes.size() - 9, bytes.size() - 1}) {
    const Result<frozen::FrozenTree> r =
        frozen::FrozenTree::Deserialize(bytes.substr(0, len));
    EXPECT_FALSE(r.ok()) << "truncated to " << len << " bytes";
  }

  // Wrong magic.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(frozen::FrozenTree::Deserialize(bad_magic).ok());

  // Any flipped byte breaks the checksum.
  std::string flipped = bytes;
  flipped[bytes.size() / 3] ^= 0x40;
  const Result<frozen::FrozenTree> r = frozen::FrozenTree::Deserialize(flipped);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("checksum"), std::string::npos);

  // Trailing garbage past the checksum.
  EXPECT_FALSE(frozen::FrozenTree::Deserialize(bytes + "garbage").ok());

  // An unsupported version is rejected even with a valid checksum (the
  // version byte sits right after the 4-byte magic; re-stamp the FNV-1a
  // checksum so version rejection — not the checksum — is what fires).
  std::string future = bytes;
  future[4] = static_cast<char>(frozen::FrozenTree::kFormatVersion + 1);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i + 8 < future.size(); ++i) {
    h ^= static_cast<uint8_t>(future[i]);
    h *= 1099511628211ULL;
  }
  for (int b = 0; b < 8; ++b) {
    future[future.size() - 8 + b] = static_cast<char>((h >> (8 * b)) & 0xFF);
  }
  const Result<frozen::FrozenTree> v = frozen::FrozenTree::Deserialize(future);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().ToString().find("version"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Edge cases

TEST(FrozenTreeTest, EmptyAndSingleLeafTrees) {
  // Empty tree: one empty root node, zero entries; searching returns
  // nothing; serialization round-trips.
  const IurTree empty = IurTree::Build({}, {});
  const frozen::FrozenTree frozen_empty = frozen::FrozenTree::Freeze(empty);
  EXPECT_EQ(frozen_empty.num_nodes(), 1u);
  EXPECT_EQ(frozen_empty.num_entries(), 0u);
  EXPECT_TRUE(frozen_empty.CheckInvariants().ok());
  const Result<frozen::FrozenTree> rt =
      frozen::FrozenTree::Deserialize(frozen_empty.SerializeToString());
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt.value().num_entries(), 0u);

  // A dataset that fits one leaf (≤ max_entries) exercises the small-input
  // build path, which must finalize storage exactly like the full path.
  const Fixture f(6);
  EXPECT_TRUE(f.tree.storage_finalized());
  EXPECT_GT(f.tree.IndexBytes(), 0u);
  const frozen::FrozenTree frozen = frozen::FrozenTree::Freeze(f.tree);
  EXPECT_TRUE(frozen.has_payloads());
  EXPECT_EQ(frozen.num_entries(), 6u);
  EXPECT_TRUE(frozen.CheckInvariants().ok());
  const RstknnSearcher pointer_search(&f.tree, &f.dataset, &f.scorer);
  const RstknnSearcher frozen_search(&frozen, &f.dataset, &f.scorer);
  const StObject& qobj = f.dataset.object(2);
  const RstknnQuery query{qobj.loc, &qobj.doc, 3, 2};
  RstknnOptions options;
  options.publish_metrics = false;
  EXPECT_EQ(pointer_search.Search(query, options).answers,
            frozen_search.Search(query, options).answers);
  EXPECT_EQ(frozen_search.Search(query, options).answers,
            BruteForceRstknn(f.dataset, f.scorer, query));
}

TEST(FrozenTreeTest, DirtyTreeFreezesWithoutPayloads) {
  Fixture f(100);
  // An insert invalidates the serialized payloads; the freeze then carries
  // no payload store and charges node reads only — same as the dirty tree.
  f.tree.Insert(100, {0.5, 0.5}, &f.dataset.object(0).doc);
  ASSERT_FALSE(f.tree.storage_finalized());
  const frozen::FrozenTree frozen = frozen::FrozenTree::Freeze(f.tree);
  EXPECT_FALSE(frozen.has_payloads());
  EXPECT_TRUE(frozen.CheckInvariants().ok());
  IoStats stats;
  frozen.ChargeAccess(frozen.root(), &stats);
  EXPECT_EQ(stats.node_reads, 1u);
  EXPECT_EQ(stats.payload_blocks, 0u);
}

TEST(FrozenTreeTest, ParallelBuildProducesIdenticalFrozenBytes) {
  FlickrLikeConfig config;
  config.num_objects = 500;
  config.vocab_size = 200;
  config.seed = 13;
  const Dataset dataset = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  IurTreeOptions serial;
  serial.max_entries = 8;
  serial.min_entries = 4;
  IurTreeOptions parallel = serial;
  parallel.build_threads = 4;
  const IurTree t1 = IurTree::BuildFromDataset(dataset, serial);
  const IurTree t4 = IurTree::BuildFromDataset(dataset, parallel);
  // The slab sorts are disjoint ranges of one level array, so the packed
  // tree — and hence the canonical frozen serialization — is identical at
  // every thread count.
  EXPECT_EQ(frozen::FrozenTree::Freeze(t1).SerializeToString(),
            frozen::FrozenTree::Freeze(t4).SerializeToString());
}

}  // namespace
}  // namespace rst
