// IurTree::CheckInvariants / FrozenTree::CheckInvariants behavior
// (DESIGN.md §11.2): every tree the builders produce — serial, parallel,
// clustered, after dynamic updates — validates clean, and each class of
// hand-injected corruption is caught with a message precise enough to name
// the node, the entry, and the violated invariant.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rst/common/rng.h"
#include "rst/data/generators.h"
#include "rst/frozen/frozen.h"
#include "rst/iurtree/cluster.h"
#include "rst/iurtree/iurtree.h"

namespace rst {
namespace {

Dataset SmallDataset(size_t n, uint64_t seed = 11) {
  FlickrLikeConfig config;
  config.num_objects = n;
  config.vocab_size = 250;
  config.seed = seed;
  return GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
}

std::function<const TermVector*(uint32_t)> DocLookup(const Dataset& d) {
  return [&d](uint32_t id) -> const TermVector* {
    return id < d.size() ? &d.object(id).doc : nullptr;
  };
}

// The checker takes the tree by const ref; corruption tests deliberately
// reach through it to damage one node in place.
IurTree::Node* MutableRoot(const IurTree& tree) {
  return const_cast<IurTree::Node*>(tree.root());
}

// Descends leftmost to a leaf.
IurTree::Node* LeftmostLeaf(IurTree::Node* node) {
  while (!node->leaf) node = node->entries[0].child;
  return node;
}

TEST(IurTreeInvariantsTest, SerialBuildValidates) {
  const Dataset d = SmallDataset(900);
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  const Status s = tree.CheckInvariants(DocLookup(d));
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(IurTreeInvariantsTest, ParallelBuildValidates) {
  const Dataset d = SmallDataset(900);
  IurTreeOptions options;
  options.build_threads = 4;
  const IurTree tree = IurTree::BuildFromDataset(d, options);
  const Status s = tree.CheckInvariants(DocLookup(d));
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(IurTreeInvariantsTest, ClusteredBuildValidates) {
  const Dataset d = SmallDataset(700);
  std::vector<TermVector> docs;
  for (const StObject& o : d.objects()) docs.push_back(o.doc);
  const ClusteringResult clusters = ClusterDocuments(docs, {});
  const IurTree tree = IurTree::BuildFromDataset(d, {}, &clusters.assignment);
  ASSERT_TRUE(tree.clustered());
  const Status s = tree.CheckInvariants(DocLookup(d));
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(IurTreeInvariantsTest, DynamicUpdatesValidate) {
  const Dataset d = SmallDataset(600);
  std::vector<IurTree::Item> items;
  for (uint32_t id = 0; id < 550; ++id) {
    items.push_back({id, d.object(id).loc, &d.object(id).doc});
  }
  IurTree tree = IurTree::Build(std::move(items), {});
  for (uint32_t id = 550; id < 600; ++id) {
    tree.Insert(id, d.object(id).loc, &d.object(id).doc);
  }
  Status s = tree.CheckInvariants(DocLookup(d));
  EXPECT_TRUE(s.ok()) << s.ToString();

  for (uint32_t id = 0; id < 40; ++id) {
    ASSERT_TRUE(tree.Delete(id, d.object(id).loc).ok());
  }
  s = tree.CheckInvariants(DocLookup(d));
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(tree.size(), 560u);
}

TEST(IurTreeInvariantsTest, CatchesStaleMbr) {
  const Dataset d = SmallDataset(900);
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  ASSERT_FALSE(tree.root()->leaf);
  MutableRoot(tree)->entries[0].rect.max_x += 1.0;
  const Status s = tree.CheckInvariants(DocLookup(d));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("depth 0, entry 0"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.ToString().find("stale MBR"), std::string::npos) << s.ToString();
}

TEST(IurTreeInvariantsTest, CatchesUndominatedIntersection) {
  const Dataset d = SmallDataset(900);
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  IurTree::Entry& e = MutableRoot(tree)->entries[0];
  ASSERT_FALSE(e.summary.uni.empty());
  // Give the intersection a weight the union cannot cover: MinSim would
  // exceed MaxSim and pruning decisions would silently flip.
  const TermWeight first = e.summary.uni.entries()[0];
  e.summary.intr =
      TermVector::FromSorted({{first.term, first.weight * 2 + 1.0f}});
  const Status s = tree.CheckInvariants(DocLookup(d));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("exceeds union weight"), std::string::npos)
      << s.ToString();
}

TEST(IurTreeInvariantsTest, CatchesStaleSummaryCount) {
  const Dataset d = SmallDataset(900);
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  ASSERT_FALSE(tree.root()->leaf);
  MutableRoot(tree)->entries[0].summary.count += 1;
  const Status s = tree.CheckInvariants(DocLookup(d));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("summary is not the merge"), std::string::npos)
      << s.ToString();
}

TEST(IurTreeInvariantsTest, CatchesUnknownObjectId) {
  const Dataset d = SmallDataset(900);
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  LeftmostLeaf(MutableRoot(tree))->entries[0].id = 0xFEDCBA98u;
  const Status s = tree.CheckInvariants(DocLookup(d));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("unknown object id 4275878552"),
            std::string::npos)
      << s.ToString();
}

TEST(IurTreeInvariantsTest, CatchesLeafSummaryDocumentMismatch) {
  const Dataset d = SmallDataset(900);
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  IurTree::Node* leaf = LeftmostLeaf(MutableRoot(tree));
  IurTree::Entry& e = leaf->entries[0];
  // Swap the entry's id for another object's: every summary in the tree
  // stays internally consistent (parent merges still add up), so only the
  // leaf-level summary-vs-document comparison can catch it.
  const uint32_t other = (e.id + 1) % static_cast<uint32_t>(d.size());
  ASSERT_FALSE(d.object(other).doc == d.object(e.id).doc);
  e.id = other;
  const Status s = tree.CheckInvariants(DocLookup(d));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("differs from its document"), std::string::npos)
      << s.ToString();
}

TEST(IurTreeInvariantsTest, CatchesUnsortedClusterList) {
  const Dataset d = SmallDataset(700);
  std::vector<TermVector> docs;
  for (const StObject& o : d.objects()) docs.push_back(o.doc);
  const ClusteringResult clusters = ClusterDocuments(docs, {});
  const IurTree tree = IurTree::BuildFromDataset(d, {}, &clusters.assignment);
  IurTree::Entry& e = MutableRoot(tree)->entries[0];
  ASSERT_GE(e.clusters.size(), 2u) << "need >=2 clusters to unsort";
  std::swap(e.clusters[0], e.clusters[1]);
  const Status s = tree.CheckInvariants(DocLookup(d));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("cluster ids not strictly ascending"),
            std::string::npos)
      << s.ToString();
}

TEST(FrozenInvariantsTest, FrozenTreeValidatesAfterFreezeAndRoundTrip) {
  const Dataset d = SmallDataset(800);
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  const frozen::FrozenTree ft = frozen::FrozenTree::Freeze(tree);
  Status s = ft.CheckInvariants();
  EXPECT_TRUE(s.ok()) << s.ToString();

  const std::string bytes = ft.SerializeToString();
  Result<frozen::FrozenTree> round = frozen::FrozenTree::Deserialize(bytes);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  s = round.value().CheckInvariants();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// Deserialize must never accept bytes that fail the deep check: acceptance
// and validation are one decision. Flip every 97th byte of a valid snapshot
// and require reject-or-coherent for each variant.
TEST(FrozenInvariantsTest, ByteFlippedSnapshotsAreRejectedOrCoherent) {
  const Dataset d = SmallDataset(300);
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  const std::string bytes = frozen::FrozenTree::Freeze(tree).SerializeToString();
  size_t accepted = 0;
  size_t rejected = 0;
  for (size_t pos = 0; pos < bytes.size(); pos += 97) {
    for (uint8_t bit : {uint8_t{1}, uint8_t{0x80}}) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(mutated[pos] ^ bit);
      Result<frozen::FrozenTree> got = frozen::FrozenTree::Deserialize(mutated);
      if (!got.ok()) {
        ++rejected;
        continue;
      }
      ++accepted;
      const Status s = got.value().CheckInvariants();
      EXPECT_TRUE(s.ok()) << "byte " << pos << " bit flip accepted but "
                          << "incoherent: " << s.ToString();
    }
  }
  // Structural damage (header, offsets, counts) must bounce; flips that land
  // in payload bytes may legitimately decode to a different-but-coherent
  // tree, so only the accepted-implies-coherent property is universal.
  EXPECT_GT(rejected, 0u) << rejected << " rejected, " << accepted
                          << " accepted";
}

}  // namespace
}  // namespace rst
