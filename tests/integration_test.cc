// Cross-module integration tests: every algorithm variant must agree with
// its oracle end-to-end on a shared mid-size world, datasets must survive a
// save/load round trip with bit-identical query results, and the index
// storage must decode back to the in-memory structures.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "rst/data/csv.h"
#include "rst/data/generators.h"
#include "rst/iurtree/cluster.h"
#include "rst/maxbrst/miur.h"
#include "rst/rstknn/rstknn.h"

namespace rst {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FlickrLikeConfig config;
    config.num_objects = 1500;
    config.vocab_size = 350;
    config.seed = 77;
    dataset_ = std::make_unique<Dataset>(
        GenFlickrLike(config, {Weighting::kTfIdf, 0.1}));
    std::vector<TermVector> docs;
    for (const StObject& o : dataset_->objects()) docs.push_back(o.doc);
    ClusteringOptions copts;
    copts.num_clusters = 6;
    clusters_ =
        std::make_unique<ClusteringResult>(ClusterDocuments(docs, copts));
    iur_ = std::make_unique<IurTree>(IurTree::BuildFromDataset(*dataset_, {}));
    ciur_ = std::make_unique<IurTree>(
        IurTree::BuildFromDataset(*dataset_, {}, &clusters_->assignment));
  }
  static void TearDownTestSuite() {
    ciur_.reset();
    iur_.reset();
    clusters_.reset();
    dataset_.reset();
  }

  static std::unique_ptr<Dataset> dataset_;
  static std::unique_ptr<ClusteringResult> clusters_;
  static std::unique_ptr<IurTree> iur_;
  static std::unique_ptr<IurTree> ciur_;
};

std::unique_ptr<Dataset> IntegrationTest::dataset_;
std::unique_ptr<ClusteringResult> IntegrationTest::clusters_;
std::unique_ptr<IurTree> IntegrationTest::iur_;
std::unique_ptr<IurTree> IntegrationTest::ciur_;

TEST_F(IntegrationTest, AllRstknnVariantsAgreeWithOracle) {
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  for (double alpha : {0.2, 0.8}) {
    StScorer scorer(&sim, {alpha, dataset_->max_dist()});
    RstknnSearcher on_iur(iur_.get(), dataset_.get(), &scorer);
    RstknnSearcher on_ciur(ciur_.get(), dataset_.get(), &scorer);
    PrecomputeBaseline baseline(iur_.get(), dataset_.get(), &scorer);
    baseline.Build(7);
    for (ObjectId qid : {3u, 444u, 1200u}) {
      const StObject& q = dataset_->object(qid);
      const RstknnQuery query{q.loc, &q.doc, 7, qid};
      const auto oracle = BruteForceRstknn(*dataset_, scorer, query);
      EXPECT_EQ(on_iur.Search(query).answers, oracle) << "alpha=" << alpha;
      EXPECT_EQ(on_ciur.Search(query).answers, oracle) << "alpha=" << alpha;
      RstknnOptions te;
      te.expand = ExpandPolicy::kTextEntropy;
      EXPECT_EQ(on_ciur.Search(query, te).answers, oracle);
      EXPECT_EQ(baseline.Query(query).answers, oracle);
    }
  }
}

TEST_F(IntegrationTest, NaiveAndTightEjBoundsAgree) {
  TextSimilarity tight(TextMeasure::kExtendedJaccard, nullptr,
                       EjBoundMode::kCauchySchwarz);
  TextSimilarity naive(TextMeasure::kExtendedJaccard, nullptr,
                       EjBoundMode::kNaive);
  StScorer tight_scorer(&tight, {0.5, dataset_->max_dist()});
  StScorer naive_scorer(&naive, {0.5, dataset_->max_dist()});
  RstknnSearcher tight_search(iur_.get(), dataset_.get(), &tight_scorer);
  RstknnSearcher naive_search(iur_.get(), dataset_.get(), &naive_scorer);
  const StObject& q = dataset_->object(99);
  const RstknnQuery query{q.loc, &q.doc, 5, 99};
  const auto a = tight_search.Search(query);
  const auto b = naive_search.Search(query);
  EXPECT_EQ(a.answers, b.answers);
  // The tightened bound must not do more work.
  EXPECT_LE(a.stats.bound_computations, b.stats.bound_computations);
}

TEST_F(IntegrationTest, FullBichromaticPipelineAgrees) {
  UserGenConfig ucfg;
  ucfg.num_users = 60;
  ucfg.area_extent = 30.0;
  ucfg.seed = 5;
  const GeneratedUsers gen = GenUsers(*dataset_, ucfg);
  TextSimilarity sim(TextMeasure::kSum, &dataset_->corpus_max());
  StScorer scorer(&sim, {0.5, dataset_->max_dist()});

  JointTopKProcessor proc(iur_.get(), dataset_.get(), &scorer);
  const JointTopKResult joint = proc.Process(gen.users, 8);

  MaxBrstQuery query;
  query.locations = GenCandidateLocations(gen.area, 6, 5);
  query.keywords = gen.candidate_keywords;
  query.ws = 2;
  query.k = 8;

  MaxBrstSolver solver(dataset_.get(), &scorer);
  const MaxBrstResult exact =
      solver.Solve(gen.users, joint.rsk, query, KeywordSelect::kExact);
  const MaxBrstResult oracle =
      BruteForceMaxBrst(gen.users, joint.rsk, *dataset_, scorer, query);
  EXPECT_EQ(exact.coverage(), oracle.coverage());

  IurTreeOptions uopts;
  uopts.max_entries = 8;
  uopts.min_entries = 3;
  const IurTree user_tree = IurTree::BuildFromUsers(gen.users, uopts);
  MiurMaxBrstSolver miur(iur_.get(), dataset_.get(), &scorer, &user_tree, &gen.users);
  EXPECT_EQ(miur.Solve(query, KeywordSelect::kExact).best.coverage(),
            oracle.coverage());
}

TEST_F(IntegrationTest, DatasetRoundTripPreservesQueryResults) {
  const std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(SaveDatasetIds(*dataset_, path).ok());
  auto loaded = LoadDatasetIds(path, dataset_->weighting());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), dataset_->size());
  const IurTree tree2 = IurTree::BuildFromDataset(loaded.value(), {});

  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer1(&sim, {0.5, dataset_->max_dist()});
  StScorer scorer2(&sim, {0.5, loaded.value().max_dist()});
  RstknnSearcher s1(iur_.get(), dataset_.get(), &scorer1);
  RstknnSearcher s2(&tree2, &loaded.value(), &scorer2);
  const StObject& q = dataset_->object(17);
  EXPECT_EQ(s1.Search({q.loc, &q.doc, 5, 17}).answers,
            s2.Search({q.loc, &q.doc, 5, 17}).answers);
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, QueriesAreDeterministic) {
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, dataset_->max_dist()});
  RstknnSearcher searcher(iur_.get(), dataset_.get(), &scorer);
  const StObject& q = dataset_->object(250);
  const RstknnQuery query{q.loc, &q.doc, 9, 250};
  const auto a = searcher.Search(query);
  const auto b = searcher.Search(query);
  EXPECT_EQ(a.answers, b.answers);
  EXPECT_EQ(a.stats.entries_created, b.stats.entries_created);
  EXPECT_EQ(a.stats.io.TotalIos(), b.stats.io.TotalIos());
}

TEST_F(IntegrationTest, StoredNodeRecordsHaveHonestSizes) {
  // Every node's serialized record + inverted file must be readable from the
  // page store and the index total must equal the sum of the parts.
  uint64_t total = 0;
  std::vector<const IurTree::Node*> stack = {iur_->root()};
  while (!stack.empty()) {
    const IurTree::Node* node = stack.back();
    stack.pop_back();
    std::string payload;
    ASSERT_TRUE(
        iur_->page_store().Read(node->record_handle, &payload, nullptr).ok());
    total += payload.size();
    ASSERT_TRUE(
        iur_->page_store().Read(node->invfile_handle, &payload, nullptr).ok());
    size_t offset = 0;
    InvertedFile file;
    ASSERT_TRUE(DecodeInvertedFile(payload, &offset, &file).ok());
    total += payload.size();
    if (!node->leaf) {
      for (const IurTree::Entry& e : node->entries) {
        stack.push_back(e.child);
      }
    }
  }
  EXPECT_EQ(total, iur_->IndexBytes());
}

}  // namespace
}  // namespace rst
