#include "rst/rtree/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "rst/common/rng.h"

namespace rst {
namespace {

std::vector<std::pair<ObjectId, Rect>> RandomPoints(Rng* rng, size_t n,
                                                    double extent = 100.0) {
  std::vector<std::pair<ObjectId, Rect>> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point p{rng->Uniform(0, extent), rng->Uniform(0, extent)};
    items.push_back({static_cast<ObjectId>(i), Rect::FromPoint(p)});
  }
  return items;
}

std::vector<ObjectId> BruteRange(
    const std::vector<std::pair<ObjectId, Rect>>& items, const Rect& q) {
  std::vector<ObjectId> out;
  for (const auto& [id, rect] : items) {
    if (rect.Intersects(q)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RTreeTest, EmptyTreeQueries) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.RangeQuery(Rect::FromCorners(0, 0, 1, 1)).empty());
  EXPECT_TRUE(tree.KnnQuery(Point{0, 0}, 3).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, InsertMaintainsInvariantsAndFindsEverything) {
  Rng rng(21);
  auto items = RandomPoints(&rng, 500);
  RTree tree;
  for (const auto& [id, rect] : items) {
    tree.Insert(id, rect);
  }
  EXPECT_EQ(tree.size(), 500u);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  // Whole-space query returns every object.
  auto all = tree.RangeQuery(Rect::FromCorners(-1, -1, 101, 101));
  EXPECT_EQ(all.size(), 500u);
  EXPECT_GE(tree.height(), 1u);
}

class RTreeRandomTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeRandomTest, RangeQueryMatchesBruteForce) {
  Rng rng(31 + GetParam());
  auto items = RandomPoints(&rng, GetParam());
  RTree inserted;
  for (const auto& [id, rect] : items) inserted.Insert(id, rect);
  RTree bulk = RTree::BulkLoad(items);
  ASSERT_TRUE(inserted.CheckInvariants().ok());
  ASSERT_TRUE(bulk.CheckInvariants().ok());
  EXPECT_EQ(bulk.size(), items.size());
  for (int q = 0; q < 25; ++q) {
    const Rect query =
        Rect::FromCorners(rng.Uniform(0, 100), rng.Uniform(0, 100),
                          rng.Uniform(0, 100), rng.Uniform(0, 100));
    const auto expected = BruteRange(items, query);
    EXPECT_EQ(inserted.RangeQuery(query), expected);
    EXPECT_EQ(bulk.RangeQuery(query), expected);
  }
}

TEST_P(RTreeRandomTest, KnnMatchesBruteForce) {
  Rng rng(41 + GetParam());
  auto items = RandomPoints(&rng, GetParam());
  RTree tree = RTree::BulkLoad(items);
  for (int q = 0; q < 15; ++q) {
    const Point p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    for (size_t k : {1u, 5u, 17u}) {
      auto got = tree.KnnQuery(p, k);
      // Brute-force kNN.
      std::vector<std::pair<double, ObjectId>> brute;
      for (const auto& [id, rect] : items) {
        brute.push_back({MinDistance(p, rect), id});
      }
      std::sort(brute.begin(), brute.end());
      const size_t expect_n = std::min(k, items.size());
      ASSERT_EQ(got.size(), expect_n);
      for (size_t i = 0; i < expect_n; ++i) {
        EXPECT_NEAR(got[i].distance, brute[i].first, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeRandomTest,
                         ::testing::Values(1, 10, 33, 200, 1000));

TEST(RTreeTest, BulkLoadHandlesDegenerateSizes) {
  for (size_t n : {0u, 1u, 2u, 32u, 33u}) {
    Rng rng(7 + n);
    auto items = RandomPoints(&rng, n);
    RTree tree = RTree::BulkLoad(items);
    EXPECT_EQ(tree.size(), n);
    EXPECT_TRUE(tree.CheckInvariants().ok());
    EXPECT_EQ(tree.RangeQuery(Rect::FromCorners(-1, -1, 101, 101)).size(), n);
  }
}

TEST(RTreeTest, DeleteRemovesAndCondenses) {
  Rng rng(51);
  auto items = RandomPoints(&rng, 300);
  RTree tree;
  for (const auto& [id, rect] : items) tree.Insert(id, rect);

  // Delete in random order, re-validating periodically.
  std::vector<size_t> order(items.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  size_t remaining = items.size();
  for (size_t idx : order) {
    ASSERT_TRUE(tree.Delete(items[idx].first, items[idx].second).ok());
    --remaining;
    EXPECT_EQ(tree.size(), remaining);
    if (remaining % 50 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << "remaining=" << remaining << " "
          << tree.CheckInvariants().ToString();
      EXPECT_EQ(tree.RangeQuery(Rect::FromCorners(-1, -1, 101, 101)).size(),
                remaining);
    }
  }
  EXPECT_TRUE(tree.empty());
}

TEST(RTreeTest, DeleteMissingIsNotFound) {
  RTree tree;
  tree.Insert(7, Rect::FromPoint(Point{1, 1}));
  EXPECT_EQ(tree.Delete(7, Rect::FromPoint(Point{2, 2})).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(tree.Delete(8, Rect::FromPoint(Point{1, 1})).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(tree.Delete(7, Rect::FromPoint(Point{1, 1})).ok());
}

TEST(RTreeTest, MixedInsertDeleteStaysConsistent) {
  Rng rng(61);
  RTree tree;
  std::vector<std::pair<ObjectId, Rect>> live;
  ObjectId next_id = 0;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      const Point p{rng.Uniform(0, 50), rng.Uniform(0, 50)};
      live.push_back({next_id, Rect::FromPoint(p)});
      tree.Insert(next_id, live.back().second);
      ++next_id;
    } else {
      const size_t pick = rng.UniformInt(live.size());
      ASSERT_TRUE(tree.Delete(live[pick].first, live[pick].second).ok());
      live.erase(live.begin() + pick);
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), live.size());
  const Rect q = Rect::FromCorners(10, 10, 30, 30);
  EXPECT_EQ(tree.RangeQuery(q), BruteRange(live, q));
}

TEST(RTreeTest, KnnDeterministicTieBreak) {
  // Four equidistant points: ids must come back in ascending order.
  RTree tree;
  tree.Insert(3, Rect::FromPoint(Point{1, 0}));
  tree.Insert(1, Rect::FromPoint(Point{-1, 0}));
  tree.Insert(2, Rect::FromPoint(Point{0, 1}));
  tree.Insert(0, Rect::FromPoint(Point{0, -1}));
  auto got = tree.KnnQuery(Point{0, 0}, 4);
  ASSERT_EQ(got.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(got[i].id, i);
}

TEST(RTreeTest, NodeCountGrowsWithSize) {
  Rng rng(71);
  RTree small = RTree::BulkLoad(RandomPoints(&rng, 50));
  RTree large = RTree::BulkLoad(RandomPoints(&rng, 2000));
  EXPECT_LT(small.NodeCount(), large.NodeCount());
  EXPECT_GE(large.height(), small.height());
}

}  // namespace
}  // namespace rst
