// Negative-compile fixture for the thread-safety annotation layer
// (DESIGN.md §16). Under clang with -Wthread-safety -Werror the mis-locked
// read in BadUnlockedRead() MUST fail to compile — the ctest entry
// thread_annotations_negative_compile asserts the compiler invocation fails
// (WILL_FAIL). The same file doubles as the zero-cost no-op proof: compiled
// WITHOUT thread-safety analysis (gcc, or clang without the flag) it must
// build cleanly under -Wall -Wextra -Werror, showing the macros expand to
// nothing that changes or warns.

#include "rst/common/mutex.h"

namespace {

struct GuardedCounter {
  rst::Mutex mu;
  int value RST_GUARDED_BY(mu) = 0;

  int GoodLockedRead() RST_EXCLUDES(mu) {
    rst::MutexLock lock(&mu);
    return value;
  }

  // The deliberate violation: reads a guarded field with no lock held.
  int BadUnlockedRead() RST_EXCLUDES(mu) {
    return value;  // -Wthread-safety: reading variable 'value' requires 'mu'
  }
};

}  // namespace

int main() {
  GuardedCounter counter;
  return counter.GoodLockedRead() + counter.BadUnlockedRead();
}
