#include "rst/maxbrst/maxbrst.h"

#include <gtest/gtest.h>

#include "rst/data/generators.h"

namespace rst {
namespace {

struct BrstFixture {
  Dataset dataset;
  GeneratedUsers gen;
  IurTree tree;
  TextSimilarity sim;
  StScorer scorer;
  std::vector<double> rsk;

  BrstFixture(size_t num_objects, size_t num_users, size_t k, double alpha,
              Weighting weighting, uint64_t seed)
      : tree(IurTree::Build({}, {})),
        // Placeholder measure: kSum requires corpus-max normalizers, which
        // exist only after the dataset is generated in the body (reassigned
        // there). EJ keeps the pre-init state assert-clean in Debug builds.
        sim(TextMeasure::kExtendedJaccard),
        scorer(&sim, {alpha, 1.0}) {
    FlickrLikeConfig config;
    config.num_objects = num_objects;
    config.vocab_size = 300;
    config.seed = seed;
    dataset = GenFlickrLike(config, {weighting, 0.1});
    UserGenConfig ucfg;
    ucfg.num_users = num_users;
    ucfg.area_extent = 25.0;
    ucfg.num_unique_keywords = 12;
    ucfg.seed = seed + 1;
    gen = GenUsers(dataset, ucfg);
    tree = IurTree::BuildFromDataset(dataset, {});
    sim = TextSimilarity(TextMeasure::kSum, &dataset.corpus_max());
    scorer = StScorer(&sim, {alpha, dataset.max_dist()});
    JointTopKProcessor proc(&tree, &dataset, &scorer);
    rsk = proc.Process(gen.users, k).rsk;
  }

  MaxBrstQuery MakeQuery(size_t num_locations, size_t ws, size_t k,
                         uint64_t seed) const {
    MaxBrstQuery q;
    q.locations = GenCandidateLocations(gen.area, num_locations, seed);
    q.keywords = gen.candidate_keywords;
    q.ws = ws;
    q.k = k;
    return q;
  }
};

TEST(PlacementContextTest, VectorsRestrictAndMerge) {
  Dataset d;
  d.Add(Point{0, 0}, RawDocument::FromTokens({0, 1}));
  d.Add(Point{1, 1}, RawDocument::FromTokens({2, 3}));
  d.Finalize({Weighting::kBinary, 0.1});
  MaxBrstQuery q;
  q.existing_raw = RawDocument::FromTokens({0});
  q.keywords = {2, 3};
  const PlacementContext ctx = PlacementContext::Make(d, q);
  EXPECT_TRUE(ctx.existing_vec.Contains(0));
  EXPECT_FALSE(ctx.existing_vec.Contains(2));
  EXPECT_TRUE(ctx.full_vec.Contains(2));
  const TermVector with2 = ctx.VecWith({2});
  EXPECT_TRUE(with2.Contains(0));
  EXPECT_TRUE(with2.Contains(2));
  EXPECT_FALSE(with2.Contains(3));
}

struct SolveCase {
  size_t num_objects;
  size_t num_users;
  size_t num_locations;
  size_t ws;
  size_t k;
  double alpha;
  Weighting weighting;
  uint64_t seed;
};

class MaxBrstExactTest : public ::testing::TestWithParam<SolveCase> {};

TEST_P(MaxBrstExactTest, ExactSolverMatchesBruteForceCoverage) {
  const SolveCase& c = GetParam();
  BrstFixture f(c.num_objects, c.num_users, c.k, c.alpha, c.weighting, c.seed);
  const MaxBrstQuery query = f.MakeQuery(c.num_locations, c.ws, c.k, c.seed);
  MaxBrstSolver solver(&f.dataset, &f.scorer);
  const MaxBrstResult exact =
      solver.Solve(f.gen.users, f.rsk, query, KeywordSelect::kExact);
  const MaxBrstResult brute =
      BruteForceMaxBrst(f.gen.users, f.rsk, f.dataset, f.scorer, query);
  EXPECT_EQ(exact.coverage(), brute.coverage());
  // The reported tuple must actually achieve the reported coverage.
  if (exact.location_index != SIZE_MAX) {
    const PlacementContext ctx = PlacementContext::Make(f.dataset, query);
    std::vector<uint32_t> everyone;
    for (const StUser& u : f.gen.users) everyone.push_back(u.id);
    const auto verify = EvaluatePlacement(
        f.gen.users, everyone, f.rsk, f.scorer,
        query.locations[exact.location_index], ctx.VecWith(exact.keywords),
        nullptr);
    EXPECT_EQ(verify, exact.covered_users);
    EXPECT_LE(exact.keywords.size(), query.ws);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MaxBrstExactTest,
    ::testing::Values(
        SolveCase{800, 40, 10, 2, 5, 0.5, Weighting::kLanguageModel, 2},
        SolveCase{800, 40, 10, 3, 10, 0.3, Weighting::kLanguageModel, 3},
        SolveCase{600, 30, 5, 1, 5, 0.7, Weighting::kTfIdf, 4},
        SolveCase{600, 30, 8, 2, 20, 0.5, Weighting::kBinary, 5},
        SolveCase{500, 25, 1, 4, 5, 0.5, Weighting::kLanguageModel, 6},
        SolveCase{500, 25, 6, 2, 5, 0.1, Weighting::kLanguageModel, 7}),
    [](const auto& info) {
      return "o" + std::to_string(info.param.num_objects) + "_u" +
             std::to_string(info.param.num_users) + "_l" +
             std::to_string(info.param.num_locations) + "_ws" +
             std::to_string(info.param.ws) + "_k" +
             std::to_string(info.param.k) + "_" +
             WeightingName(info.param.weighting) + std::to_string(info.param.seed);
    });

TEST(MaxBrstTest, ApproxNeverBeatsExactAndIsReasonable) {
  BrstFixture f(800, 50, 10, 0.5, Weighting::kLanguageModel, 9);
  const MaxBrstQuery query = f.MakeQuery(12, 3, 10, 9);
  MaxBrstSolver solver(&f.dataset, &f.scorer);
  const MaxBrstResult exact =
      solver.Solve(f.gen.users, f.rsk, query, KeywordSelect::kExact);
  const MaxBrstResult approx =
      solver.Solve(f.gen.users, f.rsk, query, KeywordSelect::kApprox);
  EXPECT_LE(approx.coverage(), exact.coverage());
  if (exact.coverage() > 0) {
    const double ratio = static_cast<double>(approx.coverage()) /
                         static_cast<double>(exact.coverage());
    EXPECT_GE(ratio, 0.5) << "approx=" << approx.coverage()
                          << " exact=" << exact.coverage();
  }
  // Approximate method evaluates far fewer combinations.
  EXPECT_LT(approx.stats.combinations_evaluated,
            exact.stats.combinations_evaluated);
}

TEST(MaxBrstTest, MoreBudgetNeverHurts) {
  BrstFixture f(700, 35, 10, 0.5, Weighting::kLanguageModel, 12);
  MaxBrstSolver solver(&f.dataset, &f.scorer);
  size_t prev = 0;
  for (size_t ws : {1u, 2u, 3u, 4u}) {
    const MaxBrstQuery query = f.MakeQuery(8, ws, 10, 12);
    const MaxBrstResult r =
        solver.Solve(f.gen.users, f.rsk, query, KeywordSelect::kExact);
    EXPECT_GE(r.coverage(), prev) << "ws=" << ws;
    prev = r.coverage();
  }
}

TEST(MaxBrstTest, ExistingTextContributes) {
  // TF-IDF weights are per-term constants, so scores are monotone in added
  // terms. (Under the language model longer text dilutes per-term weights,
  // so this monotonicity deliberately does not hold there.)
  BrstFixture f(700, 35, 10, 0.5, Weighting::kTfIdf, 14);
  MaxBrstQuery query = f.MakeQuery(8, 2, 10, 14);
  MaxBrstSolver solver(&f.dataset, &f.scorer);
  const size_t bare =
      solver.Solve(f.gen.users, f.rsk, query, KeywordSelect::kExact).coverage();
  // Give o_x an existing description containing every candidate keyword:
  // coverage can only grow.
  for (TermId w : f.gen.candidate_keywords) {
    query.existing_raw.term_counts.push_back({w, 1});
  }
  std::sort(query.existing_raw.term_counts.begin(),
            query.existing_raw.term_counts.end());
  const size_t rich =
      solver.Solve(f.gen.users, f.rsk, query, KeywordSelect::kExact).coverage();
  EXPECT_GE(rich, bare);
}

TEST(MaxBrstTest, EmptyInputsAreHandled) {
  BrstFixture f(300, 10, 5, 0.5, Weighting::kLanguageModel, 15);
  MaxBrstSolver solver(&f.dataset, &f.scorer);
  MaxBrstQuery query;  // no locations, no keywords
  query.k = 5;
  const MaxBrstResult r =
      solver.Solve(f.gen.users, f.rsk, query, KeywordSelect::kExact);
  EXPECT_EQ(r.location_index, SIZE_MAX);
  EXPECT_EQ(r.coverage(), 0u);
  // One location, zero candidate keywords: pure location choice.
  query.locations = GenCandidateLocations(f.gen.area, 1, 1);
  const MaxBrstResult r2 =
      solver.Solve(f.gen.users, f.rsk, query, KeywordSelect::kExact);
  EXPECT_EQ(
      r2.coverage(),
      BruteForceMaxBrst(f.gen.users, f.rsk, f.dataset, f.scorer, query)
          .coverage());
}

TEST(MaxBrstTest, StatsReflectWork) {
  BrstFixture f(600, 30, 10, 0.5, Weighting::kLanguageModel, 16);
  const MaxBrstQuery query = f.MakeQuery(10, 2, 10, 16);
  MaxBrstSolver solver(&f.dataset, &f.scorer);
  const MaxBrstResult r =
      solver.Solve(f.gen.users, f.rsk, query, KeywordSelect::kExact);
  EXPECT_GT(r.stats.user_evaluations, 0u);
}

}  // namespace
}  // namespace rst
