#include "rst/maxbrst/miur.h"

#include <gtest/gtest.h>

#include "rst/data/generators.h"

namespace rst {
namespace {

struct MiurFixture {
  Dataset dataset;
  GeneratedUsers gen;
  IurTree object_tree;
  IurTree user_tree;
  TextSimilarity sim;
  StScorer scorer;

  MiurFixture(size_t num_objects, size_t num_users, uint64_t seed)
      : object_tree(IurTree::Build({}, {})),
        user_tree(IurTree::Build({}, {})),
        // Placeholder measure: kSum requires corpus-max normalizers, which
        // exist only after the dataset is generated in the body (reassigned
        // there). EJ keeps the pre-init state assert-clean in Debug builds.
        sim(TextMeasure::kExtendedJaccard),
        scorer(&sim, {0.5, 1.0}) {
    FlickrLikeConfig config;
    config.num_objects = num_objects;
    config.vocab_size = 300;
    config.seed = seed;
    dataset = GenFlickrLike(config, {Weighting::kLanguageModel, 0.1});
    UserGenConfig ucfg;
    ucfg.num_users = num_users;
    ucfg.area_extent = 30.0;
    ucfg.num_unique_keywords = 12;
    ucfg.seed = seed + 2;
    gen = GenUsers(dataset, ucfg);
    object_tree = IurTree::BuildFromDataset(dataset, {});
    IurTreeOptions uopts;
    uopts.max_entries = 8;  // small fan-out => deeper user tree, more pruning
    uopts.min_entries = 3;
    user_tree = IurTree::BuildFromUsers(gen.users, uopts);
    sim = TextSimilarity(TextMeasure::kSum, &dataset.corpus_max());
    scorer = StScorer(&sim, {0.5, dataset.max_dist()});
  }
};

TEST(MiurTest, MatchesNonIndexedCoverage) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    MiurFixture f(900, 120, seed);
    MaxBrstQuery query;
    query.locations = GenCandidateLocations(f.gen.area, 10, seed);
    query.keywords = f.gen.candidate_keywords;
    query.ws = 2;
    query.k = 10;

    // Reference: all users in memory.
    JointTopKProcessor proc(&f.object_tree, &f.dataset, &f.scorer);
    const JointTopKResult joint = proc.Process(f.gen.users, query.k);
    MaxBrstSolver plain(&f.dataset, &f.scorer);
    const MaxBrstResult expected =
        plain.Solve(f.gen.users, joint.rsk, query, KeywordSelect::kExact);

    MiurMaxBrstSolver miur(&f.object_tree, &f.dataset, &f.scorer, &f.user_tree,
                           &f.gen.users);
    const MiurResult got = miur.Solve(query, KeywordSelect::kExact);
    EXPECT_EQ(got.best.coverage(), expected.coverage()) << "seed=" << seed;
    // The reported winner really covers what it claims.
    if (got.best.location_index != SIZE_MAX) {
      const PlacementContext ctx = PlacementContext::Make(f.dataset, query);
      std::vector<uint32_t> everyone;
      for (const StUser& u : f.gen.users) everyone.push_back(u.id);
      const auto verify = EvaluatePlacement(
          f.gen.users, everyone, joint.rsk, f.scorer,
          query.locations[got.best.location_index],
          ctx.VecWith(got.best.keywords), nullptr);
      EXPECT_EQ(verify.size(), got.best.coverage());
    }
  }
}

TEST(MiurTest, PrunesSomeUsers) {
  MiurFixture f(1500, 200, 31);
  MaxBrstQuery query;
  // A single far-away location: many user subtrees should never be refined.
  query.locations = {
      Point{f.dataset.bounds().min_x, f.dataset.bounds().min_y}};
  query.keywords = f.gen.candidate_keywords;
  query.ws = 2;
  query.k = 5;
  MiurMaxBrstSolver miur(&f.object_tree, &f.dataset, &f.scorer, &f.user_tree,
                         &f.gen.users);
  const MiurResult got = miur.Solve(query, KeywordSelect::kApprox);
  EXPECT_LE(got.stats.users_refined, f.gen.users.size());
  const double pruned = got.stats.UsersPrunedFraction(f.gen.users.size());
  EXPECT_GE(pruned, 0.0);
  EXPECT_LE(pruned, 1.0);
  EXPECT_GT(got.stats.user_io.TotalIos(), 0u);
  EXPECT_GT(got.stats.object_io.TotalIos(), 0u);
}

TEST(MiurTest, ApproxCoverageWithinExact) {
  MiurFixture f(800, 100, 41);
  MaxBrstQuery query;
  query.locations = GenCandidateLocations(f.gen.area, 8, 41);
  query.keywords = f.gen.candidate_keywords;
  query.ws = 2;
  query.k = 10;
  MiurMaxBrstSolver miur(&f.object_tree, &f.dataset, &f.scorer, &f.user_tree,
                         &f.gen.users);
  const MiurResult exact = miur.Solve(query, KeywordSelect::kExact);
  const MiurResult approx = miur.Solve(query, KeywordSelect::kApprox);
  EXPECT_LE(approx.best.coverage(), exact.best.coverage());
}

}  // namespace
}  // namespace rst
