#include "rst/text/term_vector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "rst/common/rng.h"
#include "rst/text/vocabulary.h"

namespace rst {
namespace {

TermVector Vec(std::vector<TermWeight> entries) {
  return TermVector::FromUnsorted(std::move(entries));
}

TEST(TermVectorTest, FromUnsortedSortsDedupsAndDropsZeros) {
  TermVector v = Vec({{5, 2.0f}, {1, 1.0f}, {5, 3.0f}, {9, 0.0f}, {2, 0.5f}});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.entries()[0].term, 1u);
  EXPECT_EQ(v.entries()[1].term, 2u);
  EXPECT_EQ(v.entries()[2].term, 5u);
  EXPECT_EQ(v.Get(5), 3.0f);  // duplicate keeps max
  EXPECT_EQ(v.Get(9), 0.0f);
  EXPECT_FALSE(v.Contains(9));
}

TEST(TermVectorTest, GetAndContains) {
  TermVector v = Vec({{1, 1.0f}, {3, 2.0f}, {7, 0.25f}});
  EXPECT_EQ(v.Get(3), 2.0f);
  EXPECT_EQ(v.Get(4), 0.0f);
  EXPECT_TRUE(v.Contains(7));
  EXPECT_FALSE(v.Contains(0));
}

TEST(TermVectorTest, DotProduct) {
  TermVector a = Vec({{1, 1.0f}, {2, 2.0f}, {5, 3.0f}});
  TermVector b = Vec({{2, 4.0f}, {5, 1.0f}, {9, 7.0f}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 2.0 * 4.0 + 3.0 * 1.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), b.Dot(a));
  EXPECT_DOUBLE_EQ(a.Dot(TermVector()), 0.0);
}

TEST(TermVectorTest, CachedAggregates) {
  TermVector a = Vec({{1, 1.0f}, {2, 2.0f}});
  EXPECT_DOUBLE_EQ(a.NormSquared(), 5.0);
  EXPECT_DOUBLE_EQ(a.WeightSum(), 3.0);
  EXPECT_DOUBLE_EQ(a.Dot(a), a.NormSquared());
}

TEST(TermVectorTest, UnionMaxAndIntersectMin) {
  TermVector a = Vec({{1, 1.0f}, {2, 5.0f}, {4, 2.0f}});
  TermVector b = Vec({{2, 3.0f}, {4, 6.0f}, {8, 1.0f}});
  TermVector uni = TermVector::UnionMax(a, b);
  ASSERT_EQ(uni.size(), 4u);
  EXPECT_EQ(uni.Get(1), 1.0f);
  EXPECT_EQ(uni.Get(2), 5.0f);
  EXPECT_EQ(uni.Get(4), 6.0f);
  EXPECT_EQ(uni.Get(8), 1.0f);
  TermVector intr = TermVector::IntersectMin(a, b);
  ASSERT_EQ(intr.size(), 2u);
  EXPECT_EQ(intr.Get(2), 3.0f);
  EXPECT_EQ(intr.Get(4), 2.0f);
}

TEST(TermVectorTest, OverlapCountAndRestrict) {
  TermVector a = Vec({{1, 1.0f}, {2, 1.0f}, {3, 1.0f}});
  TermVector b = Vec({{2, 9.0f}, {3, 9.0f}, {4, 9.0f}});
  EXPECT_EQ(a.OverlapCount(b), 2u);
  TermVector r = a.Restrict(b);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.Get(2), 1.0f);  // keeps own weights
  EXPECT_EQ(r.Get(3), 1.0f);
}

TEST(TermVectorTest, TopKByWeight) {
  TermVector v = Vec({{1, 0.5f}, {2, 3.0f}, {3, 1.0f}, {4, 3.0f}});
  TermVector top2 = v.TopKByWeight(2);
  ASSERT_EQ(top2.size(), 2u);
  // Ties by weight resolve to the smaller term id (2 before 4).
  EXPECT_TRUE(top2.Contains(2));
  EXPECT_TRUE(top2.Contains(4));
  EXPECT_EQ(v.TopKByWeight(10).size(), 4u);
  EXPECT_TRUE(v.TopKByWeight(0).empty());
}

// Property: union/intersect bracket both inputs per term.
TEST(TermVectorTest, UnionIntersectBracketProperty) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<TermWeight> ea, eb;
    for (int i = 0; i < 30; ++i) {
      if (rng.Bernoulli(0.5)) {
        ea.push_back({static_cast<TermId>(rng.UniformInt(uint64_t{20})),
                      static_cast<float>(rng.Uniform(0.01, 2.0))});
      }
      if (rng.Bernoulli(0.5)) {
        eb.push_back({static_cast<TermId>(rng.UniformInt(uint64_t{20})),
                      static_cast<float>(rng.Uniform(0.01, 2.0))});
      }
    }
    TermVector a = Vec(std::move(ea)), b = Vec(std::move(eb));
    TermVector uni = TermVector::UnionMax(a, b);
    TermVector intr = TermVector::IntersectMin(a, b);
    for (TermId t = 0; t < 20; ++t) {
      EXPECT_GE(uni.Get(t), std::max(a.Get(t), b.Get(t)) - 1e-7f);
      EXPECT_LE(intr.Get(t), a.Get(t) + 1e-7f);
      EXPECT_LE(intr.Get(t), b.Get(t) + 1e-7f);
      if (a.Contains(t) && b.Contains(t)) {
        EXPECT_EQ(intr.Get(t), std::min(a.Get(t), b.Get(t)));
      } else {
        EXPECT_FALSE(intr.Contains(t));
      }
    }
  }
}

// Reference two-pointer implementations the adaptive (galloping) kernels
// must agree with at every skew ratio, including both sides of the
// gallop-dispatch threshold.
double RefDot(const TermVector& a, const TermVector& b) {
  double dot = 0.0;
  for (const TermWeight& e : a.entries()) {
    dot += static_cast<double>(e.weight) * b.Get(e.term);
  }
  return dot;
}

size_t RefOverlap(const TermVector& a, const TermVector& b) {
  size_t n = 0;
  for (const TermWeight& e : a.entries()) n += b.Contains(e.term) ? 1 : 0;
  return n;
}

TermVector RandomVec(Rng* rng, size_t size, TermId universe) {
  std::vector<TermWeight> entries;
  entries.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    entries.push_back(
        {static_cast<TermId>(rng->UniformInt(uint64_t{universe})),
         static_cast<float>(rng->Uniform(0.1, 4.0))});
  }
  return TermVector::FromUnsorted(std::move(entries));
}

TEST(TermVectorTest, SkewedKernelsMatchLinearReference) {
  Rng rng(99);
  // Size pairs straddling the galloping threshold (ratio 16): balanced,
  // just-below, just-above, and extreme skew — in both argument orders.
  const std::pair<size_t, size_t> shapes[] = {
      {8, 8}, {8, 100}, {4, 65}, {3, 200}, {2, 1500}, {1, 40}, {0, 50}};
  for (const auto& [small, large] : shapes) {
    for (int trial = 0; trial < 8; ++trial) {
      const TermVector a = RandomVec(&rng, small, 4000);
      const TermVector b = RandomVec(&rng, large, 4000);
      for (const auto& [x, y] : {std::pair(a, b), std::pair(b, a)}) {
        EXPECT_NEAR(x.Dot(y), RefDot(x, y), 1e-9);
        EXPECT_EQ(x.OverlapCount(y), RefOverlap(x, y));

        const TermVector inter = TermVector::IntersectMin(x, y);
        const TermVector uni = TermVector::UnionMax(x, y);
        for (const TermWeight& e : inter.entries()) {
          EXPECT_EQ(e.weight, std::min(x.Get(e.term), y.Get(e.term)));
        }
        EXPECT_EQ(inter.size(), RefOverlap(x, y));
        for (const TermWeight& e : uni.entries()) {
          EXPECT_EQ(e.weight, std::max(x.Get(e.term), y.Get(e.term)));
        }
        size_t distinct = x.size() + y.size() - RefOverlap(x, y);
        EXPECT_EQ(uni.size(), distinct);

        const TermVector restricted = x.Restrict(y);
        EXPECT_EQ(restricted.size(), RefOverlap(x, y));
        for (const TermWeight& e : restricted.entries()) {
          EXPECT_EQ(e.weight, x.Get(e.term));  // keeps x's weights
          EXPECT_TRUE(y.Contains(e.term));
        }
      }
    }
  }
}

TEST(VocabularyTest, InternsAndFinds) {
  Vocabulary vocab;
  const TermId sushi = vocab.GetOrAdd("sushi");
  const TermId noodles = vocab.GetOrAdd("noodles");
  EXPECT_NE(sushi, noodles);
  EXPECT_EQ(vocab.GetOrAdd("sushi"), sushi);
  EXPECT_EQ(vocab.Find("noodles"), noodles);
  EXPECT_EQ(vocab.Find("pizza"), Vocabulary::kNotFound);
  EXPECT_EQ(vocab.TermString(sushi), "sushi");
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabularyTest, TokenizeAndAdd) {
  Vocabulary vocab;
  auto tokens = vocab.TokenizeAndAdd("Sushi, seafood; SUSHI noodles!");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], tokens[2]);  // case-folded duplicates
  EXPECT_EQ(vocab.size(), 3u);
}

}  // namespace
}  // namespace rst
