#include "rst/text/term_vector.h"

#include <gtest/gtest.h>

#include "rst/common/rng.h"
#include "rst/text/vocabulary.h"

namespace rst {
namespace {

TermVector Vec(std::vector<TermWeight> entries) {
  return TermVector::FromUnsorted(std::move(entries));
}

TEST(TermVectorTest, FromUnsortedSortsDedupsAndDropsZeros) {
  TermVector v = Vec({{5, 2.0f}, {1, 1.0f}, {5, 3.0f}, {9, 0.0f}, {2, 0.5f}});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.entries()[0].term, 1u);
  EXPECT_EQ(v.entries()[1].term, 2u);
  EXPECT_EQ(v.entries()[2].term, 5u);
  EXPECT_EQ(v.Get(5), 3.0f);  // duplicate keeps max
  EXPECT_EQ(v.Get(9), 0.0f);
  EXPECT_FALSE(v.Contains(9));
}

TEST(TermVectorTest, GetAndContains) {
  TermVector v = Vec({{1, 1.0f}, {3, 2.0f}, {7, 0.25f}});
  EXPECT_EQ(v.Get(3), 2.0f);
  EXPECT_EQ(v.Get(4), 0.0f);
  EXPECT_TRUE(v.Contains(7));
  EXPECT_FALSE(v.Contains(0));
}

TEST(TermVectorTest, DotProduct) {
  TermVector a = Vec({{1, 1.0f}, {2, 2.0f}, {5, 3.0f}});
  TermVector b = Vec({{2, 4.0f}, {5, 1.0f}, {9, 7.0f}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 2.0 * 4.0 + 3.0 * 1.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), b.Dot(a));
  EXPECT_DOUBLE_EQ(a.Dot(TermVector()), 0.0);
}

TEST(TermVectorTest, CachedAggregates) {
  TermVector a = Vec({{1, 1.0f}, {2, 2.0f}});
  EXPECT_DOUBLE_EQ(a.NormSquared(), 5.0);
  EXPECT_DOUBLE_EQ(a.WeightSum(), 3.0);
  EXPECT_DOUBLE_EQ(a.Dot(a), a.NormSquared());
}

TEST(TermVectorTest, UnionMaxAndIntersectMin) {
  TermVector a = Vec({{1, 1.0f}, {2, 5.0f}, {4, 2.0f}});
  TermVector b = Vec({{2, 3.0f}, {4, 6.0f}, {8, 1.0f}});
  TermVector uni = TermVector::UnionMax(a, b);
  ASSERT_EQ(uni.size(), 4u);
  EXPECT_EQ(uni.Get(1), 1.0f);
  EXPECT_EQ(uni.Get(2), 5.0f);
  EXPECT_EQ(uni.Get(4), 6.0f);
  EXPECT_EQ(uni.Get(8), 1.0f);
  TermVector intr = TermVector::IntersectMin(a, b);
  ASSERT_EQ(intr.size(), 2u);
  EXPECT_EQ(intr.Get(2), 3.0f);
  EXPECT_EQ(intr.Get(4), 2.0f);
}

TEST(TermVectorTest, OverlapCountAndRestrict) {
  TermVector a = Vec({{1, 1.0f}, {2, 1.0f}, {3, 1.0f}});
  TermVector b = Vec({{2, 9.0f}, {3, 9.0f}, {4, 9.0f}});
  EXPECT_EQ(a.OverlapCount(b), 2u);
  TermVector r = a.Restrict(b);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.Get(2), 1.0f);  // keeps own weights
  EXPECT_EQ(r.Get(3), 1.0f);
}

TEST(TermVectorTest, TopKByWeight) {
  TermVector v = Vec({{1, 0.5f}, {2, 3.0f}, {3, 1.0f}, {4, 3.0f}});
  TermVector top2 = v.TopKByWeight(2);
  ASSERT_EQ(top2.size(), 2u);
  // Ties by weight resolve to the smaller term id (2 before 4).
  EXPECT_TRUE(top2.Contains(2));
  EXPECT_TRUE(top2.Contains(4));
  EXPECT_EQ(v.TopKByWeight(10).size(), 4u);
  EXPECT_TRUE(v.TopKByWeight(0).empty());
}

// Property: union/intersect bracket both inputs per term.
TEST(TermVectorTest, UnionIntersectBracketProperty) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<TermWeight> ea, eb;
    for (int i = 0; i < 30; ++i) {
      if (rng.Bernoulli(0.5)) {
        ea.push_back({static_cast<TermId>(rng.UniformInt(uint64_t{20})),
                      static_cast<float>(rng.Uniform(0.01, 2.0))});
      }
      if (rng.Bernoulli(0.5)) {
        eb.push_back({static_cast<TermId>(rng.UniformInt(uint64_t{20})),
                      static_cast<float>(rng.Uniform(0.01, 2.0))});
      }
    }
    TermVector a = Vec(std::move(ea)), b = Vec(std::move(eb));
    TermVector uni = TermVector::UnionMax(a, b);
    TermVector intr = TermVector::IntersectMin(a, b);
    for (TermId t = 0; t < 20; ++t) {
      EXPECT_GE(uni.Get(t), std::max(a.Get(t), b.Get(t)) - 1e-7f);
      EXPECT_LE(intr.Get(t), a.Get(t) + 1e-7f);
      EXPECT_LE(intr.Get(t), b.Get(t) + 1e-7f);
      if (a.Contains(t) && b.Contains(t)) {
        EXPECT_EQ(intr.Get(t), std::min(a.Get(t), b.Get(t)));
      } else {
        EXPECT_FALSE(intr.Contains(t));
      }
    }
  }
}

TEST(VocabularyTest, InternsAndFinds) {
  Vocabulary vocab;
  const TermId sushi = vocab.GetOrAdd("sushi");
  const TermId noodles = vocab.GetOrAdd("noodles");
  EXPECT_NE(sushi, noodles);
  EXPECT_EQ(vocab.GetOrAdd("sushi"), sushi);
  EXPECT_EQ(vocab.Find("noodles"), noodles);
  EXPECT_EQ(vocab.Find("pizza"), Vocabulary::kNotFound);
  EXPECT_EQ(vocab.TermString(sushi), "sushi");
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabularyTest, TokenizeAndAdd) {
  Vocabulary vocab;
  auto tokens = vocab.TokenizeAndAdd("Sushi, seafood; SUSHI noodles!");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], tokens[2]);  // case-folded duplicates
  EXPECT_EQ(vocab.size(), 3u);
}

}  // namespace
}  // namespace rst
