// Property tests for the node-level similarity bounds — the foundation of
// every pruning rule in the library (DESIGN.md §3.1). For random groups of
// documents/users summarized the way IUR-/MIR-tree nodes summarize their
// subtrees, MinSim/MaxSim must bracket the exact similarity of every
// contained pair, and MinScore/MaxScore must bracket every combined score.

#include <gtest/gtest.h>

#include <vector>

#include "rst/common/rng.h"
#include "rst/text/similarity.h"
#include "rst/text/weighting.h"

namespace rst {
namespace {

constexpr size_t kVocab = 24;

TermVector RandomDoc(Rng* rng, double density, float max_w) {
  std::vector<TermWeight> entries;
  for (TermId t = 0; t < kVocab; ++t) {
    if (rng->Bernoulli(density)) {
      entries.push_back({t, static_cast<float>(rng->Uniform(0.05, max_w))});
    }
  }
  return TermVector::FromUnsorted(std::move(entries));
}

TermVector RandomKeywordSet(Rng* rng, double density) {
  std::vector<TermId> terms;
  for (TermId t = 0; t < kVocab; ++t) {
    if (rng->Bernoulli(density)) terms.push_back(t);
  }
  return TermVector::FromTerms(terms);
}

TextSummary Summarize(const std::vector<TermVector>& docs) {
  TextSummary s;
  for (const TermVector& d : docs) {
    s = TextSummary::Merge(s, TextSummary::FromDoc(d));
  }
  return s;
}

class SymmetricBoundsTest : public ::testing::TestWithParam<TextMeasure> {};

TEST_P(SymmetricBoundsTest, BoundsBracketAllPairs) {
  const TextMeasure measure = GetParam();
  TextSimilarity sim(measure);
  Rng rng(1234 + static_cast<int>(measure));
  for (int trial = 0; trial < 300; ++trial) {
    const size_t na = 1 + rng.UniformInt(uint64_t{5});
    const size_t nb = 1 + rng.UniformInt(uint64_t{5});
    std::vector<TermVector> group_a, group_b;
    const double density = rng.Uniform(0.1, 0.6);
    for (size_t i = 0; i < na; ++i) {
      group_a.push_back(RandomDoc(&rng, density, 2.0f));
    }
    for (size_t i = 0; i < nb; ++i) {
      group_b.push_back(RandomDoc(&rng, density, 2.0f));
    }
    const TextSummary sa = Summarize(group_a);
    const TextSummary sb = Summarize(group_b);
    const double lo = sim.MinSim(sa, sb);
    const double hi = sim.MaxSim(sa, sb);
    EXPECT_LE(lo, hi + 1e-9);
    for (const TermVector& da : group_a) {
      for (const TermVector& db : group_b) {
        const double s = sim.Sim(da, db);
        EXPECT_LE(lo, s + 1e-9) << "measure=" << TextMeasureName(measure)
                                << " trial=" << trial;
        EXPECT_GE(hi, s - 1e-9) << "measure=" << TextMeasureName(measure)
                                << " trial=" << trial;
      }
    }
  }
}

TEST_P(SymmetricBoundsTest, SingletonSummariesAreTight) {
  const TextMeasure measure = GetParam();
  TextSimilarity sim(measure);
  Rng rng(77 + static_cast<int>(measure));
  for (int trial = 0; trial < 100; ++trial) {
    TermVector a = RandomDoc(&rng, 0.4, 2.0f);
    TermVector b = RandomDoc(&rng, 0.4, 2.0f);
    if (a.empty() || b.empty()) continue;
    const TextSummary sa = TextSummary::FromDoc(a);
    const TextSummary sb = TextSummary::FromDoc(b);
    const double s = sim.Sim(a, b);
    EXPECT_NEAR(sim.MinSim(sa, sb), s, 1e-9);
    EXPECT_NEAR(sim.MaxSim(sa, sb), s, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Measures, SymmetricBoundsTest,
                         ::testing::Values(TextMeasure::kExtendedJaccard,
                                           TextMeasure::kCosine),
                         [](const auto& info) {
                           return TextMeasureName(info.param);
                         });

// The sum-form measure is asymmetric: group B is a set of users (keyword
// sets). Its bounds must hold for every (object doc, user) pair.
TEST(SumBoundsTest, BoundsBracketAllObjectUserPairs) {
  Rng rng(4321);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<TermVector> objects, users;
    const size_t no = 1 + rng.UniformInt(uint64_t{5});
    const size_t nu = 1 + rng.UniformInt(uint64_t{5});
    for (size_t i = 0; i < no; ++i) {
      objects.push_back(RandomDoc(&rng, rng.Uniform(0.1, 0.5), 1.0f));
    }
    for (size_t i = 0; i < nu; ++i) {
      users.push_back(RandomKeywordSet(&rng, rng.Uniform(0.1, 0.5)));
    }
    // Corpus max weights must dominate all object weights (precondition).
    std::vector<float> cmax = ComputeCorpusMaxWeights(objects, kVocab);
    for (float& c : cmax) c = std::max(c, 0.01f);
    TextSimilarity sim(TextMeasure::kSum, &cmax);

    const TextSummary so = Summarize(objects);
    const TextSummary su = Summarize(users);
    const double lo = sim.MinSim(so, su);
    const double hi = sim.MaxSim(so, su);
    EXPECT_LE(lo, hi + 1e-9);
    for (const TermVector& o : objects) {
      for (const TermVector& u : users) {
        const double s = sim.Sim(o, u);
        EXPECT_LE(lo, s + 1e-9) << "trial=" << trial;
        EXPECT_GE(hi, s - 1e-9) << "trial=" << trial;
      }
    }
  }
}

// Additionally, the sum bounds must hold for *hypothetical* users anywhere
// between the intersection and the union of the summarized keyword sets —
// that is what super-user pruning relies on (2016 paper, Lemma 2).
TEST(SumBoundsTest, BoundsCoverAnySubsetBetweenIntrAndUni) {
  Rng rng(9876);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<TermVector> objects = {RandomDoc(&rng, 0.4, 1.0f),
                                       RandomDoc(&rng, 0.4, 1.0f)};
    std::vector<TermVector> users = {RandomKeywordSet(&rng, 0.5),
                                     RandomKeywordSet(&rng, 0.5)};
    std::vector<float> cmax = ComputeCorpusMaxWeights(objects, kVocab);
    for (float& c : cmax) c = std::max(c, 0.01f);
    TextSimilarity sim(TextMeasure::kSum, &cmax);
    const TextSummary so = Summarize(objects);
    const TextSummary su = Summarize(users);
    const double lo = sim.MinSim(so, su);
    const double hi = sim.MaxSim(so, su);
    // Construct random subsets S with intr ⊆ S ⊆ uni.
    for (int s = 0; s < 30; ++s) {
      std::vector<TermId> terms;
      for (const TermWeight& e : su.uni.entries()) {
        if (su.intr.Contains(e.term) || rng.Bernoulli(0.5)) {
          terms.push_back(e.term);
        }
      }
      if (terms.empty()) continue;
      const TermVector hypothetical = TermVector::FromTerms(terms);
      for (const TermVector& o : objects) {
        const double score = sim.Sim(o, hypothetical);
        EXPECT_LE(lo, score + 1e-9);
        EXPECT_GE(hi, score - 1e-9);
      }
    }
  }
}

TEST(StScorerBoundsTest, ScoreBoundsBracketContainedPairs) {
  Rng rng(555);
  TextSimilarity ej(TextMeasure::kExtendedJaccard);
  for (double alpha : {0.0, 0.3, 0.7, 1.0}) {
    StScorer scorer(&ej, {alpha, 30.0});
    for (int trial = 0; trial < 100; ++trial) {
      const Rect ra =
          Rect::FromCorners(rng.Uniform(-10, 10), rng.Uniform(-10, 10),
                            rng.Uniform(-10, 10), rng.Uniform(-10, 10));
      const Rect rb =
          Rect::FromCorners(rng.Uniform(-10, 10), rng.Uniform(-10, 10),
                            rng.Uniform(-10, 10), rng.Uniform(-10, 10));
      std::vector<TermVector> da = {RandomDoc(&rng, 0.3, 1.5f),
                                    RandomDoc(&rng, 0.3, 1.5f)};
      std::vector<TermVector> db = {RandomDoc(&rng, 0.3, 1.5f),
                                    RandomDoc(&rng, 0.3, 1.5f)};
      const TextSummary sa = Summarize(da);
      const TextSummary sb = Summarize(db);
      const double lo = scorer.MinScore(ra, sa, rb, sb);
      const double hi = scorer.MaxScore(ra, sa, rb, sb);
      for (int s = 0; s < 10; ++s) {
        const Point pa{rng.Uniform(ra.min_x, ra.max_x),
                       rng.Uniform(ra.min_y, ra.max_y)};
        const Point pb{rng.Uniform(rb.min_x, rb.max_x),
                       rng.Uniform(rb.min_y, rb.max_y)};
        for (const TermVector& va : da) {
          for (const TermVector& vb : db) {
            const double score = scorer.Score(pa, va, pb, vb);
            EXPECT_LE(lo, score + 1e-9) << "alpha=" << alpha;
            EXPECT_GE(hi, score - 1e-9) << "alpha=" << alpha;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace rst
