#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "rst/common/rng.h"
#include "rst/obs/metrics.h"
#include "rst/obs/trace.h"
#include "rst/storage/buffer_pool.h"
#include "rst/storage/codec.h"
#include "rst/storage/page_store.h"
#include "rst/storage/varint.h"

namespace rst {
namespace {

TEST(VarintTest, RoundTripEdgeValues) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                     0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), VarintLength(v));
    size_t off = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buf, &off, &decoded).ok());
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(off, buf.size());
  }
}

TEST(VarintTest, TruncationIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 1234567890123ull);
  buf.resize(buf.size() - 1);
  size_t off = 0;
  uint64_t v = 0;
  EXPECT_EQ(GetVarint64(buf, &off, &v).code(), StatusCode::kCorruption);
}

TEST(VarintTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 0x1FFFFFFFFull);
  size_t off = 0;
  uint32_t v = 0;
  EXPECT_EQ(GetVarint32(buf, &off, &v).code(), StatusCode::kCorruption);
}

TEST(VarintTest, FloatAndDoubleRoundTrip) {
  std::string buf;
  PutFloat(&buf, 3.25f);
  PutDouble(&buf, -1.5e300);
  size_t off = 0;
  float f = 0;
  double d = 0;
  ASSERT_TRUE(GetFloat(buf, &off, &f).ok());
  ASSERT_TRUE(GetDouble(buf, &off, &d).ok());
  EXPECT_EQ(f, 3.25f);
  EXPECT_EQ(d, -1.5e300);
}

TEST(CodecTest, TermVectorRoundTrip) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<TermWeight> entries;
    TermId t = 0;
    const size_t n = rng.UniformInt(uint64_t{40});
    for (size_t i = 0; i < n; ++i) {
      t += 1 + static_cast<TermId>(rng.UniformInt(uint64_t{1000}));
      entries.push_back({t, static_cast<float>(rng.Uniform(0.001, 9.0))});
    }
    const TermVector vec = TermVector::FromSorted(std::move(entries));
    std::string buf;
    EncodeTermVector(vec, &buf);
    EXPECT_EQ(buf.size(), TermVectorEncodedSize(vec));
    size_t off = 0;
    TermVector out;
    ASSERT_TRUE(DecodeTermVector(buf, &off, &out).ok());
    EXPECT_EQ(out, vec);
    EXPECT_EQ(off, buf.size());
  }
}

TEST(CodecTest, TextSummaryRoundTrip) {
  TextSummary s;
  s.count = 17;
  s.uni = TermVector::FromUnsorted({{1, 2.0f}, {9, 1.0f}});
  s.intr = TermVector::FromUnsorted({{9, 0.5f}});
  std::string buf;
  EncodeTextSummary(s, &buf);
  size_t off = 0;
  TextSummary out;
  ASSERT_TRUE(DecodeTextSummary(buf, &off, &out).ok());
  EXPECT_EQ(out.count, 17u);
  EXPECT_EQ(out.uni, s.uni);
  EXPECT_EQ(out.intr, s.intr);
}

TEST(CodecTest, InvertedFileRoundTrip) {
  InvertedFile file;
  file[3] = {{0, 1.0f, 0.5f}, {4, 2.0f, 0.0f}};
  file[17] = {{2, 0.25f, 0.25f}};
  std::string buf;
  EncodeInvertedFile(file, &buf);
  EXPECT_EQ(buf.size(), InvertedFileEncodedSize(file));
  size_t off = 0;
  InvertedFile out;
  ASSERT_TRUE(DecodeInvertedFile(buf, &off, &out).ok());
  EXPECT_EQ(out, file);
}

TEST(CodecTest, CorruptedInvertedFileFailsCleanly) {
  InvertedFile file;
  file[3] = {{0, 1.0f, 0.5f}};
  std::string buf;
  EncodeInvertedFile(file, &buf);
  buf.resize(buf.size() / 2);
  size_t off = 0;
  InvertedFile out;
  EXPECT_FALSE(DecodeInvertedFile(buf, &off, &out).ok());
}

TEST(PageStoreTest, WriteReadRoundTripAndAccounting) {
  PageStore store;
  IoStats stats;
  const std::string small(100, 'a');
  const std::string large(3 * PageStore::kPageSize + 5, 'b');
  const PageHandle h1 = store.Write(small);
  const PageHandle h2 = store.Write(large);
  EXPECT_EQ(h1.num_pages, 1u);
  EXPECT_EQ(h2.num_pages, 4u);
  EXPECT_EQ(store.num_pages(), 5u);

  std::string out;
  ASSERT_TRUE(store.Read(h1, &out, &stats).ok());
  EXPECT_EQ(out, small);
  EXPECT_EQ(stats.payload_blocks, 1u);
  ASSERT_TRUE(store.Read(h2, &out, &stats).ok());
  EXPECT_EQ(out, large);
  EXPECT_EQ(stats.payload_blocks, 5u);
  EXPECT_EQ(stats.payload_bytes, small.size() + large.size());
}

TEST(PageStoreTest, InvalidHandleRejected) {
  PageStore store;
  std::string out;
  PageHandle bogus;
  bogus.first_page = 10;
  bogus.num_pages = 1;
  bogus.bytes = 10;
  EXPECT_FALSE(store.Read(bogus, &out, nullptr).ok());
}

TEST(PageStoreTest, EmptyPayload) {
  PageStore store;
  const PageHandle h = store.Write("");
  std::string out = "junk";
  ASSERT_TRUE(store.Read(h, &out, nullptr).ok());
  EXPECT_TRUE(out.empty());
}

TEST(BufferPoolTest, HitsDoNotChargeIo) {
  PageStore store;
  const PageHandle h = store.Write(std::string(10, 'x'));
  BufferPool pool(&store, /*capacity_pages=*/8);
  IoStats stats;
  auto r1 = pool.Fetch(h, &stats);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(stats.payload_blocks, 1u);
  auto r2 = pool.Fetch(h, &stats);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(stats.payload_blocks, 1u);  // unchanged: cache hit
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(r2.value()->at(0), 'x');
}

TEST(BufferPoolTest, LruEvictsColdest) {
  PageStore store;
  std::vector<PageHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(store.Write(std::string(PageStore::kPageSize, 'a' + i)));
  }
  BufferPool pool(&store, /*capacity_pages=*/2);
  IoStats stats;
  ASSERT_TRUE(pool.Fetch(handles[0], &stats).ok());
  ASSERT_TRUE(pool.Fetch(handles[1], &stats).ok());
  // Touch 0 so 1 becomes the LRU victim.
  ASSERT_TRUE(pool.Fetch(handles[0], &stats).ok());
  ASSERT_TRUE(pool.Fetch(handles[2], &stats).ok());  // evicts 1
  EXPECT_EQ(pool.used_pages(), 2u);
  stats.Reset();
  ASSERT_TRUE(pool.Fetch(handles[0], &stats).ok());
  EXPECT_EQ(stats.payload_blocks, 0u);  // still resident
  ASSERT_TRUE(pool.Fetch(handles[1], &stats).ok());
  EXPECT_EQ(stats.payload_blocks, 1u);  // was evicted
}

TEST(BufferPoolTest, PinnedPayloadSurvivesPressure) {
  PageStore store;
  std::vector<PageHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(store.Write(std::string(PageStore::kPageSize, 'a' + i)));
  }
  BufferPool pool(&store, /*capacity_pages=*/2);
  IoStats stats;
  ASSERT_TRUE(pool.Pin(handles[0], &stats).ok());
  ASSERT_TRUE(pool.Fetch(handles[1], &stats).ok());
  ASSERT_TRUE(pool.Fetch(handles[2], &stats).ok());
  ASSERT_TRUE(pool.Fetch(handles[3], &stats).ok());
  stats.Reset();
  ASSERT_TRUE(pool.Fetch(handles[0], &stats).ok());
  EXPECT_EQ(stats.payload_blocks, 0u);  // pinned: never evicted
  ASSERT_TRUE(pool.Unpin(handles[0]).ok());
  EXPECT_FALSE(pool.Unpin(handles[0]).ok());  // double unpin rejected
}

TEST(BufferPoolTest, ZeroCapacityDisablesCaching) {
  PageStore store;
  const PageHandle h = store.Write("abc");
  BufferPool pool(&store, 0);
  IoStats stats;
  ASSERT_TRUE(pool.Fetch(h, &stats).ok());
  ASSERT_TRUE(pool.Fetch(h, &stats).ok());
  EXPECT_EQ(stats.payload_blocks, 2u);
  EXPECT_EQ(pool.resident_payloads(), 0u);
}

TEST(BufferPoolTest, EvictionAccountingReachesRegistry) {
  PageStore store;
  std::vector<PageHandle> handles;
  for (int i = 0; i < 3; ++i) {
    handles.push_back(store.Write(std::string(PageStore::kPageSize, 'a' + i)));
  }
  const obs::MetricsSnapshot before = obs::MetricRegistry::Global().Snapshot();
  BufferPool pool(&store, /*capacity_pages=*/1);
  IoStats stats;
  ASSERT_TRUE(pool.Fetch(handles[0], &stats).ok());
  ASSERT_TRUE(pool.Fetch(handles[1], &stats).ok());  // evicts 0
  ASSERT_TRUE(pool.Fetch(handles[2], &stats).ok());  // evicts 1
  ASSERT_TRUE(pool.Fetch(handles[0], &stats).ok());  // evicts 2
  EXPECT_EQ(pool.evictions(), 3u);
  EXPECT_EQ(pool.misses(), 4u);
  EXPECT_EQ(pool.used_pages(), 1u);

  const obs::MetricsSnapshot delta =
      obs::MetricRegistry::Global().Snapshot().Delta(before);
  EXPECT_EQ(delta.counters.at("storage.buffer_pool.evictions"), 3u);
  EXPECT_EQ(delta.counters.at("storage.buffer_pool.misses"), 4u);
}

TEST(BufferPoolTest, HitRateTracksHitsOverAccesses) {
  PageStore store;
  const PageHandle h = store.Write("payload");
  BufferPool pool(&store, /*capacity_pages=*/4);
  EXPECT_DOUBLE_EQ(pool.hit_rate(), 0.0);  // no accesses yet
  IoStats stats;
  ASSERT_TRUE(pool.Fetch(h, &stats).ok());  // miss
  EXPECT_DOUBLE_EQ(pool.hit_rate(), 0.0);
  ASSERT_TRUE(pool.Fetch(h, &stats).ok());  // hit
  ASSERT_TRUE(pool.Fetch(h, &stats).ok());  // hit
  ASSERT_TRUE(pool.Fetch(h, &stats).ok());  // hit
  EXPECT_DOUBLE_EQ(pool.hit_rate(), 0.75);
}

TEST(BufferPoolTest, MissFillsRecordTraceSpans) {
  PageStore store;
  const PageHandle h = store.Write("abc");
  BufferPool pool(&store, /*capacity_pages=*/4);
  obs::QueryTrace trace("test");
  pool.set_trace(&trace);
  IoStats stats;
  ASSERT_TRUE(pool.Fetch(h, &stats).ok());  // miss: fill span
  ASSERT_TRUE(pool.Fetch(h, &stats).ok());  // hit: no span
  trace.Finish();
  ASSERT_EQ(trace.root().children.size(), 1u);
  EXPECT_EQ(trace.root().children[0]->name, "buffer_pool.fill");
  EXPECT_EQ(trace.root().children[0]->calls, 1u);
}

TEST(BufferPoolTest, ConcurrentReadersStayConsistent) {
  // Several threads hammer one pool with deterministic fetch sequences.
  // Under TSan this exercises the shared-lock hit path racing the unique-lock
  // fill path; on any build it checks the accounting invariants.
  PageStore store;
  std::vector<PageHandle> handles;
  for (int i = 0; i < 12; ++i) {
    handles.push_back(
        store.Write(std::string(PageStore::kPageSize, 'a' + i % 26)));
  }
  BufferPool pool(&store, /*capacity_pages=*/6);

  constexpr size_t kThreads = 6;
  constexpr size_t kFetchesPerThread = 400;
  std::vector<IoStats> per_thread(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kFetchesPerThread; ++i) {
        const size_t pick = (i * (t + 3)) % handles.size();
        auto r = pool.Fetch(handles[pick], &per_thread[t]);
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r.value()->size(), PageStore::kPageSize);
        ASSERT_EQ(r.value()->at(0), static_cast<char>('a' + pick % 26));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Every access is a hit or a miss (a raced double-fill counts as two
  // misses, so the identity still holds).
  EXPECT_EQ(pool.hits() + pool.misses(), kThreads * kFetchesPerThread);
  uint64_t thread_hits = 0;
  for (const IoStats& s : per_thread) thread_hits += s.cache_hits;
  EXPECT_EQ(thread_hits, pool.hits());
  EXPECT_LE(pool.used_pages(), 6u);
  EXPECT_GT(pool.hits(), 0u);
  EXPECT_GT(pool.misses(), 0u);
}

TEST(IoStatsTest, BlockRoundingAndTotal) {
  IoStats stats;
  stats.AddNodeRead();
  stats.AddPayloadRead(1);
  stats.AddPayloadRead(IoStats::kPageSize);
  stats.AddPayloadRead(IoStats::kPageSize + 1);
  EXPECT_EQ(stats.node_reads, 1u);
  EXPECT_EQ(stats.payload_blocks, 1u + 1u + 2u);
  EXPECT_EQ(stats.TotalIos(), 5u);
  IoStats other;
  other.AddNodeRead();
  stats += other;
  EXPECT_EQ(stats.node_reads, 2u);
  stats.Reset();
  EXPECT_EQ(stats.TotalIos(), 0u);
}

TEST(IoStatsTest, PayloadBlockCeilEdgeCases) {
  IoStats stats;
  stats.AddPayloadRead(0);  // ceil(0/4096) = 0: no block charged
  EXPECT_EQ(stats.payload_blocks, 0u);
  EXPECT_EQ(stats.payload_bytes, 0u);
  stats.AddPayloadRead(4096);  // exactly one page
  EXPECT_EQ(stats.payload_blocks, 1u);
  stats.AddPayloadRead(4097);  // one byte over: two pages
  EXPECT_EQ(stats.payload_blocks, 3u);
  EXPECT_EQ(stats.payload_bytes, 4096u + 4097u);
}

TEST(IoStatsTest, ToStringFormatsAllFields) {
  IoStats stats;
  EXPECT_EQ(stats.ToString(),
            "IoStats{nodes=0, blocks=0, bytes=0, hits=0, total=0}");
  stats.AddNodeRead();
  stats.AddNodeRead();
  stats.AddPayloadRead(4097);
  stats.AddCacheHit();
  EXPECT_EQ(stats.ToString(),
            "IoStats{nodes=2, blocks=2, bytes=4097, hits=1, total=4}");
}

TEST(IoStatsTest, PublishBridgesFieldsToRegistry) {
  const obs::MetricsSnapshot before = obs::MetricRegistry::Global().Snapshot();
  IoStats stats;
  stats.AddNodeRead();
  stats.AddPayloadRead(IoStats::kPageSize + 1);
  stats.AddCacheHit();
  // rst-lint: allow(metric-name-literal) scratch prefix; this test pins Publish() expansion itself
  stats.Publish("test.io");
  const obs::MetricsSnapshot delta =
      obs::MetricRegistry::Global().Snapshot().Delta(before);
  EXPECT_EQ(delta.counters.at("test.io.node_reads"), 1u);
  EXPECT_EQ(delta.counters.at("test.io.payload_blocks"), 2u);
  EXPECT_EQ(delta.counters.at("test.io.payload_bytes"), IoStats::kPageSize + 1);
  EXPECT_EQ(delta.counters.at("test.io.cache_hits"), 1u);
}

}  // namespace
}  // namespace rst
