// Tests for the ℓ-MaxBRSTkNN extension (SolveTopL): top-ℓ placements at
// distinct locations ranked by coverage.

#include <gtest/gtest.h>

#include "rst/data/generators.h"
#include "rst/maxbrst/maxbrst.h"

namespace rst {
namespace {

struct TopLFixture {
  Dataset dataset;
  GeneratedUsers gen;
  IurTree tree;
  TextSimilarity sim;
  StScorer scorer;
  std::vector<double> rsk;
  MaxBrstQuery query;

  TopLFixture()
      : tree(IurTree::Build({}, {})),
        // Placeholder measure: kSum requires corpus-max normalizers, which
        // exist only after the dataset is generated in the body (reassigned
        // there). EJ keeps the pre-init state assert-clean in Debug builds.
        sim(TextMeasure::kExtendedJaccard),
        scorer(&sim, {0.5, 1.0}) {
    FlickrLikeConfig config;
    config.num_objects = 800;
    config.vocab_size = 300;
    config.seed = 91;
    dataset = GenFlickrLike(config, {Weighting::kLanguageModel, 0.1});
    UserGenConfig ucfg;
    ucfg.num_users = 50;
    ucfg.area_extent = 25.0;
    ucfg.seed = 92;
    gen = GenUsers(dataset, ucfg);
    tree = IurTree::BuildFromDataset(dataset, {});
    sim = TextSimilarity(TextMeasure::kSum, &dataset.corpus_max());
    scorer = StScorer(&sim, {0.5, dataset.max_dist()});
    JointTopKProcessor proc(&tree, &dataset, &scorer);
    rsk = proc.Process(gen.users, 10).rsk;
    query.locations = GenCandidateLocations(gen.area, 12, 93);
    query.keywords = gen.candidate_keywords;
    query.ws = 2;
    query.k = 10;
  }
};

TEST(SolveTopLTest, TopOneEqualsSolve) {
  TopLFixture f;
  MaxBrstSolver solver(&f.dataset, &f.scorer);
  const MaxBrstResult single =
      solver.Solve(f.gen.users, f.rsk, f.query, KeywordSelect::kExact);
  const auto top1 =
      solver.SolveTopL(f.gen.users, f.rsk, f.query, KeywordSelect::kExact, 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].location_index, single.location_index);
  EXPECT_EQ(top1[0].coverage(), single.coverage());
  EXPECT_EQ(top1[0].keywords, single.keywords);
}

TEST(SolveTopLTest, CoveragesAreNonIncreasingAndLocationsDistinct) {
  TopLFixture f;
  MaxBrstSolver solver(&f.dataset, &f.scorer);
  const auto top5 =
      solver.SolveTopL(f.gen.users, f.rsk, f.query, KeywordSelect::kExact, 5);
  ASSERT_LE(top5.size(), 5u);
  ASSERT_GE(top5.size(), 1u);
  std::set<size_t> locations;
  for (size_t i = 0; i < top5.size(); ++i) {
    if (i > 0) EXPECT_LE(top5[i].coverage(), top5[i - 1].coverage());
    if (top5[i].location_index != SIZE_MAX) {
      EXPECT_TRUE(locations.insert(top5[i].location_index).second)
          << "duplicate location at rank " << i;
    }
  }
}

TEST(SolveTopLTest, MatchesBruteForcePerLocationOptima) {
  TopLFixture f;
  MaxBrstSolver solver(&f.dataset, &f.scorer);
  const size_t ell = 4;
  const auto top =
      solver.SolveTopL(f.gen.users, f.rsk, f.query, KeywordSelect::kExact, ell);

  // Oracle: best coverage achievable at each location independently.
  std::vector<size_t> per_location;
  for (size_t li = 0; li < f.query.locations.size(); ++li) {
    MaxBrstQuery one = f.query;
    one.locations = {f.query.locations[li]};
    per_location.push_back(
        BruteForceMaxBrst(f.gen.users, f.rsk, f.dataset, f.scorer, one)
            .coverage());
  }
  std::sort(per_location.rbegin(), per_location.rend());
  for (size_t i = 0; i < top.size() && i < ell; ++i) {
    EXPECT_EQ(top[i].coverage(), per_location[i]) << "rank " << i;
  }
}

TEST(SolveTopLTest, EllLargerThanLocations) {
  TopLFixture f;
  MaxBrstSolver solver(&f.dataset, &f.scorer);
  const auto all = solver.SolveTopL(f.gen.users, f.rsk, f.query,
                                    KeywordSelect::kApprox, 100);
  EXPECT_LE(all.size(), f.query.locations.size());
}

TEST(SolveTopLTest, EllZeroIsEmpty) {
  TopLFixture f;
  MaxBrstSolver solver(&f.dataset, &f.scorer);
  EXPECT_TRUE(
      solver.SolveTopL(f.gen.users, f.rsk, f.query, KeywordSelect::kApprox, 0)
          .empty());
}

}  // namespace
}  // namespace rst
