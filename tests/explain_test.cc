#include "rst/obs/explain.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rst/data/generators.h"
#include "rst/exec/batch_runner.h"
#include "rst/exec/thread_pool.h"
#include "rst/iurtree/cluster.h"
#include "rst/obs/metrics.h"
#include "rst/obs/slow_log.h"
#include "rst/rstknn/rstknn.h"

namespace rst {
namespace {

// ---------------------------------------------------------------------------
// ExplainRecorder unit behavior

obs::ExplainDecision MakeDecision(uint64_t node, uint32_t level,
                                  obs::ExplainVerdict verdict,
                                  uint64_t count) {
  obs::ExplainDecision d;
  d.node_id = node;
  d.level = level;
  d.verdict = verdict;
  d.bound = obs::ExplainBound::kLowerBound;
  d.q_min = 0.25;
  d.q_max = 0.75;
  d.subtree_count = count;
  return d;
}

TEST(ExplainRecorderTest, TalliesPerLevelAndCapsTheLog) {
  obs::ExplainRecorder recorder(/*max_decisions=*/2);
  recorder.SetAlgorithm("probe");
  recorder.Record(MakeDecision(1, 0, obs::ExplainVerdict::kPrune, 5));
  recorder.Record(MakeDecision(2, 1, obs::ExplainVerdict::kReportHit, 2));
  recorder.Record(MakeDecision(3, 1, obs::ExplainVerdict::kExpand, 0));

  EXPECT_EQ(recorder.pruned(), 1u);
  EXPECT_EQ(recorder.expanded(), 1u);
  EXPECT_EQ(recorder.reported_hit(), 1u);
  EXPECT_EQ(recorder.reported_miss(), 0u);
  EXPECT_EQ(recorder.decisions(), 3u);

  ASSERT_EQ(recorder.levels().size(), 2u);
  EXPECT_EQ(recorder.levels()[0].level, 0u);
  EXPECT_EQ(recorder.levels()[0].pruned, 1u);
  EXPECT_EQ(recorder.levels()[0].objects_pruned, 5u);
  EXPECT_EQ(recorder.levels()[1].reported_hit, 1u);
  EXPECT_EQ(recorder.levels()[1].expanded, 1u);
  EXPECT_EQ(recorder.levels()[1].objects_reported, 2u);

  // The log keeps the first `max_decisions` decisions; overflow is counted.
  ASSERT_EQ(recorder.log().size(), 2u);
  EXPECT_EQ(recorder.log()[0].node_id, 1u);
  EXPECT_EQ(recorder.log()[1].node_id, 2u);
  EXPECT_EQ(recorder.log_dropped(), 1u);
  EXPECT_NE(recorder.ToJson().find("\"log_dropped\":1"), std::string::npos);
}

TEST(ExplainRecorderTest, ResetClearsStateButKeepsTheCap) {
  obs::ExplainRecorder recorder(/*max_decisions=*/4);
  recorder.SetAlgorithm("probe");
  recorder.Record(MakeDecision(1, 0, obs::ExplainVerdict::kPrune, 3));
  recorder.Reset();
  EXPECT_EQ(recorder.decisions(), 0u);
  EXPECT_TRUE(recorder.levels().empty());
  EXPECT_TRUE(recorder.log().empty());
  EXPECT_EQ(recorder.log_dropped(), 0u);
  EXPECT_TRUE(recorder.algorithm().empty());
  EXPECT_EQ(recorder.max_decisions(), 4u);
}

TEST(ExplainRecorderTest, CheckReconcilesNamesTheBrokenIdentity) {
  obs::ExplainRecorder recorder;
  recorder.Record(MakeDecision(1, 0, obs::ExplainVerdict::kPrune, 3));
  recorder.Record(MakeDecision(2, 0, obs::ExplainVerdict::kExpand, 0));
  EXPECT_TRUE(recorder.CheckReconciles(/*expansions=*/1, /*pruned_entries=*/1,
                                       /*reported_entries=*/0)
                  .ok());
  const Status broken = recorder.CheckReconciles(2, 1, 0);
  EXPECT_FALSE(broken.ok());
  EXPECT_NE(broken.message().find("expand"), std::string::npos);
  EXPECT_FALSE(recorder.CheckReconciles(1, 7, 0).ok());
  EXPECT_FALSE(recorder.CheckReconciles(1, 1, 7).ok());
}

// ---------------------------------------------------------------------------
// End-to-end: recorder wired through RstknnSearcher / exec::BatchRunner

struct ExplainFixture {
  Dataset dataset;
  std::vector<uint32_t> clusters;
  IurTree tree;  // plain IUR-tree
  IurTree ciur;  // clustered variant
  TextSimilarity sim;
  StScorer scorer;

  ExplainFixture()
      : tree(IurTree::Build({}, {})),
        ciur(IurTree::Build({}, {})),
        sim(TextMeasure::kExtendedJaccard),
        scorer(&sim, {0.5, 1.0}) {
    FlickrLikeConfig config;
    config.num_objects = 400;
    config.vocab_size = 200;
    config.seed = 77;
    dataset = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
    std::vector<TermVector> docs;
    for (const StObject& o : dataset.objects()) docs.push_back(o.doc);
    ClusteringOptions copts;
    copts.num_clusters = 6;
    clusters = ClusterDocuments(docs, copts).assignment;
    tree = IurTree::BuildFromDataset(dataset, {});
    ciur = IurTree::BuildFromDataset(dataset, {}, &clusters);
    scorer = StScorer(&sim, {0.5, dataset.max_dist()});
  }

  std::vector<RstknnQuery> Queries(size_t count, size_t k) const {
    std::vector<RstknnQuery> queries;
    queries.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const ObjectId qid = static_cast<ObjectId>((i * 37) % dataset.size());
      const StObject& q = dataset.object(qid);
      queries.push_back({q.loc, &q.doc, k, qid});
    }
    return queries;
  }
};

/// The reconciliation contract: for every query, on both tree variants and
/// both algorithms, the recorder's decision totals match the searcher's own
/// counters exactly — the explain report is the stats, itemized.
TEST(ExplainSearchTest, TotalsReconcileWithRstknnStats) {
  const ExplainFixture f;
  const std::vector<RstknnQuery> queries = f.Queries(16, 6);

  for (const IurTree* tree : {&f.tree, &f.ciur}) {
    const ExplainIndex index(*tree);
    for (RstknnAlgorithm algorithm :
         {RstknnAlgorithm::kProbe, RstknnAlgorithm::kContributionList}) {
      const RstknnSearcher searcher(tree, &f.dataset, &f.scorer);
      obs::ExplainRecorder recorder;
      RstknnOptions options;
      options.algorithm = algorithm;
      options.explain = &recorder;
      options.explain_index = &index;

      for (const RstknnQuery& q : queries) {
        const RstknnResult result = searcher.Search(q, options);
        ASSERT_GT(recorder.decisions(), 0u);
        EXPECT_TRUE(recorder
                        .CheckReconciles(result.stats.expansions,
                                         result.stats.pruned_entries,
                                         result.stats.reported_entries)
                        .ok())
            << "algo=" << static_cast<int>(algorithm)
            << " query=" << q.self;
        // Reported objects itemized by the recorder == the answer set.
        uint64_t objects_reported = 0;
        for (const obs::ExplainLevelSummary& level : recorder.levels()) {
          objects_reported += level.objects_reported;
        }
        EXPECT_EQ(objects_reported, result.answers.size());
      }
    }
  }
}

/// The determinism contract: same query + dataset + seed produces
/// byte-identical explain JSON — across repeated runs, across a shared vs.
/// recorder-private ExplainIndex, and across batch thread counts.
TEST(ExplainSearchTest, JsonIsByteIdenticalAcrossRunsAndThreadCounts) {
  const ExplainFixture f;
  const size_t kQueries = 8;
  const std::vector<RstknnQuery> queries = f.Queries(kQueries, 5);

  for (const IurTree* tree : {&f.tree, &f.ciur}) {
    for (RstknnAlgorithm algorithm :
         {RstknnAlgorithm::kProbe, RstknnAlgorithm::kContributionList}) {
      RstknnOptions options;
      options.algorithm = algorithm;

      // Serial reference with an explicitly shared index.
      const ExplainIndex index(*tree);
      const RstknnSearcher searcher(tree, &f.dataset, &f.scorer);
      obs::ExplainRecorder recorder;
      options.explain = &recorder;
      options.explain_index = &index;
      std::vector<std::string> reference;
      for (const RstknnQuery& q : queries) {
        searcher.Search(q, options);
        reference.push_back(recorder.ToJson());
      }

      // Second serial run, recorder-private fallback index: same bytes.
      options.explain_index = nullptr;
      for (size_t i = 0; i < queries.size(); ++i) {
        searcher.Search(queries[i], options);
        EXPECT_EQ(recorder.ToJson(), reference[i]) << "rerun query " << i;
      }

      // Batched runs: threshold 0 captures every query's explain JSON, keyed
      // by query_index; any thread count must reproduce the serial bytes.
      for (size_t threads : {1u, 8u}) {
        exec::ThreadPool pool(threads);
        exec::BatchRunner runner(tree, &f.dataset, &f.scorer, &pool);
        obs::SlowQueryLog slow_log(/*threshold_ms=*/0.0,
                                   /*capacity=*/kQueries);
        runner.set_slow_log(&slow_log);
        RstknnOptions batch_options;
        batch_options.algorithm = algorithm;
        runner.RunRstknn(queries, batch_options);

        const std::vector<obs::SlowQueryRecord> records = slow_log.Snapshot();
        ASSERT_EQ(records.size(), queries.size()) << "threads=" << threads;
        size_t matched = 0;
        for (const obs::SlowQueryRecord& record : records) {
          ASSERT_LT(record.query_index, reference.size());
          EXPECT_EQ(record.explain_json, reference[record.query_index])
              << "threads=" << threads << " query=" << record.query_index;
          EXPECT_EQ(record.label, "rstknn.batch");
          EXPECT_FALSE(record.trace_json.empty());
          ++matched;
        }
        EXPECT_EQ(matched, queries.size());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SlowQueryLog

TEST(SlowQueryLogTest, ThresholdGatesCapture) {
  obs::SlowQueryLog log(/*threshold_ms=*/5.0, /*capacity=*/4);
  EXPECT_FALSE(log.ShouldCapture(4.999));
  EXPECT_TRUE(log.ShouldCapture(5.0));
  EXPECT_TRUE(log.ShouldCapture(100.0));
  EXPECT_EQ(log.threshold_ms(), 5.0);
}

TEST(SlowQueryLogTest, RingKeepsNewestRecordsOldestFirst) {
  obs::SlowQueryLog log(/*threshold_ms=*/0.0, /*capacity=*/4);
  const obs::MetricsSnapshot before = obs::MetricRegistry::Global().Snapshot();
  for (uint64_t i = 0; i < 10; ++i) {
    obs::SlowQueryRecord record;
    record.query_index = i;
    record.label = "test";
    record.elapsed_ms = static_cast<double>(i);
    EXPECT_TRUE(log.Insert(std::move(record)));
  }
  EXPECT_EQ(log.captured(), 10u);
  EXPECT_EQ(log.dropped(), 0u);

  const std::vector<obs::SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].query_index, 6 + i);  // newest 4, oldest first
    EXPECT_EQ(records[i].seq, 6 + i);
    if (i > 0) EXPECT_GT(records[i].seq, records[i - 1].seq);
  }

  // Every capture lands on the global (timing-derived, never gated) counter.
  const obs::MetricsSnapshot delta =
      obs::MetricRegistry::Global().Snapshot().Delta(before);
  EXPECT_EQ(delta.counters.at("exec.slow_queries"), 10u);

  const std::string json = log.ToJson();
  EXPECT_NE(json.find("\"captured\":10"), std::string::npos);
  EXPECT_NE(json.find("\"records\":["), std::string::npos);
}

TEST(SlowQueryLogTest, CapacityIsClampedToOne) {
  obs::SlowQueryLog log(/*threshold_ms=*/0.0, /*capacity=*/0);
  EXPECT_EQ(log.capacity(), 1u);
  obs::SlowQueryRecord a;
  a.label = "first";
  obs::SlowQueryRecord b;
  b.label = "second";
  EXPECT_TRUE(log.Insert(std::move(a)));
  EXPECT_TRUE(log.Insert(std::move(b)));
  const std::vector<obs::SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].label, "second");
}

}  // namespace
}  // namespace rst
