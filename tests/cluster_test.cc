#include "rst/iurtree/cluster.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rst/common/rng.h"

namespace rst {
namespace {

// Three clearly separated topics over disjoint vocabulary blocks.
std::vector<TermVector> TopicDocs(Rng* rng, size_t per_topic) {
  std::vector<TermVector> docs;
  for (int topic = 0; topic < 3; ++topic) {
    for (size_t i = 0; i < per_topic; ++i) {
      std::vector<TermWeight> entries;
      for (int t = 0; t < 5; ++t) {
        entries.push_back(
            {static_cast<TermId>(topic * 100 + rng->UniformInt(uint64_t{20})),
             static_cast<float>(rng->Uniform(0.5, 1.5))});
      }
      docs.push_back(TermVector::FromUnsorted(std::move(entries)));
    }
  }
  return docs;
}

TEST(ClusterTest, SeparatesDisjointTopics) {
  Rng rng(5);
  auto docs = TopicDocs(&rng, 40);
  ClusteringOptions opts;
  opts.num_clusters = 3;
  const ClusteringResult result = ClusterDocuments(docs, opts);
  ASSERT_EQ(result.assignment.size(), docs.size());
  // All docs of one topic should land in one cluster (perfect separability).
  for (int topic = 0; topic < 3; ++topic) {
    const uint32_t c0 = result.assignment[topic * 40];
    for (size_t i = 0; i < 40; ++i) {
      EXPECT_EQ(result.assignment[topic * 40 + i], c0) << "topic " << topic;
    }
  }
  // And distinct topics in distinct clusters.
  EXPECT_NE(result.assignment[0], result.assignment[40]);
  EXPECT_NE(result.assignment[40], result.assignment[80]);
  EXPECT_GT(result.mean_intra_similarity, 0.3);
}

TEST(ClusterTest, DeterministicForSeed) {
  Rng rng(6);
  auto docs = TopicDocs(&rng, 20);
  ClusteringOptions opts;
  opts.num_clusters = 4;
  const auto a = ClusterDocuments(docs, opts);
  const auto b = ClusterDocuments(docs, opts);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(ClusterTest, ClampsClusterCountToDocs) {
  std::vector<TermVector> docs = {TermVector::FromTerms({1}),
                                  TermVector::FromTerms({2})};
  ClusteringOptions opts;
  opts.num_clusters = 10;
  const auto result = ClusterDocuments(docs, opts);
  EXPECT_LE(result.num_clusters, 2u);
  for (uint32_t a : result.assignment) EXPECT_LT(a, result.num_clusters);
}

TEST(ClusterTest, OutlierExtractionMovesMisfits) {
  Rng rng(7);
  auto docs = TopicDocs(&rng, 30);
  // Add a few documents with unrelated vocabulary.
  for (int i = 0; i < 5; ++i) {
    docs.push_back(TermVector::FromTerms(
        {static_cast<TermId>(900 + i * 7), static_cast<TermId>(950 + i)}));
  }
  ClusteringOptions opts;
  opts.num_clusters = 3;
  opts.outlier_threshold = 0.2;
  opts.max_outlier_fraction = 0.2;
  const auto result = ClusterDocuments(docs, opts);
  EXPECT_GT(result.num_outliers, 0u);
  EXPECT_EQ(result.num_clusters, 4u);  // 3 + outlier cluster
  // Outliers live in the dedicated last cluster.
  for (size_t i = 90; i < docs.size(); ++i) {
    EXPECT_EQ(result.assignment[i], 3u) << "misfit doc " << i;
  }
}

TEST(ClusterTest, OutlierCapRespected) {
  Rng rng(8);
  auto docs = TopicDocs(&rng, 10);
  ClusteringOptions opts;
  opts.num_clusters = 2;
  opts.outlier_threshold = 2.0;  // everything looks like an outlier
  opts.max_outlier_fraction = 0.1;
  const auto result = ClusterDocuments(docs, opts);
  EXPECT_LE(result.num_outliers, docs.size() / 10);
}

TEST(ClusterEntropyTest, KnownValues) {
  EXPECT_DOUBLE_EQ(ClusterEntropy({}), 0.0);
  EXPECT_DOUBLE_EQ(ClusterEntropy({10}), 0.0);
  EXPECT_DOUBLE_EQ(ClusterEntropy({5, 5}), std::log(2.0));
  EXPECT_NEAR(ClusterEntropy({1, 1, 1, 1}), std::log(4.0), 1e-12);
  // Skewed distribution has lower entropy than uniform.
  EXPECT_LT(ClusterEntropy({9, 1}), ClusterEntropy({5, 5}));
  // Zero-count clusters contribute nothing.
  EXPECT_DOUBLE_EQ(ClusterEntropy({5, 0, 5}), std::log(2.0));
}

}  // namespace
}  // namespace rst
