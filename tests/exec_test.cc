#include "rst/exec/batch_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "rst/data/generators.h"
#include "rst/exec/thread_pool.h"
#include "rst/iurtree/cluster.h"
#include "rst/obs/metrics.h"

namespace rst {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 8u}) {
    for (size_t chunk : {1u, 7u, 64u}) {
      exec::ThreadPool pool(threads);
      EXPECT_EQ(pool.num_threads(), threads == 0 ? 1 : threads);
      std::vector<std::atomic<int>> seen(257);
      pool.ParallelFor(seen.size(), chunk, [&](size_t i, size_t worker) {
        ASSERT_LT(worker, pool.num_threads());
        // rst-atomics: test counter; the final read happens after ParallelFor
        // returns (join barrier), so relaxed increments are safely visible.
        seen[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i].load(), 1) << "index " << i << " threads " << threads
                                     << " chunk " << chunk;
      }
    }
  }
}

TEST(ThreadPoolTest, EmptyLoopIsANoop) {
  exec::ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, 1, [&](size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, PropagatesWorkerExceptions) {
  for (size_t threads : {1u, 4u}) {
    exec::ThreadPool pool(threads);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.ParallelFor(64, 1,
                         [&](size_t i, size_t) {
                           // rst-atomics: test counter; the final read happens after ParallelFor
                           // returns (join barrier), so relaxed increments are safely visible.
                           ran.fetch_add(1, std::memory_order_relaxed);
                           if (i == 5) throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // Unclaimed chunks are abandoned after the throw.
    EXPECT_LE(ran.load(), 64);
    EXPECT_GE(ran.load(), 1);
    // The pool survives an exception and stays usable.
    std::atomic<int> after{0};
    pool.ParallelFor(16, 4, [&](size_t, size_t) {
      // rst-atomics: test counter; the final read happens after ParallelFor
      // returns (join barrier), so relaxed increments are safely visible.
      after.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(after.load(), 16);
  }
}

TEST(ThreadPoolTest, StressManySmallLoops) {
  // TSan-friendly: lots of job handoffs through the chunk queue, a shared
  // accumulator, and per-worker slots touched from changing threads.
  exec::ThreadPool pool(8);
  std::atomic<uint64_t> sum{0};
  std::vector<uint64_t> per_worker(pool.num_threads(), 0);
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(32, 3, [&](size_t i, size_t w) {
      // rst-atomics: test counter; the final read happens after ParallelFor
      // returns (join barrier), so relaxed increments are safely visible.
      sum.fetch_add(i + 1, std::memory_order_relaxed);
      per_worker[w] += 1;  // worker-private slot, no lock needed
    });
  }
  EXPECT_EQ(sum.load(), 200ull * (32ull * 33ull / 2ull));
  uint64_t total = 0;
  for (uint64_t c : per_worker) total += c;
  EXPECT_EQ(total, 200ull * 32ull);
}

// ---------------------------------------------------------------------------
// BatchRunner

struct BatchFixture {
  Dataset dataset;
  std::vector<uint32_t> clusters;
  IurTree tree;   // plain IUR-tree
  IurTree ciur;   // clustered (exercises lazy cluster refinement paths)
  TextSimilarity sim;
  StScorer scorer;

  BatchFixture()
      : tree(IurTree::Build({}, {})),
        ciur(IurTree::Build({}, {})),
        sim(TextMeasure::kExtendedJaccard),
        scorer(&sim, {0.5, 1.0}) {
    FlickrLikeConfig config;
    config.num_objects = 400;
    config.vocab_size = 200;
    config.seed = 77;
    dataset = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
    std::vector<TermVector> docs;
    for (const StObject& o : dataset.objects()) docs.push_back(o.doc);
    ClusteringOptions copts;
    copts.num_clusters = 6;
    clusters = ClusterDocuments(docs, copts).assignment;
    tree = IurTree::BuildFromDataset(dataset, {});
    ciur = IurTree::BuildFromDataset(dataset, {}, &clusters);
    scorer = StScorer(&sim, {0.5, dataset.max_dist()});
  }

  std::vector<RstknnQuery> Queries(size_t count, size_t k) const {
    std::vector<RstknnQuery> queries;
    queries.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const ObjectId qid = static_cast<ObjectId>((i * 37) % dataset.size());
      const StObject& q = dataset.object(qid);
      queries.push_back({q.loc, &q.doc, k, qid});
    }
    return queries;
  }
};

/// The acceptance contract: batched execution at any thread count returns
/// results identical to the serial path — same answer sets, same ordering,
/// keyed by query index — for both algorithm variants.
TEST(BatchRunnerTest, DeterministicAcrossThreadCounts) {
  const BatchFixture f;
  const std::vector<RstknnQuery> queries = f.Queries(24, 7);

  for (const IurTree* tree : {&f.tree, &f.ciur}) {
    for (RstknnAlgorithm algorithm :
         {RstknnAlgorithm::kProbe, RstknnAlgorithm::kContributionList}) {
      RstknnOptions options;
      options.algorithm = algorithm;

      // Serial reference: plain per-query searches.
      const RstknnSearcher searcher(tree, &f.dataset, &f.scorer);
      std::vector<RstknnResult> serial;
      serial.reserve(queries.size());
      for (const RstknnQuery& q : queries) {
        serial.push_back(searcher.Search(q, options));
      }

      for (size_t threads : {1u, 2u, 8u}) {
        exec::ThreadPool pool(threads);
        const exec::BatchRunner runner(tree, &f.dataset, &f.scorer, &pool);
        const std::vector<RstknnResult> batched =
            runner.RunRstknn(queries, options);
        ASSERT_EQ(batched.size(), serial.size());
        for (size_t i = 0; i < serial.size(); ++i) {
          EXPECT_EQ(batched[i].answers, serial[i].answers)
              << "threads=" << threads << " query=" << i << " algo="
              << static_cast<int>(algorithm);
          // The per-query algorithm is untouched, so the work counters are
          // identical too — not just the answers.
          EXPECT_EQ(batched[i].stats.pq_pops, serial[i].stats.pq_pops);
          EXPECT_EQ(batched[i].stats.bound_computations,
                    serial[i].stats.bound_computations);
          EXPECT_EQ(batched[i].stats.io.TotalIos(),
                    serial[i].stats.io.TotalIos());
        }
      }
    }
  }
}

TEST(BatchRunnerTest, PublishesOneAggregateIntoRegistry) {
  const BatchFixture f;
  const std::vector<RstknnQuery> queries = f.Queries(12, 5);
  exec::ThreadPool pool(4);
  const exec::BatchRunner runner(&f.tree, &f.dataset, &f.scorer, &pool);

  const obs::MetricsSnapshot before = obs::MetricRegistry::Global().Snapshot();
  exec::BatchStats stats;
  const std::vector<RstknnResult> results =
      runner.RunRstknn(queries, RstknnOptions(), &stats);
  const obs::MetricsSnapshot delta =
      obs::MetricRegistry::Global().Snapshot().Delta(before);

  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_EQ(stats.worker_busy_ms.size(), pool.num_threads());
  EXPECT_GT(stats.total.entries_created, 0u);
  uint64_t answers = 0;
  for (const RstknnResult& r : results) answers += r.answers.size();
  EXPECT_EQ(stats.answers, answers);

  // The batch lands as ONE aggregated publish with per-query totals intact.
  EXPECT_EQ(delta.counters.at("exec.batches"), 1u);
  EXPECT_EQ(delta.counters.at("exec.batch.queries"), queries.size());
  EXPECT_EQ(delta.counters.at("rstknn.queries"), queries.size());
  EXPECT_EQ(delta.counters.at("rstknn.answers"), answers);
  EXPECT_EQ(delta.counters.at("rstknn.expansions"), stats.total.expansions);
  EXPECT_EQ(delta.counters.at("rstknn.io.node_reads"),
            stats.total.io.node_reads);
}

TEST(BatchRunnerTest, RunTopKMatchesSerialSearcher) {
  const BatchFixture f;
  std::vector<TopKQuery> queries;
  for (size_t i = 0; i < 16; ++i) {
    const ObjectId qid = static_cast<ObjectId>((i * 53) % f.dataset.size());
    const StObject& q = f.dataset.object(qid);
    queries.push_back({q.loc, &q.doc, 8, qid});
  }

  const TopKSearcher searcher(&f.tree, &f.dataset, &f.scorer);
  std::vector<std::vector<TopKResult>> serial;
  IoStats serial_io;
  for (const TopKQuery& q : queries) {
    serial.push_back(searcher.Search(q, &serial_io));
  }

  for (size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool pool(threads);
    const exec::BatchRunner runner(&f.tree, &f.dataset, &f.scorer, &pool);
    exec::BatchStats stats;
    const auto batched = runner.RunTopK(queries, &stats);
    ASSERT_EQ(batched.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(batched[i], serial[i]) << "threads=" << threads;
    }
    EXPECT_EQ(stats.total.io.TotalIos(), serial_io.TotalIos());
  }
}

TEST(BatchRunnerTest, StressSharedTreeUnderManyThreads) {
  // TSan target: 8 workers hammering one tree/dataset/scorer with scratch
  // reuse across repeated batches.
  const BatchFixture f;
  const std::vector<RstknnQuery> queries = f.Queries(16, 4);
  exec::ThreadPool pool(8);
  const exec::BatchRunner runner(&f.ciur, &f.dataset, &f.scorer, &pool);
  std::vector<RstknnResult> first = runner.RunRstknn(queries, RstknnOptions());
  for (int round = 0; round < 4; ++round) {
    const std::vector<RstknnResult> again =
        runner.RunRstknn(queries, RstknnOptions());
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(again[i].answers, first[i].answers);
    }
  }
}

}  // namespace
}  // namespace rst
