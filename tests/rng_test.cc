#include "rst/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace rst {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(int64_t{3}, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  for (size_t universe : {5u, 50u, 500u}) {
    for (size_t n : {1u, 3u, 5u}) {
      auto picks = rng.SampleWithoutReplacement(universe, n);
      EXPECT_EQ(picks.size(), n);
      std::set<size_t> distinct(picks.begin(), picks.end());
      EXPECT_EQ(distinct.size(), n);
      for (size_t p : picks) EXPECT_LT(p, universe);
    }
  }
  // Full-universe sample is a permutation.
  auto all = rng.SampleWithoutReplacement(10, 10);
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(all[i], i);
}

TEST(ZipfTest, PmfSumsToOneAndDecreases) {
  ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  for (size_t i = 0; i < 100; ++i) total += zipf.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(50));
}

TEST(ZipfTest, EmpiricalSkewMatchesPmf) {
  Rng rng(17);
  ZipfSampler zipf(50, 1.2);
  std::vector<int> counts(50, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[zipf.Sample(&rng)]++;
  // Rank 0 empirical frequency close to pmf.
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, zipf.Pmf(0), 0.01);
  // Monotone-ish decrease between well-separated ranks.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[40]);
}

}  // namespace
}  // namespace rst
