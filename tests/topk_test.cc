#include "rst/topk/topk.h"

#include <gtest/gtest.h>

#include "rst/common/rng.h"
#include "rst/data/generators.h"
#include "rst/iurtree/cluster.h"

namespace rst {
namespace {

struct TopKCase {
  TextMeasure measure;
  Weighting weighting;
  double alpha;
};

class TopKParamTest : public ::testing::TestWithParam<TopKCase> {};

TEST_P(TopKParamTest, MatchesBruteForce) {
  const TopKCase& param = GetParam();
  FlickrLikeConfig config;
  config.num_objects = 1500;
  config.vocab_size = 400;
  const Dataset d = GenFlickrLike(config, {param.weighting, 0.1});
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(param.measure, &d.corpus_max());
  StScorer scorer(&sim, {param.alpha, d.max_dist()});
  TopKSearcher searcher(&tree, &d, &scorer);

  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    TopKQuery q;
    const StObject& query_obj = d.object(
        static_cast<ObjectId>(rng.UniformInt(uint64_t{d.size()})));
    q.loc = query_obj.loc;
    q.doc = &query_obj.doc;
    for (size_t k : {1u, 5u, 20u}) {
      q.k = k;
      const auto expected = BruteForceTopK(d, scorer, q);
      const auto got = searcher.Search(q);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "k=" << k << " pos=" << i;
        EXPECT_DOUBLE_EQ(got[i].score, expected[i].score);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TopKParamTest,
    ::testing::Values(
        TopKCase{TextMeasure::kExtendedJaccard, Weighting::kTfIdf, 0.5},
        TopKCase{TextMeasure::kExtendedJaccard, Weighting::kTfIdf, 0.9},
        TopKCase{TextMeasure::kCosine, Weighting::kTfIdf, 0.3},
        TopKCase{TextMeasure::kSum, Weighting::kLanguageModel, 0.5},
        TopKCase{TextMeasure::kSum, Weighting::kBinary, 0.1}),
    [](const auto& info) {
      return std::string(TextMeasureName(info.param.measure)) + "_" +
             WeightingName(info.param.weighting) + "_a" +
             std::to_string(static_cast<int>(info.param.alpha * 10));
    });

TEST(TopKTest, UserKeywordQueriesMatchBruteForce) {
  // The bichromatic usage: users with keyword sets, LM-weighted objects.
  FlickrLikeConfig config;
  config.num_objects = 2000;
  const Dataset d = GenFlickrLike(config, {Weighting::kLanguageModel, 0.1});
  const GeneratedUsers gen = GenUsers(d, {});
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kSum, &d.corpus_max());
  StScorer scorer(&sim, {0.5, d.max_dist()});
  TopKSearcher searcher(&tree, &d, &scorer);
  for (size_t u = 0; u < 10; ++u) {
    TopKQuery q;
    q.loc = gen.users[u].loc;
    q.doc = &gen.users[u].keywords;
    q.k = 10;
    EXPECT_EQ(searcher.Search(q),
              BruteForceTopK(d, scorer, q));
  }
}

TEST(TopKTest, ExclusionRemovesSelf) {
  FlickrLikeConfig config;
  config.num_objects = 500;
  const Dataset d = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, d.max_dist()});
  TopKSearcher searcher(&tree, &d, &scorer);
  const StObject& obj = d.object(42);
  TopKQuery q{obj.loc, &obj.doc, 5, 42};
  const auto got = searcher.Search(q);
  ASSERT_EQ(got.size(), 5u);
  for (const TopKResult& r : got) EXPECT_NE(r.id, 42u);
  EXPECT_EQ(got, BruteForceTopK(d, scorer, q));
  // Without exclusion, the object itself ranks first with the top score.
  q.exclude = IurTree::kNoObject;
  const auto with_self = searcher.Search(q);
  EXPECT_EQ(with_self[0].id, 42u);
}

TEST(TopKTest, KLargerThanDataset) {
  FlickrLikeConfig config;
  config.num_objects = 20;
  const Dataset d = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, d.max_dist()});
  TopKSearcher searcher(&tree, &d, &scorer);
  const StObject& obj = d.object(0);
  TopKQuery q{obj.loc, &obj.doc, 100, IurTree::kNoObject};
  EXPECT_EQ(searcher.Search(q).size(), 20u);
  q.k = 0;
  EXPECT_TRUE(searcher.Search(q).empty());
}

TEST(TopKTest, ClusteredTreeSameAnswersLowerOrEqualWork) {
  FlickrLikeConfig config;
  config.num_objects = 2000;
  const Dataset d = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  std::vector<TermVector> docs;
  for (const StObject& o : d.objects()) docs.push_back(o.doc);
  ClusteringOptions copts;
  copts.num_clusters = 8;
  const ClusteringResult clusters = ClusterDocuments(docs, copts);
  const IurTree plain = IurTree::BuildFromDataset(d, {});
  const IurTree ciur = IurTree::BuildFromDataset(d, {}, &clusters.assignment);
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.3, d.max_dist()});
  TopKSearcher plain_search(&plain, &d, &scorer);
  TopKSearcher ciur_search(&ciur, &d, &scorer);
  for (ObjectId id : {7u, 99u, 1234u}) {
    const StObject& obj = d.object(id);
    TopKQuery q{obj.loc, &obj.doc, 10, IurTree::kNoObject};
    IoStats plain_io, ciur_io;
    const auto a = plain_search.Search(q, &plain_io);
    const auto b = ciur_search.Search(q, &ciur_io);
    EXPECT_EQ(a, b);
    EXPECT_GT(plain_io.TotalIos(), 0u);
  }
}

TEST(TopKTest, BooleanAndSemanticsMatchBruteForce) {
  FlickrLikeConfig config;
  config.num_objects = 2000;
  config.vocab_size = 150;  // dense vocabulary so conjunctions have matches
  const Dataset d = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, d.max_dist()});
  TopKSearcher searcher(&tree, &d, &scorer);
  Rng rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    // Conjunctions of 1-3 terms taken from a random object (so at least one
    // match exists), plus occasionally a random pair (possibly unsatisfiable).
    TermVector qdoc;
    if (trial % 4 == 3) {
      qdoc = TermVector::FromTerms(
          {static_cast<TermId>(rng.UniformInt(uint64_t{150})),
           static_cast<TermId>(rng.UniformInt(uint64_t{150}))});
    } else {
      const StObject& donor = d.object(
          static_cast<ObjectId>(rng.UniformInt(uint64_t{d.size()})));
      qdoc = donor.doc.TopKByWeight(1 + trial % 3);
    }
    TopKQuery q;
    q.loc = Point{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    q.doc = &qdoc;
    q.k = 10;
    q.require_all_terms = true;
    const auto got = searcher.Search(q);
    const auto expected = BruteForceTopK(d, scorer, q);
    ASSERT_EQ(got.size(), expected.size()) << "trial " << trial;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id) << "trial " << trial;
    }
    // Every result really contains all query terms.
    for (const TopKResult& r : got) {
      EXPECT_EQ(d.object(r.id).doc.OverlapCount(qdoc), qdoc.size());
    }
  }
}

TEST(TopKTest, BooleanModePrunesMoreThanRankedMode) {
  FlickrLikeConfig config;
  config.num_objects = 3000;
  const Dataset d = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, d.max_dist()});
  TopKSearcher searcher(&tree, &d, &scorer);
  // A rare conjunction: two low-frequency terms.
  const TermVector qdoc = TermVector::FromTerms({1900, 1950});
  TopKQuery q{Point{50, 50}, &qdoc, 10, IurTree::kNoObject,
              /*require_all_terms=*/true};
  IoStats strict_io, ranked_io;
  searcher.Search(q, &strict_io);
  q.require_all_terms = false;
  searcher.Search(q, &ranked_io);
  EXPECT_LE(strict_io.TotalIos(), ranked_io.TotalIos());
}

TEST(TopKTest, IoGrowsWithK) {
  FlickrLikeConfig config;
  config.num_objects = 3000;
  const Dataset d = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, d.max_dist()});
  TopKSearcher searcher(&tree, &d, &scorer);
  const StObject& obj = d.object(17);
  IoStats io_small, io_large;
  searcher.Search({obj.loc, &obj.doc, 1, IurTree::kNoObject}, &io_small);
  searcher.Search({obj.loc, &obj.doc, 100, IurTree::kNoObject}, &io_large);
  EXPECT_LE(io_small.TotalIos(), io_large.TotalIos());
}

}  // namespace
}  // namespace rst
