#include "rst/common/status.h"

#include <gtest/gtest.h>

namespace rst {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing page 7");
  EXPECT_EQ(s.ToString(), "NotFound: missing page 7");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad k"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace rst
