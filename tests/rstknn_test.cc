#include "rst/rstknn/rstknn.h"

#include <gtest/gtest.h>

#include "rst/common/rng.h"
#include "rst/data/generators.h"
#include "rst/iurtree/cluster.h"

namespace rst {
namespace {

struct Fixture {
  Dataset dataset;
  IurTree tree;
  TextSimilarity sim;
  StScorer scorer;

  Fixture(size_t n, TextMeasure measure, double alpha, uint64_t seed)
      : tree(IurTree::Build({}, {})), sim(measure), scorer(&sim, {alpha, 1.0}) {
    FlickrLikeConfig config;
    config.num_objects = n;
    config.vocab_size = 200;
    config.seed = seed;
    dataset = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
    tree = IurTree::BuildFromDataset(dataset, {});
    scorer = StScorer(&sim, {alpha, dataset.max_dist()});
  }
};

struct RstknnCase {
  size_t n;
  size_t k;
  double alpha;
  TextMeasure measure;
};

class RstknnParamTest : public ::testing::TestWithParam<RstknnCase> {};

TEST_P(RstknnParamTest, BranchAndBoundMatchesBruteForce) {
  const RstknnCase& param = GetParam();
  Fixture f(param.n, param.measure, param.alpha, 100 + param.n + param.k);
  RstknnSearcher searcher(&f.tree, &f.dataset, &f.scorer);
  Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    const ObjectId qid =
        static_cast<ObjectId>(rng.UniformInt(uint64_t{f.dataset.size()}));
    const StObject& qobj = f.dataset.object(qid);
    RstknnQuery query{qobj.loc, &qobj.doc, param.k, qid};
    const auto expected = BruteForceRstknn(f.dataset, f.scorer, query);
    const auto got = searcher.Search(query);
    EXPECT_EQ(got.answers, expected)
        << "n=" << param.n << " k=" << param.k << " alpha=" << param.alpha
        << " qid=" << qid;
    // The paper's literal contribution-list algorithm must agree exactly.
    RstknnOptions cl;
    cl.algorithm = RstknnAlgorithm::kContributionList;
    EXPECT_EQ(searcher.Search(query, cl).answers, expected)
        << "contribution-list, qid=" << qid;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RstknnParamTest,
    ::testing::Values(RstknnCase{60, 1, 0.5, TextMeasure::kExtendedJaccard},
                      RstknnCase{200, 3, 0.5, TextMeasure::kExtendedJaccard},
                      RstknnCase{200, 10, 0.1, TextMeasure::kExtendedJaccard},
                      RstknnCase{200, 10, 0.9, TextMeasure::kExtendedJaccard},
                      RstknnCase{350, 5, 0.3, TextMeasure::kExtendedJaccard},
                      RstknnCase{200, 5, 0.5, TextMeasure::kCosine},
                      RstknnCase{350, 20, 0.7, TextMeasure::kCosine}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k) + "_a" +
             std::to_string(static_cast<int>(info.param.alpha * 10)) + "_" +
             TextMeasureName(info.param.measure);
    });

TEST(RstknnTest, ExternalQueryObject) {
  // Query that is not part of the dataset (a new location + new text).
  Fixture f(250, TextMeasure::kExtendedJaccard, 0.5, 7);
  RstknnSearcher searcher(&f.tree, &f.dataset, &f.scorer);
  const TermVector qdoc = TermVector::FromUnsorted(
      {{0, 0.8f}, {3, 0.5f}, {17, 1.2f}});
  RstknnQuery query{Point{50, 50}, &qdoc, 5, IurTree::kNoObject};
  EXPECT_EQ(searcher.Search(query).answers,
            BruteForceRstknn(f.dataset, f.scorer, query));
}

TEST(RstknnTest, KGreaterThanDatasetReportsAll) {
  Fixture f(40, TextMeasure::kExtendedJaccard, 0.5, 8);
  RstknnSearcher searcher(&f.tree, &f.dataset, &f.scorer);
  const StObject& qobj = f.dataset.object(0);
  RstknnQuery query{qobj.loc, &qobj.doc, 100, 0};
  const auto got = searcher.Search(query);
  EXPECT_EQ(got.answers.size(), 39u);  // everyone except the query itself
}

TEST(RstknnTest, ClusteredTreeAndPoliciesAgree) {
  FlickrLikeConfig config;
  config.num_objects = 400;
  config.vocab_size = 200;
  config.seed = 31;
  Dataset d = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  std::vector<TermVector> docs;
  for (const StObject& o : d.objects()) docs.push_back(o.doc);
  ClusteringOptions copts;
  copts.num_clusters = 6;
  copts.outlier_threshold = 0.1;
  const ClusteringResult clusters = ClusterDocuments(docs, copts);

  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, d.max_dist()});
  const IurTree plain = IurTree::BuildFromDataset(d, {});
  const IurTree ciur = IurTree::BuildFromDataset(d, {}, &clusters.assignment);
  RstknnSearcher plain_search(&plain, &d, &scorer);
  RstknnSearcher ciur_search(&ciur, &d, &scorer);

  const StObject& qobj = d.object(123);
  RstknnQuery query{qobj.loc, &qobj.doc, 8, 123};
  const auto expected = BruteForceRstknn(d, scorer, query);
  EXPECT_EQ(plain_search.Search(query).answers, expected);
  EXPECT_EQ(ciur_search.Search(query).answers, expected);
  RstknnOptions te;
  te.expand = ExpandPolicy::kTextEntropy;
  EXPECT_EQ(ciur_search.Search(query, te).answers, expected);
}

TEST(RstknnTest, StatsArepopulated) {
  Fixture f(300, TextMeasure::kExtendedJaccard, 0.5, 13);
  RstknnSearcher searcher(&f.tree, &f.dataset, &f.scorer);
  const StObject& qobj = f.dataset.object(5);
  const auto result = searcher.Search({qobj.loc, &qobj.doc, 5, 5});
  EXPECT_GT(result.stats.entries_created, 0u);
  EXPECT_GT(result.stats.io.node_reads, 0u);
  EXPECT_GT(result.stats.bound_computations, 0u);
  EXPECT_GT(result.stats.pruned_entries + result.stats.reported_entries, 0u);
}

TEST(RstknnTest, PrecomputeBaselineMatchesBruteForce) {
  Fixture f(220, TextMeasure::kExtendedJaccard, 0.5, 17);
  PrecomputeBaseline baseline(&f.tree, &f.dataset, &f.scorer);
  IoStats build_io;
  baseline.Build(5, &build_io);
  EXPECT_TRUE(baseline.built());
  EXPECT_GT(build_io.TotalIos(), 0u);
  Rng rng(19);
  for (int trial = 0; trial < 5; ++trial) {
    const ObjectId qid =
        static_cast<ObjectId>(rng.UniformInt(uint64_t{f.dataset.size()}));
    const StObject& qobj = f.dataset.object(qid);
    RstknnQuery query{qobj.loc, &qobj.doc, 5, qid};
    EXPECT_EQ(baseline.Query(query).answers,
              BruteForceRstknn(f.dataset, f.scorer, query))
        << "qid=" << qid;
  }
  // External query object as well.
  const TermVector qdoc = TermVector::FromUnsorted({{1, 1.0f}, {9, 0.4f}});
  RstknnQuery query{Point{10, 20}, &qdoc, 5, IurTree::kNoObject};
  EXPECT_EQ(baseline.Query(query).answers,
            BruteForceRstknn(f.dataset, f.scorer, query));
}

TEST(RstknnTest, AnswersSortedAndUnique) {
  Fixture f(300, TextMeasure::kExtendedJaccard, 0.2, 23);
  RstknnSearcher searcher(&f.tree, &f.dataset, &f.scorer);
  const StObject& qobj = f.dataset.object(77);
  const auto got = searcher.Search({qobj.loc, &qobj.doc, 10, 77});
  for (size_t i = 1; i < got.answers.size(); ++i) {
    EXPECT_LT(got.answers[i - 1], got.answers[i]);
  }
  for (ObjectId id : got.answers) EXPECT_NE(id, 77u);
}

}  // namespace
}  // namespace rst
