// rst::shard scatter-gather: the determinism contract (sharded answers are
// byte-identical to a single-index search at any shard count and thread
// count), shard-level triage accounting, snapshot round-trips, and the
// journal's shard-count provenance.

#include "rst/shard/sharded_index.h"
#include "rst/shard/sharded_search.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "rst/common/file_util.h"
#include "rst/data/generators.h"
#include "rst/exec/sharded_runner.h"
#include "rst/exec/thread_pool.h"
#include "rst/iurtree/cluster.h"
#include "rst/obs/heatmap.h"
#include "rst/obs/journal.h"
#include "rst/rstknn/rstknn.h"

namespace rst {
namespace {

struct Fixture {
  Dataset dataset;
  std::vector<uint32_t> cluster_of;
  IurTree tree;
  TextSimilarity sim;
  StScorer scorer;
  IurTreeOptions topts;

  explicit Fixture(size_t n, bool clustered = false, uint64_t seed = 7)
      : tree(IurTree::Build({}, {})), sim(TextMeasure::kExtendedJaccard),
        scorer(&sim, {0.5, 1.0}) {
    FlickrLikeConfig config;
    config.num_objects = n;
    config.vocab_size = 200;
    config.seed = seed;
    dataset = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
    if (clustered) {
      std::vector<TermVector> docs;
      for (const StObject& o : dataset.objects()) docs.push_back(o.doc);
      ClusteringOptions copts;
      copts.num_clusters = 6;
      copts.outlier_threshold = 0.1;
      cluster_of = ClusterDocuments(docs, copts).assignment;
    }
    topts.max_entries = 8;
    topts.min_entries = 4;
    tree = IurTree::BuildFromDataset(dataset, topts,
                                     clustered ? &cluster_of : nullptr);
    scorer = StScorer(&sim, {0.5, dataset.max_dist()});
  }

  shard::ShardedIndex BuildSharded(size_t num_shards) const {
    shard::ShardOptions options;
    options.num_shards = num_shards;
    options.tree = topts;
    return shard::ShardedIndex::Build(
        dataset, options, cluster_of.empty() ? nullptr : &cluster_of);
  }

  RstknnQuery SelfQuery(ObjectId id, size_t k) const {
    const StObject& o = dataset.object(id);
    return {o.loc, &o.doc, k, id};
  }
};

Dataset TinyDataset(std::vector<std::pair<Point, std::vector<TermId>>> rows) {
  Dataset d;
  for (auto& [loc, terms] : rows) {
    d.Add(loc, RawDocument::FromTokens(terms));
  }
  d.Finalize({Weighting::kTfIdf, 0.1});
  return d;
}

// The acceptance property: for every combination of algorithm, tree flavor,
// shard count and thread count, the sharded answers equal the single-index
// answers exactly. The single-index result is the reference; the answer set
// is a property of the dataset, so every configuration must agree.
TEST(ShardTest, DeterminismMatrix) {
  for (const bool clustered : {false, true}) {
    const Fixture fx(240, clustered);
    const RstknnSearcher reference(&fx.tree, &fx.dataset, &fx.scorer);
    for (const RstknnAlgorithm algo :
         {RstknnAlgorithm::kProbe, RstknnAlgorithm::kContributionList}) {
      RstknnOptions options;
      options.algorithm = algo;
      options.publish_metrics = false;
      std::vector<RstknnQuery> queries;
      for (ObjectId id = 0; id < 240; id += 17) {
        queries.push_back(fx.SelfQuery(id, 4));
      }
      std::vector<std::vector<ObjectId>> expected;
      for (const RstknnQuery& q : queries) {
        expected.push_back(reference.Search(q, options).answers);
      }
      for (const size_t num_shards : {1u, 4u}) {
        const shard::ShardedIndex index = fx.BuildSharded(num_shards);
        const shard::ShardedSearcher searcher(&index, &fx.dataset,
                                              &fx.scorer);
        for (const size_t threads : {1u, 8u}) {
          exec::ThreadPool pool(threads);
          for (size_t i = 0; i < queries.size(); ++i) {
            const shard::ShardedResult res =
                searcher.Search(queries[i], options, &pool);
            EXPECT_EQ(res.answers, expected[i])
                << "clustered=" << clustered << " algo=" << int(algo)
                << " shards=" << num_shards << " threads=" << threads
                << " query=" << i;
            EXPECT_EQ(res.shards.shards_pruned + res.shards.shards_reported +
                          res.shards.shards_searched,
                      num_shards);
          }
        }
      }
    }
  }
}

// A one-shard index is the unsharded frozen index, byte for byte: same STR
// bulk load over the same item list, so the serialized tree is identical.
TEST(ShardTest, SingleShardMatchesUnshardedByteForByte) {
  const Fixture fx(150);
  const shard::ShardedIndex index = fx.BuildSharded(1);
  ASSERT_EQ(index.num_shards(), 1u);
  const frozen::FrozenTree reference = frozen::FrozenTree::Freeze(fx.tree);
  EXPECT_EQ(index.shard(0).SerializeToString(),
            reference.SerializeToString());
}

// The batch runner matches the serial searcher loop result-for-result at any
// thread count, and its merged heatmap reconciles counter-exactly.
TEST(ShardTest, BatchRunnerDeterministicAndReconciled) {
  const Fixture fx(200);
  const shard::ShardedIndex index = fx.BuildSharded(4);
  const shard::ShardedSearcher searcher(&index, &fx.dataset, &fx.scorer);
  std::vector<RstknnQuery> queries;
  for (ObjectId id = 0; id < 200; id += 13) {
    queries.push_back(fx.SelfQuery(id, 5));
  }
  RstknnOptions options;
  options.publish_metrics = false;
  std::vector<std::vector<ObjectId>> expected;
  for (const RstknnQuery& q : queries) {
    expected.push_back(searcher.Search(q, options).answers);
  }
  for (const size_t threads : {1u, 3u, 8u}) {
    exec::ThreadPool pool(threads);
    exec::ShardedBatchRunner runner(&index, &fx.dataset, &fx.scorer, &pool);
    obs::HeatmapRecorder heatmap;
    runner.set_heatmap(&heatmap);
    exec::BatchStats batch_stats;
    shard::ShardedStats shard_stats;
    const std::vector<RstknnResult> results =
        runner.RunRstknn(queries, options, &batch_stats, &shard_stats);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].answers, expected[i]) << "threads=" << threads
                                                 << " query=" << i;
    }
    EXPECT_EQ(shard_stats.shards_pruned + shard_stats.shards_reported +
                  shard_stats.shards_searched,
              queries.size() * index.num_shards());
    EXPECT_EQ(heatmap.queries(), queries.size());
    EXPECT_TRUE(heatmap
                    .CheckReconciles(batch_stats.total.expansions,
                                     batch_stats.total.pruned_entries,
                                     batch_stats.total.reported_entries)
                    .ok());
  }
}

// The serial searcher's heatmap also reconciles — triage decisions bump the
// same stats counters the recorder is checked against.
TEST(ShardTest, SearcherHeatmapReconciles) {
  const Fixture fx(180);
  const shard::ShardedIndex index = fx.BuildSharded(4);
  const shard::ShardedSearcher searcher(&index, &fx.dataset, &fx.scorer);
  obs::HeatmapRecorder heatmap;
  RstknnOptions options;
  options.publish_metrics = false;
  options.heatmap = &heatmap;
  RstknnStats total;
  size_t queries = 0;
  for (ObjectId id = 0; id < 180; id += 23) {
    total.Merge(searcher.Search(fx.SelfQuery(id, 4), options).stats);
    ++queries;
  }
  heatmap.AddQueries(queries);
  EXPECT_TRUE(heatmap
                  .CheckReconciles(total.expansions, total.pruned_entries,
                                   total.reported_entries)
                  .ok());
}

// Four spatial clusters far apart, spatial-dominant scoring: a query inside
// one cluster must prune (or wholesale-decide) every foreign shard, and the
// answers still match the exhaustive oracle.
TEST(ShardTest, DistantShardsArePruned) {
  std::vector<std::pair<Point, std::vector<TermId>>> rows;
  for (int c = 0; c < 4; ++c) {
    const double cx = (c % 2) * 1000.0;
    const double cy = (c / 2) * 1000.0;
    for (int i = 0; i < 12; ++i) {
      rows.push_back({Point{cx + i * 0.25, cy + (i % 3) * 0.25},
                      {static_cast<TermId>(i % 5), 7}});
    }
  }
  Dataset dataset = TinyDataset(std::move(rows));
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  // alpha 0.95: similarity is almost purely spatial, so a far shard's MaxST
  // stays below the k guaranteed competitors inside the query's own cluster.
  StScorer scorer(&sim, {0.95, dataset.max_dist()});
  shard::ShardOptions options;
  options.num_shards = 4;
  options.tree.max_entries = 8;
  options.tree.min_entries = 4;
  const shard::ShardedIndex index = shard::ShardedIndex::Build(dataset,
                                                               options);
  const shard::ShardedSearcher searcher(&index, &dataset, &scorer);
  RstknnOptions search_options;
  search_options.publish_metrics = false;
  uint64_t pruned = 0;
  for (ObjectId id = 0; id < dataset.size(); id += 7) {
    const StObject& o = dataset.object(id);
    const RstknnQuery query{o.loc, &o.doc, 3, id};
    const shard::ShardedResult res = searcher.Search(query, search_options);
    EXPECT_EQ(res.answers, BruteForceRstknn(dataset, scorer, query));
    EXPECT_EQ(res.shards.shards_searched, 1u)
        << "only the query's own cluster should need a tree search";
    pruned += res.shards.shards_pruned;
  }
  EXPECT_GT(pruned, 0u);
}

// k >= |D| makes every object an answer with no tree search at all: each
// shard's potential competitor count stays below k, so the whole forest is
// reported wholesale.
TEST(ShardTest, WholesaleReportPath) {
  const Fixture fx(24);
  const shard::ShardedIndex index = fx.BuildSharded(2);
  const shard::ShardedSearcher searcher(&index, &fx.dataset, &fx.scorer);
  RstknnOptions options;
  options.publish_metrics = false;
  const shard::ShardedResult res =
      searcher.Search(fx.SelfQuery(3, 24), options);
  std::vector<ObjectId> everyone_else;
  for (ObjectId id = 0; id < 24; ++id) {
    if (id != 3) everyone_else.push_back(id);
  }
  EXPECT_EQ(res.answers, everyone_else);
  EXPECT_EQ(res.shards.shards_reported, 2u);
  EXPECT_EQ(res.shards.shards_searched, 0u);
}

TEST(ShardTest, SaveLoadRoundTrip) {
  const Fixture fx(160);
  const shard::ShardedIndex index = fx.BuildSharded(4);
  ASSERT_TRUE(index.CheckInvariants().ok());
  const std::string dir = "shard_test_snapshot";
  ASSERT_TRUE(index.SaveDir(dir).ok());
  Result<shard::ShardedIndex> loaded = shard::ShardedIndex::LoadDir(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_shards(), index.num_shards());
  EXPECT_EQ(loaded.value().size(), index.size());
  EXPECT_TRUE(loaded.value().CheckInvariants().ok());
  const shard::ShardedSearcher before(&index, &fx.dataset, &fx.scorer);
  const shard::ShardedSearcher after(&loaded.value(), &fx.dataset,
                                     &fx.scorer);
  RstknnOptions options;
  options.publish_metrics = false;
  for (ObjectId id = 0; id < 160; id += 31) {
    const RstknnQuery q = fx.SelfQuery(id, 4);
    EXPECT_EQ(after.Search(q, options).answers,
              before.Search(q, options).answers);
  }
  for (size_t s = 0; s < index.num_shards(); ++s) {
    std::remove((dir + "/shard_" + std::to_string(s) + ".frz").c_str());
  }
  std::remove((dir + "/MANIFEST").c_str());
  EXPECT_FALSE(shard::ShardedIndex::LoadDir(dir).ok());
}

TEST(ShardTest, ShardCountClampedAndCoversEveryObject) {
  Dataset dataset = TinyDataset({{Point{0, 0}, {0}},
                                 {Point{1, 0}, {1}},
                                 {Point{0, 1}, {2}},
                                 {Point{1, 1}, {0, 1}},
                                 {Point{2, 2}, {2, 3}}});
  shard::ShardOptions options;
  options.num_shards = 16;  // > N: clamps to one object per shard
  const shard::ShardedIndex index = shard::ShardedIndex::Build(dataset,
                                                               options);
  EXPECT_EQ(index.num_shards(), 5u);
  EXPECT_EQ(index.size(), 5u);
  for (size_t s = 0; s < index.num_shards(); ++s) {
    EXPECT_GT(index.shard(s).size(), 0u);
  }
  EXPECT_TRUE(index.CheckInvariants().ok());
  for (ObjectId id = 0; id < 5; ++id) {
    EXPECT_LT(index.shard_of(id), index.num_shards());
  }
}

TEST(ShardTest, EmptyDatasetBuildsEmptyForest) {
  Dataset dataset = TinyDataset({});
  shard::ShardOptions options;
  options.num_shards = 4;
  const shard::ShardedIndex index = shard::ShardedIndex::Build(dataset,
                                                               options);
  EXPECT_EQ(index.num_shards(), 0u);
  EXPECT_EQ(index.size(), 0u);
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, 1.0});
  const shard::ShardedSearcher searcher(&index, &dataset, &scorer);
  const TermVector qdoc = TermVector::FromTerms({1});
  RstknnOptions search_options;
  search_options.publish_metrics = false;
  const shard::ShardedResult res = searcher.Search(
      {Point{0, 0}, &qdoc, 5, IurTree::kNoObject}, search_options);
  EXPECT_TRUE(res.answers.empty());
}

// The journal header round-trips the shard count, and captures from before
// the field existed parse as shards = 0.
TEST(ShardTest, JournalHeaderShardsRoundTrip) {
  const std::string path = "shard_test_journal.jsonl";
  obs::JournalHeader header;
  header.label = "rstknn.batch";
  header.algo = "probe";
  header.view = "frozen";
  header.tree = "iur";
  header.measure = "ej";
  header.weighting = "tfidf";
  header.shards = 4;
  obs::WorkloadRecorder recorder;
  ASSERT_TRUE(recorder.Open(path, header).ok());
  obs::JournalQueryRecord record;
  record.index = 0;
  record.k = 3;
  recorder.Append(record);
  ASSERT_TRUE(recorder.Close().ok());
  Result<obs::JournalFile> loaded = obs::ReadJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().header.shards, 4u);
  std::remove(path.c_str());

  // A pre-shard header line (no "shards" key) must still parse.
  const std::string legacy =
      "{\"type\":\"header\",\"version\":1,\"label\":\"rstknn\",\"data\":\"\","
      "\"algo\":\"probe\",\"view\":\"pointer\",\"tree\":\"iur\","
      "\"measure\":\"ej\",\"weighting\":\"tfidf\",\"alpha\":0.5,"
      "\"threads\":1,\"sample_every\":1}\n";
  ASSERT_TRUE(WriteStringToFile(path, legacy).ok());
  Result<obs::JournalFile> old = obs::ReadJournal(path);
  ASSERT_TRUE(old.ok()) << old.status().ToString();
  EXPECT_EQ(old.value().header.shards, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rst
