#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "rst/obs/json.h"
#include "rst/obs/metrics.h"
#include "rst/obs/trace.h"

namespace rst::obs {
namespace {

// Scratch metric and span names owned by this binary: the unit under test
// is the registry/trace machinery itself, so these deliberately do not
// live in metric_names.h. Constants keep the call sites literal-free
// (rst_lint metric-name-literal).
constexpr char kTestAdds[] = "test.adds";
constexpr char kTestHist[] = "test.hist";
constexpr char kTestCounter[] = "test.counter";
constexpr char kTestGauge[] = "test.gauge";
constexpr char kQCount[] = "q.count";
constexpr char kQGauge[] = "q.gauge";
constexpr char kQLat[] = "q.lat";
constexpr char kDCount[] = "d.count";
constexpr char kDHist[] = "d.hist";
constexpr char kDGauge[] = "d.gauge";
constexpr char kSubSystemEvents[] = "sub.system.events";
constexpr char kSetup[] = "setup";
constexpr char kProbe[] = "probe";
constexpr char kExpand[] = "expand";
constexpr char kEntries[] = "entries";
constexpr char kBound[] = "bound";
constexpr char kRootItems[] = "root_items";
constexpr char kOuter[] = "outer";
constexpr char kInner[] = "inner";
constexpr char kHits[] = "hits";
constexpr char kLeftOpen[] = "left_open";
constexpr char kIgnored[] = "ignored";
constexpr char kRows[] = "rows";
constexpr char kPqPops[] = "pq_pops";
constexpr char kStressCounter[] = "stress.counter";
constexpr char kStressHist[] = "stress.hist";

// --- MetricRegistry -------------------------------------------------------

TEST(RegistryTest, CounterMergesThreadStripesExactly) {
  MetricRegistry registry;
  const Counter counter = registry.GetCounter(kTestAdds);
  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 10000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();

  // Striped shards must merge without losing a single update.
  EXPECT_EQ(counter.Value(), kThreads * kAddsPerThread);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_TRUE(snap.counters.count("test.adds"));
  EXPECT_EQ(snap.counters.at("test.adds"), kThreads * kAddsPerThread);
}

TEST(RegistryTest, HistogramMergesThreadStripesExactly) {
  MetricRegistry registry;
  const HistogramRef hist =
      registry.GetHistogram(kTestHist, HistogramSpec::Linear(1.0, 1.0, 4));
  constexpr int kThreads = 6;
  constexpr uint64_t kRecordsPerThread = 5000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kRecordsPerThread; ++i) {
        hist.Record(static_cast<double>(t % 3));  // values 0, 1, 2
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_TRUE(snap.histograms.count("test.hist"));
  const HistogramSnapshot& h = snap.histograms.at("test.hist");
  EXPECT_EQ(h.count, kThreads * kRecordsPerThread);
  // Threads 0,3 record 0; 1,4 record 1; 2,5 record 2. Bounds {1,2,3,4}:
  // 0 and 1 land in bucket 0 (v <= 1), 2 in bucket 1.
  EXPECT_EQ(h.counts[0], 4 * kRecordsPerThread);
  EXPECT_EQ(h.counts[1], 2 * kRecordsPerThread);
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 2.0);
}

TEST(RegistryTest, HandlesAreIdempotentAndSurviveReset) {
  MetricRegistry registry;
  const Counter a = registry.GetCounter(kTestCounter);
  const Counter b = registry.GetCounter(kTestCounter);
  a.Add(3);
  b.Add(4);
  EXPECT_EQ(a.Value(), 7);  // same underlying metric

  const Gauge gauge = registry.GetGauge(kTestGauge);
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);

  registry.Reset();
  EXPECT_EQ(a.Value(), 0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  a.Increment();  // handle must stay valid after Reset
  EXPECT_EQ(b.Value(), 1);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_TRUE(snap.counters.count("test.counter"));
  EXPECT_TRUE(snap.gauges.count("test.gauge"));
}

TEST(RegistryTest, DefaultConstructedHandlesAreNoOps) {
  Counter counter;
  Gauge gauge;
  HistogramRef hist;
  counter.Increment();
  gauge.Set(1.0);
  hist.Record(1.0);
  EXPECT_EQ(counter.Value(), 0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

// --- Histogram ------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram hist(HistogramSpec{{1.0, 2.0, 4.0}});
  hist.Record(1.0);  // == bound 0 -> bucket 0
  hist.Record(1.5);  // bucket 1
  hist.Record(2.0);  // == bound 1 -> bucket 1
  hist.Record(4.0);  // == bound 2 -> bucket 2
  hist.Record(5.0);  // above all bounds -> overflow
  const HistogramSnapshot& snap = hist.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 13.5);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 5.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 2.7);
}

TEST(HistogramTest, PercentileReadsCumulativeBuckets) {
  Histogram hist(HistogramSpec::Linear(1.0, 1.0, 10));  // bounds 1..10
  for (int v = 1; v <= 100; ++v) hist.Record(static_cast<double>(v % 10 + 1));
  // Ten values per bucket 1..10; p50 falls in the bucket bounded by 5.
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 1.0);

  Histogram empty(HistogramSpec::Linear(1.0, 1.0, 2));
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);
}

TEST(HistogramTest, OverflowPercentileReportsObservedMax) {
  Histogram hist(HistogramSpec{{1.0}});
  hist.Record(50.0);
  hist.Record(80.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.99), 80.0);
}

TEST(HistogramTest, SpecFactories) {
  const HistogramSpec exp = HistogramSpec::Exponential(1.0, 2.0, 4);
  ASSERT_EQ(exp.bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(exp.bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(exp.bounds[3], 8.0);

  const HistogramSpec lin = HistogramSpec::Linear(0.5, 0.25, 3);
  ASSERT_EQ(lin.bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(lin.bounds[1], 0.75);
  EXPECT_DOUBLE_EQ(lin.bounds[2], 1.0);

  EXPECT_FALSE(HistogramSpec::LatencyMs().bounds.empty());
}

TEST(HistogramTest, MergeAccumulatesCountsAndExtremes) {
  Histogram a(HistogramSpec{{1.0, 2.0}});
  Histogram b(HistogramSpec{{1.0, 2.0}});
  a.Record(0.5);
  b.Record(1.5);
  b.Record(9.0);
  ASSERT_TRUE(a.Merge(b.snapshot()).ok());
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 11.0);
  EXPECT_DOUBLE_EQ(a.snapshot().min, 0.5);
  EXPECT_DOUBLE_EQ(a.snapshot().max, 9.0);
  EXPECT_EQ(a.snapshot().counts[0], 1u);
  EXPECT_EQ(a.snapshot().counts[1], 1u);
  EXPECT_EQ(a.snapshot().counts[2], 1u);
}

TEST(HistogramTest, MergeRejectsMismatchedBoundsUntouched) {
  Histogram a(HistogramSpec{{1.0, 2.0}});
  Histogram b(HistogramSpec{{1.0, 2.0, 4.0}});
  a.Record(0.5);
  b.Record(3.0);
  const Status s = a.Merge(b.snapshot());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The target histogram must be left exactly as it was.
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.sum(), 0.5);
  EXPECT_EQ(a.snapshot().counts[0], 1u);
  EXPECT_EQ(a.snapshot().counts[1], 0u);
  EXPECT_EQ(a.snapshot().counts[2], 0u);

  // Same bound count but different values is just as incompatible.
  Histogram c(HistogramSpec{{1.0, 3.0}});
  c.Record(2.0);
  EXPECT_EQ(a.Merge(c.snapshot()).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(a.count(), 1u);
}

TEST(HistogramTest, PercentileEmptyHistogramIsZero) {
  Histogram empty(HistogramSpec{{1.0, 2.0}});
  EXPECT_DOUBLE_EQ(empty.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(1.0), 0.0);
}

TEST(HistogramTest, PercentileAllValuesInOverflowBucket) {
  Histogram hist(HistogramSpec{{1.0, 2.0}});
  hist.Record(10.0);
  hist.Record(20.0);
  hist.Record(30.0);
  // Every quantile resolves to the overflow bucket -> the observed max.
  EXPECT_DOUBLE_EQ(hist.Percentile(0.01), 30.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 30.0);
}

TEST(HistogramTest, PercentileSingleBucketSpec) {
  // Degenerate one-bound spec: the bucket-upper-bound estimate is clamped to
  // the observed max while everything sits below the bound; quantiles landing
  // in the overflow bucket report the observed max.
  Histogram hist(HistogramSpec{{5.0}});
  hist.Record(1.0);
  hist.Record(4.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 4.0);
  hist.Record(42.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 42.0);
}

TEST(HistogramTest, PercentileAfterMergeSeesCombinedDistribution) {
  // Post-Merge percentiles read the combined cumulative counts, including
  // the merged-in extremes (overflow quantiles report the merged max).
  Histogram a(HistogramSpec::Linear(1.0, 1.0, 4));  // bounds 1..4
  Histogram b(HistogramSpec::Linear(1.0, 1.0, 4));
  for (int i = 0; i < 8; ++i) a.Record(1.0);  // all of a in bucket 0
  b.Record(4.0);
  b.Record(50.0);  // overflow
  ASSERT_TRUE(a.Merge(b.snapshot()).ok());
  // 10 samples: 8 at bound 1, one at bound 4, one overflowing.
  EXPECT_DOUBLE_EQ(a.Percentile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(a.Percentile(0.9), 4.0);
  EXPECT_DOUBLE_EQ(a.Percentile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(a.snapshot().max, 50.0);
}

// --- Snapshot export / round-trip -----------------------------------------

TEST(SnapshotTest, JsonRoundTrip) {
  MetricRegistry registry;
  registry.GetCounter(kQCount).Add(42);
  registry.GetGauge(kQGauge).Set(1.25);
  const HistogramRef hist =
      registry.GetHistogram(kQLat, HistogramSpec{{1.0, 4.0}});
  hist.Record(0.5);
  hist.Record(8.0);

  const MetricsSnapshot snap = registry.Snapshot();
  const std::string json = snap.ToJson();
  const Result<MetricsSnapshot> parsed = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();

  const MetricsSnapshot& back = parsed.value();
  EXPECT_EQ(back.counters, snap.counters);
  EXPECT_EQ(back.gauges, snap.gauges);
  ASSERT_TRUE(back.histograms.count("q.lat"));
  const HistogramSnapshot& h = back.histograms.at("q.lat");
  EXPECT_EQ(h.bounds, snap.histograms.at("q.lat").bounds);
  EXPECT_EQ(h.counts, snap.histograms.at("q.lat").counts);
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum, 8.5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 8.0);
}

TEST(SnapshotTest, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(MetricsSnapshot::FromJson("not json").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("[1,2,3]").ok());
}

TEST(SnapshotTest, DeltaSubtractsCountersAndHistograms) {
  MetricRegistry registry;
  const Counter counter = registry.GetCounter(kDCount);
  const HistogramRef hist =
      registry.GetHistogram(kDHist, HistogramSpec{{10.0}});
  counter.Add(5);
  hist.Record(1.0);
  const MetricsSnapshot base = registry.Snapshot();

  counter.Add(3);
  hist.Record(2.0);
  registry.GetGauge(kDGauge).Set(7.0);
  const MetricsSnapshot delta = registry.Snapshot().Delta(base);

  EXPECT_EQ(delta.counters.at("d.count"), 3u);
  EXPECT_EQ(delta.histograms.at("d.hist").count, 1u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("d.hist").sum, 2.0);
  // Gauges keep their current value in a delta.
  EXPECT_DOUBLE_EQ(delta.gauges.at("d.gauge"), 7.0);
}

TEST(SnapshotTest, PrometheusTextUsesUnderscores) {
  MetricRegistry registry;
  registry.GetCounter(kSubSystemEvents).Add(2);
  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("sub_system_events"), std::string::npos);
  EXPECT_EQ(text.find("sub.system.events"), std::string::npos);
}

// --- QueryTrace -----------------------------------------------------------

TEST(TraceTest, NestingOrderAndMergeByName) {
  QueryTrace trace("query");
  trace.Enter(kSetup);
  trace.Exit();
  trace.Enter(kProbe);
  for (int i = 0; i < 3; ++i) {
    trace.Enter(kExpand);  // merges into one child, calls accumulate
    trace.AddCount(kEntries, 4);
    trace.Exit();
  }
  trace.Enter(kBound);
  trace.Exit();
  trace.Exit();
  trace.Finish();

  const Span& root = trace.root();
  EXPECT_EQ(root.name, "query");
  EXPECT_EQ(root.calls, 1u);
  ASSERT_EQ(root.children.size(), 2u);  // first-entered order
  EXPECT_EQ(root.children[0]->name, "setup");
  EXPECT_EQ(root.children[1]->name, "probe");

  const Span& probe = *root.children[1];
  ASSERT_EQ(probe.children.size(), 2u);
  EXPECT_EQ(probe.children[0]->name, "expand");
  EXPECT_EQ(probe.children[0]->calls, 3u);
  EXPECT_EQ(probe.children[0]->counts.at("entries"), 12u);
  EXPECT_EQ(probe.children[1]->name, "bound");
}

TEST(TraceTest, AddCountTargetsInnermostOpenSpan) {
  QueryTrace trace;
  trace.AddCount(kRootItems, 2);
  trace.Enter(kOuter);
  trace.Enter(kInner);
  trace.AddCount(kHits, 5);
  trace.Exit();
  trace.AddCount(kHits, 1);  // now attributed to "outer"
  trace.Exit();
  trace.Finish();

  const Span& root = trace.root();
  EXPECT_EQ(root.counts.at("root_items"), 2u);
  const Span& outer = *root.children[0];
  EXPECT_EQ(outer.counts.at("hits"), 1u);
  EXPECT_EQ(outer.children[0]->counts.at("hits"), 5u);
}

TEST(TraceTest, FinishClosesDanglingSpansAndStampsTimes) {
  QueryTrace trace;
  trace.Enter(kLeftOpen);
  trace.Finish();
  const Span& root = trace.root();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_GE(root.total_ms, root.children[0]->total_ms);
  EXPECT_GE(root.children[0]->total_ms, 0.0);
}

TEST(TraceTest, RaiiSpanAndNullTraceAreSafe) {
  {
    TraceSpan disabled(nullptr, "noop");
    disabled.AddCount(kIgnored, 9);  // must not crash
  }
  QueryTrace trace;
  {
    TraceSpan span(&trace, "scan");
    span.AddCount(kRows, 7);
  }
  trace.Finish();
  ASSERT_EQ(trace.root().children.size(), 1u);
  EXPECT_EQ(trace.root().children[0]->counts.at("rows"), 7u);
}

TEST(TraceTest, JsonExportParsesBack) {
  QueryTrace trace("rstknn");
  {
    TraceSpan span(&trace, "probe");
    span.AddCount(kPqPops, 3);
  }
  trace.Finish();

  const Result<JsonValue> parsed = JsonValue::Parse(trace.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.Get("name")->AsString(), "rstknn");
  const JsonValue* children = root.Get("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->AsArray().size(), 1u);
  const JsonValue& probe = children->AsArray()[0];
  EXPECT_EQ(probe.Get("name")->AsString(), "probe");
  EXPECT_EQ(probe.Get("counts")->Get("pq_pops")->AsUint(), 3u);
}

TEST(TraceTest, ToStringShowsCallMultiplicity) {
  QueryTrace trace;
  for (int i = 0; i < 4; ++i) {
    TraceSpan span(&trace, "pop");
  }
  trace.Finish();
  const std::string text = trace.ToString();
  EXPECT_NE(text.find("pop"), std::string::npos);
  EXPECT_NE(text.find("4"), std::string::npos);
}

TEST(MetricsTest, ResetRacesWritersWithoutCorruption) {
  // Backs the documented Reset() guarantee: concurrent handle updates plus
  // Reset()/Snapshot() never tear a value. We cannot assert an exact final
  // count (an in-flight add may land on either side of a reset), only that
  // every observed value is one a sequential interleaving could produce.
  MetricRegistry registry;
  const Counter counter = registry.GetCounter(kStressCounter);
  const HistogramRef hist =
      registry.GetHistogram(kStressHist, HistogramSpec::Linear(1.0, 1.0, 8));
  constexpr size_t kWriters = 4;
  constexpr uint64_t kAddsPerWriter = 20000;

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kAddsPerWriter; ++i) {
        counter.Add(1);
        hist.Record(3.0);
      }
    });
  }
  std::thread resetter([&] {
    for (int i = 0; i < 50; ++i) {
      registry.Reset();
      const MetricsSnapshot snap = registry.Snapshot();
      const uint64_t c = snap.counters.at("stress.counter");
      EXPECT_LE(c, kWriters * kAddsPerWriter);
      const HistogramSnapshot& h = snap.histograms.at("stress.hist");
      EXPECT_LE(h.count, kWriters * kAddsPerWriter);
      // Every sample is 3.0; atomic (never torn) accumulation means the sum
      // stays an exact multiple of 3 no matter how Reset interleaves.
      EXPECT_DOUBLE_EQ(std::fmod(h.sum, 3.0), 0.0);
      EXPECT_LE(h.sum, 3.0 * kWriters * kAddsPerWriter);
    }
  });
  for (std::thread& th : writers) th.join();
  resetter.join();

  registry.Reset();
  const MetricsSnapshot final_snap = registry.Snapshot();
  EXPECT_EQ(final_snap.counters.at("stress.counter"), 0u);
  EXPECT_EQ(final_snap.histograms.at("stress.hist").count, 0u);
}

// --- JsonValue parser -----------------------------------------------------

TEST(JsonTest, ParseScalarsAndContainers) {
  const Result<JsonValue> parsed =
      JsonValue::Parse(R"({"a": 1.5, "b": [true, null, "x\n"], "c": -3})");
  ASSERT_TRUE(parsed.ok());
  const JsonValue& v = parsed.value();
  EXPECT_DOUBLE_EQ(v.Get("a")->AsDouble(), 1.5);
  const std::vector<JsonValue>& arr = v.Get("b")->AsArray();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].AsBool());
  EXPECT_EQ(arr[1].kind(), JsonValue::Kind::kNull);
  EXPECT_EQ(arr[2].AsString(), "x\n");
  EXPECT_DOUBLE_EQ(v.Get("c")->AsDouble(), -3.0);
  EXPECT_EQ(v.Get("missing"), nullptr);
}

TEST(JsonTest, ParseRejectsTrailingGarbageAndTruncation) {
  EXPECT_FALSE(JsonValue::Parse("{} extra").ok());
  EXPECT_FALSE(JsonValue::Parse(R"({"a": )").ok());
  EXPECT_FALSE(JsonValue::Parse("").ok());
}

TEST(JsonTest, WriterEscapesAndRoundTrips) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("msg");
  writer.String("line1\nline2\t\"q\"");
  writer.Key("n");
  writer.Uint(18446744073709551615ull);
  writer.EndObject();
  const Result<JsonValue> parsed = JsonValue::Parse(writer.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Get("msg")->AsString(), "line1\nline2\t\"q\"");
}

TEST(JsonTest, WriterEscapesControlCharacters) {
  JsonWriter writer;
  writer.String(std::string("a\b\f\x01\x1f") + "z");
  EXPECT_EQ(writer.str(), "\"a\\b\\f\\u0001\\u001fz\"");
  // Every escaped form parses back to the original bytes.
  const Result<JsonValue> parsed = JsonValue::Parse(writer.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().AsString(), std::string("a\b\f\x01\x1f") + "z");
}

TEST(JsonTest, WriterPassesValidUtf8Verbatim) {
  // 2-, 3-, and 4-byte sequences: é, €, 😀.
  const std::string s = "caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80";
  JsonWriter writer;
  writer.String(s);
  EXPECT_EQ(writer.str(), "\"" + s + "\"");
}

TEST(JsonTest, WriterReplacesInvalidUtf8WithReplacementCharacter) {
  const std::string fffd = "\xEF\xBF\xBD";
  const auto escaped = [](std::string_view s) {
    JsonWriter writer;
    writer.String(s);
    return writer.str();
  };
  // Lone continuation byte, truncated lead, and bytes never valid in UTF-8
  // each become one U+FFFD; surrounding ASCII is untouched.
  EXPECT_EQ(escaped("a\x80z"), "\"a" + fffd + "z\"");
  EXPECT_EQ(escaped("a\xC3"), "\"a" + fffd + "\"");
  EXPECT_EQ(escaped("\xFE\xFF"), "\"" + fffd + fffd + "\"");
  // Overlong encoding of '/' (C0 AF) and a CESU-8 surrogate (ED A0 80) are
  // rejected byte-by-byte.
  EXPECT_EQ(escaped("\xC0\xAF"), "\"" + fffd + fffd + "\"");
  EXPECT_EQ(escaped("\xED\xA0\x80"), "\"" + fffd + fffd + fffd + "\"");
  // A valid sequence right after an invalid byte still passes through.
  EXPECT_EQ(escaped("\x80\xC3\xA9"), "\"" + fffd + "\xC3\xA9\"");
  // The output is always parseable JSON.
  EXPECT_TRUE(JsonValue::Parse(escaped("\xFF\xC3\xA9\x80")).ok());
}

}  // namespace
}  // namespace rst::obs
