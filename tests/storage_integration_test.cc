// Storage-path integration: the full disk round trip of index payloads
// through the buffer pool, cache-hit accounting, and codec robustness under
// corruption (randomized truncations and byte flips must produce clean
// Status errors, never crashes or hangs).

#include <gtest/gtest.h>

#include "rst/common/rng.h"
#include "rst/data/generators.h"
#include "rst/iurtree/iurtree.h"
#include "rst/storage/buffer_pool.h"

namespace rst {
namespace {

TEST(StorageIntegrationTest, NodePayloadsRoundTripThroughBufferPool) {
  FlickrLikeConfig config;
  config.num_objects = 600;
  config.seed = 4;
  const Dataset d = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  BufferPool pool(&tree.page_store(), /*capacity_pages=*/64);
  IoStats stats;

  // Cold read of the root: charges node + payload blocks.
  InvertedFile file;
  ASSERT_TRUE(
      tree.ReadNodePayload(tree.root(), &pool, &stats, &file).ok());
  EXPECT_GE(stats.payload_blocks, 1u);
  EXPECT_FALSE(file.empty());
  // The decoded postings must match the in-memory summaries.
  for (const auto& [term, postings] : file) {
    for (const Posting& p : postings) {
      ASSERT_LT(p.id, tree.root()->entries.size());
      const IurTree::Entry& e = tree.root()->entries[p.id];
      EXPECT_FLOAT_EQ(p.max_weight, e.summary.uni.Get(term));
      EXPECT_FLOAT_EQ(p.min_weight, e.summary.intr.Get(term));
    }
  }

  // Warm read: zero new payload blocks, one cache hit.
  const uint64_t blocks_before = stats.payload_blocks;
  InvertedFile again;
  ASSERT_TRUE(
      tree.ReadNodePayload(tree.root(), &pool, &stats, &again).ok());
  EXPECT_EQ(stats.payload_blocks, blocks_before);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(again.size(), file.size());
}

TEST(StorageIntegrationTest, WholeTreeScanWithSmallPool) {
  FlickrLikeConfig config;
  config.num_objects = 1200;
  config.seed = 5;
  const Dataset d = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  BufferPool pool(&tree.page_store(), /*capacity_pages=*/4);  // heavy eviction
  IoStats stats;
  size_t nodes = 0;
  std::vector<const IurTree::Node*> stack = {tree.root()};
  while (!stack.empty()) {
    const IurTree::Node* node = stack.back();
    stack.pop_back();
    InvertedFile file;
    ASSERT_TRUE(tree.ReadNodePayload(node, &pool, &stats, &file).ok());
    ++nodes;
    if (!node->leaf) {
      for (const IurTree::Entry& e : node->entries) {
        stack.push_back(e.child);
      }
    }
  }
  EXPECT_EQ(nodes, tree.NodeCount());
  EXPECT_EQ(stats.node_reads, nodes);
  // Tiny pool: essentially everything misses.
  EXPECT_GE(pool.misses(), nodes - pool.capacity_pages());
}

TEST(StorageIntegrationTest, UnfinalizedStorageRejected) {
  FlickrLikeConfig config;
  config.num_objects = 100;
  const Dataset d = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  IurTree tree = IurTree::BuildFromDataset(d, {});
  tree.Insert(100, Point{1, 1}, &d.object(0).doc);  // dirties storage
  BufferPool pool(&tree.page_store(), 8);
  IoStats stats;
  InvertedFile file;
  EXPECT_EQ(tree.ReadNodePayload(tree.root(), &pool, &stats, &file).code(),
            StatusCode::kFailedPrecondition);
  tree.FinalizeStorage();
  BufferPool fresh(&tree.page_store(), 8);
  EXPECT_TRUE(tree.ReadNodePayload(tree.root(), &fresh, &stats, &file).ok());
}

// Fuzz-style robustness: decoding arbitrarily corrupted buffers must fail
// cleanly (or succeed on semantically harmless flips), never crash.
TEST(CodecFuzzTest, TruncationsNeverCrash) {
  Rng rng(31);
  InvertedFile file;
  for (TermId t = 0; t < 40; ++t) {
    auto& list = file[t * 7];
    for (uint32_t i = 0; i < 20; ++i) {
      list.push_back({i, static_cast<float>(rng.Uniform(0, 2)),
                      static_cast<float>(rng.Uniform(0, 1))});
    }
  }
  std::string buf;
  EncodeInvertedFile(file, &buf);
  for (size_t cut = 0; cut < buf.size(); cut += 7) {
    std::string truncated = buf.substr(0, cut);
    size_t offset = 0;
    InvertedFile out;
    const Status s = DecodeInvertedFile(truncated, &offset, &out);
    EXPECT_FALSE(s.ok()) << "cut=" << cut;  // always detectably short
  }
}

TEST(CodecFuzzTest, ByteFlipsNeverCrash) {
  Rng rng(37);
  TextSummary summary;
  std::vector<TermWeight> entries;
  for (TermId t = 0; t < 64; ++t) {
    entries.push_back({t * 3, static_cast<float>(rng.Uniform(0.01, 3))});
  }
  summary.uni = TermVector::FromSorted(entries);
  summary.intr = summary.uni;
  summary.count = 64;
  std::string buf;
  EncodeTextSummary(summary, &buf);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = buf;
    const size_t pos = rng.UniformInt(mutated.size());
    mutated[pos] = static_cast<char>(rng.Next() & 0xFF);
    size_t offset = 0;
    TextSummary out;
    // Must terminate and either fail cleanly or produce *some* summary;
    // (weight bytes are raw floats, so many flips decode fine).
    // rst-lint: allow(unchecked-status) fuzz probe: only no-crash matters, both outcomes valid
    (void)DecodeTextSummary(mutated, &offset, &out);
  }
  SUCCEED();
}

TEST(CodecFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(41);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage(rng.UniformInt(uint64_t{200}), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Next() & 0xFF);
    size_t offset = 0;
    InvertedFile file;
    // rst-lint: allow(unchecked-status) fuzz probe: only no-crash matters, both outcomes valid
    (void)DecodeInvertedFile(garbage, &offset, &file);
    offset = 0;
    TermVector vec;
    // rst-lint: allow(unchecked-status) fuzz probe: only no-crash matters, both outcomes valid
    (void)DecodeTermVector(garbage, &offset, &vec);
  }
  SUCCEED();
}

}  // namespace
}  // namespace rst
