#include "rst/maxbrst/joint_topk.h"

#include <gtest/gtest.h>

#include "rst/data/generators.h"

namespace rst {
namespace {

struct JointFixture {
  Dataset dataset;
  GeneratedUsers gen;
  IurTree tree;
  TextSimilarity sim;
  StScorer scorer;

  JointFixture(size_t num_objects, size_t num_users, Weighting weighting,
               double alpha, uint64_t seed = 1)
      : tree(IurTree::Build({}, {})),
        // Placeholder measure: kSum requires corpus-max normalizers, which
        // exist only after the dataset is generated in the body (reassigned
        // there). EJ keeps the pre-init state assert-clean in Debug builds.
        sim(TextMeasure::kExtendedJaccard),
        scorer(&sim, {alpha, 1.0}) {
    FlickrLikeConfig config;
    config.num_objects = num_objects;
    config.vocab_size = 400;
    config.seed = seed;
    dataset = GenFlickrLike(config, {weighting, 0.1});
    UserGenConfig ucfg;
    ucfg.num_users = num_users;
    ucfg.area_extent = 25.0;
    ucfg.seed = seed + 5;
    gen = GenUsers(dataset, ucfg);
    tree = IurTree::BuildFromDataset(dataset, {});
    sim = TextSimilarity(TextMeasure::kSum, &dataset.corpus_max());
    scorer = StScorer(&sim, {alpha, dataset.max_dist()});
  }
};

TEST(SuperUserTest, AggregatesUsers) {
  std::vector<StUser> users(3);
  users[0] = {0, Point{0, 0}, TermVector::FromTerms({1, 2})};
  users[1] = {1, Point{4, 2}, TermVector::FromTerms({2, 3})};
  users[2] = {2, Point{2, 6}, TermVector::FromTerms({2})};
  const SuperUser su = SuperUser::FromUsers(users);
  EXPECT_EQ(su.mbr, Rect::FromCorners(0, 0, 4, 6));
  EXPECT_EQ(su.keywords.count, 3u);
  // Union = {1,2,3}; intersection = {2}.
  EXPECT_EQ(su.keywords.uni.size(), 3u);
  ASSERT_EQ(su.keywords.intr.size(), 1u);
  EXPECT_TRUE(su.keywords.intr.Contains(2));
}

class JointWeightingTest : public ::testing::TestWithParam<Weighting> {};

TEST_P(JointWeightingTest, JointMatchesBruteForcePerUser) {
  JointFixture f(2500, 60, GetParam(), 0.5);
  JointTopKProcessor proc(&f.tree, &f.dataset, &f.scorer);
  const size_t k = 10;
  const JointTopKResult joint = proc.Process(f.gen.users, k);
  for (const StUser& u : f.gen.users) {
    TopKQuery q{u.loc, &u.keywords, k, IurTree::kNoObject};
    const auto expected = BruteForceTopK(f.dataset, f.scorer, q);
    ASSERT_EQ(joint.per_user[u.id].size(), expected.size()) << "u=" << u.id;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(joint.per_user[u.id][i].id, expected[i].id)
          << "u=" << u.id << " pos=" << i;
      EXPECT_DOUBLE_EQ(joint.per_user[u.id][i].score, expected[i].score);
    }
    EXPECT_DOUBLE_EQ(joint.rsk[u.id], expected.back().score);
  }
}

INSTANTIATE_TEST_SUITE_P(Weightings, JointWeightingTest,
                         ::testing::Values(Weighting::kLanguageModel,
                                           Weighting::kTfIdf,
                                           Weighting::kBinary),
                         [](const auto& info) {
                           return WeightingName(info.param);
                         });

struct SweepCase {
  size_t k;
  double alpha;
};

class JointSweepTest : public ::testing::TestWithParam<SweepCase> {};

// Exhaustive cross-sweep: for every (k, alpha) grid point the joint result
// must equal the per-user brute force, and RS_k(u) must be the k-th score.
TEST_P(JointSweepTest, GridPointMatchesOracle) {
  const SweepCase& c = GetParam();
  JointFixture f(1200, 25, Weighting::kLanguageModel, c.alpha, 40 + c.k);
  JointTopKProcessor proc(&f.tree, &f.dataset, &f.scorer);
  const JointTopKResult joint = proc.Process(f.gen.users, c.k);
  for (const StUser& u : f.gen.users) {
    TopKQuery q{u.loc, &u.keywords, c.k, IurTree::kNoObject};
    const auto expected = BruteForceTopK(f.dataset, f.scorer, q);
    ASSERT_EQ(joint.per_user[u.id].size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(joint.per_user[u.id][i], expected[i])
          << "k=" << c.k << " alpha=" << c.alpha << " u=" << u.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, JointSweepTest,
    ::testing::Values(SweepCase{1, 0.1}, SweepCase{1, 0.5}, SweepCase{1, 0.9},
                      SweepCase{5, 0.1}, SweepCase{5, 0.5}, SweepCase{5, 0.9},
                      SweepCase{25, 0.1}, SweepCase{25, 0.5},
                      SweepCase{25, 0.9}, SweepCase{100, 0.3},
                      SweepCase{100, 0.7}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.k) + "_a" +
             std::to_string(static_cast<int>(info.param.alpha * 10));
    });

TEST(JointTopKTest, MatchesBaselineAndUsesLessIo) {
  JointFixture f(4000, 100, Weighting::kLanguageModel, 0.5, 3);
  JointTopKProcessor proc(&f.tree, &f.dataset, &f.scorer);
  const size_t k = 10;
  const JointTopKResult joint = proc.Process(f.gen.users, k);
  const JointTopKResult baseline = proc.BaselinePerUser(f.gen.users, k);
  for (size_t u = 0; u < f.gen.users.size(); ++u) {
    ASSERT_EQ(joint.per_user[u].size(), baseline.per_user[u].size());
    for (size_t i = 0; i < joint.per_user[u].size(); ++i) {
      EXPECT_EQ(joint.per_user[u][i], baseline.per_user[u][i]);
    }
  }
  // The whole point of joint processing: shared I/O beats per-user I/O.
  EXPECT_LT(joint.io.TotalIos(), baseline.io.TotalIos());
}

TEST(JointTopKTest, AlphaExtremes) {
  for (double alpha : {0.0, 1.0}) {
    JointFixture f(1200, 30, Weighting::kLanguageModel, alpha, 11);
    JointTopKProcessor proc(&f.tree, &f.dataset, &f.scorer);
    const JointTopKResult joint = proc.Process(f.gen.users, 5);
    for (const StUser& u : f.gen.users) {
      TopKQuery q{u.loc, &u.keywords, 5, IurTree::kNoObject};
      const auto expected = BruteForceTopK(f.dataset, f.scorer, q);
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(joint.per_user[u.id][i].id, expected[i].id)
            << "alpha=" << alpha << " u=" << u.id;
      }
    }
  }
}

TEST(JointTopKTest, KLargerThanCollection) {
  JointFixture f(30, 10, Weighting::kLanguageModel, 0.5, 13);
  JointTopKProcessor proc(&f.tree, &f.dataset, &f.scorer);
  const JointTopKResult joint = proc.Process(f.gen.users, 50);
  for (const StUser& u : f.gen.users) {
    EXPECT_EQ(joint.per_user[u.id].size(), 30u);
    EXPECT_LT(joint.rsk[u.id], 0.0);  // fewer than k competitors
  }
}

TEST(JointTopKTest, TraversalPoolCoversAllTopK) {
  JointFixture f(2000, 50, Weighting::kLanguageModel, 0.3, 17);
  JointTopKProcessor proc(&f.tree, &f.dataset, &f.scorer);
  const size_t k = 8;
  IoStats io;
  const SuperUser su = SuperUser::FromUsers(f.gen.users);
  const JointTraversal traversal = proc.Traverse(su, k, &io);
  std::vector<bool> in_pool(f.dataset.size(), false);
  for (ObjectId id : traversal.lo) in_pool[id] = true;
  for (const TopKResult& r : traversal.ro) in_pool[r.id] = true;
  for (const StUser& u : f.gen.users) {
    TopKQuery q{u.loc, &u.keywords, k, IurTree::kNoObject};
    for (const TopKResult& r : BruteForceTopK(f.dataset, f.scorer, q)) {
      EXPECT_TRUE(in_pool[r.id]) << "user " << u.id << " object " << r.id;
    }
  }
  // RO is sorted by descending upper bound.
  for (size_t i = 1; i < traversal.ro.size(); ++i) {
    EXPECT_GE(traversal.ro[i - 1].score, traversal.ro[i].score);
  }
  EXPECT_EQ(traversal.lo.size(), k);
}

TEST(JointTopKTest, ScoredObjectsFarBelowBaselineWork) {
  JointFixture f(3000, 80, Weighting::kLanguageModel, 0.5, 19);
  JointTopKProcessor proc(&f.tree, &f.dataset, &f.scorer);
  const JointTopKResult joint = proc.Process(f.gen.users, 10);
  // The candidate pool should be substantially smaller than |U| * |O| (a
  // full per-user scan); the RO early-break keeps per-user work bounded.
  EXPECT_LT(joint.scored_objects,
            static_cast<uint64_t>(f.gen.users.size()) * f.dataset.size() / 3);
  // And the shared pool prunes at least part of the collection (text
  // pruning under per-user normalization is intrinsically conservative).
  EXPECT_LT(joint.traversal.lo.size() + joint.traversal.ro.size(),
            f.dataset.size());
}

}  // namespace
}  // namespace rst
