// Tests for the time-domain profiling layer (DESIGN.md §12): PhaseProfiler
// self-time attribution, the Chrome trace-event exporter (round-tripped
// through the obs JSON parser), the runtime telemetry sampler, and the
// BatchRunner profiling/trace-event integration.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "rst/common/file_util.h"
#include "rst/common/stopwatch.h"
#include "rst/data/generators.h"
#include "rst/exec/batch_runner.h"
#include "rst/exec/thread_pool.h"
#include "rst/iurtree/cluster.h"
#include "rst/obs/json.h"
#include "rst/obs/metric_names.h"
#include "rst/obs/metrics.h"
#include "rst/obs/phase_timer.h"
#include "rst/obs/runtime.h"
#include "rst/obs/trace.h"
#include "rst/obs/trace_event.h"
#include "rst/rstknn/rstknn.h"

namespace rst {
namespace {

// Span/arg names local to this binary (the unit under test is the exporter
// machinery, not the query engine's naming). Constants keep the call sites
// literal-free (rst_lint metric-name-literal).
constexpr char kOuter[] = "outer";
constexpr char kInner[] = "inner";
constexpr char kLeaf[] = "leaf";
constexpr char kEvent[] = "event";
constexpr char kCatTest[] = "test";
constexpr char kArgOne[] = "one";

// Burns a little real wall time so phase totals are strictly positive
// without sleeping (sleep granularity would dominate the assertions).
void Spin(double ms) {
  const Stopwatch timer;
  while (timer.ElapsedMillis() < ms) {
  }
}

// --- PhaseProfiler --------------------------------------------------------

TEST(PhaseProfilerTest, AttributesSelfTimeExclusively) {
  obs::PhaseProfiler profiler;
  const Stopwatch wall;
  profiler.Enter(obs::Phase::kDescent);
  Spin(1.0);
  profiler.Enter(obs::Phase::kIo);  // pauses descent
  Spin(1.0);
  profiler.Exit();
  Spin(1.0);
  profiler.Exit();
  const double wall_ms = wall.ElapsedMillis();

  EXPECT_GT(profiler.total_ms(obs::Phase::kDescent), 0.0);
  EXPECT_GT(profiler.total_ms(obs::Phase::kIo), 0.0);
  EXPECT_EQ(profiler.calls(obs::Phase::kDescent), 1u);
  EXPECT_EQ(profiler.calls(obs::Phase::kIo), 1u);
  EXPECT_EQ(profiler.calls(obs::Phase::kMerge), 0u);
  // Self-time accounting: the nested kIo slice is NOT also credited to
  // kDescent, so the phase totals sum to at most the wall time.
  EXPECT_LE(profiler.SumMs(), wall_ms * 1.001 + 0.001);
  // And nothing was lost either: all three spun slices were inside phases.
  EXPECT_GE(profiler.SumMs(), 2.9);
}

TEST(PhaseProfilerTest, ReentryAccumulatesCallsAndTime) {
  obs::PhaseProfiler profiler;
  for (int i = 0; i < 3; ++i) {
    profiler.Enter(obs::Phase::kBounds);
    Spin(0.2);
    profiler.Exit();
  }
  EXPECT_EQ(profiler.calls(obs::Phase::kBounds), 3u);
  EXPECT_GE(profiler.total_ms(obs::Phase::kBounds), 0.5);
}

TEST(PhaseProfilerTest, ResetZeroesEverything) {
  obs::PhaseProfiler profiler;
  profiler.Enter(obs::Phase::kFinalize);
  Spin(0.2);
  profiler.Exit();
  ASSERT_GT(profiler.SumMs(), 0.0);
  profiler.Reset();
  EXPECT_EQ(profiler.SumMs(), 0.0);
  for (size_t p = 0; p < obs::kNumPhases; ++p) {
    EXPECT_EQ(profiler.calls(static_cast<obs::Phase>(p)), 0u);
  }
}

TEST(PhaseProfilerTest, UnbalancedAndOverflowedStacksAreSafe) {
  obs::PhaseProfiler profiler;
  profiler.Exit();  // exit without enter: no-op
  EXPECT_EQ(profiler.SumMs(), 0.0);

  // Nest far beyond the fixed stack; the overflow is counted, Exit stays
  // balanced, and nothing crashes or double-frees timing slices.
  for (int i = 0; i < 20; ++i) profiler.Enter(obs::Phase::kDescent);
  for (int i = 0; i < 20; ++i) profiler.Exit();
  EXPECT_EQ(profiler.calls(obs::Phase::kDescent), 8u);  // kMaxDepth timed
  profiler.Exit();  // still balanced after drain
}

TEST(PhaseProfilerTest, NullProfilerTimerIsANoop) {
  obs::PhaseTimer timer(nullptr, obs::Phase::kIo);  // must not crash
}

TEST(PhaseProfilerTest, PublishRecordsHistogramsAndCounter) {
  obs::PhaseProfiler profiler;
  profiler.Enter(obs::Phase::kDescent);
  Spin(0.2);
  profiler.Exit();

  const obs::MetricsSnapshot before = obs::MetricRegistry::Global().Snapshot();
  profiler.Publish();
  const obs::MetricsSnapshot delta =
      obs::MetricRegistry::Global().Snapshot().Delta(before);

  auto counter = delta.counters.find(obs::names::kPhaseProfiledQueries);
  ASSERT_NE(counter, delta.counters.end());
  EXPECT_EQ(counter->second, 1u);
  auto hist = delta.histograms.find(obs::names::kPhaseDescentMs);
  ASSERT_NE(hist, delta.histograms.end());
  EXPECT_EQ(hist->second.count, 1u);
  // Phases with no calls publish no sample.
  auto merge = delta.histograms.find(obs::names::kPhaseMergeMs);
  if (merge != delta.histograms.end()) {
    EXPECT_EQ(merge->second.count, 0u);
  }
}

// --- Real-search attribution ----------------------------------------------

struct ProfileFixture {
  Dataset dataset;
  std::vector<uint32_t> clusters;
  IurTree ciur;
  TextSimilarity sim;
  StScorer scorer;

  ProfileFixture()
      : ciur(IurTree::Build({}, {})), sim(TextMeasure::kExtendedJaccard),
        scorer(&sim, {0.5, 1.0}) {
    FlickrLikeConfig config;
    config.num_objects = 300;
    config.vocab_size = 150;
    config.seed = 99;
    dataset = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
    std::vector<TermVector> docs;
    for (const StObject& o : dataset.objects()) docs.push_back(o.doc);
    ClusteringOptions copts;
    copts.num_clusters = 5;
    clusters = ClusterDocuments(docs, copts).assignment;
    ciur = IurTree::BuildFromDataset(dataset, {}, &clusters);
    scorer = StScorer(&sim, {0.5, dataset.max_dist()});
  }

  std::vector<RstknnQuery> Queries(size_t count, size_t k) const {
    std::vector<RstknnQuery> queries;
    for (size_t i = 0; i < count; ++i) {
      const ObjectId qid = static_cast<ObjectId>((i * 41) % dataset.size());
      const StObject& q = dataset.object(qid);
      queries.push_back({q.loc, &q.doc, k, qid});
    }
    return queries;
  }
};

TEST(PhaseProfilerTest, SearchPhaseSumsReconcileWithWallTime) {
  const ProfileFixture f;
  const RstknnSearcher searcher(&f.ciur, &f.dataset, &f.scorer);
  const std::vector<RstknnQuery> queries = f.Queries(4, 6);

  for (RstknnAlgorithm algorithm :
       {RstknnAlgorithm::kProbe, RstknnAlgorithm::kContributionList}) {
    obs::PhaseProfiler profiler;
    RstknnOptions options;
    options.algorithm = algorithm;
    options.profiler = &profiler;
    for (const RstknnQuery& query : queries) {
      const Stopwatch wall;
      searcher.Search(query, options);
      const double wall_ms = wall.ElapsedMillis();
      // The acceptance bound of the profiling layer: per-phase self times
      // sum to at most the query's wall time (phases are disjoint
      // sub-intervals), and the hot phases actually fired.
      EXPECT_LE(profiler.SumMs(), wall_ms * 1.001 + 0.01);
      EXPECT_GT(profiler.SumMs(), 0.0);
      EXPECT_GT(profiler.calls(obs::Phase::kDescent), 0u);
      EXPECT_EQ(profiler.calls(obs::Phase::kFinalize), 1u);
      if (algorithm == RstknnAlgorithm::kProbe) {
        EXPECT_GT(profiler.calls(obs::Phase::kBounds), 0u);
      } else {
        EXPECT_GT(profiler.calls(obs::Phase::kMerge), 0u);
      }
    }
  }
}

TEST(PhaseProfilerTest, SearchResetsProfilerBetweenQueries) {
  const ProfileFixture f;
  const RstknnSearcher searcher(&f.ciur, &f.dataset, &f.scorer);
  const std::vector<RstknnQuery> queries = f.Queries(2, 5);

  obs::PhaseProfiler profiler;
  RstknnOptions options;
  options.profiler = &profiler;
  searcher.Search(queries[0], options);
  EXPECT_EQ(profiler.calls(obs::Phase::kFinalize), 1u);
  searcher.Search(queries[1], options);
  // Search() owns Reset(): the second query's counts are NOT stacked on the
  // first query's (finalize would read 2 otherwise).
  EXPECT_EQ(profiler.calls(obs::Phase::kFinalize), 1u);
}

// --- TraceEventWriter -----------------------------------------------------

TEST(TraceEventWriterTest, JsonParsesAndSpansNestWithinParents) {
  obs::QueryTrace trace(kOuter);
  trace.Enter(kInner);
  Spin(0.3);
  trace.Enter(kLeaf);
  Spin(0.3);
  trace.Exit();
  trace.Exit();
  trace.Finish();

  obs::TraceEventWriter writer;
  writer.AddThreadName(3, kOuter);
  writer.AddSpanTree(trace.root(), /*tid=*/3, /*ts_us=*/1000.0);

  const Result<obs::JsonValue> parsed = obs::JsonValue::Parse(writer.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const obs::JsonValue& doc = parsed.value();
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.Get("displayTimeUnit"), nullptr);
  const obs::JsonValue* events = doc.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // thread_name metadata + one X event per span.
  ASSERT_EQ(events->AsArray().size(), 4u);

  double outer_start = 0, outer_end = 0;
  bool found_outer = false, found_leaf = false;
  for (const obs::JsonValue& e : events->AsArray()) {
    const std::string& ph = e.Get("ph")->AsString();
    if (ph == "M") {
      EXPECT_EQ(e.Get("name")->AsString(), "thread_name");
      EXPECT_EQ(e.Get("args")->Get("name")->AsString(), kOuter);
      continue;
    }
    EXPECT_EQ(ph, "X");
    EXPECT_EQ(e.Get("tid")->AsUint(), 3u);
    const double ts = e.Get("ts")->AsDouble();
    const double dur = e.Get("dur")->AsDouble();
    if (e.Get("name")->AsString() == kOuter) {
      found_outer = true;
      outer_start = ts;
      outer_end = ts + dur;
      EXPECT_DOUBLE_EQ(ts, 1000.0);
    }
    if (e.Get("name")->AsString() == kLeaf) found_leaf = true;
  }
  ASSERT_TRUE(found_outer);
  ASSERT_TRUE(found_leaf);
  // Every child slice lies inside the root slice (synthetic sequential
  // layout: children start at the parent's start, duration sums nest).
  for (const obs::JsonValue& e : events->AsArray()) {
    if (e.Get("ph")->AsString() != "X") continue;
    if (e.Get("name")->AsString() == kOuter) continue;
    const double ts = e.Get("ts")->AsDouble();
    const double dur = e.Get("dur")->AsDouble();
    EXPECT_GE(ts + 1e-6, outer_start);
    EXPECT_LE(ts + dur, outer_end + 1e-6);
  }
}

TEST(TraceEventWriterTest, CompleteEventCarriesArgs) {
  obs::TraceEventWriter writer;
  writer.AddComplete(kEvent, kCatTest, /*tid=*/2, /*ts_us=*/10.0,
                     /*dur_us=*/20.0, {kArgOne, 1.5});
  const Result<obs::JsonValue> parsed = obs::JsonValue::Parse(writer.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const obs::JsonValue& e = parsed.value().Get("traceEvents")->AsArray()[0];
  EXPECT_EQ(e.Get("name")->AsString(), kEvent);
  EXPECT_EQ(e.Get("cat")->AsString(), kCatTest);
  EXPECT_DOUBLE_EQ(e.Get("ts")->AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(e.Get("dur")->AsDouble(), 20.0);
  EXPECT_DOUBLE_EQ(e.Get("args")->Get(kArgOne)->AsDouble(), 1.5);
}

TEST(TraceEventWriterTest, SamplingGateKeepsOneInN) {
  obs::TraceEventWriter writer(16, /*sample_every=*/3);
  std::vector<bool> decisions;
  for (int i = 0; i < 9; ++i) decisions.push_back(writer.ShouldSample());
  const std::vector<bool> expected = {true,  false, false, true, false,
                                      false, true,  false, false};
  EXPECT_EQ(decisions, expected);

  obs::TraceEventWriter always(16, /*sample_every=*/1);
  EXPECT_TRUE(always.ShouldSample());
  EXPECT_TRUE(always.ShouldSample());
}

TEST(TraceEventWriterTest, BufferIsBoundedAndCountsDrops) {
  obs::TraceEventWriter writer(/*capacity=*/3, /*sample_every=*/1);
  for (int i = 0; i < 5; ++i) {
    writer.AddComplete(kEvent, kCatTest, 1, i * 10.0, 1.0);
  }
  EXPECT_EQ(writer.size(), 3u);
  EXPECT_EQ(writer.dropped(), 2u);
  const Result<obs::JsonValue> parsed = obs::JsonValue::Parse(writer.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Get("dropped")->AsUint(), 2u);
  EXPECT_EQ(parsed.value().Get("traceEvents")->AsArray().size(), 3u);
}

TEST(TraceEventWriterTest, WriteFileEmitsParseableDocument) {
  obs::TraceEventWriter writer;
  writer.AddComplete(kEvent, kCatTest, 1, 0.0, 5.0);
  const std::string path = testing::TempDir() + "/obs_profile.trace.json";
  ASSERT_TRUE(writer.WriteFile(path).ok());
  const Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(obs::JsonValue::Parse(content.value()).ok());
}

// --- Runtime telemetry ----------------------------------------------------

TEST(RuntimeTest, ReadRuntimeSampleSeesThisProcess) {
  const obs::RuntimeSample sample = obs::ReadRuntimeSample();
  EXPECT_GT(sample.max_rss_bytes, 0u);
#ifdef __linux__
  EXPECT_GT(sample.rss_bytes, 0u);
  EXPECT_GE(sample.threads, 1u);
#endif
}

TEST(RuntimeTest, SampleOncePublishesGauges) {
  const obs::MetricsSnapshot before = obs::MetricRegistry::Global().Snapshot();
  obs::RuntimeSampler::SampleOnce();
  const obs::MetricsSnapshot after = obs::MetricRegistry::Global().Snapshot();
  EXPECT_GT(after.gauges.at(obs::names::kRuntimeMaxRssBytes), 0.0);
  EXPECT_GE(after.gauges.at(obs::names::kRuntimeCpuUserMs), 0.0);
  EXPECT_EQ(after.Delta(before).counters.at(obs::names::kRuntimeSamples), 1u);
}

TEST(RuntimeTest, SamplerRunsOnPeriodAndStops) {
  const obs::MetricsSnapshot before = obs::MetricRegistry::Global().Snapshot();
  obs::RuntimeSampler sampler;
  sampler.Start(1);
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  const uint64_t samples = obs::MetricRegistry::Global()
                               .Snapshot()
                               .Delta(before)
                               .counters.at(obs::names::kRuntimeSamples);
  // At least the immediate sample plus the final one on Stop().
  EXPECT_GE(samples, 2u);
  sampler.Stop();  // idempotent
}

// --- BatchRunner integration ----------------------------------------------

TEST(BatchProfilingTest, QueueWaitHistogramCountsEveryQuery) {
  const ProfileFixture f;
  exec::ThreadPool pool(2);
  const exec::BatchRunner runner(&f.ciur, &f.dataset, &f.scorer, &pool);
  const std::vector<RstknnQuery> queries = f.Queries(6, 5);

  const obs::MetricsSnapshot before = obs::MetricRegistry::Global().Snapshot();
  runner.RunRstknn(queries, {});
  const obs::MetricsSnapshot delta =
      obs::MetricRegistry::Global().Snapshot().Delta(before);
  EXPECT_EQ(delta.histograms.at(obs::names::kExecBatchQueueWaitMs).count,
            queries.size());
  EXPECT_EQ(delta.histograms.at(obs::names::kRstknnQueryMs).count,
            queries.size());
}

TEST(BatchProfilingTest, SetProfilingPublishesPerQueryPhases) {
  const ProfileFixture f;
  exec::ThreadPool pool(2);
  exec::BatchRunner runner(&f.ciur, &f.dataset, &f.scorer, &pool);
  runner.set_profiling(true);
  const std::vector<RstknnQuery> queries = f.Queries(6, 5);

  const obs::MetricsSnapshot before = obs::MetricRegistry::Global().Snapshot();
  exec::BatchStats stats;
  runner.RunRstknn(queries, {}, &stats);
  const obs::MetricsSnapshot delta =
      obs::MetricRegistry::Global().Snapshot().Delta(before);

  EXPECT_EQ(delta.counters.at(obs::names::kPhaseProfiledQueries),
            queries.size());
  const obs::HistogramSnapshot& descent =
      delta.histograms.at(obs::names::kPhaseDescentMs);
  EXPECT_EQ(descent.count, queries.size());
  // Aggregate reconciliation: the summed per-phase means stay at or below
  // the batch's busy time (phase slices are disjoint sub-intervals of each
  // query's wall time).
  double phase_sum_ms = 0.0;
  for (const char* name :
       {obs::names::kPhaseDescentMs, obs::names::kPhaseBoundsMs,
        obs::names::kPhaseMergeMs, obs::names::kPhaseIoMs,
        obs::names::kPhaseFinalizeMs}) {
    auto it = delta.histograms.find(name);
    if (it != delta.histograms.end()) phase_sum_ms += it->second.sum;
  }
  double busy_ms = 0.0;
  for (double ms : stats.worker_busy_ms) busy_ms += ms;
  EXPECT_GT(phase_sum_ms, 0.0);
  EXPECT_LE(phase_sum_ms, busy_ms * 1.001 + 0.05);
}

TEST(BatchProfilingTest, TraceEventsCoverEveryQueryAndParse) {
  const ProfileFixture f;
  exec::ThreadPool pool(2);
  exec::BatchRunner runner(&f.ciur, &f.dataset, &f.scorer, &pool);
  obs::TraceEventWriter writer(1 << 12, /*sample_every=*/2);
  runner.set_trace_events(&writer);
  const std::vector<RstknnQuery> queries = f.Queries(6, 5);
  runner.RunRstknn(queries, {});

  const Result<obs::JsonValue> parsed = obs::JsonValue::Parse(writer.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  size_t runs = 0, waits = 0, metadata = 0, spans = 0;
  for (const obs::JsonValue& e :
       parsed.value().Get("traceEvents")->AsArray()) {
    const std::string& ph = e.Get("ph")->AsString();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    const std::string& name = e.Get("name")->AsString();
    if (name == obs::names::kTraceEventRun) {
      ++runs;
      EXPECT_NE(e.Get("args")->Get(obs::names::kTraceArgQueueWaitMs), nullptr);
    } else if (name == obs::names::kTraceEventQueueWait) {
      ++waits;
    } else {
      ++spans;
    }
  }
  EXPECT_EQ(runs, queries.size());        // every query gets a run slice
  EXPECT_EQ(waits, queries.size() / 2);   // 1-in-2 sampled queue slices
  EXPECT_EQ(metadata, pool.num_threads() + 1);  // workers + queue track
  EXPECT_GT(spans, 0u);                   // sampled span trees present
}

}  // namespace
}  // namespace rst
