// NodeArena unit and stress tests: chunk alignment, free-list reuse,
// destructor discipline (live_nodes bookkeeping), and — because every tree
// owns a private arena — parallel build+destroy of many trees, which the CI
// sanitizer jobs run under ASan and TSan to shake out lifetime races.

#include "rst/iurtree/node_arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "rst/data/generators.h"
#include "rst/iurtree/iurtree.h"

namespace rst {
namespace {

TEST(NodeArena, CreateAlignsAndCounts) {
  NodeArena arena(33);
  EXPECT_EQ(arena.live_nodes(), 0u);
  EXPECT_EQ(arena.entry_capacity(), 33u);
  EXPECT_EQ(arena.chunk_bytes() % 64, 0u);

  std::vector<IurTree::Node*> nodes;
  for (int i = 0; i < 1000; ++i) {
    IurTree::Node* node = arena.Create();
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(node) % 64, 0u)
        << "node " << i << " not cache-line aligned";
    EXPECT_TRUE(node->leaf);
    EXPECT_EQ(node->entries.size(), 0u);
    EXPECT_EQ(node->entries.capacity(), 33u);
    nodes.push_back(node);
  }
  EXPECT_EQ(arena.live_nodes(), 1000u);
  EXPECT_GE(arena.allocated_bytes(), 1000 * arena.chunk_bytes());

  for (IurTree::Node* node : nodes) arena.Destroy(node);
  EXPECT_EQ(arena.live_nodes(), 0u);
}

TEST(NodeArena, FreeListRecyclesChunks) {
  NodeArena arena(9);
  IurTree::Node* a = arena.Create();
  IurTree::Node* b = arena.Create();
  arena.Destroy(b);
  arena.Destroy(a);
  const size_t slabs = arena.slab_count();
  // LIFO free list: the most recently destroyed chunk comes back first, and
  // no new slab is touched.
  EXPECT_EQ(arena.Create(), a);
  EXPECT_EQ(arena.Create(), b);
  EXPECT_EQ(arena.slab_count(), slabs);
  arena.Destroy(a);
  arena.Destroy(b);
}

TEST(NodeArena, EntriesLiveInsideTheChunk) {
  NodeArena arena(17);
  IurTree::Node* node = arena.Create();
  for (int i = 0; i < 17; ++i) {
    IurTree::Entry e;
    e.id = static_cast<uint32_t>(i);
    node->entries.push_back(std::move(e));
  }
  const auto node_addr = reinterpret_cast<uintptr_t>(node);
  const auto entry_addr = reinterpret_cast<uintptr_t>(&node->entries[0]);
  EXPECT_GE(entry_addr, node_addr + sizeof(IurTree::Node));
  EXPECT_LT(entry_addr + 17 * sizeof(IurTree::Entry),
            node_addr + arena.chunk_bytes());
  EXPECT_EQ(node->entries[16].id, 16u);
  node->entries.erase(node->entries.begin() + 3);
  EXPECT_EQ(node->entries.size(), 16u);
  EXPECT_EQ(node->entries[3].id, 4u);
  arena.Destroy(node);
}

TEST(NodeArena, TreeReleasesEveryNode) {
  FlickrLikeConfig config;
  config.num_objects = 500;
  config.vocab_size = 80;
  config.seed = 11;
  const Dataset dataset = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  IurTree tree = IurTree::BuildFromDataset(dataset, {});
  EXPECT_EQ(tree.arena().live_nodes(), tree.NodeCount());

  // Deletes + reinserts churn the free list; live count must track exactly.
  for (uint32_t id = 0; id < 100; ++id) {
    ASSERT_TRUE(tree.Delete(id, dataset.object(id).loc).ok());
  }
  EXPECT_EQ(tree.arena().live_nodes(), tree.NodeCount());
  for (uint32_t id = 0; id < 100; ++id) {
    tree.Insert(id, dataset.object(id).loc, &dataset.object(id).doc);
  }
  EXPECT_EQ(tree.arena().live_nodes(), tree.NodeCount());
  const Status invariants = tree.CheckInvariants(
      [&](uint32_t id) { return &dataset.object(id).doc; });
  EXPECT_TRUE(invariants.ok()) << invariants.ToString();
}

TEST(NodeArena, MoveTransfersOwnership) {
  FlickrLikeConfig config;
  config.num_objects = 200;
  config.vocab_size = 50;
  config.seed = 12;
  const Dataset dataset = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  IurTree tree = IurTree::BuildFromDataset(dataset, {});
  const size_t nodes = tree.NodeCount();

  IurTree moved = std::move(tree);
  EXPECT_EQ(moved.NodeCount(), nodes);
  EXPECT_EQ(moved.size(), 200u);

  // Move assignment over a live tree must destroy the old tree's nodes.
  IurTree other = IurTree::BuildFromDataset(dataset, {});
  other = std::move(moved);
  EXPECT_EQ(other.NodeCount(), nodes);
  const Status invariants = other.CheckInvariants(
      [&](uint32_t id) { return &dataset.object(id).doc; });
  EXPECT_TRUE(invariants.ok()) << invariants.ToString();
}

TEST(NodeArena, ParallelBuildAndDestroyStress) {
  // Each thread builds, mutates, and destroys its own trees (arenas are
  // per-tree and not shared); under TSan/ASan this catches any accidental
  // global state in the arena or stale-pointer reuse across trees.
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::vector<Dataset> datasets(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    FlickrLikeConfig config;
    config.num_objects = 300;
    config.vocab_size = 60;
    config.seed = 100 + static_cast<uint64_t>(t);
    datasets[t] = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&datasets, t] {
      const Dataset& dataset = datasets[static_cast<size_t>(t)];
      for (int round = 0; round < kRounds; ++round) {
        IurTree tree = IurTree::BuildFromDataset(dataset, {});
        ASSERT_EQ(tree.arena().live_nodes(), tree.NodeCount());
        for (uint32_t id = 0; id < 50; ++id) {
          ASSERT_TRUE(tree.Delete(id, dataset.object(id).loc).ok());
        }
        for (uint32_t id = 0; id < 50; ++id) {
          tree.Insert(id, dataset.object(id).loc, &dataset.object(id).doc);
        }
        ASSERT_EQ(tree.arena().live_nodes(), tree.NodeCount());
        const Status invariants = tree.CheckInvariants(
            [&](uint32_t id) { return &dataset.object(id).doc; });
        ASSERT_TRUE(invariants.ok()) << invariants.ToString();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

}  // namespace
}  // namespace rst
