// Contract-macro behavior (DESIGN.md §11.1): passing checks are silent,
// failing RST_CHECKs abort with file:line + condition + streamed message in
// every build type, and RST_DCHECKs never evaluate their operands under
// NDEBUG. Death tests run the statement in a forked child, so the aborts
// never take the test binary down.

#include <string>

#include <gtest/gtest.h>

#include "rst/common/check.h"
#include "rst/common/status.h"

namespace rst {
namespace {

TEST(CheckTest, PassingChecksAreSilentAndSideEffectFree) {
  int evaluations = 0;
  auto count = [&evaluations](int v) {
    ++evaluations;
    return v;
  };
  RST_CHECK(count(1) == 1);
  RST_CHECK_EQ(count(2), 2);
  RST_CHECK_NE(count(3), 4);
  RST_CHECK_LE(count(4), 4);
  RST_CHECK_LT(count(4), 5);
  RST_CHECK_GE(count(5), 5);
  RST_CHECK_GT(count(6), 5);
  RST_CHECK_OK(Status::Ok());
  EXPECT_EQ(evaluations, 7);
}

TEST(CheckDeathTest, CheckAbortsWithConditionAndMessage) {
  const int node = 42;
  EXPECT_DEATH(RST_CHECK(node < 0) << "node " << node << " out of range",
               "RST_CHECK failed: node < 0.*node 42 out of range");
}

TEST(CheckDeathTest, CheckNamesFileAndLine) {
  EXPECT_DEATH(RST_CHECK(false), "check_test\\.cc:[0-9]+: RST_CHECK failed");
}

TEST(CheckDeathTest, BinaryFormsPrintBothOperands) {
  const int lo = 7;
  const int hi = 3;
  EXPECT_DEATH(RST_CHECK_LE(lo, hi), "lo <= hi.*\\(7 vs 3\\)");
  EXPECT_DEATH(RST_CHECK_EQ(std::string("a"), std::string("b")),
               "\\(a vs b\\)");
}

TEST(CheckDeathTest, CheckOkPrintsStatusMessage) {
  EXPECT_DEATH(RST_CHECK_OK(Status::Corruption("summary not dominated")),
               "RST_CHECK failed.*Corruption: summary not dominated");
}

TEST(CheckDeathTest, CheckOkAcceptsResult) {
  const Result<int> bad = Status::NotFound("no such object");
  EXPECT_DEATH(RST_CHECK_OK(bad), "NotFound: no such object");
  const Result<int> good = 5;
  RST_CHECK_OK(good);  // Must compile and pass for Result<T> too.
}

#ifdef NDEBUG

TEST(DcheckTest, ReleaseDchecksDoNotEvaluateOperands) {
  int evaluations = 0;
  auto boom = [&evaluations]() {
    ++evaluations;
    return false;
  };
  RST_DCHECK(boom());
  RST_DCHECK_EQ(evaluations, 12345);
  RST_DCHECK_OK(Status::Corruption((++evaluations, "never built")));
  EXPECT_EQ(evaluations, 0);
}

#else  // !NDEBUG

TEST(DcheckDeathTest, DebugDchecksFire) {
  EXPECT_DEATH(RST_DCHECK(false), "RST_CHECK failed: false");
  EXPECT_DEATH(RST_DCHECK_EQ(1, 2), "\\(1 vs 2\\)");
}

#endif  // NDEBUG

// The dangling-else trap: a check macro used as the sole statement of an
// `if` must not capture the following `else`. Compile-time property — the
// assertions just keep the optimizer honest.
TEST(CheckTest, MacrosAreSingleStatements) {
  bool took_else = false;
  if (1 + 1 == 2)
    RST_CHECK(true);
  else
    took_else = true;
  EXPECT_FALSE(took_else);

  if (1 + 1 == 3)
    RST_DCHECK(false);
  else
    took_else = true;
  EXPECT_TRUE(took_else);
}

}  // namespace
}  // namespace rst
