// Workload capture / replay contract (DESIGN.md §14): journals round-trip
// losslessly, answer digests are byte-identical across {algorithm} × {tree} ×
// {view} × {thread count}, and the accumulated index heatmap reconciles
// counter-exactly with the summed RstknnStats.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "rst/common/file_util.h"
#include "rst/data/generators.h"
#include "rst/exec/batch_runner.h"
#include "rst/exec/thread_pool.h"
#include "rst/frozen/frozen.h"
#include "rst/iurtree/cluster.h"
#include "rst/obs/heatmap.h"
#include "rst/obs/journal.h"
#include "rst/obs/json.h"
#include "rst/rstknn/rstknn.h"

namespace rst {
namespace {

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

// ---------------------------------------------------------------------------
// AnswerDigest

TEST(AnswerDigestTest, GoldenValues) {
  // FNV-1a64 offset basis: the digest of an empty answer set.
  EXPECT_EQ(obs::AnswerDigest({}), 14695981039346656037ull);
  // FNV-1a64 over the little-endian bytes 01 00 00 00.
  uint64_t expected = 14695981039346656037ull;
  for (const unsigned char b : {1, 0, 0, 0}) {
    expected = (expected ^ b) * 1099511628211ull;
  }
  EXPECT_EQ(obs::AnswerDigest({1}), expected);
}

TEST(AnswerDigestTest, SensitiveToContentAndOrder) {
  EXPECT_NE(obs::AnswerDigest({1, 2, 3}), obs::AnswerDigest({1, 2, 4}));
  EXPECT_NE(obs::AnswerDigest({1, 2, 3}), obs::AnswerDigest({1, 2}));
  // Searchers return ascending ids; the digest deliberately covers the
  // ordering so a sort regression is caught too.
  EXPECT_NE(obs::AnswerDigest({1, 2}), obs::AnswerDigest({2, 1}));
}

// ---------------------------------------------------------------------------
// WorkloadRecorder / ReadJournal round-trip

obs::JournalHeader TestHeader() {
  obs::JournalHeader header;
  header.label = "replay_test";
  header.data = "unused.tsv";
  header.algo = "probe";
  header.view = "pointer";
  header.tree = "iur";
  header.measure = "ej";
  header.weighting = "tfidf";
  header.alpha = 0.25;
  header.threads = 3;
  return header;
}

obs::JournalQueryRecord TestRecord(uint64_t index) {
  obs::JournalQueryRecord record;
  record.index = index;
  record.x = 0.125 + static_cast<double>(index);
  record.y = -3.5;
  record.k = 7;
  record.terms = {{2, 0.5f}, {9, 1.25f}, {41, 0.1f}};
  record.wall_ms = 1.75;
  record.answer_count = 2;
  record.answer_digest = 0xDEADBEEFCAFEF00Dull + index;
  record.stats.expansions = 10 + index;
  record.stats.pruned_entries = 20;
  record.stats.reported_entries = 2;
  record.stats.probes = 33;
  return record;
}

TEST(WorkloadRecorderTest, RoundTripsHeaderAndRecords) {
  const std::string path = TempPath("rst_replay_roundtrip.jsonl");
  obs::WorkloadRecorder recorder;
  ASSERT_TRUE(recorder.Open(path, TestHeader()).ok());
  EXPECT_TRUE(recorder.is_open());
  recorder.Append(TestRecord(0));
  obs::JournalQueryRecord self_record = TestRecord(1);
  self_record.self = 42;
  self_record.terms.clear();
  recorder.Append(self_record);
  EXPECT_EQ(recorder.recorded(), 2u);
  ASSERT_TRUE(recorder.Close().ok());

  const Result<obs::JournalFile> loaded = obs::ReadJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const obs::JournalFile& journal = loaded.value();
  EXPECT_EQ(journal.truncated_lines, 0u);
  EXPECT_EQ(journal.header.label, "replay_test");
  EXPECT_EQ(journal.header.algo, "probe");
  EXPECT_EQ(journal.header.tree, "iur");
  EXPECT_DOUBLE_EQ(journal.header.alpha, 0.25);
  EXPECT_EQ(journal.header.threads, 3u);
  ASSERT_EQ(journal.records.size(), 2u);

  const obs::JournalQueryRecord& r0 = journal.records[0];
  const obs::JournalQueryRecord expected = TestRecord(0);
  EXPECT_EQ(r0.index, 0u);
  EXPECT_DOUBLE_EQ(r0.x, expected.x);
  EXPECT_DOUBLE_EQ(r0.y, expected.y);
  EXPECT_EQ(r0.k, expected.k);
  EXPECT_EQ(r0.self, obs::JournalQueryRecord::kNoSelf);
  ASSERT_EQ(r0.terms.size(), 3u);
  EXPECT_EQ(r0.terms[1].first, 9u);
  // float → shortest-round-trip double → float is exact.
  EXPECT_EQ(r0.terms[1].second, 1.25f);
  EXPECT_EQ(r0.answer_digest, expected.answer_digest);
  EXPECT_EQ(r0.stats, expected.stats);
  EXPECT_EQ(journal.records[1].self, 42u);
  std::remove(path.c_str());
}

TEST(WorkloadRecorderTest, SamplesDeterministicallyByQueryIndex) {
  const std::string path = TempPath("rst_replay_sampled.jsonl");
  obs::JournalHeader header = TestHeader();
  header.sample_every = 3;
  obs::WorkloadRecorder recorder;
  ASSERT_TRUE(recorder.Open(path, header).ok());
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(recorder.ShouldSample(i), i % 3 == 0) << i;
    if (recorder.ShouldSample(i)) recorder.Append(TestRecord(i));
  }
  ASSERT_TRUE(recorder.Close().ok());

  const Result<obs::JournalFile> loaded = obs::ReadJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().records.size(), 4u);  // 0, 3, 6, 9
  EXPECT_EQ(loaded.value().header.sample_every, 3u);
  EXPECT_EQ(loaded.value().records[3].index, 9u);
  std::remove(path.c_str());
}

// Regression: is_open() used to read `file_` without taking the recorder
// mutex, racing concurrent Append/Close from worker threads (UB flagged by
// TSan; found while adding thread-safety annotations). The monitor thread
// below reproduces the load_driver pattern of polling is_open()/recorded()
// during a capture.
TEST(WorkloadRecorderTest, ConcurrentAppendAndIsOpen) {
  const std::string path = TempPath("rst_replay_concurrent.jsonl");
  obs::WorkloadRecorder recorder;
  ASSERT_TRUE(recorder.Open(path, TestHeader()).ok());

  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 64;
  std::atomic<bool> done{false};
  std::thread monitor([&] {
    // rst-atomics: acquire pairs with the release store after the writers
    // join; everything the writers did is visible once `done` reads true.
    while (!done.load(std::memory_order_acquire)) {
      EXPECT_TRUE(recorder.is_open());
      (void)recorder.recorded();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        recorder.Append(TestRecord(static_cast<uint64_t>(w) * kPerWriter + i));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  // rst-atomics: release pairs with the monitor's acquire load above.
  done.store(true, std::memory_order_release);
  monitor.join();

  EXPECT_EQ(recorder.recorded(), kWriters * kPerWriter);
  ASSERT_TRUE(recorder.Close().ok());
  EXPECT_FALSE(recorder.is_open());

  const Result<obs::JournalFile> loaded = obs::ReadJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().records.size(), kWriters * kPerWriter);
  std::remove(path.c_str());
}

TEST(ReadJournalTest, ToleratesTornTrailingLine) {
  const std::string path = TempPath("rst_replay_torn.jsonl");
  obs::WorkloadRecorder recorder;
  ASSERT_TRUE(recorder.Open(path, TestHeader()).ok());
  recorder.Append(TestRecord(0));
  ASSERT_TRUE(recorder.Close().ok());
  // Simulate a crash mid-write: a record cut off without its newline.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"type\":\"query\",\"index\":1,\"x\":0.", f);
  std::fclose(f);

  const Result<obs::JournalFile> loaded = obs::ReadJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().records.size(), 1u);
  EXPECT_EQ(loaded.value().truncated_lines, 1u);
  std::remove(path.c_str());
}

TEST(ReadJournalTest, RejectsRecordBeforeHeader) {
  const std::string path = TempPath("rst_replay_headerless.jsonl");
  ASSERT_TRUE(WriteStringToFile(
                  path, "{\"type\":\"query\",\"index\":0,\"x\":1,\"y\":2,"
                        "\"k\":3,\"wall_ms\":0,\"answer_count\":0,"
                        "\"answer_digest\":\"0000000000000000\","
                        "\"terms\":[],\"stats\":{}}\n")
                  .ok());
  EXPECT_FALSE(obs::ReadJournal(path).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// HeatmapRecorder

TEST(HeatmapRecorderTest, TalliesVerdictsAndBounds) {
  obs::HeatmapRecorder heatmap;
  heatmap.Record(1, 2, obs::ExplainVerdict::kExpand, obs::ExplainBound::kNone,
                 0);
  heatmap.Record(1, 2, obs::ExplainVerdict::kPrune,
                 obs::ExplainBound::kLowerBound, 12);
  heatmap.Record(5, 1, obs::ExplainVerdict::kReportHit,
                 obs::ExplainBound::kUpperBound, 4);
  heatmap.Record(9, 0, obs::ExplainVerdict::kReportMiss,
                 obs::ExplainBound::kExact, 1);
  heatmap.AddQueries(1);

  EXPECT_EQ(heatmap.decisions(), 4u);
  ASSERT_EQ(heatmap.nodes().size(), 3u);
  const obs::HeatmapNodeCounters& node1 = heatmap.nodes().at(1);
  EXPECT_EQ(node1.level, 2u);
  EXPECT_EQ(node1.visits, 2u);
  EXPECT_EQ(node1.expanded, 1u);
  EXPECT_EQ(node1.pruned, 1u);
  EXPECT_EQ(node1.objects_pruned, 12u);
  EXPECT_EQ(node1.lower_bound_fires, 1u);
  EXPECT_EQ(heatmap.totals().objects_reported, 4u);
  // kReportMiss counts as a conclusive non-answer: its object lands in
  // objects_pruned, mirroring RstknnStats::pruned_entries.
  EXPECT_EQ(heatmap.totals().objects_pruned, 13u);
  EXPECT_EQ(heatmap.totals().upper_bound_fires, 1u);
  EXPECT_EQ(heatmap.totals().exact_fires, 1u);

  // expansions=1, pruned=1(+miss 1)=2, reported=1.
  EXPECT_TRUE(heatmap.CheckReconciles(1, 2, 1).ok());
  const Status off = heatmap.CheckReconciles(1, 2, 2);
  EXPECT_FALSE(off.ok());
  EXPECT_NE(off.ToString().find("reconcile"), std::string::npos);
}

TEST(HeatmapRecorderTest, MergeSumsPerNodeAndResetClears) {
  obs::HeatmapRecorder a;
  a.Record(3, 1, obs::ExplainVerdict::kPrune, obs::ExplainBound::kLowerBound,
           5);
  a.AddQueries(2);
  obs::HeatmapRecorder b;
  b.Record(3, 1, obs::ExplainVerdict::kExpand, obs::ExplainBound::kNone, 0);
  b.Record(7, 0, obs::ExplainVerdict::kReportHit,
           obs::ExplainBound::kUpperBound, 2);
  b.AddQueries(1);

  a.Merge(b);
  EXPECT_EQ(a.queries(), 3u);
  EXPECT_EQ(a.decisions(), 3u);
  EXPECT_EQ(a.nodes().at(3).visits, 2u);
  EXPECT_EQ(a.nodes().at(7).objects_reported, 2u);
  // One expansion, one pruned subtree (5 objects, but the stats counter is
  // per decided entry), one reported subtree.
  EXPECT_TRUE(a.CheckReconciles(1, 1, 1).ok());

  a.Reset();
  EXPECT_EQ(a.queries(), 0u);
  EXPECT_EQ(a.decisions(), 0u);
  EXPECT_TRUE(a.nodes().empty());
}

TEST(HeatmapRecorderTest, JsonExportParsesAndTruncatesToHottest) {
  obs::HeatmapRecorder heatmap;
  for (uint64_t id = 1; id <= 5; ++id) {
    for (uint64_t v = 0; v < id; ++v) {
      heatmap.Record(id, 1, obs::ExplainVerdict::kExpand,
                     obs::ExplainBound::kNone, 0);
    }
  }
  heatmap.AddQueries(1);

  const Result<obs::JsonValue> full = obs::JsonValue::Parse(heatmap.ToJson());
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full.value().Get("nodes")->AsArray().size(), 5u);

  const Result<obs::JsonValue> top =
      obs::JsonValue::Parse(heatmap.ToJson(/*max_nodes=*/2));
  ASSERT_TRUE(top.ok());
  const auto& nodes = top.value().Get("nodes")->AsArray();
  ASSERT_EQ(nodes.size(), 2u);
  // Hottest two by visits are ids 5 and 4, re-sorted ascending by id.
  EXPECT_EQ(nodes[0].Get("id")->AsUint(), 4u);
  EXPECT_EQ(nodes[1].Get("id")->AsUint(), 5u);
  EXPECT_EQ(top.value().Get("nodes_dropped")->AsUint(), 3u);
}

// ---------------------------------------------------------------------------
// The capture matrix: {algorithm} × {IUR, CIUR} × {pointer, frozen} ×
// {1, 8 threads} — every combination must produce the serial reference's
// answer digests and a heatmap that reconciles exactly with its own summed
// stats.

struct ReplayFixture {
  Dataset dataset;
  std::vector<uint32_t> clusters;
  IurTree iur;
  IurTree ciur;
  frozen::FrozenTree frozen_iur;
  frozen::FrozenTree frozen_ciur;
  TextSimilarity sim;
  StScorer scorer;

  ReplayFixture()
      : iur(IurTree::Build({}, {})),
        ciur(IurTree::Build({}, {})),
        sim(TextMeasure::kExtendedJaccard),
        scorer(&sim, {0.5, 1.0}) {
    FlickrLikeConfig config;
    config.num_objects = 300;
    config.vocab_size = 150;
    config.seed = 19;
    dataset = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
    std::vector<TermVector> docs;
    for (const StObject& o : dataset.objects()) docs.push_back(o.doc);
    ClusteringOptions copts;
    copts.num_clusters = 5;
    clusters = ClusterDocuments(docs, copts).assignment;
    iur = IurTree::BuildFromDataset(dataset, {});
    ciur = IurTree::BuildFromDataset(dataset, {}, &clusters);
    frozen_iur = frozen::FrozenTree::Freeze(iur);
    frozen_ciur = frozen::FrozenTree::Freeze(ciur);
    scorer = StScorer(&sim, {0.5, dataset.max_dist()});
  }

  std::vector<RstknnQuery> Queries(size_t count, size_t k) const {
    std::vector<RstknnQuery> queries;
    queries.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const ObjectId qid = static_cast<ObjectId>((i * 41) % dataset.size());
      const StObject& q = dataset.object(qid);
      queries.push_back({q.loc, &q.doc, k, qid});
    }
    return queries;
  }
};

TEST(ReplayMatrixTest, DigestsAndHeatmapsInvariantAcrossExecutions) {
  const ReplayFixture f;
  const std::vector<RstknnQuery> queries = f.Queries(12, 5);

  for (const bool clustered : {false, true}) {
    const IurTree& tree = clustered ? f.ciur : f.iur;
    const frozen::FrozenTree& frozen = clustered ? f.frozen_ciur : f.frozen_iur;
    for (RstknnAlgorithm algorithm :
         {RstknnAlgorithm::kProbe, RstknnAlgorithm::kContributionList}) {
      RstknnOptions options;
      options.algorithm = algorithm;
      options.publish_metrics = false;

      // Serial pointer-tree reference.
      const RstknnSearcher searcher(&tree, &f.dataset, &f.scorer);
      std::vector<uint64_t> reference;
      RstknnStats reference_total;
      for (const RstknnQuery& q : queries) {
        const RstknnResult r = searcher.Search(q, options);
        reference.push_back(obs::AnswerDigest(r.answers));
        reference_total.Merge(r.stats);
      }

      for (const bool use_frozen : {false, true}) {
        for (size_t threads : {1u, 8u}) {
          SCOPED_TRACE("clustered=" + std::to_string(clustered) +
                       " algo=" + std::to_string(static_cast<int>(algorithm)) +
                       " frozen=" + std::to_string(use_frozen) +
                       " threads=" + std::to_string(threads));
          exec::ThreadPool pool(threads);
          exec::BatchRunner runner =
              use_frozen
                  ? exec::BatchRunner(&frozen, &f.dataset, &f.scorer, &pool)
                  : exec::BatchRunner(&tree, &f.dataset, &f.scorer, &pool);
          obs::HeatmapRecorder heatmap;
          runner.set_heatmap(&heatmap);

          const std::string path = TempPath("rst_replay_matrix.jsonl");
          obs::WorkloadRecorder journal;
          ASSERT_TRUE(journal.Open(path, TestHeader()).ok());
          runner.set_journal(&journal);

          const std::vector<RstknnResult> results =
              runner.RunRstknn(queries, options);
          ASSERT_TRUE(journal.Close().ok());
          ASSERT_EQ(results.size(), queries.size());

          RstknnStats total;
          for (size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(obs::AnswerDigest(results[i].answers), reference[i])
                << "query " << i;
            total.Merge(results[i].stats);
          }
          EXPECT_EQ(total.expansions, reference_total.expansions);
          EXPECT_EQ(total.pruned_entries, reference_total.pruned_entries);
          EXPECT_EQ(total.reported_entries, reference_total.reported_entries);

          // The heatmap must reconcile exactly with this run's own stats.
          EXPECT_EQ(heatmap.queries(), queries.size());
          const Status reconciled = heatmap.CheckReconciles(
              total.expansions, total.pruned_entries, total.reported_entries);
          EXPECT_TRUE(reconciled.ok()) << reconciled.ToString();

          // The journal captured every query with the reference digests.
          const Result<obs::JournalFile> loaded = obs::ReadJournal(path);
          ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
          ASSERT_EQ(loaded.value().records.size(), queries.size());
          for (size_t i = 0; i < queries.size(); ++i) {
            EXPECT_EQ(loaded.value().records[i].answer_digest, reference[i]);
            EXPECT_EQ(loaded.value().records[i].self, queries[i].self);
          }
          std::remove(path.c_str());
        }
      }
    }
  }
}

/// The heatmap keys on explain preorder ids, which are identical for the
/// pointer tree and its frozen snapshot — so the accumulated per-node
/// counters must be identical too, not just the totals.
TEST(ReplayMatrixTest, HeatmapNodesIdenticalAcrossViewsAndThreads) {
  const ReplayFixture f;
  const std::vector<RstknnQuery> queries = f.Queries(8, 4);
  RstknnOptions options;
  options.publish_metrics = false;

  std::map<std::string, std::string> heatmaps;
  for (const bool use_frozen : {false, true}) {
    for (size_t threads : {1u, 8u}) {
      exec::ThreadPool pool(threads);
      exec::BatchRunner runner =
          use_frozen
              ? exec::BatchRunner(&f.frozen_iur, &f.dataset, &f.scorer, &pool)
              : exec::BatchRunner(&f.iur, &f.dataset, &f.scorer, &pool);
      obs::HeatmapRecorder heatmap;
      runner.set_heatmap(&heatmap);
      runner.RunRstknn(queries, options);
      heatmaps[(use_frozen ? "frozen/" : "pointer/") +
               std::to_string(threads)] = heatmap.ToJson();
    }
  }
  ASSERT_EQ(heatmaps.size(), 4u);
  for (const auto& [key, json] : heatmaps) {
    EXPECT_EQ(json, heatmaps.begin()->second) << key;
  }
}

}  // namespace
}  // namespace rst
