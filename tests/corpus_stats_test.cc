#include "rst/text/corpus_stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rst/text/weighting.h"

namespace rst {
namespace {

RawDocument Doc(std::vector<std::pair<TermId, uint32_t>> counts) {
  RawDocument d;
  d.term_counts = std::move(counts);
  return d;
}

TEST(RawDocumentTest, FromTokensAggregatesCounts) {
  RawDocument d = RawDocument::FromTokens({3, 1, 3, 3, 2, 1});
  ASSERT_EQ(d.term_counts.size(), 3u);
  EXPECT_EQ(d.term_counts[0], (std::pair<TermId, uint32_t>{1, 2}));
  EXPECT_EQ(d.term_counts[1], (std::pair<TermId, uint32_t>{2, 1}));
  EXPECT_EQ(d.term_counts[2], (std::pair<TermId, uint32_t>{3, 3}));
  EXPECT_EQ(d.Length(), 6u);
}

class CorpusStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stats_.AddDocument(Doc({{0, 2}, {1, 1}}));   // doc A
    stats_.AddDocument(Doc({{1, 3}, {2, 1}}));   // doc B
    stats_.AddDocument(Doc({{1, 1}}));           // doc C
  }
  CorpusStats stats_;
};

TEST_F(CorpusStatsTest, Frequencies) {
  EXPECT_EQ(stats_.num_docs(), 3u);
  EXPECT_EQ(stats_.total_terms(), 8u);
  EXPECT_EQ(stats_.DocFreq(0), 1u);
  EXPECT_EQ(stats_.DocFreq(1), 3u);
  EXPECT_EQ(stats_.DocFreq(2), 1u);
  EXPECT_EQ(stats_.DocFreq(99), 0u);
  EXPECT_EQ(stats_.CollectionFreq(1), 5u);
}

TEST_F(CorpusStatsTest, Idf) {
  EXPECT_DOUBLE_EQ(stats_.Idf(0), std::log(3.0));
  EXPECT_DOUBLE_EQ(stats_.Idf(1), std::log(1.0));  // in every doc -> 0
  EXPECT_EQ(stats_.Idf(99), 0.0);
}

TEST_F(CorpusStatsTest, CollectionProb) {
  EXPECT_DOUBLE_EQ(stats_.CollectionProb(1), 5.0 / 8.0);
  EXPECT_EQ(stats_.CollectionProb(99), 0.0);
}

TEST_F(CorpusStatsTest, TfIdfWeighting) {
  WeightingOptions opts;
  opts.scheme = Weighting::kTfIdf;
  TermVector v = BuildWeightedVector(Doc({{0, 2}, {1, 1}}), stats_, opts);
  EXPECT_FLOAT_EQ(v.Get(0), static_cast<float>(2.0 * std::log(3.0)));
  // idf(1) == 0 so term 1 is dropped entirely.
  EXPECT_FALSE(v.Contains(1));
}

TEST_F(CorpusStatsTest, LanguageModelWeighting) {
  WeightingOptions opts;
  opts.scheme = Weighting::kLanguageModel;
  opts.lambda = 0.2;
  TermVector v = BuildWeightedVector(Doc({{0, 2}, {1, 1}}), stats_, opts);
  // w(0) = 0.8 * 2/3 + 0.2 * 2/8
  EXPECT_NEAR(v.Get(0), 0.8 * (2.0 / 3.0) + 0.2 * (2.0 / 8.0), 1e-6);
  // w(1) = 0.8 * 1/3 + 0.2 * 5/8
  EXPECT_NEAR(v.Get(1), 0.8 * (1.0 / 3.0) + 0.2 * (5.0 / 8.0), 1e-6);
}

TEST_F(CorpusStatsTest, BinaryWeighting) {
  WeightingOptions opts;
  opts.scheme = Weighting::kBinary;
  TermVector v = BuildWeightedVector(Doc({{0, 7}, {1, 1}}), stats_, opts);
  EXPECT_EQ(v.Get(0), 1.0f);
  EXPECT_EQ(v.Get(1), 1.0f);
}

TEST(WeightingTest, CorpusMaxWeights) {
  std::vector<TermVector> docs = {
      TermVector::FromUnsorted({{0, 1.0f}, {2, 3.0f}}),
      TermVector::FromUnsorted({{0, 2.0f}, {1, 0.5f}}),
  };
  auto cmax = ComputeCorpusMaxWeights(docs, 3);
  ASSERT_EQ(cmax.size(), 3u);
  EXPECT_EQ(cmax[0], 2.0f);
  EXPECT_EQ(cmax[1], 0.5f);
  EXPECT_EQ(cmax[2], 3.0f);
}

TEST(WeightingTest, NamesAreStable) {
  EXPECT_STREQ(WeightingName(Weighting::kTfIdf), "tfidf");
  EXPECT_STREQ(WeightingName(Weighting::kLanguageModel), "lm");
  EXPECT_STREQ(WeightingName(Weighting::kBinary), "binary");
}

}  // namespace
}  // namespace rst
