// Runtime behavior of the annotated synchronization wrappers in
// rst/common/mutex.h (DESIGN.md §16). The *static* contract (mis-locked
// access fails to compile under clang) lives in
// tests/compile/thread_safety_negative.cc; this file pins the dynamic
// semantics — mutual exclusion, try-lock, reader/writer modes, and CondVar
// wait/notify over the adopt-lock bridge — and gives TSan real concurrency
// to chew on.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "rst/common/mutex.h"

namespace rst {
namespace {

struct GuardedCounter {
  Mutex mu;
  int value RST_GUARDED_BY(mu) = 0;
};

TEST(MutexTest, MutualExclusionUnderContention) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&counter.mu);
        ++counter.value;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&counter.mu);
  EXPECT_EQ(counter.value, kThreads * kIncrements);
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // A second owner must be refused while we hold it — probe from another
  // thread (same-thread re-try_lock is undefined for std::mutex).
  bool contender_got_it = true;
  std::thread contender([&] { contender_got_it = mu.TryLock(); });
  contender.join();
  EXPECT_FALSE(contender_got_it);
  mu.Unlock();
  std::thread second([&] {
    ASSERT_TRUE(mu.TryLock());
    mu.Unlock();
  });
  second.join();
}

TEST(SharedMutexTest, WriterExcludesReaders) {
  SharedMutex mu;
  int value = 0;  // guarded by mu by construction of the test
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kRounds = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        WriterMutexLock lock(&mu);
        ++value;
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      int last = 0;
      for (int i = 0; i < kRounds; ++i) {
        ReaderMutexLock lock(&mu);
        // Writers only increment, so any reader must observe a
        // monotonically non-decreasing value.
        EXPECT_GE(value, last);
        last = value;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  WriterMutexLock lock(&mu);
  EXPECT_EQ(value, kWriters * kRounds);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu
  int observed = 0;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
    observed = 1;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(CondVarTest, WaitUntilTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  // Nobody notifies: the wait must come back with timeout, still holding mu.
  while (cv.WaitUntil(mu, deadline) != std::cv_status::timeout) {
  }
  SUCCEED();
}

TEST(CondVarTest, WaitForReturnsNoTimeoutWhenNotified) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu
  std::thread notifier([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  bool saw_ready = false;
  {
    MutexLock lock(&mu);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!ready) {
      if (cv.WaitUntil(mu, deadline) == std::cv_status::timeout) break;
    }
    saw_ready = ready;
  }
  notifier.join();
  EXPECT_TRUE(saw_ready);
}

}  // namespace
}  // namespace rst
