#include "rst/iurtree/iurtree.h"

#include <gtest/gtest.h>

#include "rst/common/rng.h"
#include "rst/data/generators.h"
#include "rst/iurtree/cluster.h"
#include "rst/topk/topk.h"

namespace rst {
namespace {

Dataset SmallDataset(size_t n, uint64_t seed = 1) {
  FlickrLikeConfig config;
  config.num_objects = n;
  config.vocab_size = 300;
  config.seed = seed;
  return GenFlickrLike(config, {Weighting::kLanguageModel, 0.1});
}

std::function<const TermVector*(uint32_t)> DocLookup(const Dataset& d) {
  return [&d](uint32_t id) -> const TermVector* {
    return id < d.size() ? &d.object(id).doc : nullptr;
  };
}

TEST(IurTreeTest, BulkLoadInvariants) {
  const Dataset d = SmallDataset(1200);
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  EXPECT_EQ(tree.size(), 1200u);
  EXPECT_GE(tree.height(), 1u);
  const Status s = tree.CheckInvariants(DocLookup(d));
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(IurTreeTest, DegenerateSizes) {
  for (size_t n : {1u, 2u, 31u, 32u, 33u}) {
    const Dataset d = SmallDataset(n, 7 + n);
    const IurTree tree = IurTree::BuildFromDataset(d, {});
    EXPECT_EQ(tree.size(), n);
    const Status s = tree.CheckInvariants(DocLookup(d));
    EXPECT_TRUE(s.ok()) << "n=" << n << " " << s.ToString();
  }
}

TEST(IurTreeTest, SmallInputsFinalizeStorageLikeTheFullPath) {
  // Every Build path — empty input, a dataset that fits a single leaf
  // (≤ max_entries), and the full STR pack — must flow through the same
  // publish point: storage finalized, payloads serialized, handles valid.
  const IurTree empty = IurTree::Build({}, {});
  EXPECT_TRUE(empty.storage_finalized());

  for (size_t n : {1u, 5u, 32u, 33u, 200u}) {
    const Dataset d = SmallDataset(n, 40 + n);
    const IurTree tree = IurTree::BuildFromDataset(d, {});
    EXPECT_TRUE(tree.storage_finalized()) << "n=" << n;
    EXPECT_GT(tree.IndexBytes(), 0u) << "n=" << n;
    EXPECT_TRUE(tree.root()->record_handle.valid()) << "n=" << n;
    EXPECT_TRUE(tree.root()->invfile_handle.valid()) << "n=" << n;
  }
}

TEST(IurTreeTest, ParallelBuildIsDeterministic) {
  const Dataset d = SmallDataset(900, 3);
  IurTreeOptions serial;
  IurTreeOptions threaded;
  threaded.build_threads = 4;
  const IurTree a = IurTree::BuildFromDataset(d, serial);
  const IurTree b = IurTree::BuildFromDataset(d, threaded);
  EXPECT_TRUE(b.CheckInvariants(DocLookup(d)).ok());
  // Identical structure ⇒ identical serialized payload stream.
  EXPECT_EQ(a.NodeCount(), b.NodeCount());
  EXPECT_EQ(a.height(), b.height());
  EXPECT_EQ(a.IndexBytes(), b.IndexBytes());
}

TEST(IurTreeTest, NodeSummariesBracketSubtreeDocs) {
  const Dataset d = SmallDataset(500);
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  // Recursively check: every document under a node obeys
  // intr <= doc <= uni per term (the defining IUR-tree property).
  std::function<void(const IurTree::Node*, const TextSummary*)> check =
      [&](const IurTree::Node* node, const TextSummary* enclosing) {
        for (const IurTree::Entry& e : node->entries) {
          if (enclosing != nullptr) {
            for (const TermWeight& tw : e.summary.uni.entries()) {
              EXPECT_LE(tw.weight, enclosing->uni.Get(tw.term) + 1e-7f);
            }
            for (const TermWeight& tw : enclosing->intr.entries()) {
              EXPECT_GE(e.summary.intr.Get(tw.term), tw.weight - 1e-7f);
            }
          }
          if (!e.is_object()) check(e.child, &e.summary);
        }
      };
  check(tree.root(), nullptr);
}

TEST(IurTreeTest, DynamicInsertMatchesInvariants) {
  const Dataset d = SmallDataset(400);
  IurTreeOptions options;
  IurTree tree = IurTree::Build({}, options);
  for (const StObject& obj : d.objects()) {
    tree.Insert(obj.id, obj.loc, &obj.doc);
  }
  EXPECT_EQ(tree.size(), 400u);
  const Status s = tree.CheckInvariants(DocLookup(d));
  EXPECT_TRUE(s.ok()) << s.ToString();
  tree.FinalizeStorage();
  EXPECT_GT(tree.IndexBytes(), 0u);
}

TEST(IurTreeTest, ClusteredBuildInvariants) {
  const Dataset d = SmallDataset(800);
  std::vector<TermVector> docs;
  for (const StObject& o : d.objects()) docs.push_back(o.doc);
  ClusteringOptions copts;
  copts.num_clusters = 6;
  const ClusteringResult clusters = ClusterDocuments(docs, copts);
  const IurTree tree = IurTree::BuildFromDataset(d, {}, &clusters.assignment);
  EXPECT_TRUE(tree.clustered());
  const Status s = tree.CheckInvariants(DocLookup(d));
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(IurTreeTest, ClusteredBoundsAreTighterOrEqual) {
  const Dataset d = SmallDataset(800);
  std::vector<TermVector> docs;
  for (const StObject& o : d.objects()) docs.push_back(o.doc);
  ClusteringOptions copts;
  copts.num_clusters = 8;
  const ClusteringResult clusters = ClusterDocuments(docs, copts);
  const IurTree plain = IurTree::BuildFromDataset(d, {});
  const IurTree ciur = IurTree::BuildFromDataset(d, {}, &clusters.assignment);
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  const TextSummary query = TextSummary::FromDoc(d.object(3).doc);

  // Compare bounds on the root children covering the same object sets is not
  // possible node-by-node (tree shapes match: same STR order). Walk both
  // trees in lockstep.
  std::function<void(const IurTree::Node*, const IurTree::Node*)> walk =
      [&](const IurTree::Node* a, const IurTree::Node* b) {
        ASSERT_EQ(a->entries.size(), b->entries.size());
        for (size_t i = 0; i < a->entries.size(); ++i) {
          const TextBounds ba = EntryTextBounds(a->entries[i], query, sim);
          const TextBounds bb = EntryTextBounds(b->entries[i], query, sim);
          EXPECT_LE(ba.min_sim, bb.min_sim + 1e-9);
          EXPECT_GE(ba.max_sim, bb.max_sim - 1e-9);
          if (!a->entries[i].is_object()) {
            walk(a->entries[i].child, b->entries[i].child);
          }
        }
      };
  walk(plain.root(), ciur.root());
}

TEST(IurTreeTest, ClusterAwareBoundsStillBracketTruth) {
  const Dataset d = SmallDataset(600, 17);
  std::vector<TermVector> docs;
  for (const StObject& o : d.objects()) docs.push_back(o.doc);
  ClusteringOptions copts;
  copts.num_clusters = 5;
  copts.outlier_threshold = 0.15;
  const ClusteringResult clusters = ClusterDocuments(docs, copts);
  const IurTree tree = IurTree::BuildFromDataset(d, {}, &clusters.assignment);
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  const TermVector& qdoc = d.object(11).doc;
  const TextSummary query = TextSummary::FromDoc(qdoc);

  std::function<void(const IurTree::Node*)> walk = [&](const IurTree::Node*
                                                           node) {
    for (const IurTree::Entry& e : node->entries) {
      const TextBounds b = EntryTextBounds(e, query, sim);
      // Collect subtree docs and verify bracket.
      std::vector<uint32_t> ids;
      std::function<void(const IurTree::Entry&)> collect =
          [&](const IurTree::Entry& entry) {
            if (entry.is_object()) {
              ids.push_back(entry.id);
            } else {
              for (const IurTree::Entry& ce : entry.child->entries) {
                collect(ce);
              }
            }
          };
      collect(e);
      for (uint32_t id : ids) {
        const double s = sim.Sim(d.object(id).doc, qdoc);
        EXPECT_LE(b.min_sim, s + 1e-9);
        EXPECT_GE(b.max_sim, s - 1e-9);
      }
      if (!e.is_object()) walk(e.child);
    }
  };
  walk(tree.root());
}

TEST(IurTreeTest, StorageAccountingCharges) {
  const Dataset d = SmallDataset(300);
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  EXPECT_GT(tree.IndexBytes(), 0u);
  EXPECT_GT(tree.page_store().num_pages(), 0u);
  IoStats stats;
  tree.ChargeAccess(tree.root(), &stats);
  EXPECT_EQ(stats.node_reads, 1u);
  EXPECT_GE(stats.payload_blocks, 1u);
}

TEST(IurTreeTest, StoredInvertedFileDecodesAndMatchesSummaries) {
  const Dataset d = SmallDataset(200);
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  const IurTree::Node* root = tree.root();
  std::string payload;
  ASSERT_TRUE(
      tree.page_store().Read(root->invfile_handle, &payload, nullptr).ok());
  size_t offset = 0;
  InvertedFile file;
  ASSERT_TRUE(DecodeInvertedFile(payload, &offset, &file).ok());
  // Every posting's (max,min) must match the in-memory entry summaries.
  for (const auto& [term, postings] : file) {
    for (const Posting& p : postings) {
      ASSERT_LT(p.id, root->entries.size());
      const IurTree::Entry& e = root->entries[p.id];
      EXPECT_FLOAT_EQ(p.max_weight, e.summary.uni.Get(term));
      EXPECT_FLOAT_EQ(p.min_weight, e.summary.intr.Get(term));
    }
  }
}

TEST(IurTreeTest, EntryPairBoundsBracketCrossPairs) {
  const Dataset d = SmallDataset(300, 23);
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  const IurTree::Node* root = tree.root();
  ASSERT_FALSE(root->leaf);
  ASSERT_GE(root->entries.size(), 2u);
  const IurTree::Entry& a = root->entries[0];
  const IurTree::Entry& b = root->entries[1];
  const TextBounds bounds = EntryPairTextBounds(a, b, sim);
  std::vector<uint32_t> ids_a, ids_b;
  std::function<void(const IurTree::Entry&, std::vector<uint32_t>*)> collect =
      [&](const IurTree::Entry& e, std::vector<uint32_t>* out) {
        if (e.is_object()) {
          out->push_back(e.id);
        } else {
          for (const IurTree::Entry& ce : e.child->entries) collect(ce, out);
        }
      };
  collect(a, &ids_a);
  collect(b, &ids_b);
  for (uint32_t ia : ids_a) {
    for (uint32_t ib : ids_b) {
      const double s = sim.Sim(d.object(ia).doc, d.object(ib).doc);
      EXPECT_LE(bounds.min_sim, s + 1e-9);
      EXPECT_GE(bounds.max_sim, s - 1e-9);
    }
  }
}

TEST(IurTreeTest, UsersTreeBuilds) {
  const Dataset d = SmallDataset(3000);
  UserGenConfig ucfg;
  ucfg.num_users = 150;
  ucfg.area_extent = 30.0;
  const GeneratedUsers gen = GenUsers(d, ucfg);
  const IurTree user_tree = IurTree::BuildFromUsers(gen.users, {});
  EXPECT_EQ(user_tree.size(), gen.users.size());
  const Status s = user_tree.CheckInvariants(
      [&gen](uint32_t id) -> const TermVector* {
        return id < gen.users.size() ? &gen.users[id].keywords : nullptr;
      });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(IurTreeTest, DeleteMaintainsInvariants) {
  const Dataset d = SmallDataset(500, 41);
  IurTree tree = IurTree::BuildFromDataset(d, {});
  Rng rng(42);
  std::vector<ObjectId> order(d.size());
  for (size_t i = 0; i < d.size(); ++i) order[i] = static_cast<ObjectId>(i);
  rng.Shuffle(&order);
  std::vector<bool> deleted(d.size(), false);
  size_t remaining = d.size();
  for (size_t step = 0; step < 400; ++step) {
    const ObjectId id = order[step];
    ASSERT_TRUE(tree.Delete(id, d.object(id).loc).ok()) << "id=" << id;
    deleted[id] = true;
    --remaining;
    ASSERT_EQ(tree.size(), remaining);
    if (step % 80 == 0) {
      const Status s = tree.CheckInvariants([&](uint32_t oid) {
        return oid < d.size() && !deleted[oid] ? &d.object(oid).doc : nullptr;
      });
      ASSERT_TRUE(s.ok()) << "step=" << step << " " << s.ToString();
    }
  }
  // Deleting something twice (or a wrong location) fails cleanly.
  EXPECT_EQ(tree.Delete(order[0], d.object(order[0]).loc).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(tree.Delete(order[400], Point{-1, -1}).code(),
            StatusCode::kNotFound);
}

TEST(IurTreeTest, DeleteThenQueryStaysExact) {
  const Dataset d = SmallDataset(400, 43);
  IurTree tree = IurTree::BuildFromDataset(d, {});
  // Remove 100 objects, then verify top-k over the survivors matches a
  // brute-force scan restricted to the survivors.
  std::vector<bool> alive(d.size(), true);
  Rng rng(44);
  for (int i = 0; i < 100; ++i) {
    ObjectId id;
    do {
      id = static_cast<ObjectId>(rng.UniformInt(uint64_t{d.size()}));
    } while (!alive[id]);
    ASSERT_TRUE(tree.Delete(id, d.object(id).loc).ok());
    alive[id] = false;
  }
  tree.FinalizeStorage();
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, d.max_dist()});
  TopKSearcher searcher(&tree, &d, &scorer);
  const StObject& q = d.object(7);
  TopKQuery query{q.loc, &q.doc, 10, IurTree::kNoObject};
  const auto got = searcher.Search(query);
  std::vector<TopKResult> expected;
  for (const StObject& o : d.objects()) {
    if (!alive[o.id]) continue;
    expected.push_back({o.id, scorer.Score(o.loc, o.doc, q.loc, q.doc)});
  }
  std::sort(expected.begin(), expected.end(),
            [](const TopKResult& a, const TopKResult& b) {
              return a.score > b.score || (a.score == b.score && a.id < b.id);
            });
  expected.resize(10);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, expected[i].id) << "pos " << i;
  }
}

TEST(IurTreeTest, DeleteDownToEmpty) {
  const Dataset d = SmallDataset(40, 45);
  IurTree tree = IurTree::BuildFromDataset(d, {});
  for (const StObject& o : d.objects()) {
    ASSERT_TRUE(tree.Delete(o.id, o.loc).ok());
  }
  EXPECT_EQ(tree.size(), 0u);
  // And it can be refilled.
  for (const StObject& o : d.objects()) {
    tree.Insert(o.id, o.loc, &o.doc);
  }
  EXPECT_EQ(tree.size(), 40u);
  EXPECT_TRUE(tree.CheckInvariants(DocLookup(d)).ok());
}

TEST(IurTreeTest, EntropyHigherForMixedNodes) {
  IurTree::Entry mixed;
  mixed.clusters = {{0, {TermVector(), TermVector(), 5}},
                    {1, {TermVector(), TermVector(), 5}}};
  IurTree::Entry pure;
  pure.clusters = {{0, {TermVector(), TermVector(), 10}}};
  EXPECT_GT(EntryClusterEntropy(mixed), EntryClusterEntropy(pure));
  IurTree::Entry unclustered;
  EXPECT_EQ(EntryClusterEntropy(unclustered), 0.0);
}

}  // namespace
}  // namespace rst
