#include "rst/common/file_util.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

namespace rst {
namespace {

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

TEST(FileUtilTest, WriteThenReadRoundTrips) {
  const std::string path = TempPath("rst_file_util_roundtrip.txt");
  const std::string content = std::string("line one\nline two\n\0bin", 22);
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  const Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), content);
  std::remove(path.c_str());
}

TEST(FileUtilTest, WriteTruncatesExistingFile) {
  const std::string path = TempPath("rst_file_util_truncate.txt");
  ASSERT_TRUE(WriteStringToFile(path, "a much longer first payload").ok());
  ASSERT_TRUE(WriteStringToFile(path, "short").ok());
  const Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "short");
  std::remove(path.c_str());
}

TEST(FileUtilTest, WriteToUnwritablePathReturnsStatusWithPath) {
  const std::string path = "/nonexistent-dir-for-rst-tests/out.json";
  const Status status = WriteStringToFile(path, "payload");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find(path), std::string::npos);
}

TEST(FileUtilTest, AtomicWriteReplacesContentAndLeavesNoTempFile) {
  const std::string path = TempPath("rst_file_util_atomic.json");
  ASSERT_TRUE(WriteStringToFileAtomic(path, "first").ok());
  ASSERT_TRUE(WriteStringToFileAtomic(path, "second payload").ok());
  const Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "second payload");
  // The staging file was renamed away, not left beside the target.
  const std::string temp_prefix = path + ".tmp.";
  const Result<std::string> temp =
      ReadFileToString(temp_prefix + std::to_string(::getpid()));
  EXPECT_FALSE(temp.ok());
  std::remove(path.c_str());
}

TEST(FileUtilTest, AtomicWriteToUnwritableDirFailsCleanly) {
  const std::string path = "/nonexistent-dir-for-rst-tests/out.json";
  const Status status = WriteStringToFileAtomic(path, "payload");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find(path), std::string::npos);
  // Neither the target nor a temp file appears on failure.
  EXPECT_FALSE(ReadFileToString(path).ok());
}

TEST(FileUtilTest, ReadMissingFileIsNotFound) {
  const Result<std::string> read =
      ReadFileToString(TempPath("rst_file_util_missing.txt"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace rst
