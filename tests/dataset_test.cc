#include "rst/data/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "rst/data/csv.h"
#include "rst/data/generators.h"

namespace rst {
namespace {

TEST(DatasetTest, FinalizeComputesDerivedState) {
  Dataset d;
  d.Add(Point{0, 0}, RawDocument::FromTokens({0, 0, 1}));
  d.Add(Point{3, 4}, RawDocument::FromTokens({1, 2}));
  d.Finalize({Weighting::kLanguageModel, 0.2});
  ASSERT_TRUE(d.finalized());
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.stats().num_docs(), 2u);
  EXPECT_DOUBLE_EQ(d.max_dist(), 5.0);
  EXPECT_EQ(d.bounds(), Rect::FromCorners(0, 0, 3, 4));
  // Weighted vectors exist and corpus max dominates them.
  for (const StObject& o : d.objects()) {
    EXPECT_FALSE(o.doc.empty());
    for (const TermWeight& e : o.doc.entries()) {
      EXPECT_LE(e.weight, d.corpus_max()[e.term] + 1e-7f);
    }
  }
}

TEST(DatasetTest, StatsRowMatchesHandCount) {
  Dataset d;
  d.Add(Point{0, 0}, RawDocument::FromTokens({0, 0, 1}));  // 2 unique, 3 total
  d.Add(Point{1, 1}, RawDocument::FromTokens({2}));        // 1 unique, 1 total
  d.Finalize({});
  const DatasetStatsRow row = ComputeDatasetStats(d);
  EXPECT_EQ(row.total_objects, 2u);
  EXPECT_EQ(row.total_unique_terms, 3u);
  EXPECT_DOUBLE_EQ(row.avg_unique_terms_per_object, 1.5);
  EXPECT_EQ(row.total_terms, 4u);
}

TEST(GeneratorsTest, FlickrLikeShapeMatchesConfig) {
  FlickrLikeConfig config;
  config.num_objects = 2000;
  config.vocab_size = 500;
  Dataset d = GenFlickrLike(config, {Weighting::kLanguageModel, 0.1});
  EXPECT_EQ(d.size(), 2000u);
  const DatasetStatsRow row = ComputeDatasetStats(d);
  // Mean unique terms per object is near the configured 7.
  EXPECT_GT(row.avg_unique_terms_per_object, 5.0);
  EXPECT_LT(row.avg_unique_terms_per_object, 9.0);
  // All locations inside the world.
  for (const StObject& o : d.objects()) {
    EXPECT_GE(o.loc.x, 0.0);
    EXPECT_LE(o.loc.x, config.world_extent);
  }
}

TEST(GeneratorsTest, YelpLikeIsTextHeavy) {
  YelpLikeConfig config;
  config.num_objects = 300;
  Dataset d = GenYelpLike(config, {Weighting::kLanguageModel, 0.1});
  const DatasetStatsRow row = ComputeDatasetStats(d);
  // Long-document regime: far more unique terms per object than Flickr-like.
  EXPECT_GT(row.avg_unique_terms_per_object, 60.0);
  // Repeated terms: total terms exceed unique terms noticeably.
  EXPECT_GT(static_cast<double>(row.total_terms),
            1.2 * row.avg_unique_terms_per_object * row.total_objects);
}

TEST(GeneratorsTest, DeterministicForSameSeed) {
  FlickrLikeConfig config;
  config.num_objects = 200;
  Dataset a = GenFlickrLike(config, {});
  Dataset b = GenFlickrLike(config, {});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.objects()[i].loc, b.objects()[i].loc);
    EXPECT_EQ(a.objects()[i].doc, b.objects()[i].doc);
  }
  config.seed = 999;
  Dataset c = GenFlickrLike(config, {});
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a.objects()[i].loc == c.objects()[i].loc)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorsTest, UserProtocolRespectsConfig) {
  FlickrLikeConfig config;
  config.num_objects = 5000;
  Dataset d = GenFlickrLike(config, {Weighting::kLanguageModel, 0.1});
  UserGenConfig ucfg;
  ucfg.num_users = 80;
  ucfg.keywords_per_user = 3;
  ucfg.num_unique_keywords = 15;
  ucfg.area_extent = 20.0;
  GeneratedUsers gen = GenUsers(d, ucfg);
  EXPECT_EQ(gen.users.size(), 80u);
  EXPECT_LE(gen.candidate_keywords.size(), 15u);
  std::set<TermId> pool(gen.candidate_keywords.begin(),
                        gen.candidate_keywords.end());
  for (const StUser& u : gen.users) {
    EXPECT_LE(u.keywords.size(), 3u);
    EXPECT_GE(u.keywords.size(), 1u);
    for (const TermWeight& e : u.keywords.entries()) {
      EXPECT_TRUE(pool.count(e.term)) << "keyword outside the UW pool";
      EXPECT_EQ(e.weight, 1.0f);  // users carry binary keyword sets
    }
  }
}

TEST(GeneratorsTest, CandidateLocationsInsideArea) {
  const Rect area = Rect::FromCorners(10, 20, 30, 40);
  auto locs = GenCandidateLocations(area, 50, 5);
  EXPECT_EQ(locs.size(), 50u);
  for (const Point& p : locs) EXPECT_TRUE(area.Contains(p));
  // Deterministic.
  auto locs2 = GenCandidateLocations(area, 50, 5);
  EXPECT_EQ(locs[7], locs2[7]);
}

TEST(GeneratorsTest, SampleQueryObjectsDistinct) {
  FlickrLikeConfig config;
  config.num_objects = 100;
  Dataset d = GenFlickrLike(config, {});
  auto q = SampleQueryObjects(d, 20, 3);
  EXPECT_EQ(q.size(), 20u);
  std::set<ObjectId> distinct(q.begin(), q.end());
  EXPECT_EQ(distinct.size(), 20u);
  EXPECT_EQ(SampleQueryObjects(d, 200, 3).size(), 100u);  // capped
}

TEST(CsvTest, IdRoundTrip) {
  Dataset d;
  d.Add(Point{1.5, -2.25}, RawDocument::FromTokens({3, 3, 7}));
  d.Add(Point{0, 0}, RawDocument::FromTokens({1}));
  d.Finalize({});
  const std::string path = ::testing::TempDir() + "/objects.csv";
  ASSERT_TRUE(SaveDatasetIds(d, path).ok());
  auto loaded = LoadDatasetIds(path, {});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().objects()[0].loc, (Point{1.5, -2.25}));
  EXPECT_EQ(loaded.value().objects()[0].raw.term_counts,
            d.objects()[0].raw.term_counts);
  std::remove(path.c_str());
}

TEST(CsvTest, TsvLoadTokenizes) {
  const std::string path = ::testing::TempDir() + "/objects.tsv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# comment\n1.0\t2.0\tsushi seafood sushi\n3.0\t4.0\tnoodles\n",
               f);
    std::fclose(f);
  }
  Vocabulary vocab;
  auto loaded = LoadDatasetTsv(path, &vocab, {});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(vocab.size(), 3u);
  const TermId sushi = vocab.Find("sushi");
  EXPECT_EQ(loaded.value().objects()[0].raw.term_counts[0].first, sushi);
  std::remove(path.c_str());
}

TEST(CsvTest, UsersRoundTrip) {
  std::vector<StUser> users(2);
  users[0] = {0, Point{1, 2}, TermVector::FromTerms({5, 9})};
  users[1] = {1, Point{3, 4}, TermVector::FromTerms({2})};
  const std::string path = ::testing::TempDir() + "/users.csv";
  ASSERT_TRUE(SaveUsersIds(users, path).ok());
  auto loaded = LoadUsersIds(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].keywords, users[0].keywords);
  EXPECT_EQ(loaded.value()[1].loc, users[1].loc);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  Vocabulary vocab;
  EXPECT_EQ(LoadDatasetTsv("/nonexistent/x.tsv", &vocab, {}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(LoadDatasetIds("/nonexistent/x.csv", {}).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace rst
