// Property tests for the rst::simd dispatch layer: every compiled-in vector
// level must produce results *bitwise* identical to the scalar reference on
// the balanced-merge kernels — same doubles, same output entries, same
// counts — across random and adversarial inputs, including every length
// combination that crosses a SIMD block boundary. The end-to-end cases then
// pin the user-visible contract: answers, stats, and EXPLAIN JSON from a
// full RSTkNN search must not depend on the dispatch level.

#include "rst/simd/simd.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rst/common/rng.h"
#include "rst/data/generators.h"
#include "rst/iurtree/iurtree.h"
#include "rst/obs/explain.h"
#include "rst/rstknn/rstknn.h"
#include "rst/text/similarity.h"
#include "rst/text/term_vector.h"

namespace rst {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool BitEqual(const TermWeight& a, const TermWeight& b) {
  return a.term == b.term &&
         std::memcmp(&a.weight, &b.weight, sizeof(float)) == 0;
}

/// Sorted run of `len` strictly ascending terms starting near `base`, with
/// gaps in [1, max_gap]. `zero_weight_every` > 0 plants exact 0.0f weights
/// (legal span input; IntersectMin must drop them on both dispatch paths).
std::vector<TermWeight> MakeRun(Rng& rng, size_t len, TermId base,
                                uint32_t max_gap, int zero_weight_every) {
  std::vector<TermWeight> run;
  run.reserve(len);
  TermId term = base;
  for (size_t i = 0; i < len; ++i) {
    term += 1 + static_cast<TermId>(rng.UniformInt(uint64_t{max_gap}));
    float w = static_cast<float>(rng.Uniform(0.001, 4.0));
    if (zero_weight_every > 0 && i % static_cast<size_t>(zero_weight_every) == 0) {
      w = 0.0f;
    }
    run.push_back({term, w});
  }
  return run;
}

/// Replaces some of b's terms with terms drawn from a (keeping b sorted and
/// unique) so the two runs share matches at controllable density.
void InjectOverlap(Rng& rng, const std::vector<TermWeight>& a,
                   std::vector<TermWeight>* b, double fraction) {
  if (a.empty() || b->empty()) return;
  for (TermWeight& e : *b) {
    if (rng.NextDouble() < fraction) {
      e.term = a[rng.UniformInt(uint64_t{a.size()})].term;
    }
  }
  std::sort(b->begin(), b->end(),
            [](const TermWeight& x, const TermWeight& y) {
              return x.term < y.term;
            });
  b->erase(std::unique(b->begin(), b->end(),
                       [](const TermWeight& x, const TermWeight& y) {
                         return x.term == y.term;
                       }),
           b->end());
}

/// Asserts all four kernels of `level` agree bitwise with scalar on (a, b)
/// and on (b, a).
void CheckPair(const std::vector<TermWeight>& a,
               const std::vector<TermWeight>& b, simd::Level level) {
  const simd::Kernels& ref = simd::KernelsFor(simd::Level::kScalar);
  const simd::Kernels& vec = simd::KernelsFor(level);
  const auto check_one = [&](const std::vector<TermWeight>& x,
                             const std::vector<TermWeight>& y) {
    const TermWeight* xd = x.data();
    const TermWeight* yd = y.data();
    const size_t xn = x.size();
    const size_t yn = y.size();

    const double dot_ref = ref.dot(xd, xn, yd, yn);
    const double dot_vec = vec.dot(xd, xn, yd, yn);
    ASSERT_TRUE(BitEqual(dot_ref, dot_vec))
        << "dot mismatch: " << dot_ref << " vs " << dot_vec << " at lens "
        << xn << "," << yn;

    ASSERT_EQ(ref.overlap(xd, xn, yd, yn), vec.overlap(xd, xn, yd, yn))
        << "overlap mismatch at lens " << xn << "," << yn;

    std::vector<TermWeight> union_ref(xn + yn);
    std::vector<TermWeight> union_vec(xn + yn);
    const size_t un_ref = ref.union_max(xd, xn, yd, yn, union_ref.data());
    const size_t un_vec = vec.union_max(xd, xn, yd, yn, union_vec.data());
    ASSERT_EQ(un_ref, un_vec) << "union count mismatch";
    for (size_t i = 0; i < un_ref; ++i) {
      ASSERT_TRUE(BitEqual(union_ref[i], union_vec[i]))
          << "union entry " << i << " mismatch at lens " << xn << "," << yn;
    }

    std::vector<TermWeight> inter_ref(std::min(xn, yn));
    std::vector<TermWeight> inter_vec(std::min(xn, yn));
    const size_t in_ref = ref.intersect_min(xd, xn, yd, yn, inter_ref.data());
    const size_t in_vec = vec.intersect_min(xd, xn, yd, yn, inter_vec.data());
    ASSERT_EQ(in_ref, in_vec) << "intersect count mismatch";
    for (size_t i = 0; i < in_ref; ++i) {
      ASSERT_TRUE(BitEqual(inter_ref[i], inter_vec[i]))
          << "intersect entry " << i << " mismatch at lens " << xn << ","
          << yn;
    }
  };
  check_one(a, b);
  check_one(b, a);
}

/// Levels worth testing on this host: scalar (trivially) plus whatever the
/// CPU actually supports. On a non-AVX2 x86 host KernelsFor(kAvx2) falls
/// back to scalar, so the test degrades to a tautology rather than a crash.
std::vector<simd::Level> TestableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::DetectedLevel() != simd::Level::kScalar) {
    levels.push_back(simd::DetectedLevel());
  }
  return levels;
}

TEST(SimdKernels, LaneBoundarySweepDenseOverlap) {
  // Every (a_len, b_len) in [0, 40]² crosses the AVX2 8-entry and NEON
  // 4-entry block boundaries many times, with tails of every residue.
  Rng rng(42);
  for (simd::Level level : TestableLevels()) {
    for (size_t a_len = 0; a_len <= 40; ++a_len) {
      for (size_t b_len = 0; b_len <= 40; ++b_len) {
        auto a = MakeRun(rng, a_len, 0, 3, 7);
        auto b = MakeRun(rng, b_len, 0, 3, 5);
        InjectOverlap(rng, a, &b, 0.5);
        CheckPair(a, b, level);
      }
    }
  }
}

TEST(SimdKernels, LongRandomRuns) {
  Rng rng(1234);
  for (simd::Level level : TestableLevels()) {
    for (int trial = 0; trial < 50; ++trial) {
      const size_t a_len = rng.UniformInt(uint64_t{300}) + 1;
      const size_t b_len = rng.UniformInt(uint64_t{300}) + 1;
      const uint32_t gap = 1 + static_cast<uint32_t>(rng.UniformInt(uint64_t{8}));
      auto a = MakeRun(rng, a_len, 0, gap, trial % 2 == 0 ? 11 : 0);
      auto b = MakeRun(rng, b_len, 0, gap, 0);
      InjectOverlap(rng, a, &b, rng.NextDouble());
      CheckPair(a, b, level);
    }
  }
}

TEST(SimdKernels, AdversarialShapes) {
  Rng rng(7);
  const auto dense = MakeRun(rng, 64, 0, 1, 0);   // terms 1..64, no holes
  const auto sparse = MakeRun(rng, 64, 0, 9, 3);  // wide gaps, zero weights
  auto far = MakeRun(rng, 64, 1'000'000, 2, 0);   // fully disjoint range
  std::vector<TermWeight> empty;
  const std::vector<TermWeight> single = {{5, 1.5f}};
  const std::vector<TermWeight> single_hit = {{dense[10].term, 0.25f}};

  for (simd::Level level : TestableLevels()) {
    CheckPair(empty, empty, level);
    CheckPair(empty, dense, level);
    CheckPair(single, dense, level);
    CheckPair(single_hit, dense, level);
    CheckPair(dense, dense, level);    // every term shared ("all duplicates")
    CheckPair(dense, sparse, level);
    CheckPair(dense, far, level);      // disjoint: pure block-skip path
    CheckPair(sparse, far, level);
    // Block-aligned prefix identical, tails diverging: exercises the
    // both-advance-on-tie rule.
    auto a = dense;
    auto b = dense;
    b.resize(40);
    a.resize(48);
    for (size_t i = 32; i < b.size(); ++i) b[i].term += 1'000;
    std::sort(b.begin(), b.end(), [](const TermWeight& x, const TermWeight& y) {
      return x.term < y.term;
    });
    CheckPair(a, b, level);
  }
}

TEST(SimdKernels, ActiveDispatchMatchesDetection) {
  // No override in place: the startup resolution must pick the detected
  // level unless RST_FORCE_SCALAR pinned it to scalar (the CI second run).
  const char* force = std::getenv("RST_FORCE_SCALAR");
  const bool forced = force != nullptr && force[0] != '\0' &&
                      !(force[0] == '0' && force[1] == '\0');
  if (forced) {
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  } else {
    EXPECT_EQ(simd::ActiveLevel(), simd::DetectedLevel());
  }
}

TEST(SimdKernels, ScopedOverrideSwitchesAndRestores) {
  const simd::Level before = simd::ActiveLevel();
  {
    simd::ScopedLevelOverride scalar(simd::Level::kScalar);
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
    {
      simd::ScopedLevelOverride vec(simd::DetectedLevel());
      EXPECT_EQ(simd::ActiveLevel(), simd::DetectedLevel());
    }
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  }
  EXPECT_EQ(simd::ActiveLevel(), before);
}

TEST(SimdKernels, TermVectorOpsIdenticalAcrossDispatch) {
  // Wrapper-level equality: the public TermVector operations must yield
  // identical vectors (and identical cached norms) under every level.
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    auto ea = MakeRun(rng, 20 + rng.UniformInt(uint64_t{100}), 0, 4, 0);
    auto eb = MakeRun(rng, 20 + rng.UniformInt(uint64_t{100}), 0, 4, 0);
    InjectOverlap(rng, ea, &eb, 0.4);
    const TermVector a = TermVector::FromSorted(std::move(ea));
    const TermVector b = TermVector::FromSorted(std::move(eb));

    simd::ScopedLevelOverride scalar(simd::Level::kScalar);
    const double dot_s = a.Dot(b);
    const size_t ov_s = a.OverlapCount(b);
    const TermVector un_s = TermVector::UnionMax(a, b);
    const TermVector in_s = TermVector::IntersectMin(a, b);
    {
      simd::ScopedLevelOverride vec(simd::DetectedLevel());
      ASSERT_TRUE(BitEqual(dot_s, a.Dot(b)));
      ASSERT_EQ(ov_s, a.OverlapCount(b));
      const TermVector un_v = TermVector::UnionMax(a, b);
      const TermVector in_v = TermVector::IntersectMin(a, b);
      ASSERT_EQ(un_s.size(), un_v.size());
      ASSERT_EQ(in_s.size(), in_v.size());
      for (size_t i = 0; i < un_s.size(); ++i) {
        ASSERT_TRUE(BitEqual(un_s.entries()[i], un_v.entries()[i]));
      }
      for (size_t i = 0; i < in_s.size(); ++i) {
        ASSERT_TRUE(BitEqual(in_s.entries()[i], in_v.entries()[i]));
      }
      ASSERT_TRUE(BitEqual(un_s.NormSquared(), un_v.NormSquared()));
    }
  }
}

TEST(SimdKernels, EndToEndSearchIdenticalAcrossDispatch) {
  // Full pipeline: index build + RSTkNN search must produce the same
  // answers, the same counter values, and the same EXPLAIN JSON regardless
  // of dispatch level — the property CI relies on when it reruns the suite
  // under RST_FORCE_SCALAR=1.
  FlickrLikeConfig config;
  config.num_objects = 400;
  config.vocab_size = 150;
  config.seed = 2026;
  const Dataset dataset = GenFlickrLike(config, {Weighting::kTfIdf, 0.1});
  TextSimilarity sim(TextMeasure::kCosine);

  const auto run = [&](simd::Level level) {
    simd::ScopedLevelOverride override_level(level);
    IurTree tree = IurTree::BuildFromDataset(dataset, {});
    StScorer scorer(&sim, {0.5, dataset.max_dist()});
    RstknnSearcher searcher(&tree, &dataset, &scorer);
    struct Out {
      std::vector<ObjectId> answers;
      RstknnStats stats;
      std::string explain_json;
    } out;
    for (ObjectId qid : {ObjectId{3}, ObjectId{57}, ObjectId{123}}) {
      const StObject& qobj = dataset.object(qid);
      obs::ExplainRecorder recorder(64);
      RstknnOptions options;
      options.explain = &recorder;
      RstknnQuery query{qobj.loc, &qobj.doc, 5, qid};
      RstknnResult result = searcher.Search(query, options);
      out.answers.insert(out.answers.end(), result.answers.begin(),
                         result.answers.end());
      out.stats.Merge(result.stats);
      out.explain_json += recorder.ToJson();
    }
    return out;
  };

  const auto scalar = run(simd::Level::kScalar);
  const auto vec = run(simd::DetectedLevel());
  EXPECT_EQ(scalar.answers, vec.answers);
  EXPECT_EQ(scalar.explain_json, vec.explain_json);
  EXPECT_EQ(scalar.stats.expansions, vec.stats.expansions);
  EXPECT_EQ(scalar.stats.pruned_entries, vec.stats.pruned_entries);
  EXPECT_EQ(scalar.stats.reported_entries, vec.stats.reported_entries);
  EXPECT_EQ(scalar.stats.bound_computations, vec.stats.bound_computations);
  EXPECT_EQ(scalar.stats.probes, vec.stats.probes);
  EXPECT_EQ(scalar.stats.pq_pops, vec.stats.pq_pops);
}

}  // namespace
}  // namespace rst
