#include "rst/text/similarity.h"

#include <gtest/gtest.h>

namespace rst {
namespace {

TermVector Vec(std::vector<TermWeight> entries) {
  return TermVector::FromUnsorted(std::move(entries));
}

TEST(ExtendedJaccardTest, KnownValues) {
  TextSimilarity ej(TextMeasure::kExtendedJaccard);
  TermVector a = Vec({{0, 1.0f}, {1, 1.0f}});
  // Identical vectors -> 1.
  EXPECT_DOUBLE_EQ(ej.Sim(a, a), 1.0);
  // Disjoint vectors -> 0.
  EXPECT_DOUBLE_EQ(ej.Sim(a, Vec({{2, 1.0f}})), 0.0);
  // <a,b>=1, |a|²=2, |b|²=1 -> 1/(2+1-1) = 0.5
  EXPECT_DOUBLE_EQ(ej.Sim(a, Vec({{0, 1.0f}})), 0.5);
  // Empty vectors -> 0, no division by zero.
  EXPECT_DOUBLE_EQ(ej.Sim(TermVector(), TermVector()), 0.0);
}

TEST(ExtendedJaccardTest, SymmetricAndBoundedByOne) {
  TextSimilarity ej(TextMeasure::kExtendedJaccard);
  TermVector a = Vec({{0, 0.3f}, {1, 2.0f}, {4, 1.0f}});
  TermVector b = Vec({{1, 1.0f}, {4, 4.0f}, {9, 0.5f}});
  EXPECT_DOUBLE_EQ(ej.Sim(a, b), ej.Sim(b, a));
  EXPECT_LE(ej.Sim(a, b), 1.0);
  EXPECT_GT(ej.Sim(a, b), 0.0);
}

TEST(CosineTest, KnownValues) {
  TextSimilarity cos(TextMeasure::kCosine);
  TermVector a = Vec({{0, 1.0f}});
  TermVector b = Vec({{0, 1.0f}, {1, 1.0f}});
  EXPECT_DOUBLE_EQ(cos.Sim(a, a), 1.0);
  EXPECT_NEAR(cos.Sim(a, b), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(cos.Sim(a, Vec({{3, 2.0f}})), 0.0);
  // Scale invariance.
  TermVector b10 = Vec({{0, 10.0f}, {1, 10.0f}});
  EXPECT_NEAR(cos.Sim(a, b10), cos.Sim(a, b), 1e-12);
}

class SumMeasureTest : public ::testing::Test {
 protected:
  SumMeasureTest() : cmax_{2.0f, 1.0f, 4.0f, 0.5f}, sum_(TextMeasure::kSum, &cmax_) {}
  std::vector<float> cmax_;
  TextSimilarity sum_;
};

TEST_F(SumMeasureTest, NormalizedPerUserKeywordSet) {
  TermVector object = Vec({{0, 1.0f}, {2, 2.0f}});
  // User asks for terms {0, 2}: (1+2) / (2+4) = 0.5.
  EXPECT_DOUBLE_EQ(sum_.Sim(object, TermVector::FromTerms({0, 2})), 0.5);
  // User asks for {0}: 1/2.
  EXPECT_DOUBLE_EQ(sum_.Sim(object, TermVector::FromTerms({0})), 0.5);
  // Terms absent from the object contribute 0 but keep their normalizer.
  EXPECT_DOUBLE_EQ(sum_.Sim(object, TermVector::FromTerms({0, 1})), 1.0 / 3.0);
  // A user with no keywords scores 0.
  EXPECT_DOUBLE_EQ(sum_.Sim(object, TermVector()), 0.0);
}

TEST_F(SumMeasureTest, ScoreIsOneWhenObjectAttainsCorpusMax) {
  TermVector object = Vec({{0, 2.0f}, {1, 1.0f}});
  EXPECT_DOUBLE_EQ(sum_.Sim(object, TermVector::FromTerms({0, 1})), 1.0);
}

TEST_F(SumMeasureTest, KeywordOverlapAsBinarySum) {
  // With binary object weights and unit normalizers, kSum reduces to
  // |u ∩ o| / |u| — the 2016 paper's keyword-overlap measure.
  std::vector<float> ones(4, 1.0f);
  TextSimilarity ko(TextMeasure::kSum, &ones);
  TermVector object = TermVector::FromTerms({0, 2, 3});
  EXPECT_DOUBLE_EQ(ko.Sim(object, TermVector::FromTerms({0, 1})), 0.5);
  EXPECT_DOUBLE_EQ(ko.Sim(object, TermVector::FromTerms({0, 2, 3})), 1.0);
  EXPECT_DOUBLE_EQ(ko.Sim(object, TermVector::FromTerms({1})), 0.0);
}

TEST(StScorerTest, CombinesSpatialAndText) {
  TextSimilarity ej(TextMeasure::kExtendedJaccard);
  StOptions opts;
  opts.alpha = 0.6;
  opts.max_dist = 10.0;
  StScorer scorer(&ej, opts);
  TermVector d = Vec({{0, 1.0f}});
  // Same doc, distance 5: 0.6 * (1 - 0.5) + 0.4 * 1 = 0.7.
  EXPECT_DOUBLE_EQ(scorer.Score(Point{0, 0}, d, Point{3, 4}, d), 0.7);
  // alpha = 1 ignores text entirely.
  StScorer spatial_only(&ej, {1.0, 10.0});
  EXPECT_DOUBLE_EQ(
      spatial_only.Score(Point{0, 0}, d, Point{3, 4}, Vec({{5, 1.0f}})), 0.5);
  // alpha = 0 ignores space entirely.
  StScorer text_only(&ej, {0.0, 10.0});
  EXPECT_DOUBLE_EQ(text_only.Score(Point{0, 0}, d, Point{3, 4}, d), 1.0);
}

TEST(StScorerTest, SpatialSimClampsBeyondMaxDist) {
  TextSimilarity ej(TextMeasure::kExtendedJaccard);
  StScorer scorer(&ej, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(scorer.SpatialSim(0.0), 1.0);
  EXPECT_DOUBLE_EQ(scorer.SpatialSim(0.25), 0.75);
  EXPECT_DOUBLE_EQ(scorer.SpatialSim(2.0), 0.0);  // clamped
}

TEST(TextSummaryTest, MergeAccumulates) {
  TermVector a = Vec({{0, 1.0f}, {1, 2.0f}});
  TermVector b = Vec({{1, 1.0f}, {2, 3.0f}});
  TextSummary sa = TextSummary::FromDoc(a);
  TextSummary sb = TextSummary::FromDoc(b);
  TextSummary m = TextSummary::Merge(sa, sb);
  EXPECT_EQ(m.count, 2u);
  EXPECT_EQ(m.uni.Get(0), 1.0f);
  EXPECT_EQ(m.uni.Get(1), 2.0f);
  EXPECT_EQ(m.uni.Get(2), 3.0f);
  ASSERT_EQ(m.intr.size(), 1u);  // only term 1 is shared
  EXPECT_EQ(m.intr.Get(1), 1.0f);
  // Merging with an empty summary is the identity.
  TextSummary empty;
  TextSummary same = TextSummary::Merge(m, empty);
  EXPECT_EQ(same.count, 2u);
  EXPECT_EQ(same.uni, m.uni);
}

TEST(TextMeasureTest, NamesAreStable) {
  EXPECT_STREQ(TextMeasureName(TextMeasure::kExtendedJaccard),
               "extended_jaccard");
  EXPECT_STREQ(TextMeasureName(TextMeasure::kCosine), "cosine");
  EXPECT_STREQ(TextMeasureName(TextMeasure::kSum), "normalized_sum");
}

}  // namespace
}  // namespace rst
