// Degenerate and boundary inputs across the whole stack: empty collections,
// single objects, k = 0, coincident locations, identical documents, empty
// keyword sets, and zero-budget placements must all behave, not crash.

#include <gtest/gtest.h>

#include "rst/data/generators.h"
#include "rst/maxbrst/miur.h"
#include "rst/rstknn/rstknn.h"

namespace rst {
namespace {

Dataset TinyDataset(std::vector<std::pair<Point, std::vector<TermId>>> rows,
                    Weighting weighting = Weighting::kTfIdf) {
  Dataset d;
  for (auto& [loc, terms] : rows) {
    d.Add(loc, RawDocument::FromTokens(terms));
  }
  d.Finalize({weighting, 0.1});
  return d;
}

TEST(EdgeCaseTest, EmptyDataset) {
  Dataset d = TinyDataset({});
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, d.max_dist()});
  const TermVector qdoc = TermVector::FromTerms({1});
  TopKSearcher topk(&tree, &d, &scorer);
  EXPECT_TRUE(topk.Search({Point{0, 0}, &qdoc, 5, IurTree::kNoObject}).empty());
  RstknnSearcher rst(&tree, &d, &scorer);
  EXPECT_TRUE(
      rst.Search({Point{0, 0}, &qdoc, 5, IurTree::kNoObject}).answers.empty());
}

TEST(EdgeCaseTest, SingleObject) {
  Dataset d = TinyDataset({{Point{1, 1}, {0, 1}}});
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, d.max_dist()});
  RstknnSearcher rst(&tree, &d, &scorer);
  const TermVector qdoc = TermVector::FromTerms({0});
  // The lone object has no competitors: q is trivially in its top-k.
  const auto r = rst.Search({Point{5, 5}, &qdoc, 3, IurTree::kNoObject});
  EXPECT_EQ(r.answers, std::vector<ObjectId>{0});
  // Excluding the object itself leaves nothing.
  const StObject& obj = d.object(0);
  EXPECT_TRUE(rst.Search({obj.loc, &obj.doc, 3, 0}).answers.empty());
}

TEST(EdgeCaseTest, KZeroReturnsNothing) {
  Dataset d = TinyDataset({{Point{0, 0}, {0}}, {Point{1, 1}, {1}}});
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, d.max_dist()});
  RstknnSearcher rst(&tree, &d, &scorer);
  const TermVector qdoc = TermVector::FromTerms({0});
  EXPECT_TRUE(
      rst.Search({Point{0, 0}, &qdoc, 0, IurTree::kNoObject}).answers.empty());
}

TEST(EdgeCaseTest, CoincidentLocations) {
  // All objects at the same point: ranking is purely textual and spatial
  // similarity must not produce NaNs (max_dist degenerates).
  Dataset d = TinyDataset({{Point{2, 2}, {0, 1}},
                           {Point{2, 2}, {1, 2}},
                           {Point{2, 2}, {2, 3}},
                           {Point{2, 2}, {0, 3}}});
  EXPECT_GT(d.max_dist(), 0.0);  // guarded fallback
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, d.max_dist()});
  RstknnSearcher rst(&tree, &d, &scorer);
  const StObject& q = d.object(0);
  const auto got = rst.Search({q.loc, &q.doc, 1, 0});
  EXPECT_EQ(got.answers, BruteForceRstknn(d, scorer, {q.loc, &q.doc, 1, 0}));
  for (ObjectId id : got.answers) {
    const double score =
        scorer.Score(d.object(id).loc, d.object(id).doc, q.loc, q.doc);
    EXPECT_FALSE(std::isnan(score));
  }
}

TEST(EdgeCaseTest, IdenticalDocuments) {
  // Every object textually identical: ties everywhere; results must still
  // match the oracle exactly (tie rules are part of the contract).
  std::vector<std::pair<Point, std::vector<TermId>>> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({Point{static_cast<double>(i % 7), static_cast<double>(i / 7)},
                    {0, 1, 2}});
  }
  Dataset d = TinyDataset(std::move(rows));
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, d.max_dist()});
  RstknnSearcher rst(&tree, &d, &scorer);
  for (ObjectId qid : {0u, 20u, 39u}) {
    const StObject& q = d.object(qid);
    const RstknnQuery query{q.loc, &q.doc, 4, qid};
    EXPECT_EQ(rst.Search(query).answers, BruteForceRstknn(d, scorer, query))
        << "qid=" << qid;
  }
}

TEST(EdgeCaseTest, ObjectWithEmptyDocument) {
  Dataset d = TinyDataset({{Point{0, 0}, {}},      // no terms at all
                           {Point{1, 0}, {0, 1}},
                           {Point{0, 1}, {1}}});
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kExtendedJaccard);
  StScorer scorer(&sim, {0.5, d.max_dist()});
  RstknnSearcher rst(&tree, &d, &scorer);
  const StObject& q = d.object(1);
  const RstknnQuery query{q.loc, &q.doc, 1, 1};
  EXPECT_EQ(rst.Search(query).answers, BruteForceRstknn(d, scorer, query));
}

TEST(EdgeCaseTest, UserWithNoKeywords) {
  Dataset d = TinyDataset({{Point{0, 0}, {0}}, {Point{3, 3}, {1}}},
                          Weighting::kLanguageModel);
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kSum, &d.corpus_max());
  StScorer scorer(&sim, {0.5, d.max_dist()});
  JointTopKProcessor proc(&tree, &d, &scorer);
  std::vector<StUser> users(2);
  users[0] = {0, Point{0, 0}, TermVector()};           // empty keyword set
  users[1] = {1, Point{1, 1}, TermVector::FromTerms({0})};
  const JointTopKResult joint = proc.Process(users, 1);
  ASSERT_EQ(joint.per_user[0].size(), 1u);
  // Text score is 0 for the keyword-less user; ranking is purely spatial.
  EXPECT_EQ(joint.per_user[0][0].id, 0u);
  const auto baseline = proc.BaselinePerUser(users, 1);
  EXPECT_EQ(joint.per_user[0], baseline.per_user[0]);
  EXPECT_EQ(joint.per_user[1], baseline.per_user[1]);
}

TEST(EdgeCaseTest, PlacementWithZeroBudgetOrNoKeywords) {
  Dataset d = TinyDataset({{Point{0, 0}, {0, 1}}, {Point{5, 5}, {1, 2}}},
                          Weighting::kLanguageModel);
  TextSimilarity sim(TextMeasure::kSum, &d.corpus_max());
  StScorer scorer(&sim, {0.5, d.max_dist()});
  std::vector<StUser> users(1);
  users[0] = {0, Point{1, 1}, TermVector::FromTerms({0, 2})};
  std::vector<double> rsk = {0.4};
  MaxBrstSolver solver(&d, &scorer);
  MaxBrstQuery query;
  query.locations = {Point{1, 1}};
  query.keywords = {0, 2};
  query.ws = 0;  // may not add any keyword
  query.k = 1;
  const MaxBrstResult r =
      solver.Solve(users, rsk, query, KeywordSelect::kExact);
  EXPECT_TRUE(r.keywords.empty());
  EXPECT_EQ(r.coverage(),
            BruteForceMaxBrst(users, rsk, d, scorer, query).coverage());
}

TEST(EdgeCaseTest, MiurWithSingleUser) {
  FlickrLikeConfig config;
  config.num_objects = 200;
  config.seed = 3;
  Dataset d = GenFlickrLike(config, {Weighting::kLanguageModel, 0.1});
  const IurTree tree = IurTree::BuildFromDataset(d, {});
  TextSimilarity sim(TextMeasure::kSum, &d.corpus_max());
  StScorer scorer(&sim, {0.5, d.max_dist()});
  std::vector<StUser> users(1);
  users[0] = {0, d.object(10).loc,
              TermVector::FromTerms({d.object(10).raw.term_counts[0].first})};
  const IurTree user_tree = IurTree::BuildFromUsers(users, {});
  MaxBrstQuery query;
  query.locations = {d.object(10).loc};
  query.keywords = {users[0].keywords.entries()[0].term};
  query.ws = 1;
  query.k = 3;
  MiurMaxBrstSolver miur(&tree, &d, &scorer, &user_tree, &users);
  const MiurResult r = miur.Solve(query, KeywordSelect::kExact);
  // Placing the object at the user's own location with their keyword should
  // reach that single user.
  EXPECT_EQ(r.best.coverage(), 1u);
}

TEST(EdgeCaseTest, DuplicateCandidateKeywordsAreDeduped) {
  Dataset d = TinyDataset({{Point{0, 0}, {0, 1, 2}}},
                          Weighting::kLanguageModel);
  MaxBrstQuery query;
  query.keywords = {2, 0, 2, 0, 1};
  query.ws = 2;
  const PlacementContext ctx = PlacementContext::Make(d, query);
  EXPECT_EQ(ctx.keywords, (std::vector<TermId>{0, 1, 2}));
}

}  // namespace
}  // namespace rst
