// Bad fixture: nondeterminism in a (mirrored) query-path directory. Never
// compiled; linted only.

#include <chrono>
#include <cstdlib>
#include <random>

namespace lintfix {

double JitterScore(double score) {
  std::mt19937 gen(42);  // expect-finding: nondeterministic-query-path
  return score + static_cast<double>(gen() % 3);
}

long WallClockTieBreak() {
  const auto now =
      std::chrono::system_clock::now();  // expect-finding: nondeterministic-query-path
  return now.time_since_epoch().count();
}

int LegacyRand() {
  return std::rand();  // expect-finding: nondeterministic-query-path
}

}  // namespace lintfix
