// Fixture mirror for the sleep-in-src rule (this directory stands in for
// src/): library code must block on CondVar deadlines so shutdown can
// interrupt the wait, never on bare sleeps.

#include <chrono>
#include <thread>

namespace fixture {

inline void PollForWork() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // expect-finding: sleep-in-src
}

}  // namespace fixture
