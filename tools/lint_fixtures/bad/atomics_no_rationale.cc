// An explicit memory_order argument with no nearby // rst-atomics: comment:
// the reviewer cannot tell a considered relaxed counter from a data race
// that happens to compile.

#include <atomic>
#include <cstdint>

namespace fixture {

inline std::atomic<uint64_t>& Counter() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

inline void Bump() {
  Counter().fetch_add(1, std::memory_order_relaxed);  // expect-finding: atomics-rationale
}

}  // namespace fixture
