// Bad fixture: inline metric-name literals at obs call sites. Never
// compiled; linted only.

#include "rst/obs/metrics.h"
#include "rst/obs/trace.h"

namespace lintfix {

void InlineNames(rst::obs::MetricRegistry* registry,
                 rst::obs::QueryTrace* trace) {
  registry->GetCounter("oops.typod_counter").Increment();  // expect-finding: metric-name-literal
  trace->Enter("oops.span");  // expect-finding: metric-name-literal
  trace->AddCount("oops.key", 1);  // expect-finding: metric-name-literal
}

}  // namespace lintfix
