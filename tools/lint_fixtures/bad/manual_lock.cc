// Manual lock()/unlock() pairs leak the lock on every early return and
// exception path, and the thread-safety analysis cannot pair them with a
// critical section; RAII guards are mandatory outside common/mutex.h.

namespace fixture {

struct Latch {
  void lock();
  void unlock();
  bool try_lock();
};

inline int Critical(Latch* latch, int value) {
  latch->lock();  // expect-finding: manual-lock
  const int doubled = value * 2;
  latch->unlock();  // expect-finding: manual-lock
  return doubled;
}

inline bool TryCritical(Latch& latch) {
  if (!latch.try_lock()) return false;  // expect-finding: manual-lock
  latch.unlock();  // expect-finding: manual-lock
  return true;
}

}  // namespace fixture
