// A detached thread outlives every object it captured; the runtime sampler
// (obs/runtime.cc) shows the join pattern: stop flag + CondVar, join in the
// destructor.

#include <thread>

namespace fixture {

inline void FireAndForget() {
  std::thread worker([] {});
  worker.detach();  // expect-finding: thread-detach
}

}  // namespace fixture
