// Bad fixture: Status results silently dropped. Never compiled; linted only.

#include "rst/common/status.h"

namespace lintfix {

rst::Status DoWork();

void DropsStatus() {
  DoWork();  // expect-finding: unchecked-status
}

void VoidCastWithoutReason() {
  (void)DoWork();  // expect-finding: unchecked-status
}

}  // namespace lintfix
