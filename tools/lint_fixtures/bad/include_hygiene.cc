// Bad fixture: include-style violations. Never compiled; linted only.

#include <rst/common/status.h>  // expect-finding: include-hygiene
#include "../common/geometry.h"  // expect-finding: include-hygiene
#include "rst/common/status.h"  // expect-finding: include-hygiene (duplicate)

namespace lintfix {}
