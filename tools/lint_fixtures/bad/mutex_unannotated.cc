// An rst::Mutex that no RST_* annotation ever names protects nothing the
// analysis can see: the fields it supposedly guards are unmarked, so a
// mis-locked access compiles silently.

#include "rst/common/mutex.h"

namespace fixture {

class Tally {
 public:
  void Add(int n) {
    rst::MutexLock lock(&mu_);
    total_ += n;
  }

 private:
  mutable rst::Mutex mu_;  // expect-finding: mutex-guarded-by
  int total_ = 0;          // should be RST_GUARDED_BY(mu_)
};

}  // namespace fixture
