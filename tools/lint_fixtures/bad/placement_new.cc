// Bad fixture: placement new outside the arena sources listed in
// PLACEMENT_NEW_ALLOWED. Never compiled; linted only.

namespace lintfix {

struct Widget {
  int value = 0;
};

Widget* BuildInto(void* storage) {
  return new (storage) Widget{};  // expect-finding: raw-new-delete
}

}  // namespace lintfix
