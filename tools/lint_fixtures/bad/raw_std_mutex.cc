// Raw standard-library synchronization primitives are invisible to clang's
// thread-safety analysis; everything outside src/rst/common/mutex.h must go
// through the annotated wrappers.

#include <mutex>

namespace fixture {

class Tally {
 public:
  void Add(int n) {
    std::lock_guard<std::mutex> lock(mu_);  // expect-finding: raw-sync-primitive
    total_ += n;
  }

 private:
  std::mutex mu_;  // expect-finding: raw-sync-primitive
  int total_ = 0;
};

}  // namespace fixture
