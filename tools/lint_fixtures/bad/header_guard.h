#ifndef WRONG_GUARD_NAME_H_
#define WRONG_GUARD_NAME_H_
// expect-finding: header-guard
// Bad fixture: the guard must spell the path
// (TOOLS_LINT_FIXTURES_BAD_HEADER_GUARD_H_). Never compiled; linted only.

namespace lintfix {}

#endif  // WRONG_GUARD_NAME_H_
