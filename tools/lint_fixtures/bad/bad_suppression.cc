// Bad fixture: a reason-less allow() is itself an error AND does not
// suppress the underlying finding. Never compiled; linted only.

namespace lintfix {

int* ReasonlessAllow() {
  // rst-lint: allow(raw-new-delete)
  return new int(7);
}
// expect-finding: bad-suppression
// expect-finding: raw-new-delete

}  // namespace lintfix
