// Bad fixture: raw ownership outside src/rst/storage/. Never compiled;
// linted only.

namespace lintfix {

struct Node {
  Node* next = nullptr;
};

Node* Leak() {
  return new Node();  // expect-finding: raw-new-delete
}

void Free(Node* n) {
  delete n;  // expect-finding: raw-new-delete
}

}  // namespace lintfix
