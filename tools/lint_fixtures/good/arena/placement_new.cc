// Good fixture: mirror of the node-arena sources, where placement new into
// caller-owned storage is permitted without a suppression comment (see
// PLACEMENT_NEW_ALLOWED in rst_lint.py). Plain new/delete would still be
// flagged here. Never compiled; linted only.

namespace lintfix {

struct Chunk {
  unsigned char bytes[64];
};

struct Node {
  int fanout = 0;
};

Node* CreateInto(Chunk* chunk) {
  return new (chunk->bytes) Node{};
}

void DestroyAt(Node* node) {
  node->~Node();
}

}  // namespace lintfix
