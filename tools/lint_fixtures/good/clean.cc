// Known-good fixture for `rst_lint.py --self-test`: every pattern here is
// conforming and must produce zero findings. Never compiled; linted only.

#include <string>

#include "rst/common/status.h"
#include "rst/obs/metric_names.h"
#include "rst/obs/metrics.h"

namespace lintfix {

rst::Status DoWork();

int UseStatusProperly() {
  // Checked: assigned and inspected.
  const rst::Status s = DoWork();
  if (!s.ok()) return 1;
  // Checked inline as part of a larger expression.
  if (!DoWork().ok()) return 2;
  // Returned to the caller.
  return DoWork().ok() ? 0 : 3;
}

void ExplicitDiscard() {
  // rst-lint: allow(unchecked-status) fixture demonstrating a justified discard
  (void)DoWork();
}

void MetricNamesFromHeader(rst::obs::MetricRegistry* registry) {
  // Names come from the central header, not inline literals.
  registry->GetCounter(rst::obs::names::kRstknnQueries).Increment();
  registry->GetGauge(rst::obs::names::kIurtreeBuildLastMs).Set(1.0);
}

void JustifiedRawNew() {
  // rst-lint: allow(raw-new-delete) leaky singleton fixture with a reason
  static auto* leaked = new std::string("lives forever");
  (void)leaked;
}

}  // namespace lintfix
