// A correctly disciplined locked class: annotated wrapper mutex, GUARDED_BY
// on the data, RAII critical sections, and a justified relaxed atomic. All
// lock-discipline rules must stay quiet here.

#include <atomic>
#include <cstdint>

#include "rst/common/mutex.h"
#include "rst/common/thread_annotations.h"

namespace fixture {

class Tally {
 public:
  void Add(uint64_t n) RST_EXCLUDES(mu_) {
    rst::MutexLock lock(&mu_);
    total_ += n;
  }

  uint64_t total() const RST_EXCLUDES(mu_) {
    // rst-atomics: monitoring counter; carries no ordering relationship
    // with total_, so relaxed is enough.
    peeks_.fetch_add(1, std::memory_order_relaxed);
    rst::MutexLock lock(&mu_);
    return total_;
  }

 private:
  mutable rst::Mutex mu_;
  uint64_t total_ RST_GUARDED_BY(mu_) = 0;
  mutable std::atomic<uint64_t> peeks_{0};
};

}  // namespace fixture
