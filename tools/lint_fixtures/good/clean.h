#ifndef TOOLS_LINT_FIXTURES_GOOD_CLEAN_H_
#define TOOLS_LINT_FIXTURES_GOOD_CLEAN_H_

// Known-good fixture for `rst_lint.py --self-test`: exercises the patterns
// each rule must NOT flag. Never compiled; linted only.

#include <string>

#include "rst/common/status.h"

namespace lintfix {

class Widget {
 public:
  Widget() = default;
  Widget(const Widget&) = delete;  // `= delete` is not a raw delete

  rst::Status Validate() const;

  // A declaration mentioning "new" in a comment or string is not a raw new.
  std::string Description() const { return "brand new widget"; }
};

}  // namespace lintfix

#endif  // TOOLS_LINT_FIXTURES_GOOD_CLEAN_H_
