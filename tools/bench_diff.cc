// bench_diff — deterministic perf-regression comparator over two metrics
// JSON artifacts (a committed baseline vs. a fresh run).
//
//   bench_diff BASELINE.json CURRENT.json [--threshold PCT] [--skip a,b,...]
//
// Both inputs may be bare MetricsSnapshot documents ({"counters": ...}) or
// any wrapper with a "metrics" member — the CLI's --metrics-out artifact and
// the bench harness's <figure>.metrics.json both qualify.
//
// Gating model (DESIGN.md §9): WORK COUNTERS (nodes visited, bound
// computations, pages read, ...) are deterministic for a fixed dataset, seed
// and query set, so they are compared exactly — a counter increase beyond
// --threshold percent (default 0: any increase) is a REGRESSION and the exit
// code is 1. Counter decreases are reported as IMPROVEMENT (exit 0; refresh
// the baseline to lock them in). Gauges and histograms carry timing, which
// is machine-dependent — drift there is WARN-only, never a failure.
// Timing-derived counters (exec.slow_queries) are skipped by default.
//
// Exit codes: 0 = no counter regressions, 1 = regression, 2 = usage/IO/parse.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "rst/common/file_util.h"
#include "rst/obs/json.h"
#include "rst/obs/metrics.h"

namespace rst {
namespace {

/// Counters whose values depend on wall time, never gated.
const char* const kDefaultSkips[] = {"exec.slow_queries"};

Result<obs::MetricsSnapshot> LoadSnapshot(const std::string& path) {
  Result<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  Result<obs::JsonValue> parsed = obs::JsonValue::Parse(content.value());
  if (!parsed.ok()) {
    return Status::Corruption(path + ": " + parsed.status().message());
  }
  const obs::JsonValue* root = &parsed.value();
  if (const obs::JsonValue* metrics = root->Get("metrics")) root = metrics;
  return obs::MetricsSnapshot::FromJsonValue(*root);
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff BASELINE.json CURRENT.json "
               "[--threshold PCT] [--skip name,name,...]\n");
  return 2;
}

int Main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold_pct = 0.0;
  std::set<std::string> skips(std::begin(kDefaultSkips),
                              std::end(kDefaultSkips));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--skip") == 0 && i + 1 < argc) {
      std::string list = argv[++i];
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const std::string name =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!name.empty()) skips.insert(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      return Usage();
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.size() != 2) return Usage();

  Result<obs::MetricsSnapshot> base = LoadSnapshot(paths[0]);
  if (!base.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n", base.status().ToString().c_str());
    return 2;
  }
  Result<obs::MetricsSnapshot> cur = LoadSnapshot(paths[1]);
  if (!cur.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n", cur.status().ToString().c_str());
    return 2;
  }

  // --- counters: the deterministic gate ---
  std::set<std::string> names;
  for (const auto& [name, value] : base.value().counters) names.insert(name);
  for (const auto& [name, value] : cur.value().counters) names.insert(name);

  size_t regressions = 0, improvements = 0, identical = 0, skipped = 0;
  for (const std::string& name : names) {
    if (skips.count(name) > 0) {
      ++skipped;
      continue;
    }
    const auto b_it = base.value().counters.find(name);
    const auto c_it = cur.value().counters.find(name);
    const uint64_t b = b_it == base.value().counters.end() ? 0 : b_it->second;
    const uint64_t c = c_it == cur.value().counters.end() ? 0 : c_it->second;
    if (b == c) {
      ++identical;
      continue;
    }
    const double pct =
        b == 0 ? 100.0
               : 100.0 * (static_cast<double>(c) - static_cast<double>(b)) /
                     static_cast<double>(b);
    if (c > b && std::fabs(pct) > threshold_pct) {
      ++regressions;
      std::printf("REGRESSION  %-44s %llu -> %llu (%+.2f%%)\n", name.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(c), pct);
    } else if (c > b) {
      std::printf("TOLERATED   %-44s %llu -> %llu (%+.2f%% <= %.2f%%)\n",
                  name.c_str(), static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(c), pct, threshold_pct);
    } else {
      ++improvements;
      std::printf("IMPROVEMENT %-44s %llu -> %llu (%+.2f%%)\n", name.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(c), pct);
    }
  }

  // --- gauges + histograms: timing, warn-only ---
  size_t warnings = 0;
  for (const auto& [name, b_value] : base.value().gauges) {
    const auto c_it = cur.value().gauges.find(name);
    if (c_it == cur.value().gauges.end()) continue;
    if (b_value == c_it->second) continue;
    ++warnings;
    std::printf("WARN gauge  %-44s %.4f -> %.4f (timing, not gated)\n",
                name.c_str(), b_value, c_it->second);
  }
  for (const auto& [name, b_hist] : base.value().histograms) {
    const auto c_it = cur.value().histograms.find(name);
    if (c_it == cur.value().histograms.end()) continue;
    // Sample COUNTS through a histogram are deterministic work; the recorded
    // values (latencies) are not. Gate nothing, but surface count drift
    // louder than value drift.
    if (b_hist.count != c_it->second.count) {
      ++warnings;
      std::printf("WARN hist   %-44s count %llu -> %llu (not gated)\n",
                  name.c_str(), static_cast<unsigned long long>(b_hist.count),
                  static_cast<unsigned long long>(c_it->second.count));
    } else if (b_hist.sum != c_it->second.sum) {
      ++warnings;
      std::printf("WARN hist   %-44s sum %.4f -> %.4f (timing, not gated)\n",
                  name.c_str(), b_hist.sum, c_it->second.sum);
    }
  }

  std::printf(
      "bench_diff: %zu counters identical, %zu regressions, %zu improvements, "
      "%zu skipped, %zu timing warnings (threshold %.2f%%)\n",
      identical, regressions, improvements, skipped, warnings, threshold_pct);
  if (improvements > 0 && regressions == 0) {
    std::printf("note: counters improved — refresh the committed baseline to "
                "lock the gains in\n");
  }
  return regressions > 0 ? 1 : 0;
}

}  // namespace
}  // namespace rst

int main(int argc, char** argv) { return rst::Main(argc, argv); }
