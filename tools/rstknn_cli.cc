// rstknn_cli — command-line front end for the library, operating on the
// CSV/TSV interchange formats of rst/data/csv.h.
//
//   rstknn_cli gen      --kind flickr|yelp|geonames --objects N --out F
//   rstknn_cli genusers --data F --num N --ul K --uw W --area A --out F2
//   rstknn_cli stats    --data F
//   rstknn_cli topk     --data F --x X --y Y --keywords "1 2 3" --k K
//   rstknn_cli rstknn   --data F (--id QID | --x X --y Y --keywords "...") --k K
//                       batch mode: --ids "3 5 7" [--threads N] evaluates
//                       the listed query objects through the rst::exec
//                       BatchRunner (N concurrent workers, default 1) and
//                       prints "<query_id>\t<answer_id>" per answer; results
//                       are identical to running each id serially.
//   rstknn_cli maxbrst  --data F --users F2 --locations "x:y;x:y"
//                       --keywords "1 2 3" --ws W --k K [--method exact]
//
// Common flags: --alpha A (0.5), --measure ej|cos|sum (ej; sum for maxbrst),
// --weighting tfidf|lm|binary (tfidf), --seed S.
//
// Observability flags (topk / rstknn / maxbrst):
//   --trace             print the per-phase span tree of the query to stderr
//   --metrics-out FILE  write a JSON artifact: {"command", "metrics"
//                       (registry snapshot: counters/gauges/histograms),
//                       "trace" (span tree), "explain" (with --explain),
//                       "slow_log" (with --slow-log-ms)}. For rstknn this
//                       also switches node accesses to real reads through a
//                       buffer pool, so storage.buffer_pool.{hits,misses}
//                       are genuine.
//   --pool-pages N      buffer-pool capacity in 4 KiB pages (default 256)
//
// Frozen-index flags (rstknn only):
//   --frozen            freeze the built tree into the flat-layout snapshot
//                       (rst::frozen) and answer over it — byte-identical
//                       results/metrics, pointer-free traversal
//   --save-index FILE   freeze and persist the snapshot (versioned format);
//                       with no query flags (--id/--ids/--keywords) the
//                       command exits after saving
//   --load-index FILE   answer over a previously saved snapshot instead of
//                       rebuilding the tree (implies --frozen; --data must
//                       still name the dataset the index was built from)
//   --build-threads N   worker threads for the STR bulk-load slab sorts
//                       (default 1; any N produces the identical tree)
//   --check-invariants  run the deep structural validation (DESIGN.md §11.2)
//                       over the index before answering — summary domination,
//                       tight MBRs, level leaves, cluster partitions; exits
//                       non-zero with the precise violation on corruption
//
// Sharded-index flags (rstknn only; DESIGN.md §15):
//   --shards K          partition the dataset into K spatial shards (STR
//                       tiling), bulk-build one frozen tree per shard and
//                       answer by scatter-gather — results byte-identical to
//                       a single index at any K; rstknn.shard.* counters
//                       report the whole-shard triage. --save-index /
//                       --load-index then name a snapshot DIRECTORY
//                       (MANIFEST + shard_<i>.frz); --check-invariants
//                       validates every shard plus the partition itself.
//                       Incompatible with --explain (exit 2) and the
//                       real-I/O buffer pool (--metrics-out still snapshots
//                       the registry); batch mode ignores --slow-log-ms,
//                       --profile and --trace-out with a stderr note.
//
// Profiling flags (rstknn; DESIGN.md §12):
//   --profile           attribute each query's wall time into the fixed phase
//                       set (descent / bounds / merge / io / finalize) and
//                       publish rstknn.phase.* latency histograms; serial
//                       runs also print the per-phase table to stderr and
//                       embed it in the --metrics-out artifact
//   --trace-out FILE    write Chrome trace-event JSON (open in Perfetto or
//                       chrome://tracing): per-worker run / queue-wait
//                       timelines in batch mode, the query's span tree
//                       serially
//   --trace-sample N    in batch mode, keep the full span tree of every N-th
//                       query in the trace-event output (default 1 = all)
//   --telemetry-ms N    sample process runtime telemetry (RSS, page faults,
//                       CPU time, thread count) every N ms into runtime.*
//                       gauges, visible in the --metrics-out snapshot
//
// EXPLAIN / slow-query flags (rstknn only):
//   --explain           print the per-level branch-and-bound decision
//                       summary (which bound fired, prune/expand/report) to
//                       stderr and embed it in the --metrics-out artifact
//   --explain-log N     also keep the first N raw decisions (0 = summary
//                       only, the default)
//   --algo probe|cl     algorithm realization: competitor probes (default)
//                       or the 2011 contribution-list scheme
//   --slow-log-ms X     capture queries slower than X ms (trace + explain
//                       summary) into an in-process ring buffer
//   --slow-log-out FILE write the captured slow queries as JSON
//
// Workload capture / heatmap flags (rstknn only; DESIGN.md §14):
//   --journal-out FILE  append every executed query to a crash-atomic JSONL
//                       workload journal (query object, wall/phase timings,
//                       stats, FNV-1a64 answer digest) replayable with
//                       tools/rst_replay
//   --journal-sample N  record every N-th query by batch index (default 1)
//   --heatmap-out FILE  accumulate per-node visit/prune/expand/report
//                       counters across the run (merged across workers in
//                       batch mode) and write the heatmap JSON; exits
//                       non-zero if the totals fail to reconcile exactly
//                       with the summed RstknnStats
//
// Output-file errors (--metrics-out / --slow-log-out on an unwritable path)
// exit non-zero with the underlying Status message.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rst/common/file_util.h"
#include "rst/common/stopwatch.h"
#include "rst/data/csv.h"
#include "rst/data/generators.h"
#include "rst/exec/batch_runner.h"
#include "rst/exec/sharded_runner.h"
#include "rst/frozen/frozen.h"
#include "rst/maxbrst/maxbrst.h"
#include "rst/obs/explain.h"
#include "rst/obs/heatmap.h"
#include "rst/obs/journal.h"
#include "rst/obs/json.h"
#include "rst/obs/metric_names.h"
#include "rst/obs/metrics.h"
#include "rst/obs/phase_timer.h"
#include "rst/obs/runtime.h"
#include "rst/obs/slow_log.h"
#include "rst/obs/trace.h"
#include "rst/obs/trace_event.h"
#include "rst/rstknn/rstknn.h"
#include "rst/shard/sharded_index.h"
#include "rst/shard/sharded_search.h"

namespace rst {
namespace {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i < argc;) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag [value], got '%s'\n", argv[i]);
        std::exit(2);
      }
      // A flag followed by another --flag (or nothing) is boolean, e.g.
      // --trace.
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[argv[i] + 2] = argv[i + 1];
        i += 2;
      } else {
        values_[argv[i] + 2] = "1";
        i += 1;
      }
    }
  }

  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  long GetInt(const std::string& name, long fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
  }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

std::vector<TermId> ParseTerms(const std::string& s) {
  std::vector<TermId> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(static_cast<TermId>(std::stoul(tok)));
  return out;
}

std::vector<Point> ParseLocations(const std::string& s) {
  std::vector<Point> out;
  std::istringstream in(s);
  std::string pair;
  while (std::getline(in, pair, ';')) {
    const size_t colon = pair.find(':');
    if (colon == std::string::npos) continue;
    out.push_back({std::strtod(pair.substr(0, colon).c_str(), nullptr),
                   std::strtod(pair.substr(colon + 1).c_str(), nullptr)});
  }
  return out;
}

/// Observability switches shared by the query commands.
struct ObsFlags {
  bool trace = false;           ///< print the span tree to stderr
  std::string metrics_out;      ///< JSON artifact path ("" = off)
  size_t pool_pages = 256;
  bool explain = false;         ///< record + print branch-and-bound decisions
  size_t explain_log = 0;       ///< raw decision-log cap (0 = summary only)
  double slow_log_ms = -1.0;    ///< capture threshold (< 0 = off)
  std::string slow_log_out;     ///< slow-query JSON path ("" = stderr note)
  bool profile = false;         ///< per-phase latency attribution
  std::string trace_out;        ///< Chrome trace-event JSON path ("" = off)
  uint64_t trace_sample = 1;    ///< span tree of every N-th batch query
  long telemetry_ms = -1;       ///< runtime sampling period (< 0 = off)
  std::string journal_out;      ///< workload-journal JSONL path ("" = off)
  uint64_t journal_sample = 1;  ///< journal every N-th query by index
  std::string heatmap_out;      ///< index-heatmap JSON path ("" = off)

  explicit ObsFlags(const Flags& flags)
      : trace(flags.Has("trace")),
        metrics_out(flags.Get("metrics-out", "")),
        pool_pages(static_cast<size_t>(flags.GetInt("pool-pages", 256))),
        explain(flags.Has("explain")),
        explain_log(static_cast<size_t>(flags.GetInt("explain-log", 0))),
        slow_log_ms(flags.Has("slow-log-ms") ? flags.GetDouble("slow-log-ms", 0)
                                             : -1.0),
        slow_log_out(flags.Get("slow-log-out", "")),
        profile(flags.Has("profile")),
        trace_out(flags.Get("trace-out", "")),
        trace_sample(static_cast<uint64_t>(flags.GetInt("trace-sample", 1))),
        telemetry_ms(flags.Has("telemetry-ms") ? flags.GetInt("telemetry-ms", 1)
                                               : -1),
        journal_out(flags.Get("journal-out", "")),
        journal_sample(static_cast<uint64_t>(
            std::max(1L, flags.GetInt("journal-sample", 1)))),
        heatmap_out(flags.Get("heatmap-out", "")) {}

  bool tracing() const {
    return trace || !metrics_out.empty() || !trace_out.empty();
  }
  bool slow_logging() const { return slow_log_ms >= 0.0; }
};

/// Finishes the trace and emits the requested artifacts: the span tree on
/// stderr (--trace), the combined JSON file (--metrics-out) holding the full
/// registry snapshot of this process plus the span tree (and, when recorded,
/// the explain report and slow-query log), and the standalone slow-query
/// file (--slow-log-out). Unwritable paths exit non-zero with the Status
/// message.
int EmitObsArtifacts(const ObsFlags& obs_flags, const std::string& command,
                     obs::QueryTrace* trace,
                     const obs::ExplainRecorder* explain = nullptr,
                     const obs::SlowQueryLog* slow_log = nullptr,
                     const obs::PhaseProfiler* profiler = nullptr,
                     const obs::TraceEventWriter* trace_events = nullptr) {
  if (obs_flags.tracing()) trace->Finish();
  if (obs_flags.trace) {
    std::fprintf(stderr, "%s", trace->ToString().c_str());
  }
  if (!obs_flags.metrics_out.empty()) {
    obs::JsonWriter writer;
    writer.BeginObject();
    writer.Key("command");
    writer.String(command);
    writer.Key("metrics");
    obs::MetricRegistry::Global().Snapshot().AppendJson(&writer);
    writer.Key("trace");
    trace->AppendJson(&writer);
    if (profiler != nullptr) {
      writer.Key("phases");
      profiler->AppendJson(&writer);
    }
    if (explain != nullptr) {
      writer.Key("explain");
      explain->AppendJson(&writer);
    }
    if (slow_log != nullptr) {
      writer.Key("slow_log");
      slow_log->AppendJson(&writer);
    }
    writer.EndObject();
    const Status s =
        WriteStringToFileAtomic(obs_flags.metrics_out, writer.str());
    if (!s.ok()) {
      std::fprintf(stderr, "--metrics-out: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics written to %s\n",
                 obs_flags.metrics_out.c_str());
  }
  if (!obs_flags.trace_out.empty() && trace_events != nullptr) {
    const Status s = trace_events->WriteFile(obs_flags.trace_out);
    if (!s.ok()) {
      std::fprintf(stderr, "--trace-out: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace events (%zu kept, %llu dropped) written to %s\n",
                 trace_events->size(),
                 static_cast<unsigned long long>(trace_events->dropped()),
                 obs_flags.trace_out.c_str());
  }
  if (!obs_flags.slow_log_out.empty() && slow_log != nullptr) {
    const Status s = WriteStringToFileAtomic(obs_flags.slow_log_out,
                                             slow_log->ToJson());
    if (!s.ok()) {
      std::fprintf(stderr, "--slow-log-out: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "slow-query log (%llu captured) written to %s\n",
                 static_cast<unsigned long long>(slow_log->captured()),
                 obs_flags.slow_log_out.c_str());
  }
  return 0;
}

WeightingOptions ParseWeighting(const Flags& flags) {
  const std::string w = flags.Get("weighting", "tfidf");
  if (w == "lm") return {Weighting::kLanguageModel, 0.1};
  if (w == "binary") return {Weighting::kBinary, 0.1};
  return {Weighting::kTfIdf, 0.1};
}

TextMeasure ParseMeasure(const Flags& flags, TextMeasure fallback) {
  const std::string m = flags.Get("measure", "");
  if (m == "ej") return TextMeasure::kExtendedJaccard;
  if (m == "cos") return TextMeasure::kCosine;
  if (m == "sum") return TextMeasure::kSum;
  return fallback;
}

RstknnAlgorithm ParseAlgorithm(const Flags& flags) {
  const std::string a = flags.Get("algo", "probe");
  if (a == "cl" || a == "contribution-list") {
    return RstknnAlgorithm::kContributionList;
  }
  return RstknnAlgorithm::kProbe;
}

/// Capture context for a workload journal (DESIGN.md §14): everything
/// rst_replay needs to rebuild the same index and scorer, normalized to the
/// CLI's own flag vocabulary.
obs::JournalHeader MakeJournalHeader(const Flags& flags,
                                     const std::string& label, bool use_frozen,
                                     uint64_t threads, uint64_t sample_every,
                                     uint64_t shards = 0) {
  obs::JournalHeader header;
  header.label = label;
  header.data = flags.Get("data", "objects.csv");
  header.algo = ParseAlgorithm(flags) == RstknnAlgorithm::kContributionList
                    ? "contribution_list"
                    : "probe";
  header.view = use_frozen || shards > 0 ? "frozen" : "pointer";
  header.tree = "iur";  // the CLI builds an unclustered IUR-tree
  header.measure = flags.Get("measure", "ej");
  header.weighting = flags.Get("weighting", "tfidf");
  header.alpha = flags.GetDouble("alpha", 0.5);
  header.threads = threads;
  header.sample_every = sample_every;
  header.shards = shards;
  return header;
}

/// Writes the heatmap JSON after verifying its totals reconcile exactly with
/// the summed per-query stats; any mismatch or write failure is fatal so
/// scripted runs can gate on it (same contract as the CI counter gate).
int EmitHeatmap(const std::string& path, const obs::HeatmapRecorder& heatmap,
                const RstknnStats& total) {
  const Status reconciled = heatmap.CheckReconciles(
      total.expansions, total.pruned_entries, total.reported_entries);
  if (!reconciled.ok()) {
    std::fprintf(stderr, "--heatmap-out: %s\n", reconciled.ToString().c_str());
    return 1;
  }
  const Status s = WriteStringToFileAtomic(path, heatmap.ToJson());
  if (!s.ok()) {
    std::fprintf(stderr, "--heatmap-out: %s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "heatmap (%llu queries, %llu decisions over %zu nodes) written "
               "to %s\n",
               static_cast<unsigned long long>(heatmap.queries()),
               static_cast<unsigned long long>(heatmap.decisions()),
               heatmap.nodes().size(), path.c_str());
  return 0;
}

/// Closes the journal and reports it; a latched append error is fatal.
int FinishJournal(obs::WorkloadRecorder* journal, const std::string& path) {
  const uint64_t recorded = journal->recorded();
  const Status s = journal->Close();
  if (!s.ok()) {
    std::fprintf(stderr, "--journal-out: %s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "workload journal (%llu records) written to %s\n",
               static_cast<unsigned long long>(recorded), path.c_str());
  return 0;
}

int CmdGen(const Flags& flags) {
  const std::string kind = flags.Get("kind", "flickr");
  const size_t n = static_cast<size_t>(flags.GetInt("objects", 10000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const WeightingOptions weighting = ParseWeighting(flags);
  Dataset dataset;
  if (kind == "yelp") {
    YelpLikeConfig config;
    config.num_objects = n;
    config.seed = seed;
    dataset = GenYelpLike(config, weighting);
  } else if (kind == "geonames") {
    GeoNamesLikeConfig config;
    config.num_objects = n;
    config.seed = seed;
    dataset = GenGeoNamesLike(config, weighting);
  } else {
    FlickrLikeConfig config;
    config.num_objects = n;
    config.seed = seed;
    dataset = GenFlickrLike(config, weighting);
  }
  const std::string out = flags.Get("out", "objects.csv");
  const Status s = SaveDatasetIds(dataset, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu %s-like objects to %s\n", dataset.size(),
              kind.c_str(), out.c_str());
  return 0;
}

Result<Dataset> LoadData(const Flags& flags) {
  return LoadDatasetIds(flags.Get("data", "objects.csv"),
                        ParseWeighting(flags));
}

int CmdGenUsers(const Flags& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  UserGenConfig config;
  config.num_users = static_cast<size_t>(flags.GetInt("num", 100));
  config.keywords_per_user = static_cast<size_t>(flags.GetInt("ul", 3));
  config.num_unique_keywords = static_cast<size_t>(flags.GetInt("uw", 20));
  config.area_extent = flags.GetDouble("area", 5.0);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  const GeneratedUsers gen = GenUsers(data.value(), config);
  const std::string out = flags.Get("out", "users.csv");
  const Status s = SaveUsersIds(gen.users, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu users to %s\ncandidate keyword pool (W):",
              gen.users.size(), out.c_str());
  for (TermId w : gen.candidate_keywords) std::printf(" %u", w);
  std::printf("\n");
  return 0;
}

int CmdStats(const Flags& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const DatasetStatsRow row = ComputeDatasetStats(data.value());
  const IurTree tree = IurTree::BuildFromDataset(data.value(), {});
  std::printf("objects:            %zu\n", row.total_objects);
  std::printf("unique terms:       %zu\n", row.total_unique_terms);
  std::printf("avg terms/object:   %.2f\n", row.avg_unique_terms_per_object);
  std::printf("total terms:        %llu\n",
              static_cast<unsigned long long>(row.total_terms));
  std::printf("bounds:             %s\n", data.value().bounds().ToString().c_str());
  std::printf("iur-tree:           height %zu, %zu nodes, %llu bytes\n",
              tree.height(), tree.NodeCount(),
              static_cast<unsigned long long>(tree.IndexBytes()));

  // Corpus-level distributions, aggregated with the obs histogram type:
  // term document frequencies (how skewed the vocabulary is — drives the
  // text-bound tightness) and per-object document lengths.
  const Dataset& dataset = data.value();
  obs::Histogram term_freq(obs::HistogramSpec::Exponential(1.0, 2.0, 16));
  const CorpusStats& corpus = dataset.stats();
  size_t used_terms = 0;
  for (TermId t = 0; t < corpus.vocab_size(); ++t) {
    const uint32_t df = corpus.DocFreq(t);
    if (df == 0) continue;
    ++used_terms;
    term_freq.Record(static_cast<double>(df));
  }
  obs::Histogram doc_len(obs::HistogramSpec::Linear(1.0, 1.0, 64));
  for (const StObject& o : dataset.objects()) {
    doc_len.Record(static_cast<double>(o.doc.size()));
  }
  std::printf("term doc-freq:      p50 %.0f, p90 %.0f, p99 %.0f, max %.0f "
              "(%zu used terms)\n",
              term_freq.Percentile(0.5), term_freq.Percentile(0.9),
              term_freq.Percentile(0.99), term_freq.snapshot().max,
              used_terms);
  std::printf("doc length:         mean %.2f, p50 %.0f, p90 %.0f, p99 %.0f, "
              "max %.0f\n",
              doc_len.snapshot().Mean(), doc_len.Percentile(0.5),
              doc_len.Percentile(0.9), doc_len.Percentile(0.99),
              doc_len.snapshot().max);
  return 0;
}

int CmdTopK(const Flags& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = data.value();
  const IurTree tree = IurTree::BuildFromDataset(dataset, {});
  TextSimilarity sim(ParseMeasure(flags, TextMeasure::kExtendedJaccard),
                     &dataset.corpus_max());
  StScorer scorer(&sim, {flags.GetDouble("alpha", 0.5), dataset.max_dist()});
  TopKSearcher searcher(&tree, &dataset, &scorer);
  const TermVector qdoc = TermVector::FromTerms(
      ParseTerms(flags.Get("keywords", "")));
  TopKQuery query;
  query.loc = {flags.GetDouble("x", 0), flags.GetDouble("y", 0)};
  query.doc = &qdoc;
  query.k = static_cast<size_t>(flags.GetInt("k", 10));
  const ObsFlags obs_flags(flags);
  obs::QueryTrace trace(obs::names::kTraceTopk);
  IoStats io;
  Stopwatch timer;
  const auto results =
      searcher.Search(query, &io, obs_flags.tracing() ? &trace : nullptr);
  const double ms = timer.ElapsedMillis();
  for (const TopKResult& r : results) {
    std::printf("%u\t%.6f\n", r.id, r.score);
  }
  std::fprintf(stderr, "%zu results in %.2f ms, %llu simulated I/Os\n",
               results.size(), ms,
               static_cast<unsigned long long>(io.TotalIos()));
  return EmitObsArtifacts(obs_flags, "topk", &trace);
}

/// Batch mode (--ids): evaluates every listed query object through the
/// BatchRunner. Traces are single-threaded by design, so --trace only
/// annotates the artifact with the batch, not per-query spans.
int CmdRstknnBatch(const Flags& flags, const Dataset& dataset,
                   const IurTree* tree, const frozen::FrozenTree* frozen,
                   const shard::ShardedIndex* sharded, const StScorer& scorer,
                   obs::RuntimeSampler* sampler) {
  std::vector<ObjectId> ids;
  for (TermId t : ParseTerms(flags.Get("ids", ""))) {
    ids.push_back(static_cast<ObjectId>(t));
  }
  if (ids.empty()) {
    std::fprintf(stderr, "--ids must list at least one object id\n");
    return 2;
  }
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  std::vector<RstknnQuery> queries;
  queries.reserve(ids.size());
  for (ObjectId qid : ids) {
    if (qid >= dataset.size()) {
      std::fprintf(stderr, "--ids entry %u out of range\n", qid);
      return 2;
    }
    queries.push_back(
        {dataset.object(qid).loc, &dataset.object(qid).doc, k, qid});
  }

  const ObsFlags obs_flags(flags);
  RstknnOptions options;
  options.algorithm = ParseAlgorithm(flags);
  std::optional<BufferPool> pool;
  if (sharded == nullptr) {
    pool.emplace(frozen != nullptr ? &frozen->page_store()
                                   : &tree->page_store(),
                 obs_flags.pool_pages);
    if (!obs_flags.metrics_out.empty()) options.pool = &*pool;
  } else if (obs_flags.slow_logging() || obs_flags.profile ||
             !obs_flags.trace_out.empty()) {
    // Per-tree instruments don't compose with the scatter-gather runner (see
    // ShardedBatchRunner); the run still proceeds so scripted pipelines that
    // always pass them keep working against sharded indexes.
    std::fprintf(stderr,
                 "note: --slow-log-ms/--profile/--trace-out are ignored in "
                 "sharded batch mode\n");
  }

  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 1));
  exec::ThreadPool thread_pool(threads);
  exec::BatchRunner runner =
      frozen != nullptr
          ? exec::BatchRunner(frozen, &dataset, &scorer, &thread_pool)
          : exec::BatchRunner(tree, &dataset, &scorer, &thread_pool);
  exec::ShardedBatchRunner sharded_runner(sharded, &dataset, &scorer,
                                          &thread_pool);
  obs::SlowQueryLog slow_log(obs_flags.slow_log_ms);
  obs::TraceEventWriter trace_events(/*capacity=*/1 << 16,
                                     obs_flags.trace_sample);
  if (sharded == nullptr) {
    if (obs_flags.slow_logging()) runner.set_slow_log(&slow_log);
    if (obs_flags.profile) runner.set_profiling(true);
    if (!obs_flags.trace_out.empty()) runner.set_trace_events(&trace_events);
  }
  obs::WorkloadRecorder journal;
  if (!obs_flags.journal_out.empty()) {
    const Status s = journal.Open(
        obs_flags.journal_out,
        MakeJournalHeader(flags, "rstknn.batch", frozen != nullptr,
                          thread_pool.num_threads(), obs_flags.journal_sample,
                          sharded != nullptr ? sharded->num_shards() : 0));
    if (!s.ok()) {
      std::fprintf(stderr, "--journal-out: %s\n", s.ToString().c_str());
      return 1;
    }
    runner.set_journal(&journal);
    sharded_runner.set_journal(&journal);
  }
  obs::HeatmapRecorder heatmap;
  if (!obs_flags.heatmap_out.empty()) {
    runner.set_heatmap(&heatmap);
    sharded_runner.set_heatmap(&heatmap);
  }
  exec::BatchStats batch_stats;
  shard::ShardedStats shard_stats;
  const std::vector<RstknnResult> results =
      sharded != nullptr
          ? sharded_runner.RunRstknn(queries, options, &batch_stats,
                                     &shard_stats)
          : runner.RunRstknn(queries, options, &batch_stats);

  for (size_t i = 0; i < results.size(); ++i) {
    for (ObjectId id : results[i].answers) {
      std::printf("%u\t%u\n", ids[i], id);
    }
  }
  double busy_ms = 0.0;
  for (double ms : batch_stats.worker_busy_ms) busy_ms += ms;
  std::fprintf(stderr,
               "%llu reverse neighbors across %zu queries in %.2f ms wall "
               "(%zu threads, %.2f ms busy, %llu I/Os)\n",
               static_cast<unsigned long long>(batch_stats.answers),
               queries.size(), batch_stats.wall_ms, thread_pool.num_threads(),
               busy_ms,
               static_cast<unsigned long long>(
                   batch_stats.total.io.TotalIos()));
  if (sharded != nullptr) {
    std::fprintf(stderr,
                 "shard triage: %llu pruned, %llu reported, %llu searched "
                 "(of %zu shards x %zu queries)\n",
                 static_cast<unsigned long long>(shard_stats.shards_pruned),
                 static_cast<unsigned long long>(shard_stats.shards_reported),
                 static_cast<unsigned long long>(shard_stats.shards_searched),
                 sharded->num_shards(), queries.size());
  }
  if (options.pool != nullptr) {
    std::fprintf(stderr, "buffer pool: %llu hits, %llu misses, %llu evictions "
                 "(%.1f%% hit rate)\n",
                 static_cast<unsigned long long>(pool->hits()),
                 static_cast<unsigned long long>(pool->misses()),
                 static_cast<unsigned long long>(pool->evictions()),
                 100.0 * pool->hit_rate());
  }
  if (obs_flags.slow_logging()) {
    std::fprintf(stderr, "slow-query log: %llu captured over %.2f ms "
                 "(%llu dropped)\n",
                 static_cast<unsigned long long>(slow_log.captured()),
                 slow_log.threshold_ms(),
                 static_cast<unsigned long long>(slow_log.dropped()));
  }
  if (!obs_flags.journal_out.empty()) {
    const int rc = FinishJournal(&journal, obs_flags.journal_out);
    if (rc != 0) return rc;
  }
  if (!obs_flags.heatmap_out.empty()) {
    const int rc =
        EmitHeatmap(obs_flags.heatmap_out, heatmap, batch_stats.total);
    if (rc != 0) return rc;
  }
  // Stop before the artifact snapshot so the runtime.* gauges carry a final
  // post-batch sample.
  if (sampler != nullptr) sampler->Stop();
  obs::QueryTrace trace(obs::names::kTraceRstknn);  // batch runs carry no per-query spans
  return EmitObsArtifacts(obs_flags, "rstknn", &trace, /*explain=*/nullptr,
                          obs_flags.slow_logging() ? &slow_log : nullptr,
                          /*profiler=*/nullptr, &trace_events);
}

int CmdRstknn(const Flags& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = data.value();
  TextSimilarity sim(ParseMeasure(flags, TextMeasure::kExtendedJaccard),
                     &dataset.corpus_max());
  StScorer scorer(&sim, {flags.GetDouble("alpha", 0.5), dataset.max_dist()});

  // Runtime telemetry starts before the index build so the runtime.* gauges
  // cover the build's memory growth, not just the queries.
  const ObsFlags obs_flags(flags);
  const size_t num_shards =
      static_cast<size_t>(std::max(0L, flags.GetInt("shards", 0)));
  const bool use_sharded = num_shards > 0;
  if (use_sharded && obs_flags.explain) {
    std::fprintf(stderr,
                 "--explain is unsupported with --shards (the per-shard "
                 "searches would reset the recorder); use --heatmap-out\n");
    return 2;
  }
  obs::RuntimeSampler sampler;
  if (obs_flags.telemetry_ms >= 0) {
    sampler.Start(static_cast<uint64_t>(obs_flags.telemetry_ms));
  }

  // Index setup: build the pointer tree (and optionally freeze/save it), or
  // load a previously saved frozen snapshot and skip the build entirely.
  // With --shards the index is a directory of frozen shard trees instead.
  const bool load_index = flags.Has("load-index");
  const bool save_index = flags.Has("save-index");
  const bool use_frozen = (flags.Has("frozen") || load_index) && !use_sharded;
  std::optional<IurTree> tree;
  std::optional<frozen::FrozenTree> frozen;
  std::optional<shard::ShardedIndex> sharded;
  if (use_sharded) {
    if (load_index) {
      // The on-disk MANIFEST carries the shard count; --shards just selects
      // the sharded loader.
      Result<shard::ShardedIndex> loaded =
          shard::ShardedIndex::LoadDir(flags.Get("load-index", ""));
      if (!loaded.ok()) {
        std::fprintf(stderr, "--load-index: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      sharded.emplace(std::move(loaded.value()));
    } else {
      shard::ShardOptions shard_options;
      shard_options.num_shards = num_shards;
      exec::ThreadPool build_pool(
          static_cast<size_t>(flags.GetInt("build-threads", 1)));
      sharded.emplace(shard::ShardedIndex::Build(dataset, shard_options,
                                                 /*cluster_of=*/nullptr,
                                                 &build_pool));
    }
  } else if (load_index) {
    Result<frozen::FrozenTree> loaded =
        frozen::FrozenTree::Load(flags.Get("load-index", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "--load-index: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    frozen.emplace(std::move(loaded.value()));
  } else {
    IurTreeOptions tree_options;
    tree_options.build_threads =
        static_cast<size_t>(flags.GetInt("build-threads", 1));
    tree.emplace(IurTree::BuildFromDataset(dataset, tree_options));
    if (use_frozen || save_index) {
      frozen.emplace(frozen::FrozenTree::Freeze(*tree));
    }
  }
  // Opt-in deep validation of whichever index will serve the query: every
  // node summary dominated and equal to the merge of its children, MBRs
  // tight, leaves level, cluster lists partitioning. Exits non-zero with the
  // precise violation so scripted runs can gate on it.
  if (flags.Has("check-invariants")) {
    Status invariants = Status::Ok();
    if (sharded.has_value()) {
      invariants = sharded->CheckInvariants();
    }
    if (invariants.ok() && tree.has_value()) {
      invariants = tree->CheckInvariants(
          [&dataset](uint32_t oid) -> const TermVector* {
            return oid < dataset.size() ? &dataset.object(oid).doc : nullptr;
          });
    }
    if (invariants.ok() && frozen.has_value()) {
      invariants = frozen->CheckInvariants();
    }
    if (!invariants.ok()) {
      std::fprintf(stderr, "--check-invariants: %s\n",
                   invariants.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "--check-invariants: index ok\n");
  }
  if (save_index) {
    const std::string path = flags.Get("save-index", "");
    if (use_sharded) {
      const Status s = sharded->SaveDir(path);
      if (!s.ok()) {
        std::fprintf(stderr, "--save-index: %s\n", s.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "sharded index (%zu shards, %llu objects) written to %s/\n",
                   sharded->num_shards(),
                   static_cast<unsigned long long>(sharded->size()),
                   path.c_str());
    } else {
      const Status s = frozen->Save(path);
      if (!s.ok()) {
        std::fprintf(stderr, "--save-index: %s\n", s.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "frozen index (%u nodes, %u entries, %llu payload bytes) "
                   "written to %s\n",
                   frozen->num_nodes(), frozen->num_entries(),
                   static_cast<unsigned long long>(frozen->IndexBytes()),
                   path.c_str());
    }
    if (!flags.Has("id") && !flags.Has("ids") && !flags.Has("keywords")) {
      return 0;  // save-only invocation
    }
  }
  if (flags.Has("ids")) {
    return CmdRstknnBatch(flags, dataset, tree ? &*tree : nullptr,
                          use_frozen ? &*frozen : nullptr,
                          sharded ? &*sharded : nullptr, scorer, &sampler);
  }

  RstknnQuery query;
  TermVector qdoc;
  if (flags.Has("id")) {
    const ObjectId qid = static_cast<ObjectId>(flags.GetInt("id", 0));
    if (qid >= dataset.size()) {
      std::fprintf(stderr, "--id out of range\n");
      return 2;
    }
    query.loc = dataset.object(qid).loc;
    query.doc = &dataset.object(qid).doc;
    query.self = qid;
  } else {
    qdoc = TermVector::FromTerms(ParseTerms(flags.Get("keywords", "")));
    query.loc = {flags.GetDouble("x", 0), flags.GetDouble("y", 0)};
    query.doc = &qdoc;
  }
  query.k = static_cast<size_t>(flags.GetInt("k", 10));

  obs::QueryTrace trace(obs::names::kTraceRstknn);
  RstknnOptions options;
  options.algorithm = ParseAlgorithm(flags);
  // With a metrics artifact requested, switch to real I/O through a buffer
  // pool so the reported hit/miss/fill metrics are genuine reads of the
  // serialized index rather than simulated charges. Sharded mode has no
  // single page store, so it stays on simulated charges.
  std::optional<BufferPool> pool;
  if (!use_sharded) {
    pool.emplace(use_frozen ? &frozen->page_store() : &tree->page_store(),
                 obs_flags.pool_pages);
  }
  if (obs_flags.tracing() || obs_flags.slow_logging()) {
    options.trace = &trace;
  }
  obs::PhaseProfiler profiler;
  if (obs_flags.profile) options.profiler = &profiler;
  if (!obs_flags.metrics_out.empty() && pool.has_value()) {
    pool->set_trace(options.trace);
    pool->set_phase_profiler(options.profiler);
    options.pool = &*pool;
  }
  obs::ExplainRecorder recorder(obs_flags.explain_log);
  if (obs_flags.explain) options.explain = &recorder;
  obs::HeatmapRecorder heatmap;
  if (!obs_flags.heatmap_out.empty()) options.heatmap = &heatmap;

  obs::TraceEventWriter trace_events(/*capacity=*/1 << 16,
                                     obs_flags.trace_sample);
  const double query_start_us = trace_events.NowUs();
  Stopwatch timer;
  RstknnResult result;
  shard::ShardedStats shard_stats;
  if (use_sharded) {
    const shard::ShardedSearcher sharded_searcher(&*sharded, &dataset,
                                                  &scorer);
    shard::ShardedResult res = sharded_searcher.Search(query, options);
    result.answers = std::move(res.answers);
    result.stats = res.stats;
    shard_stats = res.shards;
  } else {
    const RstknnSearcher searcher =
        use_frozen ? RstknnSearcher(&*frozen, &dataset, &scorer)
                   : RstknnSearcher(&*tree, &dataset, &scorer);
    result = searcher.Search(query, options);
  }
  const double ms = timer.ElapsedMillis();
  if (obs_flags.profile) {
    std::fprintf(stderr, "per-phase attribution (of %.2f ms wall):\n%s",
                 ms, profiler.ToString().c_str());
  }
  if (!obs_flags.trace_out.empty()) {
    // A serial run's timeline is the query's own span tree on one track.
    trace.Finish();
    trace_events.AddThreadName(1, "query");
    trace_events.AddSpanTree(trace.root(), 1, query_start_us);
  }

  if (obs_flags.explain) {
    std::fprintf(stderr, "%s", recorder.ToString().c_str());
    const Status reconciled = recorder.CheckReconciles(
        result.stats.expansions, result.stats.pruned_entries,
        result.stats.reported_entries);
    if (!reconciled.ok()) {
      std::fprintf(stderr, "WARNING: %s\n", reconciled.ToString().c_str());
    }
  }
  if (!obs_flags.journal_out.empty()) {
    // Serial capture: a one-record journal with the same header/record
    // format as batch mode, so single-query runs replay identically.
    obs::WorkloadRecorder journal;
    const Status s = journal.Open(
        obs_flags.journal_out,
        MakeJournalHeader(flags, "rstknn", use_frozen, /*threads=*/1,
                          obs_flags.journal_sample,
                          use_sharded ? sharded->num_shards() : 0));
    if (!s.ok()) {
      std::fprintf(stderr, "--journal-out: %s\n", s.ToString().c_str());
      return 1;
    }
    if (journal.ShouldSample(0)) {
      obs::JournalQueryRecord record =
          exec::MakeJournalRecord(0, query, result, ms);
      if (obs_flags.profile) {
        obs::JsonWriter phases;
        profiler.AppendJson(&phases);
        record.phases_json = phases.TakeString();
      }
      journal.Append(record);
    }
    const int rc = FinishJournal(&journal, obs_flags.journal_out);
    if (rc != 0) return rc;
  }
  if (!obs_flags.heatmap_out.empty()) {
    heatmap.AddQueries(1);
    const int rc = EmitHeatmap(obs_flags.heatmap_out, heatmap, result.stats);
    if (rc != 0) return rc;
  }
  obs::SlowQueryLog slow_log(obs_flags.slow_log_ms);
  if (obs_flags.slow_logging() && slow_log.ShouldCapture(ms)) {
    trace.Finish();
    obs::SlowQueryRecord record;
    record.label = obs::names::kTraceRstknn;
    record.elapsed_ms = ms;
    record.answers = result.answers.size();
    record.trace_json = trace.ToJson();
    if (obs_flags.explain) record.explain_json = recorder.ToJson();
    slow_log.Insert(std::move(record));
  }
  for (ObjectId id : result.answers) std::printf("%u\n", id);
  std::fprintf(stderr,
               "%zu reverse neighbors in %.2f ms (%llu entries, %llu pruned, "
               "%llu I/Os)\n",
               result.answers.size(), ms,
               static_cast<unsigned long long>(result.stats.entries_created),
               static_cast<unsigned long long>(result.stats.pruned_entries),
               static_cast<unsigned long long>(result.stats.io.TotalIos()));
  if (use_sharded) {
    std::fprintf(stderr,
                 "shard triage: %llu pruned, %llu reported, %llu searched "
                 "(of %zu shards)\n",
                 static_cast<unsigned long long>(shard_stats.shards_pruned),
                 static_cast<unsigned long long>(shard_stats.shards_reported),
                 static_cast<unsigned long long>(shard_stats.shards_searched),
                 sharded->num_shards());
  }
  if (options.pool != nullptr) {
    std::fprintf(stderr, "buffer pool: %llu hits, %llu misses, %llu evictions "
                 "(%.1f%% hit rate)\n",
                 static_cast<unsigned long long>(pool->hits()),
                 static_cast<unsigned long long>(pool->misses()),
                 static_cast<unsigned long long>(pool->evictions()),
                 100.0 * pool->hit_rate());
  }
  sampler.Stop();  // final runtime sample lands in the snapshot below
  return EmitObsArtifacts(obs_flags, "rstknn", &trace,
                          obs_flags.explain ? &recorder : nullptr,
                          obs_flags.slow_logging() ? &slow_log : nullptr,
                          obs_flags.profile ? &profiler : nullptr,
                          &trace_events);
}

int CmdMaxBrst(const Flags& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = data.value();
  auto users = LoadUsersIds(flags.Get("users", "users.csv"));
  if (!users.ok()) {
    std::fprintf(stderr, "%s\n", users.status().ToString().c_str());
    return 1;
  }
  const IurTree tree = IurTree::BuildFromDataset(dataset, {});
  TextSimilarity sim(TextMeasure::kSum, &dataset.corpus_max());
  StScorer scorer(&sim, {flags.GetDouble("alpha", 0.5), dataset.max_dist()});

  MaxBrstQuery query;
  query.locations = ParseLocations(flags.Get("locations", ""));
  query.keywords = ParseTerms(flags.Get("keywords", ""));
  query.ws = static_cast<size_t>(flags.GetInt("ws", 2));
  query.k = static_cast<size_t>(flags.GetInt("k", 10));
  if (query.locations.empty() || query.keywords.empty()) {
    std::fprintf(stderr, "need --locations \"x:y;x:y\" and --keywords\n");
    return 2;
  }

  const ObsFlags obs_flags(flags);
  obs::QueryTrace trace(obs::names::kTraceMaxbrst);
  obs::QueryTrace* trace_ptr = obs_flags.tracing() ? &trace : nullptr;

  JointTopKProcessor proc(&tree, &dataset, &scorer);
  Stopwatch timer;
  if (trace_ptr != nullptr) trace_ptr->Enter(obs::names::kSpanJointTopk);
  const JointTopKResult joint = proc.Process(users.value(), query.k);
  if (trace_ptr != nullptr) trace_ptr->Exit();
  const double topk_ms = timer.ElapsedMillis();

  MaxBrstSolver solver(&dataset, &scorer);
  const KeywordSelect method = flags.Get("method", "approx") == "exact"
                                   ? KeywordSelect::kExact
                                   : KeywordSelect::kApprox;
  timer.Restart();
  const MaxBrstResult best =
      solver.Solve(users.value(), joint.rsk, query, method, trace_ptr);
  const double sel_ms = timer.ElapsedMillis();

  if (best.location_index == SIZE_MAX) {
    std::printf("no placement covers any user\n");
  } else {
    const Point loc = query.locations[best.location_index];
    std::printf("location: %.6f %.6f\nkeywords:", loc.x, loc.y);
    for (TermId w : best.keywords) std::printf(" %u", w);
    std::printf("\ncovered users (%zu):", best.coverage());
    for (uint32_t u : best.covered_users) std::printf(" %u", u);
    std::printf("\n");
  }
  std::fprintf(stderr, "joint top-k %.2f ms (%llu I/Os), selection %.2f ms\n",
               topk_ms,
               static_cast<unsigned long long>(joint.io.TotalIos()), sel_ms);
  return EmitObsArtifacts(obs_flags, "maxbrst", &trace);
}

int Usage() {
  std::fprintf(stderr,
               "usage: rstknn_cli <gen|genusers|stats|topk|rstknn|maxbrst> "
               "[--flag value ...]\n(see the header of tools/rstknn_cli.cc)\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const Flags flags(argc, argv);
  if (cmd == "gen") return CmdGen(flags);
  if (cmd == "genusers") return CmdGenUsers(flags);
  if (cmd == "stats") return CmdStats(flags);
  if (cmd == "topk") return CmdTopK(flags);
  if (cmd == "rstknn") return CmdRstknn(flags);
  if (cmd == "maxbrst") return CmdMaxBrst(flags);
  return Usage();
}

}  // namespace
}  // namespace rst

int main(int argc, char** argv) { return rst::Main(argc, argv); }
