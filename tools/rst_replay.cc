// rst_replay — deterministic replay of a captured workload journal
// (tools/rstknn_cli --journal-out, bench/load_driver --journal-out) against a
// freshly built index. Turns any capture into a regression test: every
// replayed query's FNV-1a64 answer digest must equal the recorded one, and
// the accumulated index heatmap must reconcile counter-exactly with the
// summed RstknnStats.
//
//   rst_replay --journal FILE [--data FILE] [--view pointer|frozen|journal]
//              [--algo probe|cl|journal] [--shards K|journal] [--threads N]
//              [--report FILE] [--heatmap-out FILE] [--max-diffs N]
//
//   --journal FILE   the JSONL capture to replay (required)
//   --data FILE      dataset TSV (default: the journal header's data path)
//   --view           tree view to replay on (default: journal = as captured)
//   --algo           algorithm to replay with (default: journal). Answers —
//                    and therefore digests — are independent of algo/view by
//                    the equality contract; stats are only compared when the
//                    replay algorithm matches the capture
//   --shards         replay against a K-shard ShardedIndex (default: journal
//                    = the capture's shard count; 0 = single index). Digests
//                    must still match — the answer set is independent of the
//                    partitioning; stats are only compared when the replay
//                    shard count matches the capture's. --view is ignored
//                    when sharded (shards are frozen trees)
//   --threads N      replay through exec::BatchRunner with N workers
//                    (default 1 = serial RstknnSearcher loop); digests are
//                    identical at any thread count
//   --report FILE    write the per-query diff report as JSON
//   --heatmap-out    write the replay's accumulated heatmap JSON
//   --max-diffs N    cap per-query diff lines on stderr (default 10)
//
// Exit status: 0 clean; 1 on any digest mismatch, comparable-stats mismatch,
// or heatmap reconciliation failure; 2 on usage/IO errors. Scripted gates
// (the CI replay-smoke job) rely on this.
//
// After replaying, an aggregate analytics table is printed: per-level prune
// efficiency, bound-fire frequency, hottest nodes and hottest query terms —
// the workload-level view ROADMAP item 5's planner trains from.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "rst/common/file_util.h"
#include "rst/common/stopwatch.h"
#include "rst/data/csv.h"
#include "rst/exec/batch_runner.h"
#include "rst/exec/sharded_runner.h"
#include "rst/exec/thread_pool.h"
#include "rst/frozen/frozen.h"
#include "rst/obs/explain.h"
#include "rst/obs/heatmap.h"
#include "rst/obs/journal.h"
#include "rst/obs/json.h"
#include "rst/rstknn/rstknn.h"
#include "rst/shard/sharded_index.h"
#include "rst/shard/sharded_search.h"

namespace rst {
namespace {

struct ReplayFlags {
  std::string journal;
  std::string data;
  std::string view = "journal";
  std::string algo = "journal";
  std::string shards = "journal";
  size_t threads = 1;
  std::string report;
  std::string heatmap_out;
  size_t max_diffs = 10;
};

int Usage() {
  std::fprintf(stderr,
               "usage: rst_replay --journal FILE [--data FILE]\n"
               "                  [--view pointer|frozen|journal]\n"
               "                  [--algo probe|cl|journal]\n"
               "                  [--shards K|journal] [--threads N]\n"
               "                  [--report FILE] [--heatmap-out FILE]\n"
               "                  [--max-diffs N]\n"
               "(see the header of tools/rst_replay.cc)\n");
  return 2;
}

bool ParseFlags(int argc, char** argv, ReplayFlags* flags) {
  for (int i = 1; i < argc;) {
    const std::string name = argv[i];
    std::string value;
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[i + 1];
      i += 2;
    } else {
      value = "1";
      i += 1;
    }
    if (name == "--journal") {
      flags->journal = value;
    } else if (name == "--data") {
      flags->data = value;
    } else if (name == "--view") {
      flags->view = value;
    } else if (name == "--algo") {
      flags->algo = value;
    } else if (name == "--shards") {
      flags->shards = value;
    } else if (name == "--threads") {
      flags->threads = static_cast<size_t>(
          std::max(1L, std::strtol(value.c_str(), nullptr, 10)));
    } else if (name == "--report") {
      flags->report = value;
    } else if (name == "--heatmap-out") {
      flags->heatmap_out = value;
    } else if (name == "--max-diffs") {
      flags->max_diffs = static_cast<size_t>(
          std::max(0L, std::strtol(value.c_str(), nullptr, 10)));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", name.c_str());
      return false;
    }
  }
  return !flags->journal.empty();
}

WeightingOptions WeightingFromHeader(const obs::JournalHeader& header) {
  if (header.weighting == "lm") return {Weighting::kLanguageModel, 0.1};
  if (header.weighting == "binary") return {Weighting::kBinary, 0.1};
  return {Weighting::kTfIdf, 0.1};
}

TextMeasure MeasureFromHeader(const obs::JournalHeader& header) {
  if (header.measure == "cos") return TextMeasure::kCosine;
  if (header.measure == "sum") return TextMeasure::kSum;
  return TextMeasure::kExtendedJaccard;
}

/// Per-query comparison outcome feeding both the stderr diff lines and the
/// --report JSON.
struct QueryDiff {
  uint64_t index = 0;
  uint64_t recorded_digest = 0;
  uint64_t replayed_digest = 0;
  uint64_t recorded_answers = 0;
  uint64_t replayed_answers = 0;
  bool digest_match = false;
  bool stats_match = true;  ///< only meaningful when stats are comparable
  obs::JournalStats recorded_stats;
  obs::JournalStats replayed_stats;
};

std::string DigestHex(uint64_t digest) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

void AppendStatsJson(obs::JsonWriter* w, const obs::JournalStats& s) {
  w->BeginObject();
  w->Key("expansions");
  w->Uint(s.expansions);
  w->Key("pruned_entries");
  w->Uint(s.pruned_entries);
  w->Key("reported_entries");
  w->Uint(s.reported_entries);
  w->Key("bound_computations");
  w->Uint(s.bound_computations);
  w->Key("probes");
  w->Uint(s.probes);
  w->Key("pq_pops");
  w->Uint(s.pq_pops);
  w->Key("entries_created");
  w->Uint(s.entries_created);
  w->Key("io_node_reads");
  w->Uint(s.io_node_reads);
  w->Key("io_payload_blocks");
  w->Uint(s.io_payload_blocks);
  w->Key("io_payload_bytes");
  w->Uint(s.io_payload_bytes);
  w->Key("io_cache_hits");
  w->Uint(s.io_cache_hits);
  w->EndObject();
}

int Main(int argc, char** argv) {
  ReplayFlags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage();

  Result<obs::JournalFile> loaded = obs::ReadJournal(flags.journal);
  if (!loaded.ok()) {
    std::fprintf(stderr, "--journal: %s\n",
                 loaded.status().ToString().c_str());
    return 2;
  }
  const obs::JournalFile& journal = loaded.value();
  if (journal.truncated_lines > 0) {
    std::fprintf(stderr,
                 "note: %llu torn trailing line(s) skipped (crash-truncated "
                 "capture)\n",
                 static_cast<unsigned long long>(journal.truncated_lines));
  }
  if (journal.records.empty()) {
    std::fprintf(stderr, "journal has no query records\n");
    return 2;
  }

  const std::string data_path =
      flags.data.empty() ? journal.header.data : flags.data;
  if (data_path.empty()) {
    std::fprintf(stderr,
                 "journal header has no dataset path; pass --data\n");
    return 2;
  }
  Result<Dataset> data =
      LoadDatasetIds(data_path, WeightingFromHeader(journal.header));
  if (!data.ok()) {
    std::fprintf(stderr, "--data: %s\n", data.status().ToString().c_str());
    return 2;
  }
  const Dataset& dataset = data.value();

  const std::string view =
      flags.view == "journal" ? journal.header.view : flags.view;
  const std::string algo_name =
      flags.algo == "journal"
          ? journal.header.algo
          : (flags.algo == "cl" || flags.algo == "contribution-list"
                 ? "contribution_list"
                 : "probe");
  const uint64_t shards =
      flags.shards == "journal"
          ? journal.header.shards
          : static_cast<uint64_t>(
                std::max(0L, std::strtol(flags.shards.c_str(), nullptr, 10)));
  const bool use_sharded = shards > 0;
  if (use_sharded && flags.view != "journal") {
    std::fprintf(stderr,
                 "note: --view is ignored with a sharded replay (shards are "
                 "frozen trees)\n");
  }
  const bool use_frozen = view == "frozen" && !use_sharded;
  const RstknnAlgorithm algo = algo_name == "contribution_list"
                                   ? RstknnAlgorithm::kContributionList
                                   : RstknnAlgorithm::kProbe;
  // Stats depend on the algorithm and the index shape — tree kind and shard
  // partitioning, but not the view or thread count; digests depend on none
  // of these.
  const bool stats_comparable = algo_name == journal.header.algo &&
                                journal.header.tree == "iur" &&
                                shards == journal.header.shards;

  std::optional<IurTree> tree;
  std::optional<frozen::FrozenTree> frozen;
  std::optional<shard::ShardedIndex> sharded;
  if (use_sharded) {
    shard::ShardOptions shard_options;
    shard_options.num_shards = static_cast<size_t>(shards);
    sharded.emplace(shard::ShardedIndex::Build(dataset, shard_options));
  } else {
    tree.emplace(IurTree::BuildFromDataset(dataset, {}));
    if (use_frozen) frozen.emplace(frozen::FrozenTree::Freeze(*tree));
  }

  TextSimilarity sim(MeasureFromHeader(journal.header),
                     &dataset.corpus_max());
  StScorer scorer(&sim, {journal.header.alpha, dataset.max_dist()});

  // Reconstruct the queries. Docs need stable storage: TermVectors for
  // ad-hoc queries live in `docs` (journal weights round-trip exactly);
  // self-queries take the dataset object's own doc, as captured.
  const size_t n = journal.records.size();
  std::vector<TermVector> docs(n);
  std::vector<RstknnQuery> queries(n);
  for (size_t i = 0; i < n; ++i) {
    const obs::JournalQueryRecord& r = journal.records[i];
    RstknnQuery& q = queries[i];
    q.k = r.k;
    if (r.self != obs::JournalQueryRecord::kNoSelf &&
        r.self < dataset.size()) {
      const StObject& object = dataset.object(static_cast<ObjectId>(r.self));
      q.loc = object.loc;
      q.doc = &object.doc;
      q.self = static_cast<ObjectId>(r.self);
    } else {
      std::vector<TermWeight> terms;
      terms.reserve(r.terms.size());
      for (const auto& [term, weight] : r.terms) {
        terms.push_back({term, weight});
      }
      docs[i] = TermVector::FromSorted(std::move(terms));
      q.loc = {r.x, r.y};
      q.doc = &docs[i];
    }
  }

  // Execute — serial searcher loop or the batch runner; both accumulate the
  // same heatmap (batch merges per-worker recorders after the join).
  RstknnOptions options;
  options.algorithm = algo;
  obs::HeatmapRecorder heatmap;
  options.heatmap = &heatmap;
  std::vector<RstknnResult> results;
  RstknnStats total;
  Stopwatch wall;
  if (use_sharded && flags.threads <= 1) {
    const shard::ShardedSearcher searcher(&*sharded, &dataset, &scorer);
    ProbeScratch scratch;
    options.scratch = &scratch;
    options.publish_metrics = false;
    results.reserve(n);
    for (const RstknnQuery& q : queries) {
      shard::ShardedResult res = searcher.Search(q, options);
      results.push_back(RstknnResult{std::move(res.answers), res.stats});
    }
    heatmap.AddQueries(n);
  } else if (use_sharded) {
    exec::ThreadPool pool(flags.threads);
    exec::ShardedBatchRunner runner(&*sharded, &dataset, &scorer, &pool);
    runner.set_heatmap(&heatmap);
    results = runner.RunRstknn(queries, options);
  } else if (flags.threads <= 1) {
    const RstknnSearcher searcher =
        use_frozen ? RstknnSearcher(&*frozen, &dataset, &scorer)
                   : RstknnSearcher(&*tree, &dataset, &scorer);
    std::unique_ptr<ExplainIndex> explain_index;
    if (!use_frozen) {
      // One shared numbering for the whole replay instead of an O(tree)
      // rebuild per query.
      explain_index = std::make_unique<ExplainIndex>(*tree);
      options.explain_index = explain_index.get();
    }
    ProbeScratch scratch;
    options.scratch = &scratch;
    options.publish_metrics = false;
    results.reserve(n);
    for (const RstknnQuery& q : queries) {
      results.push_back(searcher.Search(q, options));
    }
    heatmap.AddQueries(n);
  } else {
    exec::ThreadPool pool(flags.threads);
    exec::BatchRunner runner =
        use_frozen ? exec::BatchRunner(&*frozen, &dataset, &scorer, &pool)
                   : exec::BatchRunner(&*tree, &dataset, &scorer, &pool);
    runner.set_heatmap(&heatmap);
    results = runner.RunRstknn(queries, options);
  }
  const double wall_ms = wall.ElapsedMillis();

  // Compare against the capture.
  std::vector<QueryDiff> diffs(n);
  size_t digest_mismatches = 0;
  size_t stats_mismatches = 0;
  for (size_t i = 0; i < n; ++i) {
    const obs::JournalQueryRecord& r = journal.records[i];
    QueryDiff& d = diffs[i];
    d.index = r.index;
    d.recorded_digest = r.answer_digest;
    d.replayed_digest = obs::AnswerDigest(results[i].answers);
    d.recorded_answers = r.answer_count;
    d.replayed_answers = results[i].answers.size();
    d.digest_match = d.recorded_digest == d.replayed_digest &&
                     d.recorded_answers == d.replayed_answers;
    d.recorded_stats = r.stats;
    d.replayed_stats = exec::ToJournalStats(results[i].stats);
    if (stats_comparable) {
      d.stats_match = d.replayed_stats == d.recorded_stats;
      if (!d.stats_match) ++stats_mismatches;
    }
    if (!d.digest_match) ++digest_mismatches;
    total.Merge(results[i].stats);
  }

  size_t printed = 0;
  for (const QueryDiff& d : diffs) {
    if (d.digest_match && d.stats_match) continue;
    if (printed++ >= flags.max_diffs) continue;
    if (!d.digest_match) {
      std::fprintf(stderr,
                   "query %llu: ANSWER DIGEST MISMATCH recorded=%s (%llu "
                   "answers) replayed=%s (%llu answers)\n",
                   static_cast<unsigned long long>(d.index),
                   DigestHex(d.recorded_digest).c_str(),
                   static_cast<unsigned long long>(d.recorded_answers),
                   DigestHex(d.replayed_digest).c_str(),
                   static_cast<unsigned long long>(d.replayed_answers));
    } else {
      std::fprintf(stderr,
                   "query %llu: stats diverged (expansions %llu->%llu, "
                   "pruned %llu->%llu, reported %llu->%llu, probes "
                   "%llu->%llu)\n",
                   static_cast<unsigned long long>(d.index),
                   static_cast<unsigned long long>(d.recorded_stats.expansions),
                   static_cast<unsigned long long>(d.replayed_stats.expansions),
                   static_cast<unsigned long long>(
                       d.recorded_stats.pruned_entries),
                   static_cast<unsigned long long>(
                       d.replayed_stats.pruned_entries),
                   static_cast<unsigned long long>(
                       d.recorded_stats.reported_entries),
                   static_cast<unsigned long long>(
                       d.replayed_stats.reported_entries),
                   static_cast<unsigned long long>(d.recorded_stats.probes),
                   static_cast<unsigned long long>(d.replayed_stats.probes));
    }
  }
  if (printed > flags.max_diffs) {
    std::fprintf(stderr, "... %zu more diffs suppressed (--max-diffs)\n",
                 printed - flags.max_diffs);
  }

  // The heatmap must reconcile EXACTLY with the summed stats — the same
  // contract ExplainRecorder::CheckReconciles enforces per query.
  const Status reconciled = heatmap.CheckReconciles(
      total.expansions, total.pruned_entries, total.reported_entries);
  if (!reconciled.ok()) {
    std::fprintf(stderr, "%s\n", reconciled.ToString().c_str());
  }

  // --- aggregate analytics ---
  const std::string view_desc =
      use_sharded ? std::to_string(shards) + " shards" : view + " view";
  std::printf("replayed %zu queries (%s, %s, %zu threads) in %.2f ms\n",
              n, algo_name.c_str(), view_desc.c_str(), flags.threads, wall_ms);
  std::printf("digest mismatches: %zu/%zu\n", digest_mismatches, n);
  if (stats_comparable) {
    std::printf("stats mismatches:  %zu/%zu\n", stats_mismatches, n);
  } else {
    std::printf("stats mismatches:  n/a (capture algo=%s tree=%s shards=%llu)\n",
                journal.header.algo.c_str(), journal.header.tree.c_str(),
                static_cast<unsigned long long>(journal.header.shards));
  }
  std::printf("heatmap reconciliation: %s\n",
              reconciled.ok() ? "exact" : "FAILED");

  std::printf("\nper-level prune efficiency:\n");
  std::printf("  %-6s %10s %10s %10s %10s %12s\n", "level", "visits",
              "pruned", "expanded", "reported", "prune_rate");
  for (const obs::HeatmapNodeCounters& level : heatmap.LevelSummaries()) {
    const uint64_t decided = level.pruned + level.reported_miss;
    std::printf("  %-6u %10llu %10llu %10llu %10llu %11.1f%%\n", level.level,
                static_cast<unsigned long long>(level.visits),
                static_cast<unsigned long long>(level.pruned),
                static_cast<unsigned long long>(level.expanded),
                static_cast<unsigned long long>(level.reported_hit +
                                                level.reported_miss),
                level.visits > 0
                    ? 100.0 * static_cast<double>(decided) /
                          static_cast<double>(level.visits)
                    : 0.0);
  }

  const obs::HeatmapNodeCounters& totals = heatmap.totals();
  const uint64_t fires = totals.lower_bound_fires + totals.upper_bound_fires +
                         totals.exact_fires;
  std::printf("\nbound-fire frequency (%llu decisions with a bound):\n",
              static_cast<unsigned long long>(fires));
  const auto fire_line = [fires](const char* name, uint64_t count) {
    std::printf("  %-12s %10llu %11.1f%%\n", name,
                static_cast<unsigned long long>(count),
                fires > 0 ? 100.0 * static_cast<double>(count) /
                                static_cast<double>(fires)
                          : 0.0);
  };
  fire_line("lower_bound", totals.lower_bound_fires);
  fire_line("upper_bound", totals.upper_bound_fires);
  fire_line("exact", totals.exact_fires);

  std::printf("\nhottest nodes (by visits):\n");
  std::vector<std::pair<uint64_t, obs::HeatmapNodeCounters>> hot(
      heatmap.nodes().begin(), heatmap.nodes().end());
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    if (a.second.visits != b.second.visits) {
      return a.second.visits > b.second.visits;
    }
    return a.first < b.first;
  });
  for (size_t i = 0; i < hot.size() && i < 10; ++i) {
    std::printf("  node %-6llu L%-3u visits=%llu pruned=%llu expanded=%llu "
                "reported=%llu\n",
                static_cast<unsigned long long>(hot[i].first),
                hot[i].second.level,
                static_cast<unsigned long long>(hot[i].second.visits),
                static_cast<unsigned long long>(hot[i].second.pruned),
                static_cast<unsigned long long>(hot[i].second.expanded),
                static_cast<unsigned long long>(hot[i].second.reported_hit +
                                                hot[i].second.reported_miss));
  }

  std::printf("\nhottest query terms (by occurrences):\n");
  std::map<uint32_t, std::pair<uint64_t, double>> term_heat;
  for (const RstknnQuery& q : queries) {
    if (q.doc == nullptr) continue;
    for (const TermWeight& tw : q.doc->entries()) {
      auto& [count, weight] = term_heat[tw.term];
      ++count;
      weight += static_cast<double>(tw.weight);
    }
  }
  std::vector<std::pair<uint32_t, std::pair<uint64_t, double>>> terms(
      term_heat.begin(), term_heat.end());
  std::sort(terms.begin(), terms.end(), [](const auto& a, const auto& b) {
    if (a.second.first != b.second.first) {
      return a.second.first > b.second.first;
    }
    return a.first < b.first;
  });
  for (size_t i = 0; i < terms.size() && i < 10; ++i) {
    std::printf("  term %-8u queries=%llu total_weight=%.3f\n",
                terms[i].first,
                static_cast<unsigned long long>(terms[i].second.first),
                terms[i].second.second);
  }

  if (!flags.heatmap_out.empty()) {
    const Status s = WriteStringToFileAtomic(flags.heatmap_out,
                                             heatmap.ToJson());
    if (!s.ok()) {
      std::fprintf(stderr, "--heatmap-out: %s\n", s.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "heatmap written to %s\n", flags.heatmap_out.c_str());
  }

  if (!flags.report.empty()) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("journal");
    w.String(flags.journal);
    w.Key("replay");
    w.BeginObject();
    w.Key("algo");
    w.String(algo_name);
    w.Key("view");
    w.String(view);
    w.Key("shards");
    w.Uint(shards);
    w.Key("threads");
    w.Uint(flags.threads);
    w.Key("stats_comparable");
    w.Bool(stats_comparable);
    w.EndObject();
    w.Key("queries");
    w.Uint(n);
    w.Key("digest_mismatches");
    w.Uint(digest_mismatches);
    w.Key("stats_mismatches");
    w.Uint(stats_comparable ? stats_mismatches : 0);
    w.Key("reconciled");
    w.Bool(reconciled.ok());
    w.Key("per_query");
    w.BeginArray();
    for (const QueryDiff& d : diffs) {
      w.BeginObject();
      w.Key("index");
      w.Uint(d.index);
      w.Key("digest_match");
      w.Bool(d.digest_match);
      w.Key("recorded_digest");
      w.String(DigestHex(d.recorded_digest));
      w.Key("replayed_digest");
      w.String(DigestHex(d.replayed_digest));
      w.Key("recorded_answers");
      w.Uint(d.recorded_answers);
      w.Key("replayed_answers");
      w.Uint(d.replayed_answers);
      if (stats_comparable) {
        w.Key("stats_match");
        w.Bool(d.stats_match);
      }
      w.Key("recorded_stats");
      AppendStatsJson(&w, d.recorded_stats);
      w.Key("replayed_stats");
      AppendStatsJson(&w, d.replayed_stats);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    const Status s = WriteStringToFileAtomic(flags.report, w.str());
    if (!s.ok()) {
      std::fprintf(stderr, "--report: %s\n", s.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "diff report written to %s\n", flags.report.c_str());
  }

  const bool failed =
      digest_mismatches > 0 || !reconciled.ok() ||
      (stats_comparable && stats_mismatches > 0);
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace rst

int main(int argc, char** argv) { return rst::Main(argc, argv); }
