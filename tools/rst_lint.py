#!/usr/bin/env python3
"""rst_lint: project-specific linter for the rst tree (DESIGN.md SS11.1).

Enforces the handful of correctness conventions that generic tooling cannot
know about:

  unchecked-status          every call to a Status/Result-returning function
                            must use the result; explicit discards need
                            `(void)` plus a suppression comment with a reason
  metric-name-literal       names passed to rst::obs entry points (GetCounter,
                            GetGauge, GetHistogram, QueryTrace, Enter,
                            AddCount, Publish) must be constants from
                            src/rst/obs/metric_names.h, never inline string
                            literals -- a typo'd literal is a silently
                            separate time series
  nondeterministic-query-path
                            no wall-clock or RNG primitives inside the query
                            subsystems; query results must be a pure function
                            of (index, query). Monotonic timing via
                            rst::Stopwatch is fine -- it feeds metrics, not
                            results
  raw-new-delete            no raw `new`/`delete` outside src/rst/storage/;
                            ownership lives in smart pointers and containers.
                            Placement new (constructing into storage someone
                            else owns) is additionally permitted in the node
                            arena sources listed in PLACEMENT_NEW_ALLOWED
  include-hygiene           project headers included as "rst/...", no
                            relative ("../") includes, no duplicates, and a
                            .cc file includes its own header first
  header-guard              include guards spell the path: src/rst/a/b.h
                            guards with RST_A_B_H_
  journal-fixture           checked-in workload journals (*.jsonl under the
                            scanned dirs, e.g. tests/fixtures/journals/) must
                            be strictly valid: one JSON object per line, a
                            complete header first, every record carrying the
                            full capture schema (DESIGN.md SS14). ReadJournal
                            tolerates torn tails from crashed captures;
                            fixtures get no such grace
  raw-sync-primitive        no std::mutex/shared_mutex/condition_variable/
                            lock_guard/unique_lock/... outside the annotated
                            wrappers in src/rst/common/mutex.h -- raw
                            primitives are invisible to clang's thread-safety
                            analysis (DESIGN.md SS16)
  mutex-guarded-by          a declared rst::Mutex/SharedMutex whose name is
                            never referenced by any RST_* thread-safety
                            annotation in the same file protects nothing the
                            analysis can see; annotate the data it guards
  atomics-rationale         every explicit std::memory_order_* argument needs
                            a `// rst-atomics: <reason>` comment on the same
                            line or within the 5 lines above it (one
                            comment covers an adjacent cluster of sites) --
                            orderings chosen silently rot silently
  manual-lock               manual .lock()/.unlock()/.try_lock() calls
                            (exception: the wrappers in common/mutex.h);
                            use the RAII guards so unlock is exception-safe
                            and the analysis sees the critical section
  thread-detach             std::thread::detach() orphans a thread past the
                            lifetime of everything it references; join it
  sleep-in-src              sleep_for/sleep_until/usleep/nanosleep inside
                            src/ -- library code must block on condition
                            variables or deadlines, never bare sleeps
                            (tests and bench drivers may sleep)
  bad-suppression           a suppression comment without a reason

Any finding is suppressible on its own line or the line above with

    // rst-lint: allow(<rule>) <reason>

The reason is mandatory; a bare allow() is itself an error.

Usage:
    rst_lint.py [--root DIR] [paths...]   lint (default: src tools bench tests fuzz)
    rst_lint.py --self-test               run against tools/lint_fixtures
    rst_lint.py --list-rules
"""

import argparse
import json
import os
import re
import sys

DEFAULT_SCAN_DIRS = ["src", "tools", "bench", "tests", "fuzz"]
# Fixture sources intentionally violate the rules; never lint them in a
# normal run.
EXCLUDED_DIRS = {os.path.join("tools", "lint_fixtures")}
SOURCE_EXTENSIONS = (".h", ".cc")
# Workload-journal fixtures (obs::ReadJournal inputs) checked by the
# journal-fixture rule.
JOURNAL_EXTENSIONS = (".jsonl",)

RULES = [
    "unchecked-status",
    "metric-name-literal",
    "nondeterministic-query-path",
    "raw-new-delete",
    "include-hygiene",
    "header-guard",
    "journal-fixture",
    "raw-sync-primitive",
    "mutex-guarded-by",
    "atomics-rationale",
    "manual-lock",
    "thread-detach",
    "sleep-in-src",
    "bad-suppression",
]

# Subsystems whose runtime behaviour must be a deterministic function of the
# index and the query. common/ (Stopwatch, Rng used only at build/generate
# time) and data/ (generators are explicitly seeded) are not query paths.
QUERY_PATH_DIRS = [
    os.path.join("src", "rst", d)
    for d in ("rstknn", "topk", "maxbrst", "frozen", "rtree", "iurtree",
              "text", "exec", "storage", "simd")
] + [
    # Fixture mirror so --self-test can exercise the rule.
    os.path.join("tools", "lint_fixtures", "bad", "querypath"),
]

# Raw new/delete are allowed only here (page-store arenas and the documented
# leaky singletons would otherwise all need suppressions).
RAW_NEW_ALLOWED_DIR = os.path.join("src", "rst", "storage")

# Placement new is not an ownership operation — it constructs into storage
# someone else owns — but a textual linter cannot tell `new (addr) T` from
# `new T` reliably enough to allow it everywhere. These sources (the IUR-tree
# node arena and its fixed-capacity entry array, plus the fixture mirror for
# --self-test) are the only places placement new belongs; plain new/delete
# remain banned there too.
PLACEMENT_NEW_ALLOWED = {
    os.path.join("src", "rst", "iurtree", "arena_array.h"),
    os.path.join("src", "rst", "iurtree", "node_arena.cc"),
    os.path.join("tools", "lint_fixtures", "good", "arena",
                 "placement_new.cc"),
}

PLACEMENT_NEW_RE = re.compile(r"\bnew\s*\(")

METRIC_NAMES_HEADER = os.path.join("src", "rst", "obs", "metric_names.h")

OBS_NAME_APIS = ("GetCounter", "GetGauge", "GetHistogram", "QueryTrace",
                 "Enter", "AddCount", "Publish")

NONDETERMINISTIC_TOKENS = [
    (re.compile(r"\bstd::rand\b|(?<![\w:])s?rand\s*\("), "C rand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937"), "std::mt19937"),
    (re.compile(r"\bsystem_clock\b"), "wall-clock (system_clock)"),
    (re.compile(r"\bstd::time\s*\(|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time()"),
    (re.compile(r"\blocaltime\b|\bgmtime\b"), "calendar time"),
]

SUPPRESS_RE = re.compile(r"//\s*rst-lint:\s*allow\(([\w\-, ]+)\)\s*(.*)")
EXPECT_RE = re.compile(r"//\s*expect-finding:\s*([\w\-]+)")

STATUS_DECL_RE = re.compile(
    r"(?:^|[;{}\s])(?:static\s+|virtual\s+|friend\s+)*"
    r"(?:[A-Za-z_]\w*::)*(?:Status|Result<[^;{}()=]{1,80}>)\s+"
    r"(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\(")

# A declaration of the same name with a clearly non-Status return type
# (reference or void) makes the name ambiguous for a purely textual linter;
# such names are dropped from the unchecked-status set rather than flagged
# wrongly (e.g. RstknnStats::Merge vs HistogramSnapshot::Merge).
NONSTATUS_DECL_RE = re.compile(
    r"(?:^|[;{}\s])(?:static\s+|virtual\s+|friend\s+)*"
    r"(?:[A-Za-z_][\w:<>, ]*&|void)\s+"
    r"(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\(")

# A statement that begins with an (optionally chained) call. Receivers may be
# identifiers, `.`/`->` chains, or `ns::` qualifications.
def _bare_call_re(name):
    return re.compile(
        r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*" + re.escape(name) + r"\s*\(")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


class SourceFile:
    """One parsed source file: raw lines plus comment/string-masked views
    (newline structure preserved so line numbers survive masking)."""

    def __init__(self, path, text):
        self.path = path
        self.lines = text.splitlines()
        nocomment = _mask(text, mask_strings=False)
        nostring = _mask(text, mask_strings=True)
        self.nocomment_lines = nocomment.splitlines()
        self.code_lines = nostring.splitlines()
        self.suppressions = {}  # line number -> set of rule names
        self.bad_suppressions = []  # line numbers of reason-less allows
        for i, line in enumerate(self.lines, start=1):
            m = SUPPRESS_RE.search(line)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            if not m.group(2).strip():
                # A reason-less allow() is reported AND does not suppress:
                # silently honouring it would let the justification rot away.
                self.bad_suppressions.append(i)
                continue
            self.suppressions[i] = rules

    def suppressed(self, line, rule):
        for candidate in (line, line - 1):
            if rule in self.suppressions.get(candidate, set()):
                return True
        return False


def _mask(text, mask_strings):
    """Replaces comments (and optionally string/char literals) with spaces,
    preserving newlines. A hand-rolled scanner: no regex can nest // inside
    strings inside comments correctly."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"' if not mask_strings else " ")
                i += 1
            elif c == "'":
                state = "char"
                out.append("'" if not mask_strings else " ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  " if mask_strings else c + nxt)
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote if not mask_strings else " ")
                i += 1
            elif c == "\n":  # unterminated (raw strings etc.) -- resync
                state = "code"
                out.append("\n")
                i += 1
            else:
                out.append(" " if mask_strings else c)
                i += 1
    return "".join(out)


def collect_status_functions(files):
    """Names of functions declared to return Status or Result<T> anywhere in
    the linted set. Name-based, so a same-named non-Status function would
    false-positive -- acceptable for this codebase, and suppressible."""
    names = set()
    ambiguous = set()
    for f in files:
        for line in f.code_lines:
            for m in STATUS_DECL_RE.finditer(line):
                name = m.group(1)
                if name not in ("operator",):
                    names.add(name)
            for m in NONSTATUS_DECL_RE.finditer(line):
                ambiguous.add(m.group(1))
    return names - ambiguous


def _statement_start(f, idx):
    """True when code line `idx` (0-based) begins a statement: the previous
    non-blank code line ended in ; { } : or )."""
    for j in range(idx - 1, -1, -1):
        prev = f.code_lines[j].strip()
        if not prev or prev.startswith("#"):
            continue
        return prev[-1] in ";{}:)"
    return True


def check_unchecked_status(f, status_names, findings):
    bare_res = [(name, _bare_call_re(name)) for name in status_names]
    for idx, code in enumerate(f.code_lines):
        lineno = idx + 1
        stripped = code.strip()
        if not stripped or stripped.startswith("#"):
            continue
        void_cast = re.search(
            r"\(\s*void\s*\)\s*(?:[A-Za-z_]\w*(?:\.|->|::))*([A-Za-z_]\w*)\s*\(",
            code)
        if void_cast and void_cast.group(1) in status_names:
            findings.append(Finding(
                f.path, lineno, "unchecked-status",
                "(void)-discard of Status-returning '%s' needs "
                "// rst-lint: allow(unchecked-status) <reason>"
                % void_cast.group(1)))
            continue
        if not _statement_start(f, idx):
            continue
        for name, rx in bare_res:
            m = rx.match(code)
            if not m:
                continue
            # The match must consume the whole call as a discarded
            # expression statement: reject `Status Foo(` declarations (the
            # regex cannot match those -- they start with the type), and
            # reject uses like `Foo(x).ok()` or `Foo(x) == y`.
            rest = code[m.end():]
            depth = 1
            k = 0
            while k < len(rest) and depth > 0:
                if rest[k] == "(":
                    depth += 1
                elif rest[k] == ")":
                    depth -= 1
                k += 1
            tail = rest[k:].strip() if depth == 0 else ""
            if depth != 0 or tail in (";", ""):
                findings.append(Finding(
                    f.path, lineno, "unchecked-status",
                    "result of Status-returning '%s' is silently dropped; "
                    "check it or discard with (void) + "
                    "allow(unchecked-status)" % name))
            break


def check_metric_name_literal(f, findings):
    rel = f.path.replace(os.sep, "/")
    if rel.endswith("src/rst/obs/metric_names.h"):
        return
    rx = re.compile(r"\b(%s)\s*\(\s*\"" % "|".join(OBS_NAME_APIS))
    for idx, line in enumerate(f.nocomment_lines):
        m = rx.search(line)
        if m:
            findings.append(Finding(
                f.path, idx + 1, "metric-name-literal",
                "inline string literal passed to %s(); use a constant from "
                "src/rst/obs/metric_names.h (rst::obs::names)" % m.group(1)))


def check_nondeterministic(f, findings, root):
    rel = os.path.relpath(f.path, root).replace(os.sep, "/")
    if not any(rel.startswith(d.replace(os.sep, "/") + "/")
               for d in QUERY_PATH_DIRS):
        return
    for idx, code in enumerate(f.code_lines):
        for rx, what in NONDETERMINISTIC_TOKENS:
            if rx.search(code):
                findings.append(Finding(
                    f.path, idx + 1, "nondeterministic-query-path",
                    "%s in a deterministic query path; results must be a "
                    "pure function of (index, query)" % what))


def check_raw_new_delete(f, findings, root):
    rel = os.path.relpath(f.path, root).replace(os.sep, "/")
    if rel.startswith(RAW_NEW_ALLOWED_DIR.replace(os.sep, "/") + "/"):
        return
    placement_ok = rel in {p.replace(os.sep, "/")
                           for p in PLACEMENT_NEW_ALLOWED}
    for idx, code in enumerate(f.code_lines):
        # Header names are not expressions (`#include <new>`).
        if INCLUDE_RE.match(code):
            continue
        # Deleted special members and operator new/delete declarations are
        # not ownership operations.
        scrubbed = re.sub(r"=\s*delete\b", "", code)
        scrubbed = re.sub(r"\boperator\s+(?:new|delete)\b", "", scrubbed)
        if placement_ok:
            scrubbed = PLACEMENT_NEW_RE.sub("(", scrubbed)
        m = re.search(r"\bnew\b|\bdelete\b(\s*\[\s*\])?", scrubbed)
        if m:
            findings.append(Finding(
                f.path, idx + 1, "raw-new-delete",
                "raw %s outside src/rst/storage/; use std::make_unique / "
                "containers, or justify with allow(raw-new-delete)"
                % m.group(0).split()[0]))


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')


def check_include_hygiene(f, findings, root):
    seen = {}
    first_include = None
    for idx, code in enumerate(f.nocomment_lines):
        m = INCLUDE_RE.match(code)
        if not m:
            continue
        lineno = idx + 1
        style, target = m.group(1), m.group(2)
        if first_include is None:
            first_include = (lineno, style, target)
        if target.startswith("rst/") and style == "<":
            findings.append(Finding(
                f.path, lineno, "include-hygiene",
                'project header included with <>; use #include "%s"'
                % target))
        if target.startswith("../") or "/../" in target:
            findings.append(Finding(
                f.path, lineno, "include-hygiene",
                "relative include '%s'; include project headers by full "
                "path from src/" % target))
        if target in seen:
            findings.append(Finding(
                f.path, lineno, "include-hygiene",
                "duplicate include of '%s' (first at line %d)"
                % (target, seen[target])))
        else:
            seen[target] = lineno
    # A library .cc must include its own header first, so every header is
    # verified self-contained by its own translation unit.
    rel = os.path.relpath(f.path, root).replace(os.sep, "/")
    if rel.startswith("src/") and rel.endswith(".cc"):
        own_header = rel[len("src/"):-len(".cc")] + ".h"
        if os.path.exists(os.path.join(root, "src", own_header)):
            if first_include is None or first_include[2] != own_header:
                findings.append(Finding(
                    f.path,
                    first_include[0] if first_include else 1,
                    "include-hygiene",
                    '.cc file must include its own header "%s" first'
                    % own_header))


def expected_guard(rel_path):
    stem = rel_path.replace(os.sep, "/")
    if stem.startswith("src/"):
        stem = stem[len("src/"):]
    return re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_"


def check_header_guard(f, findings, root):
    if not f.path.endswith(".h"):
        return
    rel = os.path.relpath(f.path, root)
    guard = expected_guard(rel)
    directives = [(i + 1, line.strip())
                  for i, line in enumerate(f.nocomment_lines)
                  if line.strip().startswith("#")]
    if not directives:
        findings.append(Finding(f.path, 1, "header-guard",
                                "missing include guard %s" % guard))
        return
    first_line, first = directives[0]
    ok = (first == "#ifndef %s" % guard and len(directives) >= 2 and
          directives[1][1] == "#define %s" % guard and
          directives[-1][1].startswith("#endif"))
    if not ok:
        findings.append(Finding(
            f.path, first_line, "header-guard",
            "include guard must be #ifndef/#define %s with a closing #endif"
            % guard))


# Schema for the journal-fixture rule, mirroring obs/journal.cc. Key sets are
# exact requirements; extra keys are tolerated (ReadJournal ignores them, and
# future versions may add fields).
JOURNAL_HEADER_KEYS = frozenset([
    "type", "version", "label", "data", "algo", "view", "tree", "measure",
    "weighting", "alpha", "threads", "sample_every", "provenance"])
JOURNAL_RECORD_KEYS = frozenset([
    "type", "index", "x", "y", "k", "terms", "wall_ms", "answer_count",
    "answer_digest", "stats"])
JOURNAL_DIGEST_RE = re.compile(r"^[0-9a-f]{16}$")


def check_journal_fixture(f, findings):
    def flag(lineno, message):
        findings.append(Finding(f.path, lineno, "journal-fixture", message))

    for lineno, line in enumerate(f.lines, start=1):
        if not line.strip():
            flag(lineno, "blank line in journal fixture")
            continue
        try:
            obj = json.loads(line)
        except ValueError as e:
            flag(lineno, "line is not valid JSON: %s" % e)
            continue
        if not isinstance(obj, dict):
            flag(lineno, "line must be a JSON object")
            continue
        kind = obj.get("type")
        if lineno == 1:
            if kind != "header":
                flag(lineno, "first line must be the journal header")
                continue
            missing = JOURNAL_HEADER_KEYS - obj.keys()
            if missing:
                flag(lineno, "header missing key(s): %s"
                     % ", ".join(sorted(missing)))
        elif kind == "header":
            flag(lineno, "duplicate header")
        elif kind == "query":
            missing = JOURNAL_RECORD_KEYS - obj.keys()
            if missing:
                flag(lineno, "record missing key(s): %s"
                     % ", ".join(sorted(missing)))
            elif not JOURNAL_DIGEST_RE.match(str(obj["answer_digest"])):
                flag(lineno, "answer_digest must be 16 lowercase hex chars")
        else:
            flag(lineno, "unknown record type %r" % kind)
    if not f.lines:
        flag(1, "journal fixture is empty")


# --- lock discipline (DESIGN.md SS16) -------------------------------------
#
# The annotated wrappers in src/rst/common/mutex.h are the single place raw
# standard-library synchronization primitives (and the manual .lock() /
# .unlock() calls that implement them) may appear. Everywhere else holds
# locks through rst::Mutex + RAII guards, so clang's -Wthread-safety
# analysis sees every acquisition.
SYNC_WRAPPER_HEADER = os.path.join("src", "rst", "common", "mutex.h")

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|recursive_timed_mutex|"
    r"timed_mutex|shared_timed_mutex|condition_variable_any|"
    r"condition_variable|lock_guard|unique_lock|shared_lock|scoped_lock)\b")

# Longest alternatives first: `try_lock` must not shadow `try_lock_shared`.
MANUAL_LOCK_RE = re.compile(
    r"(?:\.|->)\s*(try_lock_shared|unlock_shared|lock_shared|try_lock|"
    r"unlock|lock)\s*\(")

DETACH_RE = re.compile(r"(?:\.|->)\s*detach\s*\(\s*\)")

SLEEP_RE = re.compile(r"\b(sleep_for|sleep_until|usleep|nanosleep)\s*\(")
# Library code must block on condition variables or deadlines; tests and
# bench load drivers may sleep. The fixture mirror lets --self-test
# exercise the rule.
SLEEP_BANNED_DIRS = [
    "src",
    os.path.join("tools", "lint_fixtures", "bad", "srcsleep"),
]

# A Mutex/SharedMutex object declaration: `mutable rst::Mutex mu_;`,
# `Mutex run_mu_ RST_ACQUIRED_BEFORE(...)`, `SharedMutex mu_ = ...`.
# References (`Mutex&` parameters, `Mutex*`) do not declare a capability and
# are not matched.
MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:rst::)?(?:Mutex|SharedMutex)\s+"
    r"([A-Za-z_]\w*)\s*(?:;|=|RST_)")

# Argument lists of RST_GUARDED_BY(mu_), RST_REQUIRES(mu_), RST_EXCLUDES(a,
# b), ... -- any mention inside an annotation proves the analysis can see
# what the mutex protects.
ANNOTATION_ARGS_RE = re.compile(r"\bRST_[A-Z_]+\(([^()]*)\)")

ATOMIC_ORDER_RE = re.compile(
    r"\bstd::memory_order_(?:relaxed|consume|acquire|release|acq_rel|"
    r"seq_cst)\b")
ATOMIC_RATIONALE_RE = re.compile(r"//\s*rst-atomics:\s*\S")
# A rationale covers tokens on its own line and the next few lines; one
# comment above a CAS loop or a cluster of counter updates covers the whole
# cluster (coverage chains from site to site while gaps stay inside the
# window).
ATOMIC_WINDOW = 5


def check_lock_discipline(f, findings, root):
    rel = os.path.relpath(f.path, root).replace(os.sep, "/")
    is_wrapper = rel == SYNC_WRAPPER_HEADER.replace(os.sep, "/")
    sleep_banned = any(
        rel.startswith(d.replace(os.sep, "/") + "/")
        for d in SLEEP_BANNED_DIRS)
    for idx, code in enumerate(f.code_lines):
        lineno = idx + 1
        if not is_wrapper:
            m = RAW_SYNC_RE.search(code)
            if m:
                findings.append(Finding(
                    f.path, lineno, "raw-sync-primitive",
                    "raw std::%s is invisible to thread-safety analysis; "
                    "use the annotated wrappers in rst/common/mutex.h"
                    % m.group(1)))
            m = MANUAL_LOCK_RE.search(code)
            if m:
                findings.append(Finding(
                    f.path, lineno, "manual-lock",
                    "manual .%s() call; hold locks through the RAII guards "
                    "(MutexLock / ReaderMutexLock / WriterMutexLock) so the "
                    "critical section is exception-safe and analyzable"
                    % m.group(1)))
        m = DETACH_RE.search(code)
        if m:
            findings.append(Finding(
                f.path, lineno, "thread-detach",
                "detach() orphans a thread past the lifetime of everything "
                "it references; join it (see obs/runtime.cc for the "
                "stop-flag + CondVar shutdown pattern)"))
        if sleep_banned:
            m = SLEEP_RE.search(code)
            if m:
                findings.append(Finding(
                    f.path, lineno, "sleep-in-src",
                    "%s() in library code; block on a CondVar deadline "
                    "(WaitUntil/WaitFor) so shutdown can interrupt the wait"
                    % m.group(1)))


def check_mutex_guarded_by(f, findings):
    refs = set()
    for code in f.code_lines:
        for m in ANNOTATION_ARGS_RE.finditer(code):
            refs.update(re.findall(r"[A-Za-z_]\w*", m.group(1)))
    for idx, code in enumerate(f.code_lines):
        m = MUTEX_DECL_RE.match(code)
        if m and m.group(1) not in refs:
            findings.append(Finding(
                f.path, idx + 1, "mutex-guarded-by",
                "mutex '%s' is never named by any RST_* annotation in this "
                "file; mark what it protects with RST_GUARDED_BY(%s) (and "
                "RST_REQUIRES/RST_EXCLUDES on the methods that take it)"
                % (m.group(1), m.group(1))))


def check_atomics_rationale(f, findings):
    last_covered = None  # 0-based index of the most recent covered site
    for idx, code in enumerate(f.code_lines):
        if not ATOMIC_ORDER_RE.search(code):
            continue
        lo = max(0, idx - ATOMIC_WINDOW)
        covered = any(ATOMIC_RATIONALE_RE.search(f.lines[j])
                      for j in range(lo, idx + 1))
        if not covered and last_covered is not None and \
                idx - last_covered <= ATOMIC_WINDOW:
            covered = True  # same cluster as an already-justified site
        if covered:
            last_covered = idx
        else:
            findings.append(Finding(
                f.path, idx + 1, "atomics-rationale",
                "explicit memory_order without a nearby "
                "// rst-atomics: <reason> comment; say why this ordering "
                "is sufficient (what publishes, what acquires)"))


def lint_files(paths, root):
    files = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                files.append(SourceFile(path, fh.read()))
        except OSError as e:
            print("rst_lint: cannot read %s: %s" % (path, e), file=sys.stderr)
            return None
    journal_files = [f for f in files
                     if f.path.endswith(JOURNAL_EXTENSIONS)]
    files = [f for f in files if not f.path.endswith(JOURNAL_EXTENSIONS)]
    status_names = collect_status_functions(files)
    all_findings = []
    for f in journal_files:
        findings = []
        check_journal_fixture(f, findings)
        all_findings.extend(findings)
    for f in files:
        findings = []
        check_unchecked_status(f, status_names, findings)
        check_metric_name_literal(f, findings)
        check_nondeterministic(f, findings, root)
        check_raw_new_delete(f, findings, root)
        check_include_hygiene(f, findings, root)
        check_header_guard(f, findings, root)
        check_lock_discipline(f, findings, root)
        check_mutex_guarded_by(f, findings)
        check_atomics_rationale(f, findings)
        for lineno in f.bad_suppressions:
            findings.append(Finding(
                f.path, lineno, "bad-suppression",
                "rst-lint: allow(...) requires a reason after the closing "
                "parenthesis"))
        for finding in findings:
            if finding.rule != "bad-suppression" and \
                    f.suppressed(finding.line, finding.rule):
                continue
            all_findings.append(finding)
    all_findings.sort(key=lambda x: (x.path, x.line))
    return all_findings


def gather_sources(root, scan_dirs):
    paths = []
    for d in scan_dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            rel_dir = os.path.relpath(dirpath, root)
            if any(rel_dir == ex or rel_dir.startswith(ex + os.sep)
                   for ex in EXCLUDED_DIRS):
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS + JOURNAL_EXTENSIONS):
                    paths.append(os.path.join(dirpath, name))
    return sorted(paths)


def self_test(root):
    """Fixture check: every good/ file lints clean; every bad/ file produces
    exactly the rules its `// expect-finding:` comments announce."""
    fixtures = os.path.join(root, "tools", "lint_fixtures")
    good_dir = os.path.join(fixtures, "good")
    bad_dir = os.path.join(fixtures, "bad")
    failures = 0

    good = gather_sources(good_dir, ["."])
    findings = lint_files(good, root)
    if findings is None:
        return 2
    for f in findings:
        print("SELF-TEST FAIL (good file flagged): %s" % f)
        failures += 1
    if not good:
        print("SELF-TEST FAIL: no good fixtures under %s" % good_dir)
        failures += 1

    bad = gather_sources(bad_dir, ["."])
    if not bad:
        print("SELF-TEST FAIL: no bad fixtures under %s" % bad_dir)
        failures += 1
    for path in bad:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        expected = sorted(EXPECT_RE.findall(text))
        if not expected:
            print("SELF-TEST FAIL: %s declares no expect-finding" % path)
            failures += 1
            continue
        findings = lint_files([path], root)
        actual = sorted(f.rule for f in findings)
        if actual != expected:
            print("SELF-TEST FAIL: %s\n  expected %s\n  got      %s" %
                  (path, expected, actual))
            for f in findings:
                print("    %s" % f)
            failures += 1
    if failures == 0:
        print("rst_lint self-test: %d good, %d bad fixtures OK"
              % (len(good), len(bad)))
        return 0
    return 1


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of this "
                             "script's directory)")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the linter against tools/lint_fixtures")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: %s)"
                             % " ".join(DEFAULT_SCAN_DIRS))
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(root)

    if args.self_test:
        return self_test(root)

    if args.paths:
        paths = []
        for p in args.paths:
            if os.path.isdir(p):
                paths.extend(gather_sources(p, ["."]))
            else:
                paths.append(p)
    else:
        paths = gather_sources(root, DEFAULT_SCAN_DIRS)

    if not paths:
        print("rst_lint: nothing to lint", file=sys.stderr)
        return 2
    findings = lint_files(paths, root)
    if findings is None:
        return 2
    for f in findings:
        print(f)
    if findings:
        print("rst_lint: %d finding(s) in %d file(s)"
              % (len(findings), len({f.path for f in findings})))
        return 1
    print("rst_lint: %d files clean" % len(paths))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
