/// Fuzz target: the JSON parser and MetricsSnapshot decoding on arbitrary
/// bytes.
///
/// Snapshots cross process boundaries (bench_diff reads files written by
/// earlier CLI runs, CI gates diff checked-in baselines), so FromJson must
/// tolerate any bytes a previous version — or a corrupted disk — may hand it.

#include <cstdint>
#include <string>
#include <string_view>

#include "rst/obs/json.h"
#include "rst/obs/metrics.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  rst::Result<rst::obs::JsonValue> parsed =
      rst::obs::JsonValue::Parse(std::string_view(text));
  if (parsed.ok()) {
    // rst-lint: allow(unchecked-status) fuzz target: both outcomes valid, only absence of crashes matters
    (void)rst::obs::MetricsSnapshot::FromJsonValue(parsed.value());
  }
  // Also drive the one-shot entry point so its parse-then-decode glue is
  // covered even when JsonValue::Parse rejects the prefix differently.
  // rst-lint: allow(unchecked-status) fuzz target: both outcomes valid, only absence of crashes matters
  (void)rst::obs::MetricsSnapshot::FromJson(text);
  return 0;
}
