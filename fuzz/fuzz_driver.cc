/// Standalone driver so fuzz targets build and run under any C++20 toolchain
/// (the CI fuzz-smoke job, plain gcc). When RST_ENABLE_FUZZERS is ON and the
/// compiler is clang, CMake links the real libFuzzer (-fsanitize=fuzzer)
/// instead and this file is not compiled into the target.
///
/// Usage: <target> [--iters N] [--seed S] <corpus-file-or-dir>...
///
/// The driver first replays every corpus input through
/// LLVMFuzzerTestOneInput, then runs N extra iterations on mutated copies of
/// corpus entries. Mutations are driven by a fixed-seed xorshift64 PRNG — no
/// wall clock, no global rand — so a given (seed, corpus) pair exercises
/// byte-identical inputs on every run, keeping the CI smoke job
/// reproducible. See DESIGN.md §11.3.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// Crash reproduction (--crash-out): the input being executed when a fatal
// signal arrives is dumped with async-signal-safe syscalls only, so the CI
// fuzz-smoke job can upload the exact offending bytes as an artifact.
const uint8_t* g_current_data = nullptr;
size_t g_current_size = 0;
const char* g_crash_path = nullptr;

extern "C" void DumpCurrentInputAndDie(int sig) {
  if (g_crash_path != nullptr && g_current_data != nullptr) {
    const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      size_t off = 0;
      while (off < g_current_size) {
        const ssize_t n =
            ::write(fd, g_current_data + off, g_current_size - off);
        if (n <= 0) break;
        off += static_cast<size_t>(n);
      }
      ::close(fd);
    }
  }
  ::_Exit(128 + sig);
}

void InstallCrashHandlers() {
  for (int sig : {SIGABRT, SIGSEGV, SIGILL, SIGFPE, SIGBUS}) {
    std::signal(sig, DumpCurrentInputAndDie);
  }
}

int RunOne(const uint8_t* data, size_t size) {
  g_current_data = data;
  g_current_size = size;
  const int rc = LLVMFuzzerTestOneInput(data, size);
  g_current_data = nullptr;
  g_current_size = 0;
  return rc;
}

/// xorshift64: tiny, deterministic, and decoupled from <random> so the
/// lint rule banning nondeterminism in query paths stays trivially true here.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed != 0 ? seed : 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  // Unbiased enough for mutation scheduling; not for statistics.
  size_t Below(size_t n) { return n == 0 ? 0 : static_cast<size_t>(Next() % n); }

 private:
  uint64_t state_;
};

std::vector<uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void CollectCorpus(const char* arg, std::vector<std::vector<uint8_t>>* corpus,
                   std::vector<std::string>* names) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    // Sort directory entries so corpus order (and thus every mutation) is
    // independent of readdir order.
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(arg)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& p : files) {
      corpus->push_back(ReadFile(p));
      names->push_back(p.string());
    }
  } else if (fs::is_regular_file(arg, ec)) {
    corpus->push_back(ReadFile(arg));
    names->push_back(arg);
  } else {
    std::fprintf(stderr, "fuzz_driver: no such corpus input: %s\n", arg);
    std::exit(2);
  }
}

/// One structural edit chosen by `rng`: flip, insert, erase, truncate,
/// duplicate a span, or splice in a chunk of another corpus entry.
void MutateOnce(Rng& rng, const std::vector<std::vector<uint8_t>>& corpus,
                std::vector<uint8_t>* buf) {
  switch (rng.Below(6)) {
    case 0:  // flip a byte
      if (!buf->empty()) (*buf)[rng.Below(buf->size())] ^= static_cast<uint8_t>(1 + rng.Below(255));
      break;
    case 1: {  // insert a random byte
      const size_t at = rng.Below(buf->size() + 1);
      buf->insert(buf->begin() + static_cast<ptrdiff_t>(at),
                  static_cast<uint8_t>(rng.Below(256)));
      break;
    }
    case 2: {  // erase a short span
      if (buf->empty()) break;
      const size_t at = rng.Below(buf->size());
      const size_t len = 1 + rng.Below(std::min<size_t>(16, buf->size() - at));
      buf->erase(buf->begin() + static_cast<ptrdiff_t>(at),
                 buf->begin() + static_cast<ptrdiff_t>(at + len));
      break;
    }
    case 3:  // truncate
      if (!buf->empty()) buf->resize(rng.Below(buf->size()));
      break;
    case 4: {  // duplicate a span (grows structured payloads)
      if (buf->empty() || buf->size() > (1u << 20)) break;
      const size_t at = rng.Below(buf->size());
      const size_t len = 1 + rng.Below(std::min<size_t>(32, buf->size() - at));
      std::vector<uint8_t> span(buf->begin() + static_cast<ptrdiff_t>(at),
                                buf->begin() + static_cast<ptrdiff_t>(at + len));
      buf->insert(buf->begin() + static_cast<ptrdiff_t>(at), span.begin(), span.end());
      break;
    }
    case 5: {  // splice a chunk from another corpus entry
      const std::vector<uint8_t>& other = corpus[rng.Below(corpus.size())];
      if (other.empty()) break;
      const size_t src = rng.Below(other.size());
      const size_t len = 1 + rng.Below(std::min<size_t>(64, other.size() - src));
      const size_t at = rng.Below(buf->size() + 1);
      buf->insert(buf->begin() + static_cast<ptrdiff_t>(at),
                  other.begin() + static_cast<ptrdiff_t>(src),
                  other.begin() + static_cast<ptrdiff_t>(src + len));
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t iters = 0;
  uint64_t seed = 0x5eedULL;
  std::vector<std::vector<uint8_t>> corpus;
  std::vector<std::string> names;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--crash-out") == 0 && i + 1 < argc) {
      g_crash_path = argv[++i];
    } else {
      CollectCorpus(argv[i], &corpus, &names);
    }
  }
  if (corpus.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--iters N] [--seed S] [--crash-out FILE] "
                 "<corpus-file-or-dir>...\n",
                 argv[0]);
    return 2;
  }
  InstallCrashHandlers();

  for (size_t i = 0; i < corpus.size(); ++i) {
    RunOne(corpus[i].data(), corpus[i].size());
  }
  std::printf("fuzz_driver: replayed %zu corpus inputs\n", corpus.size());

  Rng rng(seed);
  for (uint64_t i = 0; i < iters; ++i) {
    std::vector<uint8_t> buf = corpus[rng.Below(corpus.size())];
    const size_t edits = 1 + rng.Below(8);
    for (size_t e = 0; e < edits; ++e) MutateOnce(rng, corpus, &buf);
    RunOne(buf.data(), buf.size());
    if ((i + 1) % 5000 == 0) {
      std::printf("fuzz_driver: %llu/%llu iterations\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(iters));
    }
  }
  std::printf("fuzz_driver: done (%llu mutated iterations, seed %llu)\n",
              static_cast<unsigned long long>(iters),
              static_cast<unsigned long long>(seed));
  return 0;
}
