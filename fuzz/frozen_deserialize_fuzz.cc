/// Fuzz target: FrozenTree::Deserialize on arbitrary bytes.
///
/// Deserialize is the trust boundary for persisted indexes (--load-index): it
/// must reject any corrupted or adversarial snapshot with a Status, never a
/// crash, OOM, or — worst — a silently inconsistent tree. On an accepting
/// parse we re-run the deep invariant check and round-trip through
/// SerializeToString, trapping if either disagrees with acceptance.

#include <cstdint>
#include <string>

#include "rst/frozen/frozen.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  rst::Result<rst::frozen::FrozenTree> tree =
      rst::frozen::FrozenTree::Deserialize(bytes);
  if (!tree.ok()) return 0;
  // Accepted snapshots must be fully coherent: the invariant check is part of
  // Deserialize itself, so a failure here means acceptance and validation
  // disagree — exactly the bug class this harness exists to catch.
  const rst::Status st = tree.value().CheckInvariants();
  if (!st.ok()) __builtin_trap();
  const std::string out = tree.value().SerializeToString();
  if (out.empty()) __builtin_trap();
  return 0;
}
