/// Fuzz target: the plain-text dataset parsers on arbitrary bytes.
///
/// ParseDatasetTsv / ParseDatasetIds are the entry points for user-supplied
/// collections (real POI / tweet dumps). Their contract is total: any byte
/// sequence in, a Dataset or a Status out — never a throw, crash, or
/// unbounded allocation (the id parser's term-id sanity cap exists because
/// this harness's predecessor review found an O(max-id) allocation).

#include <cstdint>
#include <string_view>

#include "rst/data/csv.h"
#include "rst/text/vocabulary.h"
#include "rst/text/weighting.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const rst::WeightingOptions weighting;
  {
    rst::Vocabulary vocab;
    // rst-lint: allow(unchecked-status) fuzz target: both outcomes valid, only absence of crashes matters
    (void)rst::ParseDatasetTsv(text, &vocab, weighting);
  }
  // rst-lint: allow(unchecked-status) fuzz target: both outcomes valid, only absence of crashes matters
  (void)rst::ParseDatasetIds(text, weighting);
  return 0;
}
