// AVX2 implementations of the balanced sorted-merge kernels.
//
// Strategy: the scalar reference fixes the *value* contract — matched pairs
// visited in ascending term order, doubles accumulated left-to-right — so
// only the match *finding* is vectorized. Blocks of 8 term ids from each run
// are compared all-pairs (8 lane rotations of one side); the resulting lane
// masks give the matching positions of both blocks, and the per-match work
// (double multiply-add, float min) then runs scalar over the mask bits in
// ascending order. Since ascending bit position == ascending term id on both
// sides, the emission order — and therefore every accumulated double — is
// bit-identical to the scalar kernel. Tails (< 8 remaining on either side)
// finish with the scalar two-pointer walk from the current positions.
//
// Block advance follows the classic rule: step the side whose block maximum
// is smaller (both on a tie). Every common term's two enclosing blocks are
// active together exactly once, so no match is missed or double-counted.
//
// This translation unit is compiled with -mavx2; nothing here executes
// unless runtime CPUID detection (rst::simd::DetectedLevel) confirmed AVX2,
// so the binary stays safe on older x86-64.

#include "rst/simd/simd.h"

#if defined(__x86_64__) && defined(RST_SIMD_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

namespace rst::simd {

namespace {

/// Loads the 8 term ids of entries[0..7] (AoS {u32 term, f32 weight} pairs)
/// into one vector: even 32-bit lanes of two 256-bit loads, packed.
inline __m256i LoadTerms8(const TermWeight* entries) {
  const __m256i lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(entries));
  const __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(entries + 4));
  const __m256i even = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m256i lo_packed = _mm256_permutevar8x32_epi32(lo, even);
  const __m256i hi_packed = _mm256_permutevar8x32_epi32(hi, even);
  // lanes 0-3 of lo_packed and hi_packed hold the terms; fuse the low halves.
  return _mm256_permute2x128_si256(lo_packed, hi_packed, 0x20);
}

/// Rotates 8 32-bit lanes left by r (lane i receives lane (i + r) & 7).
template <int r>
inline __m256i RotateLanes(__m256i v) {
  const __m256i idx = _mm256_setr_epi32(
      (0 + r) & 7, (1 + r) & 7, (2 + r) & 7, (3 + r) & 7, (4 + r) & 7,
      (5 + r) & 7, (6 + r) & 7, (7 + r) & 7);
  return _mm256_permutevar8x32_epi32(v, idx);
}

/// Rotates an 8-bit lane mask left by r (bit j of the result covers bit
/// (j - r) & 7 of the input) — realigns an a-lane match mask to b lanes.
inline uint32_t RotateMask8(uint32_t m, int r) {
  return ((m << r) | (m >> (8 - r))) & 0xFFu;
}

/// Lane mask of the terms in `t` that lie inside [lo, hi]. Unsigned compare
/// via the sign-bias trick — term ids are arbitrary uint32 values.
inline uint32_t LanesInRange8(__m256i t, TermId lo, TermId hi) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int32_t>(0x80000000u));
  const __m256i tt = _mm256_xor_si256(t, bias);
  const __m256i vlo =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int32_t>(lo)), bias);
  const __m256i vhi =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int32_t>(hi)), bias);
  const __m256i outside = _mm256_or_si256(_mm256_cmpgt_epi32(vlo, tt),
                                          _mm256_cmpgt_epi32(tt, vhi));
  return ~static_cast<uint32_t>(
             _mm256_movemask_ps(_mm256_castsi256_ps(outside))) &
         0xFFu;
}

/// All-pairs match masks between two blocks of 8 sorted unique terms:
/// bit i of `ma` ⇔ a[i] matches something in b, bit j of `mb` ⇔ b[j]
/// matches something in a. Set-bit ranks pair up: the nth set bit of `ma`
/// and the nth set bit of `mb` name the same shared term.
inline void MatchMasks8(__m256i ta, __m256i tb, uint32_t* ma, uint32_t* mb) {
  // r = 0 needs no rotation — and strict sortedness means a fully matched
  // unrotated compare is the whole answer (a[i] == b[i] for all i leaves no
  // room for cross-lane matches), so identical stretches pay one round.
  const __m256i eq0 = _mm256_cmpeq_epi32(ta, tb);
  const uint32_t m0 =
      static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(eq0)));
  if (m0 == 0xFFu) {
    *ma = m0;
    *mb = m0;
    return;
  }
  uint32_t a_mask = m0;
  uint32_t b_mask = m0;
#define RST_SIMD_MATCH_ROUND(r)                                             \
  {                                                                         \
    const __m256i eq = _mm256_cmpeq_epi32(ta, RotateLanes<r>(tb));          \
    const uint32_t m = static_cast<uint32_t>(                               \
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)));                       \
    a_mask |= m;                                                            \
    b_mask |= RotateMask8(m, r);                                            \
  }
  RST_SIMD_MATCH_ROUND(1)
  RST_SIMD_MATCH_ROUND(2)
  RST_SIMD_MATCH_ROUND(3)
  RST_SIMD_MATCH_ROUND(4)
  RST_SIMD_MATCH_ROUND(5)
  RST_SIMD_MATCH_ROUND(6)
  RST_SIMD_MATCH_ROUND(7)
#undef RST_SIMD_MATCH_ROUND
  *ma = a_mask;
  *mb = b_mask;
}

inline int Ctz(uint32_t m) { return __builtin_ctz(m); }

/// Elements of `a` walked scalar after a dense (>= 6 of 8 matched) block
/// pair before vector probing resumes; see the dense fallback in DotAvx2.
constexpr ptrdiff_t RST_SIMD_DENSE_RUN = 64;

double DotAvx2(const TermWeight* a, size_t a_len, const TermWeight* b,
               size_t b_len) {
  double dot = 0.0;
  const TermWeight* ia = a;
  const TermWeight* ib = b;
  const TermWeight* ea = a + a_len;
  const TermWeight* eb = b + b_len;
  __m256i ta = _mm256_setzero_si256();
  const TermWeight* ta_at = nullptr;  // block `ta` currently holds
  while (ea - ia >= 8 && eb - ib >= 8) {
    const TermId a_max = ia[7].term;
    const TermId b_max = ib[7].term;
    // Disjoint-block screen: skip the all-pairs rounds when the ranges
    // cannot overlap at all (the common case on low-overlap inputs).
    if (a_max < ib[0].term) {
      ia += 8;
      continue;
    }
    if (b_max < ia[0].term) {
      ib += 8;
      continue;
    }
    if (ta_at != ia) {
      ta = LoadTerms8(ia);
      ta_at = ia;
    }
    // Range screen: every match is an a-term inside b's block range, so an
    // empty in-range mask proves zero matches without touching b's terms —
    // the dominant case when a few query terms probe a long run (the
    // balanced-kernel view of the skewed shape).
    if (LanesInRange8(ta, ib[0].term, b_max) == 0) {
      if (a_max < b_max) {
        ia += 8;
      } else if (b_max < a_max) {
        ib += 8;
      } else {
        ia += 8;
        ib += 8;
      }
      continue;
    }
    uint32_t ma, mb;
    MatchMasks8(ta, LoadTerms8(ib), &ma, &mb);
    const bool dense = __builtin_popcount(ma) >= 6;
    while (ma != 0) {
      const int i = Ctz(ma);
      const int j = Ctz(mb);
      ma &= ma - 1;
      mb &= mb - 1;
      dot += static_cast<double>(ia[i].weight) * ib[j].weight;
    }
    if (a_max < b_max) {
      ia += 8;
    } else if (b_max < a_max) {
      ib += 8;
    } else {
      ia += 8;
      ib += 8;
    }
    if (dense) {
      // Near-identical stretches are scalar-optimal: the in-order double
      // accumulation chain is the bound and the match branch predicts, so
      // walk the next stretch with the reference merge (identical per-match
      // ops — bit-equality unaffected) before re-probing with vectors.
      const TermWeight* stop = ia + (RST_SIMD_DENSE_RUN < ea - ia
                                         ? RST_SIMD_DENSE_RUN
                                         : ea - ia);
      while (ia != stop && ib != eb) {
        if (ia->term < ib->term) {
          ++ia;
        } else if (ib->term < ia->term) {
          ++ib;
        } else {
          dot += static_cast<double>(ia->weight) * ib->weight;
          ++ia;
          ++ib;
        }
      }
    }
  }
  while (ia != ea && ib != eb) {
    if (ia->term < ib->term) {
      ++ia;
    } else if (ib->term < ia->term) {
      ++ib;
    } else {
      dot += static_cast<double>(ia->weight) * ib->weight;
      ++ia;
      ++ib;
    }
  }
  return dot;
}

size_t OverlapAvx2(const TermWeight* a, size_t a_len, const TermWeight* b,
                   size_t b_len) {
  size_t overlap = 0;
  const TermWeight* ia = a;
  const TermWeight* ib = b;
  const TermWeight* ea = a + a_len;
  const TermWeight* eb = b + b_len;
  __m256i ta = _mm256_setzero_si256();
  const TermWeight* ta_at = nullptr;
  while (ea - ia >= 8 && eb - ib >= 8) {
    const TermId a_max = ia[7].term;
    const TermId b_max = ib[7].term;
    if (a_max < ib[0].term) {
      ia += 8;
      continue;
    }
    if (b_max < ia[0].term) {
      ib += 8;
      continue;
    }
    if (ta_at != ia) {
      ta = LoadTerms8(ia);
      ta_at = ia;
    }
    if (LanesInRange8(ta, ib[0].term, b_max) == 0) {
      if (a_max < b_max) {
        ia += 8;
      } else if (b_max < a_max) {
        ib += 8;
      } else {
        ia += 8;
        ib += 8;
      }
      continue;
    }
    uint32_t ma, mb;
    MatchMasks8(ta, LoadTerms8(ib), &ma, &mb);
    const int matched = __builtin_popcount(ma);
    overlap += static_cast<size_t>(matched);
    if (a_max < b_max) {
      ia += 8;
    } else if (b_max < a_max) {
      ib += 8;
    } else {
      ia += 8;
      ib += 8;
    }
    if (matched >= 6) {
      const TermWeight* stop = ia + (RST_SIMD_DENSE_RUN < ea - ia
                                         ? RST_SIMD_DENSE_RUN
                                         : ea - ia);
      while (ia != stop && ib != eb) {
        if (ia->term < ib->term) {
          ++ia;
        } else if (ib->term < ia->term) {
          ++ib;
        } else {
          ++overlap;
          ++ia;
          ++ib;
        }
      }
    }
  }
  while (ia != ea && ib != eb) {
    if (ia->term < ib->term) {
      ++ia;
    } else if (ib->term < ia->term) {
      ++ib;
    } else {
      ++overlap;
      ++ia;
      ++ib;
    }
  }
  return overlap;
}

size_t IntersectMinAvx2(const TermWeight* a, size_t a_len, const TermWeight* b,
                        size_t b_len, TermWeight* out) {
  TermWeight* o = out;
  const TermWeight* ia = a;
  const TermWeight* ib = b;
  const TermWeight* ea = a + a_len;
  const TermWeight* eb = b + b_len;
  __m256i ta = _mm256_setzero_si256();
  const TermWeight* ta_at = nullptr;
  while (ea - ia >= 8 && eb - ib >= 8) {
    const TermId a_max = ia[7].term;
    const TermId b_max = ib[7].term;
    if (a_max < ib[0].term) {
      ia += 8;
      continue;
    }
    if (b_max < ia[0].term) {
      ib += 8;
      continue;
    }
    if (ta_at != ia) {
      ta = LoadTerms8(ia);
      ta_at = ia;
    }
    if (LanesInRange8(ta, ib[0].term, b_max) == 0) {
      if (a_max < b_max) {
        ia += 8;
      } else if (b_max < a_max) {
        ib += 8;
      } else {
        ia += 8;
        ib += 8;
      }
      continue;
    }
    uint32_t ma, mb;
    MatchMasks8(ta, LoadTerms8(ib), &ma, &mb);
    const bool dense = __builtin_popcount(ma) >= 6;
    while (ma != 0) {
      const int i = Ctz(ma);
      const int j = Ctz(mb);
      ma &= ma - 1;
      mb &= mb - 1;
      const float w = std::min(ia[i].weight, ib[j].weight);
      if (w > 0.0f) *o++ = {ia[i].term, w};
    }
    if (a_max < b_max) {
      ia += 8;
    } else if (b_max < a_max) {
      ib += 8;
    } else {
      ia += 8;
      ib += 8;
    }
    if (dense) {
      const TermWeight* stop = ia + (RST_SIMD_DENSE_RUN < ea - ia
                                         ? RST_SIMD_DENSE_RUN
                                         : ea - ia);
      while (ia != stop && ib != eb) {
        if (ia->term < ib->term) {
          ++ia;
        } else if (ib->term < ia->term) {
          ++ib;
        } else {
          const float w = std::min(ia->weight, ib->weight);
          if (w > 0.0f) *o++ = {ia->term, w};
          ++ia;
          ++ib;
        }
      }
    }
  }
  while (ia != ea && ib != eb) {
    if (ia->term < ib->term) {
      ++ia;
    } else if (ib->term < ia->term) {
      ++ib;
    } else {
      const float w = std::min(ia->weight, ib->weight);
      if (w > 0.0f) *o++ = {ia->term, w};
      ++ia;
      ++ib;
    }
  }
  return static_cast<size_t>(o - out);
}

size_t UnionMaxAvx2(const TermWeight* a, size_t a_len, const TermWeight* b,
                    size_t b_len, TermWeight* out) {
  // The union's output interleaves both runs, so the win here is bulk block
  // copies whenever one block sits entirely below the other side's next
  // term; overlapping stretches fall through to the scalar merge step. The
  // copied bytes are the input bytes, so output equality is structural.
  TermWeight* o = out;
  const TermWeight* ia = a;
  const TermWeight* ib = b;
  const TermWeight* ea = a + a_len;
  const TermWeight* eb = b + b_len;
  while (ea - ia >= 8 && eb - ib >= 8) {
    if (ia[7].term < ib[0].term) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o),
                          _mm256_loadu_si256(
                              reinterpret_cast<const __m256i*>(ia)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 4),
                          _mm256_loadu_si256(
                              reinterpret_cast<const __m256i*>(ia + 4)));
      o += 8;
      ia += 8;
      continue;
    }
    if (ib[7].term < ia[0].term) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o),
                          _mm256_loadu_si256(
                              reinterpret_cast<const __m256i*>(ib)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 4),
                          _mm256_loadu_si256(
                              reinterpret_cast<const __m256i*>(ib + 4)));
      o += 8;
      ib += 8;
      continue;
    }
    // Overlapping blocks: merge scalar until one block is consumed.
    const TermWeight* block_ea = ia + 8;
    const TermWeight* block_eb = ib + 8;
    while (ia != block_ea && ib != block_eb) {
      if (ia->term < ib->term) {
        *o++ = *ia++;
      } else if (ib->term < ia->term) {
        *o++ = *ib++;
      } else {
        *o++ = {ia->term, std::max(ia->weight, ib->weight)};
        ++ia;
        ++ib;
      }
    }
  }
  while (ia != ea || ib != eb) {
    if (ib == eb || (ia != ea && ia->term < ib->term)) {
      *o++ = *ia++;
    } else if (ia == ea || ib->term < ia->term) {
      *o++ = *ib++;
    } else {
      *o++ = {ia->term, std::max(ia->weight, ib->weight)};
      ++ia;
      ++ib;
    }
  }
  return static_cast<size_t>(o - out);
}

}  // namespace

extern const Kernels kAvx2Kernels;
const Kernels kAvx2Kernels = {DotAvx2, OverlapAvx2, UnionMaxAvx2,
                              IntersectMinAvx2, Level::kAvx2};

}  // namespace rst::simd

#endif  // __x86_64__ && RST_SIMD_HAVE_AVX2
