// NEON (aarch64 Advanced SIMD) implementations of the balanced sorted-merge
// kernels. Same construction as the AVX2 translation unit, with 4-entry
// blocks: vld2q_u32 deinterleaves the AoS {u32 term, f32 weight} runs into a
// term vector per block, 4 lane rotations produce all-pairs match masks, and
// the per-match work runs scalar over the mask bits in ascending order so
// every accumulated double is bit-identical to the scalar reference. NEON is
// baseline on arm64, so no runtime detection is needed beyond the compile
// gate.

#include "rst/simd/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cstdint>

namespace rst::simd {

namespace {

/// Terms of entries[0..3]: stride-2 deinterleaving load, keep lane 0.
inline uint32x4_t LoadTerms4(const TermWeight* entries) {
  return vld2q_u32(reinterpret_cast<const uint32_t*>(entries)).val[0];
}

/// 4-bit lane mask of a compare result (bit i ⇔ lane i all-ones).
inline uint32_t MoveMask4(uint32x4_t eq) {
  const uint64_t m64 =
      vget_lane_u64(vreinterpret_u64_u16(vmovn_u32(eq)), 0);
  return static_cast<uint32_t>(((m64 >> 0) & 1u) | ((m64 >> 15) & 2u) |
                               ((m64 >> 30) & 4u) | ((m64 >> 45) & 8u));
}

inline uint32_t RotateMask4(uint32_t m, int r) {
  return ((m << r) | (m >> (4 - r))) & 0xFu;
}

/// All-pairs match masks between two blocks of 4 sorted unique terms; the
/// nth set bit of `ma` and of `mb` name the same shared term.
inline void MatchMasks4(uint32x4_t ta, uint32x4_t tb, uint32_t* ma,
                        uint32_t* mb) {
  uint32_t a_mask = 0;
  uint32_t b_mask = 0;
  {
    const uint32_t m = MoveMask4(vceqq_u32(ta, tb));
    a_mask |= m;
    b_mask |= m;
  }
  {
    const uint32_t m = MoveMask4(vceqq_u32(ta, vextq_u32(tb, tb, 1)));
    a_mask |= m;
    b_mask |= RotateMask4(m, 1);
  }
  {
    const uint32_t m = MoveMask4(vceqq_u32(ta, vextq_u32(tb, tb, 2)));
    a_mask |= m;
    b_mask |= RotateMask4(m, 2);
  }
  {
    const uint32_t m = MoveMask4(vceqq_u32(ta, vextq_u32(tb, tb, 3)));
    a_mask |= m;
    b_mask |= RotateMask4(m, 3);
  }
  *ma = a_mask;
  *mb = b_mask;
}

inline int Ctz(uint32_t m) { return __builtin_ctz(m); }

double DotNeon(const TermWeight* a, size_t a_len, const TermWeight* b,
               size_t b_len) {
  double dot = 0.0;
  const TermWeight* ia = a;
  const TermWeight* ib = b;
  const TermWeight* ea = a + a_len;
  const TermWeight* eb = b + b_len;
  while (ea - ia >= 4 && eb - ib >= 4) {
    const TermId a_max = ia[3].term;
    const TermId b_max = ib[3].term;
    if (a_max < ib[0].term) {
      ia += 4;
      continue;
    }
    if (b_max < ia[0].term) {
      ib += 4;
      continue;
    }
    uint32_t ma, mb;
    MatchMasks4(LoadTerms4(ia), LoadTerms4(ib), &ma, &mb);
    while (ma != 0) {
      const int i = Ctz(ma);
      const int j = Ctz(mb);
      ma &= ma - 1;
      mb &= mb - 1;
      dot += static_cast<double>(ia[i].weight) * ib[j].weight;
    }
    if (a_max < b_max) {
      ia += 4;
    } else if (b_max < a_max) {
      ib += 4;
    } else {
      ia += 4;
      ib += 4;
    }
  }
  while (ia != ea && ib != eb) {
    if (ia->term < ib->term) {
      ++ia;
    } else if (ib->term < ia->term) {
      ++ib;
    } else {
      dot += static_cast<double>(ia->weight) * ib->weight;
      ++ia;
      ++ib;
    }
  }
  return dot;
}

size_t OverlapNeon(const TermWeight* a, size_t a_len, const TermWeight* b,
                   size_t b_len) {
  size_t overlap = 0;
  const TermWeight* ia = a;
  const TermWeight* ib = b;
  const TermWeight* ea = a + a_len;
  const TermWeight* eb = b + b_len;
  while (ea - ia >= 4 && eb - ib >= 4) {
    const TermId a_max = ia[3].term;
    const TermId b_max = ib[3].term;
    if (a_max < ib[0].term) {
      ia += 4;
      continue;
    }
    if (b_max < ia[0].term) {
      ib += 4;
      continue;
    }
    uint32_t ma, mb;
    MatchMasks4(LoadTerms4(ia), LoadTerms4(ib), &ma, &mb);
    overlap += static_cast<size_t>(__builtin_popcount(ma));
    if (a_max < b_max) {
      ia += 4;
    } else if (b_max < a_max) {
      ib += 4;
    } else {
      ia += 4;
      ib += 4;
    }
  }
  while (ia != ea && ib != eb) {
    if (ia->term < ib->term) {
      ++ia;
    } else if (ib->term < ia->term) {
      ++ib;
    } else {
      ++overlap;
      ++ia;
      ++ib;
    }
  }
  return overlap;
}

size_t IntersectMinNeon(const TermWeight* a, size_t a_len, const TermWeight* b,
                        size_t b_len, TermWeight* out) {
  TermWeight* o = out;
  const TermWeight* ia = a;
  const TermWeight* ib = b;
  const TermWeight* ea = a + a_len;
  const TermWeight* eb = b + b_len;
  while (ea - ia >= 4 && eb - ib >= 4) {
    const TermId a_max = ia[3].term;
    const TermId b_max = ib[3].term;
    if (a_max < ib[0].term) {
      ia += 4;
      continue;
    }
    if (b_max < ia[0].term) {
      ib += 4;
      continue;
    }
    uint32_t ma, mb;
    MatchMasks4(LoadTerms4(ia), LoadTerms4(ib), &ma, &mb);
    while (ma != 0) {
      const int i = Ctz(ma);
      const int j = Ctz(mb);
      ma &= ma - 1;
      mb &= mb - 1;
      const float w = std::min(ia[i].weight, ib[j].weight);
      if (w > 0.0f) *o++ = {ia[i].term, w};
    }
    if (a_max < b_max) {
      ia += 4;
    } else if (b_max < a_max) {
      ib += 4;
    } else {
      ia += 4;
      ib += 4;
    }
  }
  while (ia != ea && ib != eb) {
    if (ia->term < ib->term) {
      ++ia;
    } else if (ib->term < ia->term) {
      ++ib;
    } else {
      const float w = std::min(ia->weight, ib->weight);
      if (w > 0.0f) *o++ = {ia->term, w};
      ++ia;
      ++ib;
    }
  }
  return static_cast<size_t>(o - out);
}

size_t UnionMaxNeon(const TermWeight* a, size_t a_len, const TermWeight* b,
                    size_t b_len, TermWeight* out) {
  TermWeight* o = out;
  const TermWeight* ia = a;
  const TermWeight* ib = b;
  const TermWeight* ea = a + a_len;
  const TermWeight* eb = b + b_len;
  while (ea - ia >= 4 && eb - ib >= 4) {
    if (ia[3].term < ib[0].term) {
      vst1q_u32(reinterpret_cast<uint32_t*>(o),
                vld1q_u32(reinterpret_cast<const uint32_t*>(ia)));
      vst1q_u32(reinterpret_cast<uint32_t*>(o + 2),
                vld1q_u32(reinterpret_cast<const uint32_t*>(ia + 2)));
      o += 4;
      ia += 4;
      continue;
    }
    if (ib[3].term < ia[0].term) {
      vst1q_u32(reinterpret_cast<uint32_t*>(o),
                vld1q_u32(reinterpret_cast<const uint32_t*>(ib)));
      vst1q_u32(reinterpret_cast<uint32_t*>(o + 2),
                vld1q_u32(reinterpret_cast<const uint32_t*>(ib + 2)));
      o += 4;
      ib += 4;
      continue;
    }
    const TermWeight* block_ea = ia + 4;
    const TermWeight* block_eb = ib + 4;
    while (ia != block_ea && ib != block_eb) {
      if (ia->term < ib->term) {
        *o++ = *ia++;
      } else if (ib->term < ia->term) {
        *o++ = *ib++;
      } else {
        *o++ = {ia->term, std::max(ia->weight, ib->weight)};
        ++ia;
        ++ib;
      }
    }
  }
  while (ia != ea || ib != eb) {
    if (ib == eb || (ia != ea && ia->term < ib->term)) {
      *o++ = *ia++;
    } else if (ia == ea || ib->term < ia->term) {
      *o++ = *ib++;
    } else {
      *o++ = {ia->term, std::max(ia->weight, ib->weight)};
      ++ia;
      ++ib;
    }
  }
  return static_cast<size_t>(o - out);
}

}  // namespace

extern const Kernels kNeonKernels;
const Kernels kNeonKernels = {DotNeon, OverlapNeon, UnionMaxNeon,
                              IntersectMinNeon, Level::kNeon};

}  // namespace rst::simd

#endif  // __aarch64__
