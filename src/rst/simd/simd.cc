#include "rst/simd/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace rst::simd {

// --- Scalar reference kernels ----------------------------------------------
//
// These are the pre-SIMD balanced two-pointer merges, verbatim. They define
// the contract every vector level must reproduce bit-for-bit: the same
// matched pairs visited in ascending term order, doubles accumulated
// left-to-right, float min/max taken with std::min/std::max semantics.

namespace {

double DotScalar(const TermWeight* a, size_t a_len, const TermWeight* b,
                 size_t b_len) {
  double dot = 0.0;
  const TermWeight* ia = a;
  const TermWeight* ib = b;
  const TermWeight* ea = a + a_len;
  const TermWeight* eb = b + b_len;
  while (ia != ea && ib != eb) {
    if (ia->term < ib->term) {
      ++ia;
    } else if (ib->term < ia->term) {
      ++ib;
    } else {
      dot += static_cast<double>(ia->weight) * ib->weight;
      ++ia;
      ++ib;
    }
  }
  return dot;
}

size_t OverlapScalar(const TermWeight* a, size_t a_len, const TermWeight* b,
                     size_t b_len) {
  size_t overlap = 0;
  const TermWeight* ia = a;
  const TermWeight* ib = b;
  const TermWeight* ea = a + a_len;
  const TermWeight* eb = b + b_len;
  while (ia != ea && ib != eb) {
    if (ia->term < ib->term) {
      ++ia;
    } else if (ib->term < ia->term) {
      ++ib;
    } else {
      ++overlap;
      ++ia;
      ++ib;
    }
  }
  return overlap;
}

size_t UnionMaxScalar(const TermWeight* a, size_t a_len, const TermWeight* b,
                      size_t b_len, TermWeight* out) {
  TermWeight* o = out;
  const TermWeight* ia = a;
  const TermWeight* ib = b;
  const TermWeight* ea = a + a_len;
  const TermWeight* eb = b + b_len;
  while (ia != ea || ib != eb) {
    if (ib == eb || (ia != ea && ia->term < ib->term)) {
      *o++ = *ia++;
    } else if (ia == ea || ib->term < ia->term) {
      *o++ = *ib++;
    } else {
      *o++ = {ia->term, std::max(ia->weight, ib->weight)};
      ++ia;
      ++ib;
    }
  }
  return static_cast<size_t>(o - out);
}

size_t IntersectMinScalar(const TermWeight* a, size_t a_len,
                          const TermWeight* b, size_t b_len, TermWeight* out) {
  TermWeight* o = out;
  const TermWeight* ia = a;
  const TermWeight* ib = b;
  const TermWeight* ea = a + a_len;
  const TermWeight* eb = b + b_len;
  while (ia != ea && ib != eb) {
    if (ia->term < ib->term) {
      ++ia;
    } else if (ib->term < ia->term) {
      ++ib;
    } else {
      const float w = std::min(ia->weight, ib->weight);
      if (w > 0.0f) *o++ = {ia->term, w};
      ++ia;
      ++ib;
    }
  }
  return static_cast<size_t>(o - out);
}

constexpr Kernels kScalarKernels = {
    DotScalar, OverlapScalar, UnionMaxScalar, IntersectMinScalar,
    Level::kScalar};

}  // namespace

// --- Level detection and dispatch ------------------------------------------

#if defined(__x86_64__) && defined(RST_SIMD_HAVE_AVX2)
extern const Kernels kAvx2Kernels;  // kernels_avx2.cc
#endif
#if defined(__aarch64__)
extern const Kernels kNeonKernels;  // kernels_neon.cc
#endif

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "unknown";
}

Level CompiledLevel() {
#if defined(__x86_64__) && defined(RST_SIMD_HAVE_AVX2)
  return Level::kAvx2;
#elif defined(__aarch64__)
  return Level::kNeon;
#else
  return Level::kScalar;
#endif
}

Level DetectedLevel() {
#if defined(__x86_64__) && defined(RST_SIMD_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") ? Level::kAvx2 : Level::kScalar;
#elif defined(__aarch64__)
  return Level::kNeon;  // Advanced SIMD is baseline on arm64
#else
  return Level::kScalar;
#endif
}

const Kernels& KernelsFor(Level level) {
  if (level == Level::kScalar) return kScalarKernels;
#if defined(__x86_64__) && defined(RST_SIMD_HAVE_AVX2)
  if (level == Level::kAvx2 && DetectedLevel() == Level::kAvx2) {
    return kAvx2Kernels;
  }
#endif
#if defined(__aarch64__)
  if (level == Level::kNeon) return kNeonKernels;
#endif
  return kScalarKernels;
}

namespace {

/// Level chosen at first use: hardware detection, capped to scalar when
/// RST_FORCE_SCALAR is set (the testing/debugging escape hatch). Reading the
/// environment once per process keeps dispatch a pure function of (binary,
/// host, env) — never of timing.
const Kernels& ResolveStartupKernels() {
  // getenv is not written to after startup anywhere in this codebase, and
  // this runs once under the magic-static guard of ActiveSlot().
  const char* force = std::getenv("RST_FORCE_SCALAR");  // NOLINT(concurrency-mt-unsafe)
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return kScalarKernels;
  }
  return KernelsFor(DetectedLevel());
}

std::atomic<const Kernels*>& ActiveSlot() {
  static std::atomic<const Kernels*> slot{&ResolveStartupKernels()};
  return slot;
}

}  // namespace

const Kernels& Active() {
  // rst-atomics: the slot only ever points at one of the immutable,
  // statically-initialized kernel tables, so a stale pointer is still a
  // valid table; no payload is published through the pointer.
  return *ActiveSlot().load(std::memory_order_relaxed);
}

Level ActiveLevel() { return Active().level; }

ScopedLevelOverride::ScopedLevelOverride(Level level)
    : previous_(&Active()) {
  // rst-atomics: test-only override; both targets are immutable tables (see
  // Active()), so relaxed stores cannot expose partial state.
  ActiveSlot().store(&KernelsFor(level), std::memory_order_relaxed);
}

ScopedLevelOverride::~ScopedLevelOverride() {
  // rst-atomics: see constructor.
  ActiveSlot().store(previous_, std::memory_order_relaxed);
}

}  // namespace rst::simd
