#ifndef RST_SIMD_SIMD_H_
#define RST_SIMD_SIMD_H_

#include <cstddef>

#include "rst/text/term_vector.h"

namespace rst::simd {

/// Instruction-set level of the balanced sorted-merge kernels. Exactly one
/// level is active per process; the scalar kernels are the reference
/// implementation and every vector level is property-tested to produce
/// bitwise-identical results (same matched pairs, same double-accumulation
/// order), so answers, RstknnStats, and EXPLAIN JSON never depend on the
/// dispatch decision.
enum class Level {
  kScalar,  ///< portable reference — always available
  kAvx2,    ///< x86-64 AVX2 (runtime CPUID-gated)
  kNeon,    ///< aarch64 Advanced SIMD (baseline on arm64)
};

const char* LevelName(Level level);

/// Balanced-merge kernel table. All kernels require both runs sorted by
/// strictly ascending term id (the TermVector invariant). The skew/gallop
/// dispatch stays *outside* this table, in the rst::DotSpan-family wrappers:
/// galloping is O(small·log large) pointer-chasing that vectorizes poorly,
/// so both dispatch modes share the one scalar galloped implementation and
/// equality across levels is only ever exercised on the balanced path.
struct Kernels {
  /// <a, b> over shared terms; doubles accumulated in ascending term order.
  double (*dot)(const TermWeight* a, size_t a_len, const TermWeight* b,
                size_t b_len);
  /// Number of shared terms.
  size_t (*overlap)(const TermWeight* a, size_t a_len, const TermWeight* b,
                    size_t b_len);
  /// Per-term max over the union of terms. `out` must hold a_len + b_len
  /// entries; returns the number written.
  size_t (*union_max)(const TermWeight* a, size_t a_len, const TermWeight* b,
                      size_t b_len, TermWeight* out);
  /// Per-term min over the intersection of terms, zero-weight results
  /// dropped. `out` must hold min(a_len, b_len) entries; returns the number
  /// written.
  size_t (*intersect_min)(const TermWeight* a, size_t a_len,
                          const TermWeight* b, size_t b_len, TermWeight* out);
  Level level = Level::kScalar;
};

/// Highest level this binary was compiled with support for.
Level CompiledLevel();

/// Highest level the running CPU supports (CPUID on x86; compile-time on
/// aarch64), before any override.
Level DetectedLevel();

/// The level actually in use: DetectedLevel() capped by CompiledLevel(),
/// forced to kScalar when the RST_FORCE_SCALAR environment variable is set
/// to anything but "0"/"" at first use, and overridable in-process via
/// ScopedLevelOverride. Constant between overrides.
Level ActiveLevel();

/// The active kernel table. One relaxed atomic load on the hot path.
const Kernels& Active();

/// Scoped dispatch override for tests and benchmarks: forces `level` (capped
/// at what the CPU/binary supports) for the lifetime of the object, then
/// restores the previous table. Not thread-safe against concurrent
/// overrides; queries running during the switch see one table or the other,
/// either of which yields bit-identical results by the equality contract.
class ScopedLevelOverride {
 public:
  explicit ScopedLevelOverride(Level level);
  ~ScopedLevelOverride();

  ScopedLevelOverride(const ScopedLevelOverride&) = delete;
  ScopedLevelOverride& operator=(const ScopedLevelOverride&) = delete;

 private:
  const Kernels* previous_;
};

/// Kernel table for one specific level (capped at CompiledLevel(); a level
/// the CPU cannot run falls back to scalar). Exposed so equality tests can
/// compare levels directly without touching global dispatch.
const Kernels& KernelsFor(Level level);

}  // namespace rst::simd

#endif  // RST_SIMD_SIMD_H_
