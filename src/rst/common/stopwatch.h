#ifndef RST_COMMON_STOPWATCH_H_
#define RST_COMMON_STOPWATCH_H_

#include <chrono>

namespace rst {

/// Wall-clock stopwatch for the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rst

#endif  // RST_COMMON_STOPWATCH_H_
