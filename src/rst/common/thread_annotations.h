#ifndef RST_COMMON_THREAD_ANNOTATIONS_H_
#define RST_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety ("capability") analysis attributes (DESIGN.md §16).
///
/// Under clang with `-Wthread-safety -Wthread-safety-beta` these macros turn
/// the project's locking conventions into compile-time contracts: a field
/// tagged RST_GUARDED_BY(mu_) cannot be touched without `mu_` held, and a
/// private `...Locked()` helper tagged RST_REQUIRES(mu_) cannot be called
/// from an unlocked context. On GCC/MSVC every macro expands to nothing, so
/// the annotations are zero-cost no-ops (proven by the
/// thread_annotations_noop_compile ctest entry).
///
/// The analysis only understands types declared as capabilities, so code
/// must use the annotated wrappers in rst/common/mutex.h (rst::Mutex,
/// rst::SharedMutex, the RAII guards, rst::CondVar) rather than raw
/// std::mutex — enforced by the raw-sync-primitive rule in tools/rst_lint.py.

#if defined(__clang__)
#define RST_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define RST_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside clang
#endif

/// Declares a class to be a capability (lockable) type. The string names the
/// capability kind in diagnostics, e.g. RST_CAPABILITY("mutex").
#define RST_CAPABILITY(x) RST_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII class whose constructor acquires and destructor releases
/// a capability (MutexLock and friends).
#define RST_SCOPED_CAPABILITY RST_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data members: reads/writes require the named capability held.
#define RST_GUARDED_BY(x) RST_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer members: dereferencing the pointee requires the capability (the
/// pointer itself may be read freely).
#define RST_PT_GUARDED_BY(x) RST_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Lock-ordering declarations between mutex members (deadlock prevention;
/// checked under -Wthread-safety-beta).
#define RST_ACQUIRED_BEFORE(...) \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define RST_ACQUIRED_AFTER(...) \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Functions: caller must hold the capability (exclusively / shared). This is
/// the contract for private `...Locked()` helpers.
#define RST_REQUIRES(...) \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define RST_REQUIRES_SHARED(...) \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Functions: acquire/release the capability (exclusively / shared).
#define RST_ACQUIRE(...) \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define RST_ACQUIRE_SHARED(...) \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define RST_RELEASE(...) \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RST_RELEASE_SHARED(...) \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
/// Releases a capability however it was acquired (exclusive or shared) —
/// used by scoped-guard destructors that serve both modes.
#define RST_RELEASE_GENERIC(...) \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

/// Functions: attempt to acquire; first argument is the return value meaning
/// success, e.g. RST_TRY_ACQUIRE(true).
#define RST_TRY_ACQUIRE(...) \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define RST_TRY_ACQUIRE_SHARED(...) \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

/// Functions: caller must NOT hold the capability (non-reentrancy contract
/// for public methods that take the lock themselves).
#define RST_EXCLUDES(...) \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held (analysis trusts it).
#define RST_ASSERT_CAPABILITY(x) \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Functions returning a reference to a capability-guarding mutex.
#define RST_RETURN_CAPABILITY(x) \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables analysis for one function. Every use must carry a
/// comment explaining why the contract cannot be expressed.
#define RST_NO_THREAD_SAFETY_ANALYSIS \
  RST_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // RST_COMMON_THREAD_ANNOTATIONS_H_
