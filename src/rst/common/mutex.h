#ifndef RST_COMMON_MUTEX_H_
#define RST_COMMON_MUTEX_H_

/// Capability-annotated synchronization wrappers (DESIGN.md §16).
///
/// libstdc++'s std::mutex / std::shared_mutex carry no thread-safety
/// attributes, so clang's capability analysis cannot reason about them.
/// These thin wrappers add the annotations with zero runtime cost; all
/// locking in the project goes through them (tools/rst_lint.py rule
/// raw-sync-primitive bans the std types everywhere else — this header is
/// the single exemption, which is also why the manual .lock()/.unlock()
/// calls below are allowed to exist).
///
/// Idiom:
///
///   class Worklist {
///    public:
///     void Push(Item item) RST_EXCLUDES(mu_) {
///       MutexLock lock(&mu_);
///       items_.push_back(std::move(item));
///       cv_.NotifyOne();
///     }
///    private:
///     Mutex mu_;
///     CondVar cv_;
///     std::vector<Item> items_ RST_GUARDED_BY(mu_);
///   };
///
/// Note on CondVar: predicate waits are written as explicit
/// `while (!cond) cv_.Wait(mu_);` loops rather than the
/// `cv.wait(lock, pred)` lambda form — the analysis does not propagate
/// capabilities into lambda bodies, so the lambda form produces spurious
/// warnings on every guarded field the predicate reads.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "rst/common/thread_annotations.h"

namespace rst {

/// Exclusive mutex (std::mutex) declared as a capability.
class RST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RST_ACQUIRE() { mu_.lock(); }
  void Unlock() RST_RELEASE() { mu_.unlock(); }
  bool TryLock() RST_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped primitive, for CondVar interop only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Reader/writer mutex (std::shared_mutex) declared as a capability.
class RST_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() RST_ACQUIRE() { mu_.lock(); }
  void Unlock() RST_RELEASE() { mu_.unlock(); }
  bool TryLock() RST_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() RST_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RST_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() RST_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex.
class RST_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RST_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RST_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive lock over SharedMutex.
class RST_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) RST_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RST_RELEASE() { mu_->Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class RST_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) RST_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RST_RELEASE_GENERIC() { mu_->UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable usable with rst::Mutex. Wait* atomically release the
/// caller-held mutex and reacquire it before returning, exactly like
/// std::condition_variable over std::unique_lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) RST_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() afterwards hands ownership back to the caller's guard
    // without unlocking.
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           const std::chrono::time_point<Clock, Duration>&
                               deadline) RST_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& rel_time)
      RST_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, rel_time);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rst

#endif  // RST_COMMON_MUTEX_H_
