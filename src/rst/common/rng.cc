#include "rst/common/rng.h"

#include "rst/common/check.h"

#include <algorithm>

namespace rst {

std::vector<size_t> Rng::SampleWithoutReplacement(size_t universe, size_t n) {
  RST_DCHECK_LE(n, universe);
  // Floyd's algorithm would be O(n) but needs a set; for the library's use
  // (small n or n close to universe) a partial Fisher–Yates is simpler.
  if (n * 4 >= universe) {
    std::vector<size_t> all(universe);
    for (size_t i = 0; i < universe; ++i) all[i] = i;
    for (size_t i = 0; i < n; ++i) {
      const size_t j = i + static_cast<size_t>(UniformInt(universe - i));
      std::swap(all[i], all[j]);
    }
    all.resize(n);
    return all;
  }
  std::vector<size_t> picked;
  picked.reserve(n);
  while (picked.size() < n) {
    const size_t candidate = static_cast<size_t>(UniformInt(universe));
    if (std::find(picked.begin(), picked.end(), candidate) == picked.end()) {
      picked.push_back(candidate);
    }
  }
  return picked;
}

ZipfSampler::ZipfSampler(size_t n, double exponent)
    : exponent_(exponent), norm_(0.0) {
  RST_DCHECK_GT(n, 0u);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent_);
    cdf_[i] = total;
  }
  norm_ = total;
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t i) const {
  return 1.0 / std::pow(static_cast<double>(i + 1), exponent_) / norm_;
}

}  // namespace rst
