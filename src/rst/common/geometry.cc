#include "rst/common/geometry.h"

#include <cstdio>

namespace rst {

void Rect::Extend(const Rect& r) {
  if (r.empty()) return;
  min_x = std::min(min_x, r.min_x);
  min_y = std::min(min_y, r.min_y);
  max_x = std::max(max_x, r.max_x);
  max_y = std::max(max_y, r.max_y);
}

double Rect::Enlargement(const Rect& r) const {
  Rect grown = *this;
  grown.Extend(r);
  return grown.Area() - (empty() ? 0.0 : Area());
}

std::string Rect::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[(%g,%g)-(%g,%g)]", min_x, min_y, max_x,
                max_y);
  return buf;
}

double Distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double MinDistance(const Point& p, const Rect& r) {
  const double dx = std::max({r.min_x - p.x, 0.0, p.x - r.max_x});
  const double dy = std::max({r.min_y - p.y, 0.0, p.y - r.max_y});
  return std::hypot(dx, dy);
}

double MaxDistance(const Point& p, const Rect& r) {
  const double dx = std::max(std::abs(p.x - r.min_x), std::abs(p.x - r.max_x));
  const double dy = std::max(std::abs(p.y - r.min_y), std::abs(p.y - r.max_y));
  return std::hypot(dx, dy);
}

double MinDistance(const Rect& a, const Rect& b) {
  const double dx =
      std::max({a.min_x - b.max_x, 0.0, b.min_x - a.max_x});
  const double dy =
      std::max({a.min_y - b.max_y, 0.0, b.min_y - a.max_y});
  return std::hypot(dx, dy);
}

double MaxDistance(const Rect& a, const Rect& b) {
  const double dx = std::max(std::abs(a.max_x - b.min_x),
                             std::abs(b.max_x - a.min_x));
  const double dy = std::max(std::abs(a.max_y - b.min_y),
                             std::abs(b.max_y - a.min_y));
  return std::hypot(dx, dy);
}

Rect Union(const Rect& a, const Rect& b) {
  Rect out = a;
  out.Extend(b);
  return out;
}

double IntersectionArea(const Rect& a, const Rect& b) {
  const double w = std::min(a.max_x, b.max_x) - std::max(a.min_x, b.min_x);
  const double h = std::min(a.max_y, b.max_y) - std::max(a.min_y, b.min_y);
  if (w <= 0.0 || h <= 0.0) return 0.0;
  return w * h;
}

}  // namespace rst
