#ifndef RST_COMMON_STATUS_H_
#define RST_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "rst/common/check.h"

namespace rst {

/// Error codes used across the library. Library code does not throw; fallible
/// operations return a Status (or a Result<T> carrying a value on success).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruption,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
};

/// Lightweight status object in the RocksDB/Arrow idiom: cheap to pass by
/// value, `ok()` on the hot path, message only materialized on error.
///
/// `[[nodiscard]]` on the class makes silently dropping any returned Status a
/// compiler warning (and an `unchecked-status` rst_lint error): genuinely
/// ignorable calls must spell it out with `(void)` plus a
/// `// rst-lint: allow(unchecked-status) <reason>` suppression.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T>: either a value or an error Status. Accessing the value of an
/// errored Result is a programming error (asserted in debug builds).
template <typename T>
class [[nodiscard]] Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {
    RST_DCHECK(!status_.ok()) << "Result(Status) requires an error status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RST_DCHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    RST_DCHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    RST_DCHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? value_ : fallback;
  }

 private:
  T value_{};
  Status status_;
};

}  // namespace rst

#endif  // RST_COMMON_STATUS_H_
