#ifndef RST_COMMON_RNG_H_
#define RST_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace rst {

/// Deterministic 64-bit PRNG (SplitMix64). Every randomized component of the
/// library (generators, clustering seeds, workloads) takes an explicit seed so
/// experiments and tests are exactly reproducible across platforms — the C++
/// standard distributions are implementation-defined, so we implement our own.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive. Requires hi >= lo.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal variate (Box–Muller).
  double Gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(6.283185307179586 * u2);
    has_spare_ = true;
    return mag * std::cos(6.283185307179586 * u2);
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `n` distinct indices from [0, universe) (n <= universe).
  std::vector<size_t> SampleWithoutReplacement(size_t universe, size_t n);

 private:
  uint64_t state_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Zipf(s) sampler over ranks {0, 1, ..., n-1}: P(rank i) ∝ 1/(i+1)^s.
/// Inverse-CDF over a precomputed table; O(log n) per sample. Term and tag
/// frequencies in web collections (Flickr tags, reviews) are Zipf-like, which
/// is what the dataset substitutions in DESIGN.md rely on.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);

  size_t Sample(Rng* rng) const;
  size_t size() const { return cdf_.size(); }

  /// Probability mass of rank i.
  double Pmf(size_t i) const;

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
  double exponent_;
  double norm_;
};

}  // namespace rst

#endif  // RST_COMMON_RNG_H_
