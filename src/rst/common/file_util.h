#ifndef RST_COMMON_FILE_UTIL_H_
#define RST_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "rst/common/status.h"

namespace rst {

/// Writes `content` to `path`, truncating. Errors (unwritable directory,
/// permission denied, disk full on flush) come back as a Status carrying the
/// path and the errno text — callers surface it instead of silently dropping
/// output.
Status WriteStringToFile(const std::string& path, std::string_view content);

/// Crash-atomic variant: writes to `<path>.tmp.<pid>` in the same directory,
/// then renames over `path`. An interrupted run leaves either the old file
/// or the new one — never a truncated hybrid — so downstream consumers of
/// metrics/slow-log/trace artifacts (bench_diff, CI gates) can't read a
/// half-written document. The temp file is removed on any failure.
Status WriteStringToFileAtomic(const std::string& path,
                               std::string_view content);

/// Reads the whole file into a string; NotFound/InvalidArgument with the
/// path and errno text on failure.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace rst

#endif  // RST_COMMON_FILE_UTIL_H_
