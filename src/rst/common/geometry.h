#ifndef RST_COMMON_GEOMETRY_H_
#define RST_COMMON_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace rst {

/// A point in the 2-D plane. Both papers operate on (longitude, latitude)
/// treated as planar Euclidean coordinates; we keep that convention.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Axis-aligned rectangle (MBR). An "empty" rectangle has min > max and acts
/// as the identity for Extend/Union operations.
struct Rect {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  static Rect FromPoint(const Point& p) { return Rect{p.x, p.y, p.x, p.y}; }
  static Rect FromCorners(double x1, double y1, double x2, double y2) {
    return Rect{std::min(x1, x2), std::min(y1, y2), std::max(x1, x2),
                std::max(y1, y2)};
  }

  bool empty() const { return min_x > max_x || min_y > max_y; }

  double width() const { return empty() ? 0.0 : max_x - min_x; }
  double height() const { return empty() ? 0.0 : max_y - min_y; }
  double Area() const { return width() * height(); }
  double Perimeter() const { return 2.0 * (width() + height()); }
  Point Center() const {
    return Point{(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  bool Contains(const Rect& r) const {
    return !r.empty() && r.min_x >= min_x && r.max_x <= max_x &&
           r.min_y >= min_y && r.max_y <= max_y;
  }
  bool Intersects(const Rect& r) const {
    return !empty() && !r.empty() && r.min_x <= max_x && r.max_x >= min_x &&
           r.min_y <= max_y && r.max_y >= min_y;
  }

  /// Grows this rectangle to cover `r` (no-op if `r` is empty).
  void Extend(const Rect& r);
  void Extend(const Point& p) { Extend(FromPoint(p)); }

  /// Area increase caused by extending this rectangle to cover `r`.
  double Enlargement(const Rect& r) const;

  std::string ToString() const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

/// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// Minimum Euclidean distance from point `p` to rectangle `r`
/// (0 if `p` lies inside `r`).
double MinDistance(const Point& p, const Rect& r);

/// Maximum Euclidean distance from point `p` to any point of `r`.
double MaxDistance(const Point& p, const Rect& r);

/// Minimum Euclidean distance between any two points of `a` and `b`
/// (0 if they intersect).
double MinDistance(const Rect& a, const Rect& b);

/// Maximum Euclidean distance between any two points of `a` and `b`.
double MaxDistance(const Rect& a, const Rect& b);

/// Union of two rectangles (MBR of both).
Rect Union(const Rect& a, const Rect& b);

/// Area of the intersection (0 when disjoint).
double IntersectionArea(const Rect& a, const Rect& b);

}  // namespace rst

#endif  // RST_COMMON_GEOMETRY_H_
