#include "rst/common/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

namespace rst {

namespace {

std::string ErrnoMessage(std::string_view action, const std::string& path) {
  std::string msg;
  msg.append(action);
  msg.append(" '");
  msg.append(path);
  msg.append("': ");
  msg.append(std::strerror(errno));
  return msg;
}

}  // namespace

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument(ErrnoMessage("cannot open for write", path));
  }
  const size_t written = content.empty()
                             ? 0
                             : std::fwrite(content.data(), 1, content.size(), f);
  const bool write_ok = written == content.size();
  const bool close_ok = std::fclose(f) == 0;
  if (!write_ok || !close_ok) {
    return Status::Internal(ErrnoMessage("short write to", path));
  }
  return Status::Ok();
}

Status WriteStringToFileAtomic(const std::string& path,
                               std::string_view content) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(getpid()));
  const Status write_status = WriteStringToFile(tmp, content);
  if (!write_status.ok()) {
    std::remove(tmp.c_str());
    return write_status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status = Status::Internal(ErrnoMessage("cannot rename to", path));
    std::remove(tmp.c_str());
    return status;
  }
  return Status::Ok();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(ErrnoMessage("cannot open for read", path));
  }
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    return Status::Internal(ErrnoMessage("read error on", path));
  }
  return content;
}

}  // namespace rst
