#ifndef RST_COMMON_CHECK_H_
#define RST_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

// Contract macros (DESIGN.md §11). RST_CHECK* fire in every build type and
// abort with file:line plus the streamed message; RST_DCHECK* compile to
// nothing in Release (NDEBUG) builds — their condition and streamed operands
// are parsed but never evaluated — so they are free on hot paths.
//
//   RST_CHECK(ptr != nullptr) << "node " << id << " lost its child";
//   RST_DCHECK_LE(entry.min_sim, entry.max_sim);
//   RST_CHECK_OK(tree.CheckInvariants(doc_of));
//
// These replace the bare assert()s the library grew up with: a failed
// contract names its location and condition in the abort message instead of
// the opaque `Assertion failed` line, and the binary-comparison forms print
// both operand values.

namespace rst::internal {

/// Collects the streamed message; the destructor prints it and aborts. Only
/// ever constructed on the failure path, so the ostringstream cost is
/// irrelevant.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << ": RST_CHECK failed: " << condition;
  }

  [[noreturn]] ~CheckFailure() {
    stream_ << "\n";
    std::cerr << stream_.str() << std::flush;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    // One separator between the condition and the message, not one per
    // streamed chunk — `<< "node " << id` must render as "node 42".
    if (!separated_) {
      stream_ << " ";
      separated_ = true;
    }
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
  bool separated_ = false;
};

/// `operator&` binds looser than `<<` and tighter than `?:`, which lets the
/// macros stream into the temporary and still form a single void expression.
struct CheckVoidify {
  // Const ref so both a bare temporary (RST_CHECK with no message) and the
  // lvalue returned by operator<< bind.
  void operator&(const CheckFailure&) const {}
};

/// Formats both operands of a failed binary comparison.
template <typename A, typename B>
std::string CheckOpMessage(const A& a, const B& b) {
  std::ostringstream out;
  out << "(" << a << " vs " << b << ")";
  return out.str();
}

/// Works for Status and Result<T> alike (anything with ok()/ToString() or
/// ok()/status()); templated so this header stays independent of status.h —
/// which lets status.h itself use RST_DCHECK in Result's accessors.
template <typename StatusLike>
void CheckOk(const StatusLike& status, const char* file, int line,
             const char* expr) {
  if (!status.ok()) {
    CheckFailure failure(file, line, expr);
    if constexpr (requires { status.ToString(); }) {
      failure << status.ToString();
    } else {
      failure << status.status().ToString();
    }
  }
}

}  // namespace rst::internal

#define RST_CHECK(condition)                                          \
  (condition) ? (void)0                                               \
              : ::rst::internal::CheckVoidify() &                     \
                    ::rst::internal::CheckFailure(__FILE__, __LINE__, \
                                                  #condition)

#define RST_CHECK_OP_IMPL(op, a, b)                                 \
  ((a)op(b)) ? (void)0                                              \
             : ::rst::internal::CheckVoidify() &                    \
                   ::rst::internal::CheckFailure(__FILE__, __LINE__, \
                                                 #a " " #op " " #b) \
                       << ::rst::internal::CheckOpMessage((a), (b))

#define RST_CHECK_EQ(a, b) RST_CHECK_OP_IMPL(==, a, b)
#define RST_CHECK_NE(a, b) RST_CHECK_OP_IMPL(!=, a, b)
#define RST_CHECK_LE(a, b) RST_CHECK_OP_IMPL(<=, a, b)
#define RST_CHECK_LT(a, b) RST_CHECK_OP_IMPL(<, a, b)
#define RST_CHECK_GE(a, b) RST_CHECK_OP_IMPL(>=, a, b)
#define RST_CHECK_GT(a, b) RST_CHECK_OP_IMPL(>, a, b)

/// Aborts with the Status message when `expr` is not OK. `expr` is evaluated
/// exactly once.
#define RST_CHECK_OK(expr) \
  ::rst::internal::CheckOk((expr), __FILE__, __LINE__, #expr)

#ifndef NDEBUG

#define RST_DCHECK(condition) RST_CHECK(condition)
#define RST_DCHECK_EQ(a, b) RST_CHECK_EQ(a, b)
#define RST_DCHECK_NE(a, b) RST_CHECK_NE(a, b)
#define RST_DCHECK_LE(a, b) RST_CHECK_LE(a, b)
#define RST_DCHECK_LT(a, b) RST_CHECK_LT(a, b)
#define RST_DCHECK_GE(a, b) RST_CHECK_GE(a, b)
#define RST_DCHECK_GT(a, b) RST_CHECK_GT(a, b)
#define RST_DCHECK_OK(expr) RST_CHECK_OK(expr)

#else  // NDEBUG

// Release: `while (false)` keeps the condition and any streamed operands
// compiling (so Release builds cannot rot) without ever evaluating them.
#define RST_DCHECK(condition) \
  while (false) RST_CHECK(condition)
#define RST_DCHECK_EQ(a, b) \
  while (false) RST_CHECK_EQ(a, b)
#define RST_DCHECK_NE(a, b) \
  while (false) RST_CHECK_NE(a, b)
#define RST_DCHECK_LE(a, b) \
  while (false) RST_CHECK_LE(a, b)
#define RST_DCHECK_LT(a, b) \
  while (false) RST_CHECK_LT(a, b)
#define RST_DCHECK_GE(a, b) \
  while (false) RST_CHECK_GE(a, b)
#define RST_DCHECK_GT(a, b) \
  while (false) RST_CHECK_GT(a, b)
#define RST_DCHECK_OK(expr) \
  while (false) RST_CHECK_OK(expr)

#endif  // NDEBUG

#endif  // RST_COMMON_CHECK_H_
