#include "rst/exec/thread_pool.h"

#include <algorithm>

namespace rst {
namespace exec {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t spawn = num_threads > 1 ? num_threads - 1 : 0;
  threads_.reserve(spawn);
  for (size_t i = 0; i < spawn; ++i) {
    // Pool workers are 1..spawn; the caller participates as worker 0.
    threads_.emplace_back([this, worker = i + 1] { WorkerLoop(worker); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::RunChunks(Job* job, size_t worker) {
  for (;;) {
    // rst-atomics: the chunk cursor is pure work distribution — each claimed
    // index is only touched by the claiming worker, and the caller's final
    // results read is ordered by the mu_-protected active_workers handshake,
    // so no acquire/release pairing is needed here.
    const size_t begin = job->next.fetch_add(job->chunk,
                                             std::memory_order_relaxed);
    if (begin >= job->count) return;
    const size_t end = std::min(begin + job->chunk, job->count);
    try {
      for (size_t i = begin; i < end; ++i) (*job->fn)(i, worker);
    } catch (...) {
      {
        MutexLock lock(&mu_);
        if (!job->error) job->error = std::current_exception();
      }
      // Park the cursor past the end so no further chunks are claimed;
      // chunks already in flight finish on their own.
      // rst-atomics: relaxed for the same reason as the fetch_add above.
      job->next.store(job->count, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::WorkerLoop(size_t worker) {
  uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(&mu_);
      while (!stop_ && (job_ == nullptr || generation_ == seen_generation)) {
        work_cv_.Wait(mu_);
      }
      if (stop_) return;
      job = job_;
      seen_generation = generation_;
    }
    RunChunks(job, worker);
    {
      MutexLock lock(&mu_);
      if (--job->active_workers == 0) done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(
    size_t count, size_t chunk,
    const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  if (chunk == 0) chunk = 1;
  if (threads_.empty()) {
    // Inline serial path: exceptions propagate directly.
    for (size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }
  MutexLock run_lock(&run_mu_);
  Job job;
  job.count = count;
  job.chunk = chunk;
  job.fn = &fn;
  {
    MutexLock lock(&mu_);
    job.active_workers = threads_.size();
    job_ = &job;
    ++generation_;
  }
  work_cv_.NotifyAll();
  RunChunks(&job, /*worker=*/0);
  std::exception_ptr error;
  {
    MutexLock lock(&mu_);
    while (job.active_workers != 0) done_cv_.Wait(mu_);
    job_ = nullptr;
    error = job.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace exec
}  // namespace rst
