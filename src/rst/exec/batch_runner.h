#ifndef RST_EXEC_BATCH_RUNNER_H_
#define RST_EXEC_BATCH_RUNNER_H_

#include <vector>

#include "rst/data/dataset.h"
#include "rst/exec/thread_pool.h"
#include "rst/iurtree/iurtree.h"
#include "rst/obs/journal.h"
#include "rst/rstknn/rstknn.h"
#include "rst/topk/topk.h"

namespace rst {

namespace obs {
class HeatmapRecorder;
class SlowQueryLog;
class TraceEventWriter;
class WorkloadRecorder;
}  // namespace obs

namespace exec {

/// Flattens RstknnStats into the journal's stats block (rst::obs cannot see
/// rstknn types, so the bridge lives here).
obs::JournalStats ToJournalStats(const RstknnStats& stats);

/// Builds one workload-journal record from an executed query: query object,
/// wall time, flattened stats and the FNV-1a64 answer digest. Shared by the
/// batch runner, the serial CLI path, the load driver and rst_replay.
obs::JournalQueryRecord MakeJournalRecord(uint64_t index,
                                          const RstknnQuery& query,
                                          const RstknnResult& result,
                                          double wall_ms);

/// Aggregate accounting for one batch run.
struct BatchStats {
  /// Sum of every query's RstknnStats (for RunTopK only the nested IoStats
  /// is populated).
  RstknnStats total;
  uint64_t queries = 0;
  uint64_t answers = 0;  ///< total result rows across the batch
  double wall_ms = 0.0;
  /// Per-worker time spent inside queries (indexed by worker id); the
  /// imbalance between entries is the scheduling overhead to look at.
  std::vector<double> worker_busy_ms;
};

/// Evaluates batches of RSTkNN (and top-k / MaxBRSTkNN candidate-scoring)
/// queries concurrently over a shared read-only IurTree + Dataset.
///
/// Determinism contract: results are written into slots keyed by query index
/// and each query runs the unmodified single-query algorithm, so the output
/// vector is byte-identical to running the same queries serially — at any
/// thread count, regardless of scheduling.
///
/// What is shared vs. per-worker: the tree, dataset, scorer and (optional)
/// BufferPool are shared read-only/thread-safe; each worker owns a
/// ProbeScratch, an RstknnStats accumulator and a busy-time stopwatch, so
/// the query hot path takes no locks. A caller-supplied options.trace would
/// be SHARED across workers — traces are single-threaded by design, so it is
/// forced to null; with a slow-query log attached (set_slow_log) each query
/// instead gets its own private QueryTrace + ExplainRecorder, which is safe,
/// and over-threshold queries are captured in full. Per-query registry
/// publishes are suppressed and replaced by ONE per-batch aggregated publish
/// (rstknn.* totals plus exec.batch.* timings, including the per-query
/// exec.batch.queue_wait_ms histogram — time between batch start and a
/// query's first instruction on a worker).
///
/// Profiling (DESIGN.md §12): set_profiling(true) gives each worker a
/// private obs::PhaseProfiler so RunRstknn attributes every query's wall
/// time into the rstknn.phase.* histograms (histogram Record is lock-free,
/// so per-query publishes from workers are safe). set_trace_events attaches
/// a Chrome trace-event writer: every query emits a `run` slice on its
/// worker's track (queue wait as an arg), and 1-in-N sampled queries
/// additionally serialize their full span tree nested under the run slice
/// plus a `queue_wait` slice on a dedicated queue track.
class BatchRunner {
 public:
  /// All referents must outlive the runner. `pool` is borrowed, not owned —
  /// callers typically keep one pool for many batches.
  BatchRunner(const IurTree* tree, const Dataset* dataset,
              const StScorer* scorer, ThreadPool* pool)
      : tree_(tree), dataset_(dataset), scorer_(scorer), pool_(pool) {}

  /// Batches over a frozen flat-layout snapshot (rst::frozen) instead of the
  /// pointer tree. RunRstknn behaves identically (the determinism contract
  /// extends across views: same queries ⇒ byte-identical results either
  /// way); RunTopK is pointer-tree-only and must not be called on a
  /// frozen-backed runner.
  BatchRunner(const frozen::FrozenTree* frozen, const Dataset* dataset,
              const StScorer* scorer, ThreadPool* pool)
      : frozen_(frozen), dataset_(dataset), scorer_(scorer), pool_(pool) {}

  /// Attaches a slow-query capture sink for RunRstknn (see the class comment;
  /// the log must outlive the runner's batches). Null disables capture — the
  /// default, and the zero-overhead path. Read the log only between batches
  /// (its Snapshot/ToJson are quiesced-only).
  void set_slow_log(obs::SlowQueryLog* slow_log) { slow_log_ = slow_log; }

  /// Enables per-phase latency attribution for RunRstknn (see the class
  /// comment). Off by default — the zero-overhead path.
  void set_profiling(bool profiling) { profiling_ = profiling; }

  /// Attaches a Chrome trace-event writer for RunRstknn (see the class
  /// comment; the writer must outlive the runner's batches). Null disables
  /// emission — the default.
  void set_trace_events(obs::TraceEventWriter* trace_events) {
    trace_events_ = trace_events;
  }

  /// Attaches an open workload journal for RunRstknn: every sampled query
  /// (WorkloadRecorder::ShouldSample over the query's batch index) appends
  /// one record — query object, wall/phase timings, stats and answer
  /// digest. Append is thread-safe; records land in completion order and
  /// carry the index, so replay restores capture order. Null disables
  /// capture — the default.
  void set_journal(obs::WorkloadRecorder* journal) { journal_ = journal; }

  /// Attaches a cross-batch index heatmap for RunRstknn. Each worker feeds
  /// a private recorder (the searcher hot path stays lock-free); the
  /// workers' recorders are merged into `heatmap` after the join, so totals
  /// reconcile exactly against BatchStats::total at any thread count. The
  /// recorder is not reset — successive batches accumulate. Null disables —
  /// the default.
  void set_heatmap(obs::HeatmapRecorder* heatmap) { heatmap_ = heatmap; }

  /// Runs every query through RstknnSearcher::Search. `options.trace`,
  /// `options.scratch`, `options.explain` and `options.explain_index` are
  /// overridden per worker; `options.pool` (real-I/O mode) is honored and
  /// requires the concurrent-reader-safe BufferPool.
  std::vector<RstknnResult> RunRstknn(const std::vector<RstknnQuery>& queries,
                                      const RstknnOptions& options,
                                      BatchStats* batch_stats = nullptr) const;

  /// Runs every query through TopKSearcher::Search — the kernel both the
  /// precompute baseline and the MaxBRSTkNN candidate-scoring pass (per-user
  /// top-k) batch over. Simulated I/O is aggregated into
  /// batch_stats->total.io.
  std::vector<std::vector<TopKResult>> RunTopK(
      const std::vector<TopKQuery>& queries,
      BatchStats* batch_stats = nullptr) const;

 private:
  const IurTree* tree_ = nullptr;
  const frozen::FrozenTree* frozen_ = nullptr;
  const Dataset* dataset_;
  const StScorer* scorer_;
  ThreadPool* pool_;
  obs::SlowQueryLog* slow_log_ = nullptr;
  obs::TraceEventWriter* trace_events_ = nullptr;
  obs::WorkloadRecorder* journal_ = nullptr;
  obs::HeatmapRecorder* heatmap_ = nullptr;
  bool profiling_ = false;
};

}  // namespace exec
}  // namespace rst

#endif  // RST_EXEC_BATCH_RUNNER_H_
