#ifndef RST_EXEC_SHARDED_RUNNER_H_
#define RST_EXEC_SHARDED_RUNNER_H_

#include <vector>

#include "rst/data/dataset.h"
#include "rst/exec/batch_runner.h"
#include "rst/exec/thread_pool.h"
#include "rst/rstknn/rstknn.h"
#include "rst/shard/sharded_index.h"
#include "rst/shard/sharded_search.h"

namespace rst {

namespace obs {
class HeatmapRecorder;
class WorkloadRecorder;
}  // namespace obs

namespace exec {

/// Evaluates batches of RSTkNN queries concurrently over a shared read-only
/// ShardedIndex + Dataset (DESIGN.md §15).
///
/// Parallelism is query-major: the pool fans QUERIES across workers and each
/// query runs its shards serially on its worker (ThreadPool::ParallelFor does
/// not nest, and for batches query-major keeps every worker busy without the
/// per-shard fan-out's merge overhead). Single interactive queries that want
/// shard-level parallelism call ShardedSearcher::Search with a pool directly.
///
/// Determinism contract: results are written into slots keyed by query index
/// and each query runs the unmodified scatter-gather algorithm, so the output
/// vector is byte-identical to running the same queries serially — at any
/// thread count and any shard count (see ShardedSearcher).
///
/// Observability: journal capture (set_journal) and the index heatmap
/// (set_heatmap) mirror BatchRunner — per-worker private recorders merged
/// after the join, one aggregated registry publish per batch (rstknn.* totals,
/// rstknn.shard.* triage counters, exec.batch.* timings). Slow-query capture,
/// phase profiling and trace events are not supported in sharded batches —
/// they are per-tree instruments; capture those through the single-index
/// BatchRunner or a serial ShardedSearcher loop.
class ShardedBatchRunner {
 public:
  /// All referents must outlive the runner. `pool` is borrowed, not owned.
  ShardedBatchRunner(const shard::ShardedIndex* index, const Dataset* dataset,
                     const StScorer* scorer, ThreadPool* pool)
      : index_(index), dataset_(dataset), scorer_(scorer), pool_(pool) {}

  /// Attaches an open workload journal: every sampled query appends one
  /// record (query object, wall time, stats, answer digest), exactly as
  /// BatchRunner does. Null disables capture — the default.
  void set_journal(obs::WorkloadRecorder* journal) { journal_ = journal; }

  /// Attaches a cross-batch index heatmap. Each worker feeds a private
  /// recorder, merged into `heatmap` after the join; totals reconcile exactly
  /// against BatchStats::total at any thread count (node ids are the forest
  /// ids assigned by ShardedSearcher, stable across runs). Null disables —
  /// the default.
  void set_heatmap(obs::HeatmapRecorder* heatmap) { heatmap_ = heatmap; }

  /// Runs every query through ShardedSearcher::Search. `options.scratch` and
  /// `options.heatmap` are overridden per worker; `options.explain` and
  /// `options.pool` are unsupported in sharded mode (RST_CHECK in the
  /// searcher). `shard_stats`, when non-null, receives the batch-summed
  /// triage counters.
  std::vector<RstknnResult> RunRstknn(
      const std::vector<RstknnQuery>& queries, const RstknnOptions& options,
      BatchStats* batch_stats = nullptr,
      shard::ShardedStats* shard_stats = nullptr) const;

 private:
  const shard::ShardedIndex* index_;
  const Dataset* dataset_;
  const StScorer* scorer_;
  ThreadPool* pool_;
  obs::WorkloadRecorder* journal_ = nullptr;
  obs::HeatmapRecorder* heatmap_ = nullptr;
};

}  // namespace exec
}  // namespace rst

#endif  // RST_EXEC_SHARDED_RUNNER_H_
