#include "rst/exec/batch_runner.h"

#include <memory>
#include <utility>

#include "rst/common/check.h"
#include "rst/common/stopwatch.h"
#include "rst/frozen/frozen.h"
#include "rst/obs/explain.h"
#include "rst/obs/heatmap.h"
#include "rst/obs/journal.h"
#include "rst/obs/json.h"
#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"
#include "rst/obs/phase_timer.h"
#include "rst/obs/slow_log.h"
#include "rst/obs/trace.h"
#include "rst/obs/trace_event.h"

namespace rst {
namespace exec {

namespace {

/// Batch-level registry handles, cached once (all updates are lock-free
/// atomics, safe from any worker).
struct BatchMetrics {
  obs::Counter batches;
  obs::Counter batch_queries;
  obs::HistogramRef batch_ms;
  obs::HistogramRef worker_busy_ms;
  obs::HistogramRef queue_wait_ms;
  obs::Counter rstknn_queries;
  obs::Counter rstknn_answers;
  obs::HistogramRef rstknn_query_ms;

  static const BatchMetrics& Get() {
    static const BatchMetrics* metrics = [] {
      // rst-lint: allow(raw-new-delete) leaky singleton; cached metric handles live for the process
      auto* m = new BatchMetrics();
      obs::MetricRegistry& registry = obs::MetricRegistry::Global();
      m->batches = registry.GetCounter(obs::names::kExecBatches);
      m->batch_queries = registry.GetCounter(obs::names::kExecBatchQueries);
      m->batch_ms = registry.GetHistogram(obs::names::kExecBatchMs,
                                          obs::HistogramSpec::LatencyMs());
      m->worker_busy_ms = registry.GetHistogram(
          obs::names::kExecWorkerBusyMs, obs::HistogramSpec::LatencyMs());
      m->queue_wait_ms = registry.GetHistogram(
          obs::names::kExecBatchQueueWaitMs, obs::HistogramSpec::LatencyMs());
      m->rstknn_queries = registry.GetCounter(obs::names::kRstknnQueries);
      m->rstknn_answers = registry.GetCounter(obs::names::kRstknnAnswers);
      m->rstknn_query_ms = registry.GetHistogram(
          obs::names::kRstknnQueryMs, obs::HistogramSpec::LatencyMs());
      return m;
    }();
    return *metrics;
  }
};

/// Per-worker accumulator, cache-line padded so adjacent workers never share
/// a line on the hot path. Deliberately unsynchronized (no RST_GUARDED_BY):
/// slot w is written only by worker w during the loop, and the caller reads
/// the slots only after ParallelFor returns — publication rides the pool's
/// internal mutex handshake (ThreadPool's done_cv_ join), which is exactly
/// the contract the thread-safety analysis checks inside ThreadPool itself.
struct alignas(64) WorkerSlot {
  RstknnStats stats;
  double busy_ms = 0.0;
  uint64_t answers = 0;
};

}  // namespace

obs::JournalStats ToJournalStats(const RstknnStats& stats) {
  obs::JournalStats out;
  out.io_node_reads = stats.io.node_reads;
  out.io_payload_blocks = stats.io.payload_blocks;
  out.io_payload_bytes = stats.io.payload_bytes;
  out.io_cache_hits = stats.io.cache_hits;
  out.entries_created = stats.entries_created;
  out.expansions = stats.expansions;
  out.pruned_entries = stats.pruned_entries;
  out.reported_entries = stats.reported_entries;
  out.bound_computations = stats.bound_computations;
  out.probes = stats.probes;
  out.pq_pops = stats.pq_pops;
  return out;
}

obs::JournalQueryRecord MakeJournalRecord(uint64_t index,
                                          const RstknnQuery& query,
                                          const RstknnResult& result,
                                          double wall_ms) {
  obs::JournalQueryRecord record;
  record.index = index;
  record.x = query.loc.x;
  record.y = query.loc.y;
  record.k = query.k;
  record.self = query.self;  // IurTree::kNoObject maps to kNoSelf verbatim
  if (query.doc != nullptr) {
    record.terms.reserve(query.doc->entries().size());
    for (const TermWeight& tw : query.doc->entries()) {
      record.terms.emplace_back(tw.term, tw.weight);
    }
  }
  record.wall_ms = wall_ms;
  record.answer_count = result.answers.size();
  record.answer_digest = obs::AnswerDigest(result.answers);
  record.stats = ToJournalStats(result.stats);
  return record;
}

std::vector<RstknnResult> BatchRunner::RunRstknn(
    const std::vector<RstknnQuery>& queries, const RstknnOptions& options,
    BatchStats* batch_stats) const {
  const BatchMetrics& metrics = BatchMetrics::Get();
  const size_t workers = pool_->num_threads();
  std::vector<RstknnResult> results(queries.size());
  std::vector<WorkerSlot> slots(workers);
  std::vector<std::unique_ptr<ProbeScratch>> scratches;
  scratches.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    scratches.push_back(std::make_unique<ProbeScratch>());
  }

  // Slow-query capture: one shared (read-only) explain index for the whole
  // batch; each query owns a PRIVATE trace + recorder, so the single-threaded
  // trace contract holds even though the batch is parallel. A frozen-backed
  // runner needs no index — the frozen layout's entry indices ARE the
  // explain numbering.
  std::unique_ptr<ExplainIndex> explain_index;
  if ((slow_log_ != nullptr || heatmap_ != nullptr) && tree_ != nullptr) {
    explain_index = std::make_unique<ExplainIndex>(*tree_);
  }

  // Index heatmap: one PRIVATE recorder per worker (the searcher hot path
  // stays lock-free), merged into the caller's recorder after the join —
  // counters are commutative sums keyed by stable node ids, so the merged
  // heatmap is identical at any thread count.
  std::vector<std::unique_ptr<obs::HeatmapRecorder>> worker_heatmaps;
  if (heatmap_ != nullptr) {
    worker_heatmaps.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      worker_heatmaps.push_back(std::make_unique<obs::HeatmapRecorder>());
    }
  }

  // Profiling: one PRIVATE profiler per worker (heap-allocated so adjacent
  // workers never share a cache line); Search() resets it per query and its
  // histogram publishes are lock-free, so this needs no synchronization.
  std::vector<std::unique_ptr<obs::PhaseProfiler>> profilers;
  if (profiling_) {
    profilers.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      profilers.push_back(std::make_unique<obs::PhaseProfiler>());
    }
  }
  if (trace_events_ != nullptr) {
    for (size_t w = 0; w < workers; ++w) {
      trace_events_->AddThreadName(static_cast<uint32_t>(w + 1),
                                   "worker " + std::to_string(w));
    }
    trace_events_->AddThreadName(static_cast<uint32_t>(workers + 1), "queue");
  }

  const RstknnSearcher searcher =
      frozen_ != nullptr ? RstknnSearcher(frozen_, dataset_, scorer_)
                         : RstknnSearcher(tree_, dataset_, scorer_);
  Stopwatch wall;
  pool_->ParallelFor(
      queries.size(), /*chunk=*/1, [&](size_t i, size_t w) {
        // Queue wait = batch start → first instruction of this query on a
        // worker. With chunk=1 dispatch that is exactly the time the query
        // sat behind earlier work.
        const double queue_wait_ms = wall.ElapsedMillis();
        metrics.queue_wait_ms.Record(queue_wait_ms);
        double run_start_us = 0.0;
        bool sampled = false;
        if (trace_events_ != nullptr) {
          run_start_us = trace_events_->NowUs();
          sampled = trace_events_->ShouldSample();
        }
        Stopwatch query_timer;
        RstknnOptions worker_options = options;
        worker_options.trace = nullptr;    // a shared trace would race
        worker_options.heatmap = nullptr;  // so would a shared heatmap
        worker_options.scratch = scratches[w].get();
        worker_options.publish_metrics = false;
        if (profiling_) worker_options.profiler = profilers[w].get();
        std::unique_ptr<obs::QueryTrace> trace;
        obs::ExplainRecorder recorder;
        if (slow_log_ != nullptr || sampled) {
          trace = std::make_unique<obs::QueryTrace>(obs::names::kTraceRstknnBatch);
          worker_options.trace = trace.get();
        }
        if (slow_log_ != nullptr) {
          worker_options.explain = &recorder;
        }
        if (heatmap_ != nullptr) {
          worker_options.heatmap = worker_heatmaps[w].get();
        }
        if (explain_index != nullptr) {
          worker_options.explain_index = explain_index.get();
        }
        results[i] = searcher.Search(queries[i], worker_options);
        const double ms = query_timer.ElapsedMillis();
        if (journal_ != nullptr && journal_->ShouldSample(i)) {
          obs::JournalQueryRecord record =
              MakeJournalRecord(i, queries[i], results[i], ms);
          if (profiling_) {
            obs::JsonWriter phases;
            profilers[w]->AppendJson(&phases);
            record.phases_json = phases.TakeString();
          }
          journal_->Append(record);
        }
        if (trace != nullptr) trace->Finish();
        if (slow_log_ != nullptr && slow_log_->ShouldCapture(ms)) {
          obs::SlowQueryRecord record;
          record.query_index = i;
          record.label = obs::names::kTraceRstknnBatch;
          record.elapsed_ms = ms;
          record.answers = results[i].answers.size();
          record.trace_json = trace->ToJson();
          record.explain_json = recorder.ToJson();
          slow_log_->Insert(std::move(record));
        }
        if (trace_events_ != nullptr) {
          const uint32_t tid = static_cast<uint32_t>(w + 1);
          trace_events_->AddComplete(
              obs::names::kTraceEventRun, obs::names::kTraceCatExec, tid,
              run_start_us, ms * 1000.0,
              {obs::names::kTraceArgQuery, static_cast<double>(i)},
              {obs::names::kTraceArgQueueWaitMs, queue_wait_ms});
          if (sampled) {
            // The sampled query's wait renders on the shared queue track;
            // every query's wait is still on its run event as an arg.
            trace_events_->AddComplete(
                obs::names::kTraceEventQueueWait, obs::names::kTraceCatExec,
                static_cast<uint32_t>(workers + 1),
                run_start_us - queue_wait_ms * 1000.0, queue_wait_ms * 1000.0,
                {obs::names::kTraceArgQuery, static_cast<double>(i)});
            trace_events_->AddSpanTree(trace->root(), tid, run_start_us);
          }
        }
        metrics.rstknn_query_ms.Record(ms);
        slots[w].busy_ms += ms;
        slots[w].answers += results[i].answers.size();
        slots[w].stats.Merge(results[i].stats);
      });
  const double wall_ms = wall.ElapsedMillis();

  if (heatmap_ != nullptr) {
    for (const std::unique_ptr<obs::HeatmapRecorder>& worker_heatmap :
         worker_heatmaps) {
      heatmap_->Merge(*worker_heatmap);
    }
    heatmap_->AddQueries(queries.size());
  }

  BatchStats aggregate;
  aggregate.queries = queries.size();
  aggregate.wall_ms = wall_ms;
  aggregate.worker_busy_ms.reserve(workers);
  for (const WorkerSlot& slot : slots) {
    aggregate.total.Merge(slot.stats);
    aggregate.answers += slot.answers;
    aggregate.worker_busy_ms.push_back(slot.busy_ms);
    metrics.worker_busy_ms.Record(slot.busy_ms);
  }
  // One aggregated publish for the whole batch (the per-query publishes were
  // suppressed above) — the registry sees the same totals as N serial
  // queries, in 1/N the registry traffic.
  aggregate.total.Publish(obs::names::kRstknnPrefix);
  metrics.rstknn_queries.Add(aggregate.queries);
  metrics.rstknn_answers.Add(aggregate.answers);
  metrics.batches.Increment();
  metrics.batch_queries.Add(aggregate.queries);
  metrics.batch_ms.Record(wall_ms);
  if (batch_stats != nullptr) *batch_stats = std::move(aggregate);
  return results;
}

std::vector<std::vector<TopKResult>> BatchRunner::RunTopK(
    const std::vector<TopKQuery>& queries, BatchStats* batch_stats) const {
  RST_CHECK(tree_ != nullptr) << "RunTopK is pointer-tree-only";
  const BatchMetrics& metrics = BatchMetrics::Get();
  const size_t workers = pool_->num_threads();
  std::vector<std::vector<TopKResult>> results(queries.size());
  std::vector<WorkerSlot> slots(workers);

  const TopKSearcher searcher(tree_, dataset_, scorer_);
  Stopwatch wall;
  pool_->ParallelFor(
      queries.size(), /*chunk=*/1, [&](size_t i, size_t w) {
        metrics.queue_wait_ms.Record(wall.ElapsedMillis());
        Stopwatch query_timer;
        IoStats io;
        results[i] = searcher.Search(queries[i], &io);
        slots[w].busy_ms += query_timer.ElapsedMillis();
        slots[w].answers += results[i].size();
        slots[w].stats.io += io;
      });
  const double wall_ms = wall.ElapsedMillis();

  BatchStats aggregate;
  aggregate.queries = queries.size();
  aggregate.wall_ms = wall_ms;
  aggregate.worker_busy_ms.reserve(workers);
  for (const WorkerSlot& slot : slots) {
    aggregate.total.Merge(slot.stats);
    aggregate.answers += slot.answers;
    aggregate.worker_busy_ms.push_back(slot.busy_ms);
    metrics.worker_busy_ms.Record(slot.busy_ms);
  }
  metrics.batches.Increment();
  metrics.batch_queries.Add(aggregate.queries);
  metrics.batch_ms.Record(wall_ms);
  if (batch_stats != nullptr) *batch_stats = std::move(aggregate);
  return results;
}

}  // namespace exec
}  // namespace rst
