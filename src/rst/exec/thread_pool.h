#ifndef RST_EXEC_THREAD_POOL_H_
#define RST_EXEC_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "rst/common/mutex.h"
#include "rst/common/thread_annotations.h"

namespace rst {
namespace exec {

/// A fixed-size thread pool specialized for data-parallel loops over query
/// batches. Deliberately work-stealing-free: one ParallelFor runs at a time,
/// and workers claim contiguous index chunks from a single shared atomic
/// cursor (a "chunk queue"). That keeps the dispatch path one fetch_add per
/// chunk, makes scheduling trivially fair for coarse items like queries, and
/// leaves nothing scheduler-dependent in the *results* — callers write into
/// slots keyed by item index, so output is deterministic regardless of which
/// worker ran which chunk.
///
/// The calling thread participates as worker 0; a pool of `num_threads`
/// spawns `num_threads - 1` background threads. `ThreadPool(1)` spawns
/// nothing and runs every loop inline, so the serial path stays the serial
/// path.
class ThreadPool {
 public:
  /// `num_threads` == 0 is treated as 1 (fully inline).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the calling thread.
  size_t num_threads() const { return threads_.size() + 1; }

  /// Runs `fn(index, worker)` for every index in [0, count), blocking until
  /// all invocations finish. `worker` is in [0, num_threads()) and is stable
  /// within one invocation — callers use it to index per-worker scratch.
  /// Indices are handed out in chunks of `chunk` (>= 1) consecutive items.
  ///
  /// If any invocation throws, remaining unclaimed chunks are abandoned,
  /// in-flight chunks run to completion, and the first exception (in
  /// completion order) is rethrown on the calling thread. ParallelFor calls
  /// are serialized: the pool runs one loop at a time.
  void ParallelFor(size_t count, size_t chunk,
                   const std::function<void(size_t index, size_t worker)>& fn)
      RST_EXCLUDES(run_mu_, mu_);

 private:
  /// Job is a nested aggregate, so its mu_-protected fields cannot name the
  /// owning pool's mutex in an annotation; the analysis checks them at the
  /// access sites inside ThreadPool methods instead, where `job_` is
  /// RST_PT_GUARDED_BY(mu_).
  struct Job {
    size_t count = 0;
    size_t chunk = 1;
    const std::function<void(size_t, size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};  ///< shared chunk cursor
    size_t active_workers = 0;    ///< pool workers still running (under mu_)
    std::exception_ptr error;     ///< first exception (under mu_)
  };

  void WorkerLoop(size_t worker) RST_EXCLUDES(mu_);
  /// Claims and runs chunks until the cursor is exhausted. Returns normally
  /// even when an invocation throws (the error lands in job->error).
  void RunChunks(Job* job, size_t worker) RST_EXCLUDES(mu_);

  std::vector<std::thread> threads_;
  Mutex mu_;
  CondVar work_cv_;  ///< wakes workers for a new job
  CondVar done_cv_;  ///< wakes the caller when workers drain
  Job* job_ RST_GUARDED_BY(mu_) RST_PT_GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ RST_GUARDED_BY(mu_) = 0;  ///< bumps per job so
                                                 ///< workers join once
  bool stop_ RST_GUARDED_BY(mu_) = false;
  Mutex run_mu_ RST_ACQUIRED_BEFORE(mu_);  ///< serializes ParallelFor callers
};

}  // namespace exec
}  // namespace rst

#endif  // RST_EXEC_THREAD_POOL_H_
