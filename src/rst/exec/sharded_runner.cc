#include "rst/exec/sharded_runner.h"

#include <memory>
#include <utility>

#include "rst/common/stopwatch.h"
#include "rst/obs/heatmap.h"
#include "rst/obs/journal.h"
#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"

namespace rst {
namespace exec {

namespace {

/// Batch-level registry handles, cached once (all updates are lock-free
/// atomics, safe from any worker).
struct ShardedBatchMetrics {
  obs::Counter batches;
  obs::Counter batch_queries;
  obs::HistogramRef batch_ms;
  obs::HistogramRef worker_busy_ms;
  obs::Counter rstknn_queries;
  obs::Counter rstknn_answers;
  obs::HistogramRef rstknn_query_ms;

  static const ShardedBatchMetrics& Get() {
    static const ShardedBatchMetrics* metrics = [] {
      // rst-lint: allow(raw-new-delete) leaky singleton; cached metric handles live for the process
      auto* m = new ShardedBatchMetrics();
      obs::MetricRegistry& registry = obs::MetricRegistry::Global();
      m->batches = registry.GetCounter(obs::names::kExecBatches);
      m->batch_queries = registry.GetCounter(obs::names::kExecBatchQueries);
      m->batch_ms = registry.GetHistogram(obs::names::kExecBatchMs,
                                          obs::HistogramSpec::LatencyMs());
      m->worker_busy_ms = registry.GetHistogram(
          obs::names::kExecWorkerBusyMs, obs::HistogramSpec::LatencyMs());
      m->rstknn_queries = registry.GetCounter(obs::names::kRstknnQueries);
      m->rstknn_answers = registry.GetCounter(obs::names::kRstknnAnswers);
      m->rstknn_query_ms = registry.GetHistogram(
          obs::names::kRstknnQueryMs, obs::HistogramSpec::LatencyMs());
      return m;
    }();
    return *metrics;
  }
};

/// Per-worker accumulator, cache-line padded so adjacent workers never share
/// a line on the hot path. Deliberately unsynchronized (no RST_GUARDED_BY):
/// slot w is written only by worker w during the loop, and the caller reads
/// the slots only after ParallelFor returns — publication rides the pool's
/// internal mutex handshake (ThreadPool's done_cv_ join), which is exactly
/// the contract the thread-safety analysis checks inside ThreadPool itself.
struct alignas(64) ShardedWorkerSlot {
  RstknnStats stats;
  shard::ShardedStats shards;
  double busy_ms = 0.0;
  uint64_t answers = 0;
};

}  // namespace

std::vector<RstknnResult> ShardedBatchRunner::RunRstknn(
    const std::vector<RstknnQuery>& queries, const RstknnOptions& options,
    BatchStats* batch_stats, shard::ShardedStats* shard_stats) const {
  const ShardedBatchMetrics& metrics = ShardedBatchMetrics::Get();
  const size_t workers = pool_->num_threads();
  std::vector<RstknnResult> results(queries.size());
  std::vector<ShardedWorkerSlot> slots(workers);
  std::vector<std::unique_ptr<ProbeScratch>> scratches;
  scratches.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    scratches.push_back(std::make_unique<ProbeScratch>());
  }

  // Index heatmap: one PRIVATE recorder per worker, merged into the caller's
  // recorder after the join — same scheme as BatchRunner, with forest node
  // ids (ShardedSearcher's numbering) instead of tree ids.
  std::vector<std::unique_ptr<obs::HeatmapRecorder>> worker_heatmaps;
  if (heatmap_ != nullptr) {
    worker_heatmaps.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      worker_heatmaps.push_back(std::make_unique<obs::HeatmapRecorder>());
    }
  }

  const shard::ShardedSearcher searcher(index_, dataset_, scorer_);
  Stopwatch wall;
  pool_->ParallelFor(
      queries.size(), /*chunk=*/1, [&](size_t i, size_t w) {
        Stopwatch query_timer;
        RstknnOptions worker_options = options;
        worker_options.trace = nullptr;     // a shared trace would race
        worker_options.profiler = nullptr;  // so would a shared profiler
        worker_options.scratch = scratches[w].get();
        worker_options.publish_metrics = false;
        worker_options.heatmap =
            heatmap_ != nullptr ? worker_heatmaps[w].get() : nullptr;
        // Shards run serially on this worker (pool=nullptr): ParallelFor
        // does not nest, and query-major parallelism already fills the pool.
        shard::ShardedResult res =
            searcher.Search(queries[i], worker_options, /*pool=*/nullptr);
        results[i] = RstknnResult{std::move(res.answers), res.stats};
        const double ms = query_timer.ElapsedMillis();
        if (journal_ != nullptr && journal_->ShouldSample(i)) {
          journal_->Append(MakeJournalRecord(i, queries[i], results[i], ms));
        }
        metrics.rstknn_query_ms.Record(ms);
        slots[w].busy_ms += ms;
        slots[w].answers += results[i].answers.size();
        slots[w].stats.Merge(res.stats);
        slots[w].shards.Merge(res.shards);
      });
  const double wall_ms = wall.ElapsedMillis();

  if (heatmap_ != nullptr) {
    for (const std::unique_ptr<obs::HeatmapRecorder>& worker_heatmap :
         worker_heatmaps) {
      heatmap_->Merge(*worker_heatmap);
    }
    heatmap_->AddQueries(queries.size());
  }

  BatchStats aggregate;
  shard::ShardedStats shard_totals;
  aggregate.queries = queries.size();
  aggregate.wall_ms = wall_ms;
  aggregate.worker_busy_ms.reserve(workers);
  for (const ShardedWorkerSlot& slot : slots) {
    aggregate.total.Merge(slot.stats);
    shard_totals.Merge(slot.shards);
    aggregate.answers += slot.answers;
    aggregate.worker_busy_ms.push_back(slot.busy_ms);
    metrics.worker_busy_ms.Record(slot.busy_ms);
  }
  // One aggregated publish for the whole batch (the per-query publishes were
  // suppressed above) — the registry sees the same totals as N serial
  // queries, in 1/N the registry traffic.
  aggregate.total.Publish(obs::names::kRstknnPrefix);
  shard_totals.Publish();
  metrics.rstknn_queries.Add(aggregate.queries);
  metrics.rstknn_answers.Add(aggregate.answers);
  metrics.batches.Increment();
  metrics.batch_queries.Add(aggregate.queries);
  metrics.batch_ms.Record(wall_ms);
  if (batch_stats != nullptr) *batch_stats = std::move(aggregate);
  if (shard_stats != nullptr) *shard_stats = shard_totals;
  return results;
}

}  // namespace exec
}  // namespace rst
