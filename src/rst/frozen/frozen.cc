#include "rst/frozen/frozen.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "rst/common/file_util.h"
#include "rst/common/stopwatch.h"
#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"
#include "rst/obs/trace.h"
#include "rst/storage/varint.h"

namespace rst {
namespace frozen {

namespace {

constexpr char kMagic[4] = {'R', 'S', 'T', 'F'};

struct FrozenMetrics {
  obs::Counter freezes;
  obs::Counter loads;
  obs::Gauge freeze_ms;
  obs::Gauge load_ms;

  static const FrozenMetrics& Get() {
    static const FrozenMetrics* metrics = [] {
      // rst-lint: allow(raw-new-delete) leaky singleton; cached metric handles live for the process
      auto* m = new FrozenMetrics();
      obs::MetricRegistry& registry = obs::MetricRegistry::Global();
      m->freezes = registry.GetCounter(obs::names::kFrozenFreezes);
      m->loads = registry.GetCounter(obs::names::kFrozenLoads);
      m->freeze_ms = registry.GetGauge(obs::names::kFrozenFreezeLastMs);
      m->load_ms = registry.GetGauge(obs::names::kFrozenLoadLastMs);
      return m;
    }();
    return *metrics;
  }
};

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  dst->append(buf, 8);
}

Status GetFixed64(const std::string& src, size_t* offset, uint64_t* value) {
  if (*offset + 8 > src.size()) {
    return Status::Corruption("truncated fixed64");
  }
  std::memcpy(value, src.data() + *offset, 8);
  *offset += 8;
  return Status::Ok();
}

uint64_t Fnv1a64(const char* data, size_t len) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

void PutSlice(std::string* dst, const TermSlice& s) {
  PutVarint64(dst, s.offset);
  PutVarint32(dst, s.len);
}

Status GetSlice(const std::string& src, size_t* offset, TermSlice* s) {
  Status status = GetVarint64(src, offset, &s->offset);
  if (!status.ok()) return status;
  return GetVarint32(src, offset, &s->len);
}

void PutSummaryRef(std::string* dst, const SummaryRef& s) {
  PutSlice(dst, s.uni);
  PutSlice(dst, s.intr);
  PutVarint32(dst, s.count);
}

Status GetSummaryRef(const std::string& src, size_t* offset, SummaryRef* s) {
  Status status = GetSlice(src, offset, &s->uni);
  if (!status.ok()) return status;
  status = GetSlice(src, offset, &s->intr);
  if (!status.ok()) return status;
  return GetVarint32(src, offset, &s->count);
}

/// Appends a term vector's entries to the pool and returns its slice.
TermSlice AppendToPool(const TermVector& vec, std::vector<TermWeight>* pool) {
  TermSlice slice;
  slice.offset = pool->size();
  slice.len = static_cast<uint32_t>(vec.size());
  pool->insert(pool->end(), vec.entries().begin(), vec.entries().end());
  return slice;
}

}  // namespace

FrozenTree FrozenTree::Freeze(const IurTree& tree, obs::QueryTrace* trace) {
  Stopwatch timer;
  obs::TraceSpan freeze_span(trace, obs::names::kSpanFrozenFreeze);
  FrozenTree out;
  out.size_ = tree.size();
  out.clustered_ = tree.clustered();
  out.has_payloads_ =
      tree.storage_finalized() && tree.root()->record_handle.valid();

  // The norm caches are copied from the source vectors; a summary whose intr
  // equals its uni (every leaf document) shares one pool slice.
  auto make_ref = [&out](const TextSummary& s) {
    SummaryRef ref;
    ref.count = s.count;
    ref.uni = AppendToPool(s.uni, &out.pool_);
    ref.uni_norm_sq = s.uni.NormSquared();
    if (s.intr.entries() == s.uni.entries()) {
      ref.intr = ref.uni;
      ref.intr_norm_sq = ref.uni_norm_sq;
    } else {
      ref.intr = AppendToPool(s.intr, &out.pool_);
      ref.intr_norm_sq = s.intr.NormSquared();
    }
    return ref;
  };

  // Layout walk: the exact stack traversal ExplainIndex uses to number
  // entries (children pushed in reverse so they pop in entry order; a popped
  // node's entries get consecutive indices). Entry index i therefore carries
  // explain id i + 1, and frozen/pointer explain JSON is byte-identical.
  if (trace != nullptr) trace->Enter(obs::names::kSpanFrozenLayout);
  struct Frame {
    const IurTree::Node* node;
    uint32_t level;
  };
  std::vector<Frame> stack = {{tree.root(), 0}};
  std::unordered_map<const IurTree::Node*, uint32_t> node_index;
  std::vector<std::pair<uint32_t, const IurTree::Node*>> child_links;
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    for (size_t i = frame.node->entries.size(); i-- > 0;) {
      const IurTree::Entry& e = frame.node->entries[i];
      if (!e.is_object()) stack.push_back({e.child, frame.level + 1});
    }
    const uint32_t node_id = out.num_nodes();
    node_index.emplace(frame.node, node_id);
    out.node_leaf_.push_back(frame.node->leaf ? 1 : 0);
    out.node_entry_begin_.push_back(out.num_entries());
    out.node_entry_count_.push_back(
        static_cast<uint32_t>(frame.node->entries.size()));
    out.node_record_.push_back(frame.node->record_handle);
    out.node_invfile_.push_back(frame.node->invfile_handle);
    for (const IurTree::Entry& e : frame.node->entries) {
      const uint32_t entry_id = out.num_entries();
      out.entry_rect_.push_back(e.rect);
      out.entry_id_.push_back(e.id);
      out.entry_child_.push_back(kNoNode);  // fixed up once the child pops
      out.entry_level_.push_back(frame.level);
      out.entry_summary_.push_back(make_ref(e.summary));
      out.entry_cluster_begin_.push_back(
          static_cast<uint32_t>(out.clusters_.size()));
      out.entry_cluster_count_.push_back(
          static_cast<uint32_t>(e.clusters.size()));
      for (const auto& [cluster_id, summary] : e.clusters) {
        out.clusters_.push_back({cluster_id, make_ref(summary)});
      }
      if (!e.is_object()) child_links.push_back({entry_id, e.child});
    }
  }
  for (const auto& [entry_id, child] : child_links) {
    out.entry_child_[entry_id] = node_index.at(child);
  }
  if (trace != nullptr) trace->Exit();  // layout

  if (out.has_payloads_) {
    obs::TraceSpan payload_span(trace, obs::names::kSpanFrozenPayloads);
    out.RebuildPayloads();
  }

  const FrozenMetrics& metrics = FrozenMetrics::Get();
  metrics.freezes.Increment();
  metrics.freeze_ms.Set(timer.ElapsedMillis());
  return out;
}

void FrozenTree::SerializeNodePayloads(uint32_t node) {
  const uint32_t begin = node_entry_begin_[node];
  const uint32_t count = node_entry_count_[node];
  if (!IsLeaf(node)) {
    for (uint32_t i = 0; i < count; ++i) {
      SerializeNodePayloads(entry_child_[begin + i]);
    }
  }
  // Byte-for-byte the record IurTree::SerializeNode writes, in the same
  // post-order, so page handles match the pointer tree exactly.
  std::string record;
  record.push_back(IsLeaf(node) ? 1 : 0);
  PutVarint32(&record, count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t e = begin + i;
    PutDouble(&record, entry_rect_[e].min_x);
    PutDouble(&record, entry_rect_[e].min_y);
    PutDouble(&record, entry_rect_[e].max_x);
    PutDouble(&record, entry_rect_[e].max_y);
    PutVarint32(&record, entry_id_[e] == kNoObject ? 0 : entry_id_[e] + 1);
    PutVarint32(&record, entry_summary_[e].count);
  }
  node_record_[node] = page_store_->Write(record);

  InvertedFile file;
  for (uint32_t i = 0; i < count; ++i) {
    const SummaryRef& s = entry_summary_[begin + i];
    const TermWeight* uni = pool_.data() + s.uni.offset;
    for (uint32_t t = 0; t < s.uni.len; ++t) {
      file[uni[t].term].push_back(
          {i, uni[t].weight,
           GetSpan(pool_.data() + s.intr.offset, s.intr.len, uni[t].term)});
    }
  }
  std::string payload;
  EncodeInvertedFile(file, &payload);
  if (clustered_) {
    auto slice_vector = [this](const TermSlice& s) {
      return TermVector::FromSorted(std::vector<TermWeight>(
          pool_.begin() + static_cast<ptrdiff_t>(s.offset),
          pool_.begin() + static_cast<ptrdiff_t>(s.offset) + s.len));
    };
    for (uint32_t i = 0; i < count; ++i) {
      const uint32_t e = begin + i;
      PutVarint32(&payload, entry_cluster_count_[e]);
      for (uint32_t c = 0; c < entry_cluster_count_[e]; ++c) {
        const ClusterRef& cluster = clusters_[entry_cluster_begin_[e] + c];
        PutVarint32(&payload, cluster.cluster_id);
        const TextSummary summary{slice_vector(cluster.summary.uni),
                                  slice_vector(cluster.summary.intr),
                                  cluster.summary.count};
        EncodeTextSummary(summary, &payload);
      }
    }
  }
  node_invfile_[node] = page_store_->Write(payload);
}

void FrozenTree::RebuildPayloads() {
  page_store_ = std::make_unique<PageStore>();
  node_record_.assign(num_nodes(), PageHandle());
  node_invfile_.assign(num_nodes(), PageHandle());
  if (num_nodes() > 0) SerializeNodePayloads(root());
}

void FrozenTree::RecomputeNorms() {
  auto norms = [this](SummaryRef* s) {
    s->uni_norm_sq = NormSquaredSpan(pool_.data() + s->uni.offset, s->uni.len);
    s->intr_norm_sq =
        NormSquaredSpan(pool_.data() + s->intr.offset, s->intr.len);
  };
  for (SummaryRef& s : entry_summary_) norms(&s);
  for (ClusterRef& c : clusters_) norms(&c.summary);
}

void FrozenTree::ChargeAccess(uint32_t node, IoStats* stats) const {
  if (stats == nullptr) return;
  stats->AddNodeRead();
  if (has_payloads_ && node_invfile_[node].valid()) {
    stats->AddPayloadRead(node_invfile_[node].bytes);
  }
}

Status FrozenTree::ReadNodePayload(uint32_t node, BufferPool* pool,
                                   IoStats* stats, InvertedFile* out) const {
  if (!has_payloads_ || !node_invfile_[node].valid()) {
    return Status::FailedPrecondition("frozen tree has no payloads");
  }
  stats->AddNodeRead();
  auto payload = pool->Fetch(node_invfile_[node], stats);
  if (!payload.ok()) return payload.status();
  size_t offset = 0;
  obs::TraceSpan decode_span(pool->trace(), obs::names::kSpanPayloadDecode);
  return DecodeInvertedFile(*payload.value(), &offset, out);
}

std::string FrozenTree::SerializeToString() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutVarint32(&out, kFormatVersion);
  uint8_t flags = 0;
  if (clustered_) flags |= 1;
  if (has_payloads_) flags |= 2;
  out.push_back(static_cast<char>(flags));
  PutVarint64(&out, size_);
  PutVarint32(&out, num_nodes());
  PutVarint32(&out, num_entries());
  PutVarint32(&out, static_cast<uint32_t>(clusters_.size()));
  PutVarint64(&out, pool_.size());
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    out.push_back(static_cast<char>(node_leaf_[n]));
    PutVarint32(&out, node_entry_begin_[n]);
    PutVarint32(&out, node_entry_count_[n]);
  }
  for (uint32_t e = 0; e < num_entries(); ++e) {
    PutDouble(&out, entry_rect_[e].min_x);
    PutDouble(&out, entry_rect_[e].min_y);
    PutDouble(&out, entry_rect_[e].max_x);
    PutDouble(&out, entry_rect_[e].max_y);
    PutVarint32(&out, entry_id_[e] == kNoObject ? 0 : entry_id_[e] + 1);
    PutVarint32(&out, entry_child_[e] == kNoNode ? 0 : entry_child_[e] + 1);
    PutVarint32(&out, entry_level_[e]);
    PutSummaryRef(&out, entry_summary_[e]);
    PutVarint32(&out, entry_cluster_begin_[e]);
    PutVarint32(&out, entry_cluster_count_[e]);
  }
  for (const ClusterRef& c : clusters_) {
    PutVarint32(&out, c.cluster_id);
    PutSummaryRef(&out, c.summary);
  }
  for (const TermWeight& tw : pool_) {
    PutVarint32(&out, tw.term);
    PutFloat(&out, tw.weight);
  }
  PutFixed64(&out, Fnv1a64(out.data(), out.size()));
  return out;
}

Result<FrozenTree> FrozenTree::Deserialize(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) + 8) {
    return Status::Corruption("frozen index: file too short");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("frozen index: bad magic");
  }
  // Verify the trailing checksum before trusting any field.
  size_t tail = bytes.size() - 8;
  uint64_t stored_checksum = 0;
  {
    size_t off = tail;
    Status status = GetFixed64(bytes, &off, &stored_checksum);
    if (!status.ok()) return status;
  }
  if (Fnv1a64(bytes.data(), tail) != stored_checksum) {
    return Status::Corruption("frozen index: checksum mismatch");
  }

  size_t offset = sizeof(kMagic);
  FrozenTree out;
  uint32_t version = 0;
  Status status = GetVarint32(bytes, &offset, &version);
  if (!status.ok()) return status;
  if (version != kFormatVersion) {
    return Status::InvalidArgument("frozen index: unsupported format version");
  }
  if (offset >= tail) return Status::Corruption("frozen index: truncated");
  const uint8_t flags = static_cast<uint8_t>(bytes[offset++]);
  out.clustered_ = (flags & 1) != 0;
  out.has_payloads_ = (flags & 2) != 0;

  uint32_t num_nodes = 0, num_entries = 0, num_clusters = 0;
  uint64_t pool_size = 0;
  status = GetVarint64(bytes, &offset, &out.size_);
  if (!status.ok()) return status;
  status = GetVarint32(bytes, &offset, &num_nodes);
  if (!status.ok()) return status;
  status = GetVarint32(bytes, &offset, &num_entries);
  if (!status.ok()) return status;
  status = GetVarint32(bytes, &offset, &num_clusters);
  if (!status.ok()) return status;
  status = GetVarint64(bytes, &offset, &pool_size);
  if (!status.ok()) return status;
  // Cheap sanity cap before any reserve: every node/entry/cluster/pool item
  // costs at least one serialized byte, so counts beyond the file size mean
  // corruption (and would otherwise trigger huge allocations).
  const uint64_t total_items = static_cast<uint64_t>(num_nodes) + num_entries +
                               num_clusters + pool_size;
  if (total_items > bytes.size()) {
    return Status::Corruption("frozen index: counts exceed file size");
  }

  out.node_leaf_.reserve(num_nodes);
  out.node_entry_begin_.reserve(num_nodes);
  out.node_entry_count_.reserve(num_nodes);
  for (uint32_t n = 0; n < num_nodes; ++n) {
    if (offset >= tail) return Status::Corruption("frozen index: truncated");
    out.node_leaf_.push_back(static_cast<uint8_t>(bytes[offset++]));
    uint32_t begin = 0, count = 0;
    status = GetVarint32(bytes, &offset, &begin);
    if (!status.ok()) return status;
    status = GetVarint32(bytes, &offset, &count);
    if (!status.ok()) return status;
    out.node_entry_begin_.push_back(begin);
    out.node_entry_count_.push_back(count);
  }
  out.node_record_.assign(num_nodes, PageHandle());
  out.node_invfile_.assign(num_nodes, PageHandle());

  out.entry_rect_.reserve(num_entries);
  out.entry_id_.reserve(num_entries);
  out.entry_child_.reserve(num_entries);
  out.entry_level_.reserve(num_entries);
  out.entry_summary_.reserve(num_entries);
  out.entry_cluster_begin_.reserve(num_entries);
  out.entry_cluster_count_.reserve(num_entries);
  for (uint32_t e = 0; e < num_entries; ++e) {
    Rect rect;
    status = GetDouble(bytes, &offset, &rect.min_x);
    if (!status.ok()) return status;
    status = GetDouble(bytes, &offset, &rect.min_y);
    if (!status.ok()) return status;
    status = GetDouble(bytes, &offset, &rect.max_x);
    if (!status.ok()) return status;
    status = GetDouble(bytes, &offset, &rect.max_y);
    if (!status.ok()) return status;
    uint32_t id_plus = 0, child_plus = 0, level = 0;
    status = GetVarint32(bytes, &offset, &id_plus);
    if (!status.ok()) return status;
    status = GetVarint32(bytes, &offset, &child_plus);
    if (!status.ok()) return status;
    status = GetVarint32(bytes, &offset, &level);
    if (!status.ok()) return status;
    SummaryRef summary;
    status = GetSummaryRef(bytes, &offset, &summary);
    if (!status.ok()) return status;
    uint32_t cluster_begin = 0, cluster_count = 0;
    status = GetVarint32(bytes, &offset, &cluster_begin);
    if (!status.ok()) return status;
    status = GetVarint32(bytes, &offset, &cluster_count);
    if (!status.ok()) return status;
    out.entry_rect_.push_back(rect);
    out.entry_id_.push_back(id_plus == 0 ? kNoObject : id_plus - 1);
    out.entry_child_.push_back(child_plus == 0 ? kNoNode : child_plus - 1);
    out.entry_level_.push_back(level);
    out.entry_summary_.push_back(summary);
    out.entry_cluster_begin_.push_back(cluster_begin);
    out.entry_cluster_count_.push_back(cluster_count);
  }

  out.clusters_.reserve(num_clusters);
  for (uint32_t c = 0; c < num_clusters; ++c) {
    ClusterRef cluster;
    status = GetVarint32(bytes, &offset, &cluster.cluster_id);
    if (!status.ok()) return status;
    status = GetSummaryRef(bytes, &offset, &cluster.summary);
    if (!status.ok()) return status;
    out.clusters_.push_back(cluster);
  }

  out.pool_.reserve(pool_size);
  for (uint64_t i = 0; i < pool_size; ++i) {
    TermWeight tw;
    status = GetVarint32(bytes, &offset, &tw.term);
    if (!status.ok()) return status;
    status = GetFloat(bytes, &offset, &tw.weight);
    if (!status.ok()) return status;
    out.pool_.push_back(tw);
  }
  if (offset != tail) {
    return Status::Corruption("frozen index: trailing bytes");
  }

  status = out.CheckInvariants();
  if (!status.ok()) return status;
  out.RecomputeNorms();
  if (out.has_payloads_) out.RebuildPayloads();
  return out;
}

Status FrozenTree::Save(const std::string& path) const {
  return WriteStringToFile(path, SerializeToString());
}

Result<FrozenTree> FrozenTree::Load(const std::string& path) {
  Stopwatch timer;
  Result<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  Result<FrozenTree> tree = Deserialize(bytes.value());
  if (!tree.ok()) return tree.status();
  const FrozenMetrics& metrics = FrozenMetrics::Get();
  metrics.loads.Increment();
  metrics.load_ms.Set(timer.ElapsedMillis());
  return tree;
}

Status FrozenTree::CheckInvariants() const {
  if (num_nodes() == 0) return Status::Corruption("frozen index: no root");
  if (node_entry_begin_.size() != num_nodes() ||
      node_entry_count_.size() != num_nodes()) {
    return Status::Corruption("frozen index: node array size mismatch");
  }
  // Entries tile [0, num_entries) in node order (the layout walk appends a
  // popped node's entries consecutively).
  uint32_t expected_begin = 0;
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    if (node_entry_begin_[n] != expected_begin) {
      return Status::Corruption("frozen index: entries do not tile");
    }
    if (node_entry_count_[n] >
        num_entries() - expected_begin) {
      return Status::Corruption("frozen index: entry span overflow");
    }
    expected_begin += node_entry_count_[n];
  }
  if (expected_begin != num_entries()) {
    return Status::Corruption("frozen index: dangling entries");
  }
  std::vector<uint8_t> child_seen(num_nodes(), 0);
  uint64_t objects = 0;
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    const uint32_t begin = node_entry_begin_[n];
    for (uint32_t i = 0; i < node_entry_count_[n]; ++i) {
      const uint32_t e = begin + i;
      if (IsLeaf(n)) {
        if (entry_child_[e] != kNoNode) {
          return Status::Corruption("frozen index: leaf entry with child");
        }
        if (entry_id_[e] == kNoObject) {
          return Status::Corruption("frozen index: leaf entry without object");
        }
        ++objects;
      } else {
        const uint32_t child = entry_child_[e];
        if (child == kNoNode) {
          return Status::Corruption("frozen index: internal entry w/o child");
        }
        // Children pop after their parent in the layout walk, so a child
        // index <= its parent's means a cycle or a forged link.
        if (child <= n || child >= num_nodes()) {
          return Status::Corruption("frozen index: child index out of order");
        }
        if (child_seen[child]++ != 0) {
          return Status::Corruption("frozen index: node with two parents");
        }
        const uint32_t child_begin = node_entry_begin_[child];
        for (uint32_t j = 0; j < node_entry_count_[child]; ++j) {
          if (entry_level_[child_begin + j] != entry_level_[e] + 1) {
            return Status::Corruption("frozen index: inconsistent levels");
          }
        }
      }
    }
  }
  for (uint32_t n = 1; n < num_nodes(); ++n) {
    if (child_seen[n] == 0) {
      return Status::Corruption("frozen index: orphan node");
    }
  }
  if (objects != size_) {
    return Status::Corruption("frozen index: object count mismatch");
  }
  auto check_ref = [this](const SummaryRef& s) {
    return s.uni.offset + s.uni.len <= pool_.size() &&
           s.intr.offset + s.intr.len <= pool_.size();
  };
  for (const SummaryRef& s : entry_summary_) {
    if (!check_ref(s)) {
      return Status::Corruption("frozen index: summary slice out of pool");
    }
  }
  for (uint32_t e = 0; e < num_entries(); ++e) {
    const uint64_t end = static_cast<uint64_t>(entry_cluster_begin_[e]) +
                         entry_cluster_count_[e];
    if (end > clusters_.size()) {
      return Status::Corruption("frozen index: cluster span out of range");
    }
  }
  for (const ClusterRef& c : clusters_) {
    if (!check_ref(c.summary)) {
      return Status::Corruption("frozen index: cluster slice out of pool");
    }
  }
  // Same bracketing contract the pointer tree enforces: slices sorted, weights
  // non-negative, and the intersection dominated by the union — otherwise the
  // frozen kernels could compute MinSim > MaxSim.
  auto check_summary = [this](const SummaryRef& s) -> Status {
    const TermSlice* slices[] = {&s.uni, &s.intr};
    for (const TermSlice* slice : slices) {
      for (uint32_t i = 0; i < slice->len; ++i) {
        const TermWeight& w = pool_[slice->offset + i];
        if (i > 0 && pool_[slice->offset + i - 1].term >= w.term) {
          return Status::Corruption("frozen index: unsorted summary slice");
        }
        if (w.weight < 0.0f) {
          return Status::Corruption("frozen index: negative summary weight");
        }
      }
    }
    for (uint32_t i = 0; i < s.intr.len; ++i) {
      const TermWeight& w = pool_[s.intr.offset + i];
      if (!ContainsSpan(&pool_[s.uni.offset], s.uni.len, w.term) ||
          w.weight > GetSpan(&pool_[s.uni.offset], s.uni.len, w.term)) {
        return Status::Corruption(
            "frozen index: intersection not dominated by union for term " +
            std::to_string(w.term));
      }
    }
    return Status::Ok();
  };
  for (const SummaryRef& s : entry_summary_) {
    const Status summary_ok = check_summary(s);
    if (!summary_ok.ok()) return summary_ok;
  }
  for (const ClusterRef& c : clusters_) {
    const Status summary_ok = check_summary(c.summary);
    if (!summary_ok.ok()) return summary_ok;
  }
  return Status::Ok();
}

}  // namespace frozen
}  // namespace rst
