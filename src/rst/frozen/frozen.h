#ifndef RST_FROZEN_FROZEN_H_
#define RST_FROZEN_FROZEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rst/common/geometry.h"
#include "rst/common/status.h"
#include "rst/iurtree/iurtree.h"
#include "rst/storage/buffer_pool.h"
#include "rst/storage/codec.h"
#include "rst/storage/io_stats.h"
#include "rst/storage/page_store.h"
#include "rst/text/similarity.h"

namespace rst {

namespace obs {
class QueryTrace;
}  // namespace obs

namespace frozen {

/// (offset, len) reference into the shared term-weight pool.
struct TermSlice {
  uint64_t offset = 0;
  uint32_t len = 0;
};

/// A text summary whose uni/intr vectors live in the shared pool. Norms are
/// cached (recomputed in slice order on load, which reproduces the
/// TermVector construction cache bit-for-bit).
struct SummaryRef {
  TermSlice uni;
  TermSlice intr;
  double uni_norm_sq = 0.0;
  double intr_norm_sq = 0.0;
  uint32_t count = 0;
};

/// One per-cluster summary of a CIUR-tree entry.
struct ClusterRef {
  uint32_t cluster_id = 0;
  SummaryRef summary;
};

/// An immutable, pointer-free snapshot of a built IUR-/CIUR-tree: SoA
/// node/entry arrays indexed by the same deterministic preorder walk that
/// numbers entries for EXPLAIN (entry index i carries explain id i + 1), with
/// every term weight — union/intersection summaries, per-cluster summaries,
/// leaf documents — concatenated into one contiguous TermWeight pool
/// referenced by (offset, len) slices. The RSTkNN algorithms traverse it
/// through the same tree-view abstraction as the pointer tree and produce
/// byte-identical results, stats, and explain output; the flat layout removes
/// the pointer chasing and scattered term-weight reads of the unique_ptr
/// tree (DESIGN.md §10).
///
/// Storage: the frozen tree owns a PageStore whose node records and inverted
/// files are re-encoded in the exact post-order of IurTree::FinalizeStorage,
/// so page handles and byte counts — and therefore simulated and real I/O
/// accounting — match the pointer tree exactly. The serialized file
/// (Save/Load) stores only the arrays and the pool; payloads are rebuilt
/// deterministically on load.
class FrozenTree {
 public:
  static constexpr uint32_t kNoObject = IurTree::kNoObject;
  static constexpr uint32_t kNoNode = 0xFFFFFFFFu;
  /// Bumped on any serialized-layout change; Load rejects other versions.
  static constexpr uint32_t kFormatVersion = 1;

  FrozenTree() = default;
  FrozenTree(FrozenTree&&) noexcept = default;
  FrozenTree& operator=(FrozenTree&&) noexcept = default;

  /// Snapshots a built tree. If the tree's storage is finalized the frozen
  /// payload store is rebuilt with identical handles; otherwise the frozen
  /// tree has no payloads (ChargeAccess then charges node reads only — same
  /// as the dirty pointer tree). Records `frozen.freeze` spans on `trace`
  /// and publishes frozen.freezes / frozen.freeze.last_ms.
  static FrozenTree Freeze(const IurTree& tree,
                           obs::QueryTrace* trace = nullptr);

  // --- Topology (node/entry indices; root node is 0) ---
  uint32_t num_nodes() const { return static_cast<uint32_t>(node_leaf_.size()); }
  uint32_t num_entries() const {
    return static_cast<uint32_t>(entry_id_.size());
  }
  uint32_t root() const { return 0; }
  size_t size() const { return size_; }  ///< indexed object count
  bool clustered() const { return clustered_; }
  bool has_payloads() const { return has_payloads_; }

  bool IsLeaf(uint32_t node) const { return node_leaf_[node] != 0; }
  uint32_t EntryBegin(uint32_t node) const { return node_entry_begin_[node]; }
  uint32_t EntryCount(uint32_t node) const { return node_entry_count_[node]; }

  // --- Entries ---
  const Rect& EntryRect(uint32_t e) const { return entry_rect_[e]; }
  bool IsObject(uint32_t e) const { return entry_child_[e] == kNoNode; }
  uint32_t ObjectIdOf(uint32_t e) const { return entry_id_[e]; }
  uint32_t Child(uint32_t e) const { return entry_child_[e]; }
  uint32_t Count(uint32_t e) const { return entry_summary_[e].count; }
  /// Tree level (0 = root entries), identical to ExplainIndex::Info::level;
  /// the explain id of entry e is e + 1.
  uint32_t EntryLevel(uint32_t e) const { return entry_level_[e]; }

  SummarySpan Summary(uint32_t e) const { return Span(entry_summary_[e]); }
  uint32_t NumClusters(uint32_t e) const { return entry_cluster_count_[e]; }
  uint32_t ClusterId(uint32_t e, uint32_t i) const {
    return clusters_[entry_cluster_begin_[e] + i].cluster_id;
  }
  SummarySpan ClusterSummary(uint32_t e, uint32_t i) const {
    return Span(clusters_[entry_cluster_begin_[e] + i].summary);
  }
  uint32_t ClusterCount(uint32_t e, uint32_t i) const {
    return clusters_[entry_cluster_begin_[e] + i].summary.count;
  }

  // --- Storage / I/O (mirrors IurTree accounting byte-for-byte) ---
  const PageStore& page_store() const { return *page_store_; }
  uint64_t IndexBytes() const { return page_store_->PayloadBytes(); }
  PageHandle record_handle(uint32_t node) const { return node_record_[node]; }
  PageHandle invfile_handle(uint32_t node) const { return node_invfile_[node]; }

  /// Charges the simulated I/O of opening `node`: one node read plus the
  /// blocks of its inverted file when payloads exist.
  void ChargeAccess(uint32_t node, IoStats* stats) const;

  /// Reads `node`'s inverted file through a buffer pool wrapping
  /// page_store() and decodes it — the same real-I/O path as
  /// IurTree::ReadNodePayload.
  Status ReadNodePayload(uint32_t node, BufferPool* pool, IoStats* stats,
                         InvertedFile* out) const;

  // --- Persistence (versioned flat snapshot; DESIGN.md §10.3) ---
  std::string SerializeToString() const;
  /// Rejects wrong magic/version, truncation, checksum mismatches, and
  /// inconsistent indices with a Status — never crashes on corrupt input.
  static Result<FrozenTree> Deserialize(const std::string& bytes);
  Status Save(const std::string& path) const;
  static Result<FrozenTree> Load(const std::string& path);

  /// Deep validation for tests: array sizes consistent, slices inside the
  /// pool, child links acyclic and complete, levels consistent.
  Status CheckInvariants() const;

 private:
  SummarySpan Span(const SummaryRef& s) const {
    return SummarySpan{
        TermSpan{pool_.data() + s.uni.offset, s.uni.len, s.uni_norm_sq},
        TermSpan{pool_.data() + s.intr.offset, s.intr.len, s.intr_norm_sq},
        s.count};
  }

  /// Re-encodes node records and inverted files into page_store_ in the
  /// exact post-order of IurTree::SerializeNode.
  void SerializeNodePayloads(uint32_t node);
  void RebuildPayloads();
  void RecomputeNorms();

  // SoA node arrays.
  std::vector<uint8_t> node_leaf_;
  std::vector<uint32_t> node_entry_begin_;
  std::vector<uint32_t> node_entry_count_;
  std::vector<PageHandle> node_record_;
  std::vector<PageHandle> node_invfile_;

  // SoA entry arrays (index order == explain preorder, id = index + 1).
  std::vector<Rect> entry_rect_;
  std::vector<uint32_t> entry_id_;     ///< object id or kNoObject
  std::vector<uint32_t> entry_child_;  ///< node index or kNoNode
  std::vector<uint32_t> entry_level_;
  std::vector<SummaryRef> entry_summary_;
  std::vector<uint32_t> entry_cluster_begin_;
  std::vector<uint32_t> entry_cluster_count_;

  std::vector<ClusterRef> clusters_;  ///< concatenated per-entry cluster runs
  std::vector<TermWeight> pool_;      ///< shared term-weight arena

  std::unique_ptr<PageStore> page_store_ = std::make_unique<PageStore>();
  uint64_t size_ = 0;
  bool clustered_ = false;
  bool has_payloads_ = false;
};

}  // namespace frozen
}  // namespace rst

#endif  // RST_FROZEN_FROZEN_H_
