#ifndef RST_RTREE_RTREE_H_
#define RST_RTREE_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "rst/common/geometry.h"
#include "rst/common/status.h"

namespace rst {

/// Identifier of an indexed object (dataset-assigned).
using ObjectId = uint32_t;

struct RTreeOptions {
  /// Maximum entries per node. The default approximates a 4 KiB page of
  /// (rect + id) entries. Must be >= 2 * min_entries.
  size_t max_entries = 32;
  /// Minimum fill for non-root nodes after a split or deletion.
  size_t min_entries = 12;
};

/// Classic Guttman R-tree over 2-D rectangles: quadratic-split insertion,
/// deletion with tree condensing and re-insertion, STR bulk loading, range
/// and best-first k-nearest-neighbor queries.
///
/// This is the spatial substrate of the library; the spatial-textual indexes
/// (IUR-tree / CIUR-tree, MIUR user tree) implement the same structural
/// algorithms with text-augmented nodes in `rst/iurtree/`.
class RTree {
 public:
  explicit RTree(const RTreeOptions& options = RTreeOptions());
  ~RTree();

  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Sort-Tile-Recursive bulk load: produces a compact tree in O(n log n).
  static RTree BulkLoad(std::vector<std::pair<ObjectId, Rect>> items,
                        const RTreeOptions& options = RTreeOptions());

  void Insert(ObjectId id, const Rect& rect);

  /// Removes one entry with exactly this (id, rect); returns NotFound if no
  /// such entry exists. Underfull nodes are condensed and their remaining
  /// entries re-inserted (Guttman's CondenseTree).
  Status Delete(ObjectId id, const Rect& rect);

  /// All object ids whose rectangles intersect `query`.
  std::vector<ObjectId> RangeQuery(const Rect& query) const;

  struct Neighbor {
    ObjectId id;
    double distance;
  };
  /// The k objects whose rectangles are nearest to `p` (best-first search,
  /// min-distance ordering; ties broken by id for determinism).
  std::vector<Neighbor> KnnQuery(const Point& p, size_t k) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t height() const;
  Rect bounds() const;

  /// Structural invariants (for tests): MBRs tightly contain children,
  /// fan-out within limits, all leaves at equal depth, size consistent.
  Status CheckInvariants() const;

  /// Number of nodes (for size accounting).
  size_t NodeCount() const;

 private:
  struct Node;
  struct Entry;

  Node* ChooseLeaf(const Rect& rect) const;
  void SplitNode(Node* node, std::unique_ptr<Node>* new_node);
  void AdjustTreeAfterInsert(Node* leaf, std::unique_ptr<Node> split_off);
  void InsertEntryAtLevel(Entry entry, size_t level);
  void CollectLeafEntries(Node* node, std::vector<Entry>* out);

  RTreeOptions options_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace rst

#endif  // RST_RTREE_RTREE_H_
