#include "rst/rtree/rtree.h"

#include "rst/common/check.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace rst {

struct RTree::Node {
  bool leaf = true;
  Node* parent = nullptr;
  std::vector<Entry> entries;

  Rect ComputeMbr() const;
};

struct RTree::Entry {
  Rect rect;
  ObjectId id = 0;
  std::unique_ptr<Node> child;
};

Rect RTree::Node::ComputeMbr() const {
  Rect mbr;
  for (const Entry& e : entries) mbr.Extend(e.rect);
  return mbr;
}

RTree::RTree(const RTreeOptions& options) : options_(options) {
  RST_CHECK_GE(options_.max_entries, 2 * options_.min_entries)
      << "RTreeOptions: max_entries must be at least twice min_entries";
  root_ = std::make_unique<Node>();
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

namespace {

/// Height of the subtree rooted at a node (leaf = 0).
template <typename NodeT>
size_t SubtreeHeight(const NodeT* node) {
  size_t h = 0;
  while (!node->leaf) {
    node = node->entries.front().child.get();
    ++h;
  }
  return h;
}

}  // namespace

size_t RTree::height() const { return SubtreeHeight(root_.get()); }

Rect RTree::bounds() const { return root_->ComputeMbr(); }

RTree::Node* RTree::ChooseLeaf(const Rect& rect) const {
  Node* node = root_.get();
  while (!node->leaf) {
    Entry* best = nullptr;
    double best_enlargement = 0.0;
    double best_area = 0.0;
    for (Entry& e : node->entries) {
      const double enlargement = e.rect.Enlargement(rect);
      const double area = e.rect.Area();
      if (best == nullptr || enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = &e;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    node = best->child.get();
  }
  return node;
}

void RTree::SplitNode(Node* node, std::unique_ptr<Node>* new_node) {
  // Guttman's quadratic split.
  std::vector<Entry> entries = std::move(node->entries);
  node->entries.clear();
  *new_node = std::make_unique<Node>();
  (*new_node)->leaf = node->leaf;

  // PickSeeds: the pair wasting the most area if grouped together.
  size_t seed_a = 0, seed_b = 1;
  double worst_waste = -1.0;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = Union(entries[i].rect, entries[j].rect).Area() -
                           entries[i].rect.Area() - entries[j].rect.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Node* group_a = node;
  Node* group_b = new_node->get();
  Rect mbr_a = entries[seed_a].rect;
  Rect mbr_b = entries[seed_b].rect;
  group_a->entries.push_back(std::move(entries[seed_a]));
  group_b->entries.push_back(std::move(entries[seed_b]));

  std::vector<bool> assigned(entries.size(), false);
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = entries.size() - 2;

  while (remaining > 0) {
    // If one group must absorb all remaining entries to reach min fill.
    if (group_a->entries.size() + remaining == options_.min_entries ||
        group_b->entries.size() + remaining == options_.min_entries) {
      Node* needy = group_a->entries.size() + remaining == options_.min_entries
                        ? group_a
                        : group_b;
      Rect* needy_mbr = needy == group_a ? &mbr_a : &mbr_b;
      for (size_t i = 0; i < entries.size(); ++i) {
        if (assigned[i]) continue;
        needy_mbr->Extend(entries[i].rect);
        needy->entries.push_back(std::move(entries[i]));
        assigned[i] = true;
      }
      remaining = 0;
      break;
    }
    // PickNext: entry with the strongest group preference.
    size_t pick = 0;
    double best_diff = -1.0;
    double pick_enl_a = 0.0, pick_enl_b = 0.0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (assigned[i]) continue;
      const double enl_a = mbr_a.Enlargement(entries[i].rect);
      const double enl_b = mbr_b.Enlargement(entries[i].rect);
      const double diff = std::abs(enl_a - enl_b);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        pick_enl_a = enl_a;
        pick_enl_b = enl_b;
      }
    }
    Node* target;
    if (pick_enl_a < pick_enl_b) {
      target = group_a;
    } else if (pick_enl_b < pick_enl_a) {
      target = group_b;
    } else if (mbr_a.Area() != mbr_b.Area()) {
      target = mbr_a.Area() < mbr_b.Area() ? group_a : group_b;
    } else {
      target = group_a->entries.size() <= group_b->entries.size() ? group_a
                                                                  : group_b;
    }
    (target == group_a ? mbr_a : mbr_b).Extend(entries[pick].rect);
    target->entries.push_back(std::move(entries[pick]));
    assigned[pick] = true;
    --remaining;
  }

  for (Entry& e : group_b->entries) {
    if (e.child) e.child->parent = group_b;
  }
  for (Entry& e : group_a->entries) {
    if (e.child) e.child->parent = group_a;
  }
}

void RTree::AdjustTreeAfterInsert(Node* node, std::unique_ptr<Node> split_off) {
  while (node != root_.get()) {
    Node* parent = node->parent;
    // Refresh the parent entry's MBR for `node`.
    for (Entry& e : parent->entries) {
      if (e.child.get() == node) {
        e.rect = node->ComputeMbr();
        break;
      }
    }
    if (split_off) {
      Entry e;
      e.rect = split_off->ComputeMbr();
      split_off->parent = parent;
      e.child = std::move(split_off);
      parent->entries.push_back(std::move(e));
      if (parent->entries.size() > options_.max_entries) {
        SplitNode(parent, &split_off);
      }
    }
    node = parent;
  }
  if (split_off) {
    // Root split: grow the tree.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    Entry left;
    left.rect = root_->ComputeMbr();
    root_->parent = new_root.get();
    left.child = std::move(root_);
    Entry right;
    right.rect = split_off->ComputeMbr();
    split_off->parent = new_root.get();
    right.child = std::move(split_off);
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
  }
}

void RTree::Insert(ObjectId id, const Rect& rect) {
  Node* leaf = ChooseLeaf(rect);
  Entry entry;
  entry.rect = rect;
  entry.id = id;
  leaf->entries.push_back(std::move(entry));
  ++size_;
  std::unique_ptr<Node> split_off;
  if (leaf->entries.size() > options_.max_entries) {
    SplitNode(leaf, &split_off);
  }
  AdjustTreeAfterInsert(leaf, std::move(split_off));
}

void RTree::InsertEntryAtLevel(Entry entry, size_t level) {
  // Descend to a node of height `level + 1` (whose children sit at `level`),
  // or the leaf level when level == 0 for leaf entries.
  Node* node = root_.get();
  size_t node_height = SubtreeHeight(node);
  while (node_height > level + (entry.child ? 1 : 0)) {
    Entry* best = nullptr;
    double best_enlargement = 0.0;
    double best_area = 0.0;
    for (Entry& e : node->entries) {
      const double enlargement = e.rect.Enlargement(entry.rect);
      const double area = e.rect.Area();
      if (best == nullptr || enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = &e;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    node = best->child.get();
    --node_height;
  }
  if (entry.child) entry.child->parent = node;
  node->entries.push_back(std::move(entry));
  std::unique_ptr<Node> split_off;
  if (node->entries.size() > options_.max_entries) {
    SplitNode(node, &split_off);
  }
  AdjustTreeAfterInsert(node, std::move(split_off));
}

void RTree::CollectLeafEntries(Node* node, std::vector<Entry>* out) {
  if (node->leaf) {
    for (Entry& e : node->entries) out->push_back(std::move(e));
    return;
  }
  for (Entry& e : node->entries) CollectLeafEntries(e.child.get(), out);
}

Status RTree::Delete(ObjectId id, const Rect& rect) {
  // Find the leaf holding the entry.
  Node* found_leaf = nullptr;
  size_t found_idx = 0;
  std::vector<Node*> stack = {root_.get()};
  while (!stack.empty() && found_leaf == nullptr) {
    Node* node = stack.back();
    stack.pop_back();
    if (node->leaf) {
      for (size_t i = 0; i < node->entries.size(); ++i) {
        if (node->entries[i].id == id && node->entries[i].rect == rect) {
          found_leaf = node;
          found_idx = i;
          break;
        }
      }
    } else {
      for (Entry& e : node->entries) {
        if (e.rect.Contains(rect)) stack.push_back(e.child.get());
      }
    }
  }
  if (found_leaf == nullptr) return Status::NotFound("no such (id, rect)");

  found_leaf->entries.erase(found_leaf->entries.begin() + found_idx);
  --size_;

  // CondenseTree: walk up, dropping underfull nodes and stashing their
  // entries (with the height they belong to) for re-insertion.
  std::vector<std::pair<Entry, size_t>> orphans;
  Node* node = found_leaf;
  size_t node_height = 0;
  while (node != root_.get()) {
    Node* parent = node->parent;
    if (node->entries.size() < options_.min_entries) {
      // Remove node's entry from the parent; stash children.
      for (size_t i = 0; i < parent->entries.size(); ++i) {
        if (parent->entries[i].child.get() == node) {
          std::unique_ptr<Node> owned = std::move(parent->entries[i].child);
          parent->entries.erase(parent->entries.begin() + i);
          for (Entry& e : owned->entries) {
            orphans.push_back({std::move(e), node_height == 0 ? 0
                                                              : node_height - 1});
          }
          break;
        }
      }
    } else {
      for (Entry& e : parent->entries) {
        if (e.child.get() == node) {
          e.rect = node->ComputeMbr();
          break;
        }
      }
    }
    node = parent;
    ++node_height;
  }

  // Shrink the root while it is internal with a single child.
  while (!root_->leaf && root_->entries.size() == 1) {
    std::unique_ptr<Node> only = std::move(root_->entries.front().child);
    only->parent = nullptr;
    root_ = std::move(only);
  }
  if (!root_->leaf && root_->entries.empty()) {
    root_ = std::make_unique<Node>();
  }

  for (auto& [entry, level] : orphans) {
    if (!entry.child) {
      // Leaf-level orphan: plain re-insert (keeps size_ constant).
      InsertEntryAtLevel(std::move(entry), 0);
    } else {
      InsertEntryAtLevel(std::move(entry), level);
    }
  }
  return Status::Ok();
}

std::vector<ObjectId> RTree::RangeQuery(const Rect& query) const {
  std::vector<ObjectId> out;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& e : node->entries) {
      if (!e.rect.Intersects(query)) continue;
      if (node->leaf) {
        out.push_back(e.id);
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RTree::Neighbor> RTree::KnnQuery(const Point& p, size_t k) const {
  struct QueueItem {
    double dist;
    const Node* node;   // nullptr for object items
    ObjectId id;
    bool operator>(const QueueItem& other) const {
      if (dist != other.dist) return dist > other.dist;
      return id > other.id;
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  pq.push({0.0, root_.get(), 0});
  std::vector<Neighbor> out;
  while (!pq.empty() && out.size() < k) {
    const QueueItem item = pq.top();
    pq.pop();
    if (item.node == nullptr) {
      out.push_back({item.id, item.dist});
      continue;
    }
    for (const Entry& e : item.node->entries) {
      if (item.node->leaf) {
        pq.push({MinDistance(p, e.rect), nullptr, e.id});
      } else {
        pq.push({MinDistance(p, e.rect), e.child.get(), 0});
      }
    }
  }
  return out;
}

RTree RTree::BulkLoad(std::vector<std::pair<ObjectId, Rect>> items,
                      const RTreeOptions& options) {
  RTree tree(options);
  if (items.empty()) return tree;
  tree.size_ = items.size();

  const size_t cap = options.max_entries;

  // Leaf level.
  std::vector<Entry> level;
  level.reserve(items.size());
  for (auto& [id, rect] : items) {
    Entry e;
    e.rect = rect;
    e.id = id;
    level.push_back(std::move(e));
  }

  bool leaf_level = true;
  while (level.size() > cap || leaf_level) {
    // Sort-Tile-Recursive packing of `level` into parent nodes.
    const size_t n = level.size();
    const size_t num_nodes = (n + cap - 1) / cap;
    const size_t num_slabs =
        static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_nodes))));
    const size_t slab_size = ((num_nodes + num_slabs - 1) / num_slabs) * cap;

    std::sort(level.begin(), level.end(), [](const Entry& a, const Entry& b) {
      return a.rect.Center().x < b.rect.Center().x;
    });

    std::vector<Entry> parents;
    for (size_t slab_begin = 0; slab_begin < n; slab_begin += slab_size) {
      const size_t slab_end = std::min(slab_begin + slab_size, n);
      std::sort(level.begin() + slab_begin, level.begin() + slab_end,
                [](const Entry& a, const Entry& b) {
                  return a.rect.Center().y < b.rect.Center().y;
                });
      for (size_t begin = slab_begin; begin < slab_end; begin += cap) {
        const size_t end = std::min(begin + cap, slab_end);
        auto node = std::make_unique<Node>();
        node->leaf = leaf_level;
        node->entries.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
          if (level[i].child) level[i].child->parent = node.get();
          node->entries.push_back(std::move(level[i]));
        }
        Entry parent_entry;
        parent_entry.rect = node->ComputeMbr();
        parent_entry.child = std::move(node);
        parents.push_back(std::move(parent_entry));
      }
    }
    level = std::move(parents);
    leaf_level = false;
    if (level.size() == 1) break;
  }

  if (level.size() == 1 && level.front().child) {
    tree.root_ = std::move(level.front().child);
    tree.root_->parent = nullptr;
  } else {
    auto root = std::make_unique<Node>();
    root->leaf = false;
    for (Entry& e : level) {
      if (e.child) e.child->parent = root.get();
      root->entries.push_back(std::move(e));
    }
    tree.root_ = std::move(root);
  }
  return tree;
}

namespace {

struct InvariantState {
  const RTreeOptions* options;
  size_t leaf_depth = SIZE_MAX;
  size_t objects = 0;
  Status status = Status::Ok();
};

}  // namespace

Status RTree::CheckInvariants() const {
  InvariantState state;
  state.options = &options_;

  struct Frame {
    const Node* node;
    size_t depth;
    const Node* expected_parent;
  };
  std::vector<Frame> stack = {{root_.get(), 0, nullptr}};
  while (!stack.empty() && state.status.ok()) {
    auto [node, depth, expected_parent] = stack.back();
    stack.pop_back();
    if (node->parent != expected_parent) {
      return Status::Corruption("bad parent pointer");
    }
    if (node != root_.get() &&
        (node->entries.size() < options_.min_entries ||
         node->entries.size() > options_.max_entries)) {
      // Bulk-loaded trees may have one underfull node per level (the last
      // pack); accept >= 1 instead of strict min fill for leaves built that
      // way, but never overflow.
      if (node->entries.size() > options_.max_entries ||
          node->entries.empty()) {
        return Status::Corruption("node fan-out out of bounds");
      }
    }
    if (node->leaf) {
      if (state.leaf_depth == SIZE_MAX) state.leaf_depth = depth;
      if (depth != state.leaf_depth) {
        return Status::Corruption("leaves at unequal depth");
      }
      state.objects += node->entries.size();
    } else {
      if (node->entries.empty()) return Status::Corruption("empty internal");
      for (const Entry& e : node->entries) {
        if (!e.child) return Status::Corruption("internal entry sans child");
        if (!(e.rect == e.child->ComputeMbr())) {
          return Status::Corruption("stale MBR");
        }
        stack.push_back({e.child.get(), depth + 1, node});
      }
    }
  }
  if (state.objects != size_) return Status::Corruption("size mismatch");
  return Status::Ok();
}

size_t RTree::NodeCount() const {
  size_t count = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++count;
    if (!node->leaf) {
      for (const Entry& e : node->entries) stack.push_back(e.child.get());
    }
  }
  return count;
}

}  // namespace rst
