#include "rst/storage/varint.h"

namespace rst {

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

void PutFloat(std::string* dst, float value) {
  char buf[sizeof(float)];
  std::memcpy(buf, &value, sizeof(float));
  dst->append(buf, sizeof(float));
}

void PutDouble(std::string* dst, double value) {
  char buf[sizeof(double)];
  std::memcpy(buf, &value, sizeof(double));
  dst->append(buf, sizeof(double));
}

Status GetVarint64(const std::string& src, size_t* offset, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*offset < src.size() && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(src[(*offset)++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::Ok();
    }
    shift += 7;
  }
  return Status::Corruption("truncated varint");
}

Status GetVarint32(const std::string& src, size_t* offset, uint32_t* value) {
  uint64_t wide = 0;
  Status s = GetVarint64(src, offset, &wide);
  if (!s.ok()) return s;
  if (wide > 0xFFFFFFFFull) return Status::Corruption("varint32 overflow");
  *value = static_cast<uint32_t>(wide);
  return Status::Ok();
}

Status GetFloat(const std::string& src, size_t* offset, float* value) {
  if (*offset + sizeof(float) > src.size()) {
    return Status::Corruption("truncated float");
  }
  std::memcpy(value, src.data() + *offset, sizeof(float));
  *offset += sizeof(float);
  return Status::Ok();
}

Status GetDouble(const std::string& src, size_t* offset, double* value) {
  if (*offset + sizeof(double) > src.size()) {
    return Status::Corruption("truncated double");
  }
  std::memcpy(value, src.data() + *offset, sizeof(double));
  *offset += sizeof(double);
  return Status::Ok();
}

size_t VarintLength(uint64_t value) {
  size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace rst
