#ifndef RST_STORAGE_IO_STATS_H_
#define RST_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace rst {

namespace obs {
class JsonWriter;
class MetricRegistry;
}  // namespace obs

/// Simulated I/O accounting, following the methodology both papers report:
/// visiting a tree node costs one I/O; loading a node's inverted file (or any
/// serialized payload) costs ceil(bytes / page_size) I/Os. A buffer pool may
/// absorb repeated accesses; cache hits are tracked separately and do not
/// count as I/Os.
struct IoStats {
  uint64_t node_reads = 0;      ///< tree nodes visited (1 I/O each)
  uint64_t payload_blocks = 0;  ///< 4 KiB blocks of posting/payload data read
  uint64_t payload_bytes = 0;   ///< raw payload bytes read
  uint64_t cache_hits = 0;      ///< accesses served by the buffer pool

  static constexpr uint64_t kPageSize = 4096;

  uint64_t TotalIos() const { return node_reads + payload_blocks; }

  void AddNodeRead() { ++node_reads; }
  void AddPayloadRead(uint64_t bytes) {
    payload_bytes += bytes;
    payload_blocks += (bytes + kPageSize - 1) / kPageSize;
  }
  void AddCacheHit() { ++cache_hits; }

  void Reset() { *this = IoStats(); }

  IoStats& operator+=(const IoStats& other) {
    node_reads += other.node_reads;
    payload_blocks += other.payload_blocks;
    payload_bytes += other.payload_bytes;
    cache_hits += other.cache_hits;
    return *this;
  }

  std::string ToString() const;

  /// Adds these totals to the global metric registry as counters
  /// `<prefix>.node_reads`, `.payload_blocks`, `.payload_bytes`,
  /// `.cache_hits` — the bridge that keeps this struct's public fields intact
  /// while making every consumer's I/O visible in obs snapshots. Call once
  /// per completed operation (per query / per build), not per access.
  void Publish(const std::string& prefix) const;

  /// {"node_reads":..,"payload_blocks":..,"payload_bytes":..,
  ///  "cache_hits":..,"total_ios":..} — used by the slow-query log and the
  ///  CLI to embed per-query I/O in JSON artifacts.
  void AppendJson(obs::JsonWriter* writer) const;
};

}  // namespace rst

#endif  // RST_STORAGE_IO_STATS_H_
