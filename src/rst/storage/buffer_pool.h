#ifndef RST_STORAGE_BUFFER_POOL_H_
#define RST_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>

#include "rst/common/mutex.h"
#include "rst/common/status.h"
#include "rst/common/thread_annotations.h"
#include "rst/obs/metrics.h"
#include "rst/storage/io_stats.h"
#include "rst/storage/page_store.h"

namespace rst {

namespace obs {
class PhaseProfiler;
class QueryTrace;
}  // namespace obs

/// LRU buffer pool over a PageStore. Payloads are cached whole (a payload is
/// the unit of access for tree nodes and inverted files); capacity is counted
/// in pages. Fetch returns a shared payload that remains valid after
/// eviction. Pinned payloads are never evicted.
///
/// Thread safety: safe for concurrent readers (Fetch/Pin/Unpin from any
/// number of threads). The hit path takes only a shared lock — recency is an
/// atomic stamp per entry (from a global atomic clock) instead of a linked
/// list, so hits never mutate shared structure. Misses read the PageStore
/// outside any lock, then insert under the exclusive lock; two threads
/// missing the same payload concurrently may both read the store (each
/// counted as a miss — accounting stays consistent: hits + misses ==
/// accesses), after which one copy is adopted. Eviction picks the unpinned
/// entry with the smallest stamp, which is exactly the list-LRU victim, so
/// single-threaded behavior (victim order, admit-over-capacity when all
/// pinned, capacity 0 disabling caching) is unchanged.
///
/// `set_trace` remains single-threaded by design (QueryTrace is not
/// thread-safe): attach a trace only when one thread uses the pool. IoStats
/// passed to Fetch/Pin are charged per caller and are not shared between
/// threads.
class BufferPool {
 public:
  /// `store` must outlive the pool. `capacity_pages` == 0 disables caching
  /// (every Fetch is a miss and charges I/O).
  BufferPool(const PageStore* store, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches the payload behind `handle`. Misses read from the PageStore and
  /// charge `stats`; hits charge nothing (tracked in stats->cache_hits).
  Result<std::shared_ptr<const std::string>> Fetch(const PageHandle& handle,
                                                   IoStats* stats)
      RST_EXCLUDES(mu_);

  /// Pins/unpins a cached payload. Pinning a non-resident payload fetches it.
  Status Pin(const PageHandle& handle, IoStats* stats) RST_EXCLUDES(mu_);
  Status Unpin(const PageHandle& handle) RST_EXCLUDES(mu_);

  size_t capacity_pages() const { return capacity_pages_; }
  size_t used_pages() const {
    // rst-atomics: monotonic-ish accounting counter read for reporting; no
    // other data is published through it, so relaxed is sufficient.
    return used_pages_.load(std::memory_order_relaxed);
  }
  size_t resident_payloads() const RST_EXCLUDES(mu_);
  // rst-atomics: hits/misses/evictions are independent statistics counters;
  // readers tolerate instantaneous skew between them, so all three loads are
  // relaxed.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// hits / (hits + misses); 0 before the first access.
  double hit_rate() const {
    const uint64_t h = hits();
    const uint64_t m = misses();
    return h + m == 0
               ? 0.0
               : static_cast<double>(h) / static_cast<double>(h + m);
  }

  /// Attaches a query trace: miss fills then record `buffer_pool.fill`
  /// spans. Null detaches (the default). Single-threaded use only.
  void set_trace(obs::QueryTrace* trace) { trace_ = trace; }
  obs::QueryTrace* trace() const { return trace_; }

  /// Attaches a phase profiler: miss fills then attribute the store read to
  /// the kIo phase (DESIGN.md §12), covering consumers that reach the pool
  /// outside the searcher's own Charge() scope. Single-threaded use only,
  /// like set_trace — batch workers carry the profiler in RstknnOptions
  /// instead.
  void set_phase_profiler(obs::PhaseProfiler* profiler) {
    profiler_ = profiler;
  }
  obs::PhaseProfiler* phase_profiler() const { return profiler_; }

  void Clear() RST_EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_ptr<const std::string> payload;
    uint32_t num_pages = 0;
    std::atomic<uint32_t> pin_count{0};
    /// Recency stamp from clock_; larger = more recent. Atomic so the
    /// shared-lock hit path can refresh it.
    std::atomic<uint64_t> last_access{0};
  };

  uint64_t NextStamp() {
    // rst-atomics: the clock only needs to produce distinct, roughly
    // monotonic stamps for LRU victim ranking; cross-thread ordering of the
    // increments is irrelevant, so relaxed.
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void EvictUntilFitsLocked(size_t incoming_pages) RST_REQUIRES(mu_);

  const PageStore* store_;
  const size_t capacity_pages_;
  std::atomic<size_t> used_pages_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> clock_{0};
  mutable SharedMutex mu_;
  /// Entries are heap-allocated so their atomics keep a stable address
  /// across map rehashes. Guarded by mu_ (shared for lookup, exclusive for
  /// insert/erase); the per-entry atomics are the one mutation the hit path
  /// performs under the shared lock.
  std::unordered_map<PageId, std::unique_ptr<Entry>> entries_
      RST_GUARDED_BY(mu_);
  obs::QueryTrace* trace_ = nullptr;
  obs::PhaseProfiler* profiler_ = nullptr;
  /// Registry handles (storage.buffer_pool.*), shared by all pools.
  obs::Counter hits_counter_;
  obs::Counter misses_counter_;
  obs::Counter evictions_counter_;
  obs::Gauge hit_rate_gauge_;
  obs::HistogramRef fill_ms_;
};

}  // namespace rst

#endif  // RST_STORAGE_BUFFER_POOL_H_
