#ifndef RST_STORAGE_BUFFER_POOL_H_
#define RST_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "rst/common/status.h"
#include "rst/obs/metrics.h"
#include "rst/storage/io_stats.h"
#include "rst/storage/page_store.h"

namespace rst {

namespace obs {
class QueryTrace;
}  // namespace obs

/// LRU buffer pool over a PageStore. Payloads are cached whole (a payload is
/// the unit of access for tree nodes and inverted files); capacity is counted
/// in pages. Fetch returns a shared payload that remains valid after
/// eviction. Pinned payloads are never evicted.
class BufferPool {
 public:
  /// `store` must outlive the pool. `capacity_pages` == 0 disables caching
  /// (every Fetch is a miss and charges I/O).
  BufferPool(const PageStore* store, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches the payload behind `handle`. Misses read from the PageStore and
  /// charge `stats`; hits charge nothing (tracked in stats->cache_hits).
  Result<std::shared_ptr<const std::string>> Fetch(const PageHandle& handle,
                                                   IoStats* stats);

  /// Pins/unpins a cached payload. Pinning a non-resident payload fetches it.
  Status Pin(const PageHandle& handle, IoStats* stats);
  Status Unpin(const PageHandle& handle);

  size_t capacity_pages() const { return capacity_pages_; }
  size_t used_pages() const { return used_pages_; }
  size_t resident_payloads() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  /// hits / (hits + misses); 0 before the first access.
  double hit_rate() const {
    return hits_ + misses_ == 0
               ? 0.0
               : static_cast<double>(hits_) /
                     static_cast<double>(hits_ + misses_);
  }

  /// Attaches a query trace: miss fills then record `buffer_pool.fill`
  /// spans. Null detaches (the default).
  void set_trace(obs::QueryTrace* trace) { trace_ = trace; }
  obs::QueryTrace* trace() const { return trace_; }

  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const std::string> payload;
    uint32_t num_pages = 0;
    uint32_t pin_count = 0;
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  void Touch(PageId key, Entry* entry);
  void EvictUntilFits(size_t incoming_pages);

  const PageStore* store_;
  size_t capacity_pages_;
  size_t used_pages_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  std::unordered_map<PageId, Entry> entries_;
  std::list<PageId> lru_;  // front = most recent
  obs::QueryTrace* trace_ = nullptr;
  /// Registry handles (storage.buffer_pool.*), shared by all pools.
  obs::Counter hits_counter_;
  obs::Counter misses_counter_;
  obs::Counter evictions_counter_;
  obs::Gauge hit_rate_gauge_;
  obs::HistogramRef fill_ms_;
};

}  // namespace rst

#endif  // RST_STORAGE_BUFFER_POOL_H_
