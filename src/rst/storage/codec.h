#ifndef RST_STORAGE_CODEC_H_
#define RST_STORAGE_CODEC_H_

#include <map>
#include <string>
#include <vector>

#include "rst/common/status.h"
#include "rst/text/similarity.h"
#include "rst/text/term_vector.h"

namespace rst {

/// Serialization of the spatial-textual index payloads. Sizes produced here
/// drive the simulated I/O accounting, so the formats are genuinely compact:
/// delta-coded varint term/document ids and raw float32 weights.

/// --- Term vectors ---
void EncodeTermVector(const TermVector& vec, std::string* dst);
Status DecodeTermVector(const std::string& src, size_t* offset,
                        TermVector* out);

/// --- Text summaries (IUR-tree node payloads) ---
void EncodeTextSummary(const TextSummary& summary, std::string* dst);
Status DecodeTextSummary(const std::string& src, size_t* offset,
                         TextSummary* out);

/// --- Posting lists (MIR-tree node inverted files) ---
/// One posting per child entry of a node, carrying the max and min weight of
/// the term in the child's subtree (the 2016 paper's <d, maxw, minw> tuples).
struct Posting {
  uint32_t id = 0;
  float max_weight = 0.0f;
  float min_weight = 0.0f;

  friend bool operator==(const Posting& a, const Posting& b) {
    return a.id == b.id && a.max_weight == b.max_weight &&
           a.min_weight == b.min_weight;
  }
};

/// An inverted file mapping terms to posting lists, as attached to each
/// IR-/MIR-tree node.
using InvertedFile = std::map<TermId, std::vector<Posting>>;

void EncodePostingList(const std::vector<Posting>& postings, std::string* dst);
Status DecodePostingList(const std::string& src, size_t* offset,
                         std::vector<Posting>* out);

void EncodeInvertedFile(const InvertedFile& file, std::string* dst);
Status DecodeInvertedFile(const std::string& src, size_t* offset,
                          InvertedFile* out);

/// Serialized size (bytes) without materializing the buffer.
size_t TermVectorEncodedSize(const TermVector& vec);
size_t InvertedFileEncodedSize(const InvertedFile& file);

}  // namespace rst

#endif  // RST_STORAGE_CODEC_H_
