#include "rst/storage/buffer_pool.h"

#include <cassert>

#include "rst/common/stopwatch.h"
#include "rst/obs/trace.h"

namespace rst {

BufferPool::BufferPool(const PageStore* store, size_t capacity_pages)
    : store_(store), capacity_pages_(capacity_pages) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  hits_counter_ = registry.GetCounter("storage.buffer_pool.hits");
  misses_counter_ = registry.GetCounter("storage.buffer_pool.misses");
  evictions_counter_ = registry.GetCounter("storage.buffer_pool.evictions");
  hit_rate_gauge_ = registry.GetGauge("storage.buffer_pool.hit_rate");
  fill_ms_ = registry.GetHistogram("storage.buffer_pool.fill_ms",
                                   obs::HistogramSpec::LatencyMs());
}

void BufferPool::Touch(PageId key, Entry* entry) {
  if (entry->in_lru) {
    lru_.erase(entry->lru_pos);
  }
  lru_.push_front(key);
  entry->lru_pos = lru_.begin();
  entry->in_lru = true;
}

void BufferPool::EvictUntilFits(size_t incoming_pages) {
  while (used_pages_ + incoming_pages > capacity_pages_ && !lru_.empty()) {
    // Scan from the least-recently-used end for an unpinned victim.
    auto it = lru_.end();
    bool evicted = false;
    while (it != lru_.begin()) {
      --it;
      auto entry_it = entries_.find(*it);
      assert(entry_it != entries_.end());
      if (entry_it->second.pin_count == 0) {
        used_pages_ -= entry_it->second.num_pages;
        lru_.erase(it);
        entries_.erase(entry_it);
        ++evictions_;
        evictions_counter_.Increment();
        evicted = true;
        break;
      }
    }
    if (!evicted) break;  // everything pinned; admit over capacity
  }
}

Result<std::shared_ptr<const std::string>> BufferPool::Fetch(
    const PageHandle& handle, IoStats* stats) {
  auto it = entries_.find(handle.first_page);
  if (it != entries_.end()) {
    ++hits_;
    hits_counter_.Increment();
    hit_rate_gauge_.Set(hit_rate());
    if (stats != nullptr) stats->AddCacheHit();
    Touch(handle.first_page, &it->second);
    return it->second.payload;
  }
  ++misses_;
  misses_counter_.Increment();
  hit_rate_gauge_.Set(hit_rate());
  auto payload = std::make_shared<std::string>();
  Stopwatch fill_timer;
  Status s;
  {
    obs::TraceSpan span(trace_, "buffer_pool.fill");
    s = store_->Read(handle, payload.get(), stats);
  }
  fill_ms_.Record(fill_timer.ElapsedMillis());
  if (!s.ok()) return s;
  std::shared_ptr<const std::string> shared = std::move(payload);
  if (capacity_pages_ == 0) return shared;  // caching disabled
  EvictUntilFits(handle.num_pages);
  Entry entry;
  entry.payload = shared;
  entry.num_pages = handle.num_pages;
  auto [pos, inserted] = entries_.emplace(handle.first_page, std::move(entry));
  assert(inserted);
  used_pages_ += handle.num_pages;
  Touch(handle.first_page, &pos->second);
  return shared;
}

Status BufferPool::Pin(const PageHandle& handle, IoStats* stats) {
  auto it = entries_.find(handle.first_page);
  if (it == entries_.end()) {
    auto fetched = Fetch(handle, stats);
    if (!fetched.ok()) return fetched.status();
    it = entries_.find(handle.first_page);
    if (it == entries_.end()) {
      return Status::FailedPrecondition("cannot pin with caching disabled");
    }
  }
  ++it->second.pin_count;
  return Status::Ok();
}

Status BufferPool::Unpin(const PageHandle& handle) {
  auto it = entries_.find(handle.first_page);
  if (it == entries_.end() || it->second.pin_count == 0) {
    return Status::FailedPrecondition("unpin of non-pinned payload");
  }
  --it->second.pin_count;
  return Status::Ok();
}

void BufferPool::Clear() {
  entries_.clear();
  lru_.clear();
  used_pages_ = 0;
}

}  // namespace rst
