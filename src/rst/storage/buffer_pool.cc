#include "rst/storage/buffer_pool.h"

#include "rst/common/stopwatch.h"
#include "rst/obs/metric_names.h"
#include "rst/obs/phase_timer.h"
#include "rst/obs/trace.h"

namespace rst {

BufferPool::BufferPool(const PageStore* store, size_t capacity_pages)
    : store_(store), capacity_pages_(capacity_pages) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  hits_counter_ = registry.GetCounter(obs::names::kBufferPoolHits);
  misses_counter_ = registry.GetCounter(obs::names::kBufferPoolMisses);
  evictions_counter_ = registry.GetCounter(obs::names::kBufferPoolEvictions);
  hit_rate_gauge_ = registry.GetGauge(obs::names::kBufferPoolHitRate);
  fill_ms_ = registry.GetHistogram(obs::names::kBufferPoolFillMs,
                                   obs::HistogramSpec::LatencyMs());
}

size_t BufferPool::resident_payloads() const {
  ReaderMutexLock lock(&mu_);
  return entries_.size();
}

void BufferPool::EvictUntilFitsLocked(size_t incoming_pages) {
  // rst-atomics: every atomic in this function is accessed with mu_ held
  // exclusively (RST_REQUIRES above), so the mutex provides all ordering;
  // the operations stay relaxed to avoid paying for fences twice.
  while (used_pages_.load(std::memory_order_relaxed) + incoming_pages >
         capacity_pages_) {
    // The unpinned entry with the smallest recency stamp IS the
    // least-recently-used victim the old intrusive list produced.
    auto victim = entries_.end();
    uint64_t victim_stamp = 0;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const Entry& entry = *it->second;
      // rst-atomics: see function comment — mu_ held exclusively.
      if (entry.pin_count.load(std::memory_order_relaxed) != 0) continue;
      const uint64_t stamp = entry.last_access.load(std::memory_order_relaxed);
      if (victim == entries_.end() || stamp < victim_stamp) {
        victim = it;
        victim_stamp = stamp;
      }
    }
    if (victim == entries_.end()) break;  // everything pinned; admit over cap
    // rst-atomics: see function comment — mu_ held exclusively.
    used_pages_.fetch_sub(victim->second->num_pages,
                          std::memory_order_relaxed);
    entries_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evictions_counter_.Increment();
  }
}

Result<std::shared_ptr<const std::string>> BufferPool::Fetch(
    const PageHandle& handle, IoStats* stats) {
  {
    ReaderMutexLock lock(&mu_);
    auto it = entries_.find(handle.first_page);
    if (it != entries_.end()) {
      Entry& entry = *it->second;
      // rst-atomics: the recency stamp and hit counter publish no payload
      // data — the payload itself is protected by the shared lock — so the
      // hit path's only mutations can stay relaxed.
      entry.last_access.store(NextStamp(), std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      hits_counter_.Increment();
      hit_rate_gauge_.Set(hit_rate());
      if (stats != nullptr) stats->AddCacheHit();
      return entry.payload;  // shared_ptr copy under the shared lock
    }
  }
  // rst-atomics: statistics counter; ordering against other counters is
  // irrelevant (hits + misses == accesses holds because each access bumps
  // exactly one of them).
  misses_.fetch_add(1, std::memory_order_relaxed);
  misses_counter_.Increment();
  hit_rate_gauge_.Set(hit_rate());
  // The store read happens outside any pool lock so concurrent misses fill
  // in parallel; a payload raced in by another thread is adopted below.
  auto payload = std::make_shared<std::string>();
  Stopwatch fill_timer;
  Status s;
  {
    obs::TraceSpan span(trace_, obs::names::kSpanBufferPoolFill);
    // Attributed to kIo; if the caller's Charge() already opened kIo this
    // nests and self-time accounting keeps the sum exact.
    obs::PhaseTimer io_phase(profiler_, obs::Phase::kIo);
    s = store_->Read(handle, payload.get(), stats);
  }
  fill_ms_.Record(fill_timer.ElapsedMillis());
  if (!s.ok()) return s;
  std::shared_ptr<const std::string> shared = std::move(payload);
  if (capacity_pages_ == 0) return shared;  // caching disabled
  WriterMutexLock lock(&mu_);
  auto it = entries_.find(handle.first_page);
  if (it != entries_.end()) {
    // Lost the fill race: keep the resident copy (it may be pinned).
    // rst-atomics: stamp refresh under the exclusive lock; relaxed as above.
    it->second->last_access.store(NextStamp(), std::memory_order_relaxed);
    return it->second->payload;
  }
  EvictUntilFitsLocked(handle.num_pages);
  auto entry = std::make_unique<Entry>();
  entry->payload = shared;
  entry->num_pages = handle.num_pages;
  // rst-atomics: entry is not yet reachable from entries_ and used_pages_ is
  // pure accounting; the exclusive mu_ below orders publication.
  entry->last_access.store(NextStamp(), std::memory_order_relaxed);
  used_pages_.fetch_add(handle.num_pages, std::memory_order_relaxed);
  entries_.emplace(handle.first_page, std::move(entry));
  return shared;
}

Status BufferPool::Pin(const PageHandle& handle, IoStats* stats) {
  for (;;) {
    {
      ReaderMutexLock lock(&mu_);
      auto it = entries_.find(handle.first_page);
      if (it != entries_.end()) {
        // rst-atomics: pin_count is consulted for eviction only under the
        // exclusive lock, which synchronizes with this shared-lock holder
        // via the mutex itself; the counter op can stay relaxed.
        it->second->pin_count.fetch_add(1, std::memory_order_relaxed);
        return Status::Ok();
      }
    }
    auto fetched = Fetch(handle, stats);
    if (!fetched.ok()) return fetched.status();
    if (capacity_pages_ == 0) {
      return Status::FailedPrecondition("cannot pin with caching disabled");
    }
    // Retry: the fetched payload could have been evicted before we pin it.
  }
}

Status BufferPool::Unpin(const PageHandle& handle) {
  ReaderMutexLock lock(&mu_);
  auto it = entries_.find(handle.first_page);
  if (it == entries_.end()) {
    return Status::FailedPrecondition("unpin of non-pinned payload");
  }
  // CAS so concurrent unpins cannot drive the count below zero.
  // rst-atomics: same reasoning as Pin — eviction reads pin_count under the
  // exclusive lock, so the CAS needs no acquire/release of its own.
  uint32_t pins = it->second->pin_count.load(std::memory_order_relaxed);
  do {
    if (pins == 0) {
      return Status::FailedPrecondition("unpin of non-pinned payload");
    }
    // rst-atomics: relaxed CAS -- same note as the initial load above.
  } while (!it->second->pin_count.compare_exchange_weak(
      pins, pins - 1, std::memory_order_relaxed));
  return Status::Ok();
}

void BufferPool::Clear() {
  WriterMutexLock lock(&mu_);
  entries_.clear();
  // rst-atomics: reset under the exclusive lock; accounting only.
  used_pages_.store(0, std::memory_order_relaxed);
}

}  // namespace rst
