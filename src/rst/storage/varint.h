#ifndef RST_STORAGE_VARINT_H_
#define RST_STORAGE_VARINT_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "rst/common/status.h"

namespace rst {

/// LEB128 variable-length integer codecs over a std::string buffer, plus
/// fixed-width float. These are the primitives for serializing term vectors,
/// posting lists, and tree nodes.

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
void PutFloat(std::string* dst, float value);
void PutDouble(std::string* dst, double value);

/// Cursor-based decoding; each Get* advances *offset and returns an error
/// Status on truncation/corruption.
Status GetVarint32(const std::string& src, size_t* offset, uint32_t* value);
Status GetVarint64(const std::string& src, size_t* offset, uint64_t* value);
Status GetFloat(const std::string& src, size_t* offset, float* value);
Status GetDouble(const std::string& src, size_t* offset, double* value);

/// Number of bytes PutVarint32 would append.
size_t VarintLength(uint64_t value);

}  // namespace rst

#endif  // RST_STORAGE_VARINT_H_
