#include "rst/storage/codec.h"

#include <algorithm>
#include <cmath>

#include "rst/storage/varint.h"

namespace rst {

void EncodeTermVector(const TermVector& vec, std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(vec.size()));
  TermId prev = 0;
  for (const TermWeight& e : vec.entries()) {
    PutVarint32(dst, e.term - prev);
    PutFloat(dst, e.weight);
    prev = e.term;
  }
}

Status DecodeTermVector(const std::string& src, size_t* offset,
                        TermVector* out) {
  uint32_t count = 0;
  Status s = GetVarint32(src, offset, &count);
  if (!s.ok()) return s;
  std::vector<TermWeight> entries;
  // Never trust a decoded count for allocation: each entry needs >= 5 bytes.
  entries.reserve(std::min<size_t>(count, (src.size() - *offset) / 5 + 1));
  TermId prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    float weight = 0.0f;
    s = GetVarint32(src, offset, &delta);
    if (!s.ok()) return s;
    s = GetFloat(src, offset, &weight);
    if (!s.ok()) return s;
    if (i > 0 && delta == 0) return Status::Corruption("duplicate term id");
    if (weight < 0.0f || !std::isfinite(weight)) {
      return Status::Corruption("invalid term weight");
    }
    prev += delta;
    entries.push_back({prev, weight});
  }
  *out = TermVector::FromSorted(std::move(entries));
  return Status::Ok();
}

void EncodeTextSummary(const TextSummary& summary, std::string* dst) {
  PutVarint32(dst, summary.count);
  EncodeTermVector(summary.uni, dst);
  EncodeTermVector(summary.intr, dst);
}

Status DecodeTextSummary(const std::string& src, size_t* offset,
                         TextSummary* out) {
  Status s = GetVarint32(src, offset, &out->count);
  if (!s.ok()) return s;
  s = DecodeTermVector(src, offset, &out->uni);
  if (!s.ok()) return s;
  return DecodeTermVector(src, offset, &out->intr);
}

void EncodePostingList(const std::vector<Posting>& postings,
                       std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(postings.size()));
  uint32_t prev = 0;
  for (const Posting& p : postings) {
    PutVarint32(dst, p.id - prev);
    PutFloat(dst, p.max_weight);
    PutFloat(dst, p.min_weight);
    prev = p.id;
  }
}

Status DecodePostingList(const std::string& src, size_t* offset,
                         std::vector<Posting>* out) {
  uint32_t count = 0;
  Status s = GetVarint32(src, offset, &count);
  if (!s.ok()) return s;
  out->clear();
  out->reserve(std::min<size_t>(count, (src.size() - *offset) / 9 + 1));
  uint32_t prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    Posting p;
    s = GetVarint32(src, offset, &delta);
    if (!s.ok()) return s;
    s = GetFloat(src, offset, &p.max_weight);
    if (!s.ok()) return s;
    s = GetFloat(src, offset, &p.min_weight);
    if (!s.ok()) return s;
    prev += delta;
    p.id = prev;
    out->push_back(p);
  }
  return Status::Ok();
}

void EncodeInvertedFile(const InvertedFile& file, std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(file.size()));
  TermId prev = 0;
  for (const auto& [term, postings] : file) {
    PutVarint32(dst, term - prev);
    EncodePostingList(postings, dst);
    prev = term;
  }
}

Status DecodeInvertedFile(const std::string& src, size_t* offset,
                          InvertedFile* out) {
  uint32_t terms = 0;
  Status s = GetVarint32(src, offset, &terms);
  if (!s.ok()) return s;
  out->clear();
  TermId prev = 0;
  for (uint32_t i = 0; i < terms; ++i) {
    uint32_t delta = 0;
    s = GetVarint32(src, offset, &delta);
    if (!s.ok()) return s;
    prev += delta;
    std::vector<Posting> postings;
    s = DecodePostingList(src, offset, &postings);
    if (!s.ok()) return s;
    (*out)[prev] = std::move(postings);
  }
  return Status::Ok();
}

size_t TermVectorEncodedSize(const TermVector& vec) {
  size_t bytes = VarintLength(vec.size());
  TermId prev = 0;
  for (const TermWeight& e : vec.entries()) {
    bytes += VarintLength(e.term - prev) + sizeof(float);
    prev = e.term;
  }
  return bytes;
}

size_t InvertedFileEncodedSize(const InvertedFile& file) {
  size_t bytes = VarintLength(file.size());
  TermId prev = 0;
  for (const auto& [term, postings] : file) {
    bytes += VarintLength(term - prev);
    bytes += VarintLength(postings.size());
    uint32_t prev_id = 0;
    for (const Posting& p : postings) {
      bytes += VarintLength(p.id - prev_id) + 2 * sizeof(float);
      prev_id = p.id;
    }
    prev = term;
  }
  return bytes;
}

}  // namespace rst
