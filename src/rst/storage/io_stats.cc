#include "rst/storage/io_stats.h"

#include <cstdio>

#include "rst/obs/json.h"
#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"

namespace rst {

std::string IoStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "IoStats{nodes=%llu, blocks=%llu, bytes=%llu, hits=%llu, "
                "total=%llu}",
                static_cast<unsigned long long>(node_reads),
                static_cast<unsigned long long>(payload_blocks),
                static_cast<unsigned long long>(payload_bytes),
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(TotalIos()));
  return buf;
}

void IoStats::Publish(const std::string& prefix) const {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter(prefix + obs::names::kSuffixNodeReads).Add(node_reads);
  registry.GetCounter(prefix + obs::names::kSuffixPayloadBlocks).Add(payload_blocks);
  registry.GetCounter(prefix + obs::names::kSuffixPayloadBytes).Add(payload_bytes);
  registry.GetCounter(prefix + obs::names::kSuffixCacheHits).Add(cache_hits);
}

void IoStats::AppendJson(obs::JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("node_reads");
  writer->Uint(node_reads);
  writer->Key("payload_blocks");
  writer->Uint(payload_blocks);
  writer->Key("payload_bytes");
  writer->Uint(payload_bytes);
  writer->Key("cache_hits");
  writer->Uint(cache_hits);
  writer->Key("total_ios");
  writer->Uint(TotalIos());
  writer->EndObject();
}

}  // namespace rst
