#include "rst/storage/io_stats.h"

#include <cstdio>

#include "rst/obs/metrics.h"

namespace rst {

std::string IoStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "IoStats{nodes=%llu, blocks=%llu, bytes=%llu, hits=%llu, "
                "total=%llu}",
                static_cast<unsigned long long>(node_reads),
                static_cast<unsigned long long>(payload_blocks),
                static_cast<unsigned long long>(payload_bytes),
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(TotalIos()));
  return buf;
}

void IoStats::Publish(const std::string& prefix) const {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter(prefix + ".node_reads").Add(node_reads);
  registry.GetCounter(prefix + ".payload_blocks").Add(payload_blocks);
  registry.GetCounter(prefix + ".payload_bytes").Add(payload_bytes);
  registry.GetCounter(prefix + ".cache_hits").Add(cache_hits);
}

}  // namespace rst
