#include "rst/storage/io_stats.h"

#include <cstdio>

namespace rst {

std::string IoStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "IoStats{nodes=%llu, blocks=%llu, bytes=%llu, hits=%llu, "
                "total=%llu}",
                static_cast<unsigned long long>(node_reads),
                static_cast<unsigned long long>(payload_blocks),
                static_cast<unsigned long long>(payload_bytes),
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(TotalIos()));
  return buf;
}

}  // namespace rst
