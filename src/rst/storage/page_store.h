#ifndef RST_STORAGE_PAGE_STORE_H_
#define RST_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rst/common/status.h"
#include "rst/storage/io_stats.h"

namespace rst {

using PageId = uint32_t;

/// A handle to a contiguous payload stored in the page store.
struct PageHandle {
  PageId first_page = 0;
  uint32_t num_pages = 0;
  uint32_t bytes = 0;

  bool valid() const { return num_pages > 0; }
};

/// Append-only simulated disk of 4 KiB pages. Index structures serialize
/// their node payloads and inverted files here; every Read charges the
/// simulated I/O cost of the pages it touches (unless served by a
/// BufferPool layered above). The backing memory is real — sizes reported by
/// the benchmarks are byte-accurate.
class PageStore {
 public:
  static constexpr size_t kPageSize = IoStats::kPageSize;

  PageStore() = default;
  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  /// Appends `payload`, padding the final page. Never fails (memory-backed).
  PageHandle Write(const std::string& payload);

  /// Reads the payload for `handle` into `*out`, charging `stats` (if
  /// non-null) one payload read of handle.bytes.
  Status Read(const PageHandle& handle, std::string* out,
              IoStats* stats) const;

  size_t num_pages() const { return pages_.size(); }
  uint64_t TotalBytes() const { return pages_.size() * kPageSize; }
  uint64_t PayloadBytes() const { return payload_bytes_; }

 private:
  std::vector<std::string> pages_;
  uint64_t payload_bytes_ = 0;
};

}  // namespace rst

#endif  // RST_STORAGE_PAGE_STORE_H_
