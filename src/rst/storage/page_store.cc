#include "rst/storage/page_store.h"

namespace rst {

PageHandle PageStore::Write(const std::string& payload) {
  PageHandle handle;
  handle.first_page = static_cast<PageId>(pages_.size());
  handle.bytes = static_cast<uint32_t>(payload.size());
  handle.num_pages =
      static_cast<uint32_t>((payload.size() + kPageSize - 1) / kPageSize);
  if (handle.num_pages == 0) handle.num_pages = 1;  // empty payloads pin a page
  for (uint32_t i = 0; i < handle.num_pages; ++i) {
    const size_t begin = i * kPageSize;
    const size_t len = std::min(kPageSize, payload.size() - std::min(
                                               begin, payload.size()));
    std::string page = payload.substr(std::min(begin, payload.size()), len);
    page.resize(kPageSize, '\0');
    pages_.push_back(std::move(page));
  }
  payload_bytes_ += payload.size();
  return handle;
}

Status PageStore::Read(const PageHandle& handle, std::string* out,
                       IoStats* stats) const {
  if (!handle.valid() ||
      handle.first_page + handle.num_pages > pages_.size()) {
    return Status::OutOfRange("page handle outside store");
  }
  out->clear();
  out->reserve(handle.bytes);
  for (uint32_t i = 0; i < handle.num_pages && out->size() < handle.bytes;
       ++i) {
    const std::string& page = pages_[handle.first_page + i];
    const size_t want = std::min(kPageSize, handle.bytes - out->size());
    out->append(page.data(), want);
  }
  if (out->size() != handle.bytes) {
    return Status::Corruption("short page read");
  }
  if (stats != nullptr) stats->AddPayloadRead(handle.bytes);
  return Status::Ok();
}

}  // namespace rst
