#include "rst/storage/page_store.h"

#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"

namespace rst {

namespace {

/// Process-wide page-store traffic counters; handles are cached so the
/// per-call cost is one relaxed atomic add.
struct PageStoreMetrics {
  obs::Counter writes;
  obs::Counter pages_written;
  obs::Counter reads;
  obs::Counter pages_read;
  obs::Counter bytes_read;

  static const PageStoreMetrics& Get() {
    static const PageStoreMetrics* metrics = [] {
      auto* m = new PageStoreMetrics();
      obs::MetricRegistry& registry = obs::MetricRegistry::Global();
      m->writes = registry.GetCounter(obs::names::kPageStoreWrites);
      m->pages_written = registry.GetCounter(obs::names::kPageStorePagesWritten);
      m->reads = registry.GetCounter(obs::names::kPageStoreReads);
      m->pages_read = registry.GetCounter(obs::names::kPageStorePagesRead);
      m->bytes_read = registry.GetCounter(obs::names::kPageStoreBytesRead);
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

PageHandle PageStore::Write(const std::string& payload) {
  PageHandle handle;
  handle.first_page = static_cast<PageId>(pages_.size());
  handle.bytes = static_cast<uint32_t>(payload.size());
  handle.num_pages =
      static_cast<uint32_t>((payload.size() + kPageSize - 1) / kPageSize);
  if (handle.num_pages == 0) handle.num_pages = 1;  // empty payloads pin a page
  for (uint32_t i = 0; i < handle.num_pages; ++i) {
    const size_t begin = i * kPageSize;
    const size_t len = std::min(kPageSize, payload.size() - std::min(
                                               begin, payload.size()));
    std::string page = payload.substr(std::min(begin, payload.size()), len);
    page.resize(kPageSize, '\0');
    pages_.push_back(std::move(page));
  }
  payload_bytes_ += payload.size();
  const PageStoreMetrics& metrics = PageStoreMetrics::Get();
  metrics.writes.Increment();
  metrics.pages_written.Add(handle.num_pages);
  return handle;
}

Status PageStore::Read(const PageHandle& handle, std::string* out,
                       IoStats* stats) const {
  if (!handle.valid() ||
      handle.first_page + handle.num_pages > pages_.size()) {
    return Status::OutOfRange("page handle outside store");
  }
  out->clear();
  out->reserve(handle.bytes);
  for (uint32_t i = 0; i < handle.num_pages && out->size() < handle.bytes;
       ++i) {
    const std::string& page = pages_[handle.first_page + i];
    const size_t want = std::min(kPageSize, handle.bytes - out->size());
    out->append(page.data(), want);
  }
  if (out->size() != handle.bytes) {
    return Status::Corruption("short page read");
  }
  if (stats != nullptr) stats->AddPayloadRead(handle.bytes);
  const PageStoreMetrics& metrics = PageStoreMetrics::Get();
  metrics.reads.Increment();
  // Page-granular attribution: the unit the perf-regression gate diffs —
  // byte counts drift with encoding changes, page counts only with access
  // patterns.
  metrics.pages_read.Add(handle.num_pages);
  metrics.bytes_read.Add(handle.bytes);
  return Status::Ok();
}

}  // namespace rst
