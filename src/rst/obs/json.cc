#include "rst/obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rst::obs {

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

/// Length of the valid UTF-8 sequence starting at s[i], or 0 if the bytes do
/// not form one (bad lead byte, truncated/wrong continuation, overlong form,
/// surrogate code point, or beyond U+10FFFF).
size_t ValidUtf8SequenceLength(std::string_view s, size_t i) {
  const auto byte = [&s](size_t j) {
    return static_cast<unsigned char>(s[j]);
  };
  const unsigned char lead = byte(i);
  if (lead < 0x80) return 1;
  size_t len = 0;
  unsigned char lo = 0x80;
  unsigned char hi = 0xBF;
  if (lead >= 0xC2 && lead <= 0xDF) {
    len = 2;
  } else if (lead >= 0xE0 && lead <= 0xEF) {
    len = 3;
    if (lead == 0xE0) lo = 0xA0;          // reject overlong
    if (lead == 0xED) hi = 0x9F;          // reject surrogates
  } else if (lead >= 0xF0 && lead <= 0xF4) {
    len = 4;
    if (lead == 0xF0) lo = 0x90;          // reject overlong
    if (lead == 0xF4) hi = 0x8F;          // reject > U+10FFFF
  } else {
    return 0;  // continuation byte, 0xC0/0xC1, or 0xF5..0xFF lead
  }
  if (i + len > s.size()) return 0;
  if (byte(i + 1) < lo || byte(i + 1) > hi) return 0;
  for (size_t j = 2; j < len; ++j) {
    if (byte(i + j) < 0x80 || byte(i + j) > 0xBF) return 0;
  }
  return len;
}

void AppendEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (size_t i = 0; i < s.size();) {
    const char c = s[i];
    const unsigned char uc = static_cast<unsigned char>(c);
    if (uc >= 0x80) {
      // The output must stay valid UTF-8 (and therefore valid JSON): copy
      // well-formed multi-byte sequences through verbatim, and replace each
      // offending byte of a malformed one with U+FFFD.
      const size_t len = ValidUtf8SequenceLength(s, i);
      if (len == 0) {
        out->append("\xEF\xBF\xBD");
        ++i;
      } else {
        out->append(s.substr(i, len));
        i += len;
      }
      continue;
    }
    ++i;
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (uc < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", uc);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; clamp to null (metric values are always finite).
    out->append("null");
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

}  // namespace

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!counts_.empty()) {
    if (counts_.back() > 0) out_.push_back(',');
    ++counts_.back();
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  counts_.push_back(0);
}

void JsonWriter::EndObject() {
  counts_.pop_back();
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  counts_.push_back(0);
}

void JsonWriter::EndArray() {
  counts_.pop_back();
  out_.push_back(']');
}

void JsonWriter::Key(std::string_view key) {
  if (!counts_.empty()) {
    if (counts_.back() > 0) out_.push_back(',');
    ++counts_.back();
  }
  AppendEscaped(&out_, key);
  out_.push_back(':');
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendEscaped(&out_, value);
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
}

void JsonWriter::Double(double value) {
  BeforeValue();
  AppendDouble(&out_, value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
}

void JsonWriter::RawValue(std::string_view json) {
  BeforeValue();
  out_.append(json);
}

/// Recursive-descent parser over a string_view; positions are tracked for
/// error messages.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    Status s = ParseValue(&value, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::Corruption("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind_ = JsonValue::Kind::kString;
      return ParseString(&out->string_);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  Status ParseKeyword(JsonValue* out) {
    auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = true;
      return Status::Ok();
    }
    if (match("false")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = false;
      return Status::Ok();
    }
    if (match("null")) {
      out->kind_ = JsonValue::Kind::kNull;
      return Status::Ok();
    }
    return Error("invalid keyword");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = v;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // UTF-8 encode (surrogate pairs are passed through individually;
          // the exporters never emit them).
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue element;
      Status s = ParseValue(&element, depth + 1);
      if (!s.ok()) return s;
      out->array_.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->object_[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace rst::obs
