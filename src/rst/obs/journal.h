#ifndef RST_OBS_JOURNAL_H_
#define RST_OBS_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "rst/common/mutex.h"
#include "rst/common/status.h"
#include "rst/common/thread_annotations.h"

namespace rst::obs {

class JsonWriter;

/// FNV-1a 64-bit digest over the little-endian 4-byte encodings of `ids`,
/// in the order given. Answer digests are taken over the *sorted* result id
/// list (RstknnResult::answers is already ascending), so the digest is
/// independent of algorithm, tree view, and thread count whenever the
/// answer set is.
uint64_t AnswerDigest(const std::vector<uint32_t>& ids);

/// Appends `"simd_level":..,"force_scalar":..,"build_type":..` — the
/// build/runtime provenance stamped into every artifact (journal headers,
/// slow-log exports, bench env blocks) so captures are attributable to the
/// kernel dispatch and build flavor that produced them.
void AppendProvenanceJson(JsonWriter* writer);

/// First line of a workload journal: the capture context replay needs to
/// reconstruct the index and scorer, plus provenance.
struct JournalHeader {
  std::string label;      ///< "rstknn", "rstknn.batch", "load_driver", ...
  std::string data;       ///< dataset path ("" if not materialized)
  std::string algo;       ///< "probe" | "contribution_list"
  std::string view;       ///< "pointer" | "frozen"
  std::string tree;       ///< "iur" | "ciur"
  std::string measure;    ///< text similarity measure flag value
  std::string weighting;  ///< term weighting flag value
  double alpha = 0.5;
  uint64_t threads = 1;
  uint64_t sample_every = 1;
  /// Shard count of the capturing index: 0 = single (unsharded) index, K > 0
  /// = K-shard ShardedIndex. Parsed leniently (absent ⇒ 0) so journals from
  /// before the field existed keep loading.
  uint64_t shards = 0;
};

/// Flattened RstknnStats counters carried per record (obs cannot depend on
/// rstknn, so the caller copies the fields over; see FillJournalStats in
/// exec/batch_runner.cc).
struct JournalStats {
  uint64_t io_node_reads = 0;
  uint64_t io_payload_blocks = 0;
  uint64_t io_payload_bytes = 0;
  uint64_t io_cache_hits = 0;
  uint64_t entries_created = 0;
  uint64_t expansions = 0;
  uint64_t pruned_entries = 0;
  uint64_t reported_entries = 0;
  uint64_t bound_computations = 0;
  uint64_t probes = 0;
  uint64_t pq_pops = 0;

  bool operator==(const JournalStats& other) const;
  bool operator!=(const JournalStats& other) const { return !(*this == other); }
};

/// One captured query. Term weights round-trip exactly: floats are written
/// as shortest-round-trip doubles and parse back to the same float, so a
/// replayed TermVector is bit-identical to the captured one.
struct JournalQueryRecord {
  uint64_t index = 0;  ///< position in the captured run (sampling key)
  double x = 0.0;
  double y = 0.0;
  uint64_t k = 0;
  uint64_t self = kNoSelf;  ///< dataset object id, or kNoSelf for ad-hoc
  std::vector<std::pair<uint32_t, float>> terms;  ///< sorted by term id
  double wall_ms = 0.0;      ///< informational; excluded from replay checks
  std::string phases_json;   ///< pre-serialized {"descent_ms":..} or ""
  uint64_t answer_count = 0;
  uint64_t answer_digest = 0;
  JournalStats stats;

  static constexpr uint64_t kNoSelf = 0xFFFFFFFFull;
};

/// Crash-atomic, sampled, append-only JSONL workload journal.
///
/// Layout: line 1 is a header object (`"type":"header"`), every further
/// line one query record (`"type":"query"`). Each record is formatted into
/// a single buffer and written with one fwrite + fflush, so a crash can
/// only tear the final line — readers skip a trailing partial line. Append
/// is thread-safe (one mutex around the write); records therefore land in
/// completion order under batched execution and carry `index` so replay
/// can restore capture order.
///
/// Sampling is deterministic by query index (`index % sample_every == 0`),
/// not by arrival order, so two captures of the same workload sample the
/// same queries at any thread count.
class WorkloadRecorder {
 public:
  WorkloadRecorder() = default;
  ~WorkloadRecorder();
  WorkloadRecorder(const WorkloadRecorder&) = delete;
  WorkloadRecorder& operator=(const WorkloadRecorder&) = delete;

  /// Creates/truncates `path` and writes the header line.
  Status Open(const std::string& path, const JournalHeader& header)
      RST_EXCLUDES(mu_);

  /// True between a successful Open() and Close(). Locks `mu_`: callers poll
  /// this from monitor threads while workers Append concurrently.
  bool is_open() const RST_EXCLUDES(mu_);

  /// True when query `index` should be recorded under the header's
  /// sample_every (1 = every query).
  bool ShouldSample(uint64_t index) const RST_EXCLUDES(mu_);

  /// Serializes and appends one record; errors latch (first one wins) and
  /// surface from Close() so hot loops need no per-append Status plumbing.
  void Append(const JournalQueryRecord& record) RST_EXCLUDES(mu_);

  uint64_t recorded() const RST_EXCLUDES(mu_);

  /// Final flush + close; returns the first latched append/IO error.
  Status Close() RST_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::FILE* file_ RST_GUARDED_BY(mu_) = nullptr;
  JournalHeader header_ RST_GUARDED_BY(mu_);
  uint64_t recorded_ RST_GUARDED_BY(mu_) = 0;
  Status error_ RST_GUARDED_BY(mu_) = Status::Ok();
};

/// Parsed journal: header plus records sorted by `index` ascending.
struct JournalFile {
  JournalHeader header;
  std::vector<JournalQueryRecord> records;
  uint64_t truncated_lines = 0;  ///< torn/partial trailing lines skipped
};

/// Reads and parses a journal written by WorkloadRecorder. A partial final
/// line (torn write from a crash) is tolerated and counted; any other
/// malformed line is an error.
Result<JournalFile> ReadJournal(const std::string& path);

}  // namespace rst::obs

#endif  // RST_OBS_JOURNAL_H_
