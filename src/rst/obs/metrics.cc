#include "rst/obs/metrics.h"

#include "rst/common/check.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>

#include "rst/obs/json.h"

namespace rst::obs {

namespace {

/// Stripe picked once per thread; threads round-robin over the shards so
/// concurrent writers almost never contend on a cache line.
size_t ShardIndex() {
  static std::atomic<uint32_t> next{0};
  // rst-atomics: the round-robin ticket only spreads threads over stripes;
  // any interleaving of the increments yields a valid assignment.
  thread_local const uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed) % MetricRegistry::kNumShards;
  return index;
}

/// Relaxed CAS add for doubles (atomic<double>::fetch_add is C++20 but not
/// universally lowered; the CAS loop is portable and uncontended here).
/// rst-atomics: metric cells are independent statistics — no reader infers
/// other data from them, so the CAS loops in AtomicAdd/Min/Max need no
/// ordering beyond atomicity itself.
void AtomicAdd(std::atomic<double>* target, double delta) {
  // rst-atomics: see note above AtomicAdd.
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  // rst-atomics: see note above AtomicAdd.
  double current = target->load(std::memory_order_relaxed);
  while (value < current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  // rst-atomics: see note above AtomicAdd.
  double current = target->load(std::memory_order_relaxed);
  while (value > current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

struct alignas(64) CounterCell {
  std::atomic<uint64_t> value{0};
};

}  // namespace

// ---------------------------------------------------------------------------
// HistogramSpec / HistogramSnapshot / Histogram

HistogramSpec HistogramSpec::Exponential(double first, double factor,
                                         size_t count) {
  HistogramSpec spec;
  spec.bounds.reserve(count);
  double bound = first;
  for (size_t i = 0; i < count; ++i) {
    spec.bounds.push_back(bound);
    bound *= factor;
  }
  return spec;
}

HistogramSpec HistogramSpec::Linear(double first, double width, size_t count) {
  HistogramSpec spec;
  spec.bounds.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    spec.bounds.push_back(first + width * static_cast<double>(i));
  }
  return spec;
}

HistogramSpec HistogramSpec::LatencyMs() {
  return Exponential(0.001, 4.0, 12);  // 1 µs .. ~4.2 s
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(p * count)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= target) {
      return i < bounds.size() ? std::min(bounds[i], max) : max;
    }
  }
  return max;
}

Histogram::Histogram(HistogramSpec spec) {
  snap_.bounds = std::move(spec.bounds);
  RST_DCHECK(std::is_sorted(snap_.bounds.begin(), snap_.bounds.end()))
      << "histogram bucket bounds must ascend";
  snap_.counts.assign(snap_.bounds.size() + 1, 0);
}

void Histogram::Record(double value) {
  const size_t bucket =
      std::lower_bound(snap_.bounds.begin(), snap_.bounds.end(), value) -
      snap_.bounds.begin();
  ++snap_.counts[bucket];
  snap_.sum += value;
  if (snap_.count == 0) {
    snap_.min = snap_.max = value;
  } else {
    snap_.min = std::min(snap_.min, value);
    snap_.max = std::max(snap_.max, value);
  }
  ++snap_.count;
}

Status Histogram::Merge(const HistogramSnapshot& other) {
  if (other.bounds != snap_.bounds) {
    return Status::InvalidArgument(
        "histogram merge: bucket bounds mismatch (" +
        std::to_string(other.bounds.size()) + " vs " +
        std::to_string(snap_.bounds.size()) + " bounds)");
  }
  if (other.counts.size() != snap_.counts.size()) {
    return Status::InvalidArgument("histogram merge: bucket count mismatch");
  }
  for (size_t i = 0; i < snap_.counts.size(); ++i) {
    snap_.counts[i] += other.counts[i];
  }
  snap_.sum += other.sum;
  if (other.count > 0) {
    if (snap_.count == 0) {
      snap_.min = other.min;
      snap_.max = other.max;
    } else {
      snap_.min = std::min(snap_.min, other.min);
      snap_.max = std::max(snap_.max, other.max);
    }
  }
  snap_.count += other.count;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Metric impls

struct Counter::Impl {
  std::array<CounterCell, MetricRegistry::kNumShards> cells;

  uint64_t Sum() const {
    uint64_t total = 0;
    for (const CounterCell& cell : cells) {
      // rst-atomics: stripe sums are statistics; a snapshot concurrent with
      // writers is allowed to be mid-update, so relaxed loads suffice.
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Zero() {
    for (CounterCell& cell : cells) {
      // rst-atomics: Reset() documents that a racing increment may land on
      // either side of the zeroing; no ordering needed beyond atomicity.
      cell.value.store(0, std::memory_order_relaxed);
    }
  }
};

void Counter::Add(uint64_t n) const {
  if (impl_ == nullptr) return;
  // rst-atomics: hot-path stripe increment; statistics only (see Sum).
  impl_->cells[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
}

uint64_t Counter::Value() const { return impl_ == nullptr ? 0 : impl_->Sum(); }

struct Gauge::Impl {
  std::atomic<double> value{0.0};
};

void Gauge::Set(double value) const {
  if (impl_ == nullptr) return;
  // rst-atomics: last-writer-wins cell; readers only need a non-torn value.
  impl_->value.store(value, std::memory_order_relaxed);
}

double Gauge::Value() const {
  // rst-atomics: last-writer-wins cell; relaxed read of a single double.
  return impl_ == nullptr ? 0.0 : impl_->value.load(std::memory_order_relaxed);
}

struct HistogramRef::Impl {
  struct Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };

  explicit Impl(HistogramSpec s) : spec(std::move(s)) {
    for (Shard& shard : shards) {
      shard.counts =
          std::make_unique<std::atomic<uint64_t>[]>(spec.bounds.size() + 1);
      // rst-atomics: construction-time init before the impl is published via
      // the registry map (whose mutex orders publication); the defaulted
      // seq_cst assignment costs nothing here and is not a hot path.
      for (size_t i = 0; i <= spec.bounds.size(); ++i) shard.counts[i] = 0;
    }
  }

  void Record(double value) {
    const size_t bucket =
        std::lower_bound(spec.bounds.begin(), spec.bounds.end(), value) -
        spec.bounds.begin();
    Shard& shard = shards[ShardIndex()];
    // rst-atomics: bucket counts are statistics; Snapshot() tolerates a
    // mid-Record skew between counts and sum (documented on Reset()).
    shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
    AtomicAdd(&shard.sum, value);
    AtomicMin(&min, value);
    AtomicMax(&max, value);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    snap.bounds = spec.bounds;
    snap.counts.assign(spec.bounds.size() + 1, 0);
    for (const Shard& shard : shards) {
      // rst-atomics: snapshot reads race writers by design; per-cell
      // atomicity (no torn values) is the only requirement.
      for (size_t i = 0; i <= spec.bounds.size(); ++i) {
        snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
      }
      snap.sum += shard.sum.load(std::memory_order_relaxed);
    }
    for (uint64_t c : snap.counts) snap.count += c;
    if (snap.count > 0) {
      // rst-atomics: same snapshot-vs-writer race tolerance as the counts.
      snap.min = min.load(std::memory_order_relaxed);
      snap.max = max.load(std::memory_order_relaxed);
    }
    return snap;
  }

  void Zero() {
    // rst-atomics: Reset() documents that racing Records may straddle the
    // zeroing; each store only needs to be non-torn.
    for (Shard& shard : shards) {
      for (size_t i = 0; i <= spec.bounds.size(); ++i) {
        shard.counts[i].store(0, std::memory_order_relaxed);
      }
      shard.sum.store(0.0, std::memory_order_relaxed);
    }
    min.store(std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
    max.store(-std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
  }

  HistogramSpec spec;
  std::array<Shard, MetricRegistry::kNumShards> shards;
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

void HistogramRef::Record(double value) const {
  if (impl_ == nullptr) return;
  impl_->Record(value);
}

// ---------------------------------------------------------------------------
// MetricRegistry

MetricRegistry::MetricRegistry() = default;
MetricRegistry::~MetricRegistry() = default;

MetricRegistry& MetricRegistry::Global() {
  // rst-lint: allow(raw-new-delete) leaky singleton; cached metric handles live for the process
  static auto* registry = new MetricRegistry();
  return *registry;
}

Counter MetricRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter::Impl>();
  return Counter(slot.get());
}

Gauge MetricRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge::Impl>();
  return Gauge(slot.get());
}

HistogramRef MetricRegistry::GetHistogram(const std::string& name,
                                          const HistogramSpec& spec) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramRef::Impl>(spec);
  return HistogramRef(slot.get());
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  for (const auto& [name, impl] : counters_) snap.counters[name] = impl->Sum();
  for (const auto& [name, impl] : gauges_) {
    // rst-atomics: last-writer-wins gauge cell; non-torn read is enough.
    snap.gauges[name] = impl->value.load(std::memory_order_relaxed);
  }
  for (const auto& [name, impl] : histograms_) {
    snap.histograms[name] = impl->Snapshot();
  }
  return snap;
}

void MetricRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, impl] : counters_) impl->Zero();
  for (auto& [name, impl] : gauges_) {
    // rst-atomics: see Reset() contract — racing Sets may land either side.
    impl->value.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, impl] : histograms_) impl->Zero();
}

// ---------------------------------------------------------------------------
// Snapshot export / import

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& base) const {
  MetricsSnapshot delta = *this;
  for (auto& [name, value] : delta.counters) {
    auto it = base.counters.find(name);
    if (it != base.counters.end() && it->second <= value) value -= it->second;
  }
  for (auto& [name, hist] : delta.histograms) {
    auto it = base.histograms.find(name);
    if (it == base.histograms.end() || it->second.bounds != hist.bounds ||
        it->second.count > hist.count) {
      continue;
    }
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      hist.counts[i] -= it->second.counts[i];
    }
    hist.count -= it->second.count;
    hist.sum -= it->second.sum;
  }
  return delta;
}

void MetricsSnapshot::AppendJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, value] : counters) {
    w->Key(name);
    w->Uint(value);
  }
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, value] : gauges) {
    w->Key(name);
    w->Double(value);
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, hist] : histograms) {
    w->Key(name);
    w->BeginObject();
    w->Key("bounds");
    w->BeginArray();
    for (double b : hist.bounds) w->Double(b);
    w->EndArray();
    w->Key("counts");
    w->BeginArray();
    for (uint64_t c : hist.counts) w->Uint(c);
    w->EndArray();
    w->Key("count");
    w->Uint(hist.count);
    w->Key("sum");
    w->Double(hist.sum);
    w->Key("min");
    w->Double(hist.min);
    w->Key("max");
    w->Double(hist.max);
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  AppendJson(&w);
  return w.TakeString();
}

Result<MetricsSnapshot> MetricsSnapshot::FromJson(const std::string& json) {
  auto parsed = JsonValue::Parse(json);
  if (!parsed.ok()) return parsed.status();
  return FromJsonValue(parsed.value());
}

Result<MetricsSnapshot> MetricsSnapshot::FromJsonValue(const JsonValue& root) {
  if (!root.is_object()) return Status::Corruption("snapshot: not an object");
  MetricsSnapshot snap;
  if (const JsonValue* counters = root.Get("counters")) {
    for (const auto& [name, value] : counters->AsObject()) {
      snap.counters[name] = value.AsUint();
    }
  }
  if (const JsonValue* gauges = root.Get("gauges")) {
    for (const auto& [name, value] : gauges->AsObject()) {
      snap.gauges[name] = value.AsDouble();
    }
  }
  if (const JsonValue* histograms = root.Get("histograms")) {
    for (const auto& [name, value] : histograms->AsObject()) {
      if (!value.is_object()) {
        return Status::Corruption("snapshot: histogram not an object");
      }
      HistogramSnapshot hist;
      if (const JsonValue* bounds = value.Get("bounds")) {
        for (const JsonValue& b : bounds->AsArray()) {
          hist.bounds.push_back(b.AsDouble());
        }
      }
      if (const JsonValue* counts = value.Get("counts")) {
        for (const JsonValue& c : counts->AsArray()) {
          hist.counts.push_back(c.AsUint());
        }
      }
      if (hist.counts.size() != hist.bounds.size() + 1) {
        return Status::Corruption("snapshot: histogram bucket mismatch");
      }
      if (const JsonValue* v = value.Get("count")) hist.count = v->AsUint();
      if (const JsonValue* v = value.Get("sum")) hist.sum = v->AsDouble();
      if (const JsonValue* v = value.Get("min")) hist.min = v->AsDouble();
      if (const JsonValue* v = value.Get("max")) hist.max = v->AsDouble();
      snap.histograms[name] = std::move(hist);
    }
  }
  return snap;
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

void AppendNumber(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " ";
    AppendNumber(&out, value);
    out += "\n";
  }
  for (const auto& [name, hist] : histograms) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += hist.counts[i];
      out += pname + "_bucket{le=\"";
      AppendNumber(&out, hist.bounds[i]);
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count) + "\n";
    out += pname + "_sum ";
    AppendNumber(&out, hist.sum);
    out += "\n";
    out += pname + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

}  // namespace rst::obs
