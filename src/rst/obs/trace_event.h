#ifndef RST_OBS_TRACE_EVENT_H_
#define RST_OBS_TRACE_EVENT_H_

// Chrome trace-event export (DESIGN.md §12.3): serializes QueryTrace span
// trees and per-worker batch timelines into the `trace_event` JSON format
// that Perfetto and chrome://tracing open directly —
// {"displayTimeUnit": "ms", "traceEvents": [{"ph": "X", "ts": ..., ...}]}.
//
// Two sources feed one writer:
//   * rst::exec::BatchRunner emits a complete ("ph":"X") `run` event per
//     query on its worker's track, with the measured queue wait as an arg —
//     the per-worker timeline (queue-wait vs run);
//   * 1-in-N sampled queries additionally serialize their whole QueryTrace
//     span tree nested under the run event, plus a `queue_wait` slice on a
//     dedicated queue track.
//
// Span trees are AGGREGATED (QueryTrace merges same-name spans), so a span's
// slice renders its total time as one block; children are laid out
// sequentially from the parent's start in first-entered order. That is a
// synthetic layout — real interleavings are collapsed — but durations,
// nesting, and call counts are exact.
//
// The buffer is bounded: events beyond `capacity` are dropped and counted
// (dropped()), never reallocated past the cap, so a profiling run can't eat
// the heap. Append is thread-safe (one mutex; this is the export path, not
// the query hot path — the hot path's cost is composing ~1 event per query).

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rst/common/mutex.h"
#include "rst/common/status.h"
#include "rst/common/thread_annotations.h"

namespace rst::obs {

struct Span;
class JsonWriter;

class TraceEventWriter {
 public:
  /// `capacity` bounds the event buffer; `sample_every` = N keeps the span
  /// tree of every N-th query offered to ShouldSample() (1 = every query).
  explicit TraceEventWriter(size_t capacity = 1 << 16,
                            uint64_t sample_every = 1);

  TraceEventWriter(const TraceEventWriter&) = delete;
  TraceEventWriter& operator=(const TraceEventWriter&) = delete;

  /// Microseconds since this writer's construction (its steady-clock epoch);
  /// every event timestamp shares it, so tracks line up.
  double NowUs() const;

  /// 1-in-N sampling gate; thread-safe. The first call returns true.
  bool ShouldSample() RST_EXCLUDES(mu_);
  uint64_t sample_every() const { return sample_every_; }

  /// One complete ("ph":"X") event. `cat` and arg keys must outlive the
  /// writer (pass metric_names.h constants). Args with an empty key are
  /// skipped.
  struct NumArg {
    // Explicit constructors (not NSDMIs): a default member initializer here
    // could not be used as AddComplete's default argument before the
    // enclosing class is complete.
    NumArg() : key(nullptr), value(0.0) {}
    NumArg(const char* k, double v) : key(k), value(v) {}
    const char* key;
    double value;
  };
  void AddComplete(std::string_view name, const char* cat, uint32_t tid,
                   double ts_us, double dur_us, NumArg arg0 = NumArg(),
                   NumArg arg1 = NumArg()) RST_EXCLUDES(mu_);

  /// Serializes an aggregated span tree as nested complete events starting
  /// at `ts_us` on track `tid` (see the layout note above).
  void AddSpanTree(const Span& root, uint32_t tid, double ts_us)
      RST_EXCLUDES(mu_);

  /// Names a track ("ph":"M" thread_name metadata event).
  void AddThreadName(uint32_t tid, std::string_view name) RST_EXCLUDES(mu_);

  size_t size() const RST_EXCLUDES(mu_);
  uint64_t dropped() const RST_EXCLUDES(mu_);

  /// The complete document; parseable by obs::JsonValue::Parse (pinned by
  /// tests) and by Perfetto.
  std::string ToJson() const RST_EXCLUDES(mu_);
  void AppendJson(JsonWriter* writer) const RST_EXCLUDES(mu_);

  /// Crash-atomic write of ToJson() to `path` (temp file + rename).
  Status WriteFile(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    const char* cat = nullptr;  ///< nullptr marks a thread_name metadata event
    uint32_t tid = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;
    NumArg args[2];
    uint64_t calls = 0;  ///< span call count; 0 = omit
  };

  /// Returns false (and counts the drop) when at capacity.
  bool Append(Event event) RST_EXCLUDES(mu_);
  void AppendSpanLocked(const Span& span, uint32_t tid, double ts_us)
      RST_REQUIRES(mu_);

  const size_t capacity_;
  const uint64_t sample_every_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mu_;
  std::vector<Event> events_ RST_GUARDED_BY(mu_);
  /// Plain (not atomic) on purpose: only touched under mu_ on the export
  /// path, so the mutex is the whole story.
  uint64_t dropped_ RST_GUARDED_BY(mu_) = 0;
  uint64_t sample_counter_ RST_GUARDED_BY(mu_) = 0;
};

}  // namespace rst::obs

#endif  // RST_OBS_TRACE_EVENT_H_
