#ifndef RST_OBS_EXPLAIN_H_
#define RST_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rst/common/status.h"

namespace rst::obs {

class JsonWriter;

/// What the branch-and-bound concluded about one entry (a subtree or an
/// object) of the search tree.
enum class ExplainVerdict : uint8_t {
  kPrune = 0,       ///< subtree discarded: MaxST(q,E) < kNNL(E)
  kExpand = 1,      ///< bounds inconclusive; children become candidates
  kReportHit = 2,   ///< reported into the answer set (object or wholesale)
  kReportMiss = 3,  ///< object conclusively decided NOT an answer
};

/// Which bound forced the verdict.
enum class ExplainBound : uint8_t {
  kNone = 0,        ///< no bound fired (expansion)
  kLowerBound = 1,  ///< the kNNL-side prune test (k-th guaranteed competitor)
  kUpperBound = 2,  ///< the kNNU-side report test (k-th potential competitor)
  kExact = 3,       ///< exact leaf-level competitor count (object candidates)
};

std::string_view ExplainVerdictName(ExplainVerdict verdict);
std::string_view ExplainBoundName(ExplainBound bound);

/// One recorded branch-and-bound decision. `node_id` and `level` come from a
/// deterministic numbering of the tree (rst::ExplainIndex), so the record is
/// stable across runs and thread counts; the similarity interval
/// [q_min, q_max] = [MinST(q,E), MaxST(q,E)] is the evidence the verdict was
/// reached on.
struct ExplainDecision {
  uint64_t node_id = 0;
  uint32_t level = 0;
  ExplainVerdict verdict = ExplainVerdict::kPrune;
  ExplainBound bound = ExplainBound::kNone;
  double q_min = 0.0;
  double q_max = 0.0;
  uint64_t subtree_count = 0;  ///< objects decided by this verdict
};

/// Per-tree-level aggregation of decisions (level 0 = the root's entries).
struct ExplainLevelSummary {
  uint32_t level = 0;
  uint64_t pruned = 0;
  uint64_t expanded = 0;
  uint64_t reported_hit = 0;
  uint64_t reported_miss = 0;
  uint64_t objects_pruned = 0;    ///< objects inside pruned subtrees
  uint64_t objects_reported = 0;  ///< objects inside reported subtrees

  uint64_t decisions() const {
    return pruned + expanded + reported_hit + reported_miss;
  }
};

/// EXPLAIN-level recorder for one RSTkNN query: every branch-and-bound
/// decision (which entry, which bound, which verdict) lands here when a
/// recorder is attached via RstknnOptions::explain. The per-level summary is
/// always maintained; the full decision log is kept only up to
/// `max_decisions` (0 = summary only), with overflow counted in
/// `log_dropped()` — diagnostics stay bounded on adversarial queries.
///
/// Determinism: the recorder stores no clocks and no pointers, only
/// ExplainIndex ids and similarity bounds, so for a fixed query, dataset,
/// and seed the JSON export is byte-identical at any thread count (the
/// batch engine runs the unmodified single-query algorithm).
///
/// Reconciliation: decision totals are definitionally tied to RstknnStats —
///   pruned + reported_miss == stats.pruned_entries,
///   reported_hit          == stats.reported_entries,
///   expanded              == stats.expansions —
/// CheckReconciles() verifies the identities; explain_test property-tests
/// them across algorithms and tree variants.
///
/// Single-threaded by design, like QueryTrace: one recorder per query.
class ExplainRecorder {
 public:
  explicit ExplainRecorder(size_t max_decisions = 0)
      : max_decisions_(max_decisions) {}

  /// Stamped by the searcher ("probe" / "contribution_list").
  void SetAlgorithm(std::string_view name) { algorithm_ = name; }
  const std::string& algorithm() const { return algorithm_; }

  void Record(const ExplainDecision& decision);

  /// Drops all recorded state (summary, log, algorithm) but keeps the cap —
  /// lets a worker reuse one recorder across the queries of a batch.
  void Reset();

  // --- totals (across all levels) ---
  uint64_t pruned() const { return totals_.pruned; }
  uint64_t expanded() const { return totals_.expanded; }
  uint64_t reported_hit() const { return totals_.reported_hit; }
  uint64_t reported_miss() const { return totals_.reported_miss; }
  uint64_t decisions() const { return totals_.decisions(); }

  /// Verifies the decision totals against the searcher's counters (see class
  /// comment); InvalidArgument with the first broken identity otherwise.
  Status CheckReconciles(uint64_t expansions, uint64_t pruned_entries,
                         uint64_t reported_entries) const;

  /// Levels with at least one decision, ascending.
  const std::vector<ExplainLevelSummary>& levels() const { return levels_; }

  /// Decision log (first `max_decisions` decisions, in decision order).
  const std::vector<ExplainDecision>& log() const { return log_; }
  uint64_t log_dropped() const { return log_dropped_; }
  size_t max_decisions() const { return max_decisions_; }

  /// Indented human-readable report (per-level table + optional log).
  std::string ToString() const;
  /// {"algorithm":..., "totals":{...}, "levels":[...], "log":[...],
  ///  "log_dropped":N} — deterministic (no clocks, no pointers).
  std::string ToJson() const;
  void AppendJson(JsonWriter* writer) const;

 private:
  std::string algorithm_;
  size_t max_decisions_;
  ExplainLevelSummary totals_;
  std::vector<ExplainLevelSummary> levels_;  ///< dense by level
  std::vector<ExplainDecision> log_;
  uint64_t log_dropped_ = 0;
};

}  // namespace rst::obs

#endif  // RST_OBS_EXPLAIN_H_
