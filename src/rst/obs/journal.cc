#include "rst/obs/journal.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "rst/common/file_util.h"
#include "rst/obs/json.h"
#include "rst/obs/metric_names.h"
#include "rst/obs/metrics.h"
#include "rst/simd/simd.h"

namespace rst::obs {

#define JOURNAL_RETURN_IF_ERROR(expr)       \
  do {                                      \
    Status status_macro_tmp = (expr);       \
    if (!status_macro_tmp.ok()) return status_macro_tmp; \
  } while (0)

uint64_t AnswerDigest(const std::vector<uint32_t>& ids) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a 64 offset basis
  for (uint32_t id : ids) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (id >> shift) & 0xFFu;
      h *= 1099511628211ull;  // FNV-1a 64 prime
    }
  }
  return h;
}

namespace {

bool ForceScalarActive() {
  // getenv is never raced with setenv in this codebase (environment is
  // read-only after startup).
  const char* v = std::getenv("RST_FORCE_SCALAR");  // NOLINT(concurrency-mt-unsafe)
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

std::string DigestHex(uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[digest & 0xFu];
    digest >>= 4;
  }
  return out;
}

Result<uint64_t> ParseDigestHex(const std::string& hex) {
  if (hex.size() != 16) {
    return Status::InvalidArgument("journal: bad digest length");
  }
  uint64_t value = 0;
  for (char c : hex) {
    uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return Status::InvalidArgument("journal: bad digest character");
    }
    value = (value << 4) | nibble;
  }
  return value;
}

}  // namespace

void AppendProvenanceJson(JsonWriter* writer) {
  writer->Key("simd_level");
  writer->String(simd::LevelName(simd::ActiveLevel()));
  writer->Key("force_scalar");
  writer->Bool(ForceScalarActive());
  writer->Key("build_type");
#ifdef NDEBUG
  writer->String("release");
#else
  writer->String("debug");
#endif
}

bool JournalStats::operator==(const JournalStats& other) const {
  return io_node_reads == other.io_node_reads &&
         io_payload_blocks == other.io_payload_blocks &&
         io_payload_bytes == other.io_payload_bytes &&
         io_cache_hits == other.io_cache_hits &&
         entries_created == other.entries_created &&
         expansions == other.expansions &&
         pruned_entries == other.pruned_entries &&
         reported_entries == other.reported_entries &&
         bound_computations == other.bound_computations &&
         probes == other.probes && pq_pops == other.pq_pops;
}

namespace {

struct StatsField {
  const char* key;
  uint64_t JournalStats::*member;
};

constexpr StatsField kStatsFields[] = {
    {"io_node_reads", &JournalStats::io_node_reads},
    {"io_payload_blocks", &JournalStats::io_payload_blocks},
    {"io_payload_bytes", &JournalStats::io_payload_bytes},
    {"io_cache_hits", &JournalStats::io_cache_hits},
    {"entries_created", &JournalStats::entries_created},
    {"expansions", &JournalStats::expansions},
    {"pruned_entries", &JournalStats::pruned_entries},
    {"reported_entries", &JournalStats::reported_entries},
    {"bound_computations", &JournalStats::bound_computations},
    {"probes", &JournalStats::probes},
    {"pq_pops", &JournalStats::pq_pops},
};

void AppendHeaderJson(JsonWriter* w, const JournalHeader& h) {
  w->BeginObject();
  w->Key("type");
  w->String("header");
  w->Key("version");
  w->Uint(1);
  w->Key("label");
  w->String(h.label);
  w->Key("data");
  w->String(h.data);
  w->Key("algo");
  w->String(h.algo);
  w->Key("view");
  w->String(h.view);
  w->Key("tree");
  w->String(h.tree);
  w->Key("measure");
  w->String(h.measure);
  w->Key("weighting");
  w->String(h.weighting);
  w->Key("alpha");
  w->Double(h.alpha);
  w->Key("threads");
  w->Uint(h.threads);
  w->Key("sample_every");
  w->Uint(h.sample_every);
  w->Key("shards");
  w->Uint(h.shards);
  w->Key("provenance");
  w->BeginObject();
  AppendProvenanceJson(w);
  w->EndObject();
  w->EndObject();
}

void AppendRecordJson(JsonWriter* w, const JournalQueryRecord& r) {
  w->BeginObject();
  w->Key("type");
  w->String("query");
  w->Key("index");
  w->Uint(r.index);
  w->Key("x");
  w->Double(r.x);
  w->Key("y");
  w->Double(r.y);
  w->Key("k");
  w->Uint(r.k);
  w->Key("self");
  w->Uint(r.self);
  w->Key("terms");
  w->BeginArray();
  for (const auto& [term, weight] : r.terms) {
    w->BeginArray();
    w->Uint(term);
    w->Double(static_cast<double>(weight));
    w->EndArray();
  }
  w->EndArray();
  w->Key("wall_ms");
  w->Double(r.wall_ms);
  if (!r.phases_json.empty()) {
    w->Key("phases");
    w->RawValue(r.phases_json);
  }
  w->Key("answer_count");
  w->Uint(r.answer_count);
  w->Key("answer_digest");
  w->String(DigestHex(r.answer_digest));
  w->Key("stats");
  w->BeginObject();
  for (const StatsField& f : kStatsFields) {
    w->Key(f.key);
    w->Uint(r.stats.*f.member);
  }
  w->EndObject();
  w->EndObject();
}

Status ReadString(const JsonValue& obj, const char* key, std::string* out) {
  const JsonValue* v = obj.Get(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument(std::string("journal: missing string \"") +
                                   key + "\"");
  }
  *out = v->AsString();
  return Status::Ok();
}

Status ReadUint(const JsonValue& obj, const char* key, uint64_t* out) {
  const JsonValue* v = obj.Get(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument(std::string("journal: missing number \"") +
                                   key + "\"");
  }
  *out = v->AsUint();
  return Status::Ok();
}

Status ReadDouble(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* v = obj.Get(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument(std::string("journal: missing number \"") +
                                   key + "\"");
  }
  *out = v->AsDouble();
  return Status::Ok();
}

Status ParseHeader(const JsonValue& obj, JournalHeader* header) {
  JOURNAL_RETURN_IF_ERROR(ReadString(obj, "label", &header->label));
  JOURNAL_RETURN_IF_ERROR(ReadString(obj, "data", &header->data));
  JOURNAL_RETURN_IF_ERROR(ReadString(obj, "algo", &header->algo));
  JOURNAL_RETURN_IF_ERROR(ReadString(obj, "view", &header->view));
  JOURNAL_RETURN_IF_ERROR(ReadString(obj, "tree", &header->tree));
  JOURNAL_RETURN_IF_ERROR(ReadString(obj, "measure", &header->measure));
  JOURNAL_RETURN_IF_ERROR(ReadString(obj, "weighting", &header->weighting));
  JOURNAL_RETURN_IF_ERROR(ReadDouble(obj, "alpha", &header->alpha));
  JOURNAL_RETURN_IF_ERROR(ReadUint(obj, "threads", &header->threads));
  JOURNAL_RETURN_IF_ERROR(ReadUint(obj, "sample_every", &header->sample_every));
  if (header->sample_every == 0) header->sample_every = 1;
  // Optional (added with rst::shard): journals captured before the field
  // existed parse as unsharded.
  const JsonValue* shards = obj.Get("shards");
  header->shards =
      shards != nullptr && shards->is_number() ? shards->AsUint() : 0;
  return Status::Ok();
}

Status ParseRecord(const JsonValue& obj, JournalQueryRecord* record) {
  JOURNAL_RETURN_IF_ERROR(ReadUint(obj, "index", &record->index));
  JOURNAL_RETURN_IF_ERROR(ReadDouble(obj, "x", &record->x));
  JOURNAL_RETURN_IF_ERROR(ReadDouble(obj, "y", &record->y));
  JOURNAL_RETURN_IF_ERROR(ReadUint(obj, "k", &record->k));
  JOURNAL_RETURN_IF_ERROR(ReadUint(obj, "self", &record->self));
  JOURNAL_RETURN_IF_ERROR(ReadUint(obj, "answer_count", &record->answer_count));
  const JsonValue* terms = obj.Get("terms");
  if (terms == nullptr || !terms->is_array()) {
    return Status::InvalidArgument("journal: missing terms array");
  }
  record->terms.clear();
  record->terms.reserve(terms->AsArray().size());
  for (const JsonValue& pair : terms->AsArray()) {
    if (!pair.is_array() || pair.AsArray().size() != 2 ||
        !pair.AsArray()[0].is_number() || !pair.AsArray()[1].is_number()) {
      return Status::InvalidArgument("journal: malformed term pair");
    }
    record->terms.emplace_back(
        static_cast<uint32_t>(pair.AsArray()[0].AsUint()),
        static_cast<float>(pair.AsArray()[1].AsDouble()));
  }
  const JsonValue* wall = obj.Get("wall_ms");
  record->wall_ms = wall != nullptr && wall->is_number() ? wall->AsDouble() : 0;
  std::string digest_hex;
  JOURNAL_RETURN_IF_ERROR(ReadString(obj, "answer_digest", &digest_hex));
  Result<uint64_t> digest = ParseDigestHex(digest_hex);
  JOURNAL_RETURN_IF_ERROR(digest.status());
  record->answer_digest = digest.value();
  const JsonValue* stats = obj.Get("stats");
  if (stats == nullptr || !stats->is_object()) {
    return Status::InvalidArgument("journal: missing stats object");
  }
  for (const StatsField& f : kStatsFields) {
    JOURNAL_RETURN_IF_ERROR(ReadUint(*stats, f.key, &(record->stats.*f.member)));
  }
  return Status::Ok();
}

}  // namespace

WorkloadRecorder::~WorkloadRecorder() {
  // No thread may legally race a destructor, but the lock keeps the analysis
  // contract uniform and costs nothing on this cold path.
  MutexLock lock(&mu_);
  if (file_ != nullptr) {
    // Destructor flush for abandon paths; errors here have nowhere to go —
    // callers that care invoke Close() and check.
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WorkloadRecorder::Open(const std::string& path,
                              const JournalHeader& header) {
  MutexLock lock(&mu_);
  if (file_ != nullptr) {
    return Status::InvalidArgument("journal: already open");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("journal: cannot open " + path + ": " +
                           std::strerror(errno));
  }
  header_ = header;
  if (header_.sample_every == 0) header_.sample_every = 1;
  JsonWriter writer;
  AppendHeaderJson(&writer, header_);
  std::string line = writer.TakeString();
  line.push_back('\n');
  if (std::fwrite(line.data(), 1, line.size(), file) != line.size() ||
      std::fflush(file) != 0) {
    std::fclose(file);
    return Status::Internal("journal: header write failed for " + path);
  }
  file_ = file;
  recorded_ = 0;
  error_ = Status::Ok();
  return Status::Ok();
}

bool WorkloadRecorder::is_open() const {
  // Was an unlocked `file_ != nullptr` read: a monitor thread polling
  // is_open() while a worker raced Open/Append/Close was a data race on
  // `file_` (caught while adding thread-safety annotations; see
  // WorkloadRecorderTest.ConcurrentAppendAndIsOpen).
  MutexLock lock(&mu_);
  return file_ != nullptr;
}

bool WorkloadRecorder::ShouldSample(uint64_t index) const {
  MutexLock lock(&mu_);
  if (file_ == nullptr) return false;
  return index % header_.sample_every == 0;
}

void WorkloadRecorder::Append(const JournalQueryRecord& record) {
  static const Counter records =
      MetricRegistry::Global().GetCounter(names::kJournalRecords);
  static const Counter errors =
      MetricRegistry::Global().GetCounter(names::kJournalErrors);
  // Serialize outside the lock: the mutex only orders the fwrite calls.
  JsonWriter writer;
  AppendRecordJson(&writer, record);
  std::string line = writer.TakeString();
  line.push_back('\n');
  MutexLock lock(&mu_);
  if (file_ == nullptr) return;
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    errors.Increment();
    if (error_.ok()) {
      error_ = Status::Internal("journal: record append failed");
    }
    return;
  }
  ++recorded_;
  records.Increment();
}

uint64_t WorkloadRecorder::recorded() const {
  MutexLock lock(&mu_);
  return recorded_;
}

Status WorkloadRecorder::Close() {
  MutexLock lock(&mu_);
  if (file_ == nullptr) return error_;
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0 && error_.ok()) {
    error_ = Status::Internal("journal: close failed");
  }
  return error_;
}

Result<JournalFile> ReadJournal(const std::string& path) {
  Result<std::string> contents = ReadFileToString(path);
  JOURNAL_RETURN_IF_ERROR(contents.status());
  JournalFile journal;
  const std::string& text = contents.value();
  size_t pos = 0;
  size_t line_number = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    const bool complete = eol != std::string::npos;
    const std::string_view line(text.data() + pos,
                                (complete ? eol : text.size()) - pos);
    pos = complete ? eol + 1 : text.size();
    ++line_number;
    if (line.empty()) continue;
    if (!complete) {
      // Torn final line from a crash mid-append: tolerated by design.
      ++journal.truncated_lines;
      break;
    }
    Result<JsonValue> parsed = JsonValue::Parse(line);
    if (!parsed.ok()) {
      if (pos >= text.size()) {
        // Final line, complete but unparseable — also a torn write (the
        // newline landed, the payload did not finish).
        ++journal.truncated_lines;
        break;
      }
      return Status::InvalidArgument("journal: line " +
                                     std::to_string(line_number) + ": " +
                                     std::string(parsed.status().message()));
    }
    const JsonValue& obj = parsed.value();
    std::string type;
    JOURNAL_RETURN_IF_ERROR(ReadString(obj, "type", &type));
    if (type == "header") {
      if (saw_header) {
        return Status::InvalidArgument("journal: duplicate header");
      }
      saw_header = true;
      JOURNAL_RETURN_IF_ERROR(ParseHeader(obj, &journal.header));
    } else if (type == "query") {
      if (!saw_header) {
        return Status::InvalidArgument("journal: record before header");
      }
      JournalQueryRecord record;
      JOURNAL_RETURN_IF_ERROR(ParseRecord(obj, &record));
      journal.records.push_back(std::move(record));
    } else {
      return Status::InvalidArgument("journal: unknown line type \"" + type +
                                     "\"");
    }
  }
  if (!saw_header) {
    return Status::InvalidArgument("journal: missing header line");
  }
  std::stable_sort(journal.records.begin(), journal.records.end(),
                   [](const JournalQueryRecord& a, const JournalQueryRecord& b) {
                     return a.index < b.index;
                   });
  return journal;
}

#undef JOURNAL_RETURN_IF_ERROR

}  // namespace rst::obs
