#ifndef RST_OBS_METRICS_H_
#define RST_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rst/common/mutex.h"
#include "rst/common/status.h"
#include "rst/common/thread_annotations.h"

namespace rst::obs {

class JsonValue;
class JsonWriter;
class MetricRegistry;

/// Fixed bucket layout of a histogram: ascending upper bounds. A value v
/// lands in the first bucket whose bound satisfies v <= bound; values above
/// bounds.back() land in the implicit overflow bucket.
struct HistogramSpec {
  std::vector<double> bounds;

  /// bounds = first, first*factor, first*factor^2, ... (count bounds).
  static HistogramSpec Exponential(double first, double factor, size_t count);
  /// bounds = first, first+width, first+2*width, ... (count bounds).
  static HistogramSpec Linear(double first, double width, size_t count);

  /// Default latency layout: 1 µs .. ~4 s, factor 4.
  static HistogramSpec LatencyMs();
};

/// Immutable merged view of one histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  ///< bounds.size() + 1; last = overflow
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< observed extremes; 0 when count == 0
  double max = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Upper-bound estimate of the p-quantile (p in [0, 1]) read off the
  /// cumulative bucket counts; the overflow bucket reports the observed max.
  double Percentile(double p) const;
};

/// Single-writer histogram value type. Used standalone for offline
/// aggregation (corpus statistics in the CLI) and as the snapshot/merge
/// carrier of the registry's sharded histograms.
class Histogram {
 public:
  explicit Histogram(HistogramSpec spec);

  void Record(double value);
  /// Accumulates another snapshot. Mismatched bucket bounds are rejected
  /// with InvalidArgument and the histogram is left untouched — merging
  /// incompatible layouts would silently credit counts to wrong buckets.
  Status Merge(const HistogramSnapshot& other);

  uint64_t count() const { return snap_.count; }
  double sum() const { return snap_.sum; }
  const HistogramSnapshot& snapshot() const { return snap_; }
  double Percentile(double p) const { return snap_.Percentile(p); }

 private:
  HistogramSnapshot snap_;
};

/// Merged point-in-time view of a whole registry.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counters and histogram bucket counts/sums minus `base` (for per-query
  /// deltas); gauges and histogram min/max keep their current values.
  MetricsSnapshot Delta(const MetricsSnapshot& base) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;
  void AppendJson(JsonWriter* writer) const;
  static Result<MetricsSnapshot> FromJson(const std::string& json);
  /// Same, from an already-parsed document — lets tooling accept both a bare
  /// snapshot and wrapper schemas (e.g. the CLI's {"metrics": {...}}) by
  /// picking the object to decode itself.
  static Result<MetricsSnapshot> FromJsonValue(const JsonValue& root);

  /// Prometheus text exposition ('.' in names becomes '_').
  std::string ToPrometheusText() const;
};

/// Handle to a named monotonic counter. Cheap to copy; a default-constructed
/// handle is a no-op sink. Add() is lock-free (a relaxed atomic add on a
/// per-thread stripe), so later parallel-query work inherits it for free.
class Counter {
 public:
  Counter() = default;
  void Add(uint64_t n) const;
  void Increment() const { Add(1); }
  uint64_t Value() const;

 private:
  friend class MetricRegistry;
  struct Impl;
  explicit Counter(Impl* impl) : impl_(impl) {}
  Impl* impl_ = nullptr;
};

/// Handle to a named gauge (last-writer-wins double).
class Gauge {
 public:
  Gauge() = default;
  void Set(double value) const;
  double Value() const;

 private:
  friend class MetricRegistry;
  struct Impl;
  explicit Gauge(Impl* impl) : impl_(impl) {}
  Impl* impl_ = nullptr;
};

/// Handle to a named registry histogram. Record() is lock-free.
class HistogramRef {
 public:
  HistogramRef() = default;
  void Record(double value) const;

 private:
  friend class MetricRegistry;
  struct Impl;
  explicit HistogramRef(Impl* impl) : impl_(impl) {}
  Impl* impl_ = nullptr;
};

/// Process-wide metric registry. Registration (GetCounter/GetGauge/
/// GetHistogram) takes a mutex and should be done once per call site (cache
/// the handle); updates through handles are lock-free on thread-striped
/// shards; Snapshot() merges the shards.
///
/// Metric naming scheme (see DESIGN.md §7): dot-separated
/// `<subsystem>.<metric>`, e.g. `rstknn.pruned_entries`,
/// `storage.buffer_pool.hits`, `iurtree.fanout`.
class MetricRegistry {
 public:
  static constexpr size_t kNumShards = 16;

  MetricRegistry();
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry every subsystem publishes to.
  static MetricRegistry& Global();

  /// Idempotent per name; handles stay valid for the registry's lifetime
  /// (Reset() zeroes values but keeps registrations).
  Counter GetCounter(const std::string& name) RST_EXCLUDES(mu_);
  Gauge GetGauge(const std::string& name) RST_EXCLUDES(mu_);
  /// The bucket layout is fixed by the first registration of `name`.
  HistogramRef GetHistogram(const std::string& name,
                            const HistogramSpec& spec) RST_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const RST_EXCLUDES(mu_);

  /// Zeroes every metric (registrations survive — handles held anywhere
  /// remain valid and keep working).
  ///
  /// Concurrency guarantee: safe to call while other threads update metrics
  /// through live handles, and safe relative to concurrent Snapshot()/
  /// registration (all three serialize on the registry mutex; updates stay
  /// lock-free). Every cell is zeroed with an atomic store, so no update is
  /// ever torn or lost-and-corrupted. What is NOT guaranteed under
  /// concurrent writers is a point-in-time cut: an in-flight increment may
  /// land either before the reset (zeroed with the rest) or after it
  /// (surviving into the next window), and a histogram Record racing the
  /// reset may briefly leave count/sum/min/max mutually skewed by that one
  /// sample. Quiesce writers first when an exact zero reading matters.
  void Reset() RST_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  /// mu_ guards the registration maps only; the Impl cells reached through
  /// live handles are updated lock-free (striped relaxed atomics).
  std::map<std::string, std::unique_ptr<Counter::Impl>> counters_
      RST_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge::Impl>> gauges_
      RST_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<HistogramRef::Impl>> histograms_
      RST_GUARDED_BY(mu_);
};

}  // namespace rst::obs

#endif  // RST_OBS_METRICS_H_
