#ifndef RST_OBS_RUNTIME_H_
#define RST_OBS_RUNTIME_H_

// Runtime process telemetry (DESIGN.md §12.4): a background thread samples
// getrusage(2) — peak RSS, minor/major page faults, user/sys CPU time — plus
// current RSS and thread count from /proc (Linux; the /proc-derived gauges
// read 0 elsewhere), and publishes them as runtime.* gauges on a fixed
// period. Gauges are last-writer-wins, so a metrics snapshot taken at any
// point carries the most recent sample; the cumulative fault/CPU values are
// published as-is (monotone within a process).
//
// The sampler is optional machinery for load tests and the CLI's
// --telemetry-ms flag; nothing on the query path touches it.

#include <cstdint>
#include <thread>

#include "rst/common/mutex.h"
#include "rst/common/thread_annotations.h"

namespace rst::obs {

/// One decoded sample (exposed for tests and one-shot use).
struct RuntimeSample {
  uint64_t rss_bytes = 0;      ///< current RSS (/proc/self/statm; 0 off-Linux)
  uint64_t max_rss_bytes = 0;  ///< peak RSS (ru_maxrss)
  uint64_t minor_faults = 0;   ///< cumulative (ru_minflt)
  uint64_t major_faults = 0;   ///< cumulative (ru_majflt)
  double cpu_user_ms = 0.0;    ///< cumulative (ru_utime)
  double cpu_sys_ms = 0.0;     ///< cumulative (ru_stime)
  uint64_t threads = 0;        ///< live threads (/proc/self/task; 0 off-Linux)
};

/// Reads one sample from the OS (no registry interaction).
RuntimeSample ReadRuntimeSample();

class RuntimeSampler {
 public:
  RuntimeSampler() = default;
  ~RuntimeSampler() { Stop(); }

  RuntimeSampler(const RuntimeSampler&) = delete;
  RuntimeSampler& operator=(const RuntimeSampler&) = delete;

  /// Samples once immediately, then every `period_ms` (min 1) on a
  /// background thread until Stop(). No-op if already running.
  void Start(uint64_t period_ms) RST_EXCLUDES(mu_);

  /// Joins the background thread; safe to call repeatedly. A final sample is
  /// taken on the way out so the gauges cover the full run.
  void Stop() RST_EXCLUDES(mu_);

  bool running() const { return thread_.joinable(); }

  /// Publishes one sample to the global registry (also used by the
  /// background thread; public so callers can sample without a thread).
  static void SampleOnce();

 private:
  /// Blocks for up to `period_ms` or until Stop() is signalled, whichever
  /// comes first; returns the stop flag (the background thread's loop
  /// condition).
  bool WaitForStop(uint64_t period_ms) RST_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  bool stop_ RST_GUARDED_BY(mu_) = false;
  /// Touched only by the thread calling Start()/Stop() (the sampler's owner);
  /// never by the background thread itself.
  std::thread thread_;
};

}  // namespace rst::obs

#endif  // RST_OBS_RUNTIME_H_
