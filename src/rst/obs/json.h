#ifndef RST_OBS_JSON_H_
#define RST_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "rst/common/status.h"

namespace rst::obs {

/// Minimal JSON document model for the observability exporters: enough to
/// emit metric/trace snapshots and to parse them back (snapshot round-trip
/// tests, bench trajectory tooling). Not a general-purpose JSON library —
/// numbers are doubles, object keys are unique, input must be UTF-8.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  uint64_t AsUint() const { return static_cast<uint64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static Result<JsonValue> Parse(std::string_view text);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Streaming writer producing compact JSON. The caller is responsible for
/// well-formedness (Key() before every value inside an object); commas and
/// escaping are handled here. Doubles are written in shortest round-trip
/// form, uint64 values as exact integers.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(std::string_view key);
  void String(std::string_view value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();
  /// Splices `json` in verbatim as one value (commas still handled). The
  /// caller guarantees it is a complete, well-formed JSON value — used to
  /// embed pre-serialized trace/explain documents without re-parsing.
  void RawValue(std::string_view json);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: number of values emitted so far.
  std::vector<size_t> counts_;
  bool after_key_ = false;
};

}  // namespace rst::obs

#endif  // RST_OBS_JSON_H_
