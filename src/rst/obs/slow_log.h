#ifndef RST_OBS_SLOW_LOG_H_
#define RST_OBS_SLOW_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rst::obs {

class JsonWriter;

/// One captured slow query: the full diagnostics that existed at completion
/// time, serialized so the record is self-contained after the query's trace
/// and recorder are gone.
struct SlowQueryRecord {
  uint64_t seq = 0;          ///< capture ticket (global order of captures)
  uint64_t query_index = 0;  ///< index within the batch (0 for serial paths)
  std::string label;         ///< execution path, e.g. "rstknn.batch"
  double elapsed_ms = 0.0;
  uint64_t answers = 0;
  std::string trace_json;    ///< QueryTrace::ToJson(), "" when untraced
  std::string explain_json;  ///< ExplainRecorder::ToJson(), "" when absent
};

/// Lock-free ring buffer of the most recent slow queries. Writers (batch
/// workers, the serial path) call ShouldCapture + Insert; the ring keeps the
/// newest `capacity` records, overwriting the oldest.
///
/// Concurrency: Insert is lock-free — a writer claims a ticket with one
/// fetch_add, exchanges the target slot's state to `writing`, fills it, and
/// release-stores `ready`. If two writers collide on one slot (the ring
/// wrapped a full capacity while a write was in flight) the later writer
/// drops its record (counted in dropped()) rather than blocking or tearing.
/// Snapshot/ToJson read slot payloads non-atomically and are therefore
/// QUIESCED-ONLY: call them after the batch has joined (exec::BatchRunner
/// returns only after all workers finish), never concurrently with Insert.
///
/// Every Insert also bumps the global `exec.slow_queries` counter — note
/// this counter is timing-derived and thus NOT deterministic; bench_diff
/// skips it when gating.
class SlowQueryLog {
 public:
  /// `threshold_ms`: queries at or above this latency are captured.
  /// `capacity`: ring size (clamped to >= 1).
  explicit SlowQueryLog(double threshold_ms, size_t capacity = 64);
  ~SlowQueryLog();

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  double threshold_ms() const { return threshold_ms_; }
  size_t capacity() const { return slots_.size(); }

  /// Cheap pre-check so callers skip building trace/explain JSON for fast
  /// queries.
  bool ShouldCapture(double elapsed_ms) const {
    return elapsed_ms >= threshold_ms_;
  }

  /// Captures one record (record.seq is assigned here). Thread-safe,
  /// lock-free; returns false when the record was dropped on a slot
  /// collision.
  bool Insert(SlowQueryRecord record);

  /// Records captured / dropped-on-collision since construction.
  /// rst-atomics: statistics counters read for reporting; relaxed loads —
  /// callers tolerate instantaneous skew against in-flight Inserts.
  uint64_t captured() const {
    return captured_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// The resident records, oldest first. Quiesced-only (see class comment).
  std::vector<SlowQueryRecord> Snapshot() const;

  /// {"threshold_ms":..,"captured":..,"dropped":..,"records":[...]} with
  /// trace/explain embedded as raw JSON. Quiesced-only.
  std::string ToJson() const;
  void AppendJson(JsonWriter* writer) const;

 private:
  enum SlotState : uint32_t { kEmpty = 0, kWriting = 1, kReady = 2 };
  /// Deliberately not mutex-based (and so carries no RST_GUARDED_BY): the
  /// slot-state protocol in Insert orders all access to `record` — claim via
  /// acquire exchange, publish via release store — and Snapshot is
  /// quiesced-only by contract (class comment).
  struct Slot {
    std::atomic<uint32_t> state{kEmpty};
    SlowQueryRecord record;
  };

  const double threshold_ms_;
  std::vector<Slot> slots_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> captured_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace rst::obs

#endif  // RST_OBS_SLOW_LOG_H_
