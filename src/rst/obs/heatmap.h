#ifndef RST_OBS_HEATMAP_H_
#define RST_OBS_HEATMAP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rst/common/status.h"
#include "rst/obs/explain.h"

namespace rst::obs {

class JsonWriter;

/// Per-node counters accumulated by a HeatmapRecorder. A node is identified
/// by its stable explain preorder id (ExplainIndex numbering for the pointer
/// tree; `entry_index + 1` for a FrozenTree — the two agree for trees built
/// from the same data), so heatmaps from pointer and frozen runs of the same
/// workload are directly comparable.
struct HeatmapNodeCounters {
  uint32_t level = 0;             ///< tree level (0 = leaf entries)
  uint64_t visits = 0;            ///< decisions of any kind touching this node
  uint64_t pruned = 0;            ///< subtree discarded via bounds
  uint64_t expanded = 0;          ///< node opened, children enqueued
  uint64_t reported_hit = 0;      ///< reported as (containing) answers
  uint64_t reported_miss = 0;     ///< decided exactly, not an answer
  uint64_t objects_pruned = 0;    ///< objects discarded under this node
  uint64_t objects_reported = 0;  ///< objects reported under this node
  uint64_t lower_bound_fires = 0;
  uint64_t upper_bound_fires = 0;
  uint64_t exact_fires = 0;

  HeatmapNodeCounters& operator+=(const HeatmapNodeCounters& other);
};

/// Workload-level index heatmap: per-node visit/prune/expand/report counters
/// accumulated across queries. Unlike ExplainRecorder (one query, full
/// decision log), this keeps only counters keyed by node id, so it stays
/// small and mergeable no matter how many queries feed it.
///
/// Contract (mirrors ExplainRecorder::CheckReconciles): summed over all
/// nodes, `pruned + reported_miss == stats.pruned_entries`,
/// `reported_hit == stats.reported_entries` and
/// `expanded == stats.expansions`, where `stats` is the sum of RstknnStats
/// over exactly the queries recorded — per query, per batch, and after
/// Merge across workers.
///
/// Not thread-safe: give each worker its own recorder and Merge after the
/// join (counters are commutative sums keyed by stable ids, so the merged
/// result is identical at any thread count).
class HeatmapRecorder {
 public:
  /// One branch-and-bound decision on node `node_id` at `level`.
  /// `decided_objects` is the number of underlying objects settled by the
  /// decision (same convention as ExplainDecision::subtree_count).
  void Record(uint64_t node_id, uint32_t level, ExplainVerdict verdict,
              ExplainBound bound, uint64_t decided_objects);

  /// Folds `other` into this recorder (per-node counter sums).
  void Merge(const HeatmapRecorder& other);

  void Reset();

  /// Number of queries whose decisions are included — bumped by the caller
  /// (searchers cannot see batch boundaries).
  void AddQueries(uint64_t n) { queries_ += n; }
  uint64_t queries() const { return queries_; }

  uint64_t decisions() const {
    return totals_.pruned + totals_.expanded + totals_.reported_hit +
           totals_.reported_miss;
  }
  const HeatmapNodeCounters& totals() const { return totals_; }
  const std::map<uint64_t, HeatmapNodeCounters>& nodes() const {
    return nodes_;
  }

  /// Per-level sums in level order (levels with no decisions omitted).
  std::vector<HeatmapNodeCounters> LevelSummaries() const;

  /// Exact reconciliation against summed RstknnStats; InvalidArgument with a
  /// counter-by-counter message on any mismatch.
  Status CheckReconciles(uint64_t expansions, uint64_t pruned_entries,
                         uint64_t reported_entries) const;

  /// {"queries":..,"decisions":..,"totals":{..},"levels":[..],"nodes":[..]}
  /// Nodes are emitted in ascending id order so output is deterministic;
  /// `max_nodes` > 0 keeps only the hottest (by visits, then id) that many.
  void AppendJson(JsonWriter* writer, size_t max_nodes = 0) const;
  std::string ToJson(size_t max_nodes = 0) const;

  std::string ToString() const;

 private:
  uint64_t queries_ = 0;
  HeatmapNodeCounters totals_;
  // Ordered by node id: deterministic iteration for export and merge.
  std::map<uint64_t, HeatmapNodeCounters> nodes_;
};

}  // namespace rst::obs

#endif  // RST_OBS_HEATMAP_H_
