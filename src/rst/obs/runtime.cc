#include "rst/obs/runtime.h"

#include <chrono>
#include <cstdio>

#include <sys/resource.h>
#include <unistd.h>

#ifdef __linux__
#include <dirent.h>
#endif

#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"

namespace rst::obs {

namespace {

double TimevalMs(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) * 1000.0 +
         static_cast<double>(tv.tv_usec) / 1000.0;
}

#ifdef __linux__
uint64_t ReadRssBytes() {
  // /proc/self/statm: size resident shared ... in pages.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0, resident_pages = 0;
  const int fields = std::fscanf(f, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(f);
  if (fields != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return resident_pages * static_cast<uint64_t>(page > 0 ? page : 4096);
}

uint64_t CountThreads() {
  DIR* dir = opendir("/proc/self/task");
  if (dir == nullptr) return 0;
  uint64_t count = 0;
  // readdir is flagged by concurrency-mt-unsafe for its shared static buffer,
  // but glibc's readdir is only unsafe when two threads share one DIR* —
  // this DIR* is function-local, and readdir_r is deprecated by glibc.
  while (const dirent* entry = readdir(dir)) {  // NOLINT(concurrency-mt-unsafe)
    if (entry->d_name[0] != '.') ++count;
  }
  closedir(dir);
  return count;
}
#else
uint64_t ReadRssBytes() { return 0; }
uint64_t CountThreads() { return 0; }
#endif  // __linux__

/// Cached gauge handles (registration takes the registry mutex; sampling
/// should not).
struct RuntimeMetrics {
  Gauge rss_bytes;
  Gauge max_rss_bytes;
  Gauge minor_faults;
  Gauge major_faults;
  Gauge cpu_user_ms;
  Gauge cpu_sys_ms;
  Gauge threads;
  Counter samples;

  static const RuntimeMetrics& Get() {
    static const RuntimeMetrics* metrics = [] {
      // rst-lint: allow(raw-new-delete) leaky singleton; cached metric handles live for the process
      auto* m = new RuntimeMetrics();
      MetricRegistry& registry = MetricRegistry::Global();
      m->rss_bytes = registry.GetGauge(names::kRuntimeRssBytes);
      m->max_rss_bytes = registry.GetGauge(names::kRuntimeMaxRssBytes);
      m->minor_faults = registry.GetGauge(names::kRuntimeMinorFaults);
      m->major_faults = registry.GetGauge(names::kRuntimeMajorFaults);
      m->cpu_user_ms = registry.GetGauge(names::kRuntimeCpuUserMs);
      m->cpu_sys_ms = registry.GetGauge(names::kRuntimeCpuSysMs);
      m->threads = registry.GetGauge(names::kRuntimeThreads);
      m->samples = registry.GetCounter(names::kRuntimeSamples);
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

RuntimeSample ReadRuntimeSample() {
  RuntimeSample sample;
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // ru_maxrss is kilobytes on Linux (bytes on macOS; this tree targets
    // Linux containers, where the kB convention holds).
    sample.max_rss_bytes = static_cast<uint64_t>(usage.ru_maxrss) * 1024;
    sample.minor_faults = static_cast<uint64_t>(usage.ru_minflt);
    sample.major_faults = static_cast<uint64_t>(usage.ru_majflt);
    sample.cpu_user_ms = TimevalMs(usage.ru_utime);
    sample.cpu_sys_ms = TimevalMs(usage.ru_stime);
  }
  sample.rss_bytes = ReadRssBytes();
  sample.threads = CountThreads();
  return sample;
}

void RuntimeSampler::SampleOnce() {
  const RuntimeSample sample = ReadRuntimeSample();
  const RuntimeMetrics& metrics = RuntimeMetrics::Get();
  metrics.rss_bytes.Set(static_cast<double>(sample.rss_bytes));
  metrics.max_rss_bytes.Set(static_cast<double>(sample.max_rss_bytes));
  metrics.minor_faults.Set(static_cast<double>(sample.minor_faults));
  metrics.major_faults.Set(static_cast<double>(sample.major_faults));
  metrics.cpu_user_ms.Set(sample.cpu_user_ms);
  metrics.cpu_sys_ms.Set(sample.cpu_sys_ms);
  metrics.threads.Set(static_cast<double>(sample.threads));
  metrics.samples.Increment();
}

bool RuntimeSampler::WaitForStop(uint64_t period_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(period_ms);
  MutexLock lock(&mu_);
  while (!stop_) {
    if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
  }
  return stop_;
}

void RuntimeSampler::Start(uint64_t period_ms) {
  if (thread_.joinable()) return;
  if (period_ms == 0) period_ms = 1;
  {
    MutexLock lock(&mu_);
    stop_ = false;
  }
  thread_ = std::thread([this, period_ms] {
    SampleOnce();
    while (!WaitForStop(period_ms)) SampleOnce();
  });
}

void RuntimeSampler::Stop() {
  if (!thread_.joinable()) return;
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
  SampleOnce();
}

}  // namespace rst::obs
