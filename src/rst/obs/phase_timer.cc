#include "rst/obs/phase_timer.h"

#include <cstdio>
#include <cstring>

#include "rst/obs/json.h"
#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"

namespace rst::obs {

namespace {

const char* const kPhaseNames[kNumPhases] = {"descent", "bounds", "merge",
                                             "io", "finalize"};

/// Cached registry handles, one histogram per phase (same leaky-singleton
/// pattern as the batch runner's BatchMetrics).
struct PhaseMetrics {
  HistogramRef histograms[kNumPhases];
  Counter profiled_queries;

  static const PhaseMetrics& Get() {
    static const PhaseMetrics* metrics = [] {
      // rst-lint: allow(raw-new-delete) leaky singleton; cached metric handles live for the process
      auto* m = new PhaseMetrics();
      MetricRegistry& registry = MetricRegistry::Global();
      const char* const names[kNumPhases] = {
          names::kPhaseDescentMs, names::kPhaseBoundsMs, names::kPhaseMergeMs,
          names::kPhaseIoMs, names::kPhaseFinalizeMs};
      for (size_t i = 0; i < kNumPhases; ++i) {
        m->histograms[i] =
            registry.GetHistogram(names[i], HistogramSpec::LatencyMs());
      }
      m->profiled_queries = registry.GetCounter(names::kPhaseProfiledQueries);
      return m;
    }();
    return *metrics;
  }
};

double ElapsedMs(std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

const char* PhaseName(Phase phase) {
  return kPhaseNames[static_cast<size_t>(phase)];
}

PhaseProfiler::PhaseProfiler() { Reset(); }

void PhaseProfiler::Reset() {
  std::memset(total_ms_, 0, sizeof(total_ms_));
  std::memset(calls_, 0, sizeof(calls_));
  depth_ = 0;
  overflow_ = 0;
}

void PhaseProfiler::Enter(Phase phase) {
  const Clock::time_point now = Clock::now();
  if (depth_ >= kMaxDepth) {
    ++overflow_;
    return;
  }
  if (depth_ > 0) {
    // Pause the enclosing phase: bank its slice so nested time is never
    // counted twice.
    total_ms_[static_cast<size_t>(stack_[depth_ - 1])] +=
        ElapsedMs(slice_start_, now);
  }
  stack_[depth_++] = phase;
  ++calls_[static_cast<size_t>(phase)];
  slice_start_ = now;
}

void PhaseProfiler::Exit() {
  if (overflow_ > 0) {
    --overflow_;
    return;
  }
  if (depth_ == 0) return;  // unbalanced Exit: ignore rather than corrupt
  const Clock::time_point now = Clock::now();
  total_ms_[static_cast<size_t>(stack_[--depth_])] +=
      ElapsedMs(slice_start_, now);
  // Resume the parent's slice from here.
  slice_start_ = now;
}

double PhaseProfiler::SumMs() const {
  double sum = 0.0;
  for (size_t i = 0; i < kNumPhases; ++i) sum += total_ms_[i];
  return sum;
}

void PhaseProfiler::Publish() const {
  const PhaseMetrics& metrics = PhaseMetrics::Get();
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (calls_[i] > 0) metrics.histograms[i].Record(total_ms_[i]);
  }
  metrics.profiled_queries.Increment();
}

std::string PhaseProfiler::ToString() const {
  std::string out;
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (calls_[i] == 0) continue;
    char line[96];
    std::snprintf(line, sizeof(line), "%-10s %10.3f ms  x%llu\n",
                  kPhaseNames[i], total_ms_[i],
                  static_cast<unsigned long long>(calls_[i]));
    out.append(line);
  }
  return out;
}

void PhaseProfiler::AppendJson(JsonWriter* writer) const {
  writer->BeginObject();
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (calls_[i] == 0) continue;
    writer->Key(kPhaseNames[i]);
    writer->BeginObject();
    writer->Key("ms");
    writer->Double(total_ms_[i]);
    writer->Key("calls");
    writer->Uint(calls_[i]);
    writer->EndObject();
  }
  writer->EndObject();
}

}  // namespace rst::obs
