#ifndef RST_OBS_PHASE_TIMER_H_
#define RST_OBS_PHASE_TIMER_H_

// Per-phase latency attribution (DESIGN.md §12). A PhaseProfiler splits one
// query's wall time into a fixed set of phases — tree descent, summary/bound
// kernels, contribution-list merge, page IO, result finalize — with EXCLUSIVE
// (self-time) accounting: entering a nested phase pauses the enclosing one,
// so the per-phase totals of a query always sum to at most its wall time.
//
// Contrast with QueryTrace: a trace is a free-form span *tree* (names,
// counts, arbitrary nesting) built for one query you intend to look at; the
// phase profiler is a flat, fixed-arity accumulator cheap enough to leave on
// for every query of a load test, feeding per-phase latency histograms
// (rstknn.phase.*) in the global registry.
//
// Overhead contract:
//   * compiled out — build with -DRST_DISABLE_PROFILING and PhaseTimer is an
//     empty type; the hooks vanish entirely;
//   * enabled-but-idle — a null profiler costs one pointer test per hook
//     (same discipline as TraceSpan), ≤1% on the micro_batch serial row;
//   * enabled-and-attached — one steady_clock read per phase boundary plus
//     an array add; no allocation, no locks.
//
// Threading: a PhaseProfiler is single-threaded per query, exactly like
// QueryTrace. Batch execution keeps one per worker (rst::exec::BatchRunner).

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <string>

namespace rst::obs {

class JsonWriter;

/// The fixed attribution buckets. Mapping from algorithm steps (DESIGN.md
/// §12.1): kDescent = entry setup + node expansion + candidate pick,
/// kBounds = competitor probes (guaranteed/potential) and their bound
/// kernels, kMerge = contribution-list build + k-th selection (the 2011
/// literal algorithm), kIo = node payload reads through a BufferPool,
/// kFinalize = answer collection + final sort.
enum class Phase : uint8_t {
  kDescent = 0,
  kBounds,
  kMerge,
  kIo,
  kFinalize,
};

inline constexpr size_t kNumPhases = 5;

/// Short stable label ("descent", "bounds", ...), used in tables and JSON.
const char* PhaseName(Phase phase);

/// Per-query phase accumulator. Enter/Exit keep a small fixed stack; time is
/// attributed to the INNERMOST open phase only (self time), so re-entering
/// the same phase or nesting kIo under kBounds never double-counts.
class PhaseProfiler {
 public:
  PhaseProfiler();

  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// Opens `phase`; pauses the enclosing phase if any. Depth beyond the
  /// fixed stack (8) is counted but not timed — callers never nest that deep.
  void Enter(Phase phase);
  /// Closes the innermost open phase and resumes its parent.
  void Exit();

  /// Zeroes totals and call counts (the searcher calls this per query).
  void Reset();

  double total_ms(Phase phase) const {
    return total_ms_[static_cast<size_t>(phase)];
  }
  uint64_t calls(Phase phase) const {
    return calls_[static_cast<size_t>(phase)];
  }
  /// Sum of every phase's self time — ≤ the query's wall time by
  /// construction (phases are disjoint sub-intervals of the query).
  double SumMs() const;

  /// Records one histogram sample per phase with calls > 0 into the global
  /// registry (rstknn.phase.<name>.ms) and bumps rstknn.phase
  /// .profiled_queries. Does not reset — call once per completed query.
  void Publish() const;

  /// Fixed-width per-phase table (ms, calls), one line per non-empty phase.
  std::string ToString() const;
  /// {"descent": {"ms": ..., "calls": ...}, ...} for non-empty phases.
  void AppendJson(JsonWriter* writer) const;

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr size_t kMaxDepth = 8;

  double total_ms_[kNumPhases];
  uint64_t calls_[kNumPhases];
  Phase stack_[kMaxDepth];
  size_t depth_ = 0;
  /// Nesting beyond kMaxDepth: counted so Exit() stays balanced.
  size_t overflow_ = 0;
  Clock::time_point slice_start_;
};

/// RAII scope attributing its lifetime to `phase`. Null profiler = one
/// branch; RST_DISABLE_PROFILING compiles the whole thing away.
#ifdef RST_DISABLE_PROFILING
class PhaseTimer {
 public:
  PhaseTimer(PhaseProfiler*, Phase) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
};
#else
class PhaseTimer {
 public:
  PhaseTimer(PhaseProfiler* profiler, Phase phase) : profiler_(profiler) {
    if (profiler_ != nullptr) profiler_->Enter(phase);
  }
  ~PhaseTimer() {
    if (profiler_ != nullptr) profiler_->Exit();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  PhaseProfiler* profiler_;
};
#endif  // RST_DISABLE_PROFILING

}  // namespace rst::obs

#endif  // RST_OBS_PHASE_TIMER_H_
