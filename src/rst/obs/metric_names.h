#ifndef RST_OBS_METRIC_NAMES_H_
#define RST_OBS_METRIC_NAMES_H_

// Central registry of every metric, trace-span, and span-counter name in the
// tree (DESIGN.md §11.3). All name strings passed to rst::obs — counters,
// gauges, histograms, QueryTrace roots, TraceSpan labels, AddCount keys, and
// the Publish() prefix/suffix families — must come from this header; inline
// string literals at call sites are rejected by `tools/rst_lint.py`
// (rule `metric-name-literal`). Single-sourcing the names kills the
// typo'd-counter class of bug: a misspelled name is now a compile error, not
// a silently separate time series.
//
// Naming scheme (DESIGN.md §7): dot-separated `<subsystem>.<metric>`.
// Suffix constants (kSuffix*) start with '.' and are appended to a publish
// prefix, e.g. `prefix + kSuffixNodeReads` -> "rstknn.io.node_reads".

namespace rst::obs::names {

// --- exec (batch runner, slow-query log) ---
inline constexpr char kExecBatches[] = "exec.batches";
inline constexpr char kExecBatchQueries[] = "exec.batch.queries";
inline constexpr char kExecBatchMs[] = "exec.batch.ms";
inline constexpr char kExecWorkerBusyMs[] = "exec.worker.busy_ms";
inline constexpr char kExecBatchQueueWaitMs[] = "exec.batch.queue_wait_ms";
inline constexpr char kExecSlowQueries[] = "exec.slow_queries";

// --- rstknn query engine ---
inline constexpr char kRstknnQueries[] = "rstknn.queries";
inline constexpr char kRstknnAnswers[] = "rstknn.answers";
inline constexpr char kRstknnQueryMs[] = "rstknn.query.ms";

// --- iurtree builds and dynamic maintenance ---
inline constexpr char kIurtreeBuilds[] = "iurtree.builds";
inline constexpr char kIurtreeBuildNodes[] = "iurtree.build.nodes";
inline constexpr char kIurtreeBuildLeafNodes[] = "iurtree.build.leaf_nodes";
inline constexpr char kIurtreeBuildLastMs[] = "iurtree.build.last_ms";
inline constexpr char kIurtreeBuildLastNodeCount[] =
    "iurtree.build.last_node_count";
inline constexpr char kIurtreeBuildParallelMs[] = "iurtree.build.parallel_ms";
inline constexpr char kIurtreeFanout[] = "iurtree.fanout";
inline constexpr char kIurtreeInserts[] = "iurtree.inserts";
inline constexpr char kIurtreeDeletes[] = "iurtree.deletes";

// --- topk ---
inline constexpr char kTopkQueries[] = "topk.queries";
inline constexpr char kTopkPqPops[] = "topk.pq_pops";
inline constexpr char kTopkExpansions[] = "topk.expansions";
inline constexpr char kTopkQueryMs[] = "topk.query.ms";

// --- maxbrst / miur / joint_topk (2016 extension) ---
inline constexpr char kMaxbrstSolves[] = "maxbrst.solves";
inline constexpr char kMaxbrstSolveMs[] = "maxbrst.solve.ms";
inline constexpr char kMiurSolves[] = "miur.solves";
inline constexpr char kMiurUsersRefined[] = "miur.users_refined";
inline constexpr char kJointTopkRuns[] = "joint_topk.runs";
inline constexpr char kJointTopkScoredObjects[] = "joint_topk.scored_objects";
inline constexpr char kJointTopkBaselineRuns[] = "joint_topk.baseline.runs";

// --- sharded scatter-gather (rst::shard; DESIGN.md §15) ---
inline constexpr char kShardPruned[] = "rstknn.shard.pruned";
inline constexpr char kShardSearched[] = "rstknn.shard.searched";
inline constexpr char kShardReported[] = "rstknn.shard.reported";

// --- frozen flat-layout snapshot ---
inline constexpr char kFrozenFreezes[] = "frozen.freezes";
inline constexpr char kFrozenLoads[] = "frozen.loads";
inline constexpr char kFrozenFreezeLastMs[] = "frozen.freeze.last_ms";
inline constexpr char kFrozenLoadLastMs[] = "frozen.load.last_ms";

// --- per-phase latency attribution (obs/phase_timer.h; DESIGN.md §12) ---
// One histogram per phase; each completed profiled query records its
// per-phase self time as one sample, so Percentile() on these is a per-query
// latency distribution, not a per-scope one.
inline constexpr char kPhaseDescentMs[] = "rstknn.phase.descent.ms";
inline constexpr char kPhaseBoundsMs[] = "rstknn.phase.bounds.ms";
inline constexpr char kPhaseMergeMs[] = "rstknn.phase.merge.ms";
inline constexpr char kPhaseIoMs[] = "rstknn.phase.io.ms";
inline constexpr char kPhaseFinalizeMs[] = "rstknn.phase.finalize.ms";
inline constexpr char kPhaseProfiledQueries[] = "rstknn.phase.profiled_queries";

// --- runtime telemetry sampler (obs/runtime.h) ---
inline constexpr char kRuntimeRssBytes[] = "runtime.rss_bytes";
inline constexpr char kRuntimeMaxRssBytes[] = "runtime.max_rss_bytes";
inline constexpr char kRuntimeMinorFaults[] = "runtime.minor_faults";
inline constexpr char kRuntimeMajorFaults[] = "runtime.major_faults";
inline constexpr char kRuntimeCpuUserMs[] = "runtime.cpu_user_ms";
inline constexpr char kRuntimeCpuSysMs[] = "runtime.cpu_sys_ms";
inline constexpr char kRuntimeThreads[] = "runtime.threads";
inline constexpr char kRuntimeSamples[] = "runtime.samples";

// --- workload capture journal (obs/journal.h) ---
inline constexpr char kJournalRecords[] = "journal.records";
inline constexpr char kJournalSkipped[] = "journal.skipped";
inline constexpr char kJournalErrors[] = "journal.errors";

// --- Chrome trace-event export (obs/trace_event.h) ---
// Event names and categories; tracks are named per worker.
inline constexpr char kTraceEventRun[] = "run";
inline constexpr char kTraceEventQueueWait[] = "queue_wait";
inline constexpr char kTraceCatExec[] = "exec";
inline constexpr char kTraceCatSpan[] = "span";
inline constexpr char kTraceArgQuery[] = "query";
inline constexpr char kTraceArgQueueWaitMs[] = "queue_wait_ms";
inline constexpr char kTraceArgCalls[] = "calls";

// --- storage ---
inline constexpr char kPageStoreWrites[] = "storage.page_store.writes";
inline constexpr char kPageStorePagesWritten[] =
    "storage.page_store.pages_written";
inline constexpr char kPageStoreReads[] = "storage.page_store.reads";
inline constexpr char kPageStorePagesRead[] = "storage.page_store.pages_read";
inline constexpr char kPageStoreBytesRead[] = "storage.page_store.bytes_read";
inline constexpr char kBufferPoolHits[] = "storage.buffer_pool.hits";
inline constexpr char kBufferPoolMisses[] = "storage.buffer_pool.misses";
inline constexpr char kBufferPoolEvictions[] = "storage.buffer_pool.evictions";
inline constexpr char kBufferPoolHitRate[] = "storage.buffer_pool.hit_rate";
inline constexpr char kBufferPoolFillMs[] = "storage.buffer_pool.fill_ms";

// --- precompute baseline ---
inline constexpr char kBaselineBuilds[] = "baseline.builds";
inline constexpr char kBaselineBuildMs[] = "baseline.build.ms";
inline constexpr char kBaselineQueries[] = "baseline.queries";
inline constexpr char kBaselineQueryMs[] = "baseline.query.ms";

// --- Publish() prefixes (stat families expanded with the suffixes below) ---
inline constexpr char kRstknnPrefix[] = "rstknn";
inline constexpr char kBaselinePrefix[] = "baseline";
inline constexpr char kBaselineBuildIoPrefix[] = "baseline.build.io";
inline constexpr char kMaxbrstPrefix[] = "maxbrst";
inline constexpr char kMiurPrefix[] = "miur";
inline constexpr char kMiurObjectIoPrefix[] = "miur.object_io";
inline constexpr char kMiurUserIoPrefix[] = "miur.user_io";
inline constexpr char kJointTopkIoPrefix[] = "joint_topk.io";
inline constexpr char kJointTopkBaselineIoPrefix[] = "joint_topk.baseline.io";

// --- Publish() suffixes: IoStats ---
inline constexpr char kSuffixIo[] = ".io";
inline constexpr char kSuffixNodeReads[] = ".node_reads";
inline constexpr char kSuffixPayloadBlocks[] = ".payload_blocks";
inline constexpr char kSuffixPayloadBytes[] = ".payload_bytes";
inline constexpr char kSuffixCacheHits[] = ".cache_hits";

// --- Publish() suffixes: RstknnStats ---
inline constexpr char kSuffixEntriesCreated[] = ".entries_created";
inline constexpr char kSuffixExpansions[] = ".expansions";
inline constexpr char kSuffixPrunedEntries[] = ".pruned_entries";
inline constexpr char kSuffixReportedEntries[] = ".reported_entries";
inline constexpr char kSuffixBoundComputations[] = ".bound_computations";
inline constexpr char kSuffixProbes[] = ".probes";
inline constexpr char kSuffixPqPops[] = ".pq_pops";

// --- Publish() suffixes: MaxBrstStats ---
inline constexpr char kSuffixLocationsPruned[] = ".locations_pruned";
inline constexpr char kSuffixCombinationsEvaluated[] =
    ".combinations_evaluated";
inline constexpr char kSuffixUserEvaluations[] = ".user_evaluations";
inline constexpr char kSuffixEarlyTerminations[] = ".early_terminations";

// --- QueryTrace root labels (also SlowQueryRecord::label values) ---
inline constexpr char kTraceQuery[] = "query";
inline constexpr char kTraceTopk[] = "topk";
inline constexpr char kTraceRstknn[] = "rstknn";
inline constexpr char kTraceRstknnBatch[] = "rstknn.batch";
inline constexpr char kTraceMaxbrst[] = "maxbrst";

// --- TraceSpan labels ---
inline constexpr char kSpanIurtreeBuild[] = "iurtree.build";
inline constexpr char kSpanPack[] = "pack";
inline constexpr char kSpanFinalizeStorage[] = "finalize_storage";
inline constexpr char kSpanPayloadDecode[] = "payload.decode";
inline constexpr char kSpanTopkSearch[] = "topk.search";
inline constexpr char kSpanMaxbrstFilter[] = "maxbrst.filter";
inline constexpr char kSpanMaxbrstSelect[] = "maxbrst.select";
inline constexpr char kSpanMaxbrstEvaluate[] = "maxbrst.evaluate";
inline constexpr char kSpanFrozenFreeze[] = "frozen.freeze";
inline constexpr char kSpanFrozenLayout[] = "layout";
inline constexpr char kSpanFrozenPayloads[] = "payloads";
inline constexpr char kSpanBufferPoolFill[] = "buffer_pool.fill";
inline constexpr char kSpanStorageReadNode[] = "storage.read_node";
inline constexpr char kSpanSetup[] = "setup";
inline constexpr char kSpanExpand[] = "expand";
inline constexpr char kSpanPick[] = "pick";
inline constexpr char kSpanProbeGuaranteed[] = "probe.guaranteed";
inline constexpr char kSpanProbePotential[] = "probe.potential";
inline constexpr char kSpanContributions[] = "contributions";
inline constexpr char kSpanRstknnProbe[] = "rstknn.probe";
inline constexpr char kSpanRstknnContributionList[] =
    "rstknn.contribution_list";
inline constexpr char kSpanBaselineBuild[] = "baseline.build";
inline constexpr char kSpanBaselineScan[] = "baseline.scan";
inline constexpr char kSpanJointTopk[] = "joint_topk";

// --- TraceSpan::AddCount keys ---
inline constexpr char kCountPqPops[] = "pq_pops";
inline constexpr char kCountExpansions[] = "expansions";
inline constexpr char kCountBoundComputations[] = "bound_computations";
inline constexpr char kCountEntries[] = "entries";
inline constexpr char kCountObjects[] = "objects";
inline constexpr char kCountObjectsScanned[] = "objects_scanned";
inline constexpr char kCountLocationsPruned[] = "locations_pruned";
inline constexpr char kCountLocationsKept[] = "locations_kept";
inline constexpr char kCountCombinations[] = "combinations";
inline constexpr char kCountUsers[] = "users";

}  // namespace rst::obs::names

#endif  // RST_OBS_METRIC_NAMES_H_
