#ifndef RST_OBS_TRACE_H_
#define RST_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rst/obs/metric_names.h"

namespace rst::obs {

class JsonWriter;

/// One aggregated node of a query's span tree. Repeated spans with the same
/// name under the same parent merge into a single node (wall time and call
/// count accumulate), so hot per-item spans stay readable: a probe loop that
/// pops 10k queue entries shows as one `probe.pop ×10000` line, not 10k
/// lines.
struct Span {
  std::string name;
  double total_ms = 0.0;
  uint64_t calls = 0;
  /// Counter deltas attributed to this span via QueryTrace::AddCount.
  std::map<std::string, uint64_t> counts;
  std::vector<std::unique_ptr<Span>> children;  ///< first-entered order
};

/// Per-query span tree recorder. Single-threaded by design (one trace per
/// query); pass nullptr wherever a trace is accepted to disable tracing —
/// the RAII TraceSpan then compiles down to a pointer test.
class QueryTrace {
 public:
  /// `root_name` labels the implicit root span, which is open from
  /// construction until Finish().
  explicit QueryTrace(std::string_view root_name = names::kTraceQuery);

  /// Opens a child span of the innermost open span (merging by name).
  void Enter(std::string_view name);
  /// Closes the innermost open span (never the root).
  void Exit();
  /// Closes any spans left open and stamps the root's total time. Call
  /// before exporting (ToString/ToJson read whatever has been stamped).
  void Finish();

  /// Adds `n` to counter `key` of the innermost open span.
  void AddCount(std::string_view key, uint64_t n = 1);

  const Span& root() const { return *root_; }

  /// Indented human-readable span tree.
  std::string ToString() const;
  /// {"name":..., "ms":..., "calls":..., "counts":{...}, "children":[...]}.
  std::string ToJson() const;
  void AppendJson(JsonWriter* writer) const;

 private:
  using Clock = std::chrono::steady_clock;
  struct Frame {
    Span* span;
    Clock::time_point start;
  };

  std::unique_ptr<Span> root_;
  std::vector<Frame> stack_;
};

/// RAII scope for one span. A null trace makes construction and destruction
/// no-ops, so instrumented hot paths cost one branch when tracing is off.
class TraceSpan {
 public:
  TraceSpan(QueryTrace* trace, std::string_view name) : trace_(trace) {
    if (trace_ != nullptr) trace_->Enter(name);
  }
  ~TraceSpan() {
    if (trace_ != nullptr) trace_->Exit();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attributes `n` to counter `key` of this span (no-op when disabled).
  void AddCount(std::string_view key, uint64_t n = 1) const {
    if (trace_ != nullptr) trace_->AddCount(key, n);
  }

 private:
  QueryTrace* trace_;
};

}  // namespace rst::obs

#endif  // RST_OBS_TRACE_H_
