#include "rst/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "rst/obs/json.h"

namespace rst::obs {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

QueryTrace::QueryTrace(std::string_view root_name) {
  root_ = std::make_unique<Span>();
  root_->name = std::string(root_name);
  root_->calls = 1;
  stack_.push_back({root_.get(), Clock::now()});
}

void QueryTrace::Enter(std::string_view name) {
  if (stack_.empty()) {
    // Re-opened after Finish(): restart the root frame so late spans are
    // still recorded rather than dropped.
    stack_.push_back({root_.get(), Clock::now()});
  }
  Span* parent = stack_.back().span;
  Span* child = nullptr;
  for (const auto& existing : parent->children) {
    if (existing->name == name) {
      child = existing.get();
      break;
    }
  }
  if (child == nullptr) {
    parent->children.push_back(std::make_unique<Span>());
    child = parent->children.back().get();
    child->name = std::string(name);
  }
  stack_.push_back({child, Clock::now()});
}

void QueryTrace::Exit() {
  if (stack_.size() <= 1) return;  // the root closes via Finish()
  Frame frame = stack_.back();
  stack_.pop_back();
  frame.span->total_ms += ElapsedMs(frame.start, Clock::now());
  ++frame.span->calls;
}

void QueryTrace::Finish() {
  while (stack_.size() > 1) Exit();
  if (!stack_.empty()) {
    root_->total_ms += ElapsedMs(stack_.back().start, Clock::now());
    stack_.clear();
  }
}

void QueryTrace::AddCount(std::string_view key, uint64_t n) {
  Span* span = stack_.empty() ? root_.get() : stack_.back().span;
  span->counts[std::string(key)] += n;
}

namespace {

void AppendSpanText(const Span& span, size_t depth, std::string* out) {
  char line[160];
  std::snprintf(line, sizeof(line), "%*s%-*s %10.3f ms  x%llu",
                static_cast<int>(2 * depth), "",
                static_cast<int>(32 - std::min<size_t>(2 * depth, 30)),
                span.name.c_str(), span.total_ms,
                static_cast<unsigned long long>(span.calls));
  out->append(line);
  if (!span.counts.empty()) {
    out->append("  {");
    bool first = true;
    for (const auto& [key, value] : span.counts) {
      if (!first) out->append(", ");
      first = false;
      out->append(key);
      out->append("=");
      out->append(std::to_string(value));
    }
    out->append("}");
  }
  out->push_back('\n');
  for (const auto& child : span.children) {
    AppendSpanText(*child, depth + 1, out);
  }
}

void AppendSpanJson(const Span& span, JsonWriter* w) {
  w->BeginObject();
  w->Key("name");
  w->String(span.name);
  w->Key("ms");
  w->Double(span.total_ms);
  w->Key("calls");
  w->Uint(span.calls);
  if (!span.counts.empty()) {
    w->Key("counts");
    w->BeginObject();
    for (const auto& [key, value] : span.counts) {
      w->Key(key);
      w->Uint(value);
    }
    w->EndObject();
  }
  if (!span.children.empty()) {
    w->Key("children");
    w->BeginArray();
    for (const auto& child : span.children) AppendSpanJson(*child, w);
    w->EndArray();
  }
  w->EndObject();
}

}  // namespace

std::string QueryTrace::ToString() const {
  std::string out;
  AppendSpanText(*root_, 0, &out);
  return out;
}

void QueryTrace::AppendJson(JsonWriter* writer) const {
  AppendSpanJson(*root_, writer);
}

std::string QueryTrace::ToJson() const {
  JsonWriter w;
  AppendJson(&w);
  return w.TakeString();
}

}  // namespace rst::obs
