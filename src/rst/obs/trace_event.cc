#include "rst/obs/trace_event.h"

#include <utility>

#include "rst/common/file_util.h"
#include "rst/obs/json.h"
#include "rst/obs/metric_names.h"
#include "rst/obs/trace.h"

namespace rst::obs {

TraceEventWriter::TraceEventWriter(size_t capacity, uint64_t sample_every)
    : capacity_(capacity),
      sample_every_(sample_every == 0 ? 1 : sample_every),
      epoch_(std::chrono::steady_clock::now()) {}

double TraceEventWriter::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

bool TraceEventWriter::ShouldSample() {
  MutexLock lock(&mu_);
  return sample_counter_++ % sample_every_ == 0;
}

bool TraceEventWriter::Append(Event event) {
  MutexLock lock(&mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  events_.push_back(std::move(event));
  return true;
}

void TraceEventWriter::AddComplete(std::string_view name, const char* cat,
                                   uint32_t tid, double ts_us, double dur_us,
                                   NumArg arg0, NumArg arg1) {
  Event event;
  event.name = std::string(name);
  event.cat = cat;
  event.tid = tid;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.args[0] = arg0;
  event.args[1] = arg1;
  Append(std::move(event));
}

void TraceEventWriter::AddThreadName(uint32_t tid, std::string_view name) {
  Event event;
  event.name = std::string(name);
  event.cat = nullptr;
  event.tid = tid;
  Append(std::move(event));
}

void TraceEventWriter::AppendSpanLocked(const Span& span, uint32_t tid,
                                        double ts_us) {
  // Capacity is checked inline (the lock is already held) so a large tree
  // stops cleanly at the cap instead of emitting a partial child before a
  // full parent.
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  Event event;
  event.name = span.name;
  event.cat = names::kTraceCatSpan;
  event.tid = tid;
  event.ts_us = ts_us;
  event.dur_us = span.total_ms * 1000.0;
  event.calls = span.calls;
  events_.push_back(std::move(event));
  // Children laid out sequentially from the parent's start; their summed
  // durations never exceed the parent's (they are nested sub-intervals of
  // its wall time), so the slices nest.
  double child_ts = ts_us;
  for (const auto& child : span.children) {
    AppendSpanLocked(*child, tid, child_ts);
    child_ts += child->total_ms * 1000.0;
  }
}

void TraceEventWriter::AddSpanTree(const Span& root, uint32_t tid,
                                   double ts_us) {
  MutexLock lock(&mu_);
  AppendSpanLocked(root, tid, ts_us);
}

size_t TraceEventWriter::size() const {
  MutexLock lock(&mu_);
  return events_.size();
}

uint64_t TraceEventWriter::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

void TraceEventWriter::AppendJson(JsonWriter* writer) const {
  MutexLock lock(&mu_);
  writer->BeginObject();
  writer->Key("displayTimeUnit");
  writer->String("ms");
  writer->Key("dropped");
  writer->Uint(dropped_);
  writer->Key("traceEvents");
  writer->BeginArray();
  for (const Event& event : events_) {
    writer->BeginObject();
    writer->Key("name");
    // Metadata events carry the track name in args; their event name is the
    // fixed metadata kind "thread_name" Perfetto keys on.
    writer->String(event.cat == nullptr ? std::string_view("thread_name")
                                        : std::string_view(event.name));
    writer->Key("pid");
    writer->Uint(1);
    writer->Key("tid");
    writer->Uint(event.tid);
    if (event.cat == nullptr) {
      writer->Key("ph");
      writer->String("M");
      writer->Key("cat");
      writer->String("__metadata");
      writer->Key("args");
      writer->BeginObject();
      writer->Key("name");
      writer->String(event.name);
      writer->EndObject();
    } else {
      writer->Key("ph");
      writer->String("X");
      writer->Key("cat");
      writer->String(event.cat);
      writer->Key("ts");
      writer->Double(event.ts_us);
      writer->Key("dur");
      writer->Double(event.dur_us);
      const bool has_args = event.calls > 0 ||
                            event.args[0].key != nullptr ||
                            event.args[1].key != nullptr;
      if (has_args) {
        writer->Key("args");
        writer->BeginObject();
        if (event.calls > 0) {
          writer->Key(names::kTraceArgCalls);
          writer->Uint(event.calls);
        }
        for (const NumArg& arg : event.args) {
          if (arg.key == nullptr) continue;
          writer->Key(arg.key);
          writer->Double(arg.value);
        }
        writer->EndObject();
      }
    }
    writer->EndObject();
  }
  writer->EndArray();
  writer->EndObject();
}

std::string TraceEventWriter::ToJson() const {
  JsonWriter writer;
  AppendJson(&writer);
  return writer.TakeString();
}

Status TraceEventWriter::WriteFile(const std::string& path) const {
  return WriteStringToFileAtomic(path, ToJson());
}

}  // namespace rst::obs
