#include "rst/obs/heatmap.h"

#include <algorithm>
#include <sstream>

#include "rst/obs/json.h"

namespace rst::obs {

HeatmapNodeCounters& HeatmapNodeCounters::operator+=(
    const HeatmapNodeCounters& other) {
  visits += other.visits;
  pruned += other.pruned;
  expanded += other.expanded;
  reported_hit += other.reported_hit;
  reported_miss += other.reported_miss;
  objects_pruned += other.objects_pruned;
  objects_reported += other.objects_reported;
  lower_bound_fires += other.lower_bound_fires;
  upper_bound_fires += other.upper_bound_fires;
  exact_fires += other.exact_fires;
  return *this;
}

namespace {

void Tally(HeatmapNodeCounters* c, ExplainVerdict verdict, ExplainBound bound,
           uint64_t decided_objects) {
  ++c->visits;
  switch (verdict) {
    case ExplainVerdict::kPrune:
      ++c->pruned;
      c->objects_pruned += decided_objects;
      break;
    case ExplainVerdict::kExpand:
      ++c->expanded;
      break;
    case ExplainVerdict::kReportHit:
      ++c->reported_hit;
      c->objects_reported += decided_objects;
      break;
    case ExplainVerdict::kReportMiss:
      ++c->reported_miss;
      c->objects_pruned += decided_objects;
      break;
  }
  switch (bound) {
    case ExplainBound::kNone:
      break;
    case ExplainBound::kLowerBound:
      ++c->lower_bound_fires;
      break;
    case ExplainBound::kUpperBound:
      ++c->upper_bound_fires;
      break;
    case ExplainBound::kExact:
      ++c->exact_fires;
      break;
  }
}

}  // namespace

void HeatmapRecorder::Record(uint64_t node_id, uint32_t level,
                             ExplainVerdict verdict, ExplainBound bound,
                             uint64_t decided_objects) {
  Tally(&totals_, verdict, bound, decided_objects);
  HeatmapNodeCounters& node = nodes_[node_id];
  node.level = level;
  Tally(&node, verdict, bound, decided_objects);
}

void HeatmapRecorder::Merge(const HeatmapRecorder& other) {
  queries_ += other.queries_;
  totals_ += other.totals_;
  for (const auto& [id, counters] : other.nodes_) {
    HeatmapNodeCounters& node = nodes_[id];
    node.level = counters.level;
    node += counters;
  }
}

void HeatmapRecorder::Reset() {
  queries_ = 0;
  totals_ = HeatmapNodeCounters{};
  nodes_.clear();
}

std::vector<HeatmapNodeCounters> HeatmapRecorder::LevelSummaries() const {
  std::vector<HeatmapNodeCounters> levels;
  for (const auto& [id, counters] : nodes_) {
    if (counters.level >= levels.size()) {
      size_t old_size = levels.size();
      levels.resize(counters.level + 1);
      for (size_t i = old_size; i < levels.size(); ++i) {
        levels[i].level = static_cast<uint32_t>(i);
      }
    }
    const uint32_t level = counters.level;
    const HeatmapNodeCounters saved = levels[level];
    levels[level] += counters;
    levels[level].level = saved.level;
  }
  levels.erase(std::remove_if(levels.begin(), levels.end(),
                              [](const HeatmapNodeCounters& c) {
                                return c.visits == 0;
                              }),
               levels.end());
  return levels;
}

Status HeatmapRecorder::CheckReconciles(uint64_t expansions,
                                        uint64_t pruned_entries,
                                        uint64_t reported_entries) const {
  auto mismatch = [](std::string_view what, uint64_t got, uint64_t want) {
    std::ostringstream os;
    os << "heatmap does not reconcile with RstknnStats: " << what
       << ": heatmap=" << got << " stats=" << want;
    return Status::InvalidArgument(os.str());
  };
  if (totals_.pruned + totals_.reported_miss != pruned_entries) {
    return mismatch("prune + report_miss vs pruned_entries",
                    totals_.pruned + totals_.reported_miss, pruned_entries);
  }
  if (totals_.reported_hit != reported_entries) {
    return mismatch("report_hit vs reported_entries", totals_.reported_hit,
                    reported_entries);
  }
  if (totals_.expanded != expansions) {
    return mismatch("expand vs expansions", totals_.expanded, expansions);
  }
  // The per-node map must agree with the running totals (catches a bad
  // Merge): sum the map and compare the decision counters.
  HeatmapNodeCounters sum;
  for (const auto& [id, counters] : nodes_) sum += counters;
  if (sum.pruned != totals_.pruned || sum.expanded != totals_.expanded ||
      sum.reported_hit != totals_.reported_hit ||
      sum.reported_miss != totals_.reported_miss) {
    return mismatch("per-node sum vs totals",
                    sum.pruned + sum.expanded + sum.reported_hit +
                        sum.reported_miss,
                    decisions());
  }
  return Status::Ok();
}

namespace {

void AppendCounterFields(JsonWriter* w, const HeatmapNodeCounters& c) {
  w->Key("visits");
  w->Uint(c.visits);
  w->Key("pruned");
  w->Uint(c.pruned);
  w->Key("expanded");
  w->Uint(c.expanded);
  w->Key("reported_hit");
  w->Uint(c.reported_hit);
  w->Key("reported_miss");
  w->Uint(c.reported_miss);
  w->Key("objects_pruned");
  w->Uint(c.objects_pruned);
  w->Key("objects_reported");
  w->Uint(c.objects_reported);
  w->Key("lower_bound_fires");
  w->Uint(c.lower_bound_fires);
  w->Key("upper_bound_fires");
  w->Uint(c.upper_bound_fires);
  w->Key("exact_fires");
  w->Uint(c.exact_fires);
}

}  // namespace

void HeatmapRecorder::AppendJson(JsonWriter* writer, size_t max_nodes) const {
  writer->BeginObject();
  writer->Key("queries");
  writer->Uint(queries_);
  writer->Key("decisions");
  writer->Uint(decisions());
  writer->Key("totals");
  writer->BeginObject();
  AppendCounterFields(writer, totals_);
  writer->EndObject();
  writer->Key("levels");
  writer->BeginArray();
  for (const HeatmapNodeCounters& level : LevelSummaries()) {
    writer->BeginObject();
    writer->Key("level");
    writer->Uint(level.level);
    AppendCounterFields(writer, level);
    writer->EndObject();
  }
  writer->EndArray();

  std::vector<std::pair<uint64_t, const HeatmapNodeCounters*>> ordered;
  ordered.reserve(nodes_.size());
  for (const auto& [id, counters] : nodes_) ordered.emplace_back(id, &counters);
  if (max_nodes > 0 && ordered.size() > max_nodes) {
    // Hottest first for truncation, then back to id order for stable output.
    std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
      if (a.second->visits != b.second->visits) {
        return a.second->visits > b.second->visits;
      }
      return a.first < b.first;
    });
    ordered.resize(max_nodes);
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  writer->Key("nodes");
  writer->BeginArray();
  for (const auto& [id, counters] : ordered) {
    writer->BeginObject();
    writer->Key("id");
    writer->Uint(id);
    writer->Key("level");
    writer->Uint(counters->level);
    AppendCounterFields(writer, *counters);
    writer->EndObject();
  }
  writer->EndArray();
  if (max_nodes > 0 && nodes_.size() > max_nodes) {
    writer->Key("nodes_dropped");
    writer->Uint(nodes_.size() - max_nodes);
  }
  writer->EndObject();
}

std::string HeatmapRecorder::ToJson(size_t max_nodes) const {
  JsonWriter writer;
  AppendJson(&writer, max_nodes);
  return writer.TakeString();
}

std::string HeatmapRecorder::ToString() const {
  std::ostringstream os;
  os << "heatmap: " << queries_ << " queries, " << decisions()
     << " decisions over " << nodes_.size() << " nodes — prune="
     << totals_.pruned << " expand=" << totals_.expanded
     << " report_hit=" << totals_.reported_hit
     << " report_miss=" << totals_.reported_miss << "\n";
  for (const HeatmapNodeCounters& level : LevelSummaries()) {
    const uint64_t decided = level.pruned + level.reported_miss;
    os << "  level " << level.level << ": visits=" << level.visits
       << " prune=" << level.pruned << " expand=" << level.expanded
       << " report_hit=" << level.reported_hit
       << " report_miss=" << level.reported_miss << " obj_pruned="
       << level.objects_pruned << " obj_reported=" << level.objects_reported;
    if (level.visits > 0) {
      os << " prune_rate=" << static_cast<double>(decided) /
                                  static_cast<double>(level.visits);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rst::obs
