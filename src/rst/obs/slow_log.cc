#include "rst/obs/slow_log.h"

#include <algorithm>

#include "rst/obs/journal.h"
#include "rst/obs/json.h"
#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"

namespace rst::obs {

SlowQueryLog::SlowQueryLog(double threshold_ms, size_t capacity)
    : threshold_ms_(threshold_ms), slots_(std::max<size_t>(capacity, 1)) {}

SlowQueryLog::~SlowQueryLog() = default;

bool SlowQueryLog::Insert(SlowQueryRecord record) {
  static const Counter slow_queries =
      MetricRegistry::Global().GetCounter(names::kExecSlowQueries);
  slow_queries.Increment();
  // rst-atomics: captured_ is a statistics counter and the seq_ ticket only
  // needs global uniqueness for slot assignment and sort order — neither
  // publishes data, so both increments stay relaxed.
  captured_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t ticket = seq_.fetch_add(1, std::memory_order_relaxed);
  record.seq = ticket;
  Slot& slot = slots_[ticket % slots_.size()];
  // Claim the slot. A kWriting predecessor means the ring wrapped a full
  // capacity while that writer was still filling the slot — extremely slow
  // consumer relative to capacity. Drop rather than block or tear: the state
  // is left kWriting and the in-flight writer's release-store completes it.
  // rst-atomics: acquire on the claim pairs with the release publish below,
  // so a writer that observes kReady/kEmpty also observes the previous
  // occupant's completed payload before overwriting it.
  const uint32_t prev = slot.state.exchange(kWriting, std::memory_order_acquire);
  if (prev == kWriting) {
    // rst-atomics: statistics counter, relaxed like captured_.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slot.record = std::move(record);
  // rst-atomics: release publishes the filled record; readers (Snapshot) and
  // later claimants synchronize via their acquire loads of state.
  slot.state.store(kReady, std::memory_order_release);
  return true;
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  std::vector<SlowQueryRecord> records;
  records.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    // rst-atomics: acquire pairs with Insert's release so the record read
    // below sees the full payload (Snapshot is additionally quiesced-only).
    if (slot.state.load(std::memory_order_acquire) == kReady) {
      records.push_back(slot.record);
    }
  }
  std::sort(records.begin(), records.end(),
            [](const SlowQueryRecord& a, const SlowQueryRecord& b) {
              return a.seq < b.seq;
            });
  return records;
}

void SlowQueryLog::AppendJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("provenance");
  writer->BeginObject();
  AppendProvenanceJson(writer);
  writer->EndObject();
  writer->Key("threshold_ms");
  writer->Double(threshold_ms_);
  writer->Key("capacity");
  writer->Uint(slots_.size());
  writer->Key("captured");
  writer->Uint(captured());
  writer->Key("dropped");
  writer->Uint(dropped());
  writer->Key("records");
  writer->BeginArray();
  for (const SlowQueryRecord& record : Snapshot()) {
    writer->BeginObject();
    writer->Key("seq");
    writer->Uint(record.seq);
    writer->Key("query_index");
    writer->Uint(record.query_index);
    writer->Key("label");
    writer->String(record.label);
    writer->Key("elapsed_ms");
    writer->Double(record.elapsed_ms);
    writer->Key("answers");
    writer->Uint(record.answers);
    if (!record.trace_json.empty()) {
      writer->Key("trace");
      writer->RawValue(record.trace_json);
    }
    if (!record.explain_json.empty()) {
      writer->Key("explain");
      writer->RawValue(record.explain_json);
    }
    writer->EndObject();
  }
  writer->EndArray();
  writer->EndObject();
}

std::string SlowQueryLog::ToJson() const {
  JsonWriter writer;
  AppendJson(&writer);
  return writer.TakeString();
}

}  // namespace rst::obs
