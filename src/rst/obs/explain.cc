#include "rst/obs/explain.h"

#include <sstream>

#include "rst/obs/json.h"

namespace rst::obs {

std::string_view ExplainVerdictName(ExplainVerdict verdict) {
  switch (verdict) {
    case ExplainVerdict::kPrune:
      return "prune";
    case ExplainVerdict::kExpand:
      return "expand";
    case ExplainVerdict::kReportHit:
      return "report_hit";
    case ExplainVerdict::kReportMiss:
      return "report_miss";
  }
  return "unknown";
}

std::string_view ExplainBoundName(ExplainBound bound) {
  switch (bound) {
    case ExplainBound::kNone:
      return "none";
    case ExplainBound::kLowerBound:
      return "lower";
    case ExplainBound::kUpperBound:
      return "upper";
    case ExplainBound::kExact:
      return "exact";
  }
  return "unknown";
}

namespace {

void Tally(ExplainLevelSummary* summary, const ExplainDecision& decision) {
  switch (decision.verdict) {
    case ExplainVerdict::kPrune:
      ++summary->pruned;
      summary->objects_pruned += decision.subtree_count;
      break;
    case ExplainVerdict::kExpand:
      ++summary->expanded;
      break;
    case ExplainVerdict::kReportHit:
      ++summary->reported_hit;
      summary->objects_reported += decision.subtree_count;
      break;
    case ExplainVerdict::kReportMiss:
      ++summary->reported_miss;
      summary->objects_pruned += decision.subtree_count;
      break;
  }
}

}  // namespace

void ExplainRecorder::Record(const ExplainDecision& decision) {
  Tally(&totals_, decision);
  if (decision.level >= levels_.size()) {
    size_t old_size = levels_.size();
    levels_.resize(decision.level + 1);
    for (size_t i = old_size; i < levels_.size(); ++i) {
      levels_[i].level = static_cast<uint32_t>(i);
    }
  }
  Tally(&levels_[decision.level], decision);
  if (log_.size() < max_decisions_) {
    log_.push_back(decision);
  } else if (max_decisions_ > 0) {
    ++log_dropped_;
  }
}

void ExplainRecorder::Reset() {
  algorithm_.clear();
  totals_ = ExplainLevelSummary{};
  levels_.clear();
  log_.clear();
  log_dropped_ = 0;
}

Status ExplainRecorder::CheckReconciles(uint64_t expansions,
                                        uint64_t pruned_entries,
                                        uint64_t reported_entries) const {
  auto mismatch = [](std::string_view what, uint64_t got, uint64_t want) {
    std::ostringstream os;
    os << "explain does not reconcile with RstknnStats: " << what << ": explain="
       << got << " stats=" << want;
    return Status::InvalidArgument(os.str());
  };
  if (totals_.pruned + totals_.reported_miss != pruned_entries) {
    return mismatch("prune + report_miss vs pruned_entries",
                    totals_.pruned + totals_.reported_miss, pruned_entries);
  }
  if (totals_.reported_hit != reported_entries) {
    return mismatch("report_hit vs reported_entries", totals_.reported_hit,
                    reported_entries);
  }
  if (totals_.expanded != expansions) {
    return mismatch("expand vs expansions", totals_.expanded, expansions);
  }
  return Status::Ok();
}

std::string ExplainRecorder::ToString() const {
  std::ostringstream os;
  os << "explain";
  if (!algorithm_.empty()) os << " (" << algorithm_ << ")";
  os << ": " << decisions() << " decisions — prune=" << totals_.pruned
     << " expand=" << totals_.expanded << " report_hit=" << totals_.reported_hit
     << " report_miss=" << totals_.reported_miss << "\n";
  os << "  objects: pruned=" << totals_.objects_pruned
     << " reported=" << totals_.objects_reported << "\n";
  for (const ExplainLevelSummary& level : levels_) {
    if (level.decisions() == 0) continue;
    os << "  level " << level.level << ": prune=" << level.pruned
       << " expand=" << level.expanded << " report_hit=" << level.reported_hit
       << " report_miss=" << level.reported_miss
       << " obj_pruned=" << level.objects_pruned
       << " obj_reported=" << level.objects_reported << "\n";
  }
  if (!log_.empty()) {
    os << "  log (" << log_.size() << " decisions";
    if (log_dropped_ > 0) os << ", " << log_dropped_ << " dropped";
    os << "):\n";
    for (const ExplainDecision& d : log_) {
      os << "    node " << d.node_id << " L" << d.level << " "
         << ExplainVerdictName(d.verdict) << "/" << ExplainBoundName(d.bound)
         << " q=[" << d.q_min << "," << d.q_max << "] count=" << d.subtree_count
         << "\n";
    }
  } else if (log_dropped_ > 0) {
    os << "  log: " << log_dropped_ << " decisions dropped (cap "
       << max_decisions_ << ")\n";
  }
  return os.str();
}

namespace {

void AppendSummaryFields(JsonWriter* w, const ExplainLevelSummary& s) {
  w->Key("prune");
  w->Uint(s.pruned);
  w->Key("expand");
  w->Uint(s.expanded);
  w->Key("report_hit");
  w->Uint(s.reported_hit);
  w->Key("report_miss");
  w->Uint(s.reported_miss);
  w->Key("objects_pruned");
  w->Uint(s.objects_pruned);
  w->Key("objects_reported");
  w->Uint(s.objects_reported);
}

}  // namespace

void ExplainRecorder::AppendJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("algorithm");
  writer->String(algorithm_);
  writer->Key("decisions");
  writer->Uint(decisions());
  writer->Key("totals");
  writer->BeginObject();
  AppendSummaryFields(writer, totals_);
  writer->EndObject();
  writer->Key("levels");
  writer->BeginArray();
  for (const ExplainLevelSummary& level : levels_) {
    if (level.decisions() == 0) continue;
    writer->BeginObject();
    writer->Key("level");
    writer->Uint(level.level);
    AppendSummaryFields(writer, level);
    writer->EndObject();
  }
  writer->EndArray();
  if (max_decisions_ > 0) {
    writer->Key("log");
    writer->BeginArray();
    for (const ExplainDecision& d : log_) {
      writer->BeginObject();
      writer->Key("node");
      writer->Uint(d.node_id);
      writer->Key("level");
      writer->Uint(d.level);
      writer->Key("verdict");
      writer->String(ExplainVerdictName(d.verdict));
      writer->Key("bound");
      writer->String(ExplainBoundName(d.bound));
      writer->Key("q_min");
      writer->Double(d.q_min);
      writer->Key("q_max");
      writer->Double(d.q_max);
      writer->Key("count");
      writer->Uint(d.subtree_count);
      writer->EndObject();
    }
    writer->EndArray();
    writer->Key("log_dropped");
    writer->Uint(log_dropped_);
  }
  writer->EndObject();
}

std::string ExplainRecorder::ToJson() const {
  JsonWriter writer;
  AppendJson(&writer);
  return writer.TakeString();
}

}  // namespace rst::obs
