#include "rst/data/csv.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "rst/common/file_util.h"

namespace rst {

namespace {

Status ParsePoint(const std::string& xs, const std::string& ys, Point* p) {
  char* end = nullptr;
  p->x = std::strtod(xs.c_str(), &end);
  if (end == xs.c_str()) return Status::Corruption("bad x: " + xs);
  p->y = std::strtod(ys.c_str(), &end);
  if (end == ys.c_str()) return Status::Corruption("bad y: " + ys);
  return Status::Ok();
}

/// Non-throwing uint32 parse. std::stoul would throw on garbage or overflow
/// — unacceptable in a parser whose contract is "any bytes in, Status out"
/// (found by fuzzing the id-encoded loader).
Status ParseUint32(const std::string& s, uint32_t* out) {
  if (s.empty()) return Status::Corruption("empty number");
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE ||
      v > std::numeric_limits<uint32_t>::max()) {
    return Status::Corruption("bad number: " + s);
  }
  *out = static_cast<uint32_t>(v);
  return Status::Ok();
}

/// Calls `fn(line_no, line)` for every non-empty, non-comment line. `fn`
/// returns a Status; the first error stops the walk.
template <typename Fn>
Status ForEachLine(std::string_view text, Fn fn) {
  size_t line_no = 0;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    ++line_no;
    std::string_view line = text.substr(begin, end - begin);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty() && line[0] != '#') {
      const Status s = fn(line_no, line);
      if (!s.ok()) return s;
    }
    if (end == text.size()) break;
    begin = end + 1;
  }
  return Status::Ok();
}

}  // namespace

Result<Dataset> ParseDatasetTsv(std::string_view text, Vocabulary* vocab,
                                const WeightingOptions& weighting) {
  Dataset dataset;
  const Status status =
      ForEachLine(text, [&](size_t line_no, std::string_view line) {
        const size_t tab1 = line.find('\t');
        const size_t tab2 = tab1 == std::string_view::npos
                                ? std::string_view::npos
                                : line.find('\t', tab1 + 1);
        if (tab2 == std::string_view::npos) {
          return Status::Corruption("line " + std::to_string(line_no) +
                                    ": expected 'x<TAB>y<TAB>text'");
        }
        Point p;
        Status s =
            ParsePoint(std::string(line.substr(0, tab1)),
                       std::string(line.substr(tab1 + 1, tab2 - tab1 - 1)),
                       &p);
        if (!s.ok()) return s;
        const auto tokens =
            vocab->TokenizeAndAdd(std::string(line.substr(tab2 + 1)));
        dataset.Add(p, RawDocument::FromTokens(tokens));
        return Status::Ok();
      });
  if (!status.ok()) return status;
  dataset.Finalize(weighting);
  return dataset;
}

Result<Dataset> LoadDatasetTsv(const std::string& path, Vocabulary* vocab,
                               const WeightingOptions& weighting) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return ParseDatasetTsv(text.value(), vocab, weighting);
}

Status SaveDatasetIds(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  for (const StObject& obj : dataset.objects()) {
    out << obj.loc.x << ',' << obj.loc.y << ',';
    bool first = true;
    for (const auto& [term, count] : obj.raw.term_counts) {
      if (!first) out << ' ';
      out << term << ':' << count;
      first = false;
    }
    out << '\n';
  }
  return out.good() ? Status::Ok() : Status::Internal("write failed");
}

Result<Dataset> ParseDatasetIds(std::string_view text,
                                const WeightingOptions& weighting) {
  Dataset dataset;
  const Status status =
      ForEachLine(text, [&](size_t line_no, std::string_view line) {
        const size_t c1 = line.find(',');
        const size_t c2 = c1 == std::string_view::npos
                              ? std::string_view::npos
                              : line.find(',', c1 + 1);
        if (c2 == std::string_view::npos) {
          return Status::Corruption("line " + std::to_string(line_no) +
                                    ": expected 'x,y,terms'");
        }
        Point p;
        Status s =
            ParsePoint(std::string(line.substr(0, c1)),
                       std::string(line.substr(c1 + 1, c2 - c1 - 1)), &p);
        if (!s.ok()) return s;
        RawDocument doc;
        std::istringstream terms{std::string(line.substr(c2 + 1))};
        std::string tok;
        while (terms >> tok) {
          const size_t colon = tok.find(':');
          if (colon == std::string::npos) {
            return Status::Corruption("line " + std::to_string(line_no) +
                                      ": expected term:count, got " + tok);
          }
          uint32_t term = 0;
          uint32_t count = 0;
          s = ParseUint32(tok.substr(0, colon), &term);
          if (s.ok()) s = ParseUint32(tok.substr(colon + 1), &count);
          if (!s.ok()) {
            return Status::Corruption("line " + std::to_string(line_no) +
                                      ": " + s.message());
          }
          // Term ids index dense per-corpus arrays (doc_freq_ etc.); an
          // adversarial id like 4294967295 would make corpus finalization
          // allocate O(max id) memory. Legitimate files written by
          // SaveDatasetIds use dense vocabulary ids, far below this cap.
          constexpr uint32_t kMaxTermId = 1u << 24;
          if (term > kMaxTermId) {
            return Status::Corruption("line " + std::to_string(line_no) +
                                      ": term id " + std::to_string(term) +
                                      " exceeds sanity cap");
          }
          doc.term_counts.push_back({static_cast<TermId>(term), count});
        }
        std::sort(doc.term_counts.begin(), doc.term_counts.end());
        dataset.Add(p, std::move(doc));
        return Status::Ok();
      });
  if (!status.ok()) return status;
  dataset.Finalize(weighting);
  return dataset;
}

Result<Dataset> LoadDatasetIds(const std::string& path,
                               const WeightingOptions& weighting) {
  Result<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return ParseDatasetIds(text.value(), weighting);
}

Status SaveUsersIds(const std::vector<StUser>& users, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  for (const StUser& u : users) {
    out << u.loc.x << ',' << u.loc.y << ',';
    bool first = true;
    for (const TermWeight& e : u.keywords.entries()) {
      if (!first) out << ' ';
      out << e.term;
      first = false;
    }
    out << '\n';
  }
  return out.good() ? Status::Ok() : Status::Internal("write failed");
}

Result<std::vector<StUser>> LoadUsersIds(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<StUser> users;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const size_t c1 = line.find(',');
    const size_t c2 = c1 == std::string::npos ? std::string::npos
                                              : line.find(',', c1 + 1);
    if (c2 == std::string::npos) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": expected 'x,y,terms'");
    }
    StUser user;
    user.id = static_cast<uint32_t>(users.size());
    Status s = ParsePoint(line.substr(0, c1), line.substr(c1 + 1, c2 - c1 - 1),
                          &user.loc);
    if (!s.ok()) return s;
    std::istringstream terms(line.substr(c2 + 1));
    std::vector<TermId> ids;
    std::string tok;
    while (terms >> tok) {
      uint32_t id = 0;
      s = ParseUint32(tok, &id);
      if (!s.ok()) {
        return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                  s.message());
      }
      ids.push_back(static_cast<TermId>(id));
    }
    user.keywords = TermVector::FromTerms(ids);
    users.push_back(std::move(user));
  }
  return users;
}

}  // namespace rst
