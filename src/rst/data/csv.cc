#include "rst/data/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rst {

namespace {

Status ParsePoint(const std::string& xs, const std::string& ys, Point* p) {
  char* end = nullptr;
  p->x = std::strtod(xs.c_str(), &end);
  if (end == xs.c_str()) return Status::Corruption("bad x: " + xs);
  p->y = std::strtod(ys.c_str(), &end);
  if (end == ys.c_str()) return Status::Corruption("bad y: " + ys);
  return Status::Ok();
}

}  // namespace

Result<Dataset> LoadDatasetTsv(const std::string& path, Vocabulary* vocab,
                               const WeightingOptions& weighting) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  Dataset dataset;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const size_t tab1 = line.find('\t');
    const size_t tab2 = tab1 == std::string::npos ? std::string::npos
                                                  : line.find('\t', tab1 + 1);
    if (tab2 == std::string::npos) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": expected 'x<TAB>y<TAB>text'");
    }
    Point p;
    Status s = ParsePoint(line.substr(0, tab1),
                          line.substr(tab1 + 1, tab2 - tab1 - 1), &p);
    if (!s.ok()) return s;
    const auto tokens = vocab->TokenizeAndAdd(line.substr(tab2 + 1));
    dataset.Add(p, RawDocument::FromTokens(tokens));
  }
  dataset.Finalize(weighting);
  return dataset;
}

Status SaveDatasetIds(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  for (const StObject& obj : dataset.objects()) {
    out << obj.loc.x << ',' << obj.loc.y << ',';
    bool first = true;
    for (const auto& [term, count] : obj.raw.term_counts) {
      if (!first) out << ' ';
      out << term << ':' << count;
      first = false;
    }
    out << '\n';
  }
  return out.good() ? Status::Ok() : Status::Internal("write failed");
}

Result<Dataset> LoadDatasetIds(const std::string& path,
                               const WeightingOptions& weighting) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  Dataset dataset;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const size_t c1 = line.find(',');
    const size_t c2 = c1 == std::string::npos ? std::string::npos
                                              : line.find(',', c1 + 1);
    if (c2 == std::string::npos) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": expected 'x,y,terms'");
    }
    Point p;
    Status s =
        ParsePoint(line.substr(0, c1), line.substr(c1 + 1, c2 - c1 - 1), &p);
    if (!s.ok()) return s;
    RawDocument doc;
    std::istringstream terms(line.substr(c2 + 1));
    std::string tok;
    while (terms >> tok) {
      const size_t colon = tok.find(':');
      if (colon == std::string::npos) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": expected term:count, got " + tok);
      }
      doc.term_counts.push_back(
          {static_cast<TermId>(std::stoul(tok.substr(0, colon))),
           static_cast<uint32_t>(std::stoul(tok.substr(colon + 1)))});
    }
    std::sort(doc.term_counts.begin(), doc.term_counts.end());
    dataset.Add(p, std::move(doc));
  }
  dataset.Finalize(weighting);
  return dataset;
}

Status SaveUsersIds(const std::vector<StUser>& users, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  for (const StUser& u : users) {
    out << u.loc.x << ',' << u.loc.y << ',';
    bool first = true;
    for (const TermWeight& e : u.keywords.entries()) {
      if (!first) out << ' ';
      out << e.term;
      first = false;
    }
    out << '\n';
  }
  return out.good() ? Status::Ok() : Status::Internal("write failed");
}

Result<std::vector<StUser>> LoadUsersIds(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<StUser> users;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const size_t c1 = line.find(',');
    const size_t c2 = c1 == std::string::npos ? std::string::npos
                                              : line.find(',', c1 + 1);
    if (c2 == std::string::npos) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": expected 'x,y,terms'");
    }
    StUser user;
    user.id = static_cast<uint32_t>(users.size());
    Status s = ParsePoint(line.substr(0, c1), line.substr(c1 + 1, c2 - c1 - 1),
                          &user.loc);
    if (!s.ok()) return s;
    std::istringstream terms(line.substr(c2 + 1));
    std::vector<TermId> ids;
    std::string tok;
    while (terms >> tok) ids.push_back(static_cast<TermId>(std::stoul(tok)));
    user.keywords = TermVector::FromTerms(ids);
    users.push_back(std::move(user));
  }
  return users;
}

}  // namespace rst
