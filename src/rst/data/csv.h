#ifndef RST_DATA_CSV_H_
#define RST_DATA_CSV_H_

#include <string>
#include <string_view>

#include "rst/common/status.h"
#include "rst/data/dataset.h"
#include "rst/text/vocabulary.h"

namespace rst {

/// Plain-text interchange for user-supplied collections (e.g. real POI or
/// tweet dumps), so the library is usable beyond the synthetic generators.

/// Tab-separated `x <TAB> y <TAB> free text` lines. Text is tokenized and
/// interned into `vocab`. The returned dataset is finalized with `weighting`.
Result<Dataset> LoadDatasetTsv(const std::string& path, Vocabulary* vocab,
                               const WeightingOptions& weighting);

/// In-memory core of LoadDatasetTsv: parses `text` directly. Total on any
/// input — malformed lines come back as Status, never a crash or a throw —
/// which is what fuzz/dataset_tsv_fuzz.cc drives.
Result<Dataset> ParseDatasetTsv(std::string_view text, Vocabulary* vocab,
                                const WeightingOptions& weighting);

/// Id-encoded round-trippable format: `x,y,term:count term:count ...`.
Status SaveDatasetIds(const Dataset& dataset, const std::string& path);
Result<Dataset> LoadDatasetIds(const std::string& path,
                               const WeightingOptions& weighting);

/// In-memory core of LoadDatasetIds, total on any input like ParseDatasetTsv.
Result<Dataset> ParseDatasetIds(std::string_view text,
                                const WeightingOptions& weighting);

/// Users: `x,y,term term ...` (keyword ids).
Status SaveUsersIds(const std::vector<StUser>& users, const std::string& path);
Result<std::vector<StUser>> LoadUsersIds(const std::string& path);

}  // namespace rst

#endif  // RST_DATA_CSV_H_
