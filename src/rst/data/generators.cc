#include "rst/data/generators.h"

#include "rst/common/check.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "rst/common/rng.h"

namespace rst {

namespace {

/// Clamps a point into the square [0, extent]².
Point ClampToWorld(Point p, double extent) {
  p.x = std::clamp(p.x, 0.0, extent);
  p.y = std::clamp(p.y, 0.0, extent);
  return p;
}

/// Shared document generator: `unique_terms` distinct terms, each drawn from
/// the local topic block with probability `locality` (Zipf within the block)
/// and from the global Zipf otherwise. Term counts follow a short geometric
/// tail controlled by `repeat_p`.
RawDocument GenDoc(Rng* rng, const ZipfSampler& global_zipf,
                   const ZipfSampler& block_zipf, size_t block_offset,
                   size_t vocab_size, double locality, size_t unique_terms,
                   double repeat_p) {
  std::vector<TermId> terms;
  terms.reserve(unique_terms * 2);
  size_t guard = 0;
  std::vector<bool> used(vocab_size, false);
  size_t distinct = 0;
  while (distinct < unique_terms && guard++ < unique_terms * 30) {
    TermId t;
    if (rng->Bernoulli(locality)) {
      t = static_cast<TermId>((block_offset + block_zipf.Sample(rng)) %
                              vocab_size);
    } else {
      t = static_cast<TermId>(global_zipf.Sample(rng));
    }
    if (used[t]) continue;
    used[t] = true;
    ++distinct;
    terms.push_back(t);
    while (rng->Bernoulli(repeat_p)) terms.push_back(t);  // tf > 1 tail
  }
  return RawDocument::FromTokens(terms);
}

size_t DocLength(Rng* rng, double mean) {
  // Uniform in [0.5 * mean, 1.5 * mean], at least 1 term.
  const double len = rng->Uniform(0.5 * mean, 1.5 * mean);
  return std::max<size_t>(1, static_cast<size_t>(std::lround(len)));
}

struct Hotspot {
  Point center;
  size_t block_offset;
};

std::vector<Hotspot> MakeHotspots(Rng* rng, size_t count, double extent,
                                  size_t vocab_size) {
  std::vector<Hotspot> spots(count);
  const size_t block = count == 0 ? vocab_size : vocab_size / count;
  for (size_t i = 0; i < count; ++i) {
    spots[i].center = Point{rng->Uniform(0, extent), rng->Uniform(0, extent)};
    spots[i].block_offset = i * block;
  }
  return spots;
}

}  // namespace

Dataset GenFlickrLike(const FlickrLikeConfig& config,
                      const WeightingOptions& weighting) {
  Rng rng(config.seed);
  Dataset dataset;
  const ZipfSampler global_zipf(config.vocab_size, config.zipf_exponent);
  const size_t block =
      std::max<size_t>(16, config.vocab_size / std::max<size_t>(1, config.num_hotspots));
  const ZipfSampler block_zipf(block, config.zipf_exponent);
  const auto hotspots =
      MakeHotspots(&rng, config.num_hotspots, config.world_extent,
                   config.vocab_size);
  for (size_t i = 0; i < config.num_objects; ++i) {
    const Hotspot& spot = hotspots[rng.UniformInt(hotspots.size())];
    const Point loc = ClampToWorld(
        Point{rng.Gaussian(spot.center.x, config.hotspot_stddev),
              rng.Gaussian(spot.center.y, config.hotspot_stddev)},
        config.world_extent);
    dataset.Add(loc, GenDoc(&rng, global_zipf, block_zipf, spot.block_offset,
                            config.vocab_size, config.topic_locality,
                            DocLength(&rng, config.terms_per_object),
                            /*repeat_p=*/0.05));
  }
  dataset.Finalize(weighting);
  return dataset;
}

Dataset GenYelpLike(const YelpLikeConfig& config,
                    const WeightingOptions& weighting) {
  Rng rng(config.seed);
  Dataset dataset;
  const ZipfSampler global_zipf(config.vocab_size, config.zipf_exponent);
  const size_t block =
      std::max<size_t>(16, config.vocab_size / std::max<size_t>(1, config.num_hotspots));
  const ZipfSampler block_zipf(block, config.zipf_exponent);
  const auto hotspots =
      MakeHotspots(&rng, config.num_hotspots, config.world_extent,
                   config.vocab_size);
  for (size_t i = 0; i < config.num_objects; ++i) {
    const Hotspot& spot = hotspots[rng.UniformInt(hotspots.size())];
    const Point loc = ClampToWorld(
        Point{rng.Gaussian(spot.center.x, config.hotspot_stddev),
              rng.Gaussian(spot.center.y, config.hotspot_stddev)},
        config.world_extent);
    // Long review-like documents with repeated terms.
    dataset.Add(loc, GenDoc(&rng, global_zipf, block_zipf, spot.block_offset,
                            config.vocab_size, config.topic_locality,
                            DocLength(&rng, config.terms_per_object),
                            /*repeat_p=*/0.4));
  }
  dataset.Finalize(weighting);
  return dataset;
}

Dataset GenGeoNamesLike(const GeoNamesLikeConfig& config,
                        const WeightingOptions& weighting) {
  Rng rng(config.seed);
  Dataset dataset;
  const ZipfSampler global_zipf(config.vocab_size, config.zipf_exponent);
  const size_t block =
      std::max<size_t>(16, config.vocab_size / std::max<size_t>(1, config.num_hotspots));
  const ZipfSampler block_zipf(block, config.zipf_exponent);
  const auto hotspots =
      MakeHotspots(&rng, config.num_hotspots, config.world_extent,
                   config.vocab_size);
  for (size_t i = 0; i < config.num_objects; ++i) {
    Point loc;
    size_t block_offset = 0;
    if (rng.Bernoulli(config.uniform_fraction) || hotspots.empty()) {
      loc = Point{rng.Uniform(0, config.world_extent),
                  rng.Uniform(0, config.world_extent)};
      block_offset =
          hotspots.empty() ? 0 : hotspots[rng.UniformInt(hotspots.size())].block_offset;
    } else {
      const Hotspot& spot = hotspots[rng.UniformInt(hotspots.size())];
      loc = ClampToWorld(Point{rng.Gaussian(spot.center.x, 3.0),
                               rng.Gaussian(spot.center.y, 3.0)},
                         config.world_extent);
      block_offset = spot.block_offset;
    }
    dataset.Add(loc, GenDoc(&rng, global_zipf, block_zipf, block_offset,
                            config.vocab_size, config.topic_locality,
                            DocLength(&rng, config.terms_per_object),
                            /*repeat_p=*/0.02));
  }
  dataset.Finalize(weighting);
  return dataset;
}

GeneratedUsers GenUsers(const Dataset& dataset, const UserGenConfig& config) {
  RST_CHECK(dataset.finalized()) << "GenUsers needs a finalized dataset";
  Rng rng(config.seed);
  GeneratedUsers out;

  const Rect world = dataset.bounds();
  double side = config.area_extent;
  // Pick an area center; grow the area if it contains too few objects.
  std::vector<ObjectId> in_area;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const Point center{rng.Uniform(world.min_x, world.max_x),
                       rng.Uniform(world.min_y, world.max_y)};
    out.area = Rect::FromCorners(center.x - side / 2, center.y - side / 2,
                                 center.x + side / 2, center.y + side / 2);
    in_area.clear();
    for (const StObject& obj : dataset.objects()) {
      if (out.area.Contains(obj.loc)) in_area.push_back(obj.id);
    }
    if (in_area.size() >= config.num_users) break;
    side *= 1.5;  // sparse spot: grow (documented deviation for tiny worlds)
  }
  RST_CHECK(!in_area.empty())
      << "user-generation area contains no objects; widen --area";

  // Sample |U| object locations as user locations.
  const size_t take = std::min(config.num_users, in_area.size());
  std::vector<size_t> picks = rng.SampleWithoutReplacement(in_area.size(), take);
  std::vector<ObjectId> chosen;
  chosen.reserve(config.num_users);
  for (size_t p : picks) chosen.push_back(in_area[p]);
  while (chosen.size() < config.num_users) {
    // More users than distinct objects in the area: reuse locations.
    chosen.push_back(in_area[rng.UniformInt(in_area.size())]);
  }

  // Keyword pool: UW distinct terms drawn from the chosen objects' text,
  // weighted by source frequency.
  std::unordered_map<TermId, uint64_t> freq;
  for (ObjectId id : chosen) {
    for (const auto& [term, count] : dataset.object(id).raw.term_counts) {
      freq[term] += count;
    }
  }
  std::vector<std::pair<TermId, uint64_t>> freq_list(freq.begin(), freq.end());
  std::sort(freq_list.begin(), freq_list.end());
  uint64_t total = 0;
  for (const auto& [t, c] : freq_list) total += c;

  auto weighted_pick = [&](const std::vector<std::pair<TermId, uint64_t>>& list,
                           uint64_t list_total) -> size_t {
    uint64_t r = rng.UniformInt(list_total) + 1;
    for (size_t i = 0; i < list.size(); ++i) {
      if (r <= list[i].second) return i;
      r -= list[i].second;
    }
    return list.size() - 1;
  };

  std::vector<std::pair<TermId, uint64_t>> pool_freq;
  {
    auto remaining = freq_list;
    uint64_t remaining_total = total;
    const size_t want = std::min(config.num_unique_keywords, remaining.size());
    for (size_t i = 0; i < want; ++i) {
      const size_t idx = weighted_pick(remaining, remaining_total);
      pool_freq.push_back(remaining[idx]);
      remaining_total -= remaining[idx].second;
      remaining.erase(remaining.begin() + idx);
    }
  }
  for (const auto& [t, c] : pool_freq) out.candidate_keywords.push_back(t);
  std::sort(out.candidate_keywords.begin(), out.candidate_keywords.end());

  // Distribute keywords: each user draws UL distinct keywords from the pool,
  // weighted by the pool keywords' source frequencies.
  uint64_t pool_total = 0;
  for (const auto& [t, c] : pool_freq) pool_total += c;
  for (size_t u = 0; u < config.num_users; ++u) {
    StUser user;
    user.id = static_cast<uint32_t>(u);
    user.loc = dataset.object(chosen[u]).loc;
    auto remaining = pool_freq;
    uint64_t remaining_total = pool_total;
    const size_t want = std::min(config.keywords_per_user, remaining.size());
    std::vector<TermId> terms;
    for (size_t i = 0; i < want; ++i) {
      const size_t idx = weighted_pick(remaining, remaining_total);
      terms.push_back(remaining[idx].first);
      remaining_total -= remaining[idx].second;
      remaining.erase(remaining.begin() + idx);
    }
    user.keywords = TermVector::FromTerms(terms);
    out.users.push_back(std::move(user));
  }
  return out;
}

std::vector<Point> GenCandidateLocations(const Rect& area, size_t count,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(Point{rng.Uniform(area.min_x, area.max_x),
                        rng.Uniform(area.min_y, area.max_y)});
  }
  return out;
}

std::vector<ObjectId> SampleQueryObjects(const Dataset& dataset, size_t count,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<ObjectId> out;
  const size_t take = std::min(count, dataset.size());
  for (size_t pick : rng.SampleWithoutReplacement(dataset.size(), take)) {
    out.push_back(static_cast<ObjectId>(pick));
  }
  return out;
}

}  // namespace rst
