#include "rst/data/dataset.h"

#include "rst/common/check.h"


namespace rst {

void Dataset::Add(Point loc, RawDocument raw) {
  RST_CHECK(!finalized_) << "Dataset::Add after Finalize";
  StObject obj;
  obj.id = static_cast<ObjectId>(objects_.size());
  obj.loc = loc;
  obj.raw = std::move(raw);
  objects_.push_back(std::move(obj));
}

void Dataset::Finalize(const WeightingOptions& weighting) {
  RST_CHECK(!finalized_) << "Dataset::Finalize called twice";
  weighting_ = weighting;
  for (const StObject& obj : objects_) {
    stats_.AddDocument(obj.raw);
    bounds_.Extend(obj.loc);
  }
  std::vector<TermVector> docs;
  docs.reserve(objects_.size());
  for (StObject& obj : objects_) {
    obj.doc = BuildWeightedVector(obj.raw, stats_, weighting_);
    docs.push_back(obj.doc);
  }
  corpus_max_ = ComputeCorpusMaxWeights(docs, stats_.vocab_size());
  max_dist_ = bounds_.empty()
                  ? 1.0
                  : Distance(Point{bounds_.min_x, bounds_.min_y},
                             Point{bounds_.max_x, bounds_.max_y});
  if (max_dist_ <= 0.0) max_dist_ = 1.0;
  finalized_ = true;
}

DatasetStatsRow ComputeDatasetStats(const Dataset& dataset) {
  DatasetStatsRow row;
  row.total_objects = dataset.size();
  row.total_unique_terms = 0;
  for (size_t t = 0; t < dataset.stats().vocab_size(); ++t) {
    if (dataset.stats().DocFreq(static_cast<TermId>(t)) > 0) {
      ++row.total_unique_terms;
    }
  }
  uint64_t unique_sum = 0;
  for (const StObject& obj : dataset.objects()) {
    unique_sum += obj.raw.term_counts.size();
    row.total_terms += obj.raw.Length();
  }
  row.avg_unique_terms_per_object =
      dataset.size() == 0
          ? 0.0
          : static_cast<double>(unique_sum) / static_cast<double>(dataset.size());
  return row;
}

}  // namespace rst
