#ifndef RST_DATA_GENERATORS_H_
#define RST_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "rst/data/dataset.h"

namespace rst {

/// Deterministic synthetic dataset generators. They substitute for the
/// papers' proprietary collections (Flickr geo-tags, Yelp reviews, GeoNames)
/// while preserving the statistics the experiments depend on — spatial
/// clustering, Zipf term skew, and document sparsity. See DESIGN.md §4.

/// Flickr-like: strongly clustered photo locations (urban hotspots), short
/// tag sets (~7 unique tags/object per the 2016 paper's Table 4), Zipf tag
/// frequencies with spatially-correlated topics.
struct FlickrLikeConfig {
  size_t num_objects = 20000;
  size_t vocab_size = 2000;
  size_t num_hotspots = 24;
  double world_extent = 100.0;     ///< side length of the square data space
  double hotspot_stddev = 2.5;     ///< spatial spread of each hotspot
  double terms_per_object = 7.0;   ///< mean unique tags per object
  double zipf_exponent = 1.0;
  double topic_locality = 0.7;     ///< fraction of tags drawn from the local
                                   ///< hotspot's topic block
  uint64_t seed = 1;
};
Dataset GenFlickrLike(const FlickrLikeConfig& config,
                      const WeightingOptions& weighting);

/// Yelp-like: fewer, text-heavy objects (reviews concatenated onto business
/// attributes — hundreds of unique terms per object, Table 4's long-document
/// regime), moderately clustered locations.
struct YelpLikeConfig {
  size_t num_objects = 2000;
  size_t vocab_size = 6000;
  size_t num_hotspots = 8;
  double world_extent = 100.0;
  double hotspot_stddev = 6.0;
  double terms_per_object = 150.0;
  double zipf_exponent = 0.9;
  double topic_locality = 0.4;
  uint64_t seed = 2;
};
Dataset GenYelpLike(const YelpLikeConfig& config,
                    const WeightingOptions& weighting);

/// GeoNames-like: near-uniform point field with mild hotspots and very short
/// documents (4–8 terms) — the regime of the 2011 paper's gazetteer data.
struct GeoNamesLikeConfig {
  size_t num_objects = 20000;
  size_t vocab_size = 3000;
  size_t num_hotspots = 6;
  double world_extent = 100.0;
  double uniform_fraction = 0.6;  ///< objects placed uniformly (not clustered)
  double terms_per_object = 5.0;
  double topic_locality = 0.65;   ///< fraction of terms from the local topic
  double zipf_exponent = 1.1;
  uint64_t seed = 3;
};
Dataset GenGeoNamesLike(const GeoNamesLikeConfig& config,
                        const WeightingOptions& weighting);

/// User generation protocol of the 2016 paper (§8): pick a square area of a
/// given side length, sample |U| objects inside it and reuse their locations
/// as user locations; select UW distinct keywords from those objects' text
/// and redistribute them among the users (UL keywords each) following the
/// keywords' source frequency distribution. The UW keyword set doubles as
/// the candidate keyword set W of the MaxBRSTkNN query.
struct UserGenConfig {
  size_t num_users = 100;          ///< |U|
  size_t keywords_per_user = 3;    ///< UL
  size_t num_unique_keywords = 20; ///< UW
  double area_extent = 5.0;        ///< side length of the user area
  uint64_t seed = 11;
};

struct GeneratedUsers {
  std::vector<StUser> users;
  std::vector<TermId> candidate_keywords;  ///< the UW keyword pool (= W)
  Rect area;                               ///< the chosen user area
};
GeneratedUsers GenUsers(const Dataset& dataset, const UserGenConfig& config);

/// Samples `count` candidate locations uniformly inside `area` (the 2016
/// query's L).
std::vector<Point> GenCandidateLocations(const Rect& area, size_t count,
                                         uint64_t seed);

/// Draws `count` query objects from the dataset for monochromatic RSTkNN
/// workloads (returns object ids; deterministic).
std::vector<ObjectId> SampleQueryObjects(const Dataset& dataset, size_t count,
                                         uint64_t seed);

}  // namespace rst

#endif  // RST_DATA_GENERATORS_H_
