#ifndef RST_DATA_DATASET_H_
#define RST_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "rst/common/geometry.h"
#include "rst/rtree/rtree.h"
#include "rst/text/corpus_stats.h"
#include "rst/text/similarity.h"
#include "rst/text/term_vector.h"
#include "rst/text/weighting.h"

namespace rst {

/// A spatial-textual object: a point location plus a weighted term vector
/// (derived from the raw document under the dataset's weighting scheme).
struct StObject {
  ObjectId id = 0;
  Point loc;
  RawDocument raw;
  TermVector doc;  ///< weighted vector (filled by Dataset::Finalize)
};

/// A user in the bichromatic setting: a point location plus a keyword set
/// (binary term vector). Users issue top-k queries over objects.
struct StUser {
  uint32_t id = 0;
  Point loc;
  TermVector keywords;
};

/// An immutable spatial-textual collection with its corpus statistics,
/// per-term corpus-max weights (the normalizers of the sum-form measures),
/// spatial bounds, and normalizing diameter.
class Dataset {
 public:
  Dataset() = default;

  /// Adds a raw object (document weights are computed in Finalize()).
  void Add(Point loc, RawDocument raw);

  /// Computes corpus stats, weighted vectors, corpus-max weights, spatial
  /// bounds, and the normalizing max distance. Must be called exactly once,
  /// after all Add() calls.
  void Finalize(const WeightingOptions& weighting);

  bool finalized() const { return finalized_; }
  size_t size() const { return objects_.size(); }
  const std::vector<StObject>& objects() const { return objects_; }
  const StObject& object(ObjectId id) const { return objects_[id]; }

  const CorpusStats& stats() const { return stats_; }
  const std::vector<float>& corpus_max() const { return corpus_max_; }
  const WeightingOptions& weighting() const { return weighting_; }
  size_t vocab_size() const { return corpus_max_.size(); }

  Rect bounds() const { return bounds_; }
  /// Diameter of the data space — the d_max normalizer in Equation 2 of both
  /// papers.
  double max_dist() const { return max_dist_; }

 private:
  std::vector<StObject> objects_;
  CorpusStats stats_;
  std::vector<float> corpus_max_;
  WeightingOptions weighting_;
  Rect bounds_;
  double max_dist_ = 1.0;
  bool finalized_ = false;
};

/// Summary statistics printed by the dataset benchmark (the 2016 paper's
/// Table 4: total objects, unique terms, average unique terms per object,
/// total terms).
struct DatasetStatsRow {
  size_t total_objects = 0;
  size_t total_unique_terms = 0;
  double avg_unique_terms_per_object = 0.0;
  uint64_t total_terms = 0;
};
DatasetStatsRow ComputeDatasetStats(const Dataset& dataset);

}  // namespace rst

#endif  // RST_DATA_DATASET_H_
