#ifndef RST_MAXBRST_MAXBRST_H_
#define RST_MAXBRST_MAXBRST_H_

#include <cstdint>
#include <vector>

#include "rst/data/dataset.h"
#include "rst/maxbrst/joint_topk.h"
#include "rst/text/similarity.h"

namespace rst {

/// A MaxBRSTkNN query (2016 paper, Definition 1): choose a location ℓ ∈ L
/// and keywords W' ⊆ W with |W'| ≤ w_s for the object-to-place o_x so that
/// the number of users whose spatial-textual top-k would include o_x is
/// maximized. A user u counts as covered iff STS(o_x, u) >= RS_k(u) (ties
/// resolve in the new object's favor, mirroring the RSTkNN convention).
struct MaxBrstQuery {
  RawDocument existing_raw;       ///< o_x's existing text (may be empty)
  std::vector<Point> locations;   ///< L
  std::vector<TermId> keywords;   ///< W
  size_t ws = 2;                  ///< max keywords to add
  size_t k = 10;
};

/// Keyword weights for o_x are fixed per term by weighting the document
/// (existing ∪ W) once under the dataset's scheme; a combination c then
/// scores with the restriction of that vector to (existing ∪ c). This keeps
/// Lemma 3 exact for every weighting scheme (see DESIGN.md §3.4).
struct PlacementContext {
  TermVector full_vec;       ///< weighted vector of existing ∪ W
  TermVector existing_vec;   ///< restriction to the existing terms
  std::vector<TermId> keywords;  ///< W, sorted ascending

  static PlacementContext Make(const Dataset& dataset,
                               const MaxBrstQuery& query);

  /// The weighted vector of o_x with combination `combo` added.
  TermVector VecWith(const std::vector<TermId>& combo) const;
};

enum class KeywordSelect {
  kApprox,  ///< greedy Maximum-Coverage ((1 − 1/e)-approximation)
  kExact,   ///< pruned exhaustive enumeration (Algorithm 4)
};

struct MaxBrstStats {
  uint64_t locations_pruned = 0;     ///< dropped by the super-user filter
  uint64_t combinations_evaluated = 0;
  uint64_t user_evaluations = 0;     ///< exact user-score computations
  bool early_terminated = false;     ///< best-first loop stopped early

  /// Adds the counters to the global metric registry under `prefix`
  /// (e.g. "maxbrst" → maxbrst.locations_pruned, ...). The solver calls
  /// this once per completed Solve/SolveTopL.
  void Publish(const std::string& prefix) const;
};

struct MaxBrstResult {
  size_t location_index = SIZE_MAX;  ///< index into query.locations
  std::vector<TermId> keywords;      ///< chosen W' (ascending)
  std::vector<uint32_t> covered_users;  ///< BRSTkNN user ids (ascending)
  MaxBrstStats stats;

  size_t coverage() const { return covered_users.size(); }
};

/// Users covered by placing o_x at `loc` with text `vec` — the exact
/// BRSTkNN membership test against per-user thresholds `rsk` (RS_k(u) per
/// user id; negative = fewer than k competitors, always covered).
/// `candidates` restricts the users tested (ids).
std::vector<uint32_t> EvaluatePlacement(const std::vector<StUser>& users,
                                        const std::vector<uint32_t>& candidates,
                                        const std::vector<double>& rsk,
                                        const StScorer& scorer, Point loc,
                                        const TermVector& vec,
                                        MaxBrstStats* stats);

/// Candidate-selection solver (2016 paper §6, Algorithm 3): per-location user
/// lists from upper-bound filtering, best-first location processing with
/// early termination, and greedy / exact keyword selection per location.
///
/// Note on the paper's Lines 3.11–3.13 (super-user lower-bound shortcut):
/// as stated there it compares LBL(ℓ, u_s) against RS_k(u_s), but
/// RS_k(u) >= RS_k(u_s), so passing that test does not imply every user in
/// LU_ℓ is covered. This implementation keeps the (sound) per-user
/// lower-bound shortcut inside keyword selection instead (Algorithm 4 line
/// 4.6) — see DESIGN.md.
class MaxBrstSolver {
 public:
  /// The scorer's text measure must treat the second argument as a user
  /// keyword set (kSum). All referents must outlive the solver.
  MaxBrstSolver(const Dataset* dataset, const StScorer* scorer)
      : dataset_(dataset), scorer_(scorer) {}

  /// `rsk[u.id]` must hold RS_k(u) (e.g. from JointTopKProcessor). With a
  /// trace, records maxbrst.filter / maxbrst.select / maxbrst.evaluate
  /// phase spans.
  MaxBrstResult Solve(const std::vector<StUser>& users,
                      const std::vector<double>& rsk,
                      const MaxBrstQuery& query, KeywordSelect method,
                      obs::QueryTrace* trace = nullptr) const;

  /// ℓ-MaxBRSTkNN extension: the `ell` best placements at distinct
  /// locations, ordered by descending coverage (ties by location index).
  /// SolveTopL(..., 1) returns exactly { Solve(...) }'s tuple. Early
  /// termination adapts to the ℓ-th best coverage found so far.
  std::vector<MaxBrstResult> SolveTopL(const std::vector<StUser>& users,
                                       const std::vector<double>& rsk,
                                       const MaxBrstQuery& query,
                                       KeywordSelect method, size_t ell,
                                       obs::QueryTrace* trace = nullptr) const;

  /// Keyword selection for one location over a fixed candidate-user list;
  /// exposed for the MIUR variant. Returns chosen keywords; coverage must be
  /// re-evaluated by the caller for the approximate method.
  std::vector<TermId> SelectKeywords(const std::vector<StUser>& users,
                                     const std::vector<uint32_t>& lu,
                                     const std::vector<double>& rsk,
                                     const PlacementContext& ctx, Point loc,
                                     size_t ws, KeywordSelect method,
                                     MaxBrstStats* stats) const;

  /// Upper bound of the score o_x can reach for user u when placed at `loc`
  /// with at most `ws` added keywords (Lemma 3, per-user form).
  double UpperBoundForUser(const StUser& user, const PlacementContext& ctx,
                           Point loc, size_t ws) const;

  /// Keyword-independent lower bound (existing text only).
  double LowerBoundForUser(const StUser& user, const PlacementContext& ctx,
                           Point loc) const;

 private:
  const Dataset* dataset_;
  const StScorer* scorer_;
};

/// Exhaustive oracle: every location × every w_s-combination of W, coverage
/// over all users. Exponential; tests and approximation-ratio benches only.
MaxBrstResult BruteForceMaxBrst(const std::vector<StUser>& users,
                                const std::vector<double>& rsk,
                                const Dataset& dataset, const StScorer& scorer,
                                const MaxBrstQuery& query);

}  // namespace rst

#endif  // RST_MAXBRST_MAXBRST_H_
