#ifndef RST_MAXBRST_JOINT_TOPK_H_
#define RST_MAXBRST_JOINT_TOPK_H_

#include <vector>

#include "rst/data/dataset.h"
#include "rst/iurtree/iurtree.h"
#include "rst/storage/io_stats.h"
#include "rst/text/similarity.h"
#include "rst/topk/topk.h"

namespace rst {

/// A "super-user" (2016 paper §5.2): the MBR of a user group's locations plus
/// the union/intersection summary of their keyword sets. The root of a MIUR
/// user tree is exactly a super-user; so is any of its entries.
struct SuperUser {
  Rect mbr;
  TextSummary keywords;

  static SuperUser FromUsers(const std::vector<StUser>& users);
  static SuperUser FromEntry(const IurTree::Entry& entry) {
    return SuperUser{entry.rect, entry.summary};
  }
};

/// Output of the shared tree traversal (Algorithm 1): the candidate object
/// pool that provably contains every user's top-k.
struct JointTraversal {
  /// The k objects with the best lower bounds w.r.t. the super-user.
  std::vector<ObjectId> lo;
  /// Remaining candidates ordered by descending upper bound (with bounds).
  std::vector<TopKResult> ro;  ///< .score holds UB(o, u_s)
  /// k-th best lower-bound score (RS_k(u_s)); -1 when |O| < k.
  double rsk_super = -1.0;
};

/// Per-user outcome of the joint computation.
struct JointTopKResult {
  /// Exact top-k list per user, ordered (score desc, id asc) — identical to
  /// BruteForceTopK.
  std::vector<std::vector<TopKResult>> per_user;
  /// RS_k(u): score of each user's k-th ranked object (-1 if fewer than k).
  std::vector<double> rsk;
  JointTraversal traversal;
  IoStats io;
  /// Objects whose exact score was computed, summed over users (work metric).
  uint64_t scored_objects = 0;
};

/// Joint top-k processing (2016 paper §5, Algorithms 1 and 2): traverse the
/// object MIR-tree once for the whole user group using super-user bounds,
/// then refine each user's exact top-k from the shared LO/RO pools. Each
/// tree node and object is read at most once regardless of |U|.
class JointTopKProcessor {
 public:
  /// All referents must outlive the processor. The scorer's text measure is
  /// typically kSum (LM / TF-IDF / keyword overlap); any measure with valid
  /// summary bounds works.
  JointTopKProcessor(const IurTree* tree, const Dataset* dataset,
                     const StScorer* scorer)
      : tree_(tree), dataset_(dataset), scorer_(scorer) {}

  /// Algorithm 1: super-user guided traversal producing LO/RO.
  JointTraversal Traverse(const SuperUser& super_user, size_t k,
                          IoStats* stats) const;

  /// Algorithm 2: exact top-k of each user from the LO/RO pools.
  /// `users` may be any subset of the group the super-user summarizes.
  void IndividualTopK(const std::vector<StUser>& users,
                      const JointTraversal& traversal, size_t k,
                      JointTopKResult* result) const;

  /// Traverse + refine for a whole user group.
  JointTopKResult Process(const std::vector<StUser>& users, size_t k) const;

  /// Reference baseline (2016 §4): an independent IR-tree top-k search per
  /// user; objects are re-read for every user. Same exact results.
  JointTopKResult BaselinePerUser(const std::vector<StUser>& users,
                                  size_t k) const;

 private:
  double UserScore(const StUser& user, ObjectId id) const;

  const IurTree* tree_;
  const Dataset* dataset_;
  const StScorer* scorer_;
};

}  // namespace rst

#endif  // RST_MAXBRST_JOINT_TOPK_H_
