#include "rst/maxbrst/joint_topk.h"

#include "rst/common/check.h"

#include <algorithm>
#include <queue>

#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"

namespace rst {

SuperUser SuperUser::FromUsers(const std::vector<StUser>& users) {
  SuperUser su;
  for (const StUser& u : users) {
    su.mbr.Extend(u.loc);
    su.keywords =
        TextSummary::Merge(su.keywords, TextSummary::FromDoc(u.keywords));
  }
  return su;
}

namespace {

/// Inserts `candidate` into `list` (sorted score desc, id asc, capacity k),
/// exactly reproducing BruteForceTopK ordering. Returns true if inserted.
bool InsertTopK(std::vector<TopKResult>* list, size_t k, TopKResult candidate) {
  auto better = [](const TopKResult& a, const TopKResult& b) {
    return a.score > b.score || (a.score == b.score && a.id < b.id);
  };
  if (list->size() == k) {
    if (!better(candidate, list->back())) return false;
    list->pop_back();
  }
  list->insert(std::upper_bound(list->begin(), list->end(), candidate, better),
               candidate);
  return true;
}

struct TraversalItem {
  double lb;
  double ub;
  bool is_object;
  ObjectId id;
  const IurTree::Node* node;

  /// Max-heap by lower bound; objects first on ties, then ascending id.
  bool operator<(const TraversalItem& other) const {
    if (lb != other.lb) return lb < other.lb;
    if (is_object != other.is_object) return !is_object;
    return id > other.id;
  }
};

}  // namespace

double JointTopKProcessor::UserScore(const StUser& user, ObjectId id) const {
  const StObject& obj = dataset_->object(id);
  return scorer_->Score(obj.loc, obj.doc, user.loc, user.keywords);
}

JointTraversal JointTopKProcessor::Traverse(const SuperUser& super_user,
                                            size_t k, IoStats* stats) const {
  JointTraversal out;
  if (k == 0 || tree_->size() == 0) return out;

  const double alpha = scorer_->options().alpha;
  auto entry_bounds = [&](const IurTree::Entry& e) -> std::pair<double, double> {
    const TextBounds tb =
        EntryTextBounds(e, super_user.keywords, scorer_->text());
    const double lb =
        alpha * scorer_->SpatialSim(MaxDistance(e.rect, super_user.mbr)) +
        (1.0 - alpha) * tb.min_sim;
    const double ub =
        alpha * scorer_->SpatialSim(MinDistance(e.rect, super_user.mbr)) +
        (1.0 - alpha) * tb.max_sim;
    return {lb, ub};
  };

  // LO: the k objects with the best lower bounds seen so far (min-heap on
  // (lb, id)); RS_k(u_s) is its weakest member once full.
  struct LoItem {
    double lb;
    double ub;
    ObjectId id;
    bool operator>(const LoItem& other) const {
      if (lb != other.lb) return lb > other.lb;
      return id < other.id;
    }
  };
  std::priority_queue<LoItem, std::vector<LoItem>, std::greater<>> lo;
  double rsk = -1.0;

  std::priority_queue<TraversalItem> pq;
  pq.push({0.0, 1.0, false, 0, tree_->root()});

  while (!pq.empty()) {
    const TraversalItem item = pq.top();
    pq.pop();
    if (item.is_object) {
      if (lo.size() < k) {
        lo.push({item.lb, item.ub, item.id});
        if (lo.size() == k) rsk = lo.top().lb;
      } else if (item.ub >= rsk) {
        if (item.lb > lo.top().lb) {
          const LoItem displaced = lo.top();
          lo.pop();
          lo.push({item.lb, item.ub, item.id});
          rsk = lo.top().lb;
          if (displaced.ub >= rsk) {
            out.ro.push_back({displaced.id, displaced.ub});
          }
        } else {
          out.ro.push_back({item.id, item.ub});
        }
      }
      continue;
    }
    // Node: prune when it cannot contain any user's top-k object.
    if (lo.size() == k && item.ub < rsk) continue;
    tree_->ChargeAccess(item.node, stats);
    for (const IurTree::Entry& e : item.node->entries) {
      const auto [lb, ub] = entry_bounds(e);
      if (lo.size() == k && ub < rsk) continue;  // prune before enqueueing
      if (e.is_object()) {
        pq.push({lb, ub, true, e.id, nullptr});
      } else {
        pq.push({lb, ub, false, 0, e.child});
      }
    }
  }

  out.rsk_super = rsk;
  while (!lo.empty()) {
    out.lo.push_back(lo.top().id);
    lo.pop();
  }
  std::sort(out.lo.begin(), out.lo.end());
  std::sort(out.ro.begin(), out.ro.end(),
            [](const TopKResult& a, const TopKResult& b) {
              return a.score > b.score || (a.score == b.score && a.id < b.id);
            });
  return out;
}

void JointTopKProcessor::IndividualTopK(const std::vector<StUser>& users,
                                        const JointTraversal& traversal,
                                        size_t k,
                                        JointTopKResult* result) const {
  for (const StUser& user : users) {
    RST_DCHECK_LT(user.id, result->per_user.size());
    std::vector<TopKResult>& list = result->per_user[user.id];
    list.clear();
    for (ObjectId id : traversal.lo) {
      InsertTopK(&list, k, {id, UserScore(user, id)});
      ++result->scored_objects;
    }
    double rsk = list.size() == k ? list.back().score : -1.0;
    for (const TopKResult& candidate : traversal.ro) {
      // RO is sorted by descending UB(o, u_s): once the super-user upper
      // bound falls below this user's k-th score, nothing below can enter.
      if (list.size() == k && candidate.score < rsk) break;
      InsertTopK(&list, k, {candidate.id, UserScore(user, candidate.id)});
      ++result->scored_objects;
      rsk = list.size() == k ? list.back().score : -1.0;
    }
    result->rsk[user.id] = rsk;
  }
}

JointTopKResult JointTopKProcessor::Process(const std::vector<StUser>& users,
                                            size_t k) const {
  JointTopKResult result;
  result.per_user.resize(users.size());
  result.rsk.assign(users.size(), -1.0);
  const SuperUser su = SuperUser::FromUsers(users);
  result.traversal = Traverse(su, k, &result.io);
  IndividualTopK(users, result.traversal, k, &result);
  static const obs::Counter runs =
      obs::MetricRegistry::Global().GetCounter(obs::names::kJointTopkRuns);
  static const obs::Counter scored =
      obs::MetricRegistry::Global().GetCounter(obs::names::kJointTopkScoredObjects);
  runs.Increment();
  scored.Add(result.scored_objects);
  result.io.Publish(obs::names::kJointTopkIoPrefix);
  return result;
}

JointTopKResult JointTopKProcessor::BaselinePerUser(
    const std::vector<StUser>& users, size_t k) const {
  JointTopKResult result;
  result.per_user.resize(users.size());
  result.rsk.assign(users.size(), -1.0);
  TopKSearcher searcher(tree_, dataset_, scorer_);
  for (const StUser& user : users) {
    TopKQuery q;
    q.loc = user.loc;
    q.doc = &user.keywords;
    q.k = k;
    result.per_user[user.id] = searcher.Search(q, &result.io);
    result.scored_objects += result.per_user[user.id].size();
    result.rsk[user.id] = result.per_user[user.id].size() == k
                              ? result.per_user[user.id].back().score
                              : -1.0;
  }
  static const obs::Counter runs =
      obs::MetricRegistry::Global().GetCounter(obs::names::kJointTopkBaselineRuns);
  runs.Increment();
  result.io.Publish(obs::names::kJointTopkBaselineIoPrefix);
  return result;
}

}  // namespace rst
