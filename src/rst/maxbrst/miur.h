#ifndef RST_MAXBRST_MIUR_H_
#define RST_MAXBRST_MIUR_H_

#include <vector>

#include "rst/maxbrst/maxbrst.h"

namespace rst {

struct MiurStats {
  IoStats object_io;       ///< MIR object-tree I/O (shared traversal)
  IoStats user_io;         ///< MIUR user-tree I/O
  uint64_t users_refined = 0;  ///< users whose individual top-k was computed
  double UsersPrunedFraction(size_t total_users) const {
    return total_users == 0
               ? 0.0
               : 1.0 - static_cast<double>(users_refined) /
                           static_cast<double>(total_users);
  }
};

struct MiurResult {
  MaxBrstResult best;
  MiurStats stats;
};

/// MaxBRSTkNN with a disk-resident user set indexed by a MIUR-tree (2016
/// paper §7): the object tree is traversed once for the tree's root
/// super-user; per-location candidate lists LU_ℓ hold *user tree nodes*
/// refined best-first, so a user's individual top-k is computed only when a
/// promising location actually needs that user — the "Users pruned (%)"
/// metric of Figure 15.
class MiurMaxBrstSolver {
 public:
  /// `user_tree` must index exactly `users` (ids 0..|U|-1). All referents
  /// must outlive the solver.
  MiurMaxBrstSolver(const IurTree* object_tree, const Dataset* dataset,
                    const StScorer* scorer, const IurTree* user_tree,
                    const std::vector<StUser>* users)
      : object_tree_(object_tree),
        dataset_(dataset),
        scorer_(scorer),
        user_tree_(user_tree),
        users_(users) {}

  MiurResult Solve(const MaxBrstQuery& query, KeywordSelect method) const;

 private:
  const IurTree* object_tree_;
  const Dataset* dataset_;
  const StScorer* scorer_;
  const IurTree* user_tree_;
  const std::vector<StUser>* users_;
};

}  // namespace rst

#endif  // RST_MAXBRST_MIUR_H_
