#include "rst/maxbrst/maxbrst.h"

#include <algorithm>
#include <set>
#include <string>

#include "rst/common/stopwatch.h"
#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"
#include "rst/obs/trace.h"

namespace rst {

namespace {

/// Calls `fn(combo)` for every size-`ws` combination of `pool` (ascending,
/// lexicographic order). `fn` returns false to stop enumeration.
template <typename Fn>
void ForEachCombination(const std::vector<TermId>& pool, size_t ws, Fn fn) {
  if (ws == 0 || pool.size() < ws) return;
  std::vector<size_t> idx(ws);
  for (size_t i = 0; i < ws; ++i) idx[i] = i;
  std::vector<TermId> combo(ws);
  while (true) {
    for (size_t i = 0; i < ws; ++i) combo[i] = pool[idx[i]];
    if (!fn(combo)) return;
    // Advance.
    size_t i = ws;
    while (i > 0) {
      --i;
      if (idx[i] != i + pool.size() - ws) {
        ++idx[i];
        for (size_t j = i + 1; j < ws; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
  }
}

/// Keywords of `user` that appear in the candidate pool, sorted by their
/// weight in `ctx.full_vec` (descending; ties by term id).
std::vector<TermId> UserPoolKeywordsByWeight(const StUser& user,
                                             const PlacementContext& ctx) {
  std::vector<TermId> out;
  for (TermId w : ctx.keywords) {
    if (user.keywords.Contains(w)) out.push_back(w);
  }
  std::sort(out.begin(), out.end(), [&ctx](TermId a, TermId b) {
    const float wa = ctx.full_vec.Get(a);
    const float wb = ctx.full_vec.Get(b);
    return wa > wb || (wa == wb && a < b);
  });
  return out;
}

}  // namespace

PlacementContext PlacementContext::Make(const Dataset& dataset,
                                        const MaxBrstQuery& query) {
  PlacementContext ctx;
  ctx.keywords = query.keywords;
  std::sort(ctx.keywords.begin(), ctx.keywords.end());
  ctx.keywords.erase(std::unique(ctx.keywords.begin(), ctx.keywords.end()),
                     ctx.keywords.end());

  // Weight the document (existing ∪ W) once; candidate keywords enter with
  // term frequency 1 (unless already present in the existing text). For the
  // length-sensitive language model the effective document length is
  // |existing| + w_s — the length of every size-w_s placement actually
  // evaluated — so the fixed per-term weights are exact for those
  // combinations (Lemma 3 stays exact; see header).
  RawDocument full = query.existing_raw;
  for (TermId w : ctx.keywords) {
    bool present = false;
    for (auto& [t, c] : full.term_counts) {
      if (t == w) {
        present = true;
        break;
      }
    }
    if (!present) full.term_counts.push_back({w, 1});
  }
  std::sort(full.term_counts.begin(), full.term_counts.end());
  const WeightingOptions& weighting = dataset.weighting();
  if (weighting.scheme == Weighting::kLanguageModel) {
    const double eff_len =
        static_cast<double>(query.existing_raw.Length() +
                            std::min(query.ws, ctx.keywords.size()));
    std::vector<TermWeight> entries;
    for (const auto& [term, count] : full.term_counts) {
      const double w =
          (1.0 - weighting.lambda) *
              (eff_len > 0 ? static_cast<double>(count) / eff_len : 0.0) +
          weighting.lambda * dataset.stats().CollectionProb(term);
      if (w > 0.0) entries.push_back({term, static_cast<float>(w)});
    }
    ctx.full_vec = TermVector::FromUnsorted(std::move(entries));
  } else {
    ctx.full_vec = BuildWeightedVector(full, dataset.stats(), weighting);
  }
  // Clamp per-term weights to the corpus maxima: the placed object cannot be
  // more relevant for a term than the most relevant organic object (this
  // also keeps the kSum normalizers dominating every scored weight, and
  // prevents a short ad document from saturating coverage under the
  // length-normalized language model).
  {
    std::vector<TermWeight> clamped;
    clamped.reserve(ctx.full_vec.size());
    const std::vector<float>& cmax = dataset.corpus_max();
    for (const TermWeight& e : ctx.full_vec.entries()) {
      const float cap = e.term < cmax.size() ? cmax[e.term] : e.weight;
      clamped.push_back({e.term, std::min(e.weight, cap)});
    }
    ctx.full_vec = TermVector::FromSorted(std::move(clamped));
  }

  std::vector<TermId> existing_terms;
  for (const auto& [t, c] : query.existing_raw.term_counts) {
    existing_terms.push_back(t);
  }
  ctx.existing_vec = ctx.full_vec.Restrict(TermVector::FromTerms(existing_terms));
  return ctx;
}

TermVector PlacementContext::VecWith(const std::vector<TermId>& combo) const {
  TermVector mask = TermVector::FromTerms(combo);
  return TermVector::UnionMax(existing_vec, full_vec.Restrict(mask));
}

std::vector<uint32_t> EvaluatePlacement(const std::vector<StUser>& users,
                                        const std::vector<uint32_t>& candidates,
                                        const std::vector<double>& rsk,
                                        const StScorer& scorer, Point loc,
                                        const TermVector& vec,
                                        MaxBrstStats* stats) {
  std::vector<uint32_t> covered;
  for (uint32_t uid : candidates) {
    const StUser& user = users[uid];
    const double score = scorer.Score(loc, vec, user.loc, user.keywords);
    if (stats != nullptr) ++stats->user_evaluations;
    if (rsk[uid] < 0.0 || score >= rsk[uid]) covered.push_back(uid);
  }
  std::sort(covered.begin(), covered.end());
  return covered;
}

double MaxBrstSolver::UpperBoundForUser(const StUser& user,
                                        const PlacementContext& ctx, Point loc,
                                        size_t ws) const {
  std::vector<TermId> best = UserPoolKeywordsByWeight(user, ctx);
  if (best.size() > ws) best.resize(ws);
  const TermVector vec = ctx.VecWith(best);
  return scorer_->Score(loc, vec, user.loc, user.keywords);
}

double MaxBrstSolver::LowerBoundForUser(const StUser& user,
                                        const PlacementContext& ctx,
                                        Point loc) const {
  return scorer_->Score(loc, ctx.existing_vec, user.loc, user.keywords);
}

std::vector<TermId> MaxBrstSolver::SelectKeywords(
    const std::vector<StUser>& users, const std::vector<uint32_t>& lu,
    const std::vector<double>& rsk, const PlacementContext& ctx, Point loc,
    size_t ws, KeywordSelect method, MaxBrstStats* stats) const {
  // Candidate keywords: W restricted to terms some LU user actually has
  // (others cannot change any relevant score).
  std::set<TermId> user_terms;
  for (uint32_t uid : lu) {
    for (const TermWeight& e : users[uid].keywords.entries()) {
      user_terms.insert(e.term);
    }
  }
  std::vector<TermId> pool;
  for (TermId w : ctx.keywords) {
    if (user_terms.count(w)) pool.push_back(w);
  }
  // Early termination: at most ws useful keywords exist.
  if (pool.size() <= ws) return pool;

  if (method == KeywordSelect::kExact) {
    // Keyword-independent part: users covered by the existing text alone
    // (Algorithm 4 line 4.6) are hoisted out of the enumeration.
    size_t base_count = 0;
    std::vector<uint32_t> contested;
    for (uint32_t uid : lu) {
      if (rsk[uid] < 0.0 ||
          LowerBoundForUser(users[uid], ctx, loc) >= rsk[uid]) {
        ++base_count;
      } else {
        contested.push_back(uid);
      }
    }
    std::vector<TermId> best_combo;
    size_t best_count = 0;
    bool first = true;
    ForEachCombination(pool, ws, [&](const std::vector<TermId>& combo) {
      ++stats->combinations_evaluated;
      const TermVector vec = ctx.VecWith(combo);
      const TermVector combo_vec = TermVector::FromTerms(combo);
      size_t count = base_count;
      for (uint32_t uid : contested) {
        const StUser& user = users[uid];
        if (user.keywords.OverlapCount(combo_vec) == 0) {
          continue;  // keywords do not touch this user
        }
        ++stats->user_evaluations;
        if (scorer_->Score(loc, vec, user.loc, user.keywords) >= rsk[uid]) {
          ++count;
        }
      }
      if (first || count > best_count) {
        best_combo = combo;
        best_count = count;
        first = false;
      }
      return true;
    });
    return best_combo;
  }

  // Approximate method: greedy Maximum Coverage with *grounded* marginal
  // gains. The 2016 paper builds per-keyword user lists LUW_w from the
  // upper-bound membership test "u is coverable by {w} + u's own heaviest
  // partners" and runs set-cover greedy over them; but the partners that put
  // u into LUW_w need not be selected in the end, so the chosen set's actual
  // coverage can collapse to zero (we observed exactly that under TF-IDF
  // with larger k). We therefore measure each candidate keyword's marginal
  // gain on the *actual* covered-user set of (existing ∪ chosen ∪ {w}) —
  // the same greedy shape and cost regime, grounded in the true objective.
  size_t base_count = 0;
  std::vector<uint32_t> contested;
  for (uint32_t uid : lu) {
    if (rsk[uid] < 0.0 ||
        LowerBoundForUser(users[uid], ctx, loc) >= rsk[uid]) {
      ++base_count;
    } else {
      contested.push_back(uid);
    }
  }
  std::vector<TermId> chosen;
  std::set<uint32_t> covered;
  for (size_t round = 0; round < ws; ++round) {
    TermId best_w = 0;
    size_t best_gain = 0;
    bool found = false;
    std::vector<TermId> trial = chosen;
    trial.push_back(0);
    for (TermId w : pool) {
      if (std::find(chosen.begin(), chosen.end(), w) != chosen.end()) {
        continue;
      }
      trial.back() = w;
      const TermVector vec = ctx.VecWith(trial);
      size_t gain = 0;
      for (uint32_t uid : contested) {
        if (covered.count(uid)) continue;
        const StUser& user = users[uid];
        if (!user.keywords.Contains(w) &&
            user.keywords.OverlapCount(TermVector::FromTerms(chosen)) == 0) {
          continue;  // score unchanged and previously uncovered
        }
        ++stats->user_evaluations;
        if (scorer_->Score(loc, vec, user.loc, user.keywords) >= rsk[uid]) {
          ++gain;
        }
      }
      if (!found || gain > best_gain || (gain == best_gain && w < best_w)) {
        best_w = w;
        best_gain = gain;
        found = true;
      }
    }
    if (!found) break;
    if (best_gain == 0) {
      // No single keyword covers anyone yet (common under the length-
      // normalized language model, where per-term weights dilute with w_s):
      // invest in the keyword with the largest total weight over still-
      // uncovered users so multi-keyword coverage can materialize.
      double best_potential = -1.0;
      bool any = false;
      for (TermId w : pool) {
        if (std::find(chosen.begin(), chosen.end(), w) != chosen.end()) {
          continue;
        }
        double potential = 0.0;
        for (uint32_t uid : contested) {
          if (covered.count(uid)) continue;
          if (users[uid].keywords.Contains(w)) {
            potential += ctx.full_vec.Get(w);
          }
        }
        if (!any || potential > best_potential ||
            (potential == best_potential && w < best_w)) {
          best_w = w;
          best_potential = potential;
          any = true;
        }
      }
      if (!any || best_potential <= 0.0) break;
    }
    chosen.push_back(best_w);
    const TermVector vec = ctx.VecWith(chosen);
    for (uint32_t uid : contested) {
      if (covered.count(uid)) continue;
      ++stats->user_evaluations;
      if (scorer_->Score(loc, vec, users[uid].loc, users[uid].keywords) >=
          rsk[uid]) {
        covered.insert(uid);
      }
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

void MaxBrstStats::Publish(const std::string& prefix) const {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter(prefix + obs::names::kSuffixLocationsPruned).Add(locations_pruned);
  registry.GetCounter(prefix + obs::names::kSuffixCombinationsEvaluated)
      .Add(combinations_evaluated);
  registry.GetCounter(prefix + obs::names::kSuffixUserEvaluations).Add(user_evaluations);
  if (early_terminated) {
    registry.GetCounter(prefix + obs::names::kSuffixEarlyTerminations).Increment();
  }
}

MaxBrstResult MaxBrstSolver::Solve(const std::vector<StUser>& users,
                                   const std::vector<double>& rsk,
                                   const MaxBrstQuery& query,
                                   KeywordSelect method,
                                   obs::QueryTrace* trace) const {
  std::vector<MaxBrstResult> top =
      SolveTopL(users, rsk, query, method, 1, trace);
  if (!top.empty()) return std::move(top.front());
  return MaxBrstResult{};
}

std::vector<MaxBrstResult> MaxBrstSolver::SolveTopL(
    const std::vector<StUser>& users, const std::vector<double>& rsk,
    const MaxBrstQuery& query, KeywordSelect method, size_t ell,
    obs::QueryTrace* trace) const {
  if (ell == 0) return {};
  Stopwatch timer;
  MaxBrstResult result;
  const PlacementContext ctx = PlacementContext::Make(*dataset_, query);

  if (trace != nullptr) trace->Enter(obs::names::kSpanMaxbrstFilter);
  // Per-user, location-independent text parts of the bounds.
  std::vector<double> ts_upper(users.size());
  for (const StUser& user : users) {
    std::vector<TermId> best = UserPoolKeywordsByWeight(user, ctx);
    if (best.size() > query.ws) best.resize(query.ws);
    ts_upper[user.id] =
        scorer_->text().Sim(ctx.VecWith(best), user.keywords);
  }
  const double alpha = scorer_->options().alpha;

  // LU_ℓ for every location.
  struct LocationCand {
    size_t index;
    std::vector<uint32_t> lu;
  };
  std::vector<LocationCand> locations;
  for (size_t li = 0; li < query.locations.size(); ++li) {
    LocationCand cand;
    cand.index = li;
    for (const StUser& user : users) {
      const double ubl =
          alpha * scorer_->SpatialSim(
                      Distance(query.locations[li], user.loc)) +
          (1.0 - alpha) * ts_upper[user.id];
      if (rsk[user.id] < 0.0 || ubl >= rsk[user.id]) {
        cand.lu.push_back(user.id);
      }
    }
    if (cand.lu.empty()) {
      ++result.stats.locations_pruned;
      continue;
    }
    locations.push_back(std::move(cand));
  }
  // Best-first: largest candidate list first (ties by index for determinism).
  std::sort(locations.begin(), locations.end(),
            [](const LocationCand& a, const LocationCand& b) {
              return a.lu.size() > b.lu.size() ||
                     (a.lu.size() == b.lu.size() && a.index < b.index);
            });
  if (trace != nullptr) {
    trace->AddCount(obs::names::kCountLocationsPruned, result.stats.locations_pruned);
    trace->AddCount(obs::names::kCountLocationsKept, locations.size());
    trace->Exit();  // maxbrst.filter
  }

  std::vector<MaxBrstResult> best;  // descending coverage, capacity ell
  for (const LocationCand& cand : locations) {
    // Early termination: |LU| upper-bounds achievable coverage; once the
    // ℓ-th best result is at least that, later (smaller) lists cannot enter.
    if (best.size() == ell && cand.lu.size() <= best.back().coverage()) {
      result.stats.early_terminated = true;
      break;
    }
    const Point loc = query.locations[cand.index];
    std::vector<TermId> keywords;
    {
      obs::TraceSpan span(trace, obs::names::kSpanMaxbrstSelect);
      const uint64_t combos_before = result.stats.combinations_evaluated;
      keywords = SelectKeywords(users, cand.lu, rsk, ctx, loc, query.ws,
                                method, &result.stats);
      span.AddCount(obs::names::kCountCombinations,
                    result.stats.combinations_evaluated - combos_before);
    }
    std::vector<uint32_t> covered;
    {
      obs::TraceSpan span(trace, obs::names::kSpanMaxbrstEvaluate);
      covered = EvaluatePlacement(users, cand.lu, rsk, *scorer_, loc,
                                  ctx.VecWith(keywords), &result.stats);
      span.AddCount(obs::names::kCountUsers, cand.lu.size());
    }
    MaxBrstResult entry;
    entry.location_index = cand.index;
    entry.keywords = keywords;
    entry.covered_users = covered;
    const auto pos = std::upper_bound(
        best.begin(), best.end(), entry,
        [](const MaxBrstResult& a, const MaxBrstResult& b) {
          return a.coverage() > b.coverage() ||
                 (a.coverage() == b.coverage() &&
                  a.location_index < b.location_index);
        });
    best.insert(pos, std::move(entry));
    if (best.size() > ell) best.pop_back();
  }
  if (!best.empty()) {
    best.front().stats = result.stats;  // aggregate work stats on the winner
  } else if (ell > 0) {
    best.push_back(std::move(result));  // empty result carrying the stats
  }
  static const obs::Counter solves =
      obs::MetricRegistry::Global().GetCounter(obs::names::kMaxbrstSolves);
  static const obs::HistogramRef solve_ms =
      obs::MetricRegistry::Global().GetHistogram(
          obs::names::kMaxbrstSolveMs, obs::HistogramSpec::LatencyMs());
  solves.Increment();
  solve_ms.Record(timer.ElapsedMillis());
  best.front().stats.Publish(obs::names::kMaxbrstPrefix);
  return best;
}

MaxBrstResult BruteForceMaxBrst(const std::vector<StUser>& users,
                                const std::vector<double>& rsk,
                                const Dataset& dataset, const StScorer& scorer,
                                const MaxBrstQuery& query) {
  MaxBrstResult result;
  const PlacementContext ctx = PlacementContext::Make(dataset, query);
  std::vector<uint32_t> everyone;
  for (const StUser& u : users) everyone.push_back(u.id);
  const size_t ws = std::min(query.ws, ctx.keywords.size());

  auto consider = [&](size_t li, const std::vector<TermId>& combo) {
    ++result.stats.combinations_evaluated;
    const std::vector<uint32_t> covered =
        EvaluatePlacement(users, everyone, rsk, scorer, query.locations[li],
                          ctx.VecWith(combo), &result.stats);
    if (result.location_index == SIZE_MAX ||
        covered.size() > result.covered_users.size()) {
      result.location_index = li;
      result.keywords = combo;
      result.covered_users = covered;
    }
  };

  for (size_t li = 0; li < query.locations.size(); ++li) {
    if (ws == 0) {
      consider(li, {});
      continue;
    }
    ForEachCombination(ctx.keywords, ws, [&](const std::vector<TermId>& combo) {
      consider(li, combo);
      return true;
    });
  }
  return result;
}

}  // namespace rst
