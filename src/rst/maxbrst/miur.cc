#include "rst/maxbrst/miur.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"

namespace rst {

namespace {

/// An element of a location's candidate list: either a user-tree node
/// (count() users, bounds from its summary) or a concrete, refined user.
struct Elem {
  const IurTree::Entry* node = nullptr;  // nullptr => concrete user
  uint32_t user = 0;

  uint32_t count() const { return node != nullptr ? node->count() : 1; }
};

}  // namespace

MiurResult MiurMaxBrstSolver::Solve(const MaxBrstQuery& query,
                                    KeywordSelect method) const {
  MiurResult result;
  const std::vector<StUser>& users = *users_;
  const PlacementContext ctx = PlacementContext::Make(*dataset_, query);
  const double alpha = scorer_->options().alpha;
  MaxBrstSolver inner(dataset_, scorer_);

  // Root super-user == the whole user set; one shared object-tree traversal.
  SuperUser su;
  for (const IurTree::Entry& e : user_tree_->root()->entries) {
    su.mbr.Extend(e.rect);
    su.keywords = TextSummary::Merge(su.keywords, e.summary);
  }
  JointTopKProcessor proc(object_tree_, dataset_, scorer_);
  const JointTraversal traversal =
      proc.Traverse(su, query.k, &result.stats.object_io);
  const double rsk_super = traversal.rsk_super;

  JointTopKResult shared;
  shared.per_user.resize(users.size());
  shared.rsk.assign(users.size(), -1.0);
  std::vector<bool> computed(users.size(), false);

  auto refine_user = [&](uint32_t uid) {
    if (computed[uid]) return;
    proc.IndividualTopK({users[uid]}, traversal, query.k, &shared);
    computed[uid] = true;
    ++result.stats.users_refined;
  };

  // Object-side summary available to ANY keyword subset: between the
  // existing text (intr) and existing ∪ W (uni).
  TextSummary obj_summary;
  obj_summary.uni = ctx.VecWith(ctx.keywords);
  obj_summary.intr = ctx.existing_vec;
  obj_summary.count = 1;

  // Per-node lower bound on every contained user's RS_k: each user's k-th
  // best object scores at least the k-th largest guaranteed LO-object score
  // toward this node (tighter than the global RS_k(u_s)). Cached per node.
  std::unordered_map<const IurTree::Node*, double> node_rsk_lb;
  auto node_threshold = [&](const IurTree::Entry& e) -> double {
    auto it = node_rsk_lb.find(e.child);
    if (it != node_rsk_lb.end()) return it->second;
    std::vector<double> mins;
    mins.reserve(traversal.lo.size());
    for (ObjectId oid : traversal.lo) {
      const StObject& obj = dataset_->object(oid);
      const TextSummary osum = TextSummary::FromDoc(obj.doc);
      mins.push_back(
          alpha * scorer_->SpatialSim(MaxDistance(obj.loc, e.rect)) +
          (1.0 - alpha) * scorer_->text().MinSim(osum, e.summary));
    }
    double lb = rsk_super;
    if (mins.size() >= query.k && query.k > 0) {
      std::nth_element(mins.begin(), mins.begin() + (query.k - 1), mins.end(),
                       std::greater<>());
      lb = std::max(lb, mins[query.k - 1]);
    }
    node_rsk_lb.emplace(e.child, lb);
    return lb;
  };
  auto node_qualifies = [&](const IurTree::Entry& e, Point loc) {
    const double threshold = node_threshold(e);
    if (threshold < 0.0) return true;
    const double ub =
        alpha * scorer_->SpatialSim(MinDistance(loc, e.rect)) +
        (1.0 - alpha) * scorer_->text().MaxSim(obj_summary, e.summary);
    // RS_k(u) >= threshold for every user below e, so nothing in this
    // subtree can be covered at `loc` when the upper bound undercuts it.
    return ub >= threshold;
  };
  // Cheap per-user RS_k lower bound (k-th best exact score over the shared
  // LO pool) — lets a location disqualify a user without ever computing the
  // user's full top-k ("users pruned"). Lazily cached.
  std::vector<double> user_rsk_lb(users.size(),
                                  -std::numeric_limits<double>::infinity());
  auto user_threshold_lb = [&](uint32_t uid) -> double {
    if (user_rsk_lb[uid] != -std::numeric_limits<double>::infinity()) {
      return user_rsk_lb[uid];
    }
    // Score the LO pool plus a short prefix of RO (the globally strongest
    // candidates): the k-th largest of any exact-score subset lower-bounds
    // RS_k(u) at a fraction of a full refinement's cost.
    std::vector<double> scores;
    scores.reserve(traversal.lo.size() + 5 * query.k);
    for (ObjectId oid : traversal.lo) {
      const StObject& obj = dataset_->object(oid);
      scores.push_back(scorer_->Score(obj.loc, obj.doc, users[uid].loc,
                                      users[uid].keywords));
    }
    const size_t prefix = std::min(traversal.ro.size(), 5 * query.k);
    for (size_t i = 0; i < prefix; ++i) {
      const StObject& obj = dataset_->object(traversal.ro[i].id);
      scores.push_back(scorer_->Score(obj.loc, obj.doc, users[uid].loc,
                                      users[uid].keywords));
    }
    double lb = -1.0;
    if (scores.size() >= query.k && query.k > 0) {
      std::nth_element(scores.begin(), scores.begin() + (query.k - 1),
                       scores.end(), std::greater<>());
      lb = scores[query.k - 1];
    }
    user_rsk_lb[uid] = lb;
    return lb;
  };
  auto user_qualifies = [&](uint32_t uid, Point loc) {
    const double ub = inner.UpperBoundForUser(users[uid], ctx, loc, query.ws);
    if (!computed[uid]) {
      const double lb = user_threshold_lb(uid);
      if (lb >= 0.0 && ub < lb) return false;  // pruned without refinement
    }
    refine_user(uid);
    if (shared.rsk[uid] < 0.0) return true;
    return ub >= shared.rsk[uid];
  };

  // Initial LU_ℓ lists from the user-tree root entries.
  struct LocationState {
    std::vector<Elem> elems;
    uint64_t count = 0;
    bool done = false;
  };
  std::vector<LocationState> states(query.locations.size());
  for (size_t li = 0; li < query.locations.size(); ++li) {
    const Point loc = query.locations[li];
    for (const IurTree::Entry& e : user_tree_->root()->entries) {
      if (e.is_object()) {
        if (user_qualifies(e.id, loc)) {
          states[li].elems.push_back({nullptr, e.id});
          states[li].count += 1;
        }
      } else if (node_qualifies(e, loc)) {
        states[li].elems.push_back({&e, 0});
        states[li].count += e.count();
      }
    }
    if (states[li].elems.empty()) {
      states[li].done = true;
      ++result.best.stats.locations_pruned;
    }
  }
  result.stats.user_io.AddNodeRead();  // the user-tree root itself

  std::unordered_set<const IurTree::Node*> charged_nodes;

  while (true) {
    // Best-first: the location with the largest remaining upper-bound count.
    size_t pick = SIZE_MAX;
    for (size_t li = 0; li < states.size(); ++li) {
      if (states[li].done) continue;
      if (pick == SIZE_MAX || states[li].count > states[pick].count) pick = li;
    }
    if (pick == SIZE_MAX) break;
    if (result.best.location_index != SIZE_MAX &&
        states[pick].count <= result.best.covered_users.size()) {
      result.best.stats.early_terminated = true;
      break;
    }

    LocationState& state = states[pick];
    // Find the largest unexpanded node element, if any.
    size_t node_idx = SIZE_MAX;
    for (size_t i = 0; i < state.elems.size(); ++i) {
      if (state.elems[i].node != nullptr &&
          (node_idx == SIZE_MAX ||
           state.elems[i].count() > state.elems[node_idx].count())) {
        node_idx = i;
      }
    }

    if (node_idx != SIZE_MAX) {
      const IurTree::Entry* eu = state.elems[node_idx].node;
      const IurTree::Node* child_node = eu->child;
      if (charged_nodes.insert(child_node).second) {
        user_tree_->ChargeAccess(child_node, &result.stats.user_io);
      }
      // Replace `eu` with its qualifying children in EVERY list holding it,
      // so the node is processed at most once globally.
      for (size_t lj = 0; lj < states.size(); ++lj) {
        if (states[lj].done) continue;
        auto& elems = states[lj].elems;
        const auto it = std::find_if(
            elems.begin(), elems.end(),
            [eu](const Elem& el) { return el.node == eu; });
        if (it == elems.end()) continue;
        elems.erase(it);
        const Point loc = query.locations[lj];
        for (const IurTree::Entry& ce : child_node->entries) {
          if (ce.is_object()) {
            if (user_qualifies(ce.id, loc)) {
              elems.push_back({nullptr, ce.id});
            }
          } else if (node_qualifies(ce, loc)) {
            elems.push_back({&ce, 0});
          }
        }
        states[lj].count = 0;
        for (const Elem& el : elems) states[lj].count += el.count();
        if (elems.empty()) states[lj].done = true;
      }
      continue;
    }

    // All elements concrete: run keyword selection for this location.
    std::vector<uint32_t> lu;
    lu.reserve(state.elems.size());
    for (const Elem& el : state.elems) lu.push_back(el.user);
    std::sort(lu.begin(), lu.end());
    const Point loc = query.locations[pick];
    const std::vector<TermId> keywords =
        inner.SelectKeywords(users, lu, shared.rsk, ctx, loc, query.ws, method,
                             &result.best.stats);
    const std::vector<uint32_t> covered =
        EvaluatePlacement(users, lu, shared.rsk, *scorer_, loc,
                          ctx.VecWith(keywords), &result.best.stats);
    if (result.best.location_index == SIZE_MAX ||
        covered.size() > result.best.covered_users.size()) {
      result.best.location_index = pick;
      result.best.keywords = keywords;
      result.best.covered_users = covered;
    }
    state.done = true;
  }
  static const obs::Counter solves =
      obs::MetricRegistry::Global().GetCounter(obs::names::kMiurSolves);
  static const obs::Counter users_refined =
      obs::MetricRegistry::Global().GetCounter(obs::names::kMiurUsersRefined);
  solves.Increment();
  users_refined.Add(result.stats.users_refined);
  result.stats.object_io.Publish(obs::names::kMiurObjectIoPrefix);
  result.stats.user_io.Publish(obs::names::kMiurUserIoPrefix);
  result.best.stats.Publish(obs::names::kMiurPrefix);
  return result;
}

}  // namespace rst
