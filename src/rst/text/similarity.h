#ifndef RST_TEXT_SIMILARITY_H_
#define RST_TEXT_SIMILARITY_H_

#include <vector>

#include "rst/common/geometry.h"
#include "rst/text/term_vector.h"

namespace rst {

/// Intersection/union text summary of a group of documents — the per-node
/// payload of the IUR-tree (equivalently, the (min,max) weights of the 2016
/// paper's MIR-tree posting lists):
///   uni  — per-term maximum weight over all documents in the group;
///   intr — per-term minimum weight (a term absent from any document of the
///          group has implicit weight 0 and is dropped).
/// For a single document, uni == intr == the document vector.
struct TextSummary {
  TermVector uni;
  TermVector intr;
  uint32_t count = 0;  ///< number of documents summarized

  static TextSummary FromDoc(const TermVector& doc) {
    return TextSummary{doc, doc, 1};
  }
  static TextSummary Merge(const TextSummary& a, const TextSummary& b) {
    if (a.count == 0) return b;
    if (b.count == 0) return a;
    return TextSummary{TermVector::UnionMax(a.uni, b.uni),
                       TermVector::IntersectMin(a.intr, b.intr),
                       a.count + b.count};
  }
};

/// Non-owning view of one sorted term-weight run together with its cached
/// squared norm — the summary currency of the frozen flat-layout index
/// (rst::frozen), whose term weights live in shared contiguous pools instead
/// of per-node TermVector allocations. AsSpan() adapts a TermVector in O(1),
/// so pointer-tree and frozen-view code feed the exact same span kernels.
struct TermSpan {
  const TermWeight* data = nullptr;
  uint32_t len = 0;
  double norm_squared = 0.0;

  float Get(TermId term) const { return GetSpan(data, len, term); }
  bool Contains(TermId term) const { return ContainsSpan(data, len, term); }
};

inline TermSpan AsSpan(const TermVector& v) {
  return TermSpan{v.entries().data(), static_cast<uint32_t>(v.size()),
                  v.NormSquared()};
}

inline double Dot(const TermSpan& a, const TermSpan& b) {
  return DotSpan(a.data, a.len, b.data, b.len);
}

/// Span view of a TextSummary (or of a frozen entry's summary slices).
struct SummarySpan {
  TermSpan uni;
  TermSpan intr;
  uint32_t count = 0;
};

inline SummarySpan AsSpan(const TextSummary& s) {
  return SummarySpan{AsSpan(s.uni), AsSpan(s.intr), s.count};
}

/// Text relevance measures.
///
///  * kExtendedJaccard — EJ(u,v) = <u,v> / (|u|² + |v|² − <u,v>); the 2011
///    RSTkNN paper's measure. Symmetric, both sides weighted vectors.
///  * kCosine — <u,v> / (|u||v|). Symmetric.
///  * kSum — Σ_{t∈u.d} w(t, o.d) / Σ_{t∈u.d} cmax(t): the normalized
///    sum-form used by the 2016 paper for LM (Eq. 4), TF-IDF, and keyword
///    overlap; which of the three it realizes is determined by how the
///    *object* vectors were weighted (LM / tf·idf / binary). Asymmetric: the
///    second argument is a user whose terms act as a keyword set (its weights
///    are ignored); cmax(t) is the corpus-wide maximum object weight of t, so
///    scores are normalized to [0,1] per user (P_max in the 2016 paper).
enum class TextMeasure {
  kExtendedJaccard,
  kCosine,
  kSum,
};

const char* TextMeasureName(TextMeasure m);

/// How aggressively the extended-Jaccard upper bound is tightened.
/// kCauchySchwarz (default) additionally exploits x <= sqrt(a*b), which keeps
/// the bound far below 1 on nodes with empty intersection vectors — without
/// it, node-level pruning in the RSTkNN search rarely fires (the ablation
/// bench `fig_core_ablation_bounds` quantifies the difference).
enum class EjBoundMode {
  kNaive,          ///< den >= |intr1|^2 + |intr2|^2 - X only
  kCauchySchwarz,  ///< + the x <= sqrt(ab) leg (DESIGN.md §3.1)
};

/// Exact similarities and node-level bounds for one measure.
///
/// The bound contract — the foundation of every pruning rule in the library,
/// enforced by property tests:
///   for all documents d1 in group A and d2 in group B:
///     MinSim(A, B) <= Sim(d1, d2) <= MaxSim(A, B).
/// For kSum, "d2 in group B" means: any user keyword set u with
/// B.intr ⊆ u ⊆ B.uni (the summaries of a user-tree node).
class TextSimilarity {
 public:
  /// `corpus_max` must outlive this object and is required for kSum (per-term
  /// normalizers); ignored by the symmetric measures.
  explicit TextSimilarity(TextMeasure measure,
                          const std::vector<float>* corpus_max = nullptr,
                          EjBoundMode ej_bound = EjBoundMode::kCauchySchwarz);

  TextMeasure measure() const { return measure_; }

  /// Exact similarity between an object document and a user document /
  /// keyword set (symmetric for EJ/cosine).
  double Sim(const TermVector& object, const TermVector& user) const;

  /// Upper bound over all (object doc, user doc) pairs drawn from A and B.
  /// The span overload is the single implementation; the TextSummary form
  /// adapts and forwards, so pointer-tree and frozen-view bounds are
  /// bit-identical.
  double MaxSim(const SummarySpan& object, const SummarySpan& user) const;
  double MaxSim(const TextSummary& object, const TextSummary& user) const {
    return MaxSim(AsSpan(object), AsSpan(user));
  }

  /// Lower bound over all (object doc, user doc) pairs drawn from A and B.
  double MinSim(const SummarySpan& object, const SummarySpan& user) const;
  double MinSim(const TextSummary& object, const TextSummary& user) const {
    return MinSim(AsSpan(object), AsSpan(user));
  }

 private:
  double CorpusMax(TermId t) const {
    return (corpus_max_ && t < corpus_max_->size()) ? (*corpus_max_)[t] : 0.0;
  }

  double SumSim(const TermVector& object, const TermVector& user) const;
  double SumBound(const SummarySpan& object, const SummarySpan& user,
                  bool upper) const;

  TextMeasure measure_;
  const std::vector<float>* corpus_max_;
  EjBoundMode ej_bound_;
};

/// Combined spatial-textual scoring:
///   SimST(o, u) = alpha * (1 − dist(o,u)/max_dist) + (1 − alpha) * SimT.
struct StOptions {
  double alpha = 0.5;
  /// Normalizing distance (diameter of the data space). Distances beyond it
  /// clamp spatial similarity at 0.
  double max_dist = 1.0;
};

class StScorer {
 public:
  /// `text` must outlive the scorer.
  StScorer(const TextSimilarity* text, const StOptions& options)
      : text_(text), options_(options) {}

  const StOptions& options() const { return options_; }
  const TextSimilarity& text() const { return *text_; }

  /// Spatial similarity of a raw distance, clamped to [0, 1].
  double SpatialSim(double dist) const;

  /// Exact combined score between two located documents.
  double Score(const Point& op, const TermVector& od, const Point& up,
               const TermVector& ud) const;

  /// Upper/lower combined-score bounds between two summarized groups with
  /// bounding rectangles. For point entries pass a degenerate Rect. The span
  /// overloads are what the frozen view calls; the TextSummary forms adapt
  /// and forward.
  double MaxScore(const Rect& orect, const SummarySpan& osum, const Rect& urect,
                  const SummarySpan& usum) const;
  double MinScore(const Rect& orect, const SummarySpan& osum, const Rect& urect,
                  const SummarySpan& usum) const;
  double MaxScore(const Rect& orect, const TextSummary& osum, const Rect& urect,
                  const TextSummary& usum) const {
    return MaxScore(orect, AsSpan(osum), urect, AsSpan(usum));
  }
  double MinScore(const Rect& orect, const TextSummary& osum, const Rect& urect,
                  const TextSummary& usum) const {
    return MinScore(orect, AsSpan(osum), urect, AsSpan(usum));
  }

 private:
  const TextSimilarity* text_;
  StOptions options_;
};

}  // namespace rst

#endif  // RST_TEXT_SIMILARITY_H_
