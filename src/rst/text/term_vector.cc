#include "rst/text/term_vector.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace rst {

TermVector TermVector::FromUnsorted(std::vector<TermWeight> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const TermWeight& a, const TermWeight& b) {
              return a.term < b.term || (a.term == b.term && a.weight > b.weight);
            });
  std::vector<TermWeight> out;
  out.reserve(entries.size());
  for (const TermWeight& e : entries) {
    if (e.weight <= 0.0f) continue;
    if (!out.empty() && out.back().term == e.term) continue;  // keep max
    out.push_back(e);
  }
  return FromSorted(std::move(out));
}

TermVector TermVector::FromSorted(std::vector<TermWeight> entries) {
#ifndef NDEBUG
  for (size_t i = 1; i < entries.size(); ++i) {
    assert(entries[i - 1].term < entries[i].term);
  }
  for (const TermWeight& e : entries) assert(e.weight >= 0.0f);
#endif
  TermVector v;
  v.entries_ = std::move(entries);
  v.RecomputeCaches();
  return v;
}

TermVector TermVector::FromTerms(const std::vector<TermId>& terms) {
  std::vector<TermWeight> entries;
  entries.reserve(terms.size());
  for (TermId t : terms) entries.push_back({t, 1.0f});
  return FromUnsorted(std::move(entries));
}

void TermVector::RecomputeCaches() {
  norm_squared_ = 0.0;
  weight_sum_ = 0.0;
  for (const TermWeight& e : entries_) {
    norm_squared_ += static_cast<double>(e.weight) * e.weight;
    weight_sum_ += e.weight;
  }
}

float TermVector::Get(TermId term) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), term,
      [](const TermWeight& e, TermId t) { return e.term < t; });
  if (it == entries_.end() || it->term != term) return 0.0f;
  return it->weight;
}

bool TermVector::Contains(TermId term) const { return Get(term) > 0.0f; }

double TermVector::Dot(const TermVector& other) const {
  double dot = 0.0;
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->term < b->term) {
      ++a;
    } else if (b->term < a->term) {
      ++b;
    } else {
      dot += static_cast<double>(a->weight) * b->weight;
      ++a;
      ++b;
    }
  }
  return dot;
}

size_t TermVector::OverlapCount(const TermVector& other) const {
  size_t overlap = 0;
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->term < b->term) {
      ++a;
    } else if (b->term < a->term) {
      ++b;
    } else {
      ++overlap;
      ++a;
      ++b;
    }
  }
  return overlap;
}

TermVector TermVector::UnionMax(const TermVector& a, const TermVector& b) {
  std::vector<TermWeight> out;
  out.reserve(a.size() + b.size());
  auto ia = a.entries_.begin();
  auto ib = b.entries_.begin();
  while (ia != a.entries_.end() || ib != b.entries_.end()) {
    if (ib == b.entries_.end() ||
        (ia != a.entries_.end() && ia->term < ib->term)) {
      out.push_back(*ia++);
    } else if (ia == a.entries_.end() || ib->term < ia->term) {
      out.push_back(*ib++);
    } else {
      out.push_back({ia->term, std::max(ia->weight, ib->weight)});
      ++ia;
      ++ib;
    }
  }
  return FromSorted(std::move(out));
}

TermVector TermVector::IntersectMin(const TermVector& a, const TermVector& b) {
  std::vector<TermWeight> out;
  auto ia = a.entries_.begin();
  auto ib = b.entries_.begin();
  while (ia != a.entries_.end() && ib != b.entries_.end()) {
    if (ia->term < ib->term) {
      ++ia;
    } else if (ib->term < ia->term) {
      ++ib;
    } else {
      const float w = std::min(ia->weight, ib->weight);
      if (w > 0.0f) out.push_back({ia->term, w});
      ++ia;
      ++ib;
    }
  }
  return FromSorted(std::move(out));
}

TermVector TermVector::Restrict(const TermVector& filter) const {
  std::vector<TermWeight> out;
  auto ia = entries_.begin();
  auto ib = filter.entries_.begin();
  while (ia != entries_.end() && ib != filter.entries_.end()) {
    if (ia->term < ib->term) {
      ++ia;
    } else if (ib->term < ia->term) {
      ++ib;
    } else {
      out.push_back(*ia);
      ++ia;
      ++ib;
    }
  }
  return FromSorted(std::move(out));
}

TermVector TermVector::TopKByWeight(size_t k) const {
  if (k >= entries_.size()) return *this;
  std::vector<TermWeight> sorted = entries_;
  std::partial_sort(sorted.begin(), sorted.begin() + k, sorted.end(),
                    [](const TermWeight& a, const TermWeight& b) {
                      return a.weight > b.weight ||
                             (a.weight == b.weight && a.term < b.term);
                    });
  sorted.resize(k);
  return FromUnsorted(std::move(sorted));
}

std::string TermVector::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s%u:%.3g", i ? ", " : "",
                  entries_[i].term, entries_[i].weight);
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace rst
