#include "rst/text/term_vector.h"

#include "rst/common/check.h"
#include "rst/simd/simd.h"

#include <algorithm>
#include <cstdio>

namespace rst {

namespace {

/// Skew ratio |large| / |small| above which the merge kernels switch from
/// the linear two-pointer walk to galloping (exponential + binary search)
/// over the large side. Below it the branch-predictable linear walk wins;
/// above it the cost drops from O(|a|+|b|) to O(|small| · log |large|).
/// The crossover matters in practice: node summaries near the IUR-tree root
/// union thousands of terms while leaf documents and intersection summaries
/// hold a handful.
constexpr size_t kGallopRatio = 16;

bool Skewed(size_t small, size_t large) {
  return small * kGallopRatio < large;
}

/// First element of [first, last) with term >= `term`: doubling probes
/// narrow an octave, then binary search inside it. Amortized O(log gap)
/// when called with monotonically increasing `term` and an advancing
/// `first`.
const TermWeight* GallopLowerBound(const TermWeight* first,
                                   const TermWeight* last, TermId term) {
  if (first == last || first->term >= term) return first;
  // Invariant entering the search: (first + step/2)->term < term.
  size_t step = 1;
  while (first + step < last && (first + step)->term < term) step <<= 1;
  const TermWeight* lo = first + (step >> 1) + 1;
  const TermWeight* hi = std::min(first + step, last);
  const TermWeight* pos = std::lower_bound(
      lo, hi, term,
      [](const TermWeight& e, TermId t) { return e.term < t; });
  // All of [lo, hi) < term means the probe element (== hi) is the answer.
  return pos;
}

double DotGalloped(const TermWeight* small, size_t small_len,
                   const TermWeight* large, size_t large_len) {
  double dot = 0.0;
  const TermWeight* cur = large;
  const TermWeight* end = large + large_len;
  for (const TermWeight* e = small; e != small + small_len; ++e) {
    cur = GallopLowerBound(cur, end, e->term);
    if (cur == end) break;
    if (cur->term == e->term) {
      dot += static_cast<double>(e->weight) * cur->weight;
      ++cur;
    }
  }
  return dot;
}

size_t OverlapGalloped(const TermWeight* small, size_t small_len,
                       const TermWeight* large, size_t large_len) {
  size_t overlap = 0;
  const TermWeight* cur = large;
  const TermWeight* end = large + large_len;
  for (const TermWeight* e = small; e != small + small_len; ++e) {
    cur = GallopLowerBound(cur, end, e->term);
    if (cur == end) break;
    if (cur->term == e->term) {
      ++overlap;
      ++cur;
    }
  }
  return overlap;
}

}  // namespace

double DotSpan(const TermWeight* a, size_t a_len, const TermWeight* b,
               size_t b_len) {
  if (Skewed(a_len, b_len)) return DotGalloped(a, a_len, b, b_len);
  if (Skewed(b_len, a_len)) return DotGalloped(b, b_len, a, a_len);
  // Balanced inputs dispatch to the active SIMD level (scalar fallback).
  // Every level produces bit-identical doubles — see rst/simd/simd.h — so
  // this choice never shows up in answers, stats, or EXPLAIN output.
  return simd::Active().dot(a, a_len, b, b_len);
}

size_t OverlapCountSpan(const TermWeight* a, size_t a_len, const TermWeight* b,
                        size_t b_len) {
  if (Skewed(a_len, b_len)) return OverlapGalloped(a, a_len, b, b_len);
  if (Skewed(b_len, a_len)) return OverlapGalloped(b, b_len, a, a_len);
  return simd::Active().overlap(a, a_len, b, b_len);
}

float GetSpan(const TermWeight* a, size_t a_len, TermId term) {
  const TermWeight* it = std::lower_bound(
      a, a + a_len, term,
      [](const TermWeight& e, TermId t) { return e.term < t; });
  if (it == a + a_len || it->term != term) return 0.0f;
  return it->weight;
}

bool ContainsSpan(const TermWeight* a, size_t a_len, TermId term) {
  return GetSpan(a, a_len, term) > 0.0f;
}

double NormSquaredSpan(const TermWeight* a, size_t a_len) {
  double norm_squared = 0.0;
  for (const TermWeight* e = a; e != a + a_len; ++e) {
    norm_squared += static_cast<double>(e->weight) * e->weight;
  }
  return norm_squared;
}

TermVector TermVector::FromUnsorted(std::vector<TermWeight> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const TermWeight& a, const TermWeight& b) {
              return a.term < b.term || (a.term == b.term && a.weight > b.weight);
            });
  std::vector<TermWeight> out;
  out.reserve(entries.size());
  for (const TermWeight& e : entries) {
    if (e.weight <= 0.0f) continue;
    if (!out.empty() && out.back().term == e.term) continue;  // keep max
    out.push_back(e);
  }
  return FromSorted(std::move(out));
}

TermVector TermVector::FromSorted(std::vector<TermWeight> entries) {
#ifndef NDEBUG
  for (size_t i = 1; i < entries.size(); ++i) {
    RST_DCHECK_LT(entries[i - 1].term, entries[i].term)
        << "TermVector entries must be strictly sorted by term";
  }
  for (const TermWeight& e : entries) RST_DCHECK_GE(e.weight, 0.0f);
#endif
  TermVector v;
  v.entries_ = std::move(entries);
  v.RecomputeCaches();
  return v;
}

TermVector TermVector::FromTerms(const std::vector<TermId>& terms) {
  std::vector<TermWeight> entries;
  entries.reserve(terms.size());
  for (TermId t : terms) entries.push_back({t, 1.0f});
  return FromUnsorted(std::move(entries));
}

void TermVector::RecomputeCaches() {
  norm_squared_ = 0.0;
  weight_sum_ = 0.0;
  for (const TermWeight& e : entries_) {
    norm_squared_ += static_cast<double>(e.weight) * e.weight;
    weight_sum_ += e.weight;
  }
}

float TermVector::Get(TermId term) const {
  return GetSpan(entries_.data(), entries_.size(), term);
}

bool TermVector::Contains(TermId term) const { return Get(term) > 0.0f; }

double TermVector::Dot(const TermVector& other) const {
  return DotSpan(entries_.data(), entries_.size(), other.entries_.data(),
                 other.entries_.size());
}

size_t TermVector::OverlapCount(const TermVector& other) const {
  return OverlapCountSpan(entries_.data(), entries_.size(),
                          other.entries_.data(), other.entries_.size());
}

namespace {

/// Skewed union: walk the small side and bulk-copy the runs of the large
/// side between its terms — the runs are trivially-copyable memmoves instead
/// of per-element compare/branch steps.
TermVector UnionMaxSkewed(const std::vector<TermWeight>& small,
                          const std::vector<TermWeight>& large) {
  std::vector<TermWeight> out;
  out.reserve(small.size() + large.size());
  const TermWeight* cur = large.data();
  const TermWeight* end = large.data() + large.size();
  for (const TermWeight& e : small) {
    const TermWeight* pos = GallopLowerBound(cur, end, e.term);
    out.insert(out.end(), cur, pos);
    if (pos != end && pos->term == e.term) {
      out.push_back({e.term, std::max(e.weight, pos->weight)});
      cur = pos + 1;
    } else {
      out.push_back(e);
      cur = pos;
    }
  }
  out.insert(out.end(), cur, end);
  return TermVector::FromSorted(std::move(out));
}

}  // namespace

TermVector TermVector::UnionMax(const TermVector& a, const TermVector& b) {
  if (Skewed(a.size(), b.size())) return UnionMaxSkewed(a.entries_, b.entries_);
  if (Skewed(b.size(), a.size())) return UnionMaxSkewed(b.entries_, a.entries_);
  std::vector<TermWeight> out(a.size() + b.size());
  const size_t n = simd::Active().union_max(a.entries_.data(), a.size(),
                                            b.entries_.data(), b.size(),
                                            out.data());
  out.resize(n);
  return FromSorted(std::move(out));
}

namespace {

/// Skewed intersection: the result can hold at most |small| terms, so walk
/// the small side and gallop in the large one.
TermVector IntersectMinGalloped(const std::vector<TermWeight>& small,
                                const std::vector<TermWeight>& large) {
  std::vector<TermWeight> out;
  out.reserve(small.size());
  const TermWeight* cur = large.data();
  const TermWeight* end = large.data() + large.size();
  for (const TermWeight& e : small) {
    cur = GallopLowerBound(cur, end, e.term);
    if (cur == end) break;
    if (cur->term == e.term) {
      const float w = std::min(e.weight, cur->weight);
      if (w > 0.0f) out.push_back({e.term, w});
      ++cur;
    }
  }
  return TermVector::FromSorted(std::move(out));
}

}  // namespace

TermVector TermVector::IntersectMin(const TermVector& a, const TermVector& b) {
  if (Skewed(a.size(), b.size())) {
    return IntersectMinGalloped(a.entries_, b.entries_);
  }
  if (Skewed(b.size(), a.size())) {
    return IntersectMinGalloped(b.entries_, a.entries_);
  }
  std::vector<TermWeight> out(std::min(a.size(), b.size()));
  const size_t n = simd::Active().intersect_min(a.entries_.data(), a.size(),
                                                b.entries_.data(), b.size(),
                                                out.data());
  out.resize(n);
  return FromSorted(std::move(out));
}

TermVector TermVector::Restrict(const TermVector& filter) const {
  if (Skewed(entries_.size(), filter.entries_.size())) {
    // This vector is tiny: keep each of its entries whose term the filter
    // contains, galloping through the filter.
    std::vector<TermWeight> out;
    out.reserve(entries_.size());
    const TermWeight* cur = filter.entries_.data();
    const TermWeight* end = cur + filter.entries_.size();
    for (const TermWeight& e : entries_) {
      cur = GallopLowerBound(cur, end, e.term);
      if (cur == end) break;
      if (cur->term == e.term) {
        out.push_back(e);
        ++cur;
      }
    }
    return FromSorted(std::move(out));
  }
  if (Skewed(filter.entries_.size(), entries_.size())) {
    // The filter is tiny: look each filter term up in this vector.
    std::vector<TermWeight> out;
    out.reserve(filter.entries_.size());
    const TermWeight* cur = entries_.data();
    const TermWeight* end = cur + entries_.size();
    for (const TermWeight& e : filter.entries_) {
      cur = GallopLowerBound(cur, end, e.term);
      if (cur == end) break;
      if (cur->term == e.term) {
        out.push_back(*cur);
        ++cur;
      }
    }
    return FromSorted(std::move(out));
  }
  std::vector<TermWeight> out;
  auto ia = entries_.begin();
  auto ib = filter.entries_.begin();
  while (ia != entries_.end() && ib != filter.entries_.end()) {
    if (ia->term < ib->term) {
      ++ia;
    } else if (ib->term < ia->term) {
      ++ib;
    } else {
      out.push_back(*ia);
      ++ia;
      ++ib;
    }
  }
  return FromSorted(std::move(out));
}

TermVector TermVector::TopKByWeight(size_t k) const {
  if (k >= entries_.size()) return *this;
  std::vector<TermWeight> sorted = entries_;
  std::partial_sort(sorted.begin(), sorted.begin() + k, sorted.end(),
                    [](const TermWeight& a, const TermWeight& b) {
                      return a.weight > b.weight ||
                             (a.weight == b.weight && a.term < b.term);
                    });
  sorted.resize(k);
  return FromUnsorted(std::move(sorted));
}

std::string TermVector::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s%u:%.3g", i ? ", " : "",
                  entries_[i].term, entries_[i].weight);
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace rst
