#ifndef RST_TEXT_WEIGHTING_H_
#define RST_TEXT_WEIGHTING_H_

#include "rst/text/corpus_stats.h"
#include "rst/text/term_vector.h"

namespace rst {

/// Term-weighting schemes used to turn raw documents into weighted vectors.
///
///  * kTfIdf          w(t,d) = tf(t,d) * log(|D| / df(t))
///  * kLanguageModel  w(t,d) = (1-λ) tf(t,d)/|d| + λ tf(t,C)/|C|
///                    (Jelinek–Mercer smoothing; the 2016 paper's Eq. 3)
///  * kBinary         w(t,d) = 1 if tf(t,d) > 0 (keyword-overlap measure)
enum class Weighting {
  kTfIdf,
  kLanguageModel,
  kBinary,
};

struct WeightingOptions {
  Weighting scheme = Weighting::kTfIdf;
  /// Jelinek–Mercer λ for kLanguageModel. Zhai & Lafferty recommend ~0.1 for
  /// short (title-like) queries — the regime of spatial-keyword search.
  double lambda = 0.1;
};

const char* WeightingName(Weighting w);

/// Builds the weighted vector of `doc` under `options`.
TermVector BuildWeightedVector(const RawDocument& doc, const CorpusStats& stats,
                               const WeightingOptions& options);

/// Per-term maximum weight over a set of weighted document vectors; position
/// t holds max_d w(t,d). Used as the normalizer cmax(t) by the sum-form text
/// measures (P_max in the 2016 paper's Eq. 4).
std::vector<float> ComputeCorpusMaxWeights(
    const std::vector<TermVector>& docs, size_t vocab_size);

}  // namespace rst

#endif  // RST_TEXT_WEIGHTING_H_
