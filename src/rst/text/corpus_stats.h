#ifndef RST_TEXT_CORPUS_STATS_H_
#define RST_TEXT_CORPUS_STATS_H_

#include <cstdint>
#include <vector>

#include "rst/text/term_vector.h"

namespace rst {

/// Raw document representation before weighting: (term, frequency) pairs.
struct RawDocument {
  std::vector<std::pair<TermId, uint32_t>> term_counts;

  /// Total token count |d|.
  uint64_t Length() const {
    uint64_t len = 0;
    for (const auto& [t, c] : term_counts) len += c;
    return len;
  }

  static RawDocument FromTokens(const std::vector<TermId>& tokens);
};

/// Collection-level statistics required by TF-IDF and language-model
/// weighting: document frequencies df(t), collection term frequencies
/// tf(t, C), total collection length |C|, and the number of documents.
class CorpusStats {
 public:
  CorpusStats() = default;

  /// Accounts one document into the statistics.
  void AddDocument(const RawDocument& doc);

  size_t num_docs() const { return num_docs_; }
  uint64_t total_terms() const { return total_terms_; }
  size_t vocab_size() const { return doc_freq_.size(); }

  uint32_t DocFreq(TermId t) const {
    return t < doc_freq_.size() ? doc_freq_[t] : 0;
  }
  uint64_t CollectionFreq(TermId t) const {
    return t < coll_freq_.size() ? coll_freq_[t] : 0;
  }

  /// idf(t) = log(|D| / df(t)); 0 for unseen terms.
  double Idf(TermId t) const;

  /// Maximum-likelihood estimate tf(t, C) / |C|.
  double CollectionProb(TermId t) const;

 private:
  void EnsureSize(TermId t);

  size_t num_docs_ = 0;
  uint64_t total_terms_ = 0;
  std::vector<uint32_t> doc_freq_;
  std::vector<uint64_t> coll_freq_;
};

}  // namespace rst

#endif  // RST_TEXT_CORPUS_STATS_H_
