#ifndef RST_TEXT_VOCABULARY_H_
#define RST_TEXT_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rst/text/term_vector.h"

namespace rst {

/// Bidirectional mapping between term strings and dense TermIds.
/// Synthetic generators allocate ids directly; the vocabulary is used by the
/// CSV loaders, the examples, and anywhere human-readable terms appear.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `term`, interning it if new.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id of `term` or kNotFound.
  static constexpr TermId kNotFound = 0xFFFFFFFFu;
  TermId Find(std::string_view term) const;

  /// The string for `id`. Requires id < size().
  const std::string& TermString(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

  /// Tokenizes whitespace/punctuation-separated lowercase terms and interns
  /// each; returns the id sequence (with duplicates, i.e. raw tokens).
  std::vector<TermId> TokenizeAndAdd(std::string_view text);

 private:
  std::vector<std::string> terms_;
  std::unordered_map<std::string, TermId> index_;
};

}  // namespace rst

#endif  // RST_TEXT_VOCABULARY_H_
