#include "rst/text/corpus_stats.h"

#include <algorithm>
#include <cmath>

namespace rst {

RawDocument RawDocument::FromTokens(const std::vector<TermId>& tokens) {
  std::vector<TermId> sorted = tokens;
  std::sort(sorted.begin(), sorted.end());
  RawDocument doc;
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    doc.term_counts.push_back({sorted[i], static_cast<uint32_t>(j - i)});
    i = j;
  }
  return doc;
}

void CorpusStats::EnsureSize(TermId t) {
  if (t >= doc_freq_.size()) {
    doc_freq_.resize(t + 1, 0);
    coll_freq_.resize(t + 1, 0);
  }
}

void CorpusStats::AddDocument(const RawDocument& doc) {
  ++num_docs_;
  for (const auto& [term, count] : doc.term_counts) {
    if (count == 0) continue;
    EnsureSize(term);
    doc_freq_[term] += 1;
    coll_freq_[term] += count;
    total_terms_ += count;
  }
}

double CorpusStats::Idf(TermId t) const {
  const uint32_t df = DocFreq(t);
  if (df == 0 || num_docs_ == 0) return 0.0;
  return std::log(static_cast<double>(num_docs_) / df);
}

double CorpusStats::CollectionProb(TermId t) const {
  if (total_terms_ == 0) return 0.0;
  return static_cast<double>(CollectionFreq(t)) / total_terms_;
}

}  // namespace rst
