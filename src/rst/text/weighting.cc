#include "rst/text/weighting.h"

#include <algorithm>

namespace rst {

const char* WeightingName(Weighting w) {
  switch (w) {
    case Weighting::kTfIdf:
      return "tfidf";
    case Weighting::kLanguageModel:
      return "lm";
    case Weighting::kBinary:
      return "binary";
  }
  return "unknown";
}

TermVector BuildWeightedVector(const RawDocument& doc, const CorpusStats& stats,
                               const WeightingOptions& options) {
  std::vector<TermWeight> entries;
  entries.reserve(doc.term_counts.size());
  const double doc_len = static_cast<double>(doc.Length());
  for (const auto& [term, count] : doc.term_counts) {
    if (count == 0) continue;
    double w = 0.0;
    switch (options.scheme) {
      case Weighting::kTfIdf:
        w = static_cast<double>(count) * stats.Idf(term);
        break;
      case Weighting::kLanguageModel:
        w = (1.0 - options.lambda) * (doc_len > 0 ? count / doc_len : 0.0) +
            options.lambda * stats.CollectionProb(term);
        break;
      case Weighting::kBinary:
        w = 1.0;
        break;
    }
    if (w > 0.0) entries.push_back({term, static_cast<float>(w)});
  }
  return TermVector::FromUnsorted(std::move(entries));
}

std::vector<float> ComputeCorpusMaxWeights(const std::vector<TermVector>& docs,
                                           size_t vocab_size) {
  std::vector<float> max_weights(vocab_size, 0.0f);
  for (const TermVector& doc : docs) {
    for (const TermWeight& e : doc.entries()) {
      if (e.term >= max_weights.size()) max_weights.resize(e.term + 1, 0.0f);
      max_weights[e.term] = std::max(max_weights[e.term], e.weight);
    }
  }
  return max_weights;
}

}  // namespace rst
