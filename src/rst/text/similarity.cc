#include "rst/text/similarity.h"

#include "rst/common/check.h"

#include <algorithm>
#include <cmath>

namespace rst {

namespace {

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

/// Extended Jaccard of exact vectors.
double ExtendedJaccard(const TermVector& a, const TermVector& b) {
  const double dot = a.Dot(b);
  const double den = a.NormSquared() + b.NormSquared() - dot;
  if (den <= 0.0) return 0.0;  // both vectors empty
  return dot / den;
}

double Cosine(const TermVector& a, const TermVector& b) {
  const double dot = a.Dot(b);
  if (dot <= 0.0) return 0.0;
  return dot / std::sqrt(a.NormSquared() * b.NormSquared());
}

/// Upper bound of EJ(d1, d2) = x/(a+b−x) over all d1 in group A, d2 in
/// group B, where x = <d1,d2> ≤ X := <A.uni, B.uni>, a = |d1|² ≥ A :=
/// |A.intr|², b ≥ B := |B.intr|², and (Cauchy–Schwarz on non-negative
/// vectors) x ≤ √(ab). For fixed x the denominator is minimized by the
/// smallest feasible a+b: A+B when A·B ≥ x², otherwise on the curve ab = x²
/// at a* = clamp(x, A, x²/B), giving a* + x²/a* − x. The resulting bound
/// x/den(x) is increasing in x, so evaluating at x = X is the maximum. The
/// Cauchy–Schwarz leg keeps the bound far below 1 even when intersection
/// vectors are empty — without it, node-level pruning in the RSTkNN
/// branch-and-bound never fires (DESIGN.md §3.1).
double ExtendedJaccardMax(const SummarySpan& a, const SummarySpan& b,
                          EjBoundMode mode) {
  const double x = Dot(a.uni, b.uni);
  if (x <= 0.0) return 0.0;  // no shared term anywhere in the two groups
  const double na = a.intr.norm_squared;
  const double nb = b.intr.norm_squared;
  double den;
  if (na * nb >= x * x) {
    den = na + nb - x;  // A+B ≥ 2√(AB) ≥ 2x, so den ≥ x > 0
  } else if (mode == EjBoundMode::kNaive) {
    den = na + nb - x;  // may be ≤ 0: collapses to the trivial bound 1
  } else {
    double a_star = x;  // unconstrained minimizer of a + x²/a
    if (a_star < na) a_star = na;
    if (nb > 0.0 && a_star > x * x / nb) a_star = x * x / nb;
    den = a_star + x * x / a_star - x;
  }
  if (den <= 0.0) return 1.0;
  return Clamp01(x / den);
}

double ExtendedJaccardMin(const SummarySpan& a, const SummarySpan& b) {
  const double x = Dot(a.intr, b.intr);
  if (x <= 0.0) return 0.0;
  const double den = a.uni.norm_squared + b.uni.norm_squared - x;
  if (den <= 0.0) return 1.0;  // unreachable with x <= den by Cauchy–Schwarz
  return Clamp01(x / den);
}

double CosineMax(const SummarySpan& a, const SummarySpan& b) {
  const double x = Dot(a.uni, b.uni);
  if (x <= 0.0) return 0.0;
  const double n2 = a.intr.norm_squared * b.intr.norm_squared;
  if (n2 <= 0.0) return 1.0;  // some doc may be ~parallel; cannot tighten
  return Clamp01(x / std::sqrt(n2));
}

double CosineMin(const SummarySpan& a, const SummarySpan& b) {
  const double x = Dot(a.intr, b.intr);
  if (x <= 0.0) return 0.0;
  const double n2 = a.uni.norm_squared * b.uni.norm_squared;
  RST_DCHECK_GT(n2, 0.0);
  return Clamp01(x / std::sqrt(n2));
}

struct RatioTerm {
  double num;  // object-side weight bound for the term
  double den;  // corpus normalizer cmax(t)
};

/// Extremal value of (Σ num) / (Σ den) over keyword sets that must contain
/// all `required` terms and may add any subset of `optional` terms. This is
/// the exact subset-extremal normalized-sum bound (DESIGN.md §3.1): sort the
/// optional terms by num/den and greedily add while the ratio improves
/// (`upper`) or worsens (!`upper`). With an empty required set the extremum
/// over non-empty sets starts from the single best/worst-ratio term.
double ExtremalRatioSum(const std::vector<RatioTerm>& required,
                        std::vector<RatioTerm> optional, bool upper) {
  double num = 0.0, den = 0.0;
  for (const RatioTerm& t : required) {
    if (t.den <= 0.0 && t.num > 0.0) return upper ? 1.0 : 0.0;  // see header
    num += t.num;
    den += t.den;
  }
  std::sort(optional.begin(), optional.end(),
            [upper](const RatioTerm& a, const RatioTerm& b) {
              // Sort by ratio, descending for upper / ascending for lower.
              const double lhs = a.num * b.den;
              const double rhs = b.num * a.den;
              return upper ? lhs > rhs : lhs < rhs;
            });
  size_t start = 0;
  if (required.empty()) {
    if (optional.empty()) return 0.0;  // no user keywords at all
    const RatioTerm& first = optional.front();
    if (first.den <= 0.0) return upper && first.num > 0.0 ? 1.0 : 0.0;
    num = first.num;
    den = first.den;
    start = 1;
  }
  if (den <= 0.0) return 0.0;
  for (size_t i = start; i < optional.size(); ++i) {
    const RatioTerm& t = optional[i];
    if (t.den <= 0.0) {
      if (upper && t.num > 0.0) return 1.0;
      continue;
    }
    const bool improves =
        upper ? t.num * den > num * t.den : t.num * den < num * t.den;
    if (!improves) break;  // sorted: no later term can improve either
    num += t.num;
    den += t.den;
  }
  return Clamp01(num / den);
}

}  // namespace

const char* TextMeasureName(TextMeasure m) {
  switch (m) {
    case TextMeasure::kExtendedJaccard:
      return "extended_jaccard";
    case TextMeasure::kCosine:
      return "cosine";
    case TextMeasure::kSum:
      return "normalized_sum";
  }
  return "unknown";
}

TextSimilarity::TextSimilarity(TextMeasure measure,
                               const std::vector<float>* corpus_max,
                               EjBoundMode ej_bound)
    : measure_(measure), corpus_max_(corpus_max), ej_bound_(ej_bound) {
  RST_CHECK(measure_ != TextMeasure::kSum || corpus_max_ != nullptr)
      << "kSum needs per-term corpus maxima";
}

double TextSimilarity::SumSim(const TermVector& object,
                              const TermVector& user) const {
  double num = 0.0, den = 0.0;
  for (const TermWeight& e : user.entries()) {
    num += object.Get(e.term);
    den += CorpusMax(e.term);
  }
  if (den <= 0.0) return 0.0;
  return Clamp01(num / den);
}

double TextSimilarity::SumBound(const SummarySpan& object,
                                const SummarySpan& user, bool upper) const {
  const TermSpan& obj_side = upper ? object.uni : object.intr;
  std::vector<RatioTerm> required;
  std::vector<RatioTerm> optional;
  required.reserve(user.intr.len);
  optional.reserve(user.uni.len);
  for (const TermWeight* e = user.uni.data; e != user.uni.data + user.uni.len;
       ++e) {
    const RatioTerm t{static_cast<double>(obj_side.Get(e->term)),
                      CorpusMax(e->term)};
    if (user.intr.Contains(e->term)) {
      required.push_back(t);
    } else {
      optional.push_back(t);
    }
  }
  return ExtremalRatioSum(required, std::move(optional), upper);
}

double TextSimilarity::Sim(const TermVector& object,
                           const TermVector& user) const {
  switch (measure_) {
    case TextMeasure::kExtendedJaccard:
      return ExtendedJaccard(object, user);
    case TextMeasure::kCosine:
      return Cosine(object, user);
    case TextMeasure::kSum:
      return SumSim(object, user);
  }
  return 0.0;
}

double TextSimilarity::MaxSim(const SummarySpan& object,
                              const SummarySpan& user) const {
  switch (measure_) {
    case TextMeasure::kExtendedJaccard:
      return ExtendedJaccardMax(object, user, ej_bound_);
    case TextMeasure::kCosine:
      return CosineMax(object, user);
    case TextMeasure::kSum:
      return SumBound(object, user, /*upper=*/true);
  }
  return 1.0;
}

double TextSimilarity::MinSim(const SummarySpan& object,
                              const SummarySpan& user) const {
  switch (measure_) {
    case TextMeasure::kExtendedJaccard:
      return ExtendedJaccardMin(object, user);
    case TextMeasure::kCosine:
      return CosineMin(object, user);
    case TextMeasure::kSum:
      return SumBound(object, user, /*upper=*/false);
  }
  return 0.0;
}

double StScorer::SpatialSim(double dist) const {
  if (options_.max_dist <= 0.0) return dist <= 0.0 ? 1.0 : 0.0;
  return Clamp01(1.0 - dist / options_.max_dist);
}

double StScorer::Score(const Point& op, const TermVector& od, const Point& up,
                       const TermVector& ud) const {
  return options_.alpha * SpatialSim(Distance(op, up)) +
         (1.0 - options_.alpha) * text_->Sim(od, ud);
}

double StScorer::MaxScore(const Rect& orect, const SummarySpan& osum,
                          const Rect& urect, const SummarySpan& usum) const {
  return options_.alpha * SpatialSim(MinDistance(orect, urect)) +
         (1.0 - options_.alpha) * text_->MaxSim(osum, usum);
}

double StScorer::MinScore(const Rect& orect, const SummarySpan& osum,
                          const Rect& urect, const SummarySpan& usum) const {
  return options_.alpha * SpatialSim(MaxDistance(orect, urect)) +
         (1.0 - options_.alpha) * text_->MinSim(osum, usum);
}

}  // namespace rst
