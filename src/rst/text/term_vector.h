#ifndef RST_TEXT_TERM_VECTOR_H_
#define RST_TEXT_TERM_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rst {

/// Integer term identifier assigned by a Vocabulary.
using TermId = uint32_t;

struct TermWeight {
  TermId term = 0;
  float weight = 0.0f;

  friend bool operator==(const TermWeight& a, const TermWeight& b) {
    return a.term == b.term && a.weight == b.weight;
  }
};

/// A sparse, weighted term vector: entries sorted by term id, unique terms,
/// non-negative weights. This is the representation of both object documents
/// and the intersection/union summaries stored in IUR-/MIR-tree nodes.
///
/// All binary operations (dot product, union-max, intersect-min, restrict)
/// merge the sorted entry lists. The merges are adaptive: balanced inputs
/// take the linear two-pointer walk (O(|a| + |b|)); when one side is much
/// shorter the kernel gallops (exponential + binary search) through the long
/// side instead, costing O(|small| · log |large|) — the common shape when a
/// leaf document meets a root-level union summary.
class TermVector {
 public:
  TermVector() = default;

  /// Builds from possibly unsorted/duplicated entries; duplicate terms keep
  /// the maximum weight. Entries with weight <= 0 are dropped.
  static TermVector FromUnsorted(std::vector<TermWeight> entries);

  /// Builds from entries already sorted by unique term id (checked in debug).
  static TermVector FromSorted(std::vector<TermWeight> entries);

  /// Binary vector (weight 1.0) over a set of terms.
  static TermVector FromTerms(const std::vector<TermId>& terms);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const std::vector<TermWeight>& entries() const { return entries_; }

  /// Weight of `term`, or 0 if absent. O(log n).
  float Get(TermId term) const;
  bool Contains(TermId term) const;

  /// <a, b> over shared terms.
  double Dot(const TermVector& other) const;

  /// Sum of squared weights, cached at construction.
  double NormSquared() const { return norm_squared_; }

  /// Sum of weights.
  double WeightSum() const { return weight_sum_; }

  /// Number of terms present in both vectors.
  size_t OverlapCount(const TermVector& other) const;

  /// Per-term maximum of the two vectors over the union of their terms.
  static TermVector UnionMax(const TermVector& a, const TermVector& b);

  /// Per-term minimum over the *intersection* of their terms (a term missing
  /// from either side has implicit weight 0 and is dropped).
  static TermVector IntersectMin(const TermVector& a, const TermVector& b);

  /// This vector restricted to terms present in `filter`.
  TermVector Restrict(const TermVector& filter) const;

  /// The `k` terms of this vector with the largest weights (ties broken by
  /// smaller term id), returned as a TermVector.
  TermVector TopKByWeight(size_t k) const;

  std::string ToString() const;

  friend bool operator==(const TermVector& a, const TermVector& b) {
    return a.entries_ == b.entries_;
  }

 private:
  void RecomputeCaches();

  std::vector<TermWeight> entries_;
  double norm_squared_ = 0.0;
  double weight_sum_ = 0.0;
};

/// Span kernels: non-owning variants of the read-only merge kernels over raw
/// sorted runs (term ids ascending, unique, weights >= 0). TermVector
/// delegates to these, and the frozen flat-layout index (rst::frozen) calls
/// them directly on its shared term-weight pools — both paths execute the
/// exact same adaptive galloping code, so every similarity/bound double is
/// bit-identical between the pointer tree and the frozen view.
double DotSpan(const TermWeight* a, size_t a_len, const TermWeight* b,
               size_t b_len);
size_t OverlapCountSpan(const TermWeight* a, size_t a_len, const TermWeight* b,
                        size_t b_len);

/// Weight of `term` in a sorted span, 0 if absent. O(log n).
float GetSpan(const TermWeight* a, size_t a_len, TermId term);
bool ContainsSpan(const TermWeight* a, size_t a_len, TermId term);

/// Sum of squared weights accumulated in entry order — the same addition
/// sequence as the TermVector construction cache, so the result matches
/// TermVector::NormSquared() bit-for-bit.
double NormSquaredSpan(const TermWeight* a, size_t a_len);

}  // namespace rst

#endif  // RST_TEXT_TERM_VECTOR_H_
