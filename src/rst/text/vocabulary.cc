#include "rst/text/vocabulary.h"

#include <cctype>

namespace rst {

TermId Vocabulary::GetOrAdd(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Find(std::string_view term) const {
  auto it = index_.find(std::string(term));
  if (it == index_.end()) return kNotFound;
  return it->second;
}

std::vector<TermId> Vocabulary::TokenizeAndAdd(std::string_view text) {
  std::vector<TermId> out;
  std::string token;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      token.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!token.empty()) {
      out.push_back(GetOrAdd(token));
      token.clear();
    }
  }
  if (!token.empty()) out.push_back(GetOrAdd(token));
  return out;
}

}  // namespace rst
