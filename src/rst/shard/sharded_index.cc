#include "rst/shard/sharded_index.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "rst/common/check.h"
#include "rst/common/file_util.h"
#include "rst/exec/thread_pool.h"

namespace rst {
namespace shard {

namespace {

constexpr char kManifestMagic[] = "rst-shards";
constexpr uint32_t kManifestVersion = 1;

std::string ShardPath(const std::string& dir, size_t s) {
  return dir + "/shard_" + std::to_string(s) + ".frz";
}

/// Copies a frozen summary slice back into an owning TextSummary. FromSorted
/// rebuilds the cached norms in slice order, matching the frozen layout's
/// own norm recomputation bit-for-bit.
TextSummary OwnSummary(const SummarySpan& span) {
  TextSummary out;
  out.uni = TermVector::FromSorted(
      std::vector<TermWeight>(span.uni.data, span.uni.data + span.uni.len));
  out.intr = TermVector::FromSorted(
      std::vector<TermWeight>(span.intr.data, span.intr.data + span.intr.len));
  out.count = span.count;
  return out;
}

}  // namespace

ShardedIndex ShardedIndex::Build(const Dataset& dataset,
                                 const ShardOptions& options,
                                 const std::vector<uint32_t>* cluster_of,
                                 exec::ThreadPool* pool) {
  ShardedIndex index;
  const size_t n = dataset.size();
  if (n == 0) return index;
  const size_t num_shards =
      std::min(std::max<size_t>(options.num_shards, 1), n);

  // Shard-level STR tiling: balanced x-slabs, then balanced y-runs within
  // each slab, so tiles stay squarish — a slab-only cut would produce
  // world-height shards whose MBRs the scatter-gather bound can never prune.
  // Ties break on object id, so the partition is a pure function of the
  // dataset and the whole forest is deterministic.
  std::vector<ObjectId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<ObjectId>(i);
  std::sort(order.begin(), order.end(), [&](ObjectId a, ObjectId b) {
    const Point& pa = dataset.object(a).loc;
    const Point& pb = dataset.object(b).loc;
    if (pa.x != pb.x) return pa.x < pb.x;
    if (pa.y != pb.y) return pa.y < pb.y;
    return a < b;
  });
  const size_t num_slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_shards))));
  std::vector<std::vector<ObjectId>> shard_members(num_shards);
  size_t shard_index = 0;
  size_t runs_done = 0;
  for (size_t slab = 0; slab < num_slabs; ++slab) {
    // Slab `slab` carries `runs` of the K shards; its object share is
    // proportional, with floor boundaries guaranteeing every run (and hence
    // every shard) at least one object when K <= N.
    const size_t runs = num_shards / num_slabs +
                        (slab < num_shards % num_slabs ? 1 : 0);
    if (runs == 0) continue;
    const size_t lo = n * runs_done / num_shards;
    const size_t hi = n * (runs_done + runs) / num_shards;
    runs_done += runs;
    std::sort(order.begin() + lo, order.begin() + hi,
              [&](ObjectId a, ObjectId b) {
                const Point& pa = dataset.object(a).loc;
                const Point& pb = dataset.object(b).loc;
                if (pa.y != pb.y) return pa.y < pb.y;
                if (pa.x != pb.x) return pa.x < pb.x;
                return a < b;
              });
    const size_t slab_n = hi - lo;
    for (size_t run = 0; run < runs; ++run) {
      const size_t rlo = lo + slab_n * run / runs;
      const size_t rhi = lo + slab_n * (run + 1) / runs;
      auto& members = shard_members[shard_index++];
      members.assign(order.begin() + rlo, order.begin() + rhi);
      std::sort(members.begin(), members.end());
    }
  }
  RST_CHECK_EQ(shard_index, num_shards);

  index.shards_.resize(num_shards);
  auto build_shard = [&](size_t s) {
    std::vector<IurTree::Item> items;
    items.reserve(shard_members[s].size());
    for (const ObjectId id : shard_members[s]) {
      const StObject& obj = dataset.object(id);
      items.push_back(IurTree::Item{id, obj.loc, &obj.doc});
    }
    // cluster_of maps *global* object ids, so it passes straight through.
    const IurTree tree = IurTree::Build(std::move(items), options.tree,
                                        cluster_of);
    index.shards_[s] = frozen::FrozenTree::Freeze(tree);
  };
  if (pool != nullptr && pool->num_threads() > 1 && num_shards > 1) {
    pool->ParallelFor(num_shards, 1, [&](size_t s, size_t) { build_shard(s); });
  } else {
    for (size_t s = 0; s < num_shards; ++s) build_shard(s);
  }
  index.RecomputeDerived();
  return index;
}

void ShardedIndex::RecomputeDerived() {
  const size_t num_shards = shards_.size();
  mbrs_.assign(num_shards, Rect{});
  summaries_.assign(num_shards, TextSummary{});
  size_ = 0;
  ObjectId max_id = 0;
  bool any = false;
  for (const frozen::FrozenTree& tree : shards_) {
    size_ += tree.size();
    for (uint32_t e = 0, ne = tree.num_entries(); e < ne; ++e) {
      if (tree.IsObject(e)) {
        max_id = std::max(max_id, tree.ObjectIdOf(e));
        any = true;
      }
    }
  }
  shard_of_.assign(any ? max_id + 1 : 0, 0);
  for (size_t s = 0; s < num_shards; ++s) {
    const frozen::FrozenTree& tree = shards_[s];
    if (tree.size() == 0) continue;
    for (uint32_t e = 0, ne = tree.num_entries(); e < ne; ++e) {
      if (tree.IsObject(e)) shard_of_[tree.ObjectIdOf(e)] = s;
    }
    // The shard MBR and text summary fold over the ROOT entries only: entry
    // rects/summaries are exact subtree aggregates, so the fold equals the
    // fold over every document at O(fanout) cost instead of O(objects).
    Rect mbr;
    TextSummary summary;
    const uint32_t root = tree.root();
    for (uint32_t i = 0; i < tree.EntryCount(root); ++i) {
      const uint32_t e = tree.EntryBegin(root) + i;
      mbr.Extend(tree.EntryRect(e));
      summary = TextSummary::Merge(summary, OwnSummary(tree.Summary(e)));
    }
    mbrs_[s] = mbr;
    summaries_[s] = summary;
  }
}

Status ShardedIndex::SaveDir(const std::string& dir) const {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir failed for " + dir);
  }
  std::ostringstream manifest;
  manifest << kManifestMagic << "\n"
           << "version " << kManifestVersion << "\n"
           << "shards " << shards_.size() << "\n"
           << "objects " << size_ << "\n";
  Status status = WriteStringToFileAtomic(dir + "/MANIFEST", manifest.str());
  if (!status.ok()) return status;
  for (size_t s = 0; s < shards_.size(); ++s) {
    status = shards_[s].Save(ShardPath(dir, s));
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Result<ShardedIndex> ShardedIndex::LoadDir(const std::string& dir) {
  Result<std::string> manifest = ReadFileToString(dir + "/MANIFEST");
  if (!manifest.ok()) return manifest.status();
  std::istringstream in(manifest.value());
  std::string magic;
  if (!std::getline(in, magic) || magic != kManifestMagic) {
    return Status::InvalidArgument("bad shard manifest magic in " + dir);
  }
  std::string key;
  uint64_t version = 0, num_shards = 0, objects = 0;
  if (!(in >> key >> version) || key != "version" ||
      version != kManifestVersion) {
    return Status::InvalidArgument("unsupported shard manifest version");
  }
  if (!(in >> key >> num_shards) || key != "shards") {
    return Status::InvalidArgument("shard manifest missing shard count");
  }
  if (!(in >> key >> objects) || key != "objects") {
    return Status::InvalidArgument("shard manifest missing object count");
  }
  ShardedIndex index;
  index.shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    Result<frozen::FrozenTree> tree = frozen::FrozenTree::Load(ShardPath(dir, s));
    if (!tree.ok()) return tree.status();
    index.shards_.push_back(std::move(tree).value());
  }
  index.RecomputeDerived();
  if (index.size_ != objects) {
    return Status::InvalidArgument(
        "shard manifest object count does not match loaded shards");
  }
  return index;
}

Status ShardedIndex::CheckInvariants() const {
  uint64_t total = 0;
  std::vector<uint8_t> seen(shard_of_.size(), 0);
  for (size_t s = 0; s < shards_.size(); ++s) {
    Status status = shards_[s].CheckInvariants();
    if (!status.ok()) return status;
    total += shards_[s].size();
    const frozen::FrozenTree& tree = shards_[s];
    for (uint32_t e = 0, ne = tree.num_entries(); e < ne; ++e) {
      if (!tree.IsObject(e)) continue;
      const ObjectId id = tree.ObjectIdOf(e);
      if (id >= seen.size() || seen[id]++) {
        return Status::Internal("object " + std::to_string(id) +
                                " indexed by more than one shard");
      }
      if (shard_of_[id] != s) {
        return Status::Internal("shard_of mismatch for object " +
                                std::to_string(id));
      }
    }
  }
  if (total != size_) {
    return Status::Internal("shard sizes do not sum to the indexed total");
  }
  return Status::Ok();
}

}  // namespace shard
}  // namespace rst
