#ifndef RST_SHARD_SHARDED_SEARCH_H_
#define RST_SHARD_SHARDED_SEARCH_H_

#include <cstdint>
#include <vector>

#include "rst/data/dataset.h"
#include "rst/rstknn/rstknn.h"
#include "rst/shard/sharded_index.h"
#include "rst/text/similarity.h"

namespace rst {

namespace exec {
class ThreadPool;
}  // namespace exec

namespace shard {

/// Shard-level triage outcomes of one query (or a batch, after Merge):
/// every shard lands in exactly one bucket, so the three counters sum to
/// num_shards per query.
struct ShardedStats {
  uint64_t shards_pruned = 0;    ///< whole shard pruned by the forest probe
  uint64_t shards_reported = 0;  ///< whole shard reported wholesale
  uint64_t shards_searched = 0;  ///< shard searched by the full algorithm

  /// Adds the counters to the global registry (rstknn.shard.*).
  void Publish() const;
  ShardedStats& Merge(const ShardedStats& other);
};

struct ShardedResult {
  std::vector<ObjectId> answers;  ///< ascending object ids
  RstknnStats stats;              ///< triage + per-shard search stats, merged
  ShardedStats shards;
};

/// Scatter-gather RSTkNN over a ShardedIndex (DESIGN.md §15). Per query:
///   1. *Triage*: each shard is treated as one virtual candidate entry of a
///      two-level forest (virtual root -> K virtual shard entries -> the
///      shard trees) and run through the SAME guaranteed/potential competitor
///      probes that decide node entries inside a tree — competitors counted
///      across the whole forest. A shard whose MaxST(q, shard) is beaten by
///      >= k guaranteed competitors is pruned wholesale; one whose
///      MinST(q, shard) cannot be beaten by k is reported wholesale.
///   2. *Scatter*: surviving shards run the full probe/contribution-list
///      algorithm over a shard-scoped view whose competitor probes still
///      start at the forest root, so counting stays global and every
///      per-shard decision is exact.
///   3. *Gather*: per-shard answers are concatenated and sorted; stats merge
///      in shard order. Answers are byte-identical to a single-index search
///      at any shard count and thread count (the answer set is a property of
///      the dataset, not the tree shape); RstknnStats differ — they describe
///      the forest traversal.
///
/// Restrictions: `options.explain` and `options.pool` are unsupported in
/// sharded mode (RST_CHECK) — the per-shard searches would reset the recorder
/// and the buffer pool wraps a single tree's page store. `options.heatmap` is
/// fully supported and reconciles exactly against the returned stats;
/// `options.trace` is ignored by the per-shard searches.
class ShardedSearcher {
 public:
  /// All referents must outlive the searcher.
  ShardedSearcher(const ShardedIndex* index, const Dataset* dataset,
                  const StScorer* scorer);

  /// Runs one query. With a `pool` of > 1 threads, surviving shards fan out
  /// across the pool (one private heatmap per worker, merged after the join);
  /// otherwise shards run serially on the caller. Results are identical
  /// either way.
  ShardedResult Search(const RstknnQuery& query,
                       const RstknnOptions& options = RstknnOptions(),
                       exec::ThreadPool* pool = nullptr) const;

  const ShardedIndex* index() const { return index_; }

 private:
  const ShardedIndex* index_;
  const Dataset* dataset_;
  const StScorer* scorer_;
  /// Cumulative entry counts per shard, for globally unique explain/heatmap
  /// ids: shard s's entry e maps to id K + entry_offsets_[s] + e + 1 (ids
  /// 1..K belong to the virtual shard entries).
  std::vector<uint64_t> entry_offsets_;
};

}  // namespace shard
}  // namespace rst

#endif  // RST_SHARD_SHARDED_SEARCH_H_
