#include "rst/shard/sharded_search.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "rst/common/check.h"
#include "rst/common/stopwatch.h"
#include "rst/exec/thread_pool.h"
#include "rst/obs/heatmap.h"
#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"
#include "rst/rstknn/search_impl.h"

namespace rst {
namespace shard {
namespace {

/// Packed 64-bit refs over the two-level forest. A real node/entry of shard s
/// is (s << 32) | index; the virtual root node (whose "entries" are the K
/// shards) is ~0; the virtual entry standing for the whole of shard s is
/// (1 << 63) | s. Real refs never set bit 63 (shard counts are far below
/// 2^31), so the encodings are disjoint and NodeKey/EntryKey stay unique —
/// one ProbeScratch serves the forest exactly as it serves a single tree.
constexpr uint64_t kVirtualRoot = ~0ull;
constexpr uint64_t kVirtualBit = 1ull << 63;

/// Tree view of the forest, scoped to one shard: Root() is the scope shard's
/// tree root (so the branch-and-bound decides only this shard's entries),
/// while ProbeRoot() is the virtual forest root (so competitor counting spans
/// every shard) and ForEachContextEntry() hands the contribution-list
/// algorithm one pre-decided virtual contributor per foreign shard. The
/// virtual entry of shard s behaves exactly like a node entry whose subtree
/// is the whole shard: rect = shard MBR, summary = the shard's root-entry
/// fold, count = shard size — all valid summary-contract brackets, so every
/// pruning rule of the engine applies unchanged.
struct ForestView {
  using NodeRef = uint64_t;
  using EntryRef = uint64_t;

  const ShardedIndex* index = nullptr;
  const std::vector<uint64_t>* entry_offsets = nullptr;
  uint32_t scope = 0;  ///< shard whose tree Root() names

  static uint64_t Pack(uint32_t s, uint32_t v) {
    return (static_cast<uint64_t>(s) << 32) | v;
  }
  static uint64_t VirtualEntry(uint32_t s) { return kVirtualBit | s; }
  static bool IsVirtual(uint64_t ref) { return (ref & kVirtualBit) != 0; }
  /// Shard of a *virtual* entry (low word) / of a *real* ref (high word).
  static uint32_t VShard(uint64_t ref) { return static_cast<uint32_t>(ref); }
  static uint32_t Shard(uint64_t ref) {
    return static_cast<uint32_t>(ref >> 32);
  }
  static uint32_t Idx(uint64_t ref) { return static_cast<uint32_t>(ref); }

  size_t TreeSize() const { return index->size(); }
  NodeRef Root() const {
    return Pack(scope, index->shard(scope).root());
  }
  size_t NumEntries(NodeRef n) const {
    if (n == kVirtualRoot) return index->num_shards();
    return index->shard(Shard(n)).EntryCount(Idx(n));
  }
  EntryRef EntryAt(NodeRef n, size_t i) const {
    if (n == kVirtualRoot) return VirtualEntry(static_cast<uint32_t>(i));
    const uint32_t s = Shard(n);
    return Pack(s,
                index->shard(s).EntryBegin(Idx(n)) + static_cast<uint32_t>(i));
  }
  bool IsObject(EntryRef e) const {
    return !IsVirtual(e) && index->shard(Shard(e)).IsObject(Idx(e));
  }
  ObjectId Id(EntryRef e) const {
    return index->shard(Shard(e)).ObjectIdOf(Idx(e));
  }
  NodeRef Child(EntryRef e) const {
    if (IsVirtual(e)) {
      const uint32_t s = VShard(e);
      return Pack(s, index->shard(s).root());
    }
    return Pack(Shard(e), index->shard(Shard(e)).Child(Idx(e)));
  }
  uint32_t Count(EntryRef e) const {
    if (IsVirtual(e)) {
      return static_cast<uint32_t>(index->shard(VShard(e)).size());
    }
    return index->shard(Shard(e)).Count(Idx(e));
  }
  const Rect& RectOf(EntryRef e) const {
    if (IsVirtual(e)) return index->shard_mbr(VShard(e));
    return index->shard(Shard(e)).EntryRect(Idx(e));
  }
  SummarySpan Summary(EntryRef e) const {
    if (IsVirtual(e)) return AsSpan(index->shard_summary(VShard(e)));
    return index->shard(Shard(e)).Summary(Idx(e));
  }
  size_t NumClusters(EntryRef e) const {
    // The virtual entry advertises no clusters: the blended shard summary is
    // a looser but valid bracket; the shard's own entries refine below it.
    if (IsVirtual(e)) return 0;
    return index->shard(Shard(e)).NumClusters(Idx(e));
  }
  SummarySpan ClusterSummary(EntryRef e, size_t i) const {
    return index->shard(Shard(e)).ClusterSummary(Idx(e),
                                                 static_cast<uint32_t>(i));
  }
  uint32_t ClusterCount(EntryRef e, size_t i) const {
    return index->shard(Shard(e)).ClusterCount(Idx(e),
                                               static_cast<uint32_t>(i));
  }

  static uintptr_t NodeKey(NodeRef n) { return static_cast<uintptr_t>(n); }
  static uintptr_t EntryKey(EntryRef e) { return static_cast<uintptr_t>(e); }

  /// Scope hooks: probes span the whole forest.
  NodeRef ProbeRoot() const { return kVirtualRoot; }
  void CollectSelfPath(ObjectId id, std::unordered_set<uintptr_t>* path) const {
    // O(shard) instead of O(forest): descend only the owning shard's tree.
    path->insert(NodeKey(kVirtualRoot));
    const uint32_t s = index->shard_of(id);
    rstknn_internal::CollectPath(*this, Pack(s, index->shard(s).root()), id,
                                 path);
  }
  template <typename Fn>
  void ForEachContextEntry(Fn&& fn) const {
    const uint32_t k = static_cast<uint32_t>(index->num_shards());
    for (uint32_t s = 0; s < k; ++s) {
      if (s != scope) fn(VirtualEntry(s));
    }
  }

  void Charge(NodeRef n, const RstknnOptions&, RstknnStats* stats) const {
    if (n == kVirtualRoot) return;  // resident shard directory, no I/O
    index->shard(Shard(n)).ChargeAccess(Idx(n), &stats->io);
  }

  /// Globally unique, deterministic heatmap ids: 1..K are the virtual shard
  /// entries (level 0); shard s's entry e maps to K + offset[s] + e + 1 one
  /// level down from its in-shard level.
  void PrepareExplain(const RstknnOptions&, const ExplainIndex**,
                      std::unique_ptr<ExplainIndex>*) const {}
  ExplainIndex::Info ExplainInfo(EntryRef e, const ExplainIndex*) const {
    if (IsVirtual(e)) {
      return ExplainIndex::Info{static_cast<uint64_t>(VShard(e)) + 1, 0};
    }
    const uint32_t s = Shard(e);
    return ExplainIndex::Info{
        index->num_shards() + (*entry_offsets)[s] + Idx(e) + 1,
        index->shard(s).EntryLevel(Idx(e)) + 1};
  }
};

RstknnResult SearchOneShard(const ForestView& scoped, const Dataset& dataset,
                            const StScorer& scorer, const RstknnQuery& query,
                            const RstknnOptions& options) {
  return options.algorithm == RstknnAlgorithm::kContributionList
             ? rstknn_internal::SearchContributionList(scoped, dataset, scorer,
                                                       query, options)
             : rstknn_internal::SearchProbe(scoped, dataset, scorer, query,
                                            options);
}

}  // namespace

void ShardedStats::Publish() const {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter(obs::names::kShardPruned).Add(shards_pruned);
  registry.GetCounter(obs::names::kShardReported).Add(shards_reported);
  registry.GetCounter(obs::names::kShardSearched).Add(shards_searched);
}

ShardedStats& ShardedStats::Merge(const ShardedStats& other) {
  shards_pruned += other.shards_pruned;
  shards_reported += other.shards_reported;
  shards_searched += other.shards_searched;
  return *this;
}

ShardedSearcher::ShardedSearcher(const ShardedIndex* index,
                                 const Dataset* dataset,
                                 const StScorer* scorer)
    : index_(index), dataset_(dataset), scorer_(scorer) {
  entry_offsets_.resize(index->num_shards());
  uint64_t offset = 0;
  for (size_t s = 0; s < index->num_shards(); ++s) {
    entry_offsets_[s] = offset;
    offset += index->shard(s).num_entries();
  }
}

ShardedResult ShardedSearcher::Search(const RstknnQuery& query,
                                      const RstknnOptions& options,
                                      exec::ThreadPool* pool) const {
  RST_CHECK(options.explain == nullptr)
      << "EXPLAIN recorder not supported in sharded mode (per-shard searches "
         "would reset it); attach a heatmap instead";
  RST_CHECK(options.pool == nullptr)
      << "real-I/O buffer pools wrap a single tree's page store; unsupported "
         "in sharded mode";

  struct QueryMetrics {
    obs::Counter queries;
    obs::Counter answers;
    obs::HistogramRef latency_ms;
  };
  static const QueryMetrics metrics = [] {
    obs::MetricRegistry& registry = obs::MetricRegistry::Global();
    return QueryMetrics{registry.GetCounter(obs::names::kRstknnQueries),
                        registry.GetCounter(obs::names::kRstknnAnswers),
                        registry.GetHistogram(obs::names::kRstknnQueryMs,
                                              obs::HistogramSpec::LatencyMs())};
  }();

  Stopwatch timer;
  ShardedResult result;
  if (options.profiler != nullptr) options.profiler->Reset();
  const size_t num_shards = index_->num_shards();
  if (num_shards > 0 && query.k > 0 && index_->size() > 0) {
    const ForestView view{index_, &entry_offsets_, 0};
    std::unique_ptr<ProbeScratch> local_scratch;
    if (options.scratch == nullptr) {
      local_scratch = std::make_unique<ProbeScratch>();
    }
    ProbeScratch* scratch =
        options.scratch != nullptr ? options.scratch : local_scratch.get();
    ProbeScratch::Impl* mem = scratch->impl();
    mem->ResetForQuery();
    if (query.self != IurTree::kNoObject) {
      view.CollectSelfPath(query.self, &mem->self_path);
    }
    const double alpha = scorer_->options().alpha;
    const TextSummary qsum = TextSummary::FromDoc(*query.doc);
    const SummarySpan qspan = AsSpan(qsum);
    obs::HeatmapRecorder* heatmap = options.heatmap;

    // Triage: run every shard's virtual entry through the same
    // guaranteed/potential competitor probes that decide node entries inside
    // a tree, counting competitors across the whole forest. Outcomes bump
    // the same stats and heatmap slots a node decision would, so the
    // EXPLAIN-counter reconciliation identities stay exact.
    std::vector<uint32_t> to_search;
    for (uint32_t s = 0; s < num_shards; ++s) {
      rstknn_internal::Candidate<ForestView> cand;
      cand.entry = ForestView::VirtualEntry(s);
      cand.path = {ForestView::NodeKey(kVirtualRoot)};
      cand.contains_self = query.self != IurTree::kNoObject &&
                           index_->shard_of(query.self) == s;
      const TextBounds tb = rstknn_internal::ViewEntryTextBounds(
          view, cand.entry, qspan, scorer_->text());
      const Rect& rect = view.RectOf(cand.entry);
      cand.q_min = alpha * scorer_->SpatialSim(MaxDistance(query.loc, rect)) +
                   (1.0 - alpha) * tb.min_sim;
      cand.q_max = alpha * scorer_->SpatialSim(MinDistance(query.loc, rect)) +
                   (1.0 - alpha) * tb.max_sim;
      ++result.stats.entries_created;
      const uint32_t cap =
          view.Count(cand.entry) - (cand.contains_self ? 1 : 0);
      mem->ResetForCandidate();
      const size_t guaranteed = rstknn_internal::CountCompetitors(
          view, *scorer_, options, cand, mem, cand.q_max, query.k, query.self,
          /*guaranteed=*/true, &result.stats);
      if (guaranteed >= query.k) {
        ++result.stats.pruned_entries;
        ++result.shards.shards_pruned;
        if (heatmap != nullptr) {
          heatmap->Record(s + 1, 0, obs::ExplainVerdict::kPrune,
                          obs::ExplainBound::kLowerBound, cap);
        }
        continue;
      }
      const size_t potential = rstknn_internal::CountCompetitors(
          view, *scorer_, options, cand, mem, cand.q_min, query.k, query.self,
          /*guaranteed=*/false, &result.stats);
      if (potential < query.k) {
        ++result.stats.reported_entries;
        ++result.shards.shards_reported;
        if (heatmap != nullptr) {
          heatmap->Record(s + 1, 0, obs::ExplainVerdict::kReportHit,
                          obs::ExplainBound::kUpperBound, cap);
        }
        rstknn_internal::CollectObjectIds(view, cand.entry, query.self,
                                          &result.answers);
        continue;
      }
      ++result.stats.expansions;
      ++result.shards.shards_searched;
      if (heatmap != nullptr) {
        heatmap->Record(s + 1, 0, obs::ExplainVerdict::kExpand,
                        obs::ExplainBound::kNone, 0);
      }
      to_search.push_back(s);
    }

    // Scatter surviving shards, gather answers into index-keyed slots so the
    // merge order is the shard order at any thread count.
    std::vector<RstknnResult> shard_results(to_search.size());
    const bool parallel = pool != nullptr && pool->num_threads() > 1 &&
                          to_search.size() > 1;
    if (!parallel) {
      for (size_t i = 0; i < to_search.size(); ++i) {
        ForestView scoped = view;
        scoped.scope = to_search[i];
        RstknnOptions per = options;
        per.publish_metrics = false;
        per.trace = nullptr;
        per.scratch = scratch;
        shard_results[i] =
            SearchOneShard(scoped, *dataset_, *scorer_, query, per);
      }
    } else {
      const size_t workers = pool->num_threads();
      std::vector<std::unique_ptr<ProbeScratch>> worker_scratch(workers);
      std::vector<std::unique_ptr<obs::HeatmapRecorder>> worker_heatmaps(
          workers);
      for (size_t w = 0; w < workers; ++w) {
        worker_scratch[w] = std::make_unique<ProbeScratch>();
        if (heatmap != nullptr) {
          worker_heatmaps[w] = std::make_unique<obs::HeatmapRecorder>();
        }
      }
      pool->ParallelFor(to_search.size(), 1, [&](size_t i, size_t w) {
        ForestView scoped = view;
        scoped.scope = to_search[i];
        RstknnOptions per = options;
        per.publish_metrics = false;
        per.trace = nullptr;
        per.profiler = nullptr;
        per.scratch = worker_scratch[w].get();
        per.heatmap =
            heatmap != nullptr ? worker_heatmaps[w].get() : nullptr;
        shard_results[i] =
            SearchOneShard(scoped, *dataset_, *scorer_, query, per);
      });
      if (heatmap != nullptr) {
        for (size_t w = 0; w < workers; ++w) {
          heatmap->Merge(*worker_heatmaps[w]);
        }
      }
    }
    for (const RstknnResult& r : shard_results) {
      result.stats.Merge(r.stats);
      result.answers.insert(result.answers.end(), r.answers.begin(),
                            r.answers.end());
    }
    // Every object lives in exactly one shard, so the concatenation is
    // duplicate-free; one sort restores the global ascending contract.
    std::sort(result.answers.begin(), result.answers.end());
  }
  if (options.profiler != nullptr) options.profiler->Publish();
  if (options.publish_metrics) {
    metrics.queries.Increment();
    metrics.answers.Add(result.answers.size());
    metrics.latency_ms.Record(timer.ElapsedMillis());
    result.stats.Publish(obs::names::kRstknnPrefix);
    result.shards.Publish();
  }
  return result;
}

}  // namespace shard
}  // namespace rst
