#ifndef RST_SHARD_SHARDED_INDEX_H_
#define RST_SHARD_SHARDED_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rst/common/geometry.h"
#include "rst/common/status.h"
#include "rst/data/dataset.h"
#include "rst/frozen/frozen.h"
#include "rst/iurtree/iurtree.h"
#include "rst/text/similarity.h"

namespace rst {

namespace exec {
class ThreadPool;
}  // namespace exec

namespace shard {

struct ShardOptions {
  /// Number of spatial shards (clamped to [1, |dataset|]; an empty dataset
  /// yields zero shards).
  size_t num_shards = 1;
  /// Per-shard tree build options (fanout, payload storage, ...).
  IurTreeOptions tree;
};

/// A spatially partitioned forest of frozen IUR-/CIUR-trees (DESIGN.md §15):
/// the dataset is tiled into `num_shards` squarish STR tiles (the same
/// sort-tile-recursive discipline the bulk load uses inside one tree, lifted
/// to the shard level), one FrozenTree is bulk-built per tile, and each shard
/// carries the two facts the scatter-gather search prunes with — the shard
/// MBR and the union/intersection TextSummary folded from the shard tree's
/// root entries (an exact summary of the shard's documents, at root-entry
/// granularity cost instead of an O(objects) fold).
///
/// The partition is a pure function of object ids and coordinates, so the
/// forest is deterministic at any build thread count, and every object lands
/// in exactly one shard (CheckInvariants verifies it).
class ShardedIndex {
 public:
  ShardedIndex() = default;
  ShardedIndex(ShardedIndex&&) noexcept = default;
  ShardedIndex& operator=(ShardedIndex&&) noexcept = default;

  /// Partitions `dataset` and builds one frozen tree per shard. `cluster_of`
  /// (optional) maps object ids to cluster ids exactly as in IurTree::Build —
  /// the shards then form a CIUR forest. `pool` (optional) builds shards in
  /// parallel; the result is identical at any thread count.
  static ShardedIndex Build(const Dataset& dataset, const ShardOptions& options,
                            const std::vector<uint32_t>* cluster_of = nullptr,
                            exec::ThreadPool* pool = nullptr);

  size_t num_shards() const { return shards_.size(); }
  size_t size() const { return size_; }  ///< total indexed objects
  const frozen::FrozenTree& shard(size_t s) const { return shards_[s]; }
  const Rect& shard_mbr(size_t s) const { return mbrs_[s]; }
  const TextSummary& shard_summary(size_t s) const { return summaries_[s]; }
  /// Shard index holding object `id`.
  uint32_t shard_of(ObjectId id) const { return shard_of_[id]; }

  /// Persists the forest as a snapshot directory: a line-based MANIFEST plus
  /// one shard_<i>.frz per shard (FrozenTree::Save). Creates `dir` if needed.
  Status SaveDir(const std::string& dir) const;
  /// Loads a snapshot directory. Shard MBRs, summaries, and the object→shard
  /// map are recomputed deterministically from the loaded trees.
  static Result<ShardedIndex> LoadDir(const std::string& dir);

  /// Deep validation: per-shard frozen invariants, every object in exactly
  /// one shard, shard object counts summing to size().
  Status CheckInvariants() const;

 private:
  /// Recomputes mbrs_/summaries_/shard_of_/size_ from shards_ (used by both
  /// Build and LoadDir so the two paths cannot drift).
  void RecomputeDerived();

  std::vector<frozen::FrozenTree> shards_;
  std::vector<Rect> mbrs_;
  std::vector<TextSummary> summaries_;
  std::vector<uint32_t> shard_of_;  ///< object id -> shard index
  uint64_t size_ = 0;
};

}  // namespace shard
}  // namespace rst

#endif  // RST_SHARD_SHARDED_INDEX_H_
