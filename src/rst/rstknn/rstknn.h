#ifndef RST_RSTKNN_RSTKNN_H_
#define RST_RSTKNN_RSTKNN_H_

#include <memory>
#include <vector>

#include "rst/data/dataset.h"
#include "rst/iurtree/iurtree.h"
#include "rst/storage/io_stats.h"
#include "rst/text/similarity.h"
#include "rst/topk/topk.h"

namespace rst {

namespace obs {
class ExplainRecorder;
class HeatmapRecorder;
class PhaseProfiler;
}  // namespace obs

namespace frozen {
class FrozenTree;
}  // namespace frozen

/// The Reverse Spatial-Textual k Nearest Neighbor query (SIGMOD 2011):
/// given a query object q = (loc, doc), return every object o whose top-k
/// most spatial-textually similar objects (among the rest of the collection)
/// include q — equivalently, objects o for which fewer than k other objects
/// are *strictly* more similar to o than q is (ties resolve in q's favor,
/// deterministically).
struct RstknnQuery {
  Point loc;
  const TermVector* doc = nullptr;
  size_t k = 10;
  /// If the query is an existing object of the dataset, its id: the object
  /// is then excluded from every candidate's top-k competitor set (and from
  /// the answers).
  ObjectId self = IurTree::kNoObject;
};

/// Which realization of the branch-and-bound bounds to run.
enum class RstknnAlgorithm {
  /// Early-terminating competitor probes per candidate (default; identical
  /// answers to the contribution-list algorithm, typically far faster — the
  /// ablation bench fig_core_ablation_algorithm quantifies it).
  kProbe,
  /// The 2011 paper's literal scheme: a flat entry set where every entry is
  /// simultaneously candidate and contributor; kNNL/kNNU from sorted
  /// contribution lists over the live entries; coarse contributors are
  /// expanded when they block a decision.
  kContributionList,
};

/// How the branch-and-bound picks the next entry to expand.
enum class ExpandPolicy {
  /// Best-first on the upper-bound similarity to q (the 2011 default).
  kBestFirst,
  /// TE enhancement: bias expansion toward textually mixed (high
  /// cluster-entropy) nodes whose bounds are loosest. Only differs from
  /// kBestFirst on clustered (CIUR) trees.
  kTextEntropy,
};

/// Reusable per-thread working memory for RstknnSearcher: the query-path /
/// charged-node hash sets and the per-candidate bound-memoization cache that
/// the probes allocate. A searcher given a scratch clears it instead of
/// reallocating, so hash-table buckets survive across the queries of a batch.
/// A ProbeScratch may be reused across queries but must never be shared by
/// two concurrent queries — rst::exec::BatchRunner keeps one per worker.
class ProbeScratch {
 public:
  ProbeScratch();
  ~ProbeScratch();

  ProbeScratch(const ProbeScratch&) = delete;
  ProbeScratch& operator=(const ProbeScratch&) = delete;

  /// Internal state, defined in rstknn.cc (opaque to callers).
  struct Impl;
  Impl* impl() const { return impl_.get(); }

 private:
  std::unique_ptr<Impl> impl_;
};

struct RstknnOptions {
  RstknnAlgorithm algorithm = RstknnAlgorithm::kProbe;
  ExpandPolicy expand = ExpandPolicy::kBestFirst;
  /// Weight of the entropy term under kTextEntropy.
  double entropy_weight = 0.25;
  /// Optional query trace: the search records per-phase spans (setup,
  /// probe.guaranteed, probe.potential, expand, ...) with counter deltas.
  /// Null (the default) costs one branch per phase.
  obs::QueryTrace* trace = nullptr;
  /// Optional per-phase latency attribution (DESIGN.md §12): Search() resets
  /// the profiler, attributes wall time into the fixed phase set (descent /
  /// bounds / merge / io / finalize, exclusive self-time), and publishes one
  /// rstknn.phase.* histogram sample per phase on completion. Single-threaded
  /// like `trace` — batch execution attaches one per worker. Null (the
  /// default) costs one branch per phase boundary.
  obs::PhaseProfiler* profiler = nullptr;
  /// Optional real-I/O mode: node accesses read the serialized inverted
  /// files through this pool (hits/misses land in the buffer-pool metrics)
  /// instead of the simulated ChargeAccess. The pool must wrap the searched
  /// tree's page store (IurTree::page_store(), or FrozenTree::page_store()
  /// when searching a frozen snapshot) and that tree must carry finalized
  /// payloads.
  BufferPool* pool = nullptr;
  /// Optional reusable working memory (see ProbeScratch). Null allocates
  /// fresh scratch per query — correct, just slower for batches.
  ProbeScratch* scratch = nullptr;
  /// When false, Search() skips the per-query registry publish (rstknn.*
  /// counters and the latency histogram). Batch execution sets this so a
  /// batch lands in the registry as ONE aggregated publish instead of N
  /// per-query ones; the returned RstknnStats are unaffected.
  bool publish_metrics = true;
  /// Optional EXPLAIN recorder (DESIGN.md §9): the search resets it, stamps
  /// the algorithm, and records every branch-and-bound decision — which
  /// entry, which bound fired, prune/expand/report verdict. Decision totals
  /// reconcile exactly with the returned RstknnStats
  /// (ExplainRecorder::CheckReconciles). Null (the default) costs one branch
  /// per decision.
  obs::ExplainRecorder* explain = nullptr;
  /// Deterministic entry numbering behind explain node ids. Shareable
  /// read-only across queries and threads; when null while `explain` is set,
  /// the search builds a private index (an O(tree) walk per query — share
  /// one across a batch instead).
  const ExplainIndex* explain_index = nullptr;
  /// Optional cross-query index heatmap: every branch-and-bound decision
  /// also bumps per-node visit/prune/expand/report counters keyed by the
  /// same stable explain ids. Unlike `explain` the recorder is NOT reset per
  /// query — it accumulates a workload-level view whose totals reconcile
  /// exactly against the summed RstknnStats over the recorded queries
  /// (HeatmapRecorder::CheckReconciles). Not thread-safe: one per worker,
  /// merged after the batch. `explain_index` sharing applies here too.
  /// Null (the default) costs one branch per decision.
  obs::HeatmapRecorder* heatmap = nullptr;
};

struct RstknnStats {
  IoStats io;
  uint64_t entries_created = 0;   ///< search entries materialized
  uint64_t expansions = 0;        ///< node expansions performed
  uint64_t pruned_entries = 0;    ///< subtrees pruned without expansion
  uint64_t reported_entries = 0;  ///< subtrees reported wholesale
  uint64_t bound_computations = 0;
  uint64_t probes = 0;            ///< leaf-level competitor probes
  uint64_t pq_pops = 0;           ///< priority-queue pops across all probes

  /// Adds every counter (and the nested IoStats) to the global metric
  /// registry under `prefix`: e.g. "rstknn" yields rstknn.expansions, ...,
  /// rstknn.io.node_reads. The searchers call this once per completed query.
  void Publish(const std::string& prefix) const;

  /// Accumulates another query's stats into this one (batch aggregation).
  RstknnStats& Merge(const RstknnStats& other);
};

struct RstknnResult {
  std::vector<ObjectId> answers;  ///< ascending object ids
  RstknnStats stats;
};

/// Branch-and-bound RSTkNN over an IUR-/CIUR-tree (DESIGN.md §3.2): every
/// live entry is simultaneously a candidate and a contributor; candidates are
/// pruned when MaxST(q,E) < kNNL(E), reported when MinST(q,E) >= kNNU(E),
/// and expanded otherwise. kNNL/kNNU come from contribution lists over the
/// live entry set.
class RstknnSearcher {
 public:
  /// All referents must outlive the searcher.
  RstknnSearcher(const IurTree* tree, const Dataset* dataset,
                 const StScorer* scorer)
      : tree_(tree), dataset_(dataset), scorer_(scorer) {}

  /// Searches a frozen flat-layout snapshot (rst::frozen) instead of the
  /// pointer tree. Both algorithms run the exact same templated code over a
  /// thin tree view, so answers, RstknnStats, and EXPLAIN output are
  /// byte-identical to a pointer-tree search over the tree the snapshot was
  /// frozen from. `options.explain_index` is ignored in this mode — the
  /// frozen layout stores entries in explain preorder, so ids are read
  /// straight off entry indices.
  RstknnSearcher(const frozen::FrozenTree* frozen, const Dataset* dataset,
                 const StScorer* scorer)
      : frozen_(frozen), dataset_(dataset), scorer_(scorer) {}

  RstknnResult Search(const RstknnQuery& query,
                      const RstknnOptions& options = RstknnOptions()) const;

 private:
  const IurTree* tree_ = nullptr;
  const frozen::FrozenTree* frozen_ = nullptr;
  const Dataset* dataset_;
  const StScorer* scorer_;
};

/// Exact oracle by exhaustive pairwise scoring — O(|D|²); tests and tiny
/// benchmarks only.
std::vector<ObjectId> BruteForceRstknn(const Dataset& dataset,
                                       const StScorer& scorer,
                                       const RstknnQuery& query);

/// The 2011 paper's baseline: precompute every object's k-th-best similarity
/// (an offline pass of per-object top-k searches over the tree), then answer
/// each query by a full scan comparing sim(o, q) against the stored
/// threshold.
class PrecomputeBaseline {
 public:
  PrecomputeBaseline(const IurTree* tree, const Dataset* dataset,
                     const StScorer* scorer)
      : tree_(tree), dataset_(dataset), scorer_(scorer) {}

  /// Runs the offline pass for `k`. Charges the (large) precompute I/O to
  /// `stats`; records a `baseline.build` span on `trace` and publishes
  /// baseline.build.ms / baseline.builds to the registry.
  void Build(size_t k, IoStats* stats = nullptr,
             obs::QueryTrace* trace = nullptr);

  bool built() const { return k_ > 0; }
  size_t k() const { return k_; }

  /// Answers a query with the precomputed thresholds. `query.k` must equal
  /// the built k. Charges the scan I/O (all object pages); records a
  /// `baseline.scan` span on `trace`.
  RstknnResult Query(const RstknnQuery& query,
                     obs::QueryTrace* trace = nullptr) const;

 private:
  const IurTree* tree_;
  const Dataset* dataset_;
  const StScorer* scorer_;
  size_t k_ = 0;
  /// kth_score_[o] = similarity of o's k-th most similar other object
  /// (-1 when fewer than k others exist).
  std::vector<double> kth_score_;
  /// Per-object top-(k+1) competitors, kept so a query that is itself a
  /// dataset object can be discounted from the threshold.
  std::vector<std::vector<TopKResult>> tops_;
  uint64_t object_scan_bytes_ = 0;
};

}  // namespace rst

#endif  // RST_RSTKNN_RSTKNN_H_
