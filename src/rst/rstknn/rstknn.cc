#include "rst/rstknn/rstknn.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "rst/common/stopwatch.h"
#include "rst/obs/explain.h"
#include "rst/obs/metrics.h"
#include "rst/obs/trace.h"
#include "rst/storage/codec.h"

namespace rst {

namespace {

using Entry = IurTree::Entry;
using Node = IurTree::Node;

/// Charges one node access. In real-I/O mode (options.pool set) the node's
/// serialized inverted file is read through the buffer pool — hits charge
/// nothing and the pool's hit/miss/fill metrics reflect genuine traffic;
/// otherwise the papers' simulated accounting applies.
void ChargeNode(const IurTree* tree, const RstknnOptions& options,
                const Node* node, RstknnStats* stats) {
  if (options.pool != nullptr) {
    obs::TraceSpan span(options.trace, "storage.read_node");
    InvertedFile invfile;
    if (tree->ReadNodePayload(node, options.pool, &stats->io, &invfile).ok()) {
      return;
    }
    // Payloads not finalized: fall back below (nothing was charged).
  }
  tree->ChargeAccess(node, &stats->io);
}

/// A candidate entry of the branch-and-bound search: a subtree (or object)
/// whose membership in the answer is still to be decided.
struct Candidate {
  const Entry* entry = nullptr;
  /// Nodes on the root path whose subtree contains this entry (used to avoid
  /// double-counting the candidate's own objects during probes).
  std::vector<const Node*> path;
  bool contains_self = false;  ///< subtree holds the query object
  double q_min = 0.0;          ///< MinST(q, E)
  double q_max = 0.0;          ///< MaxST(q, E)
  double priority = 0.0;
};

/// Collects the node set on the root-to-leaf path of object `id`.
bool CollectPath(const Node* node, ObjectId id,
                 std::unordered_set<const Node*>* path) {
  for (const Entry& e : node->entries) {
    if (e.is_object()) {
      if (e.id == id) {
        path->insert(node);
        return true;
      }
    } else if (CollectPath(e.child.get(), id, path)) {
      path->insert(node);
      return true;
    }
  }
  return false;
}

void CollectObjectIds(const Entry& entry, ObjectId exclude,
                      std::vector<ObjectId>* out) {
  if (entry.is_object()) {
    if (entry.id != exclude) out->push_back(entry.id);
    return;
  }
  for (const Entry& e : entry.child->entries) CollectObjectIds(e, exclude, out);
}

/// Memoized blended bounds of (candidate, other) for one candidate's two
/// probes. The spatial legs are kept so a later lazy cluster refinement can
/// recombine them with tighter text bounds. Refined bounds are strictly
/// tighter and remain valid brackets, so reusing them across the guaranteed
/// and potential probes never changes answers — only the redundant kernel
/// evaluations disappear.
struct CandPairBounds {
  double spatial_min = 0.0;
  double spatial_max = 0.0;
  double mn = 0.0;
  double mx = 0.0;
  bool refined = false;
};

/// Key/hash for the contribution-list pair memo (ordered entry pair).
struct EntryPairKey {
  const Entry* a = nullptr;
  const Entry* b = nullptr;
  bool operator==(const EntryPairKey& o) const { return a == o.a && b == o.b; }
};
struct EntryPairKeyHash {
  size_t operator()(const EntryPairKey& k) const {
    const size_t h1 = std::hash<const void*>()(k.a);
    const size_t h2 = std::hash<const void*>()(k.b);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};

struct PairBoundsValue {
  double mn = 0.0;
  double mx = 0.0;
};

}  // namespace

/// The working memory behind the public ProbeScratch handle. Entry pair
/// bounds are pure functions of immutable tree nodes, so the memos are safe
/// to keep for as long as their scope allows: cand_bounds spans one
/// candidate's two probes, pair_bounds spans one whole contribution-list
/// query. clear() keeps hash-table buckets, which is the point of reuse.
struct ProbeScratch::Impl {
  std::unordered_set<const IurTree::Node*> self_path;
  std::unordered_set<const IurTree::Node*> charged;
  std::unordered_map<const IurTree::Entry*, CandPairBounds> cand_bounds;
  bool self_tb_valid = false;
  TextBounds self_tb;
  std::unordered_map<EntryPairKey, PairBoundsValue, EntryPairKeyHash>
      pair_bounds;

  void ResetForQuery() {
    self_path.clear();
    charged.clear();
    pair_bounds.clear();
    ResetForCandidate();
  }
  void ResetForCandidate() {
    cand_bounds.clear();
    self_tb_valid = false;
  }
};

ProbeScratch::ProbeScratch() : impl_(std::make_unique<Impl>()) {}
ProbeScratch::~ProbeScratch() = default;

namespace {

/// Per-query state threaded through the competitor probes. `mem` carries the
/// query's excluded-path / charged-node sets and the per-candidate bound
/// memo; one ProbeContext spans both probes of one candidate.
struct ProbeContext {
  const Candidate* cand;
  ProbeScratch::Impl* mem;
  const RstknnOptions* options;
};

/// Per-query EXPLAIN state: the recorder (reset + stamped here) and the
/// entry-numbering index — the caller's shared one or a private fallback.
/// Everything is a no-op when no recorder is attached.
struct ExplainSink {
  obs::ExplainRecorder* recorder = nullptr;
  const ExplainIndex* index = nullptr;
  std::unique_ptr<ExplainIndex> local_index;

  ExplainSink(const IurTree* tree, const RstknnOptions& options,
              std::string_view algorithm) {
    recorder = options.explain;
    if (recorder == nullptr) return;
    recorder->Reset();
    recorder->SetAlgorithm(algorithm);
    index = options.explain_index;
    if (index == nullptr) {
      local_index = std::make_unique<ExplainIndex>(*tree);
      index = local_index.get();
    }
  }

  void Record(const Entry& entry, double q_min, double q_max,
              obs::ExplainVerdict verdict, obs::ExplainBound bound,
              uint64_t decided_objects) const {
    if (recorder == nullptr) return;
    const ExplainIndex::Info info = index->Lookup(&entry);
    recorder->Record({info.id, info.level, verdict, bound, q_min, q_max,
                      decided_objects});
  }
};

}  // namespace

/// Counts competitor objects of candidate E against `threshold`, stopping at
/// k. In *guaranteed* mode (prune test, threshold = MaxST(q,E)) an object o'
/// is counted only when every object of E is certainly more similar to o'
/// than to q: pair MinST(E, o') > threshold; disjoint subtrees whose MinST
/// already clears the threshold are counted wholesale. In *potential* mode
/// (report test, threshold = MinST(q,E)) an object is counted when it COULD
/// exceed the threshold (pair MaxST > threshold). Traversal is best-first by
/// pair MaxST, so it terminates as soon as no remaining subtree can matter —
/// and for an object candidate in guaranteed mode the count is exact, which
/// forces a decision at leaf level.
size_t RstknnSearcher::CountCompetitors(const void* ctx_ptr, double threshold,
                                        size_t k, ObjectId exclude,
                                        bool guaranteed,
                                        RstknnStats* stats) const {
  const ProbeContext& ctx = *static_cast<const ProbeContext*>(ctx_ptr);
  const Candidate& cand = *ctx.cand;
  const auto& exclude_path = ctx.mem->self_path;
  const Entry& e = *cand.entry;
  const double alpha = scorer_->options().alpha;
  ++stats->probes;
  auto charge_once = [&](const Node* node) {
    // The branch-and-bound keeps every opened node resident for the whole
    // query (the contribution lists reference them), so each node costs its
    // I/O once per query regardless of how many probes revisit it.
    if (ctx.mem->charged.insert(node).second) {
      ChargeNode(tree_, *ctx.options, node, stats);
    }
  };

  size_t count = 0;
  // Self term: the candidate's own other objects compete among themselves.
  // The pair text bounds are threshold-independent, so the potential probe
  // reuses what the guaranteed probe computed.
  uint32_t own = e.count() - (cand.contains_self ? 1 : 0);
  if (own > 1) {
    if (!ctx.mem->self_tb_valid) {
      ctx.mem->self_tb = EntryPairTextBounds(e, e, scorer_->text());
      ctx.mem->self_tb_valid = true;
      ++stats->bound_computations;
    }
    const TextBounds& tb = ctx.mem->self_tb;
    const double intra =
        guaranteed
            ? alpha * scorer_->SpatialSim(MaxDistance(e.rect, e.rect)) +
                  (1.0 - alpha) * tb.min_sim
            : alpha * 1.0 + (1.0 - alpha) * tb.max_sim;
    if (intra > threshold) {
      count += own - 1;
      if (count >= k) return k;
    }
  }

  // Pair bounds with lazy cluster refinement: the cheap blended-summary
  // bound decides most entries outright; per-cluster bounds (up to
  // |clusters|^2 kernel evaluations) are computed only when the blended
  // bound straddles the threshold and could change the outcome. Results are
  // memoized per candidate (keyed by the other entry) so the potential probe
  // reuses the guaranteed probe's kernels; a pair refined once stays refined
  // — tighter bounds are still valid brackets at the other threshold.
  auto pair_bounds = [&](const Entry& other) {
    auto [it, inserted] = ctx.mem->cand_bounds.try_emplace(&other);
    CandPairBounds& cb = it->second;
    if (inserted) {
      cb.spatial_min =
          alpha * scorer_->SpatialSim(MaxDistance(e.rect, other.rect));
      cb.spatial_max =
          alpha * scorer_->SpatialSim(MinDistance(e.rect, other.rect));
      ++stats->bound_computations;
      cb.mn = cb.spatial_min + (1.0 - alpha) *
                                   scorer_->text().MinSim(e.summary,
                                                          other.summary);
      cb.mx = cb.spatial_max + (1.0 - alpha) *
                                   scorer_->text().MaxSim(e.summary,
                                                          other.summary);
    }
    if (!cb.refined && !other.clusters.empty() && cb.mn <= threshold &&
        cb.mx > threshold) {
      const TextBounds tb =
          EntryTextBoundsVsClusters(e.summary, other, scorer_->text());
      ++stats->bound_computations;
      cb.mn = cb.spatial_min + (1.0 - alpha) * tb.min_sim;
      cb.mx = cb.spatial_max + (1.0 - alpha) * tb.max_sim;
      cb.refined = true;
    }
    return std::make_pair(cb.mn, cb.mx);
  };

  auto is_own_subtree = [&](const Node* node) {
    if (!e.is_object() && node == e.child.get()) return true;
    return false;
  };
  auto is_ancestor = [&](const Node* node) {
    return std::find(cand.path.begin(), cand.path.end(), node) !=
           cand.path.end();
  };

  struct ProbeItem {
    double max_st;
    double min_st;
    const Node* node;
    bool contains_exclude;
    bool operator<(const ProbeItem& other) const {
      return max_st < other.max_st;
    }
  };
  std::priority_queue<ProbeItem> pq;
  pq.push({1.0, 0.0, tree_->root(), true});

  while (!pq.empty()) {
    const ProbeItem item = pq.top();
    pq.pop();
    ++stats->pq_pops;
    if (item.max_st <= threshold) break;  // nothing left can matter
    charge_once(item.node);
    for (const Entry& child : item.node->entries) {
      if (child.is_object()) {
        if (child.id == exclude) continue;
        if (e.is_object() && child.id == e.id) continue;
        const auto [mn, mx] = pair_bounds(child);
        const double value = guaranteed ? mn : mx;
        if (value > threshold && ++count >= k) return k;
        continue;
      }
      const Node* child_node = child.child.get();
      if (is_own_subtree(child_node)) continue;  // covered by the self term
      const auto [mn, mx] = pair_bounds(child);
      if (mx <= threshold) continue;  // no object inside can matter
      const bool overlaps_cand = is_ancestor(child_node);
      const bool overlaps_excl = exclude_path.count(child_node) > 0;
      if (mn > threshold && !overlaps_cand) {
        // Every object in this disjoint subtree clears the threshold.
        count += child.count() - (overlaps_excl ? 1 : 0);
        if (count >= k) return k;
        continue;
      }
      pq.push({mx, mn, child_node, overlaps_excl});
    }
  }
  return count;
}

void RstknnStats::Publish(const std::string& prefix) const {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter(prefix + ".entries_created").Add(entries_created);
  registry.GetCounter(prefix + ".expansions").Add(expansions);
  registry.GetCounter(prefix + ".pruned_entries").Add(pruned_entries);
  registry.GetCounter(prefix + ".reported_entries").Add(reported_entries);
  registry.GetCounter(prefix + ".bound_computations").Add(bound_computations);
  registry.GetCounter(prefix + ".probes").Add(probes);
  registry.GetCounter(prefix + ".pq_pops").Add(pq_pops);
  io.Publish(prefix + ".io");
}

RstknnStats& RstknnStats::Merge(const RstknnStats& other) {
  io += other.io;
  entries_created += other.entries_created;
  expansions += other.expansions;
  pruned_entries += other.pruned_entries;
  reported_entries += other.reported_entries;
  bound_computations += other.bound_computations;
  probes += other.probes;
  pq_pops += other.pq_pops;
  return *this;
}

RstknnResult RstknnSearcher::Search(const RstknnQuery& query,
                                    const RstknnOptions& options) const {
  // Handles are cached so the per-query registry cost is two atomic adds
  // and one histogram record.
  struct QueryMetrics {
    obs::Counter queries;
    obs::Counter answers;
    obs::HistogramRef latency_ms;
  };
  static const QueryMetrics metrics = [] {
    obs::MetricRegistry& registry = obs::MetricRegistry::Global();
    return QueryMetrics{registry.GetCounter("rstknn.queries"),
                        registry.GetCounter("rstknn.answers"),
                        registry.GetHistogram("rstknn.query.ms",
                                              obs::HistogramSpec::LatencyMs())};
  }();

  Stopwatch timer;
  RstknnResult result;
  {
    obs::TraceSpan span(options.trace,
                        options.algorithm == RstknnAlgorithm::kContributionList
                            ? "rstknn.contribution_list"
                            : "rstknn.probe");
    result = options.algorithm == RstknnAlgorithm::kContributionList
                 ? SearchContributionList(query, options)
                 : SearchProbe(query, options);
  }
  if (options.publish_metrics) {
    metrics.queries.Increment();
    metrics.answers.Add(result.answers.size());
    metrics.latency_ms.Record(timer.ElapsedMillis());
    result.stats.Publish("rstknn");
  }
  return result;
}

RstknnResult RstknnSearcher::SearchProbe(const RstknnQuery& query,
                                         const RstknnOptions& options) const {
  RstknnResult result;
  if (tree_->size() == 0 || query.k == 0) return result;
  obs::QueryTrace* trace = options.trace;
  if (trace != nullptr) trace->Enter("setup");
  const ExplainSink explain(tree_, options, "probe");
  const double alpha = scorer_->options().alpha;
  const TextSummary qsum = TextSummary::FromDoc(*query.doc);

  // Working memory: reuse the caller's scratch (clearing keeps hash-table
  // buckets warm across a batch) or allocate a query-local one.
  std::unique_ptr<ProbeScratch> local_scratch;
  if (options.scratch == nullptr) local_scratch = std::make_unique<ProbeScratch>();
  ProbeScratch::Impl* mem =
      (options.scratch != nullptr ? options.scratch : local_scratch.get())
          ->impl_.get();
  mem->ResetForQuery();
  std::unordered_set<const Node*>& self_path = mem->self_path;
  if (query.self != IurTree::kNoObject) {
    CollectPath(tree_->root(), query.self, &self_path);
  }
  std::unordered_set<const Node*>& charged = mem->charged;  // nodes paid for

  // Candidates live in a deque-like pool; the work queue orders them by a
  // static priority (upper-bound similarity to q, optionally biased by
  // cluster entropy under the TE policy).
  std::vector<std::unique_ptr<Candidate>> pool;
  struct QueueItem {
    double priority;
    Candidate* cand;
    bool operator<(const QueueItem& other) const {
      return priority < other.priority;
    }
  };
  std::priority_queue<QueueItem> work;

  auto add_candidate = [&](const Entry& e, std::vector<const Node*> path) {
    if (e.is_object() && e.id == query.self) return;  // never a candidate
    auto cand = std::make_unique<Candidate>();
    cand->entry = &e;
    cand->path = std::move(path);
    if (e.is_object()) {
      const StObject& obj = dataset_->object(e.id);
      cand->q_min = cand->q_max =
          scorer_->Score(obj.loc, obj.doc, query.loc, *query.doc);
    } else {
      cand->contains_self = self_path.count(e.child.get()) > 0;
      const TextBounds tb = EntryTextBounds(e, qsum, scorer_->text());
      cand->q_min = alpha * scorer_->SpatialSim(MaxDistance(query.loc, e.rect)) +
                    (1.0 - alpha) * tb.min_sim;
      cand->q_max = alpha * scorer_->SpatialSim(MinDistance(query.loc, e.rect)) +
                    (1.0 - alpha) * tb.max_sim;
    }
    cand->priority = cand->q_max;
    if (options.expand == ExpandPolicy::kTextEntropy) {
      cand->priority += options.entropy_weight * EntryClusterEntropy(e);
    }
    ++result.stats.entries_created;
    work.push({cand->priority, cand.get()});
    pool.push_back(std::move(cand));
  };

  charged.insert(tree_->root());
  ChargeNode(tree_, options, tree_->root(), &result.stats);
  for (const Entry& e : tree_->root()->entries) {
    add_candidate(e, {tree_->root()});
  }
  if (trace != nullptr) trace->Exit();  // setup

  while (!work.empty()) {
    Candidate* cand = work.top().cand;
    work.pop();
    ++result.stats.pq_pops;

    // Prune test: at least k competitors are guaranteed to beat q for every
    // object of the candidate (MaxST(q,E) < kNNL(E)).
    mem->ResetForCandidate();
    const ProbeContext ctx{cand, mem, &options};
    size_t guaranteed;
    {
      obs::TraceSpan span(trace, "probe.guaranteed");
      const uint64_t bounds_before = result.stats.bound_computations;
      const uint64_t pops_before = result.stats.pq_pops;
      guaranteed = CountCompetitors(&ctx, cand->q_max, query.k, query.self,
                                    /*guaranteed=*/true, &result.stats);
      span.AddCount("bound_computations",
                    result.stats.bound_computations - bounds_before);
      span.AddCount("pq_pops", result.stats.pq_pops - pops_before);
    }
    if (guaranteed >= query.k) {
      ++result.stats.pruned_entries;
      const bool object = cand->entry->is_object();
      explain.Record(*cand->entry, cand->q_min, cand->q_max,
                     object ? obs::ExplainVerdict::kReportMiss
                            : obs::ExplainVerdict::kPrune,
                     object ? obs::ExplainBound::kExact
                            : obs::ExplainBound::kLowerBound,
                     cand->entry->count() - (cand->contains_self ? 1 : 0));
      continue;
    }
    // For an object candidate the guaranteed probe descends every straddling
    // subtree to exact object-object scores, so its count is exact: fewer
    // than k competitors beat q ⇒ the object is an answer. No second probe.
    if (cand->entry->is_object()) {
      ++result.stats.reported_entries;
      explain.Record(*cand->entry, cand->q_min, cand->q_max,
                     obs::ExplainVerdict::kReportHit, obs::ExplainBound::kExact,
                     1);
      result.answers.push_back(cand->entry->id);
      continue;
    }
    // Report test: fewer than k competitors can possibly beat q for any
    // object of the candidate (MinST(q,E) >= kNNU(E)).
    size_t potential;
    {
      obs::TraceSpan span(trace, "probe.potential");
      const uint64_t bounds_before = result.stats.bound_computations;
      const uint64_t pops_before = result.stats.pq_pops;
      potential = CountCompetitors(&ctx, cand->q_min, query.k, query.self,
                                   /*guaranteed=*/false, &result.stats);
      span.AddCount("bound_computations",
                    result.stats.bound_computations - bounds_before);
      span.AddCount("pq_pops", result.stats.pq_pops - pops_before);
    }
    if (potential < query.k) {
      ++result.stats.reported_entries;
      explain.Record(*cand->entry, cand->q_min, cand->q_max,
                     obs::ExplainVerdict::kReportHit,
                     obs::ExplainBound::kUpperBound,
                     cand->entry->count() - (cand->contains_self ? 1 : 0));
      CollectObjectIds(*cand->entry, query.self, &result.answers);
      continue;
    }
    // Undecided: objects are always decided by the exact guaranteed count
    // (bounds are tight at leaf level), so only nodes reach this point.
    assert(!cand->entry->is_object());
    obs::TraceSpan expand_span(trace, "expand");
    const Node* child_node = cand->entry->child.get();
    if (charged.insert(child_node).second) {
      ChargeNode(tree_, options, child_node, &result.stats);
    }
    ++result.stats.expansions;
    explain.Record(*cand->entry, cand->q_min, cand->q_max,
                   obs::ExplainVerdict::kExpand, obs::ExplainBound::kNone, 0);
    std::vector<const Node*> child_path = cand->path;
    child_path.push_back(child_node);
    for (const Entry& ce : child_node->entries) {
      add_candidate(ce, child_path);
    }
    expand_span.AddCount("entries", child_node->entries.size());
  }

  std::sort(result.answers.begin(), result.answers.end());
  return result;
}

namespace {

/// Accumulated (min_st, max_st, count) contributions; the k-th guaranteed /
/// potential similarity is read off the sorted list (2011 paper, §5).
struct Contribution {
  double min_st;
  double max_st;
  uint32_t count;
};

double KthSorted(std::vector<Contribution>* contributions, size_t k,
                 bool lower) {
  std::sort(contributions->begin(), contributions->end(),
            [lower](const Contribution& a, const Contribution& b) {
              return lower ? a.min_st > b.min_st : a.max_st > b.max_st;
            });
  uint64_t cum = 0;
  for (const Contribution& c : *contributions) {
    cum += c.count;
    if (cum >= k) return lower ? c.min_st : c.max_st;
  }
  return -1.0;
}

}  // namespace

RstknnResult RstknnSearcher::SearchContributionList(
    const RstknnQuery& query, const RstknnOptions& options) const {
  RstknnResult result;
  if (tree_->size() == 0 || query.k == 0) return result;
  const ExplainSink explain(tree_, options, "contribution_list");
  const double alpha = scorer_->options().alpha;
  const TextSummary qsum = TextSummary::FromDoc(*query.doc);

  std::unique_ptr<ProbeScratch> local_scratch;
  if (options.scratch == nullptr) local_scratch = std::make_unique<ProbeScratch>();
  ProbeScratch::Impl* mem =
      (options.scratch != nullptr ? options.scratch : local_scratch.get())
          ->impl_.get();
  mem->ResetForQuery();
  std::unordered_set<const Node*>& self_path = mem->self_path;
  if (query.self != IurTree::kNoObject) {
    CollectPath(tree_->root(), query.self, &self_path);
  }
  std::unordered_set<const Node*>& charged = mem->charged;

  enum class State { kUndecided, kPruned, kReported };
  struct FlatEntry {
    const Entry* entry;
    State state = State::kUndecided;
    bool alive = true;           // not yet replaced by its children
    bool contains_self = false;  // subtree holds the query object
    double q_min = 0.0;
    double q_max = 0.0;
  };
  std::vector<FlatEntry> entries;

  auto add_entry = [&](const Entry& e, State inherited) {
    FlatEntry fe;
    fe.entry = &e;
    fe.state = inherited;
    if (e.is_object()) {
      fe.contains_self = (e.id == query.self);
      if (fe.contains_self) {
        fe.state = State::kPruned;  // never a candidate nor a contributor
      } else {
        const StObject& obj = dataset_->object(e.id);
        fe.q_min = fe.q_max =
            scorer_->Score(obj.loc, obj.doc, query.loc, *query.doc);
      }
    } else {
      fe.contains_self = self_path.count(e.child.get()) > 0;
      const TextBounds tb = EntryTextBounds(e, qsum, scorer_->text());
      fe.q_min = alpha * scorer_->SpatialSim(MaxDistance(query.loc, e.rect)) +
                 (1.0 - alpha) * tb.min_sim;
      fe.q_max = alpha * scorer_->SpatialSim(MinDistance(query.loc, e.rect)) +
                 (1.0 - alpha) * tb.max_sim;
    }
    ++result.stats.entries_created;
    entries.push_back(fe);
  };

  auto expand = [&](size_t idx) {
    obs::TraceSpan span(options.trace, "expand");
    FlatEntry& fe = entries[idx];
    const State inherited = fe.state;
    const Node* child_node = fe.entry->child.get();
    if (charged.insert(child_node).second) {
      ChargeNode(tree_, options, child_node, &result.stats);
    }
    fe.alive = false;
    ++result.stats.expansions;
    explain.Record(*fe.entry, fe.q_min, fe.q_max, obs::ExplainVerdict::kExpand,
                   obs::ExplainBound::kNone, 0);
    for (const Entry& ce : child_node->entries) add_entry(ce, inherited);
    span.AddCount("entries", child_node->entries.size());
  };

  // Pair bounds are pure functions of the two (immutable) entries, and each
  // pick recomputes its list against every live entry — memoizing across
  // picks turns the per-round cost from |live|² kernel evaluations into
  // lookups for every pair already seen.
  auto pair_bounds = [&](const FlatEntry& a, const FlatEntry& b) {
    auto [it, inserted] = mem->pair_bounds.try_emplace({a.entry, b.entry});
    if (inserted) {
      const TextBounds tb =
          EntryPairTextBounds(*a.entry, *b.entry, scorer_->text());
      ++result.stats.bound_computations;
      it->second.mn =
          alpha *
              scorer_->SpatialSim(MaxDistance(a.entry->rect, b.entry->rect)) +
          (1.0 - alpha) * tb.min_sim;
      it->second.mx =
          alpha *
              scorer_->SpatialSim(MinDistance(a.entry->rect, b.entry->rect)) +
          (1.0 - alpha) * tb.max_sim;
    }
    return std::make_pair(it->second.mn, it->second.mx);
  };

  charged.insert(tree_->root());
  ChargeNode(tree_, options, tree_->root(), &result.stats);
  for (const Entry& e : tree_->root()->entries) {
    add_entry(e, State::kUndecided);
  }

  auto capacity = [&](const FlatEntry& fe) -> uint32_t {
    const uint32_t n = fe.entry->count();
    return fe.contains_self && n > 0 ? n - 1 : n;
  };

  while (true) {
    // Highest-priority undecided candidate.
    size_t pick = SIZE_MAX;
    double best_priority = -1.0;
    {
      obs::TraceSpan span(options.trace, "pick");
      for (size_t i = 0; i < entries.size(); ++i) {
        const FlatEntry& fe = entries[i];
        if (!fe.alive || fe.state != State::kUndecided) continue;
        double priority = fe.q_max;
        if (options.expand == ExpandPolicy::kTextEntropy) {
          priority += options.entropy_weight * EntryClusterEntropy(*fe.entry);
        }
        if (pick == SIZE_MAX || priority > best_priority) {
          pick = i;
          best_priority = priority;
        }
      }
    }
    if (pick == SIZE_MAX) break;

    // Contribution list over all live entries.
    std::vector<Contribution> contributions;
    contributions.reserve(entries.size());
    size_t best_blocker = SIZE_MAX;
    double best_blocker_score = -1.0;
    obs::QueryTrace* trace = options.trace;
    if (trace != nullptr) trace->Enter("contributions");
    const uint64_t bounds_before = result.stats.bound_computations;
    {
      const FlatEntry& cand = entries[pick];
      for (size_t j = 0; j < entries.size(); ++j) {
        if (j == pick || !entries[j].alive) continue;
        const uint32_t cap = capacity(entries[j]);
        if (cap == 0) continue;
        const auto [mn, mx] = pair_bounds(cand, entries[j]);
        contributions.push_back({mn, mx, cap});
        if (!entries[j].entry->is_object() && mx > best_blocker_score) {
          best_blocker_score = mx;
          best_blocker = j;
        }
      }
      const uint32_t self_cap = capacity(cand);
      if (self_cap > 1) {
        // Self pair: MinDistance(rect, rect) = 0, so mx already carries the
        // maximal spatial term; mn uses the rect diameter.
        const auto [mn, mx] = pair_bounds(cand, cand);
        contributions.push_back({mn, mx, self_cap - 1});
      }
    }
    std::vector<Contribution> scratch = contributions;
    const double knn_lower = KthSorted(&scratch, query.k, /*lower=*/true);
    scratch = contributions;
    const double knn_upper = KthSorted(&scratch, query.k, /*lower=*/false);
    if (trace != nullptr) {
      trace->AddCount("bound_computations",
                      result.stats.bound_computations - bounds_before);
      trace->Exit();  // contributions
    }

    FlatEntry& cand = entries[pick];
    if (cand.q_max < knn_lower) {
      cand.state = State::kPruned;
      ++result.stats.pruned_entries;
      explain.Record(*cand.entry, cand.q_min, cand.q_max,
                     cand.entry->is_object() ? obs::ExplainVerdict::kReportMiss
                                             : obs::ExplainVerdict::kPrune,
                     obs::ExplainBound::kLowerBound, capacity(cand));
      continue;
    }
    if (cand.q_min >= knn_upper) {
      cand.state = State::kReported;
      ++result.stats.reported_entries;
      explain.Record(*cand.entry, cand.q_min, cand.q_max,
                     obs::ExplainVerdict::kReportHit,
                     obs::ExplainBound::kUpperBound, capacity(cand));
      CollectObjectIds(*cand.entry, query.self, &result.answers);
      continue;
    }
    if (!cand.entry->is_object()) {
      expand(pick);
    } else {
      // Exact candidate blocked by a coarse contributor: refine the most
      // entangled live node. One exists, else bounds were exact and a
      // decision would have been forced.
      assert(best_blocker != SIZE_MAX);
      expand(best_blocker);
    }
  }

  std::sort(result.answers.begin(), result.answers.end());
  return result;
}

std::vector<ObjectId> BruteForceRstknn(const Dataset& dataset,
                                       const StScorer& scorer,
                                       const RstknnQuery& query) {
  std::vector<ObjectId> answers;
  for (const StObject& o : dataset.objects()) {
    if (o.id == query.self) continue;
    const double sim_q = scorer.Score(o.loc, o.doc, query.loc, *query.doc);
    size_t strictly_better = 0;
    for (const StObject& other : dataset.objects()) {
      if (other.id == o.id || other.id == query.self) continue;
      const double sim = scorer.Score(o.loc, o.doc, other.loc, other.doc);
      if (sim > sim_q && ++strictly_better >= query.k) break;
    }
    if (strictly_better < query.k) answers.push_back(o.id);
  }
  return answers;
}

void PrecomputeBaseline::Build(size_t k, IoStats* stats,
                               obs::QueryTrace* trace) {
  assert(k > 0);
  Stopwatch timer;
  obs::TraceSpan build_span(trace, "baseline.build");
  k_ = k;
  kth_score_.assign(dataset_->size(), -1.0);
  tops_.assign(dataset_->size(), {});
  TopKSearcher searcher(tree_, dataset_, scorer_);
  for (const StObject& o : dataset_->objects()) {
    TopKQuery q;
    q.loc = o.loc;
    q.doc = &o.doc;
    q.k = k + 1;  // one spare so a query object can be discounted later
    q.exclude = o.id;
    tops_[o.id] = searcher.Search(q, stats);
    if (tops_[o.id].size() >= k) kth_score_[o.id] = tops_[o.id][k - 1].score;
  }
  object_scan_bytes_ = 0;
  for (const StObject& o : dataset_->objects()) {
    object_scan_bytes_ += TermVectorEncodedSize(o.doc) + 2 * sizeof(double);
  }
  build_span.AddCount("objects", dataset_->size());
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter("baseline.builds").Increment();
  registry.GetGauge("baseline.build.ms").Set(timer.ElapsedMillis());
  if (stats != nullptr) stats->Publish("baseline.build.io");
}

RstknnResult PrecomputeBaseline::Query(const RstknnQuery& query,
                                       obs::QueryTrace* trace) const {
  assert(built() && query.k == k_);
  Stopwatch timer;
  RstknnResult result;
  obs::TraceSpan scan_span(trace, "baseline.scan");
  // The scan touches every object page once.
  result.stats.io.AddPayloadRead(object_scan_bytes_);
  for (const StObject& o : dataset_->objects()) {
    if (o.id == query.self) continue;
    const double sim_q = scorer_->Score(o.loc, o.doc, query.loc, *query.doc);
    // k-th best competitor of o, discounting the query object if it happens
    // to sit in o's precomputed top list.
    double threshold = kth_score_[o.id];
    if (query.self != IurTree::kNoObject) {
      const auto& top = tops_[o.id];
      // Discount only when the query object occupies one of the top-k slots;
      // at position k it is already outside the threshold window.
      bool contains_self = false;
      for (size_t i = 0; i < top.size() && i < k_; ++i) {
        if (top[i].id == query.self) {
          contains_self = true;
          break;
        }
      }
      if (contains_self) {
        threshold = top.size() >= k_ + 1 ? top[k_].score : -1.0;
      }
    }
    if (threshold < 0.0 || sim_q >= threshold) result.answers.push_back(o.id);
  }
  scan_span.AddCount("objects_scanned", dataset_->size());
  static const obs::Counter queries =
      obs::MetricRegistry::Global().GetCounter("baseline.queries");
  static const obs::HistogramRef latency_ms =
      obs::MetricRegistry::Global().GetHistogram(
          "baseline.query.ms", obs::HistogramSpec::LatencyMs());
  queries.Increment();
  latency_ms.Record(timer.ElapsedMillis());
  result.stats.Publish("baseline");
  return result;
}

}  // namespace rst
