#include "rst/rstknn/rstknn.h"

#include <algorithm>
#include <string>
#include <vector>

#include "rst/common/check.h"
#include "rst/common/stopwatch.h"
#include "rst/obs/metrics.h"
#include "rst/obs/metric_names.h"
#include "rst/obs/trace.h"
#include "rst/rstknn/search_impl.h"

namespace rst {

ProbeScratch::ProbeScratch() : impl_(std::make_unique<Impl>()) {}
ProbeScratch::~ProbeScratch() = default;

void RstknnStats::Publish(const std::string& prefix) const {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter(prefix + obs::names::kSuffixEntriesCreated).Add(entries_created);
  registry.GetCounter(prefix + obs::names::kSuffixExpansions).Add(expansions);
  registry.GetCounter(prefix + obs::names::kSuffixPrunedEntries).Add(pruned_entries);
  registry.GetCounter(prefix + obs::names::kSuffixReportedEntries).Add(reported_entries);
  registry.GetCounter(prefix + obs::names::kSuffixBoundComputations).Add(bound_computations);
  registry.GetCounter(prefix + obs::names::kSuffixProbes).Add(probes);
  registry.GetCounter(prefix + obs::names::kSuffixPqPops).Add(pq_pops);
  io.Publish(prefix + obs::names::kSuffixIo);
}

RstknnStats& RstknnStats::Merge(const RstknnStats& other) {
  io += other.io;
  entries_created += other.entries_created;
  expansions += other.expansions;
  pruned_entries += other.pruned_entries;
  reported_entries += other.reported_entries;
  bound_computations += other.bound_computations;
  probes += other.probes;
  pq_pops += other.pq_pops;
  return *this;
}

RstknnResult RstknnSearcher::Search(const RstknnQuery& query,
                                    const RstknnOptions& options) const {
  using rstknn_internal::FrozenTreeView;
  using rstknn_internal::PointerTreeView;
  using rstknn_internal::SearchContributionList;
  using rstknn_internal::SearchProbe;

  // Handles are cached so the per-query registry cost is two atomic adds
  // and one histogram record.
  struct QueryMetrics {
    obs::Counter queries;
    obs::Counter answers;
    obs::HistogramRef latency_ms;
  };
  static const QueryMetrics metrics = [] {
    obs::MetricRegistry& registry = obs::MetricRegistry::Global();
    return QueryMetrics{registry.GetCounter(obs::names::kRstknnQueries),
                        registry.GetCounter(obs::names::kRstknnAnswers),
                        registry.GetHistogram(obs::names::kRstknnQueryMs,
                                              obs::HistogramSpec::LatencyMs())};
  }();

  Stopwatch timer;
  RstknnResult result;
  // Per-query phase attribution: the profiler's window is exactly one
  // Search(), so its per-phase totals are per-query samples and their sum is
  // bounded by this query's wall time.
  if (options.profiler != nullptr) options.profiler->Reset();
  {
    obs::TraceSpan span(options.trace,
                        options.algorithm == RstknnAlgorithm::kContributionList
                            ? obs::names::kSpanRstknnContributionList
                            : obs::names::kSpanRstknnProbe);
    const bool contribution_list =
        options.algorithm == RstknnAlgorithm::kContributionList;
    if (frozen_ != nullptr) {
      const FrozenTreeView view{frozen_};
      result = contribution_list
                   ? SearchContributionList(view, *dataset_, *scorer_, query,
                                            options)
                   : SearchProbe(view, *dataset_, *scorer_, query, options);
    } else {
      const PointerTreeView view{tree_};
      result = contribution_list
                   ? SearchContributionList(view, *dataset_, *scorer_, query,
                                            options)
                   : SearchProbe(view, *dataset_, *scorer_, query, options);
    }
  }
  // Phase histograms are per-query by nature, so they publish even when the
  // aggregate-publish path (publish_metrics == false) suppresses the per-
  // query counter traffic; Record() is lock-free either way.
  if (options.profiler != nullptr) options.profiler->Publish();
  if (options.publish_metrics) {
    metrics.queries.Increment();
    metrics.answers.Add(result.answers.size());
    metrics.latency_ms.Record(timer.ElapsedMillis());
    result.stats.Publish(obs::names::kRstknnPrefix);
  }
  return result;
}

std::vector<ObjectId> BruteForceRstknn(const Dataset& dataset,
                                       const StScorer& scorer,
                                       const RstknnQuery& query) {
  std::vector<ObjectId> answers;
  for (const StObject& o : dataset.objects()) {
    if (o.id == query.self) continue;
    const double sim_q = scorer.Score(o.loc, o.doc, query.loc, *query.doc);
    size_t strictly_better = 0;
    for (const StObject& other : dataset.objects()) {
      if (other.id == o.id || other.id == query.self) continue;
      const double sim = scorer.Score(o.loc, o.doc, other.loc, other.doc);
      if (sim > sim_q && ++strictly_better >= query.k) break;
    }
    if (strictly_better < query.k) answers.push_back(o.id);
  }
  return answers;
}

void PrecomputeBaseline::Build(size_t k, IoStats* stats,
                               obs::QueryTrace* trace) {
  RST_CHECK_GT(k, 0u) << "PrecomputeBaseline::Build needs k > 0";
  Stopwatch timer;
  obs::TraceSpan build_span(trace, obs::names::kSpanBaselineBuild);
  k_ = k;
  kth_score_.assign(dataset_->size(), -1.0);
  tops_.assign(dataset_->size(), {});
  TopKSearcher searcher(tree_, dataset_, scorer_);
  for (const StObject& o : dataset_->objects()) {
    TopKQuery q;
    q.loc = o.loc;
    q.doc = &o.doc;
    q.k = k + 1;  // one spare so a query object can be discounted later
    q.exclude = o.id;
    tops_[o.id] = searcher.Search(q, stats);
    if (tops_[o.id].size() >= k) kth_score_[o.id] = tops_[o.id][k - 1].score;
  }
  object_scan_bytes_ = 0;
  for (const StObject& o : dataset_->objects()) {
    object_scan_bytes_ += TermVectorEncodedSize(o.doc) + 2 * sizeof(double);
  }
  build_span.AddCount(obs::names::kCountObjects, dataset_->size());
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter(obs::names::kBaselineBuilds).Increment();
  registry.GetGauge(obs::names::kBaselineBuildMs).Set(timer.ElapsedMillis());
  if (stats != nullptr) stats->Publish(obs::names::kBaselineBuildIoPrefix);
}

RstknnResult PrecomputeBaseline::Query(const RstknnQuery& query,
                                       obs::QueryTrace* trace) const {
  RST_CHECK(built() && query.k == k_)
      << "PrecomputeBaseline::Query before Build, or with a different k";
  Stopwatch timer;
  RstknnResult result;
  obs::TraceSpan scan_span(trace, obs::names::kSpanBaselineScan);
  // The scan touches every object page once.
  result.stats.io.AddPayloadRead(object_scan_bytes_);
  for (const StObject& o : dataset_->objects()) {
    if (o.id == query.self) continue;
    const double sim_q = scorer_->Score(o.loc, o.doc, query.loc, *query.doc);
    // k-th best competitor of o, discounting the query object if it happens
    // to sit in o's precomputed top list.
    double threshold = kth_score_[o.id];
    if (query.self != IurTree::kNoObject) {
      const auto& top = tops_[o.id];
      // Discount only when the query object occupies one of the top-k slots;
      // at position k it is already outside the threshold window.
      bool contains_self = false;
      for (size_t i = 0; i < top.size() && i < k_; ++i) {
        if (top[i].id == query.self) {
          contains_self = true;
          break;
        }
      }
      if (contains_self) {
        threshold = top.size() >= k_ + 1 ? top[k_].score : -1.0;
      }
    }
    if (threshold < 0.0 || sim_q >= threshold) result.answers.push_back(o.id);
  }
  scan_span.AddCount(obs::names::kCountObjectsScanned, dataset_->size());
  static const obs::Counter queries =
      obs::MetricRegistry::Global().GetCounter(obs::names::kBaselineQueries);
  static const obs::HistogramRef latency_ms =
      obs::MetricRegistry::Global().GetHistogram(
          obs::names::kBaselineQueryMs, obs::HistogramSpec::LatencyMs());
  queries.Increment();
  latency_ms.Record(timer.ElapsedMillis());
  result.stats.Publish(obs::names::kBaselinePrefix);
  return result;
}

}  // namespace rst
